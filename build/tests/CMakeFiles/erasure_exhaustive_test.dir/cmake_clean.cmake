file(REMOVE_RECURSE
  "CMakeFiles/erasure_exhaustive_test.dir/erasure_exhaustive_test.cpp.o"
  "CMakeFiles/erasure_exhaustive_test.dir/erasure_exhaustive_test.cpp.o.d"
  "erasure_exhaustive_test"
  "erasure_exhaustive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erasure_exhaustive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
