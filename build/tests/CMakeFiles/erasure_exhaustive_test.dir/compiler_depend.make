# Empty compiler generated dependencies file for erasure_exhaustive_test.
# This may be replaced when dependencies are built.
