file(REMOVE_RECURSE
  "CMakeFiles/erasure_test.dir/erasure_test.cpp.o"
  "CMakeFiles/erasure_test.dir/erasure_test.cpp.o.d"
  "erasure_test"
  "erasure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erasure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
