# Empty compiler generated dependencies file for erasure_test.
# This may be replaced when dependencies are built.
