file(REMOVE_RECURSE
  "CMakeFiles/put_get_test.dir/put_get_test.cpp.o"
  "CMakeFiles/put_get_test.dir/put_get_test.cpp.o.d"
  "put_get_test"
  "put_get_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/put_get_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
