# Empty compiler generated dependencies file for put_get_test.
# This may be replaced when dependencies are built.
