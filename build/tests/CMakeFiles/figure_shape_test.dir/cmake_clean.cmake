file(REMOVE_RECURSE
  "CMakeFiles/figure_shape_test.dir/figure_shape_test.cpp.o"
  "CMakeFiles/figure_shape_test.dir/figure_shape_test.cpp.o.d"
  "figure_shape_test"
  "figure_shape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
