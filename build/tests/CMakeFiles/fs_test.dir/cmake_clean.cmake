file(REMOVE_RECURSE
  "CMakeFiles/fs_test.dir/fs_test.cpp.o"
  "CMakeFiles/fs_test.dir/fs_test.cpp.o.d"
  "fs_test"
  "fs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
