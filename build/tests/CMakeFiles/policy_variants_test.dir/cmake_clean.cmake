file(REMOVE_RECURSE
  "CMakeFiles/policy_variants_test.dir/policy_variants_test.cpp.o"
  "CMakeFiles/policy_variants_test.dir/policy_variants_test.cpp.o.d"
  "policy_variants_test"
  "policy_variants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
