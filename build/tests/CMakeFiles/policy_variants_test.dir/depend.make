# Empty dependencies file for policy_variants_test.
# This may be replaced when dependencies are built.
