file(REMOVE_RECURSE
  "CMakeFiles/analytic_model_test.dir/analytic_model_test.cpp.o"
  "CMakeFiles/analytic_model_test.dir/analytic_model_test.cpp.o.d"
  "analytic_model_test"
  "analytic_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
