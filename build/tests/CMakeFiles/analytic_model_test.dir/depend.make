# Empty dependencies file for analytic_model_test.
# This may be replaced when dependencies are built.
