# Empty compiler generated dependencies file for kls_test.
# This may be replaced when dependencies are built.
