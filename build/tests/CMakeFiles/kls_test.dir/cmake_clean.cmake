file(REMOVE_RECURSE
  "CMakeFiles/kls_test.dir/kls_test.cpp.o"
  "CMakeFiles/kls_test.dir/kls_test.cpp.o.d"
  "kls_test"
  "kls_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
