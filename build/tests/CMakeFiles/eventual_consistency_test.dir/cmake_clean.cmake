file(REMOVE_RECURSE
  "CMakeFiles/eventual_consistency_test.dir/eventual_consistency_test.cpp.o"
  "CMakeFiles/eventual_consistency_test.dir/eventual_consistency_test.cpp.o.d"
  "eventual_consistency_test"
  "eventual_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eventual_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
