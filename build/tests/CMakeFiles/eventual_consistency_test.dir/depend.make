# Empty dependencies file for eventual_consistency_test.
# This may be replaced when dependencies are built.
