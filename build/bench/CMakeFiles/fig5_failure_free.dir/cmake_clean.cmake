file(REMOVE_RECURSE
  "CMakeFiles/fig5_failure_free.dir/fig5_failure_free.cpp.o"
  "CMakeFiles/fig5_failure_free.dir/fig5_failure_free.cpp.o.d"
  "fig5_failure_free"
  "fig5_failure_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_failure_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
