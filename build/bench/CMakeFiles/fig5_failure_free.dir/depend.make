# Empty dependencies file for fig5_failure_free.
# This may be replaced when dependencies are built.
