file(REMOVE_RECURSE
  "CMakeFiles/fig8_kls_failures_bytes.dir/fig8_kls_failures_bytes.cpp.o"
  "CMakeFiles/fig8_kls_failures_bytes.dir/fig8_kls_failures_bytes.cpp.o.d"
  "fig8_kls_failures_bytes"
  "fig8_kls_failures_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_kls_failures_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
