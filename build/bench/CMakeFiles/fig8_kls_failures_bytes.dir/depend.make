# Empty dependencies file for fig8_kls_failures_bytes.
# This may be replaced when dependencies are built.
