file(REMOVE_RECURSE
  "CMakeFiles/micro_erasure.dir/micro_erasure.cpp.o"
  "CMakeFiles/micro_erasure.dir/micro_erasure.cpp.o.d"
  "micro_erasure"
  "micro_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
