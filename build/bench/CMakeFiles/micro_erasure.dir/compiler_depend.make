# Empty compiler generated dependencies file for micro_erasure.
# This may be replaced when dependencies are built.
