file(REMOVE_RECURSE
  "CMakeFiles/fig7_fs_failures_bytes.dir/fig7_fs_failures_bytes.cpp.o"
  "CMakeFiles/fig7_fs_failures_bytes.dir/fig7_fs_failures_bytes.cpp.o.d"
  "fig7_fs_failures_bytes"
  "fig7_fs_failures_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fs_failures_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
