# Empty dependencies file for fig7_fs_failures_bytes.
# This may be replaced when dependencies are built.
