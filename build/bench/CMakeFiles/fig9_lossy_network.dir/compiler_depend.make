# Empty compiler generated dependencies file for fig9_lossy_network.
# This may be replaced when dependencies are built.
