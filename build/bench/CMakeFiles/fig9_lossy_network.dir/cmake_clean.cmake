file(REMOVE_RECURSE
  "CMakeFiles/fig9_lossy_network.dir/fig9_lossy_network.cpp.o"
  "CMakeFiles/fig9_lossy_network.dir/fig9_lossy_network.cpp.o.d"
  "fig9_lossy_network"
  "fig9_lossy_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_lossy_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
