file(REMOVE_RECURSE
  "CMakeFiles/micro_simulation.dir/micro_simulation.cpp.o"
  "CMakeFiles/micro_simulation.dir/micro_simulation.cpp.o.d"
  "micro_simulation"
  "micro_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
