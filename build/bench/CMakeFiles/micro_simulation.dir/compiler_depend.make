# Empty compiler generated dependencies file for micro_simulation.
# This may be replaced when dependencies are built.
