# Empty compiler generated dependencies file for fig6_fs_failures_msgs.
# This may be replaced when dependencies are built.
