file(REMOVE_RECURSE
  "CMakeFiles/fig6_fs_failures_msgs.dir/fig6_fs_failures_msgs.cpp.o"
  "CMakeFiles/fig6_fs_failures_msgs.dir/fig6_fs_failures_msgs.cpp.o.d"
  "fig6_fs_failures_msgs"
  "fig6_fs_failures_msgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fs_failures_msgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
