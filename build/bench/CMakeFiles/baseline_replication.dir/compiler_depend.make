# Empty compiler generated dependencies file for baseline_replication.
# This may be replaced when dependencies are built.
