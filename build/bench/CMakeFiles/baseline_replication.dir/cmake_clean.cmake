file(REMOVE_RECURSE
  "CMakeFiles/baseline_replication.dir/baseline_replication.cpp.o"
  "CMakeFiles/baseline_replication.dir/baseline_replication.cpp.o.d"
  "baseline_replication"
  "baseline_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
