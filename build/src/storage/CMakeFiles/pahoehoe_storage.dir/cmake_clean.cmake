file(REMOVE_RECURSE
  "CMakeFiles/pahoehoe_storage.dir/stores.cpp.o"
  "CMakeFiles/pahoehoe_storage.dir/stores.cpp.o.d"
  "libpahoehoe_storage.a"
  "libpahoehoe_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pahoehoe_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
