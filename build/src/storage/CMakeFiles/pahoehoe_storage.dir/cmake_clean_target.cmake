file(REMOVE_RECURSE
  "libpahoehoe_storage.a"
)
