# Empty dependencies file for pahoehoe_storage.
# This may be replaced when dependencies are built.
