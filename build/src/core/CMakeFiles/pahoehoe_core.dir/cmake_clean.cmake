file(REMOVE_RECURSE
  "CMakeFiles/pahoehoe_core.dir/cluster.cpp.o"
  "CMakeFiles/pahoehoe_core.dir/cluster.cpp.o.d"
  "CMakeFiles/pahoehoe_core.dir/config.cpp.o"
  "CMakeFiles/pahoehoe_core.dir/config.cpp.o.d"
  "CMakeFiles/pahoehoe_core.dir/fs.cpp.o"
  "CMakeFiles/pahoehoe_core.dir/fs.cpp.o.d"
  "CMakeFiles/pahoehoe_core.dir/harness.cpp.o"
  "CMakeFiles/pahoehoe_core.dir/harness.cpp.o.d"
  "CMakeFiles/pahoehoe_core.dir/kls.cpp.o"
  "CMakeFiles/pahoehoe_core.dir/kls.cpp.o.d"
  "CMakeFiles/pahoehoe_core.dir/placement.cpp.o"
  "CMakeFiles/pahoehoe_core.dir/placement.cpp.o.d"
  "CMakeFiles/pahoehoe_core.dir/proxy.cpp.o"
  "CMakeFiles/pahoehoe_core.dir/proxy.cpp.o.d"
  "CMakeFiles/pahoehoe_core.dir/workload.cpp.o"
  "CMakeFiles/pahoehoe_core.dir/workload.cpp.o.d"
  "libpahoehoe_core.a"
  "libpahoehoe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pahoehoe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
