
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/pahoehoe_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/pahoehoe_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/pahoehoe_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/pahoehoe_core.dir/config.cpp.o.d"
  "/root/repo/src/core/fs.cpp" "src/core/CMakeFiles/pahoehoe_core.dir/fs.cpp.o" "gcc" "src/core/CMakeFiles/pahoehoe_core.dir/fs.cpp.o.d"
  "/root/repo/src/core/harness.cpp" "src/core/CMakeFiles/pahoehoe_core.dir/harness.cpp.o" "gcc" "src/core/CMakeFiles/pahoehoe_core.dir/harness.cpp.o.d"
  "/root/repo/src/core/kls.cpp" "src/core/CMakeFiles/pahoehoe_core.dir/kls.cpp.o" "gcc" "src/core/CMakeFiles/pahoehoe_core.dir/kls.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/pahoehoe_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/pahoehoe_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/proxy.cpp" "src/core/CMakeFiles/pahoehoe_core.dir/proxy.cpp.o" "gcc" "src/core/CMakeFiles/pahoehoe_core.dir/proxy.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/pahoehoe_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/pahoehoe_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pahoehoe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/pahoehoe_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/pahoehoe_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pahoehoe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pahoehoe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pahoehoe_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
