file(REMOVE_RECURSE
  "libpahoehoe_core.a"
)
