# Empty dependencies file for pahoehoe_core.
# This may be replaced when dependencies are built.
