file(REMOVE_RECURSE
  "CMakeFiles/pahoehoe_erasure.dir/gf256.cpp.o"
  "CMakeFiles/pahoehoe_erasure.dir/gf256.cpp.o.d"
  "CMakeFiles/pahoehoe_erasure.dir/matrix.cpp.o"
  "CMakeFiles/pahoehoe_erasure.dir/matrix.cpp.o.d"
  "CMakeFiles/pahoehoe_erasure.dir/reed_solomon.cpp.o"
  "CMakeFiles/pahoehoe_erasure.dir/reed_solomon.cpp.o.d"
  "libpahoehoe_erasure.a"
  "libpahoehoe_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pahoehoe_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
