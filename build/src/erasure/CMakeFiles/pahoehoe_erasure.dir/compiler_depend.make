# Empty compiler generated dependencies file for pahoehoe_erasure.
# This may be replaced when dependencies are built.
