file(REMOVE_RECURSE
  "libpahoehoe_erasure.a"
)
