
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/erasure/gf256.cpp" "src/erasure/CMakeFiles/pahoehoe_erasure.dir/gf256.cpp.o" "gcc" "src/erasure/CMakeFiles/pahoehoe_erasure.dir/gf256.cpp.o.d"
  "/root/repo/src/erasure/matrix.cpp" "src/erasure/CMakeFiles/pahoehoe_erasure.dir/matrix.cpp.o" "gcc" "src/erasure/CMakeFiles/pahoehoe_erasure.dir/matrix.cpp.o.d"
  "/root/repo/src/erasure/reed_solomon.cpp" "src/erasure/CMakeFiles/pahoehoe_erasure.dir/reed_solomon.cpp.o" "gcc" "src/erasure/CMakeFiles/pahoehoe_erasure.dir/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pahoehoe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
