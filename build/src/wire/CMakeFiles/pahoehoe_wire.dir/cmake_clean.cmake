file(REMOVE_RECURSE
  "CMakeFiles/pahoehoe_wire.dir/messages.cpp.o"
  "CMakeFiles/pahoehoe_wire.dir/messages.cpp.o.d"
  "CMakeFiles/pahoehoe_wire.dir/serde.cpp.o"
  "CMakeFiles/pahoehoe_wire.dir/serde.cpp.o.d"
  "libpahoehoe_wire.a"
  "libpahoehoe_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pahoehoe_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
