# Empty dependencies file for pahoehoe_wire.
# This may be replaced when dependencies are built.
