file(REMOVE_RECURSE
  "libpahoehoe_wire.a"
)
