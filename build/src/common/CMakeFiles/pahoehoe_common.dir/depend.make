# Empty dependencies file for pahoehoe_common.
# This may be replaced when dependencies are built.
