file(REMOVE_RECURSE
  "libpahoehoe_common.a"
)
