file(REMOVE_RECURSE
  "CMakeFiles/pahoehoe_common.dir/flags.cpp.o"
  "CMakeFiles/pahoehoe_common.dir/flags.cpp.o.d"
  "CMakeFiles/pahoehoe_common.dir/sha256.cpp.o"
  "CMakeFiles/pahoehoe_common.dir/sha256.cpp.o.d"
  "CMakeFiles/pahoehoe_common.dir/stats.cpp.o"
  "CMakeFiles/pahoehoe_common.dir/stats.cpp.o.d"
  "CMakeFiles/pahoehoe_common.dir/types.cpp.o"
  "CMakeFiles/pahoehoe_common.dir/types.cpp.o.d"
  "libpahoehoe_common.a"
  "libpahoehoe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pahoehoe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
