file(REMOVE_RECURSE
  "CMakeFiles/pahoehoe_sim.dir/simulator.cpp.o"
  "CMakeFiles/pahoehoe_sim.dir/simulator.cpp.o.d"
  "libpahoehoe_sim.a"
  "libpahoehoe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pahoehoe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
