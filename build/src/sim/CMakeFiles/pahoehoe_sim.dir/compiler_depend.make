# Empty compiler generated dependencies file for pahoehoe_sim.
# This may be replaced when dependencies are built.
