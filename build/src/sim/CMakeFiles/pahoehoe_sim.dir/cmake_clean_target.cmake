file(REMOVE_RECURSE
  "libpahoehoe_sim.a"
)
