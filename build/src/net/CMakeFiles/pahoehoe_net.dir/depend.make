# Empty dependencies file for pahoehoe_net.
# This may be replaced when dependencies are built.
