file(REMOVE_RECURSE
  "CMakeFiles/pahoehoe_net.dir/network.cpp.o"
  "CMakeFiles/pahoehoe_net.dir/network.cpp.o.d"
  "CMakeFiles/pahoehoe_net.dir/trace.cpp.o"
  "CMakeFiles/pahoehoe_net.dir/trace.cpp.o.d"
  "libpahoehoe_net.a"
  "libpahoehoe_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pahoehoe_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
