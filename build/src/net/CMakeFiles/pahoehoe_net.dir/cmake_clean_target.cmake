file(REMOVE_RECURSE
  "libpahoehoe_net.a"
)
