# Empty compiler generated dependencies file for lossy_clients.
# This may be replaced when dependencies are built.
