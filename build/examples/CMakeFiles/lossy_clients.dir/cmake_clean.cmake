file(REMOVE_RECURSE
  "CMakeFiles/lossy_clients.dir/lossy_clients.cpp.o"
  "CMakeFiles/lossy_clients.dir/lossy_clients.cpp.o.d"
  "lossy_clients"
  "lossy_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
