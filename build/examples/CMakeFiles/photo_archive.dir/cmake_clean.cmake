file(REMOVE_RECURSE
  "CMakeFiles/photo_archive.dir/photo_archive.cpp.o"
  "CMakeFiles/photo_archive.dir/photo_archive.cpp.o.d"
  "photo_archive"
  "photo_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photo_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
