# Empty compiler generated dependencies file for photo_archive.
# This may be replaced when dependencies are built.
