
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pahoehoe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/pahoehoe_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pahoehoe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/pahoehoe_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pahoehoe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pahoehoe_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pahoehoe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
