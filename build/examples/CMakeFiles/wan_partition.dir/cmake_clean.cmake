file(REMOVE_RECURSE
  "CMakeFiles/wan_partition.dir/wan_partition.cpp.o"
  "CMakeFiles/wan_partition.dir/wan_partition.cpp.o.d"
  "wan_partition"
  "wan_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
