# Empty compiler generated dependencies file for wan_partition.
# This may be replaced when dependencies are built.
