// Fixture battery for pahoehoe-lint (tools/lint): every determinism rule
// must fire on a known-bad snippet and stay quiet on the known-good
// variant, annotations must suppress (and be counted), and the meta rules
// must catch stale or malformed annotations. The snippets are deliberately
// shaped like the real call sites the rules were written for.
#include "lint.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace pahoehoe::lint {
namespace {

Report run(const std::string& path, const std::string& content) {
  return analyze({{path, content}});
}

std::vector<std::string> active_rules(const Report& r) {
  std::vector<std::string> out;
  for (const Diagnostic& d : r.diagnostics) {
    if (!d.suppressed) out.push_back(d.rule);
  }
  return out;
}

TEST(RuleTableTest, IdsAndAnnotationsAreUniqueAndDocumented) {
  std::set<std::string> ids;
  std::set<std::string> annotations;
  for (const RuleInfo& r : rules()) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate rule id " << r.id;
    EXPECT_NE(std::string(r.summary), "") << r.id;
    if (r.annotation[0] != '\0') {
      EXPECT_TRUE(annotations.insert(r.annotation).second)
          << "duplicate annotation " << r.annotation;
    }
  }
  EXPECT_GE(ids.size(), 9u);
}

// --- nondet-rand ------------------------------------------------------------

TEST(NondetRandTest, FiresOnRandCall) {
  const Report r = run("src/core/x.cpp", "int jitter() { return rand() % 5; }\n");
  EXPECT_EQ(active_rules(r), std::vector<std::string>{"nondet-rand"});
  EXPECT_EQ(r.diagnostics[0].line, 1);
}

TEST(NondetRandTest, FiresOnRandomDevice) {
  const Report r =
      run("src/workload.cpp", "std::mt19937_64 g{std::random_device{}()};\n");
  EXPECT_EQ(active_rules(r), std::vector<std::string>{"nondet-rand"});
}

TEST(NondetRandTest, QuietOnSeededRng) {
  const Report r = run(
      "src/core/x.cpp",
      "int jitter(Rng& rng) { return (int)rng.uniform_int(0, 4); }\n"
      "uint64_t sub_seed(Rng& rng) { return rng.next_u64(); }\n");
  EXPECT_EQ(r.active_count(), 0);
}

TEST(NondetRandTest, QuietOnIdentifiersContainingRand) {
  const Report r = run("src/core/x.cpp",
                       "int operand = 3; int rand_total = operand;\n");
  EXPECT_EQ(r.active_count(), 0);
}

// --- nondet-clock -----------------------------------------------------------

TEST(NondetClockTest, FiresOnSteadyClockInSimPlane) {
  const Report r = run("src/core/proxy.cpp",
                       "auto t0 = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(active_rules(r), std::vector<std::string>{"nondet-clock"});
}

TEST(NondetClockTest, FiresOnTimeCall) {
  const Report r = run("src/core/x.cpp", "long now = time(nullptr);\n");
  EXPECT_EQ(active_rules(r), std::vector<std::string>{"nondet-clock"});
}

TEST(NondetClockTest, QuietOnMemberNamedTime) {
  const Report r = run("src/core/x.cpp",
                       "double t = sim.time(); double u = sim->time();\n");
  EXPECT_EQ(r.active_count(), 0);
}

TEST(NondetClockTest, ProfModuleIsWhitelisted) {
  const Report r = run("src/obs/prof.cpp",
                       "using Clock = std::chrono::steady_clock;\n");
  EXPECT_EQ(r.active_count(), 0);
}

TEST(NondetClockTest, BenchTimingNeedsAnnotation) {
  const Report bare = run("bench/micro_x.cpp",
                          "using Clock = std::chrono::steady_clock;\n");
  EXPECT_EQ(active_rules(bare), std::vector<std::string>{"nondet-clock"});
  const Report annotated = run(
      "bench/micro_x.cpp",
      "// lint:wallclock-ok(bench harness measures host throughput)\n"
      "using Clock = std::chrono::steady_clock;\n");
  EXPECT_EQ(annotated.active_count(), 0);
  EXPECT_EQ(annotated.suppressed_count(), 1);
}

// --- nondet-env -------------------------------------------------------------

TEST(NondetEnvTest, FiresOutsideEnvModule) {
  const Report r = run(
      "src/erasure/gf256_dispatch.cpp",
      "const char* env = std::getenv(\"PAHOEHOE_GF256_KERNEL\");\n");
  EXPECT_EQ(active_rules(r), std::vector<std::string>{"nondet-env"});
}

TEST(NondetEnvTest, EnvModuleIsTheWhitelist) {
  const Report r = run("src/common/env.cpp",
                       "const char* value = std::getenv(name);\n");
  EXPECT_EQ(r.active_count(), 0);
}

TEST(NondetEnvTest, QuietOnEnvHelperCallers) {
  const Report r = run(
      "src/erasure/gf256_dispatch.cpp",
      "auto v = env::override_value(\"PAHOEHOE_GF256_KERNEL\");\n");
  EXPECT_EQ(r.active_count(), 0);
}

// --- unordered-iter ---------------------------------------------------------

TEST(UnorderedIterTest, FiresOnRangeForOverUnorderedMap) {
  const Report r = run(
      "src/core/x.cpp",
      "std::unordered_map<NodeId, Handler*> handlers_;\n"
      "void f() {\n"
      "  for (const auto& [id, h] : handlers_) render(id);\n"
      "}\n");
  ASSERT_EQ(active_rules(r), std::vector<std::string>{"unordered-iter"});
  EXPECT_EQ(r.diagnostics[0].line, 3);
  // The message names the declaration site so the finding is checkable.
  EXPECT_NE(r.diagnostics[0].message.find("src/core/x.cpp:1"),
            std::string::npos);
}

TEST(UnorderedIterTest, CrossFileMemberDeclaration) {
  const Report r = analyze(
      {{"src/core/view.h",
        "struct View { std::unordered_map<NodeId, DcId> dc_of_node; };\n"},
       {"src/core/harness.cpp",
        "void f(const View& v) {\n"
        "  for (const auto& [node, dc] : v.dc_of_node) use(node, dc);\n"
        "}\n"}});
  ASSERT_EQ(r.active_count(), 1);
  EXPECT_EQ(r.diagnostics[0].path, "src/core/harness.cpp");
  EXPECT_EQ(r.diagnostics[0].rule, "unordered-iter");
}

TEST(UnorderedIterTest, QuietOnOrderedContainers) {
  const Report r = run(
      "src/core/x.cpp",
      "std::map<NodeId, Handler*> handlers_;\n"
      "std::vector<int> order_;\n"
      "void f() {\n"
      "  for (const auto& [id, h] : handlers_) render(id);\n"
      "  for (int i : order_) render(i);\n"
      "}\n");
  EXPECT_EQ(r.active_count(), 0);
}

TEST(UnorderedIterTest, QuietOnClassicForAndLookups) {
  const Report r = run(
      "src/core/x.cpp",
      "std::unordered_set<int> live_;\n"
      "bool f(int id) { return live_.count(id) > 0; }\n"
      "void g() { for (size_t i = 0; i < 4; ++i) step(i); }\n");
  EXPECT_EQ(r.active_count(), 0);
}

TEST(UnorderedIterTest, AnnotationOnForLineSuppresses) {
  const Report r = run(
      "src/core/x.cpp",
      "std::unordered_set<NodeId> group_;\n"
      "int f() {\n"
      "  int n = 0;\n"
      "  // lint:ordered-ok(count is order-insensitive)\n"
      "  for (NodeId id : group_) n += weight(id);\n"
      "  return n;\n"
      "}\n");
  EXPECT_EQ(r.active_count(), 0);
  EXPECT_EQ(r.suppressed_count(), 1);
}

// --- prof-literal -----------------------------------------------------------

TEST(ProfLiteralTest, FiresOnNonLiteralPhaseId) {
  const Report r = run(
      "src/core/x.cpp",
      "void f(const char* phase) { obs::ProfScope prof(phase); }\n");
  EXPECT_EQ(active_rules(r), std::vector<std::string>{"prof-literal"});
}

TEST(ProfLiteralTest, FiresOnComputedPhaseId) {
  const Report r = run(
      "src/erasure/rs.cpp",
      "void f() { obs::ProfScope prof(kernel_phase(kEncodePhase)); }\n");
  EXPECT_EQ(active_rules(r), std::vector<std::string>{"prof-literal"});
}

TEST(ProfLiteralTest, QuietOnLiteralAndNullptr) {
  const Report r = run(
      "src/core/x.cpp",
      "void f() { obs::ProfScope a(\"encode\"); ProfScope b{\"x\"}; }\n"
      "void g() { obs::ProfScope c(nullptr); }\n");
  EXPECT_EQ(r.active_count(), 0);
}

TEST(ProfLiteralTest, ConditionalPhaseIdNeedsAnnotation) {
  // A ternary between literals is pointer-stable, but the lexer cannot
  // prove it — the strict contract is to flag and make the author annotate.
  const Report r = run(
      "src/core/x.cpp",
      "void g(bool on) { obs::ProfScope c(on ? \"y\" : nullptr); }\n");
  EXPECT_EQ(active_rules(r), std::vector<std::string>{"prof-literal"});
}

TEST(ProfLiteralTest, QuietOnDeclarationSite) {
  const Report r = run(
      "src/obs/prof.h",
      "class ProfScope {\n"
      " public:\n"
      "  explicit ProfScope(const char* name);\n"
      "  ~ProfScope();\n"
      "  ProfScope(const ProfScope&) = delete;\n"
      "};\n");
  EXPECT_EQ(r.active_count(), 0);
}

TEST(ProfLiteralTest, AnnotatedStaticStorageSourceSuppresses) {
  const Report r = run(
      "src/erasure/rs.cpp",
      "void f() {\n"
      "  // lint:prof-ok(kernel_phase returns a pointer into a static table)\n"
      "  obs::ProfScope prof(kernel_phase(kEncodePhase));\n"
      "}\n");
  EXPECT_EQ(r.active_count(), 0);
  EXPECT_EQ(r.suppressed_count(), 1);
}

// --- ptr-key ----------------------------------------------------------------

TEST(PtrKeyTest, FiresOnPointerKeyedMap) {
  const Report r =
      run("src/core/x.cpp", "std::map<const Version*, int> rank_;\n");
  EXPECT_EQ(active_rules(r), std::vector<std::string>{"ptr-key"});
}

TEST(PtrKeyTest, FiresOnPointerSet) {
  const Report r = run("src/core/x.cpp", "std::set<Node*> visited_;\n");
  EXPECT_EQ(active_rules(r), std::vector<std::string>{"ptr-key"});
}

TEST(PtrKeyTest, QuietOnValueKeysAndPointerValues) {
  const Report r = run(
      "src/core/x.cpp",
      "std::map<NodeId, Handler*> handlers_;\n"  // pointer *values* are fine
      "std::set<Timestamp> seen_;\n");
  EXPECT_EQ(r.active_count(), 0);
}

// --- float-digest -----------------------------------------------------------

TEST(FloatDigestTest, FiresOnFloatAccumulationInSimPlane) {
  const Report r = run(
      "src/obs/stats.cpp",
      "double sum = 0;\n"
      "void add(double v) { sum += v; }\n");
  EXPECT_EQ(active_rules(r), std::vector<std::string>{"float-digest"});
}

TEST(FloatDigestTest, QuietOnIntegerAccumulation) {
  const Report r = run(
      "src/obs/stats.cpp",
      "uint64_t nanos = 0;\n"
      "void add(uint64_t v) { nanos += v; }\n");
  EXPECT_EQ(r.active_count(), 0);
}

TEST(FloatDigestTest, BenchesAreOutsideTheDigestPlane) {
  const Report r = run(
      "bench/micro_x.cpp",
      "double total_ms = 0;\n"
      "void lap(double v) { total_ms += v; }\n");
  EXPECT_EQ(r.active_count(), 0);
}

TEST(FloatDigestTest, AnnotatedSeedOrderAccumulationSuppresses) {
  const Report r = run(
      "src/common/stats.cpp",
      "double sum = 0;\n"
      "// lint:float-ok(partials merged in seed order; digest-stable)\n"
      "void add(double v) { sum += v; }\n");
  EXPECT_EQ(r.active_count(), 0);
  EXPECT_EQ(r.suppressed_count(), 1);
}

// --- lexer masking ----------------------------------------------------------

TEST(LexerTest, StringsCommentsAndRawStringsAreMasked) {
  const Report r = run(
      "src/core/x.cpp",
      "// steady_clock rand() getenv(\n"
      "/* std::unordered_map<int,int> ghost_; for (x : ghost_) */\n"
      "const char* a = \"rand() time( srand(\";\n"
      "const char* b = R\"(std::random_device getenv()\";\n"
      "const char c = 'r';\n");
  EXPECT_EQ(r.active_count(), 0) << r.to_text(1);
}

// --- annotation meta rules --------------------------------------------------

TEST(AnnotationTest, SuppressedCountAppearsInSummary) {
  const Report r = run(
      "src/core/x.cpp",
      "std::unordered_set<int> live_;\n"
      "// lint:ordered-ok(order-insensitive sum)\n"
      "int f() { int n = 0; for (int i : live_) n += i; return n; }\n");
  EXPECT_EQ(r.active_count(), 0);
  EXPECT_EQ(r.suppressed_count(), 1);
  EXPECT_NE(r.to_text(1).find("1 suppressed"), std::string::npos);
}

TEST(AnnotationTest, StaleAnnotationIsADiagnostic) {
  // The loop below no longer iterates an unordered container, so the
  // annotation must be flagged for deletion, not silently tolerated.
  const Report r = run(
      "src/core/x.cpp",
      "std::vector<int> order_;\n"
      "// lint:ordered-ok(was unordered before PR 9)\n"
      "int f() { int n = 0; for (int i : order_) n += i; return n; }\n");
  ASSERT_EQ(active_rules(r), std::vector<std::string>{"stale-annotation"});
  EXPECT_EQ(r.diagnostics[0].line, 2);
}

TEST(AnnotationTest, UnknownAnnotationNameIsADiagnostic) {
  const Report r =
      run("src/core/x.cpp", "int x = 0;  // lint:made-up-ok(nope)\n");
  EXPECT_EQ(active_rules(r), std::vector<std::string>{"bad-annotation"});
}

TEST(AnnotationTest, EmptyReasonIsADiagnostic) {
  const Report r = run(
      "src/core/x.cpp",
      "std::unordered_set<int> live_;\n"
      "int f() { int n = 0; for (int i : live_) n += i; return n; }"
      "  // lint:ordered-ok()\n");
  const std::vector<std::string> fired = active_rules(r);
  // The un-reasoned annotation still suppresses nothing: both the original
  // finding and the bad-annotation meta finding must be active.
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], "unordered-iter");
  EXPECT_EQ(fired[1], "bad-annotation");
}

TEST(AnnotationTest, AnnotationDoesNotLeakAcrossLines) {
  const Report r = run(
      "src/core/x.cpp",
      "std::unordered_set<int> live_;\n"
      "// lint:ordered-ok(only covers the next line)\n"
      "int f() { int n = 0; for (int i : live_) n += i; return n; }\n"
      "int g() { int n = 0; for (int i : live_) n += i; return n; }\n");
  const std::vector<std::string> fired = active_rules(r);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "unordered-iter");
  EXPECT_EQ(r.suppressed_count(), 1);
}

// --- report format ----------------------------------------------------------

TEST(ReportTest, DiagnosticLinesAreFileLineRuleMessage) {
  const Report r = run("src/core/x.cpp", "int f() { return rand() % 5; }\n");
  const std::string text = r.to_text(1);
  EXPECT_NE(text.find("src/core/x.cpp:1: nondet-rand: "), std::string::npos);
  EXPECT_NE(text.find("1 files, 1 diagnostic, 0 suppressed"),
            std::string::npos);
}

TEST(SelfTest, BuiltInFixtureBatteryPasses) { EXPECT_EQ(selftest(), 0); }

}  // namespace
}  // namespace pahoehoe::lint
