// Tests for the message tracer, including its use as a determinism witness:
// two runs with the same seed must produce identical traces.
#include <gtest/gtest.h>

#include "test_util.h"

namespace pahoehoe::net {
namespace {

using testing::SimCluster;
using wire::MessageType;

TEST(TracerTest, DisabledByDefaultAndFree) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.record(1, TraceEvent::kSend, NodeId{1}, NodeId{2},
                MessageType::kAmrIndication, 10);
  EXPECT_TRUE(tracer.records().empty());
}

TEST(TracerTest, RecordsInOrder) {
  Tracer tracer;
  tracer.enable();
  tracer.record(1, TraceEvent::kSend, NodeId{1}, NodeId{2},
                MessageType::kAmrIndication, 10);
  tracer.record(2, TraceEvent::kDeliver, NodeId{1}, NodeId{2},
                MessageType::kAmrIndication, 10);
  ASSERT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.records()[0].event, TraceEvent::kSend);
  EXPECT_EQ(tracer.records()[1].event, TraceEvent::kDeliver);
  EXPECT_EQ(tracer.records()[1].time, 2);
}

TEST(TracerTest, RingBufferKeepsMostRecent) {
  Tracer tracer;
  tracer.enable(/*capacity=*/3);
  for (int i = 0; i < 10; ++i) {
    tracer.record(i, TraceEvent::kSend, NodeId{1}, NodeId{2},
                  MessageType::kAmrIndication, 1);
  }
  ASSERT_EQ(tracer.records().size(), 3u);
  EXPECT_EQ(tracer.records()[0].time, 7);
  EXPECT_EQ(tracer.records()[2].time, 9);
  EXPECT_EQ(tracer.overflowed(), 7u);
}

TEST(TracerTest, FilterAndForNode) {
  Tracer tracer;
  tracer.enable();
  tracer.record(1, TraceEvent::kSend, NodeId{1}, NodeId{2},
                MessageType::kAmrIndication, 1);
  tracer.record(2, TraceEvent::kSend, NodeId{3}, NodeId{4},
                MessageType::kFsConvergeReq, 1);
  tracer.record(3, TraceEvent::kSend, NodeId{4}, NodeId{1},
                MessageType::kFsConvergeRep, 1);
  EXPECT_EQ(tracer.for_node(NodeId{1}).size(), 2u);
  EXPECT_EQ(tracer.for_node(NodeId{4}).size(), 2u);
  EXPECT_EQ(tracer
                .filter([](const TraceRecord& r) {
                  return r.type == MessageType::kFsConvergeReq;
                })
                .size(),
            1u);
}

TEST(TracerTest, DumpFormatsLines) {
  Tracer tracer;
  tracer.enable();
  tracer.record(1'500'000, TraceEvent::kDrop, NodeId{7}, NodeId{8},
                MessageType::kStoreFragmentReq, 25644);
  const std::string dump = tracer.dump();
  EXPECT_NE(dump.find("DROP"), std::string::npos);
  EXPECT_NE(dump.find("StoreFragmentReq"), std::string::npos);
  EXPECT_NE(dump.find("25644"), std::string::npos);
  EXPECT_NE(dump.find("1.5"), std::string::npos);
}

TEST(TracerTest, DumpHonorsLineLimit) {
  Tracer tracer;
  tracer.enable();
  for (int i = 0; i < 50; ++i) {
    tracer.record(i, TraceEvent::kSend, NodeId{1}, NodeId{2},
                  MessageType::kAmrIndication, 1);
  }
  const std::string dump = tracer.dump(/*max_lines=*/5);
  EXPECT_EQ(static_cast<size_t>(std::count(dump.begin(), dump.end(), '\n')),
            5u);
}

TEST(TracerTest, ClearResets) {
  Tracer tracer;
  tracer.enable(2);
  for (int i = 0; i < 5; ++i) {
    tracer.record(i, TraceEvent::kSend, NodeId{1}, NodeId{2},
                  MessageType::kAmrIndication, 1);
  }
  tracer.clear();
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_EQ(tracer.overflowed(), 0u);
}

TEST(TraceDeterminismTest, IdenticalTraceForSameSeed) {
  auto run = [](uint64_t seed) {
    SimCluster tc(core::ConvergenceOptions::all_opts(), {}, seed);
    tc.net.tracer().enable();
    tc.blackout_fs(0, 0, 0, testing::minutes(10));
    tc.put(Key{"k"}, tc.make_value(4096));
    tc.run_to_quiescence();
    return std::vector<TraceRecord>(tc.net.tracer().records().begin(),
                                    tc.net.tracer().records().end());
  };
  const auto a = run(31);
  const auto b = run(31);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b) << "same seed must replay the exact same message trace";
  const auto c = run(32);
  EXPECT_NE(a, c);
}

TEST(TraceDeterminismTest, EveryDeliveryHasAMatchingSend) {
  SimCluster tc(core::ConvergenceOptions::naive(), {}, 3);
  tc.net.tracer().enable();
  tc.put(Key{"k"}, tc.make_value(2048));
  tc.run_to_quiescence();
  int sends = 0, delivers = 0, drops = 0;
  for (const auto& record : tc.net.tracer().records()) {
    switch (record.event) {
      case TraceEvent::kSend: ++sends; break;
      case TraceEvent::kDeliver: ++delivers; break;
      case TraceEvent::kDrop: ++drops; break;
    }
  }
  EXPECT_EQ(sends, delivers + drops);
  EXPECT_EQ(drops, 0);
}

TEST(TraceConsistencyTest, StatsMatchTracerTotalsOnCleanRun) {
  SimCluster tc(core::ConvergenceOptions::all_opts(), {}, 5);
  tc.net.tracer().enable();
  tc.put(Key{"k"}, tc.make_value(4096));
  tc.run_to_quiescence();
  const Tracer& tracer = tc.net.tracer();
  EXPECT_EQ(tc.net.stats().total_sent_count(),
            tracer.total_count(TraceEvent::kSend));
  EXPECT_EQ(tc.net.stats().total_sent_bytes(),
            tracer.total_bytes(TraceEvent::kSend));
  EXPECT_EQ(tc.net.stats().total_delivered_count(),
            tracer.total_count(TraceEvent::kDeliver));
  EXPECT_EQ(tc.net.trace_consistency_report(), "");
}

TEST(TraceConsistencyTest, StatsMatchTracerTotalsUnderLossAndEviction) {
  SimCluster tc(core::ConvergenceOptions::all_opts(), {}, 6);
  // Tiny ring: the cumulative tallies must stay exact even after heavy
  // eviction, because they are incremented before records are dropped.
  tc.net.tracer().enable(/*capacity=*/16);
  tc.net.add_fault(std::make_shared<net::UniformLoss>(0.05));
  tc.put(Key{"k"}, tc.make_value(4096));
  tc.run_to_quiescence();
  const Tracer& tracer = tc.net.tracer();
  EXPECT_GT(tracer.overflowed(), 0u);
  EXPECT_GT(tracer.total_count(TraceEvent::kDrop), 0u);
  EXPECT_EQ(tc.net.stats().total_dropped_count(),
            tracer.total_count(TraceEvent::kDrop));
  EXPECT_EQ(tc.net.stats().total_sent_count(),
            tracer.total_count(TraceEvent::kSend));
  EXPECT_EQ(tc.net.trace_consistency_report(), "");
}

}  // namespace
}  // namespace pahoehoe::net
