// Chaos engine: schedule generation, serde, the invariant auditor, the
// sweep driver, and schedule shrinking.
#include <gtest/gtest.h>

#include <stdexcept>

#include "chaos/mutate.h"
#include "chaos/schedule.h"
#include "chaos/shrink.h"
#include "chaos/sweep.h"
#include "core/harness.h"
#include "test_util.h"

namespace pahoehoe {
namespace {

using core::FaultSpec;
using testing::minutes;
using testing::seconds;

TEST(ScheduleGenerator, DeterministicInSeed) {
  const core::ClusterTopology topology;
  const chaos::ScheduleOptions options;
  const auto a = chaos::generate_schedule(7, topology, options);
  const auto b = chaos::generate_schedule(7, topology, options);
  EXPECT_EQ(a, b);

  const auto c = chaos::generate_schedule(8, topology, options);
  EXPECT_NE(a, c);
}

TEST(ScheduleGenerator, IntensityScalesFaultCount) {
  const core::ClusterTopology topology;
  chaos::ScheduleOptions options;
  options.intensity = 0.5;
  EXPECT_EQ(chaos::generate_schedule(1, topology, options).size(), 3u);
  options.intensity = 3.0;
  // kUniformLoss is capped at one per schedule, so the count may fall a
  // little short of intensity * 6 but never exceed it.
  const auto big = chaos::generate_schedule(1, topology, options);
  EXPECT_LE(big.size(), 18u);
  EXPECT_GE(big.size(), 15u);
}

TEST(ScheduleGenerator, FamilySwitchesRestrictKinds) {
  const core::ClusterTopology topology;
  chaos::ScheduleOptions options;
  options.blackouts = false;
  options.partitions = false;
  options.loss = false;
  options.crashes = false;
  options.proxy_crashes = false;
  options.duplication = false;
  options.disk_destroys = false;  // corruption only
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (const FaultSpec& spec :
         chaos::generate_schedule(seed, topology, options)) {
      EXPECT_EQ(spec.kind, FaultSpec::Kind::kFragCorrupt);
      EXPECT_GE(spec.start, 30 * kMicrosPerSecond);
      EXPECT_LT(spec.dc, topology.num_dcs);
      EXPECT_LT(spec.index_in_dc, topology.fs_per_dc);
    }
  }

  chaos::ScheduleOptions none = options;
  none.corruption = false;  // every family off
  EXPECT_TRUE(chaos::generate_schedule(1, topology, none).empty());
}

TEST(ScheduleOptions, RejectsNegativeIntensity) {
  chaos::ScheduleOptions options;
  options.intensity = -0.5;
  EXPECT_THROW(chaos::generate_schedule(1, core::ClusterTopology{}, options),
               std::invalid_argument);
  try {
    chaos::validate(options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("intensity"), std::string::npos);
  }
}

TEST(ScheduleOptions, RejectsLossRateOutsideUnitInterval) {
  chaos::ScheduleOptions options;
  options.max_loss_rate = 1.5;
  EXPECT_THROW(chaos::validate(options), std::invalid_argument);
  options.max_loss_rate = -0.1;
  EXPECT_THROW(chaos::validate(options), std::invalid_argument);
}

TEST(ScheduleOptions, RejectsDuplicationRateOutsideUnitInterval) {
  chaos::ScheduleOptions options;
  options.max_duplication_rate = 2.0;
  EXPECT_THROW(chaos::validate(options), std::invalid_argument);
  options.max_duplication_rate = -1.0;
  EXPECT_THROW(chaos::validate(options), std::invalid_argument);
}

TEST(ScheduleOptions, RejectsInvertedWindowBounds) {
  chaos::ScheduleOptions options;
  options.min_window = options.max_window + 1;
  try {
    chaos::generate_schedule(1, core::ClusterTopology{}, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("min_window"), std::string::npos);
  }
  options = {};
  options.min_window = -1;
  EXPECT_THROW(chaos::validate(options), std::invalid_argument);
}

TEST(ScheduleOptions, RejectsNonPositiveFaultHorizon) {
  chaos::ScheduleOptions options;
  options.fault_horizon = 0;
  EXPECT_THROW(chaos::validate(options), std::invalid_argument);
}

TEST(ScheduleOptions, DefaultsValidate) {
  EXPECT_NO_THROW(chaos::validate(chaos::ScheduleOptions{}));
}

TEST(ScheduleSerde, RoundTrips) {
  const auto schedule =
      chaos::generate_schedule(11, core::ClusterTopology{}, {});
  ASSERT_FALSE(schedule.empty());
  const Bytes encoded = chaos::encode_schedule(schedule);
  EXPECT_EQ(chaos::decode_schedule(encoded), schedule);
}

// Property test over generated AND mutated schedules: the binary round
// trip is exact, and the textual repro stays a pastable FaultSpec list for
// every schedule the search can produce.
TEST(ScheduleSerde, GeneratedAndMutatedSchedulesRoundTripManySeeds) {
  const core::ClusterTopology topology;
  std::vector<std::vector<FaultSpec>> corpus;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    std::vector<FaultSpec> schedule =
        chaos::generate_schedule(seed, topology, {});
    if (seed % 2 == 0) {
      schedule = chaos::mutate_schedule(schedule, corpus, seed, topology);
    }
    corpus.push_back(schedule);

    EXPECT_EQ(chaos::decode_schedule(chaos::encode_schedule(schedule)),
              schedule)
        << "seed " << seed;

    const std::string repro = chaos::format_repro(schedule);
    EXPECT_NE(repro.find("config.faults = {"), std::string::npos);
    size_t factory_calls = 0;
    for (size_t pos = repro.find("core::FaultSpec::");
         pos != std::string::npos;
         pos = repro.find("core::FaultSpec::", pos + 1)) {
      ++factory_calls;
    }
    EXPECT_EQ(factory_calls, schedule.size()) << "seed " << seed;
  }
}

TEST(ScheduleSerde, RejectsBadKindAndTruncation) {
  const auto schedule =
      chaos::generate_schedule(11, core::ClusterTopology{}, {});
  Bytes encoded = chaos::encode_schedule(schedule);

  Bytes bad_kind = encoded;
  bad_kind[4] = 0xff;  // first spec's kind byte, after the u32 count
  EXPECT_THROW(chaos::decode_schedule(bad_kind), wire::WireError);

  for (size_t len : {size_t{0}, size_t{3}, encoded.size() - 1}) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<long>(len));
    EXPECT_THROW(chaos::decode_schedule(truncated), wire::WireError);
  }
}

TEST(FormatRepro, EmitsPastableFactoryCalls) {
  const std::vector<FaultSpec> schedule = {
      FaultSpec::frag_corrupt(1, 2, minutes(5)),
      FaultSpec::uniform_loss(0.05),
  };
  const std::string repro = chaos::format_repro(schedule);
  EXPECT_NE(repro.find("config.faults = {"), std::string::npos);
  EXPECT_NE(repro.find("core::FaultSpec::frag_corrupt(1, 2, 300000000)"),
            std::string::npos);
  EXPECT_NE(repro.find("core::FaultSpec::uniform_loss("), std::string::npos);
}

TEST(Auditor, FlagsBudgetOverruns) {
  core::RunConfig config = chaos::chaos_default_config();
  config.workload.num_puts = 3;
  config.event_budget = 10;  // absurdly small: must trip
  const core::RunResult result = core::run_experiment(config);
  ASSERT_FALSE(result.audit.passed());
  bool saw_event_budget = false;
  for (const auto& v : result.audit.violations) {
    if (v.kind == core::InvariantViolation::Kind::kEventBudget) {
      saw_event_budget = true;
    }
  }
  EXPECT_TRUE(saw_event_budget);
}

TEST(Auditor, CleanRunPasses) {
  core::RunConfig config = chaos::chaos_default_config();
  config.workload.num_puts = 5;
  const core::RunResult result = core::run_experiment(config);
  EXPECT_TRUE(result.audit.passed()) << result.audit.to_string();
  EXPECT_EQ(result.puts_acked, 5);
  EXPECT_TRUE(result.quiescent);
  EXPECT_GT(result.gets_attempted, 0);
  EXPECT_EQ(result.gets_mismatched, 0);
}

// The acceptance sweep, sized for ctest (chaos_cli --seeds=50 runs the full
// version): every seed of composed faults must satisfy every invariant.
TEST(ChaosSweep, DefaultIntensityHoldsAllInvariants) {
  chaos::SweepOptions options;
  options.seeds = 12;
  options.shrink_failures = true;
  const chaos::SweepResult result =
      chaos::run_sweep(chaos::chaos_default_config(), options);
  EXPECT_TRUE(result.passed()) << result.summary();
}

// Disk wipe and rebuild: destroying both disks of an FS loses every
// fragment it held, including fragments of versions already verified AMR
// (off the work-lists). The periodic scrub re-adds the damaged versions and
// convergence rebuilds them from siblings, so the auditor must see every
// acked version back at AMR by quiescence.
TEST(ChaosSweep, DiskWipeAndRebuildConverges) {
  core::RunConfig config = chaos::chaos_default_config();
  config.workload.num_puts = 10;
  config.faults = {
      FaultSpec::disk_destroy(0, 1, 0, minutes(10)),
      FaultSpec::disk_destroy(0, 1, 1, minutes(10)),
  };
  const core::RunResult result = core::run_experiment(config);
  EXPECT_TRUE(result.audit.passed()) << result.audit.to_string();
  EXPECT_TRUE(result.quiescent);
  EXPECT_EQ(result.amr, result.versions_total);
}

// Negative control: without scrubbing, nothing ever notices the wiped
// fragments of AMR versions, so they stay short of maximum redundancy and
// the audit fails — proving the test above exercises the rebuild path.
TEST(ChaosSweep, DiskWipeWithoutScrubViolates) {
  core::RunConfig config = chaos::chaos_default_config();
  config.convergence.scrub_interval = 0;
  config.workload.num_puts = 10;
  config.faults = {
      FaultSpec::disk_destroy(0, 1, 0, minutes(10)),
      FaultSpec::disk_destroy(0, 1, 1, minutes(10)),
  };
  const core::RunResult result = core::run_experiment(config);
  ASSERT_FALSE(result.audit.passed());
  bool saw_durable_not_amr = false;
  for (const auto& v : result.audit.violations) {
    if (v.kind == core::InvariantViolation::Kind::kDurableNotAmr ||
        v.kind == core::InvariantViolation::Kind::kAckedNotAmr) {
      saw_durable_not_amr = true;
    }
  }
  EXPECT_TRUE(saw_durable_not_amr);
}

TEST(FormatRepro, DiskDestroyEmitsPastableCall) {
  const std::string repro = chaos::format_repro(
      {FaultSpec::disk_destroy(1, 2, 0, minutes(3))});
  EXPECT_NE(repro.find("core::FaultSpec::disk_destroy(1, 2, 0, 180000000)"),
            std::string::npos);
}

// Scrub-and-repair is what keeps silent corruption from violating
// durability: with scrubbing off, a corrupted fragment of an acked version
// is never noticed (the version left the work-list at AMR), so the version
// stays short of maximum redundancy forever and the audit fails.
TEST(ChaosSweep, CorruptionWithoutScrubViolates) {
  core::RunConfig config = chaos::chaos_default_config();
  config.convergence.scrub_interval = 0;
  config.workload.num_puts = 10;
  config.faults = {FaultSpec::frag_corrupt(0, 1, minutes(10))};
  const core::RunResult result = core::run_experiment(config);
  ASSERT_FALSE(result.audit.passed());
}

// Same scenario through the shrinker: a seeded violating schedule padded
// with five harmless faults must reduce to the single corruption fault —
// deterministically, since every probe re-runs the same seed.
TEST(Shrinker, ReducesCorruptionScheduleToMinimalRepro) {
  core::RunConfig config = chaos::chaos_default_config();
  config.convergence.scrub_interval = 0;
  config.workload.num_puts = 10;

  const std::vector<FaultSpec> schedule = {
      FaultSpec::fs_blackout(0, 0, seconds(10), seconds(40)),
      FaultSpec::duplication_burst(0.3, minutes(2), minutes(4)),
      FaultSpec::frag_corrupt(0, 1, minutes(10)),
      FaultSpec::kls_blackout(1, 0, minutes(5), minutes(6)),
      FaultSpec::uniform_loss(0.02),
      FaultSpec::dc_partition(1, minutes(12), minutes(14)),
  };

  const chaos::ShrinkResult first = chaos::shrink_schedule(config, schedule);
  ASSERT_FALSE(first.audit.passed());
  EXPECT_LE(first.schedule.size(), 2u);
  ASSERT_FALSE(first.schedule.empty());
  bool kept_corruption = false;
  for (const FaultSpec& spec : first.schedule) {
    if (spec.kind == FaultSpec::Kind::kFragCorrupt) kept_corruption = true;
  }
  EXPECT_TRUE(kept_corruption) << chaos::format_repro(first.schedule);

  const chaos::ShrinkResult second = chaos::shrink_schedule(config, schedule);
  EXPECT_EQ(first.schedule, second.schedule);
  EXPECT_EQ(first.runs, second.runs);
}

// --- per-durability-class give-up horizons ----------------------------------

// A corruption landing AFTER the give-up age: under the paper's single-age
// behavior scrub must skip the version (see the negative control below),
// but with per-class horizons (the chaos default) the version is in the
// FS's AMR history, gets the durable horizon, is re-added by scrub, and is
// repaired — the full chaos audit passes and no durable version is ever
// dropped from a work-list.
TEST(ClassGiveup, LateCorruptionIsRepairedUnderDurableHorizon) {
  core::RunConfig config = chaos::chaos_default_config();
  ASSERT_EQ(config.convergence.giveup_age_durable,
            core::ConvergenceOptions::kNeverGiveUp);
  config.workload.num_puts = 10;
  const SimTime late =
      config.convergence.giveup_age + 30LL * 60 * kMicrosPerSecond;
  config.faults = {FaultSpec::frag_corrupt(0, 1, late)};

  const core::RunResult result = core::run_experiment(config);
  EXPECT_TRUE(result.audit.passed()) << result.audit.to_string();
  EXPECT_EQ(result.amr, result.versions_total);
  // Everything stored was durable; the durable horizon dropped none of it.
  EXPECT_EQ(result.given_up, 0);
}

// Negative control: the identical schedule under the single-age behavior
// (giveup_age_durable < 0, figure parity default) leaves the corrupted
// version short of maximum redundancy forever — scrub must honor the one
// horizon it has, so the damage is never repaired and the audit fails.
TEST(ClassGiveup, LateCorruptionViolatesUnderSingleAge) {
  core::RunConfig config = chaos::chaos_default_config();
  config.convergence.giveup_age_durable = -1;
  config.workload.num_puts = 10;
  const SimTime late =
      config.convergence.giveup_age + 30LL * 60 * kMicrosPerSecond;
  config.faults = {FaultSpec::frag_corrupt(0, 1, late)};

  const core::RunResult result = core::run_experiment(config);
  ASSERT_FALSE(result.audit.passed());
  bool saw_durable_not_amr = false;
  for (const auto& v : result.audit.violations) {
    if (v.kind == core::InvariantViolation::Kind::kDurableNotAmr ||
        v.kind == core::InvariantViolation::Kind::kAckedNotAmr) {
      saw_durable_not_amr = true;
    }
  }
  EXPECT_TRUE(saw_durable_not_amr) << result.audit.to_string();
}

// Chaos-audited regression: randomized schedules with per-class horizons on
// (the default) must hold every invariant — in particular, non-durable
// versions still leave the work-lists at giveup_age (quiescence) while
// durable ones are never dropped.
TEST(ClassGiveup, RandomSchedulesHoldAllInvariants) {
  chaos::SweepOptions options;
  options.seeds = 8;
  options.base_seed = 101;  // disjoint from the acceptance sweep's seeds
  const chaos::SweepResult result =
      chaos::run_sweep(chaos::chaos_default_config(), options);
  EXPECT_TRUE(result.passed()) << result.summary();
}

// A schedule that does not fail comes back unchanged with a passing audit.
TEST(Shrinker, PassingScheduleIsReturnedUnchanged) {
  core::RunConfig config = chaos::chaos_default_config();
  config.workload.num_puts = 5;
  const std::vector<FaultSpec> schedule = {
      FaultSpec::fs_blackout(0, 0, seconds(10), seconds(40)),
  };
  const chaos::ShrinkResult result = chaos::shrink_schedule(config, schedule);
  EXPECT_TRUE(result.audit.passed());
  EXPECT_EQ(result.schedule, schedule);
  EXPECT_EQ(result.runs, 1);
}

}  // namespace
}  // namespace pahoehoe
