// Closed-form message-count model for failure-free executions, asserted
// against the simulation. These are the arithmetic identities behind
// Figure 5; pinning them makes any protocol change that silently alters
// the figure's shape fail a test instead.
//
// Per put, with 2 DCs, 4 KLSs, 6 FSs, (k=4, n=12), ≤2 fragments/FS:
//   put phase (both latency optimizations):
//     DecideLocsReq/Rep:      4 + 4
//     StoreMetadataReq/Rep:   2·4 + 2·4      (one wave per data center)
//     StoreFragmentReq/Rep:   (6+12) + (6+12) (wave 1: DC0's 6; wave 2: all)
//   convergence:
//     naive:   each FS verifies: 6·(4 KLS + 5 FS) requests + replies
//     FSAMR-U: one FS verifies, then 5 indications
//     FSAMR-S: all six verify simultaneously + 6·5 indications
//     PutAMR:  6 proxy indications, no convergence at all
#include <gtest/gtest.h>

#include "test_util.h"

namespace pahoehoe {
namespace {

using core::ConvergenceOptions;
using testing::SimCluster;
using wire::MessageType;

constexpr uint64_t kPutMessages = (4 + 4) +            // decide locs
                                  (8 + 8) +            // metadata stores
                                  (18 + 18);           // fragment stores

uint64_t total_sent(const SimCluster& tc) {
  return tc.net.stats().total_sent_count();
}

struct ModelCase {
  const char* name;
  ConvergenceOptions conv;
  uint64_t expected_per_put;
  bool exact;  // unsynchronized rounds make suppression slightly racy
};

class AnalyticModelTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(AnalyticModelTest, FailureFreeMessageCountMatchesClosedForm) {
  const ModelCase& c = GetParam();
  const int puts = 10;
  SimCluster tc(c.conv, {}, 77);
  for (int i = 0; i < puts; ++i) {
    tc.put(Key{"m-" + std::to_string(i)},
           tc.make_value(1024, static_cast<uint8_t>(i + 1)));
  }
  tc.run_to_quiescence();
  const uint64_t expected = c.expected_per_put * puts;
  if (c.exact) {
    EXPECT_EQ(total_sent(tc), expected) << c.name;
  } else {
    // Unsynchronized starts occasionally let two FSs race a verification;
    // allow one extra full step per put in the upper bound.
    EXPECT_GE(total_sent(tc), expected) << c.name;
    EXPECT_LE(total_sent(tc), expected + puts * 23u) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, AnalyticModelTest,
    ::testing::Values(
        // Naive: put + 6 independent full verifications (6·18 req+rep).
        ModelCase{"naive", ConvergenceOptions::naive(),
                  kPutMessages + 6 * (2 * 4 + 2 * 5), true},
        // FSAMR-S: naive + 6·5 indications (synchronized start wastes the
        // suppression, §5.2's +13% effect).
        ModelCase{"fsamr_sync", ConvergenceOptions::fs_amr_sync(),
                  kPutMessages + 6 * (2 * 4 + 2 * 5) + 6 * 5, true},
        // FSAMR-U: one verification + 5 indications (the −57% effect).
        ModelCase{"fsamr_unsync", ConvergenceOptions::fs_amr_unsync(),
                  kPutMessages + (2 * 4 + 2 * 5) + 5, false},
        // PutAMR: put + 6 proxy indications, zero convergence (−68%).
        ModelCase{"putamr", ConvergenceOptions::put_amr(),
                  kPutMessages + 6, true},
        // All: identical to PutAMR when nothing fails (the paper's
        // "0-All is the same as PutAMR" observation).
        ModelCase{"all", ConvergenceOptions::all_opts(), kPutMessages + 6,
                  true}),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      return info.param.name;
    });

TEST(AnalyticModelTest, PutPhaseBreakdownExact) {
  SimCluster tc(ConvergenceOptions::put_amr());
  tc.put(Key{"k"}, tc.make_value(1024));
  tc.run_to_quiescence();
  const auto& stats = tc.net.stats();
  EXPECT_EQ(stats.of(MessageType::kDecideLocsReq).sent_count, 4u);
  EXPECT_EQ(stats.of(MessageType::kDecideLocsRep).sent_count, 4u);
  EXPECT_EQ(stats.of(MessageType::kStoreMetadataReq).sent_count, 8u);
  EXPECT_EQ(stats.of(MessageType::kStoreMetadataRep).sent_count, 8u);
  EXPECT_EQ(stats.of(MessageType::kStoreFragmentReq).sent_count, 18u);
  EXPECT_EQ(stats.of(MessageType::kStoreFragmentRep).sent_count, 18u);
  EXPECT_EQ(stats.of(MessageType::kAmrIndication).sent_count, 6u);
  EXPECT_EQ(total_sent(tc), kPutMessages + 6);
}

TEST(AnalyticModelTest, FragmentBytesDominatePutTraffic) {
  // 18 fragment stores of ~25 KiB each ≈ 450 KiB; everything else is
  // metadata-sized. The byte split must reflect that.
  SimCluster tc(ConvergenceOptions::put_amr());
  tc.put(Key{"k"}, tc.make_value(100 * 1024));
  tc.run_to_quiescence();
  const auto& stats = tc.net.stats();
  const uint64_t frag_bytes =
      stats.of(MessageType::kStoreFragmentReq).sent_bytes;
  EXPECT_GT(frag_bytes, 18u * 25600u);
  EXPECT_GT(frag_bytes * 100, stats.total_sent_bytes() * 95)
      << "fragment stores must be >95% of failure-free put bytes";
}

TEST(AnalyticModelTest, StorageOverheadMatchesTripleReplication) {
  // The paper's premise: (k=4, n=12) costs 3× storage, like 3-way
  // replication, with better fault tolerance. Verify 3× exactly.
  SimCluster tc(ConvergenceOptions::all_opts());
  const size_t value_size = 100 * 1024;
  const auto r = tc.put(Key{"k"}, tc.make_value(value_size));
  tc.run_to_quiescence();
  size_t stored = 0;
  for (int i = 0; i < tc.cluster.num_fs(); ++i) {
    const auto* entry = tc.cluster.fs(i).frag_store().find(r.ov);
    if (entry == nullptr) continue;
    for (const auto& [slot, frag] : entry->fragments) {
      (void)slot;
      stored += frag.data.size();
    }
  }
  EXPECT_EQ(stored, 3 * value_size);
}

}  // namespace
}  // namespace pahoehoe
