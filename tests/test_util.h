// Shared test fixture: a simulator + network + cluster bundle with blocking
// put/get helpers (blocking in simulated time — they drive the event loop
// until the operation's callback fires).
#pragma once

#include <optional>

#include "core/cluster.h"
#include "core/config.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pahoehoe::testing {

struct SimCluster {
  explicit SimCluster(core::ConvergenceOptions conv = {},
                      core::ClusterTopology topology = {},
                      uint64_t seed = 42,
                      core::ProxyOptions proxy_options = {},
                      net::NetworkConfig net_config = {})
      : sim(seed),
        net(sim, net_config),
        cluster(sim, net, topology, conv, proxy_options) {}

  /// Issue a put and run the simulation until the client callback fires.
  core::PutResult put(const Key& key, const Bytes& value,
                      const Policy& policy = Policy{}, int proxy_index = 0) {
    std::optional<core::PutResult> result;
    cluster.proxy(proxy_index)
        .put(key, value, policy,
             [&result](const core::PutResult& r) { result = r; });
    while (!result.has_value() && sim.step()) {
    }
    PAHOEHOE_CHECK_MSG(result.has_value(), "put callback never fired");
    return *result;
  }

  /// Issue a get and run the simulation until the client callback fires.
  core::GetResult get(const Key& key, int proxy_index = 0) {
    std::optional<core::GetResult> result;
    cluster.proxy(proxy_index)
        .get(key, [&result](const core::GetResult& r) { result = r; });
    while (!result.has_value() && sim.step()) {
    }
    PAHOEHOE_CHECK_MSG(result.has_value(), "get callback never fired");
    return *result;
  }

  /// Run the simulation for `duration` more simulated microseconds.
  void run_for(SimTime duration) { sim.run(sim.now() + duration); }
  /// Run the simulation until the event queue drains.
  void run_to_quiescence() { sim.run(); }

  /// Drop all traffic of an FS for [now + start_in, now + start_in + len).
  void blackout_fs(int dc, int index, SimTime start_in, SimTime len) {
    const NodeId id = cluster.view()->fs_by_dc[static_cast<size_t>(dc)]
                                              [static_cast<size_t>(index)];
    net.add_fault(std::make_shared<net::NodeBlackout>(
        id, sim.now() + start_in, sim.now() + start_in + len));
  }

  void blackout_kls(int dc, int index, SimTime start_in, SimTime len) {
    const NodeId id = cluster.view()->kls_by_dc[static_cast<size_t>(dc)]
                                               [static_cast<size_t>(index)];
    net.add_fault(std::make_shared<net::NodeBlackout>(
        id, sim.now() + start_in, sim.now() + start_in + len));
  }

  Bytes make_value(size_t size, uint8_t salt = 1) {
    Bytes value(size);
    for (size_t i = 0; i < size; ++i) {
      value[i] = static_cast<uint8_t>(i * 131 + salt);
    }
    return value;
  }

  sim::Simulator sim;
  net::Network net;
  core::Cluster cluster;
};

constexpr SimTime seconds(int64_t s) { return s * kMicrosPerSecond; }
constexpr SimTime minutes(int64_t m) { return m * 60 * kMicrosPerSecond; }
constexpr SimTime hours(int64_t h) { return h * 3600 * kMicrosPerSecond; }

}  // namespace pahoehoe::testing
