// Experiment-harness tests: the machinery that regenerates the paper's
// figures must itself be trustworthy.
#include <gtest/gtest.h>

#include "core/harness.h"

namespace pahoehoe::core {
namespace {

RunConfig quick_config() {
  RunConfig config = paper_default_config();
  config.convergence = ConvergenceOptions::all_opts();
  config.workload.num_puts = 10;
  config.workload.value_size = 4096;
  return config;
}

TEST(HarnessTest, FailureFreeRunAllAmr) {
  const RunResult r = run_experiment(quick_config());
  EXPECT_EQ(r.puts_attempted, 10);
  EXPECT_EQ(r.puts_acked, 10);
  EXPECT_EQ(r.versions_total, 10);
  EXPECT_EQ(r.amr, 10);
  EXPECT_EQ(r.excess_amr, 0);
  EXPECT_EQ(r.non_durable, 0);
  EXPECT_EQ(r.durable_not_amr, 0);
  EXPECT_TRUE(r.quiescent);
  EXPECT_GT(r.stats.total_sent_count(), 0u);
}

TEST(HarnessTest, DeterministicPerSeed) {
  RunConfig config = quick_config();
  config.seed = 5;
  const RunResult a = run_experiment(config);
  const RunResult b = run_experiment(config);
  EXPECT_EQ(a.stats.total_sent_count(), b.stats.total_sent_count());
  EXPECT_EQ(a.stats.total_sent_bytes(), b.stats.total_sent_bytes());
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events, b.events);
}

TEST(HarnessTest, SeedsProduceDifferentTraces) {
  // Failure-free runs are seed-independent in every aggregate by design
  // (same messages, same timers); under loss, seeds must diverge.
  RunConfig config = quick_config();
  config.faults.push_back(FaultSpec::uniform_loss(0.05));
  config.seed = 5;
  const RunResult a = run_experiment(config);
  config.seed = 6;
  const RunResult b = run_experiment(config);
  EXPECT_NE(a.stats.total_sent_count(), b.stats.total_sent_count());
}

TEST(HarnessTest, FsBlackoutFaultInstalls) {
  RunConfig config = quick_config();
  config.faults.push_back(
      FaultSpec::fs_blackout(0, 0, 0, 10 * 60 * kMicrosPerSecond));
  const RunResult r = run_experiment(config);
  EXPECT_EQ(r.amr, 10);  // convergence repaired everything
  EXPECT_TRUE(r.quiescent);
  // Repair traffic happened.
  EXPECT_GT(r.stats.of(wire::MessageType::kFsConvergeReq).sent_count, 0u);
}

TEST(HarnessTest, WanPartitionKls2P) {
  RunConfig config = quick_config();
  const SimTime ten_min = 10 * 60 * kMicrosPerSecond;
  config.faults.push_back(FaultSpec::kls_blackout(1, 0, 0, ten_min));
  config.faults.push_back(FaultSpec::kls_blackout(1, 1, 0, ten_min));
  const RunResult r = run_experiment(config);
  EXPECT_EQ(r.amr, 10);
  EXPECT_EQ(r.puts_acked, 0);  // only 6 fragment acks possible, < 8
  EXPECT_EQ(r.excess_amr, 10);
  EXPECT_GT(r.stats.wan_sent_bytes(), 0u);
}

TEST(HarnessTest, LossyRunRetriesAndConverges) {
  RunConfig config = quick_config();
  config.workload.retry_failed = true;
  config.faults.push_back(FaultSpec::uniform_loss(0.08));
  const RunResult r = run_experiment(config);
  EXPECT_GE(r.puts_attempted, 10);
  EXPECT_EQ(r.puts_acked, 10);  // retried to success
  EXPECT_GE(r.versions_total, r.puts_attempted);
  EXPECT_EQ(r.durable_not_amr, 0) << "durable versions must converge";
  EXPECT_TRUE(r.quiescent);
}

TEST(HarnessTest, DcPartitionFault) {
  RunConfig config = quick_config();
  config.faults.push_back(
      FaultSpec::dc_partition(1, 0, 10 * 60 * kMicrosPerSecond));
  const RunResult r = run_experiment(config);
  EXPECT_EQ(r.amr, 10);
  EXPECT_TRUE(r.quiescent);
}

TEST(HarnessTest, RunManyAggregates) {
  RunConfig config = quick_config();
  config.workload.num_puts = 5;
  const AggregateResult agg = run_many(config, 3, 100);
  EXPECT_EQ(agg.seeds, 3);
  EXPECT_EQ(agg.msg_count.count(), 3u);
  EXPECT_GT(agg.msg_count.mean(), 0.0);
  EXPECT_DOUBLE_EQ(agg.amr.mean(), 5.0);
  EXPECT_DOUBLE_EQ(agg.puts_acked.mean(), 5.0);
  // Per-type aggregation carries the same totals.
  double sum_types = 0;
  for (const auto& s : agg.count_by_type) sum_types += s.mean();
  EXPECT_NEAR(sum_types, agg.msg_count.mean(), 1e-6);
}

TEST(HarnessTest, PaperDefaultConfigShape) {
  const RunConfig config = paper_default_config();
  EXPECT_EQ(config.topology.num_dcs, 2);
  EXPECT_EQ(config.topology.kls_per_dc, 2);
  EXPECT_EQ(config.topology.fs_per_dc, 3);
  EXPECT_EQ(config.workload.num_puts, 100);
  EXPECT_EQ(config.workload.value_size, 100u * 1024u);
  EXPECT_EQ(config.workload.policy.k, 4);
  EXPECT_EQ(config.workload.policy.n, 12);
}

TEST(ConvergenceOptionsTest, PresetsMatchFigureLabels) {
  EXPECT_EQ(describe(ConvergenceOptions::naive()), "Naive");
  EXPECT_EQ(describe(ConvergenceOptions::fs_amr_sync()), "FSAMR");
  EXPECT_EQ(describe(ConvergenceOptions::fs_amr_unsync()), "FSAMR+Unsync");
  EXPECT_EQ(describe(ConvergenceOptions::put_amr()), "PutAMR+Unsync");
  EXPECT_EQ(describe(ConvergenceOptions::sibling_only()), "Sibling+Unsync");
  EXPECT_EQ(describe(ConvergenceOptions::all_opts()),
            "FSAMR+PutAMR+Sibling+Unsync");
  EXPECT_FALSE(ConvergenceOptions::naive().fs_amr_indication);
  EXPECT_TRUE(ConvergenceOptions::all_opts().sibling_recovery);
}

}  // namespace
}  // namespace pahoehoe::core
