// Tests for the CLI flag parser used by benches and examples.
#include <gtest/gtest.h>

#include <vector>

#include "common/flags.h"

namespace pahoehoe {
namespace {

// Build argv from strings (argv[0] is the program name).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "prog");
    for (auto& s : storage_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(FlagsTest, DefaultsWhenAbsent) {
  Argv args({});
  Flags flags(args.argc(), args.argv());
  EXPECT_EQ(flags.get_int("seeds", 20), 20);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.5), 0.5);
  EXPECT_EQ(flags.get_string("name", "x"), "x");
  EXPECT_TRUE(flags.get_bool("on", true));
  flags.finish();
}

TEST(FlagsTest, EqualsSyntax) {
  Argv args({"--seeds=7", "--rate=0.25", "--name=hello", "--on=false"});
  Flags flags(args.argc(), args.argv());
  EXPECT_EQ(flags.get_int("seeds", 20), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.5), 0.25);
  EXPECT_EQ(flags.get_string("name", "x"), "hello");
  EXPECT_FALSE(flags.get_bool("on", true));
  flags.finish();
}

TEST(FlagsTest, SpaceSeparatedSyntax) {
  Argv args({"--seeds", "9", "--name", "abc"});
  Flags flags(args.argc(), args.argv());
  EXPECT_EQ(flags.get_int("seeds", 20), 9);
  EXPECT_EQ(flags.get_string("name", "x"), "abc");
  flags.finish();
}

TEST(FlagsTest, BareBooleanFlag) {
  Argv args({"--verbose"});
  Flags flags(args.argc(), args.argv());
  EXPECT_TRUE(flags.get_bool("verbose", false));
  flags.finish();
}

TEST(FlagsTest, NegativeNumbers) {
  Argv args({"--offset=-42"});
  Flags flags(args.argc(), args.argv());
  EXPECT_EQ(flags.get_int("offset", 0), -42);
  flags.finish();
}

TEST(FlagsTest, UnknownFlagExits) {
  Argv args({"--tpyo=1"});
  EXPECT_DEATH(
      {
        Flags flags(args.argc(), args.argv());
        flags.get_int("typo", 0);
        flags.finish();
      },
      "unknown flag");
}

TEST(FlagsTest, MalformedIntegerExits) {
  Argv args({"--seeds=abc"});
  EXPECT_DEATH(
      {
        Flags flags(args.argc(), args.argv());
        flags.get_int("seeds", 20);
      },
      "expects an integer");
}

TEST(FlagsTest, MalformedBooleanExits) {
  Argv args({"--on=maybe"});
  EXPECT_DEATH(
      {
        Flags flags(args.argc(), args.argv());
        flags.get_bool("on", true);
      },
      "expects a boolean");
}

}  // namespace
}  // namespace pahoehoe
