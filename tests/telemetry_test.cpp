// Tests for the obs/ telemetry subsystem: metric registry semantics and
// determinism, time-to-AMR tracking against hand-computed values, the
// simulator-driven sampler, JSON round-tripping, and the end-to-end
// guarantee that merged per-seed registries are identical for every --jobs
// value.
#include <gtest/gtest.h>

#include <optional>

#include "core/harness.h"
#include "obs/amr_tracker.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "test_util.h"

namespace pahoehoe {
namespace {

using obs::AmrTracker;
using obs::JsonValue;
using obs::JsonWriter;
using obs::Labels;
using obs::MetricRegistry;
using obs::Sampler;
using obs::TimeSeries;

ObjectVersionId ov(uint32_t n) {
  return ObjectVersionId{Key{"k" + std::to_string(n)}, Timestamp{n, 1}};
}

// --- MetricRegistry ---------------------------------------------------------

TEST(MetricRegistryTest, FindOrCreateReturnsStableInstances) {
  MetricRegistry reg;
  obs::Counter& a = reg.counter("puts_total", {{"node", "n101"}});
  a.inc(3);
  obs::Counter& b = reg.counter("puts_total", {{"node", "n101"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  reg.counter("puts_total", {{"node", "n102"}}).inc();
  EXPECT_EQ(reg.counter_sum("puts_total"), 4u);
  EXPECT_EQ(reg.counter_sum("absent"), 0u);
}

TEST(MetricRegistryTest, LabelOrderIsNormalized) {
  MetricRegistry reg;
  reg.counter("m", {{"b", "2"}, {"a", "1"}}).inc(5);
  EXPECT_EQ(reg.counter("m", {{"a", "1"}, {"b", "2"}}).value(), 5u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistryTest, ToTextIsInsertionOrderIndependent) {
  MetricRegistry forward;
  forward.counter("a_total").inc(1);
  forward.gauge("backlog").set(7);
  forward.counter("z_total", {{"node", "n101"}}).inc(2);
  MetricRegistry backward;
  backward.counter("z_total", {{"node", "n101"}}).inc(2);
  backward.gauge("backlog").set(7);
  backward.counter("a_total").inc(1);
  EXPECT_EQ(forward.to_text(), backward.to_text());
}

TEST(MetricRegistryTest, GaugeTracksPeak) {
  MetricRegistry reg;
  obs::Gauge& g = reg.gauge("backlog");
  g.set(5);
  g.add(3);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.peak(), 8);
}

TEST(MetricRegistryTest, MergeAddsAndIsAssociative) {
  auto make = [](uint64_t c, int64_t gauge_v, double h) {
    MetricRegistry reg;
    reg.counter("c_total").inc(c);
    reg.gauge("g").set(gauge_v);
    reg.histogram("h_s").observe(h);
    return reg;
  };
  const MetricRegistry r1 = make(1, 10, 1.0);
  const MetricRegistry r2 = make(2, 20, 2.0);
  const MetricRegistry r3 = make(3, 30, 3.0);

  MetricRegistry left;  // (r1 + r2) + r3
  left.merge(r1);
  left.merge(r2);
  left.merge(r3);
  MetricRegistry right;  // r1 + (r2 + r3)
  MetricRegistry tail = make(2, 20, 2.0);
  tail.merge(r3);
  right.merge(r1);
  right.merge(tail);
  EXPECT_EQ(left.to_text(), right.to_text());

  EXPECT_EQ(left.counter_sum("c_total"), 6u);
  EXPECT_EQ(left.gauge("g").value(), 60);
  EXPECT_EQ(left.histogram("h_s").count(), 3u);
  EXPECT_DOUBLE_EQ(left.histogram("h_s").sum(), 6.0);
}

TEST(MetricRegistryTest, HistogramQuantilesMatchHandComputedValues) {
  MetricRegistry reg;
  obs::Histogram& h = reg.histogram("lat_s");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  // DDSketch-style bounded relative error (1% default).
  EXPECT_NEAR(h.quantile(0.50), 50.0, 50.0 * 0.011);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 99.0 * 0.011);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 100.0 * 0.011);
}

// --- AmrTracker -------------------------------------------------------------

TEST(AmrTrackerTest, LatencyMatchesHandComputedValues) {
  AmrTracker tracker;
  tracker.on_put_acked(ov(1), testing::seconds(1));
  tracker.on_amr_confirmed(ov(1), testing::seconds(5));  // 4 s
  tracker.on_put_acked(ov(2), testing::seconds(2));
  tracker.on_amr_confirmed(ov(2), 2 * kMicrosPerSecond + 500'000);  // 0.5 s
  ASSERT_EQ(tracker.resolved(), 2u);
  const QuantileSketch& lat = tracker.latency_s();
  EXPECT_NEAR(lat.quantile(0.0), 0.5, 0.5 * 0.011);
  EXPECT_NEAR(lat.quantile(1.0), 4.0, 4.0 * 0.011);
}

TEST(AmrTrackerTest, ConfirmationBeforeAckCountsAsZeroLatency) {
  AmrTracker tracker;
  tracker.on_amr_confirmed(ov(1), testing::seconds(3));
  tracker.on_put_acked(ov(1), testing::seconds(4));
  EXPECT_EQ(tracker.resolved(), 1u);
  EXPECT_EQ(tracker.backlog(), 0u);
  EXPECT_DOUBLE_EQ(tracker.latency_s().quantile(1.0), 0.0);
}

TEST(AmrTrackerTest, DuplicateConfirmationsAreIgnored) {
  AmrTracker tracker;
  tracker.on_put_acked(ov(1), testing::seconds(1));
  tracker.on_amr_confirmed(ov(1), testing::seconds(2));
  tracker.on_amr_confirmed(ov(1), testing::seconds(9));
  EXPECT_EQ(tracker.confirmed(), 1u);
  EXPECT_EQ(tracker.resolved(), 1u);
  EXPECT_NEAR(tracker.latency_s().quantile(1.0), 1.0, 0.011);
}

TEST(AmrTrackerTest, BacklogAndPeakTrackPendingVersions) {
  AmrTracker tracker;
  tracker.on_put_acked(ov(1), 1);
  tracker.on_put_acked(ov(2), 2);
  tracker.on_put_acked(ov(3), 3);
  EXPECT_EQ(tracker.backlog(), 3u);
  tracker.on_amr_confirmed(ov(2), 4);
  tracker.on_amr_confirmed(ov(1), 5);
  EXPECT_EQ(tracker.backlog(), 1u);
  EXPECT_EQ(tracker.backlog_peak(), 3u);
  EXPECT_EQ(tracker.acked(), 3u);
  EXPECT_EQ(tracker.confirmed(), 2u);
}

// --- Sampler / TimeSeries ---------------------------------------------------

TEST(SamplerTest, SamplesOnTheTickGridAndStopsWhenQueueDrains) {
  sim::Simulator sim(1);
  int fired = 0;
  sim.schedule_at(35 * kMicrosPerSecond, [&fired] { ++fired; });
  Sampler sampler(sim, testing::seconds(10), {"fired"},
                  [&fired](SimTime) {
                    return std::vector<double>{static_cast<double>(fired)};
                  });
  sim.run();
  EXPECT_EQ(fired, 1);
  const auto& rows = sampler.series().rows();
  // Baseline at t=0, ticks at 10..40; the t=40 tick sees an empty queue and
  // does not re-arm, so the simulation actually ends.
  ASSERT_EQ(rows.size(), 5u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].t, static_cast<SimTime>(i) * testing::seconds(10));
    if (i > 0) {
      EXPECT_LT(rows[i - 1].t, rows[i].t);
    }
  }
  EXPECT_EQ(sampler.series().value(0, 0), 0.0);
  EXPECT_EQ(sampler.series().value(4, 0), 1.0);
}

TEST(SamplerTest, MaxSamplesCapsTheSeries) {
  sim::Simulator sim(1);
  sim.schedule_at(testing::minutes(10), [] {});
  Sampler sampler(sim, testing::seconds(10), {"x"},
                  [](SimTime) { return std::vector<double>{1.0}; },
                  /*max_samples=*/3);
  sim.run();
  EXPECT_EQ(sampler.series().rows().size(), 3u);
}

TEST(TimeSeriesTest, MergeAlignedAveragesRowsByIndex) {
  TimeSeries a({"v"});
  a.append(0, {1.0});
  a.append(10, {3.0});
  TimeSeries b({"v"});
  b.append(0, {5.0});  // shorter series: contributes to fewer rows

  TimeSeries merged;
  merged.merge_aligned(a);
  merged.merge_aligned(b);
  ASSERT_EQ(merged.rows().size(), 2u);
  EXPECT_EQ(merged.rows()[0].n, 2u);
  EXPECT_DOUBLE_EQ(merged.value(0, 0), 3.0);
  EXPECT_EQ(merged.rows()[1].n, 1u);
  EXPECT_DOUBLE_EQ(merged.value(1, 0), 3.0);
}

// --- JSON -------------------------------------------------------------------

TEST(JsonTest, WriterOutputRoundTripsThroughParser) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "quote\" backslash\\ newline\n");
  w.kv("count", static_cast<uint64_t>(42));
  w.kv("ratio", 0.125);
  w.kv("flag", true);
  w.key("series");
  w.begin_array();
  w.value(1.5).value(-2.0);
  w.end_array();
  w.end_object();

  const std::optional<JsonValue> doc = obs::json_parse(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("name")->string, "quote\" backslash\\ newline\n");
  EXPECT_DOUBLE_EQ(doc->find("count")->number, 42.0);
  EXPECT_DOUBLE_EQ(doc->find("ratio")->number, 0.125);
  EXPECT_TRUE(doc->find("flag")->boolean);
  ASSERT_EQ(doc->find("series")->array.size(), 2u);
  EXPECT_DOUBLE_EQ(doc->find("series")->array[1].number, -2.0);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::json_parse("{\"a\": }").has_value());
  EXPECT_FALSE(obs::json_parse("[1, 2,]").has_value());
  EXPECT_FALSE(obs::json_parse("{} trailing").has_value());
  EXPECT_TRUE(obs::json_parse("{\"a\": [1, 2]} \n").has_value());
}

// --- end to end through the harness ----------------------------------------

core::RunConfig small_config() {
  core::RunConfig config = core::paper_default_config();
  config.convergence = core::ConvergenceOptions::all_opts();
  config.workload.num_puts = 3;
  config.workload.value_size = 8 * 1024;
  return config;
}

TEST(TelemetryHarnessTest, RunPopulatesMetricsAndAmrTracking) {
  core::RunConfig config = small_config();
  config.telemetry.sample_interval = testing::seconds(5);
  config.telemetry.trace_capacity = 4096;
  const core::RunResult result = core::run_experiment(config);

  ASSERT_TRUE(result.audit.passed()) << result.audit.to_string();
  // Failure-free: every put acked, every acked version reached AMR.
  EXPECT_EQ(result.metrics.counter_sum("amr_acked_total"),
            static_cast<uint64_t>(result.puts_acked));
  EXPECT_EQ(result.time_to_amr_s.count(),
            static_cast<uint64_t>(result.puts_acked));
  EXPECT_EQ(result.amr_backlog_final, 0u);
  EXPECT_GE(result.amr_confirmed, static_cast<uint64_t>(result.puts_acked));
  EXPECT_GT(result.metrics.counter_sum("proxy_puts_total"), 0u);
  EXPECT_GT(result.metrics.counter_sum("net_sent_count"), 0u);
  EXPECT_GT(result.metrics.counter_sum("fs_rounds_total"), 0u);
  // net_sent_count summed over {node, type} must agree with NetworkStats.
  EXPECT_EQ(result.metrics.counter_sum("net_sent_count"),
            result.stats.total_sent_count());
  EXPECT_EQ(result.metrics.counter_sum("net_sent_bytes"),
            result.stats.total_sent_bytes());
  // Sampler rows are on the tick grid, strictly increasing.
  ASSERT_FALSE(result.timeline.empty());
  for (size_t i = 1; i < result.timeline.rows().size(); ++i) {
    EXPECT_LT(result.timeline.rows()[i - 1].t, result.timeline.rows()[i].t);
  }
  // Audit passed, so no forensics were captured.
  EXPECT_TRUE(result.trace_tail.empty());
}

TEST(TelemetryHarnessTest, TelemetryOffLeavesRunByteIdentical) {
  core::RunConfig plain = small_config();
  core::RunConfig sampled = small_config();
  sampled.telemetry.trace_capacity = 1024;  // tracing must not perturb
  const core::RunResult a = core::run_experiment(plain);
  const core::RunResult b = core::run_experiment(sampled);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.stats.total_sent_count(), b.stats.total_sent_count());
  EXPECT_EQ(a.metrics.to_text(), b.metrics.to_text());
}

TEST(TelemetryHarnessTest, FailedAuditCapturesTraceForensics) {
  core::RunConfig config = small_config();
  config.telemetry.trace_capacity = 64;
  config.event_budget = 1;  // guaranteed violation
  const core::RunResult result = core::run_experiment(config);
  ASSERT_FALSE(result.audit.passed());
  EXPECT_FALSE(result.trace_tail.empty());
  EXPECT_GT(result.trace_overflowed, 0u);
}

TEST(TelemetryDeterminismTest, AggregateTelemetryIdenticalAcrossJobCounts) {
  core::RunConfig config = small_config();
  config.workload.num_puts = 4;
  config.telemetry.sample_interval = testing::seconds(5);
  constexpr int kSeeds = 6;

  std::optional<core::AggregateResult> base;
  for (const int jobs : {1, 2, 8}) {
    core::AggregateResult agg = core::run_many(config, kSeeds, 77, jobs);
    if (!base.has_value()) {
      base.emplace(std::move(agg));
      continue;
    }
    // Byte equality of the rendered registry is the definition of
    // "identical telemetry".
    EXPECT_EQ(base->metrics.to_text(), agg.metrics.to_text())
        << "jobs=" << jobs;
    ASSERT_EQ(base->timeline.rows().size(), agg.timeline.rows().size());
    for (size_t i = 0; i < agg.timeline.rows().size(); ++i) {
      EXPECT_EQ(base->timeline.rows()[i].t, agg.timeline.rows()[i].t);
      EXPECT_EQ(base->timeline.rows()[i].n, agg.timeline.rows()[i].n);
      EXPECT_EQ(base->timeline.rows()[i].sums, agg.timeline.rows()[i].sums);
    }
    EXPECT_EQ(base->time_to_amr_s.count(), agg.time_to_amr_s.count());
    for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
      EXPECT_EQ(base->time_to_amr_s.quantile(q), agg.time_to_amr_s.quantile(q))
          << "q=" << q << " jobs=" << jobs;
    }
    EXPECT_EQ(base->amr_confirmed.values(), agg.amr_confirmed.values());
    EXPECT_EQ(base->amr_backlog_final.values(), agg.amr_backlog_final.values());
  }
}

}  // namespace
}  // namespace pahoehoe
