// System-level integration tests: long mixed workloads under rolling
// failures, verifying the archive's global invariants at every checkpoint:
//   * durability — every acked put remains readable with identical bytes,
//   * eventual consistency — at quiescence every durable version is AMR,
//   * monotonicity — gets never go back in time for a key,
//   * stability — AMR versions stay AMR through later faults.
#include <gtest/gtest.h>

#include <map>

#include "common/sha256.h"
#include "core/harness.h"
#include "test_util.h"

namespace pahoehoe {
namespace {

using core::ConvergenceOptions;
using core::VersionStatus;
using testing::SimCluster;
using testing::hours;
using testing::minutes;
using testing::seconds;

class Archive {
 public:
  explicit Archive(SimCluster& tc) : tc_(tc) {}

  void put(const std::string& key, uint8_t salt) {
    const Bytes value = tc_.make_value(4096 + salt * 17, salt);
    const auto r = tc_.put(Key{key}, value, Policy{});
    if (r.success) {
      acked_[Key{key}] = Sha256::hash(value);
      last_acked_ts_[Key{key}] = r.ov.ts;
    }
    all_versions_.push_back(r.ov);
  }

  void verify_every_acked_readable() {
    for (const auto& [key, digest] : acked_) {
      const auto got = tc_.get(key);
      ASSERT_TRUE(got.success) << key.value;
      // The content may be a NEWER acked version of the key; the digest
      // must match whatever version was returned — verify via timestamp
      // monotonicity plus content hash of the latest acked version.
      if (got.ts == last_acked_ts_[key]) {
        EXPECT_EQ(Sha256::hash(got.value), digest) << key.value;
      }
      // Gets never return a version older than the last acked one
      // (an acked version is durable, and AMR versions bound the floor).
      auto it = observed_ts_.find(key);
      if (it != observed_ts_.end()) {
        EXPECT_GE(got.ts, it->second) << "get went back in time: " << key.value;
      }
      observed_ts_[key] = got.ts;
    }
  }

  void verify_all_durable_amr_at_quiescence() {
    for (const auto& ov : all_versions_) {
      EXPECT_NE(tc_.cluster.classify(ov), VersionStatus::kDurableNotAmr)
          << to_string(ov);
    }
    EXPECT_EQ(tc_.cluster.total_pending_versions(), 0u);
  }

  size_t acked_count() const { return acked_.size(); }

 private:
  SimCluster& tc_;
  std::map<Key, Sha256::Digest> acked_;
  std::map<Key, Timestamp> last_acked_ts_;
  std::map<Key, Timestamp> observed_ts_;
  std::vector<ObjectVersionId> all_versions_;
};

TEST(SystemTest, RollingFailuresLongWorkload) {
  SimCluster tc(ConvergenceOptions::all_opts(), {}, 2026);
  Archive archive(tc);

  // Phase 1: normal operation.
  for (int i = 0; i < 10; ++i) {
    archive.put("p1-" + std::to_string(i), static_cast<uint8_t>(i + 1));
  }
  archive.verify_every_acked_readable();

  // Phase 2: an FS crashes (volatile state lost), writes continue.
  tc.cluster.fs(2).crash();
  for (int i = 0; i < 10; ++i) {
    archive.put("p2-" + std::to_string(i), static_cast<uint8_t>(i + 30));
  }
  archive.verify_every_acked_readable();
  tc.cluster.fs(2).recover();

  // Phase 3: a KLS blackout overlapping more writes.
  tc.blackout_kls(1, 0, 0, minutes(8));
  for (int i = 0; i < 10; ++i) {
    archive.put("p3-" + std::to_string(i), static_cast<uint8_t>(i + 60));
  }
  archive.verify_every_acked_readable();

  // Phase 4: quiesce and check the global invariant.
  tc.run_to_quiescence();
  archive.verify_all_durable_amr_at_quiescence();
  archive.verify_every_acked_readable();
  EXPECT_EQ(archive.acked_count(), 30u);
}

TEST(SystemTest, OverlappingUpdatesOfFewKeysUnderLoss) {
  SimCluster tc(ConvergenceOptions::all_opts(), {}, 7);
  tc.net.add_fault(std::make_shared<net::UniformLoss>(0.05));
  Archive archive(tc);
  // 30 writes over 6 keys: version chains with overlapping repair work.
  for (int i = 0; i < 30; ++i) {
    archive.put("key-" + std::to_string(i % 6), static_cast<uint8_t>(i + 1));
    tc.run_for(seconds(3));
  }
  tc.run_to_quiescence();
  archive.verify_all_durable_amr_at_quiescence();
  archive.verify_every_acked_readable();
}

TEST(SystemTest, CrashFaultSpecsThroughHarness) {
  core::RunConfig config = core::paper_default_config();
  config.convergence = ConvergenceOptions::all_opts();
  config.workload.num_puts = 15;
  config.workload.value_size = 4096;
  // A true crash (volatile state loss) mid-put-phase, unlike a blackout.
  config.faults.push_back(
      core::FaultSpec::fs_crash(0, 1, 5 * kMicrosPerSecond,
                                10LL * 60 * kMicrosPerSecond));
  config.faults.push_back(
      core::FaultSpec::kls_crash(1, 1, 0, 5LL * 60 * kMicrosPerSecond));
  const auto r = core::run_experiment(config);
  EXPECT_EQ(r.amr, 15);
  EXPECT_EQ(r.durable_not_amr, 0);
  EXPECT_TRUE(r.quiescent);
}

TEST(SystemTest, EverythingAtOnce) {
  // Loss + an FS blackout + a KLS crash + a disk destruction, interleaved
  // with writes and reads. The archive must still converge completely.
  SimCluster tc(ConvergenceOptions::all_opts(), {}, 99);
  Archive archive(tc);
  tc.net.add_fault(std::make_shared<net::UniformLoss>(0.03));
  tc.blackout_fs(1, 1, 0, minutes(6));
  tc.cluster.kls(0, 1).crash();

  for (int i = 0; i < 12; ++i) {
    archive.put("chaos-" + std::to_string(i), static_cast<uint8_t>(i + 1));
    tc.run_for(seconds(2));
  }
  tc.cluster.kls(0, 1).recover();

  // Destroy a disk after some data has converged, then scrub.
  tc.run_for(minutes(3));
  tc.cluster.fs(0).destroy_disk(0);
  tc.cluster.fs(0).scrub();

  tc.run_to_quiescence();
  archive.verify_all_durable_amr_at_quiescence();
  archive.verify_every_acked_readable();
}

TEST(SystemTest, ColdReadOfFullyRepairedArchiveFromMinorityFragments) {
  // Write with most of one DC down, converge, then read with most of the
  // OTHER DC down: proves the repaired fragments carry real data, not just
  // bookkeeping.
  SimCluster tc(ConvergenceOptions::all_opts(), {}, 5);
  tc.blackout_fs(1, 0, 0, minutes(10));
  tc.blackout_fs(1, 1, 0, minutes(10));
  std::vector<std::pair<Key, Sha256::Digest>> digests;
  for (int i = 0; i < 8; ++i) {
    const Key key{"cold-" + std::to_string(i)};
    const Bytes value = tc.make_value(20000, static_cast<uint8_t>(i + 1));
    digests.emplace_back(key, Sha256::hash(value));
    tc.put(key, value);
  }
  tc.run_to_quiescence();  // heal + converge

  // Now DC 0 goes almost entirely dark; reads must be served by DC 1's
  // regenerated fragments (4 of the 6 DC-1 fragments suffice).
  tc.blackout_fs(0, 0, 0, minutes(10));
  tc.blackout_fs(0, 1, 0, minutes(10));
  tc.blackout_fs(0, 2, 0, minutes(10));
  for (const auto& [key, digest] : digests) {
    const auto got = tc.get(key);
    ASSERT_TRUE(got.success) << key.value;
    EXPECT_EQ(Sha256::hash(got.value), digest) << key.value;
  }
}

}  // namespace
}  // namespace pahoehoe
