// Unit tests for the quantile machinery behind the latency workload: exact
// percentiles on known samples, sketch-vs-exact error bounds on large
// samples, and merge associativity across per-seed partials.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "common/stats.h"

namespace pahoehoe {
namespace {

TEST(SampleStatsPercentile, KnownSmallSamples) {
  SampleStats s;
  EXPECT_EQ(s.percentile(50), 0.0);  // empty

  for (double v : {15.0, 20.0, 35.0, 40.0, 50.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 35.0);
  // Linear interpolation: rank 0.25*(5-1) = 1 exactly; 0.30*4 = 1.2.
  EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(30), 23.0);

  SampleStats single;
  single.add(7.0);
  EXPECT_DOUBLE_EQ(single.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(single.percentile(99), 7.0);
}

TEST(SampleStatsPercentile, UnsortedInputIsHandled) {
  SampleStats s;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 9.0);
}

TEST(SampleStatsMerge, EqualsSerialInsertionOrder) {
  SampleStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  SampleStats merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.values(), all.values());
  EXPECT_DOUBLE_EQ(merged.mean(), all.mean());
}

TEST(QuantileSketch, ExactOnDegenerateInputs) {
  QuantileSketch s;
  EXPECT_EQ(s.quantile(0.5), 0.0);  // empty
  s.add(0.0);
  s.add(0.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.quantile(0.99), 0.0);  // all zeros

  QuantileSketch one;
  one.add(3.5);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 3.5);  // clamped to exact min/max
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 3.5);
}

TEST(QuantileSketch, RelativeErrorBoundOnLargeSample) {
  const double alpha = 0.01;
  std::mt19937_64 gen(12345);
  std::lognormal_distribution<double> dist(0.0, 1.5);

  QuantileSketch sketch(alpha);
  SampleStats exact;
  for (int i = 0; i < 200'000; ++i) {
    const double x = dist(gen);
    sketch.add(x);
    exact.add(x);
  }
  for (double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    const double truth = exact.percentile(q * 100.0);
    const double estimate = sketch.quantile(q);
    // The bucket guarantee is relative error <= alpha against the value at
    // the estimated rank; allow 2x slack for the interpolation difference
    // between the two percentile definitions.
    EXPECT_NEAR(estimate, truth, truth * 2.0 * alpha) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(sketch.min(), exact.min());
  EXPECT_DOUBLE_EQ(sketch.max(), exact.max());
}

TEST(QuantileSketch, MergeMatchesSingleSketch) {
  std::mt19937_64 gen(99);
  std::exponential_distribution<double> dist(3.0);
  QuantileSketch whole;
  QuantileSketch parts[4] = {QuantileSketch{}, QuantileSketch{},
                             QuantileSketch{}, QuantileSketch{}};
  for (int i = 0; i < 40'000; ++i) {
    const double x = dist(gen);
    whole.add(x);
    parts[i % 4].add(x);
  }
  QuantileSketch merged;
  for (const QuantileSketch& part : parts) merged.merge(part);
  EXPECT_EQ(merged.count(), whole.count());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    // Bucket-wise addition: merging partials gives the *same* buckets as
    // one sketch over the whole stream, so quantiles match exactly.
    EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeIsAssociativeExactly) {
  std::mt19937_64 gen(7);
  std::lognormal_distribution<double> dist(1.0, 0.8);
  QuantileSketch a, b, c;
  for (int i = 0; i < 5'000; ++i) a.add(dist(gen));
  for (int i = 0; i < 3'000; ++i) b.add(dist(gen));
  for (int i = 0; i < 8'000; ++i) c.add(dist(gen));

  QuantileSketch left = a;   // (a ⊎ b) ⊎ c
  left.merge(b);
  left.merge(c);
  QuantileSketch bc = b;     // a ⊎ (b ⊎ c)
  bc.merge(c);
  QuantileSketch right = a;
  right.merge(bc);

  EXPECT_EQ(left.count(), right.count());
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_DOUBLE_EQ(left.quantile(q), right.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, QuantileIsMonotoneInQ) {
  // Property: for q1 < q2, quantile(q1) <= quantile(q2). Holds by
  // construction (rank walk over ordered buckets, clamped to [min, max]),
  // over several distributions including heavy zero mass and a point mass.
  std::mt19937_64 gen(4242);
  std::lognormal_distribution<double> lognormal(0.0, 2.0);
  std::exponential_distribution<double> exponential(0.5);

  QuantileSketch sketches[3];
  for (int i = 0; i < 20'000; ++i) {
    sketches[0].add(lognormal(gen));
    // Half zeros: exercises the zero-bucket / first-bucket boundary.
    sketches[1].add(i % 2 == 0 ? 0.0 : exponential(gen));
    sketches[2].add(1.0);  // point mass: every quantile equals 1.0
  }
  for (const QuantileSketch& sketch : sketches) {
    double prev = sketch.quantile(0.0);
    for (int step = 1; step <= 1000; ++step) {
      const double q = static_cast<double>(step) / 1000.0;
      const double cur = sketch.quantile(q);
      ASSERT_LE(prev, cur) << "quantile not monotone at q=" << q;
      prev = cur;
    }
  }
}

TEST(QuantileSketchDeathTest, MergeRejectsMismatchedRelativeError) {
  QuantileSketch fine(0.01);
  QuantileSketch coarse(0.05);
  fine.add(1.0);
  coarse.add(2.0);
  // The message must carry both values so the culprit sketch is obvious.
  EXPECT_DEATH(fine.merge(coarse), "relative_error mismatch.*0\\.01.*0\\.05");
}

TEST(QuantileSketch, MergeWithEmptyIsIdentity) {
  QuantileSketch a;
  for (double v : {0.5, 1.0, 2.0}) a.add(v);
  QuantileSketch empty;
  QuantileSketch merged = a;
  merged.merge(empty);
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), a.quantile(0.5));

  QuantileSketch other = empty;
  other.merge(a);
  EXPECT_EQ(other.count(), 3u);
  EXPECT_DOUBLE_EQ(other.quantile(0.5), a.quantile(0.5));
  EXPECT_DOUBLE_EQ(other.min(), 0.5);
  EXPECT_DOUBLE_EQ(other.max(), 2.0);
}

}  // namespace
}  // namespace pahoehoe
