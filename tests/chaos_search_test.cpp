// Coverage-guided schedule search: signature extraction, mutation
// operators, corpus serde, and the search loop's determinism and
// guided-beats-uniform properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "chaos/coverage.h"
#include "chaos/mutate.h"
#include "chaos/search.h"
#include "chaos/schedule.h"
#include "core/harness.h"
#include "test_util.h"

namespace pahoehoe {
namespace {

using core::FaultSpec;
using testing::minutes;

core::RunConfig small_config() {
  core::RunConfig config = chaos::chaos_default_config();
  config.workload.num_puts = 10;
  return config;
}

TEST(Coverage, FeatureHashIsStable) {
  // FNV-1a reference value: the hash lands in corpus files, so it must
  // never drift across platforms or standard libraries.
  EXPECT_EQ(chaos::feature_hash(""), 14695981039346656037ULL);
  EXPECT_EQ(chaos::feature_hash("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(chaos::feature_hash("span:fs:give_up"),
            chaos::feature_hash("span:fs:recovery"));
}

TEST(Coverage, ExtractionIsDeterministicAndNonTrivial) {
  core::RunConfig config = small_config();
  config.telemetry.spans = true;
  config.faults = chaos::generate_schedule(3, config.topology, {});

  const core::RunResult a = core::run_experiment(config);
  const chaos::Coverage cov_a = chaos::extract_coverage(a, config);
  const core::RunResult b = core::run_experiment(config);
  const chaos::Coverage cov_b = chaos::extract_coverage(b, config);

  EXPECT_EQ(cov_a.features, cov_b.features);
  EXPECT_GT(cov_a.size(), 10u);
  // Every run converges its rounds, so the basics are always covered.
  EXPECT_TRUE(cov_a.contains("span:fs:converge_round"));
  EXPECT_TRUE(cov_a.contains("outcome:quiescent"));
}

TEST(Coverage, MergeCountsOnlyNewFeatures) {
  chaos::Coverage a;
  a.features.emplace(chaos::feature_hash("x"), "x");
  chaos::Coverage b;
  b.features.emplace(chaos::feature_hash("x"), "x");
  b.features.emplace(chaos::feature_hash("y"), "y");
  EXPECT_EQ(a.merge(b), 1u);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.merge(b), 0u);
}

TEST(Mutation, DeterministicInSeedAndDistinctAcrossSeeds) {
  const core::ClusterTopology topology;
  const auto parent = chaos::generate_schedule(5, topology, {});
  ASSERT_FALSE(parent.empty());
  const std::vector<std::vector<FaultSpec>> corpus = {parent};

  const auto a = chaos::mutate_schedule(parent, corpus, 42, topology);
  const auto b = chaos::mutate_schedule(parent, corpus, 42, topology);
  EXPECT_EQ(a, b);

  // Across many seeds, mutation must actually change something.
  int changed = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    if (chaos::mutate_schedule(parent, corpus, seed, topology) != parent) {
      ++changed;
    }
  }
  EXPECT_GT(changed, 40);
}

TEST(Mutation, ChildrenStayWithinBounds) {
  const core::ClusterTopology topology;
  chaos::MutateOptions options;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const auto parent =
        chaos::generate_schedule(seed % 7 + 1, topology, {});
    const std::vector<std::vector<FaultSpec>> corpus = {
        parent, chaos::generate_schedule(99, topology, {})};
    const auto child =
        chaos::mutate_schedule(parent, corpus, seed, topology, options);
    ASSERT_FALSE(child.empty());
    ASSERT_LE(child.size(), static_cast<size_t>(options.max_faults));
    for (const FaultSpec& spec : child) {
      EXPECT_GE(spec.start, 0);
      EXPECT_LE(spec.start, options.horizon);
      EXPECT_GE(spec.end, spec.start);
      EXPECT_GE(spec.rate, 0.0);
      EXPECT_LE(spec.rate, 1.0);
      EXPECT_GE(spec.dc, 0);
      EXPECT_LT(spec.dc, topology.num_dcs);
    }
  }
}

TEST(Mutation, ReachesBeyondTheGeneratorHorizon) {
  // The scrub-past-give-up states need faults later than the generator
  // ever places them; widening/shifting must be able to get there.
  const core::ClusterTopology topology;
  const chaos::ScheduleOptions gen;
  chaos::MutateOptions options;
  bool past_generator_horizon = false;
  for (uint64_t seed = 1; seed <= 300 && !past_generator_horizon; ++seed) {
    auto child = chaos::mutate_schedule(
        chaos::generate_schedule(seed, topology, gen), {}, seed, topology,
        options);
    for (const FaultSpec& spec : child) {
      if (spec.start > gen.fault_horizon) past_generator_horizon = true;
    }
  }
  EXPECT_TRUE(past_generator_horizon);
}

TEST(CorpusSerde, RoundTripsAndRejectsMalformed) {
  const core::ClusterTopology topology;
  std::vector<std::vector<FaultSpec>> corpus;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    corpus.push_back(chaos::generate_schedule(seed, topology, {}));
    corpus.push_back(chaos::mutate_schedule(corpus.back(), corpus, seed,
                                            topology));
  }
  const Bytes encoded = chaos::encode_corpus(corpus);
  EXPECT_EQ(chaos::decode_corpus(encoded), corpus);

  for (size_t len : {size_t{0}, size_t{3}, encoded.size() - 1}) {
    const Bytes truncated(encoded.begin(),
                          encoded.begin() + static_cast<long>(len));
    EXPECT_THROW(chaos::decode_corpus(truncated), wire::WireError);
  }
  Bytes trailing = encoded;
  trailing.push_back(0);
  EXPECT_THROW(chaos::decode_corpus(trailing), wire::WireError);
}

// The determinism acceptance criterion: the search trajectory — corpus,
// growth curve, failures, and the rendered summary — is byte-identical for
// every worker count (also exercised under TSan in CI).
TEST(Search, ByteIdenticalForAnyJobs) {
  chaos::SearchOptions options;
  options.rounds = 2;
  options.batch = 4;
  options.seed_corpus = 3;
  options.base_seed = 7;

  std::string first;
  for (int jobs : {1, 2, 8}) {
    options.jobs = jobs;
    const chaos::SearchResult result =
        chaos::run_search(small_config(), options);
    if (first.empty()) {
      first = result.summary();
      EXPECT_GT(result.coverage.size(), 0u);
      EXPECT_FALSE(result.growth.empty());
    } else {
      EXPECT_EQ(result.summary(), first) << "jobs=" << jobs;
    }
  }
}

TEST(Search, InitialCorpusSchedulesAreReplayed) {
  chaos::SearchOptions options;
  options.rounds = 0;
  options.seed_corpus = 1;
  options.initial_corpus = {
      {FaultSpec::frag_corrupt(0, 1, minutes(10))},
  };
  const chaos::SearchResult result =
      chaos::run_search(small_config(), options);
  // initial corpus + 1 generated seed, single round.
  EXPECT_EQ(result.runs, 2);
  ASSERT_FALSE(result.corpus.empty());
  EXPECT_EQ(result.corpus[0].schedule, options.initial_corpus[0]);
}

// The feedback acceptance criterion (the committed CI smoke): on an equal
// run budget and the same base seed, guided search must discover strictly
// more coverage features than the uniform sweep, and must reach each of
// the rare protocol states the issue names.
TEST(Search, GuidedBeatsUniformOnEqualBudgetAndReachesRareStates) {
  const core::RunConfig config = small_config();

  chaos::SearchOptions options;
  options.rounds = 6;
  options.batch = 8;
  options.seed_corpus = 8;
  options.base_seed = 1;
  options.jobs = 0;  // one worker per hardware thread
  const chaos::SearchResult guided = chaos::run_search(config, options);
  EXPECT_TRUE(guided.passed()) << guided.summary();

  const chaos::Coverage uniform = chaos::uniform_coverage(
      config, guided.runs, options.base_seed, options.schedule, 0);

  EXPECT_GT(guided.coverage.size(), uniform.size())
      << "guided search must strictly beat the uniform sweep on "
      << guided.runs << " runs";

  EXPECT_TRUE(guided.coverage.contains(chaos::kFeatureCollision))
      << guided.summary();
  EXPECT_TRUE(guided.coverage.contains(chaos::kFeatureSiblingRecovery))
      << guided.summary();
  // Under chaos defaults durable versions never give up, so their late
  // scrub re-adds are the *legal* celebrated state — the reachable rare
  // feature is the durable-late one, not the horizon violation.
  EXPECT_TRUE(guided.coverage.contains(chaos::kFeatureDurableScrubLate))
      << guided.summary();
}

// Regression: rare:scrub_past_giveup_window must honor the per-durability-
// class horizon (PR 5's giveup_age_durable), judging each scrub re-add
// against *its class's* horizon like fs.cpp does — not the base
// giveup_age. The spans are built directly so each class/age combination
// is exercised exactly.
TEST(Coverage, ScrubReaddJudgedAgainstItsOwnClassHorizon) {
  core::RunConfig config = chaos::chaos_default_config();
  // The chaos defaults this test relies on: finite base horizon, durable
  // versions never given up.
  ASSERT_GT(config.convergence.giveup_age, 0);
  ASSERT_EQ(config.convergence.giveup_age_durable,
            core::ConvergenceOptions::kNeverGiveUp);

  sim::Simulator sim(1);
  const NodeId fs{120};
  const SimTime late = config.convergence.giveup_age + kMicrosPerSecond;
  const auto run_with_readd = [&](const char* note) {
    auto run = std::make_unique<core::RunResult>();
    run->spans.enable(&sim);
    ObjectVersionId ov;
    ov.key = Key{"k"};
    ov.ts = Timestamp{0, 1};  // version born at t=0; re-added at `late`
    run->spans.interval(ov, "scrub_readd", fs, late, late, note);
    return run;
  };

  // Durable-class re-add past the base age but inside its own (infinite)
  // horizon: the celebrated PR-5 state, not a horizon violation.
  const auto durable = run_with_readd("class=durable");
  const chaos::Coverage durable_cov = chaos::extract_coverage(*durable,
                                                              config);
  EXPECT_TRUE(durable_cov.contains(chaos::kFeatureDurableScrubLate));
  EXPECT_FALSE(durable_cov.contains(chaos::kFeatureScrubPastGiveup));

  // Non-durable re-add past the base horizon: a genuine disagreement
  // between scrub and the give-up logic.
  const auto non_durable = run_with_readd("class=non-durable");
  const chaos::Coverage non_durable_cov =
      chaos::extract_coverage(*non_durable, config);
  EXPECT_TRUE(non_durable_cov.contains(chaos::kFeatureScrubPastGiveup));
  EXPECT_FALSE(non_durable_cov.contains(chaos::kFeatureDurableScrubLate));

  // With a finite durable horizon equal to the base age, the same durable
  // re-add violates its own class's horizon too.
  config.convergence.giveup_age_durable = config.convergence.giveup_age;
  const chaos::Coverage finite_cov = chaos::extract_coverage(*durable,
                                                             config);
  EXPECT_TRUE(finite_cov.contains(chaos::kFeatureScrubPastGiveup));
  EXPECT_TRUE(finite_cov.contains(chaos::kFeatureDurableScrubLate));
}

}  // namespace
}  // namespace pahoehoe
