// Determinism and pure-observer contract for tail-latency exemplars and
// cohort attribution (DESIGN.md §13):
//  * worst-K is a total order with value-then-version-id tie-breaks, so
//    colliding latencies retain a unique, insertion-order-independent set;
//  * stores merge to the same bytes in any order (KMV reservoir + sorted
//    worst-K union);
//  * run_many renders worst-K and attribution byte-identically for
//    jobs ∈ {1, 2, 8};
//  * enabling exemplars leaves run digests unchanged (the prof_test
//    side-channel contract);
//  * every retained exemplar's integer components telescope exactly to its
//    AmrTracker latency.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/harness.h"
#include "obs/attribution.h"
#include "obs/exemplar.h"

namespace pahoehoe {
namespace {

obs::Exemplar make_exemplar(const std::string& key, SimTime ts_wall,
                            uint64_t seed, SimTime latency) {
  obs::Exemplar e;
  e.ov = ObjectVersionId{Key{key}, Timestamp{ts_wall, 101}};
  e.seed = seed;
  e.latency_micros = latency;
  // Telescoping components: all of it in recovery_backoff.
  e.components[static_cast<size_t>(obs::PathComponent::kRecoveryBackoff)] =
      latency;
  return e;
}

TEST(ExemplarStore, WorstKIsValueThenVersionIdOrdered) {
  obs::ExemplarStore store(/*worst_k=*/3, /*reservoir=*/8);
  store.add(make_exemplar("obj-2", 2'000'000, 7, 500));
  store.add(make_exemplar("obj-0", 0, 7, 900));
  store.add(make_exemplar("obj-3", 3'000'000, 7, 700));
  store.add(make_exemplar("obj-1", 1'000'000, 7, 600));  // evicted: 4th worst

  ASSERT_EQ(store.worst().size(), 3u);
  EXPECT_EQ(store.worst()[0].ov.key.value, "obj-0");  // 900
  EXPECT_EQ(store.worst()[1].ov.key.value, "obj-3");  // 700
  EXPECT_EQ(store.worst()[2].ov.key.value, "obj-1");  // 600
  EXPECT_EQ(store.count(), 4u);  // the sketch still saw every add
}

TEST(ExemplarStore, TieBreakIsStableWhenLatenciesCollide) {
  // Same latency everywhere: retention must fall back to (version id, seed)
  // and be independent of insertion order.
  std::vector<obs::Exemplar> all;
  for (int i = 0; i < 6; ++i) {
    all.push_back(make_exemplar("obj-" + std::to_string(i),
                                i * kMicrosPerSecond, /*seed=*/42, 1000));
  }
  all.push_back(make_exemplar("obj-0", 0, /*seed=*/43, 1000));  // seed tie

  obs::ExemplarStore forward(/*worst_k=*/4, /*reservoir=*/4);
  for (const obs::Exemplar& e : all) forward.add(e);
  obs::ExemplarStore backward(/*worst_k=*/4, /*reservoir=*/4);
  for (auto it = all.rbegin(); it != all.rend(); ++it) backward.add(*it);

  EXPECT_EQ(forward.to_text(), backward.to_text());
  ASSERT_EQ(forward.worst().size(), 4u);
  // All latencies equal -> version id ascending, seed breaking the ov tie.
  EXPECT_EQ(forward.worst()[0].seed, 42u);
  EXPECT_EQ(forward.worst()[0].ov.key.value, "obj-0");
  EXPECT_EQ(forward.worst()[1].seed, 43u);
  EXPECT_EQ(forward.worst()[1].ov.key.value, "obj-0");
  EXPECT_EQ(forward.worst()[2].ov.key.value, "obj-1");
}

TEST(ExemplarStore, MergeIsOrderIndependent) {
  std::vector<obs::ExemplarStore> parts;
  for (int p = 0; p < 3; ++p) {
    obs::ExemplarStore store(/*worst_k=*/4, /*reservoir=*/6);
    for (int i = 0; i < 10; ++i) {
      store.add(make_exemplar("obj-" + std::to_string(p * 10 + i),
                              (p * 10 + i) * kMicrosPerSecond,
                              /*seed=*/100 + p, (i + 1) * 37 + p));
    }
    parts.push_back(store);
  }
  obs::ExemplarStore left(/*worst_k=*/4, /*reservoir=*/6);
  left.merge(parts[0]);
  left.merge(parts[1]);
  left.merge(parts[2]);
  obs::ExemplarStore right(/*worst_k=*/4, /*reservoir=*/6);
  right.merge(parts[2]);
  right.merge(parts[0]);
  right.merge(parts[1]);
  EXPECT_EQ(left.to_text(), right.to_text());
  EXPECT_EQ(left.worst().size(), 4u);
  EXPECT_EQ(left.reservoir().size(), 6u);
  EXPECT_EQ(left.count(), 30u);
}

TEST(ExemplarStoreDeathTest, MergeRejectsMismatchedCaps) {
  obs::ExemplarStore a(/*worst_k=*/8, /*reservoir=*/64);
  obs::ExemplarStore b(/*worst_k=*/4, /*reservoir=*/64);
  EXPECT_DEATH(a.merge(b), "cap mismatch.*8 vs 4");
}

TEST(ExemplarStore, StratifiedBucketsTheReservoirByDecile) {
  obs::ExemplarStore store(/*worst_k=*/2, /*reservoir=*/64);
  for (int i = 1; i <= 50; ++i) {
    store.add(make_exemplar("obj-" + std::to_string(i),
                            i * kMicrosPerSecond, 9,
                            static_cast<SimTime>(i) * 100'000));
  }
  const auto strata = store.stratified(/*per_decile=*/2);
  ASSERT_EQ(strata.size(), 10u);
  size_t total = 0;
  double prev_max = -1.0;
  for (const auto& stratum : strata) {
    ASSERT_LE(stratum.size(), 2u);
    total += stratum.size();
    for (const obs::Exemplar& e : stratum) {
      // Strata ascend: everything here is >= the previous stratum's top.
      EXPECT_GE(e.seconds(), prev_max - 1e-12);
    }
    if (!stratum.empty()) prev_max = stratum.back().seconds();
  }
  EXPECT_GT(total, 0u);
}

// --- attribution ------------------------------------------------------------

TEST(Attribution, SplitsCohortsAndRanksTheGap) {
  // 18 versions at 1 s, one at 10 s, one at 601 s. The p95 rank (18 of 20)
  // lands on the 10 s version, whose sketch bucket midpoint sits strictly
  // above 10 s, so the >= tail test keeps it in the body and only the 601 s
  // version crosses the threshold. (An all-equal body would clamp the
  // threshold onto the point mass and pull everything into the tail — the
  // >= is what guarantees the max-latency version is never dropped.)
  obs::ExemplarStore store(/*worst_k=*/4, /*reservoir=*/16);
  std::vector<obs::VersionCriticalPath> paths;
  for (int i = 0; i < 20; ++i) {
    obs::VersionCriticalPath path;
    path.ov = ObjectVersionId{Key{"obj-" + std::to_string(i)},
                              Timestamp{i * kMicrosPerSecond, 101}};
    path.components[static_cast<size_t>(obs::PathComponent::kNetworkWait)] =
        i == 18 ? 10 * kMicrosPerSecond : kMicrosPerSecond;
    // The last version is the tail: +600 s of recovery_backoff.
    if (i == 19) {
      path.components[static_cast<size_t>(
          obs::PathComponent::kRecoveryBackoff)] = 600 * kMicrosPerSecond;
    }
    path.confirm_time = path.ack_time + path.total();
    store.add(obs::Exemplar{path.ov, /*seed=*/1, path.total(),
                            path.components});
    paths.push_back(path);
  }
  obs::AttributionBuilder builder(store);
  for (const obs::VersionCriticalPath& path : paths) builder.add(path);
  const obs::AttributionReport report = builder.finish();

  EXPECT_EQ(report.versions, 20u);
  EXPECT_GT(report.tail_threshold_s, 9.0);
  EXPECT_LT(report.tail_threshold_s, 11.0);
  EXPECT_EQ(report.tail.versions, 1u);
  EXPECT_EQ(report.body.versions, 19u);
  // Exact integer accumulation per cohort: tail 1+600 s, body 18x1 + 10 s.
  EXPECT_EQ(report.tail.latency_micros,
            static_cast<uint64_t>(601 * kMicrosPerSecond));
  EXPECT_EQ(report.body.latency_micros,
            static_cast<uint64_t>(28 * kMicrosPerSecond));
  ASSERT_FALSE(report.ranked.empty());
  EXPECT_EQ(report.ranked.front().component,
            obs::PathComponent::kRecoveryBackoff);
  EXPECT_GT(report.ranked.front().gap_share, 0.99);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("recovery_backoff"), std::string::npos);
  EXPECT_NE(text.find("top exemplar key=obj-19"), std::string::npos);
}

TEST(Attribution, JsonRoundTripPreservesIntegersExactly) {
  obs::ExemplarStore store(/*worst_k=*/3, /*reservoir=*/8);
  std::vector<obs::VersionCriticalPath> paths;
  for (int i = 0; i < 5; ++i) {
    obs::VersionCriticalPath path;
    path.ov = ObjectVersionId{Key{"obj-" + std::to_string(i)},
                              Timestamp{i * 10, 7}};
    path.components[0] = 123 + i;
    path.components[2] = i == 4 ? 987654321 : 17;
    path.confirm_time = path.total();
    store.add(obs::Exemplar{path.ov, 55, path.total(), path.components});
    paths.push_back(path);
  }
  obs::AttributionBuilder builder(store);
  for (const obs::VersionCriticalPath& path : paths) builder.add(path);
  const obs::AttributionReport report = builder.finish();

  obs::JsonWriter w;
  obs::attribution_to_json(w, report);
  const std::optional<obs::JsonValue> doc = obs::json_parse(w.str());
  ASSERT_TRUE(doc.has_value());
  const std::optional<obs::AttributionReport> parsed =
      obs::attribution_from_json(*doc);
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->versions, report.versions);
  EXPECT_EQ(parsed->tail.versions, report.tail.versions);
  EXPECT_EQ(parsed->tail.latency_micros, report.tail.latency_micros);
  EXPECT_EQ(parsed->body.component_micros, report.body.component_micros);
  ASSERT_EQ(parsed->top.size(), report.top.size());
  for (size_t i = 0; i < report.top.size(); ++i) {
    EXPECT_EQ(parsed->top[i], report.top[i]);
  }
  ASSERT_EQ(parsed->ranked.size(), report.ranked.size());
  EXPECT_EQ(parsed->ranked.front().component,
            report.ranked.front().component);
  // The diff of a report against itself is all-zero deltas.
  const std::string diff = obs::attribution_diff_text(*parsed, report);
  EXPECT_NE(diff.find("delta +0.0%"), std::string::npos);
}

TEST(Attribution, EmptyStoreYieldsEmptyReport) {
  obs::ExemplarStore store;
  obs::AttributionBuilder builder(store);
  const obs::AttributionReport report = builder.finish();
  EXPECT_TRUE(report.empty());
  EXPECT_NE(report.to_text().find("no resolved versions"), std::string::npos);
}

// --- harness integration ----------------------------------------------------

core::RunConfig small_config() {
  core::RunConfig config = core::paper_default_config();
  config.convergence = core::ConvergenceOptions::all_opts();
  config.workload.num_puts = 8;
  config.workload.value_size = 8 * 1024;
  config.workload.get_fraction = 0.5;
  // A mid-run blackout so recovery/backoff phases produce a real tail.
  config.faults.push_back(core::FaultSpec::fs_blackout(
      0, 1, 30 * kMicrosPerSecond, 600 * kMicrosPerSecond));
  config.telemetry.exemplars = true;
  return config;
}

void append_exact(std::ostringstream& os, const std::vector<double>& values) {
  os.precision(17);
  for (double v : values) os << v << ';';
  os << '\n';
}

/// Everything observable about an aggregate except the exemplar side
/// channel itself — the prof_test digest, reused to prove exemplars are a
/// pure observer.
std::string digest(const core::AggregateResult& agg) {
  std::ostringstream os;
  os << agg.seeds << '\n';
  append_exact(os, agg.msg_count.values());
  append_exact(os, agg.msg_bytes.values());
  append_exact(os, agg.wan_bytes.values());
  append_exact(os, agg.puts_attempted.values());
  append_exact(os, agg.puts_acked.values());
  append_exact(os, agg.amr.values());
  append_exact(os, agg.excess_amr.values());
  append_exact(os, agg.durable_not_amr.values());
  append_exact(os, agg.non_durable.values());
  append_exact(os, agg.end_time_s.values());
  append_exact(os, agg.put_latency_mean_s.values());
  os.precision(17);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    os << agg.put_latency_s.quantile(q) << ';'
       << agg.get_latency_s.quantile(q) << ';'
       << agg.time_to_amr_s.quantile(q) << ';';
  }
  os << '\n';
  os << agg.metrics.to_text();
  os << agg.critical_path.to_text();
  return os.str();
}

TEST(ExemplarHarness, ByteIdenticalForAnyJobs) {
  const core::RunConfig config = small_config();
  const core::AggregateResult serial = core::run_many(config, 4, 42, 1);
  const std::string amr_text = serial.amr_exemplars.to_text();
  const std::string put_text = serial.put_op_exemplars.to_text();
  const std::string get_text = serial.get_op_exemplars.to_text();
  const std::string attribution_text = serial.attribution.to_text();
  EXPECT_GT(serial.amr_exemplars.count(), 0u);
  EXPECT_FALSE(serial.attribution.empty());

  for (int jobs : {2, 8}) {
    const core::AggregateResult parallel = core::run_many(config, 4, 42, jobs);
    EXPECT_EQ(parallel.amr_exemplars.to_text(), amr_text) << "jobs=" << jobs;
    EXPECT_EQ(parallel.put_op_exemplars.to_text(), put_text)
        << "jobs=" << jobs;
    EXPECT_EQ(parallel.get_op_exemplars.to_text(), get_text)
        << "jobs=" << jobs;
    EXPECT_EQ(parallel.attribution.to_text(), attribution_text)
        << "jobs=" << jobs;
  }
}

TEST(ExemplarHarness, PureObserverDigestIdenticalOnVsOff) {
  core::RunConfig config = small_config();
  config.telemetry.exemplars = false;
  config.telemetry.spans = true;  // hold spans fixed; toggle only exemplars
  const core::AggregateResult off = core::run_many(config, 4, 42, 2);
  EXPECT_EQ(off.amr_exemplars.count(), 0u);
  EXPECT_TRUE(off.attribution.empty());

  config.telemetry.exemplars = true;
  const core::AggregateResult on = core::run_many(config, 4, 42, 2);
  EXPECT_GT(on.amr_exemplars.count(), 0u);
  EXPECT_EQ(digest(on), digest(off));
}

TEST(ExemplarHarness, ComponentsTelescopeToAmrLatencyForEveryExemplar) {
  const core::RunConfig config = small_config();
  const core::AggregateResult agg = core::run_many(config, 4, 42, 2);

  // The AMR exemplar stream is exactly the AmrTracker-confirmed stream.
  EXPECT_EQ(agg.amr_exemplars.count(), agg.time_to_amr_s.count());
  const auto check = [](const obs::Exemplar& e) {
    SimTime sum = 0;
    for (SimTime micros : e.components) sum += micros;
    EXPECT_EQ(sum, e.latency_micros) << obs::exemplar_to_text(e);
  };
  ASSERT_FALSE(agg.amr_exemplars.worst().empty());
  for (const obs::Exemplar& e : agg.amr_exemplars.worst()) check(e);
  for (const obs::Exemplar& e : agg.amr_exemplars.reservoir()) check(e);
  for (const obs::Exemplar& e : agg.attribution.top) check(e);

  // Cohort integer totals partition the critical-path totals exactly.
  for (size_t c = 0; c < obs::kPathComponentCount; ++c) {
    const auto component = static_cast<obs::PathComponent>(c);
    EXPECT_EQ(agg.attribution.tail.component_micros[c] +
                  agg.attribution.body.component_micros[c],
              agg.critical_path.total_micros(component))
        << obs::to_string(component);
  }
  EXPECT_EQ(agg.attribution.versions, agg.critical_path.versions());
}

}  // namespace
}  // namespace pahoehoe
