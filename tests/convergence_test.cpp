// Convergence protocol tests (paper §3.4 naïve protocol, §4 optimizations).
#include <gtest/gtest.h>

#include "test_util.h"

namespace pahoehoe {
namespace {

using core::ConvergenceOptions;
using core::VersionStatus;
using testing::SimCluster;
using testing::hours;
using testing::minutes;
using testing::seconds;
using wire::MessageType;

uint64_t sent(const SimCluster& tc, MessageType type) {
  return tc.net.stats().of(type).sent_count;
}

TEST(NaiveConvergenceTest, FailureFreeVersionsReachAmrViaVerification) {
  SimCluster tc(ConvergenceOptions::naive());
  const auto r = tc.put(Key{"k"}, tc.make_value(4096));
  EXPECT_GT(tc.cluster.total_pending_versions(), 0u);
  tc.run_to_quiescence();
  EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  EXPECT_EQ(tc.cluster.total_pending_versions(), 0u);
  // Every FS ran a full verification step: converge messages to all 4 KLSs
  // and 5 sibling FSs, each answered.
  EXPECT_EQ(sent(tc, MessageType::kKlsConvergeReq), 6u * 4u);
  EXPECT_EQ(sent(tc, MessageType::kKlsConvergeRep), 6u * 4u);
  EXPECT_EQ(sent(tc, MessageType::kFsConvergeReq), 6u * 5u);
  EXPECT_EQ(sent(tc, MessageType::kFsConvergeRep), 6u * 5u);
  EXPECT_EQ(sent(tc, MessageType::kAmrIndication), 0u);
  // No repair traffic in the failure-free case.
  EXPECT_EQ(sent(tc, MessageType::kRetrieveFragReq), 0u);
  EXPECT_EQ(sent(tc, MessageType::kSiblingStoreReq), 0u);
}

TEST(NaiveConvergenceTest, EachFsConvergesIndependently) {
  SimCluster tc(ConvergenceOptions::naive());
  tc.put(Key{"k"}, tc.make_value(4096));
  tc.run_to_quiescence();
  for (int i = 0; i < tc.cluster.num_fs(); ++i) {
    EXPECT_EQ(tc.cluster.fs(i).versions_converged(), 1u) << "fs " << i;
  }
}

TEST(FsAmrIndicationTest, UnsynchronizedStartSuppressesSiblingSteps) {
  SimCluster tc(ConvergenceOptions::fs_amr_unsync());
  tc.put(Key{"k"}, tc.make_value(4096));
  tc.run_to_quiescence();
  // The first FS to round verifies AMR and tells the others; most FSs never
  // run their own step.
  EXPECT_EQ(sent(tc, MessageType::kAmrIndication), 5u);
  uint64_t converged = 0;
  for (int i = 0; i < tc.cluster.num_fs(); ++i) {
    converged += tc.cluster.fs(i).versions_converged();
  }
  EXPECT_EQ(converged, 1u);
  EXPECT_EQ(sent(tc, MessageType::kKlsConvergeReq), 4u);
  EXPECT_EQ(tc.cluster.total_pending_versions(), 0u);
}

TEST(FsAmrIndicationTest, SynchronizedStartDuplicatesWork) {
  SimCluster sync(ConvergenceOptions::fs_amr_sync());
  sync.put(Key{"k"}, sync.make_value(4096));
  sync.run_to_quiescence();
  // All six FSs step at the same instant; indications arrive too late to
  // save work and add their own messages (the paper's FSAMR-S +13%).
  EXPECT_EQ(sent(sync, MessageType::kKlsConvergeReq), 24u);
  EXPECT_EQ(sent(sync, MessageType::kAmrIndication), 30u);
  EXPECT_EQ(sync.cluster.total_pending_versions(), 0u);
}

TEST(PutAmrIndicationTest, MinAgeDefersEarlyConvergence) {
  ConvergenceOptions conv = ConvergenceOptions::put_amr();
  SimCluster tc(conv);
  tc.put(Key{"k"}, tc.make_value(4096));
  // Work list drains via the proxy's indication, not via rounds.
  tc.run_for(seconds(1));
  EXPECT_EQ(tc.cluster.total_pending_versions(), 0u);
  EXPECT_EQ(sent(tc, MessageType::kAmrIndication), 6u);
  EXPECT_EQ(sent(tc, MessageType::kKlsConvergeReq), 0u);
}

TEST(PutAmrIndicationTest, LostIndicationsOnlyCostExtraConvergenceWork) {
  // Drop every AMR indication: the optimization is not needed for
  // correctness (§4.1) — FSs fall back to running convergence steps after
  // min_age and the version still reaches AMR.
  ConvergenceOptions conv = ConvergenceOptions::put_amr();
  conv.min_age = seconds(30);
  SimCluster tc(conv);
  tc.net.add_fault(
      std::make_shared<net::TypedDrop>(wire::MessageType::kAmrIndication));
  const auto r = tc.put(Key{"k"}, tc.make_value(1024));
  tc.run_to_quiescence();
  EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  EXPECT_EQ(tc.cluster.total_pending_versions(), 0u);
  // Convergence work actually happened (it would not have, had the
  // indications been delivered).
  EXPECT_GT(sent(tc, MessageType::kKlsConvergeReq), 0u);
}

TEST(ConvergenceTest, FsBlackoutHealsToAmr) {
  for (const auto& conv :
       {ConvergenceOptions::put_amr(), ConvergenceOptions::fs_amr_unsync(),
        ConvergenceOptions::sibling_only(), ConvergenceOptions::all_opts(),
        ConvergenceOptions::naive()}) {
    SimCluster tc(conv);
    tc.blackout_fs(0, 0, 0, minutes(10));
    const auto r = tc.put(Key{"k"}, tc.make_value(8192));
    EXPECT_TRUE(r.success);  // 10 acks ≥ 8
    tc.run_to_quiescence();
    EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr)
        << core::describe(conv);
    EXPECT_EQ(tc.cluster.total_pending_versions(), 0u);
  }
}

TEST(ConvergenceTest, FourFsBlackoutStillHealsToAmr) {
  // 4 of 6 FSs down: exactly k=4 fragments stored; everything else must be
  // regenerated after the heal.
  for (const auto& conv :
       {ConvergenceOptions::all_opts(), ConvergenceOptions::naive()}) {
    SimCluster tc(conv);
    tc.blackout_fs(0, 0, 0, minutes(10));
    tc.blackout_fs(0, 1, 0, minutes(10));
    tc.blackout_fs(1, 0, 0, minutes(10));
    tc.blackout_fs(1, 1, 0, minutes(10));
    const auto r = tc.put(Key{"k"}, tc.make_value(8192));
    EXPECT_FALSE(r.success);  // only 4 acks < 8
    tc.run_to_quiescence();
    EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr)
        << core::describe(conv);
  }
}

TEST(ConvergenceTest, RecoveredFragmentsAreBitExact) {
  SimCluster tc(ConvergenceOptions::all_opts());
  tc.blackout_fs(0, 0, 0, minutes(10));
  const Bytes value = tc.make_value(100 * 1024);
  const auto r = tc.put(Key{"k"}, value);
  tc.run_to_quiescence();
  ASSERT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  // A get served entirely by the recovered data center's FSs round-trips.
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, value);
}

TEST(ConvergenceTest, SiblingRecoveryPushesFragments) {
  // Two FSs down → after heal, one recovery run regenerates both FSs'
  // fragments; SiblingStore pushes appear.
  SimCluster tc(ConvergenceOptions::all_opts());
  tc.blackout_fs(0, 0, 0, minutes(10));
  tc.blackout_fs(1, 0, 0, minutes(10));
  const auto r = tc.put(Key{"k"}, tc.make_value(8192));
  tc.run_to_quiescence();
  ASSERT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  EXPECT_GE(sent(tc, MessageType::kSiblingStoreReq), 1u);
  // Total fragment reads bounded near k (one amortized recovery), not
  // 2 × k (each FS reading independently).
  EXPECT_LE(sent(tc, MessageType::kRetrieveFragReq), 6u);
}

TEST(ConvergenceTest, PlainRecoveryWithoutSiblingOptimization) {
  // Same scenario without §4.2: each needy FS performs its own get-style
  // recovery; no SiblingStore messages, more fragment reads.
  ConvergenceOptions conv = ConvergenceOptions::fs_amr_unsync();
  SimCluster tc(conv);
  tc.blackout_fs(0, 0, 0, minutes(10));
  tc.blackout_fs(1, 0, 0, minutes(10));
  const auto r = tc.put(Key{"k"}, tc.make_value(8192));
  tc.run_to_quiescence();
  ASSERT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  EXPECT_EQ(sent(tc, MessageType::kSiblingStoreReq), 0u);
  EXPECT_GE(sent(tc, MessageType::kRetrieveFragReq), 10u);
}

TEST(ConvergenceTest, LowerIdBacksOffWhenRecoveriesCollide) {
  // Force simultaneous recovery intents with synchronized rounds: both
  // needy FSs step at the same instant; the lower id must stand down.
  ConvergenceOptions conv;
  conv.sibling_recovery = true;
  conv.unsync_rounds = false;
  SimCluster tc(conv);
  tc.blackout_fs(0, 0, 0, minutes(10));
  tc.blackout_fs(1, 0, 0, minutes(10));
  const auto r = tc.put(Key{"k"}, tc.make_value(8192));
  tc.run_to_quiescence();
  ASSERT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  uint64_t backoffs = 0;
  for (int i = 0; i < tc.cluster.num_fs(); ++i) {
    backoffs += tc.cluster.fs(i).recovery_backoffs();
  }
  EXPECT_GE(backoffs, 1u);
}

TEST(ConvergenceTest, KlsBlackoutLearnsVersionThroughConvergence) {
  SimCluster tc(ConvergenceOptions::all_opts());
  tc.blackout_kls(0, 0, 0, minutes(10));
  const auto r = tc.put(Key{"k"}, tc.make_value(4096));
  EXPECT_TRUE(r.success);
  tc.run_to_quiescence();
  EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  // The blacked-out KLS now stores the timestamp and complete metadata,
  // learned from FS converge messages after the heal.
  EXPECT_TRUE(tc.cluster.kls(0, 0).timestamp_store().contains(r.ov.key,
                                                              r.ov.ts));
  const Metadata* meta = tc.cluster.kls(0, 0).meta_store().find(r.ov);
  ASSERT_NE(meta, nullptr);
  EXPECT_TRUE(meta->complete());
}

TEST(ConvergenceTest, WanPartitionStyleKlsFailureHealsToAmr) {
  // The paper's 2P case: both KLSs of DC 1 unreachable during the put, so
  // no DC-1 locations are decided and only DC 0's six fragments exist.
  // After the heal, convergence must (a) complete the metadata via an
  // FS decide_locs, (b) notify the DC-1 FSs, (c) recover their fragments.
  for (const auto& conv :
       {ConvergenceOptions::all_opts(), ConvergenceOptions::naive()}) {
    SimCluster tc(conv);
    tc.blackout_kls(1, 0, 0, minutes(10));
    tc.blackout_kls(1, 1, 0, minutes(10));
    const auto r = tc.put(Key{"k"}, tc.make_value(8192));
    EXPECT_FALSE(r.success);  // 6 acks < 8
    tc.run_to_quiescence();
    EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr)
        << core::describe(conv);
    EXPECT_GE(sent(tc, MessageType::kFsDecideLocsReq), 1u)
        << core::describe(conv);
  }
}

TEST(ConvergenceTest, KlsNotifiesSiblingsOfFsLocationDecision) {
  SimCluster tc(ConvergenceOptions::all_opts());
  tc.blackout_kls(1, 0, 0, minutes(10));
  tc.blackout_kls(1, 1, 0, minutes(10));
  tc.put(Key{"k"}, tc.make_value(4096));
  tc.run_to_quiescence();
  EXPECT_GE(sent(tc, MessageType::kKlsLocsNotify), 1u);
}

TEST(ConvergenceTest, LossyNetworkEventuallyConverges) {
  net::NetworkConfig net_config;
  SimCluster tc(ConvergenceOptions::all_opts(), {}, 42, {}, net_config);
  tc.net.add_fault(std::make_shared<net::UniformLoss>(0.10));
  std::vector<core::PutResult> results;
  for (int i = 0; i < 10; ++i) {
    results.push_back(
        tc.put(Key{"k" + std::to_string(i)}, tc.make_value(4096, static_cast<uint8_t>(i))));
  }
  tc.run_to_quiescence();
  for (const auto& r : results) {
    const auto status = tc.cluster.classify(r.ov);
    EXPECT_NE(status, VersionStatus::kDurableNotAmr)
        << "durable versions must converge";
  }
  EXPECT_TRUE(tc.cluster.converged_quiescent());
}

TEST(ConvergenceTest, NonDurableVersionGivesUpAtCutoff) {
  ConvergenceOptions conv = ConvergenceOptions::all_opts();
  conv.giveup_age = hours(2);  // shorten the two-month horizon for the test
  SimCluster tc(conv);
  // 5 FSs down long enough that only ≤2 fragments ever exist, and the
  // blackout outlives the give-up horizon.
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 3; ++i) {
      if (dc == 0 && i == 0) continue;
      tc.blackout_fs(dc, i, 0, hours(3));
    }
  }
  const auto r = tc.put(Key{"k"}, tc.make_value(4096));
  EXPECT_FALSE(r.success);
  tc.run_to_quiescence();
  EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kNonDurable);
  uint64_t given_up = 0;
  for (int i = 0; i < tc.cluster.num_fs(); ++i) {
    given_up += tc.cluster.fs(i).versions_given_up();
  }
  EXPECT_GE(given_up, 1u);
  EXPECT_EQ(tc.cluster.total_pending_versions(), 0u);
}

TEST(ConvergenceTest, ExponentialBackoffBoundsRetryTraffic) {
  // One FS permanently down: convergence can never finish for its
  // fragments, but backoff must keep the retry traffic sub-linear in time.
  ConvergenceOptions conv = ConvergenceOptions::all_opts();
  conv.giveup_age = hours(50);
  SimCluster tc(conv);
  tc.blackout_fs(0, 0, 0, hours(49));
  const auto r = tc.put(Key{"k"}, tc.make_value(2048));
  EXPECT_TRUE(r.success);

  tc.run_for(hours(1));
  const uint64_t early = tc.net.stats().total_sent_count();
  tc.run_for(hours(8));
  const uint64_t late = tc.net.stats().total_sent_count();
  // 8 further hours must cost (much) less than 8× the first hour.
  EXPECT_LT(late - early, 4 * early);
}

TEST(ConvergenceTest, AmrIsStableAcrossCrashRecover) {
  SimCluster tc(ConvergenceOptions::all_opts());
  const Bytes value = tc.make_value(4096);
  const auto r = tc.put(Key{"k"}, value);
  tc.run_to_quiescence();
  ASSERT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);

  for (int i = 0; i < tc.cluster.num_fs(); ++i) tc.cluster.fs(i).crash();
  tc.run_for(seconds(10));
  for (int i = 0; i < tc.cluster.num_fs(); ++i) tc.cluster.fs(i).recover();
  tc.run_to_quiescence();
  // Persistent stores survived: still AMR, no convergence work resumed.
  EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  EXPECT_EQ(tc.cluster.total_pending_versions(), 0u);
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, value);
}

TEST(ConvergenceTest, CrashDuringConvergenceResumesFromStableStorage) {
  SimCluster tc(ConvergenceOptions::naive());
  tc.blackout_fs(0, 0, 0, minutes(10));
  const auto r = tc.put(Key{"k"}, tc.make_value(4096));
  // Crash a live FS mid-convergence; its work-list is persistent.
  tc.run_for(minutes(2));
  tc.cluster.fs(1).crash();
  tc.run_for(minutes(2));
  tc.cluster.fs(1).recover();
  tc.run_to_quiescence();
  EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
}

TEST(ConvergenceTest, ConvergeRequestDoesNotResurrectAmrVersion) {
  SimCluster tc(ConvergenceOptions::naive());
  const auto r = tc.put(Key{"k"}, tc.make_value(1024));
  tc.run_to_quiescence();
  ASSERT_EQ(tc.cluster.total_pending_versions(), 0u);
  // Hand-deliver a converge request for the already-AMR version.
  const Metadata* meta = tc.cluster.kls(0).meta_store().find(r.ov);
  ASSERT_NE(meta, nullptr);
  net::send_message(tc.net, tc.cluster.fs(1).id(), tc.cluster.fs(0).id(),
                    wire::FsConvergeReq{r.ov, *meta, false});
  tc.run_to_quiescence();
  EXPECT_EQ(tc.cluster.fs(0).pending_versions(), 0u);
}

TEST(ConvergenceTest, CorruptedFragmentRepairedAfterScrub) {
  SimCluster tc(ConvergenceOptions::all_opts());
  const Bytes value = tc.make_value(8192);
  const auto r = tc.put(Key{"k"}, value);
  tc.run_to_quiescence();
  ASSERT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);

  // Find an FS owning a fragment and corrupt it.
  const Metadata* meta = tc.cluster.kls(0).meta_store().find(r.ov);
  ASSERT_NE(meta, nullptr);
  core::FragmentServer* victim = nullptr;
  for (int i = 0; i < tc.cluster.num_fs(); ++i) {
    if (tc.cluster.fs(i).id() == meta->locs[0]->fs) {
      victim = &tc.cluster.fs(i);
    }
  }
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(victim->corrupt_fragment(r.ov, 0));
  EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kDurableNotAmr);

  EXPECT_EQ(victim->scrub(), 1u);
  tc.run_to_quiescence();
  EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, value);
}

TEST(ConvergenceTest, DestroyedDiskRebuiltAfterScrub) {
  SimCluster tc(ConvergenceOptions::all_opts());
  const auto r1 = tc.put(Key{"a"}, tc.make_value(4096, 1));
  const auto r2 = tc.put(Key{"b"}, tc.make_value(4096, 2));
  tc.run_to_quiescence();
  ASSERT_EQ(tc.cluster.classify(r1.ov), VersionStatus::kAmr);

  const size_t lost = tc.cluster.fs(0).destroy_disk(0);
  EXPECT_GE(lost, 1u);
  EXPECT_GE(tc.cluster.fs(0).scrub(), 1u);
  tc.run_to_quiescence();
  EXPECT_EQ(tc.cluster.classify(r1.ov), VersionStatus::kAmr);
  EXPECT_EQ(tc.cluster.classify(r2.ov), VersionStatus::kAmr);
}

TEST(ConvergenceTest, DeterministicForSameSeed) {
  auto run = [](uint64_t seed) {
    SimCluster tc(ConvergenceOptions::all_opts(), {}, seed);
    tc.blackout_fs(0, 0, 0, minutes(10));
    tc.put(Key{"k"}, tc.make_value(4096));
    tc.run_to_quiescence();
    return std::make_pair(tc.net.stats().total_sent_count(),
                          tc.net.stats().total_sent_bytes());
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(ConvergenceTest, ManyKeysAllConverge) {
  SimCluster tc(ConvergenceOptions::all_opts());
  tc.blackout_fs(1, 2, 0, minutes(10));
  std::vector<core::PutResult> results;
  for (int i = 0; i < 25; ++i) {
    results.push_back(tc.put(Key{"key-" + std::to_string(i)},
                             tc.make_value(2048, static_cast<uint8_t>(i))));
  }
  tc.run_to_quiescence();
  for (const auto& r : results) {
    EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  }
  EXPECT_EQ(tc.cluster.total_pending_versions(), 0u);
}

}  // namespace
}  // namespace pahoehoe
