#include <gtest/gtest.h>

#include "common/sha256.h"
#include "storage/stores.h"

namespace pahoehoe::storage {
namespace {

ObjectVersionId ov(const std::string& key, SimTime t) {
  return ObjectVersionId{Key{key}, Timestamp{t, 1}};
}

Metadata meta_with(std::initializer_list<std::pair<int, uint32_t>> slots) {
  Metadata meta{Policy{}};
  for (auto [slot, fs] : slots) {
    meta.locs[static_cast<size_t>(slot)] = Location{NodeId{fs}, 0};
  }
  return meta;
}

// --- TimestampStore ----------------------------------------------------------

TEST(TimestampStoreTest, AddAndFindSorted) {
  TimestampStore store;
  store.add(Key{"k"}, Timestamp{30, 1});
  store.add(Key{"k"}, Timestamp{10, 1});
  store.add(Key{"k"}, Timestamp{20, 1});
  const auto tss = store.find(Key{"k"});
  ASSERT_EQ(tss.size(), 3u);
  EXPECT_EQ(tss[0].wall_micros, 10);
  EXPECT_EQ(tss[2].wall_micros, 30);
}

TEST(TimestampStoreTest, AddIsIdempotent) {
  TimestampStore store;
  store.add(Key{"k"}, Timestamp{1, 1});
  store.add(Key{"k"}, Timestamp{1, 1});
  EXPECT_EQ(store.find(Key{"k"}).size(), 1u);
}

TEST(TimestampStoreTest, MissingKeyIsEmpty) {
  TimestampStore store;
  EXPECT_TRUE(store.find(Key{"nope"}).empty());
  EXPECT_FALSE(store.contains(Key{"nope"}, Timestamp{1, 1}));
}

TEST(TimestampStoreTest, KeysAreIndependent) {
  TimestampStore store;
  store.add(Key{"a"}, Timestamp{1, 1});
  store.add(Key{"b"}, Timestamp{2, 1});
  EXPECT_EQ(store.find(Key{"a"}).size(), 1u);
  EXPECT_EQ(store.find(Key{"b"}).size(), 1u);
  EXPECT_EQ(store.key_count(), 2u);
}

// --- MetaStore -----------------------------------------------------------------

TEST(MetaStoreTest, MergeCreatesEntry) {
  MetaStore store;
  EXPECT_TRUE(store.merge(ov("k", 1), meta_with({{0, 5}})));
  ASSERT_NE(store.find(ov("k", 1)), nullptr);
  EXPECT_EQ(store.find(ov("k", 1))->decided_count(), 1);
}

TEST(MetaStoreTest, MergeUnionsLocations) {
  MetaStore store;
  store.merge(ov("k", 1), meta_with({{0, 5}}));
  EXPECT_TRUE(store.merge(ov("k", 1), meta_with({{1, 6}})));
  EXPECT_EQ(store.find(ov("k", 1))->decided_count(), 2);
}

TEST(MetaStoreTest, MergeNeverRemovesLocations) {
  MetaStore store;
  store.merge(ov("k", 1), meta_with({{0, 5}, {1, 6}}));
  EXPECT_FALSE(store.merge(ov("k", 1), meta_with({})));
  EXPECT_EQ(store.find(ov("k", 1))->decided_count(), 2);
}

TEST(MetaStoreTest, MergeExistingLocationWins) {
  MetaStore store;
  store.merge(ov("k", 1), meta_with({{0, 5}}));
  store.merge(ov("k", 1), meta_with({{0, 99}}));
  EXPECT_EQ(store.find(ov("k", 1))->locs[0]->fs, NodeId{5});
}

TEST(MetaStoreTest, MergeFillsValueSizeOnce) {
  MetaStore store;
  Metadata m{Policy{}, 0};
  store.merge(ov("k", 1), m);
  Metadata m2{Policy{}, 777};
  EXPECT_TRUE(store.merge(ov("k", 1), m2));
  EXPECT_EQ(store.find(ov("k", 1))->value_size, 777u);
  Metadata m3{Policy{}, 888};  // does not override
  store.merge(ov("k", 1), m3);
  EXPECT_EQ(store.find(ov("k", 1))->value_size, 777u);
}

TEST(MetaStoreTest, EraseRemovesEntry) {
  MetaStore store;
  store.merge(ov("k", 1), meta_with({}));
  store.erase(ov("k", 1));
  EXPECT_EQ(store.find(ov("k", 1)), nullptr);
  EXPECT_FALSE(store.contains(ov("k", 1)));
  EXPECT_EQ(store.size(), 0u);
}

TEST(MetaStoreTest, AllVersionsStableOrder) {
  MetaStore store;
  store.merge(ov("b", 1), meta_with({}));
  store.merge(ov("a", 2), meta_with({}));
  store.merge(ov("a", 1), meta_with({}));
  const auto versions = store.all_versions();
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0].key.value, "a");
  EXPECT_EQ(versions[0].ts.wall_micros, 1);
  EXPECT_EQ(versions[2].key.value, "b");
}

// --- FragStore -----------------------------------------------------------------

Bytes frag_data(uint8_t fill = 0x42) { return Bytes(100, fill); }

TEST(FragStoreTest, PutAndRetrieveIntactFragment) {
  FragStore store;
  const Bytes data = frag_data();
  store.put_fragment(ov("k", 1), meta_with({{0, 5}}), 0, data,
                     Sha256::hash(data), 0);
  const StoredFragment* frag = store.fragment_if_intact(ov("k", 1), 0);
  ASSERT_NE(frag, nullptr);
  EXPECT_EQ(frag->data, data);
}

TEST(FragStoreTest, MissingFragmentIsNull) {
  FragStore store;
  EXPECT_EQ(store.fragment_if_intact(ov("k", 1), 0), nullptr);
  store.put_fragment(ov("k", 1), meta_with({}), 0, frag_data(),
                     Sha256::hash(frag_data()), 0);
  EXPECT_EQ(store.fragment_if_intact(ov("k", 1), 1), nullptr);
}

TEST(FragStoreTest, CorruptFragmentReadsAsBottom) {
  FragStore store;
  const Bytes data = frag_data();
  store.put_fragment(ov("k", 1), meta_with({}), 3, data, Sha256::hash(data),
                     0);
  ASSERT_TRUE(store.corrupt_fragment(ov("k", 1), 3));
  EXPECT_EQ(store.fragment_if_intact(ov("k", 1), 3), nullptr);
  EXPECT_EQ(store.corrupt_fragments(ov("k", 1)), (std::vector<int>{3}));
}

TEST(FragStoreTest, CorruptMissingFragmentReturnsFalse) {
  FragStore store;
  EXPECT_FALSE(store.corrupt_fragment(ov("k", 1), 0));
}

TEST(FragStoreTest, OverwriteRepairsCorruption) {
  FragStore store;
  const Bytes data = frag_data();
  store.put_fragment(ov("k", 1), meta_with({}), 0, data, Sha256::hash(data),
                     0);
  store.corrupt_fragment(ov("k", 1), 0);
  store.put_fragment(ov("k", 1), meta_with({}), 0, data, Sha256::hash(data),
                     0);
  EXPECT_NE(store.fragment_if_intact(ov("k", 1), 0), nullptr);
}

TEST(FragStoreTest, DestroyDiskRemovesOnlyThatDisk) {
  FragStore store;
  const Bytes data = frag_data();
  store.put_fragment(ov("k", 1), meta_with({}), 0, data, Sha256::hash(data),
                     /*disk=*/0);
  store.put_fragment(ov("k", 1), meta_with({}), 1, data, Sha256::hash(data),
                     /*disk=*/1);
  store.put_fragment(ov("k2", 2), meta_with({}), 5, data, Sha256::hash(data),
                     /*disk=*/1);
  EXPECT_EQ(store.destroy_disk(1), 2u);
  EXPECT_NE(store.fragment_if_intact(ov("k", 1), 0), nullptr);
  EXPECT_EQ(store.fragment_if_intact(ov("k", 1), 1), nullptr);
  EXPECT_EQ(store.fragment_if_intact(ov("k2", 2), 5), nullptr);
}

TEST(FragStoreTest, UpsertMergesMetadata) {
  FragStore store;
  store.upsert(ov("k", 1), meta_with({{0, 5}}));
  store.upsert(ov("k", 1), meta_with({{1, 6}}));
  EXPECT_EQ(store.find(ov("k", 1))->meta.decided_count(), 2);
}

TEST(FragStoreTest, UpsertFillsValueSize) {
  FragStore store;
  store.upsert(ov("k", 1), Metadata{Policy{}, 0});
  store.upsert(ov("k", 1), Metadata{Policy{}, 555});
  EXPECT_EQ(store.find(ov("k", 1))->meta.value_size, 555u);
}

TEST(FragStoreTest, AllVersionsEnumerates) {
  FragStore store;
  store.upsert(ov("a", 1), meta_with({}));
  store.upsert(ov("b", 1), meta_with({}));
  EXPECT_EQ(store.all_versions().size(), 2u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(StoredFragmentTest, IntactChecksDigestWithCache) {
  StoredFragment frag;
  frag.data = frag_data();
  frag.digest = Sha256::hash(frag.data);
  EXPECT_TRUE(frag.intact());
  frag.data[0] ^= 1;
  // The verification result is cached until explicitly invalidated (the
  // fault-injection entry points do this).
  EXPECT_TRUE(frag.intact());
  frag.invalidate_intact_cache();
  EXPECT_FALSE(frag.intact());
}

}  // namespace
}  // namespace pahoehoe::storage
