#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/sha256.h"
#include "wire/messages.h"
#include "wire/serde.h"

namespace pahoehoe::wire {
namespace {

// --- primitives ---------------------------------------------------------------

TEST(SerdeTest, PrimitiveRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdeTest, TruncatedInputThrows) {
  Writer w;
  w.u32(7);
  Bytes data = w.data();
  data.pop_back();
  Reader r(data);
  EXPECT_THROW(r.u32(), WireError);
}

TEST(SerdeTest, TruncatedLengthPrefixedFieldThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow; none do
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), WireError);
}

TEST(SerdeTest, InvalidBooleanThrows) {
  Bytes data{2};
  Reader r(data);
  EXPECT_THROW(r.boolean(), WireError);
}

TEST(SerdeTest, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_exhausted(), WireError);
}

TEST(SerdeTest, EmptyBytesAndString) {
  Writer w;
  w.bytes({});
  w.str("");
  Reader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.str().empty());
}

// --- domain types ---------------------------------------------------------------

Metadata sample_metadata() {
  Metadata meta{Policy{}, 12345};
  meta.locs[0] = Location{NodeId{8}, 0};
  meta.locs[3] = Location{NodeId{9}, 1};
  meta.locs[11] = Location{NodeId{10}, 0};
  return meta;
}

TEST(SerdeTest, MetadataRoundTrip) {
  const Metadata meta = sample_metadata();
  Writer w;
  encode(w, meta);
  Reader r(w.data());
  const Metadata back = decode_metadata(r);
  EXPECT_EQ(back, meta);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdeTest, PolicyValidationOnDecode) {
  Policy bad;
  bad.k = 8;
  bad.n = 4;  // invalid: n < k
  Writer w;
  encode(w, bad);
  Reader r(w.data());
  EXPECT_THROW(decode_policy(r), WireError);
}

TEST(SerdeTest, TimestampRoundTrip) {
  Writer w;
  encode(w, Timestamp{123456789, 42});
  Reader r(w.data());
  EXPECT_EQ(decode_timestamp(r), (Timestamp{123456789, 42}));
}

// --- message round trips -----------------------------------------------------------

ObjectVersionId sample_ov() {
  return ObjectVersionId{Key{"photo-123"}, Timestamp{987654321, 3}};
}

TEST(MessagesTest, DecideLocsReqRoundTripProxyAndFs) {
  DecideLocsReq req{sample_ov(), Policy{}, false};
  EXPECT_EQ(req.type(), MessageType::kDecideLocsReq);
  const auto back = DecideLocsReq::decode(req.encode());
  EXPECT_EQ(back.ov, req.ov);
  EXPECT_FALSE(back.from_fs);

  req.from_fs = true;
  EXPECT_EQ(req.type(), MessageType::kFsDecideLocsReq);
  EXPECT_TRUE(DecideLocsReq::decode(req.encode()).from_fs);
}

TEST(MessagesTest, DecideLocsRepRoundTrip) {
  DecideLocsRep rep{sample_ov(), sample_metadata(), DataCenterId{1}};
  const auto back = DecideLocsRep::decode(rep.encode());
  EXPECT_EQ(back.ov, rep.ov);
  EXPECT_EQ(back.meta, rep.meta);
  EXPECT_EQ(back.dc, rep.dc);
}

TEST(MessagesTest, StoreMetadataRoundTrip) {
  StoreMetadataReq req{sample_ov(), sample_metadata()};
  const auto back = StoreMetadataReq::decode(req.encode());
  EXPECT_EQ(back.ov, req.ov);
  EXPECT_EQ(back.meta, req.meta);

  StoreMetadataRep rep{sample_ov(), Status::kFailure};
  const auto rback = StoreMetadataRep::decode(rep.encode());
  EXPECT_EQ(rback.status, Status::kFailure);
}

TEST(MessagesTest, StoreFragmentRoundTrip) {
  StoreFragmentReq req;
  req.ov = sample_ov();
  req.meta = sample_metadata();
  req.frag_index = 7;
  req.fragment = Bytes{9, 8, 7, 6};
  req.digest = Sha256::hash(req.fragment);
  const auto back = StoreFragmentReq::decode(req.encode());
  EXPECT_EQ(back.ov, req.ov);
  EXPECT_EQ(back.frag_index, 7);
  EXPECT_EQ(back.fragment, req.fragment);
  EXPECT_EQ(back.digest, req.digest);
}

TEST(MessagesTest, AmrIndicationRoundTrip) {
  AmrIndication msg{sample_ov()};
  EXPECT_EQ(AmrIndication::decode(msg.encode()).ov, msg.ov);
}

TEST(MessagesTest, RetrieveTsRoundTrip) {
  RetrieveTsReq req{Key{"k"}, {}, 0};
  EXPECT_EQ(RetrieveTsReq::decode(req.encode()).key, req.key);

  RetrieveTsRep rep;
  rep.key = Key{"k"};
  rep.entries.push_back({Timestamp{1, 1}, sample_metadata()});
  rep.entries.push_back({Timestamp{2, 1}, Metadata{}});
  const auto back = RetrieveTsRep::decode(rep.encode());
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].ts, (Timestamp{1, 1}));
  EXPECT_EQ(back.entries[0].meta, rep.entries[0].meta);
  EXPECT_EQ(back.entries[1].meta.locs.size(), 0u);
}

TEST(MessagesTest, RetrieveFragRoundTrip) {
  RetrieveFragReq req{sample_ov(), 11};
  const auto back = RetrieveFragReq::decode(req.encode());
  EXPECT_EQ(back.frag_index, 11);

  RetrieveFragRep rep{sample_ov(), 11, true, Bytes{1, 2}};
  const auto rback = RetrieveFragRep::decode(rep.encode());
  EXPECT_TRUE(rback.found);
  EXPECT_EQ(rback.fragment, (Bytes{1, 2}));

  RetrieveFragRep bot{sample_ov(), 11, false, {}};
  EXPECT_FALSE(RetrieveFragRep::decode(bot.encode()).found);
}

TEST(MessagesTest, ConvergeRoundTrips) {
  KlsConvergeReq kreq{sample_ov(), sample_metadata()};
  EXPECT_EQ(KlsConvergeReq::decode(kreq.encode()).meta, kreq.meta);
  KlsConvergeRep krep{sample_ov(), true};
  EXPECT_TRUE(KlsConvergeRep::decode(krep.encode()).verified);

  FsConvergeReq freq{sample_ov(), sample_metadata(), true};
  EXPECT_TRUE(FsConvergeReq::decode(freq.encode()).intends_recovery);

  FsConvergeRep frep;
  frep.ov = sample_ov();
  frep.verified = false;
  frep.needed_fragments = {2, 5};
  frep.also_recovering = true;
  const auto fback = FsConvergeRep::decode(frep.encode());
  EXPECT_EQ(fback.needed_fragments, (std::vector<uint16_t>{2, 5}));
  EXPECT_TRUE(fback.also_recovering);
  EXPECT_FALSE(fback.verified);
}

TEST(MessagesTest, SiblingStoreRoundTrip) {
  SiblingStoreReq req;
  req.ov = sample_ov();
  req.meta = sample_metadata();
  req.frag_index = 4;
  req.fragment = Bytes(100, 0x5a);
  req.digest = Sha256::hash(req.fragment);
  const auto back = SiblingStoreReq::decode(req.encode());
  EXPECT_EQ(back.fragment, req.fragment);
  EXPECT_EQ(back.digest, req.digest);

  SiblingStoreRep rep{sample_ov(), 4, Status::kSuccess};
  EXPECT_EQ(SiblingStoreRep::decode(rep.encode()).frag_index, 4);
}

TEST(MessagesTest, KlsLocsNotifyRoundTrip) {
  KlsLocsNotify msg{sample_ov(), sample_metadata()};
  EXPECT_EQ(KlsLocsNotify::decode(msg.encode()).meta, msg.meta);
}

TEST(MessagesTest, DecodeRejectsTruncatedPayloads) {
  StoreFragmentReq req;
  req.ov = sample_ov();
  req.meta = sample_metadata();
  req.fragment = Bytes(64, 1);
  req.digest = Sha256::hash(req.fragment);
  Bytes payload = req.encode();
  // Any strict prefix must be rejected, not silently mis-parsed.
  for (size_t cut : {size_t{0}, size_t{1}, size_t{10}, payload.size() / 2,
                     payload.size() - 1}) {
    Bytes truncated(payload.begin(),
                    payload.begin() + static_cast<long>(cut));
    EXPECT_THROW(StoreFragmentReq::decode(truncated), WireError)
        << "cut=" << cut;
  }
}

TEST(MessagesTest, DecodeRejectsTrailingGarbage) {
  AmrIndication msg{sample_ov()};
  Bytes payload = msg.encode();
  payload.push_back(0);
  EXPECT_THROW(AmrIndication::decode(payload), WireError);
}

TEST(MessagesTest, FragmentPayloadDominatesWireSize) {
  // Byte accounting sanity: a 25 KiB fragment store is ~25 KiB on the wire.
  StoreFragmentReq req;
  req.ov = sample_ov();
  req.meta = sample_metadata();
  req.fragment = Bytes(25600, 0xcc);
  const Bytes payload = req.encode();
  EXPECT_GT(payload.size(), 25600u);
  EXPECT_LT(payload.size(), 25600u + 300u);
}

TEST(MessagesTest, EnvelopeWireSize) {
  Envelope env{NodeId{1}, NodeId{2}, MessageType::kAmrIndication,
               Bytes(10, 0)};
  EXPECT_EQ(env.wire_size(), Envelope::kHeaderBytes + 10);
}

TEST(MessagesTest, MessageTypeNamesMatchPaperLegends) {
  EXPECT_STREQ(to_string(MessageType::kDecideLocsReq), "DecideLocsReq");
  EXPECT_STREQ(to_string(MessageType::kFsDecideLocsReq), "FSDecideLocsReq");
  EXPECT_STREQ(to_string(MessageType::kAmrIndication), "AMRIndication");
  EXPECT_STREQ(to_string(MessageType::kKlsConvergeReq), "KLSConvergeReq");
  EXPECT_STREQ(to_string(MessageType::kFsConvergeRep), "FSConvergeRep");
  EXPECT_STREQ(to_string(MessageType::kSiblingStoreReq), "SiblingStoreReq");
}

// Fuzz-ish robustness: random byte strings never crash the decoders; they
// either parse or throw WireError.
TEST(MessagesTest, RandomBytesEitherParseOrThrow) {
  Rng rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes junk(rng.uniform_int(0, 200));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.next_u64());
    try {
      (void)FsConvergeRep::decode(junk);
    } catch (const WireError&) {
      // expected for most inputs
    }
    try {
      (void)RetrieveTsRep::decode(junk);
    } catch (const WireError&) {
    }
    try {
      (void)StoreFragmentReq::decode(junk);
    } catch (const WireError&) {
    }
  }
}

}  // namespace
}  // namespace pahoehoe::wire
