// Side-channel contract for the wall-clock phase profiler (DESIGN.md §11):
// enabling profiling must never change simulation results — run_many
// digests are byte-identical profiling on vs off for any --jobs — while
// the captured phase table itself must be present, hierarchical, and
// deterministic in its keys and sim-driven call counts. Plus an overhead
// smoke check: the densest workload may not slow down by more than ~2%
// with profiling enabled.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>

#include "core/harness.h"
#include "obs/prof.h"

namespace pahoehoe {
namespace {

/// Tests toggle the global profiling flag; always leave it off.
struct ProfGuard {
  ~ProfGuard() { obs::prof::set_enabled(false); }
};

void append_exact(std::ostringstream& os, const std::vector<double>& values) {
  os.precision(17);
  for (double v : values) os << v << ';';
  os << '\n';
}

/// Everything observable about an aggregate, rendered byte-exactly —
/// deliberately *excluding* `profile`, which is the documented side
/// channel (same contract kernel_determinism_test applies to the kernel
/// label).
std::string digest(const core::AggregateResult& agg) {
  std::ostringstream os;
  os << agg.seeds << '\n';
  append_exact(os, agg.msg_count.values());
  append_exact(os, agg.msg_bytes.values());
  append_exact(os, agg.wan_bytes.values());
  append_exact(os, agg.puts_attempted.values());
  append_exact(os, agg.puts_acked.values());
  append_exact(os, agg.amr.values());
  append_exact(os, agg.excess_amr.values());
  append_exact(os, agg.durable_not_amr.values());
  append_exact(os, agg.non_durable.values());
  append_exact(os, agg.end_time_s.values());
  append_exact(os, agg.put_latency_mean_s.values());
  os.precision(17);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    os << agg.put_latency_s.quantile(q) << ';'
       << agg.get_latency_s.quantile(q) << ';'
       << agg.time_to_amr_s.quantile(q) << ';';
  }
  os << '\n';
  os << agg.metrics.to_text();
  return os.str();
}

core::RunConfig small_config() {
  core::RunConfig config = core::paper_default_config();
  config.convergence = core::ConvergenceOptions::all_opts();
  config.workload.num_puts = 8;
  config.workload.value_size = 8 * 1024;
  config.workload.get_fraction = 0.5;
  // A mid-run blackout so the recovery phases (decode + regenerate) and
  // scrub re-adds execute under the profiler too.
  config.faults.push_back(core::FaultSpec::fs_blackout(
      0, 1, 30 * kMicrosPerSecond, 600 * kMicrosPerSecond));
  return config;
}

// Burn a little real time so scope totals are reliably non-zero.
void spin() {
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 20000; ++i) sink = sink + i;
}

TEST(Prof, NestedScopesAttributeParentAndSelfTime) {
  ProfGuard guard;
  obs::prof::set_enabled(true);
  const obs::prof::Snapshot begin = obs::prof::capture_begin();
  {
    obs::ProfScope outer("outer_phase");
    spin();
    {
      obs::ProfScope inner("inner_phase");
      spin();
    }
    {
      obs::ProfScope inner("inner_phase");
      spin();
    }
  }
  const obs::ProfReport report = obs::prof::capture_delta(begin);
  obs::prof::set_enabled(false);

  const obs::ProfPhase* outer = report.find("", "outer_phase");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 1u);
  // Both inner scopes fold into one row, keyed under their parent.
  const obs::ProfPhase* inner = report.find("outer_phase", "inner_phase");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 2u);
  EXPECT_EQ(report.phases.size(), 2u);

  // The child's time nests inside the parent's total but not its self.
  EXPECT_GT(inner->total_nanos, 0u);
  EXPECT_GE(outer->total_nanos, inner->total_nanos);
  EXPECT_LE(outer->self_nanos, outer->total_nanos - inner->total_nanos);
  // Self-times partition the attributed wall time exactly.
  EXPECT_EQ(report.attributed_nanos(),
            outer->self_nanos + inner->self_nanos);
}

TEST(Prof, DisabledScopesAreInertAndCaptureEmpty) {
  ProfGuard guard;
  obs::prof::set_enabled(false);
  const obs::prof::Snapshot begin = obs::prof::capture_begin();
  {
    obs::ProfScope scope("never_recorded");
    spin();
  }
  EXPECT_TRUE(obs::prof::capture_delta(begin).empty());

  // A full run with profiling off yields an empty side channel.
  core::RunConfig config = small_config();
  config.seed = 3;
  EXPECT_TRUE(core::run_experiment(config).profile.empty());
}

TEST(Prof, DigestIdenticalProfilingOnVsOffForAnyJobs) {
  ProfGuard guard;
  const core::RunConfig config = small_config();

  obs::prof::set_enabled(false);
  const core::AggregateResult off = core::run_many(config, 4, 42, 1);
  const std::string off_digest = digest(off);
  EXPECT_TRUE(off.profile.empty());

  for (int jobs : {1, 2, 8}) {
    obs::prof::set_enabled(true);
    const core::AggregateResult on = core::run_many(config, 4, 42, jobs);
    obs::prof::set_enabled(false);
    EXPECT_EQ(digest(on), off_digest) << "jobs=" << jobs;

    // The side channel itself: present, with the sim-driven call counts
    // independent of jobs. Every seed contributes one run_experiment root
    // and one sim_run child.
    const obs::ProfPhase* run = on.profile.find("", "run_experiment");
    ASSERT_NE(run, nullptr) << "jobs=" << jobs;
    EXPECT_EQ(run->calls, 4u) << "jobs=" << jobs;
    const obs::ProfPhase* sim = on.profile.find("run_experiment", "sim_run");
    ASSERT_NE(sim, nullptr) << "jobs=" << jobs;
    EXPECT_EQ(sim->calls, 4u) << "jobs=" << jobs;
    EXPECT_LE(sim->total_nanos, run->total_nanos) << "jobs=" << jobs;
    // The instrumented hot phases fired (parents vary with call site, so
    // scan by name).
    for (const char* expected : {"net_send", "net_deliver", "fs_round"}) {
      bool found = false;
      for (const obs::ProfPhase& p : on.profile.phases) {
        if (p.name == expected) found = true;
      }
      EXPECT_TRUE(found) << expected << " missing, jobs=" << jobs;
    }
  }
}

TEST(Prof, MergeSumsMatchingRows) {
  obs::ProfReport a;
  a.phases.push_back({"", "x", 1, 100, 60});
  a.phases.push_back({"x", "y", 2, 40, 40});
  obs::ProfReport b;
  b.phases.push_back({"x", "y", 3, 10, 10});
  b.phases.push_back({"", "z", 1, 5, 5});
  a.merge(b);
  ASSERT_EQ(a.phases.size(), 3u);
  const obs::ProfPhase* y = a.find("x", "y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->calls, 5u);
  EXPECT_EQ(y->total_nanos, 50u);
  EXPECT_EQ(y->self_nanos, 50u);
  EXPECT_NE(a.find("", "z"), nullptr);
  // Deterministic (parent, name) order survives the merge.
  EXPECT_EQ(a.phases[0].name, "x");
  EXPECT_EQ(a.phases[1].name, "z");
  EXPECT_EQ(a.phases[2].name, "y");
}

bool running_under_sanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(Prof, OverheadSmokeAtMostTwoPercent) {
  if (running_under_sanitizer()) {
    GTEST_SKIP() << "wall-clock budgets are meaningless under sanitizers";
  }
  // A direct profiling-on vs profiling-off wall-clock A/B cannot resolve
  // 2% under a parallel ctest run (scheduler noise alone exceeds it), so
  // bound the injected cost analytically instead: the number of scopes
  // the workload opens times the measured per-scope cost must stay under
  // 2% of the workload's own wall time. Both factors are min-of-N, so
  // background load only ever *relaxes* the comparison (it inflates the
  // workload time, not the minimum scope cost).
  ProfGuard guard;
  obs::prof::set_enabled(true);
  // lint:wallclock-ok(this test measures the profiler's own host-time cost)
  using Clock = std::chrono::steady_clock;

  // Per-scope cost: min over several tight batches.
  constexpr int kBatch = 200000;
  double ns_per_scope = std::numeric_limits<double>::max();
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = Clock::now();
    for (int i = 0; i < kBatch; ++i) {
      obs::ProfScope scope("overhead_probe");
    }
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    ns_per_scope = std::min(ns_per_scope, ns / kBatch);
  }

  // The workload: scope count from its own profile, wall time min-of-N.
  core::RunConfig config = small_config();
  config.workload.num_puts = 20;
  config.seed = 11;
  int64_t min_run_ns = std::numeric_limits<int64_t>::max();
  uint64_t scopes = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = Clock::now();
    const core::RunResult result = core::run_experiment(config);
    min_run_ns = std::min(
        min_run_ns, static_cast<int64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now() - start)
                            .count()));
    scopes = 0;
    for (const obs::ProfPhase& p : result.profile.phases) scopes += p.calls;
  }
  obs::prof::set_enabled(false);
  ASSERT_GT(scopes, 1000u) << "workload too sparse to measure overhead";

  // <= 2% relative plus 1 ms absolute slack for timer granularity on a
  // tens-of-milliseconds run.
  const double injected_ns = static_cast<double>(scopes) * ns_per_scope;
  EXPECT_LE(injected_ns, static_cast<double>(min_run_ns) * 0.02 + 1e6)
      << scopes << " scopes x " << ns_per_scope << " ns/scope vs run of "
      << min_run_ns << " ns";
}

}  // namespace
}  // namespace pahoehoe
