// Crash-recovery edge cases, checked against the invariant auditor: a
// crash at an awkward moment (mid-put metadata write, mid-recovery, with a
// client waiting on the proxy) must never cost an acked put its durability
// or keep the system from converging.
#include <gtest/gtest.h>

#include "chaos/schedule.h"
#include "core/harness.h"
#include "test_util.h"

namespace pahoehoe {
namespace {

using core::FaultSpec;
using testing::minutes;
using testing::seconds;

core::RunConfig small_config() {
  core::RunConfig config = chaos::chaos_default_config();
  config.workload.num_puts = 10;  // puts issue at t = 0 s, 1 s, ..., 9 s
  return config;
}

// Crash a KLS while puts are writing timestamps and metadata through it.
// The volatile side of an in-flight decide_locs exchange is lost; the
// proxy's retries and the FS convergence path must still drive every acked
// put to AMR after the KLS recovers.
TEST(CrashRecovery, KlsCrashMidPutMetadataWrite) {
  core::RunConfig config = small_config();
  config.faults = {FaultSpec::kls_crash(0, 0, seconds(2), seconds(90))};
  const core::RunResult result = core::run_experiment(config);
  EXPECT_TRUE(result.audit.passed()) << result.audit.to_string();
  EXPECT_GT(result.puts_acked, 0);
}

// Crash both KLSs of the proxy's data center at staggered times so some
// put is mid-metadata-write with certainty; retries land on the recovered
// survivors.
TEST(CrashRecovery, BothLocalKlsCrashDuringPuts) {
  core::RunConfig config = small_config();
  config.faults = {
      FaultSpec::kls_crash(0, 0, seconds(1), seconds(60)),
      FaultSpec::kls_crash(0, 1, seconds(4), seconds(45)),
  };
  const core::RunResult result = core::run_experiment(config);
  EXPECT_TRUE(result.audit.passed()) << result.audit.to_string();
}

// Force an FS into fragment recovery (a blackout makes it miss its
// fragments), then crash it while the recovery's retry machinery is live.
// The crash wipes the volatile recovery state; the persistent work-list
// survives, so the retried recovery after the restart must complete.
TEST(CrashRecovery, FsCrashMidRecoveryRetry) {
  core::RunConfig config = small_config();
  config.faults = {
      // Miss all put traffic: every version on FS (0,0) needs recovery.
      FaultSpec::fs_blackout(0, 0, 0, seconds(30)),
      // First convergence rounds start in [30 s, 90 s]; crash inside the
      // recovery window and stay down long enough to hit retries.
      FaultSpec::fs_crash(0, 0, seconds(95), minutes(4)),
  };
  const core::RunResult result = core::run_experiment(config);
  EXPECT_TRUE(result.audit.passed()) << result.audit.to_string();
}

// Crash the serving proxy while clients have puts in flight. The client
// timeout fires for lost operations (the proxy answers nothing while
// down), the workload retries them, and nothing acked may be lost.
TEST(CrashRecovery, ProxyCrashMidPut) {
  core::RunConfig config = small_config();
  config.faults = {FaultSpec::proxy_crash(0, seconds(3), seconds(40))};
  const core::RunResult result = core::run_experiment(config);
  EXPECT_TRUE(result.audit.passed()) << result.audit.to_string();
  // Attempts issued while the proxy was down failed (instant guard or
  // client timeout) and were retried; every object must still end acked.
  EXPECT_GT(result.puts_failed, 0);
  EXPECT_EQ(result.puts_acked, 10);
}

// Direct unit check of the crashed-proxy guard: operations issued against
// a crashed proxy fail asynchronously instead of touching protocol state.
TEST(CrashRecovery, CrashedProxyFailsOpsCleanly) {
  pahoehoe::testing::SimCluster sc;
  sc.cluster.proxy(0).crash();
  const core::PutResult put =
      sc.put(Key{"k"}, sc.make_value(1024), Policy{});
  EXPECT_FALSE(put.success);
  const core::GetResult get = sc.get(Key{"k"});
  EXPECT_FALSE(get.success);

  // After recovery the same proxy serves normally.
  sc.cluster.proxy(0).recover();
  const core::PutResult put2 =
      sc.put(Key{"k"}, sc.make_value(1024), Policy{});
  EXPECT_TRUE(put2.success);
}

// A crash between scrub detecting damage and the repair completing must
// not lose the repair: the re-added work-list entry is persistent.
TEST(CrashRecovery, FsCrashBetweenScrubAndRepair) {
  core::RunConfig config = small_config();
  config.faults = {
      FaultSpec::frag_corrupt(0, 1, minutes(2)),
      // First scrub fires in [5 min, 5.5 min]; crash shortly after it.
      FaultSpec::fs_crash(0, 1, minutes(5) + seconds(40), minutes(9)),
  };
  const core::RunResult result = core::run_experiment(config);
  EXPECT_TRUE(result.audit.passed()) << result.audit.to_string();
}

}  // namespace
}  // namespace pahoehoe
