// Property-based tests of the paper's correctness claims (§3.6):
//
//  * Eventual consistency: every durable object version eventually reaches
//    AMR once failures heal ("all object versions that can achieve AMR do
//    so"), under randomized fault schedules.
//  * Regular semantics with aborts: a get returns a recent version, the
//    latest-AMR version, or aborts — never a version older than the latest
//    AMR version at get start.
//  * AMR stability: once AMR, forever AMR.
//
// Each parameterized instance runs a randomized scenario derived from the
// seed: random puts, random blackout windows, random loss rate, then checks
// the invariants at quiescence.
#include <gtest/gtest.h>

#include "core/harness.h"
#include "test_util.h"

namespace pahoehoe {
namespace {

using core::ConvergenceOptions;
using core::VersionStatus;
using testing::SimCluster;
using testing::minutes;
using testing::seconds;

class RandomFaultScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFaultScheduleTest, DurableVersionsAlwaysReachAmr) {
  const uint64_t seed = GetParam();
  Rng scenario(seed);

  // Random convergence option set (all combinations legal).
  ConvergenceOptions conv;
  conv.fs_amr_indication = scenario.chance(0.5);
  conv.unsync_rounds = scenario.chance(0.5);
  conv.put_amr_indication = scenario.chance(0.5);
  conv.sibling_recovery = scenario.chance(0.5);

  SimCluster tc(conv, {}, seed * 31 + 7);

  // Random blackouts: up to 3 servers, windows inside the first 15 minutes.
  const int blackouts = static_cast<int>(scenario.uniform_int(0, 3));
  for (int b = 0; b < blackouts; ++b) {
    const int dc = static_cast<int>(scenario.uniform_int(0, 1));
    const bool kls = scenario.chance(0.4);
    const SimTime start = seconds(scenario.uniform_int(0, 120));
    const SimTime len = seconds(scenario.uniform_int(30, 800));
    if (kls) {
      tc.blackout_kls(dc, static_cast<int>(scenario.uniform_int(0, 1)), start,
                      len);
    } else {
      tc.blackout_fs(dc, static_cast<int>(scenario.uniform_int(0, 2)), start,
                     len);
    }
  }
  // Sometimes a lossy network on top.
  if (scenario.chance(0.4)) {
    tc.net.add_fault(std::make_shared<net::UniformLoss>(
        scenario.uniform01() * 0.10));
  }

  // Random workload: 5–15 puts over ~1 minute, some keys repeated.
  const int puts = static_cast<int>(scenario.uniform_int(5, 15));
  std::vector<core::PutResult> results;
  for (int i = 0; i < puts; ++i) {
    const Key key{"key-" + std::to_string(scenario.uniform_int(0, 5))};
    std::optional<core::PutResult> r;
    tc.cluster.proxy(0).put(key, tc.make_value(2048, static_cast<uint8_t>(i)),
                            Policy{},
                            [&r](const core::PutResult& res) { r = res; });
    tc.run_for(seconds(scenario.uniform_int(1, 8)));
    while (!r.has_value() && tc.sim.step()) {
    }
    ASSERT_TRUE(r.has_value());
    results.push_back(*r);
  }

  // Heal everything and run to quiescence.
  tc.run_to_quiescence();

  for (const auto& r : results) {
    const VersionStatus status = tc.cluster.classify(r.ov);
    // The central eventual-consistency property: no durable version may be
    // left short of AMR once the system quiesces.
    EXPECT_NE(status, VersionStatus::kDurableNotAmr)
        << pahoehoe::to_string(r.ov) << " under " << core::describe(conv)
        << " seed " << seed;
    // A version the client saw acknowledged is durable by construction
    // (min_frags_for_success ≥ k), so it must be AMR.
    if (r.success) {
      EXPECT_EQ(status, VersionStatus::kAmr)
          << pahoehoe::to_string(r.ov) << " seed " << seed;
    }
  }
  EXPECT_TRUE(tc.cluster.converged_quiescent()) << "seed " << seed;
}

TEST_P(RandomFaultScheduleTest, GetNeverReturnsOlderThanLatestAmr) {
  const uint64_t seed = GetParam();
  Rng scenario(seed ^ 0xabcdef);

  SimCluster tc(ConvergenceOptions::all_opts(), {}, seed);
  const Key key{"k"};

  // A chain of versions; remember which are AMR at each get.
  std::map<Timestamp, Bytes> values;
  for (int i = 0; i < 4; ++i) {
    const Bytes value = tc.make_value(3000, static_cast<uint8_t>(i + 1));
    const auto r = tc.put(key, value);
    values[r.ov.ts] = value;
    tc.run_to_quiescence();
  }

  // Under random blackouts, issue gets and validate the regular-semantics
  // bound: the returned timestamp is ≥ the latest AMR timestamp.
  Timestamp latest_amr;
  for (const auto& [ts, value] : values) {
    (void)value;
    if (tc.cluster.classify({key, ts}) == VersionStatus::kAmr &&
        ts > latest_amr) {
      latest_amr = ts;
    }
  }
  ASSERT_TRUE(latest_amr.valid());

  for (int trial = 0; trial < 3; ++trial) {
    SimCluster probe(ConvergenceOptions::all_opts(), {},
                     seed + 1000 + static_cast<uint64_t>(trial));
    // Rebuild the same history in a fresh cluster (deterministic values).
    std::map<Timestamp, Bytes> vals;
    for (int i = 0; i < 4; ++i) {
      const Bytes value = probe.make_value(3000, static_cast<uint8_t>(i + 1));
      const auto r = probe.put(key, value);
      vals[r.ov.ts] = value;
    }
    probe.run_to_quiescence();
    Timestamp amr_ts;
    for (const auto& [ts, value] : vals) {
      (void)value;
      if (probe.cluster.classify({key, ts}) == VersionStatus::kAmr &&
          ts > amr_ts) {
        amr_ts = ts;
      }
    }
    ASSERT_TRUE(amr_ts.valid());

    // Random double blackout, then a get.
    const int f1 = static_cast<int>(scenario.uniform_int(0, 5));
    const int f2 = static_cast<int>(scenario.uniform_int(0, 5));
    probe.blackout_fs(f1 / 3, f1 % 3, 0, minutes(5));
    if (f2 != f1) probe.blackout_fs(f2 / 3, f2 % 3, 0, minutes(5));
    const auto got = probe.get(key);
    if (got.success) {
      EXPECT_GE(got.ts, amr_ts) << "seed " << seed << " trial " << trial;
      EXPECT_EQ(got.value, vals.at(got.ts));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFaultScheduleTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(AmrStabilityTest, AmrPersistsThroughSubsequentFailures) {
  SimCluster tc(ConvergenceOptions::all_opts());
  std::vector<core::PutResult> results;
  for (int i = 0; i < 5; ++i) {
    results.push_back(tc.put(Key{"k" + std::to_string(i)},
                             tc.make_value(2048, static_cast<uint8_t>(i))));
  }
  tc.run_to_quiescence();
  for (const auto& r : results) {
    ASSERT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  }
  // Blackouts, crashes, recoveries — none of it may un-AMR anything
  // (crash-recovery keeps stable storage, and nothing deletes state).
  tc.blackout_fs(0, 0, 0, minutes(3));
  tc.cluster.fs(3).crash();
  tc.run_for(minutes(5));
  tc.cluster.fs(3).recover();
  tc.run_to_quiescence();
  for (const auto& r : results) {
    EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  }
}

TEST(EventualConsistencyTest, ConvergedStateServesReadsFromEitherDcAlone) {
  // After convergence, each data center holds ≥ k fragments of every
  // version, so a WAN partition cannot block reads in either side.
  SimCluster tc(ConvergenceOptions::all_opts(), {.num_proxies = 2});
  const Bytes value = tc.make_value(6000);
  tc.put(Key{"k"}, value);
  tc.run_to_quiescence();

  // Partition the data centers; proxy 0 is in DC 0, proxy 1 in DC 1.
  const std::vector<NodeId> dc1 =
      tc.cluster.view()->nodes_in_dc(DataCenterId{1});
  std::unordered_set<NodeId> group(dc1.begin(), dc1.end());
  tc.net.add_fault(std::make_shared<net::Partition>(
      group, tc.sim.now(), tc.sim.now() + minutes(30)));

  const auto got0 = tc.get(Key{"k"}, /*proxy_index=*/0);
  EXPECT_TRUE(got0.success);
  EXPECT_EQ(got0.value, value);
  const auto got1 = tc.get(Key{"k"}, /*proxy_index=*/1);
  EXPECT_TRUE(got1.success);
  EXPECT_EQ(got1.value, value);
}

}  // namespace
}  // namespace pahoehoe
