// Determinism lock-down for the parallel seed-sweep engine: a T-thread run
// must be byte-identical to the serial run, for both the chaos sweeper
// (SeedOutcome sequences incl. schedules, audit reports, and shrunk repros)
// and the bench harness aggregation (AggregateResult).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "chaos/schedule.h"
#include "chaos/sweep.h"
#include "common/parallel.h"
#include "core/harness.h"

namespace pahoehoe {
namespace {

using core::FaultSpec;

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(37);
    parallel_for(37, jobs, [&](int i) { ++hits[static_cast<size_t>(i)]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
  }
  int calls = 0;
  parallel_for(0, 4, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesWorkerExceptions) {
  EXPECT_THROW(parallel_for(8, 4,
                            [](int i) {
                              if (i == 5) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ResolveJobsClampsToWork) {
  EXPECT_EQ(resolve_jobs(8, 3), 3);
  EXPECT_EQ(resolve_jobs(2, 100), 2);
  EXPECT_EQ(resolve_jobs(4, 0), 1);
  EXPECT_GE(resolve_jobs(0, 100), 1);  // hardware default, at least 1
}

void expect_same_outcome(const chaos::SeedOutcome& a,
                         const chaos::SeedOutcome& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.audit.to_string(), b.audit.to_string());
  EXPECT_EQ(a.shrunk, b.shrunk);
  EXPECT_EQ(a.shrink_runs, b.shrink_runs);
}

chaos::SweepOptions small_sweep(int jobs) {
  chaos::SweepOptions options;
  options.seeds = 6;
  options.jobs = jobs;
  options.shrink_failures = true;
  return options;
}

core::RunConfig small_chaos_config() {
  core::RunConfig config = chaos::chaos_default_config();
  config.workload.num_puts = 8;
  return config;
}

TEST(ParallelSweep, SweepIsByteIdenticalAcrossJobCounts) {
  const chaos::SweepResult serial =
      chaos::run_sweep(small_chaos_config(), small_sweep(1));
  ASSERT_EQ(serial.outcomes.size(), 6u);
  for (int jobs : {2, 8}) {
    const chaos::SweepResult parallel =
        chaos::run_sweep(small_chaos_config(), small_sweep(jobs));
    EXPECT_EQ(parallel.runs, serial.runs) << "jobs=" << jobs;
    EXPECT_EQ(parallel.failures, serial.failures) << "jobs=" << jobs;
    ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
    for (size_t i = 0; i < serial.outcomes.size(); ++i) {
      expect_same_outcome(parallel.outcomes[i], serial.outcomes[i]);
    }
    EXPECT_EQ(parallel.summary(), serial.summary()) << "jobs=" << jobs;
  }
}

// Seeds with failures exercise the shrinker inside worker threads; the
// shrunk repros and per-seed run counts must be reproduced exactly. Scrub
// off + corruption on guarantees failures (corruption is never repaired).
TEST(ParallelSweep, FailingSweepShrinksIdenticallyAcrossJobCounts) {
  core::RunConfig config = small_chaos_config();
  config.convergence.scrub_interval = 0;

  chaos::SweepOptions options = small_sweep(1);
  options.seeds = 4;
  options.schedule.blackouts = false;
  options.schedule.partitions = false;
  options.schedule.loss = false;
  options.schedule.crashes = false;
  options.schedule.proxy_crashes = false;
  options.schedule.duplication = false;
  options.schedule.disk_destroys = false;  // corruption only

  const chaos::SweepResult serial = chaos::run_sweep(config, options);
  EXPECT_GT(serial.failures, 0);

  options.jobs = 8;
  const chaos::SweepResult parallel = chaos::run_sweep(config, options);
  EXPECT_EQ(parallel.runs, serial.runs);
  EXPECT_EQ(parallel.failures, serial.failures);
  ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
  for (size_t i = 0; i < serial.outcomes.size(); ++i) {
    expect_same_outcome(parallel.outcomes[i], serial.outcomes[i]);
  }
  EXPECT_EQ(parallel.summary(), serial.summary());
}

// The progress hook fires exactly once per seed whatever the job count
// (order is completion order, so compare as a set of seeds).
TEST(ParallelSweep, OnSeedFiresOncePerSeed) {
  chaos::SweepOptions options = small_sweep(4);
  std::vector<uint64_t> seen;
  options.on_seed = [&seen](const chaos::SeedOutcome& outcome) {
    seen.push_back(outcome.seed);  // hook is called under the sweep lock
  };
  chaos::run_sweep(small_chaos_config(), options);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 2, 3, 4, 5, 6}));
}

void expect_same_stats(const SampleStats& a, const SampleStats& b) {
  // Bitwise equality of the full value sequence: aggregation order must
  // match the serial run exactly, not merely approximately.
  EXPECT_EQ(a.values(), b.values());
}

TEST(ParallelRunMany, AggregateIsByteIdenticalAcrossJobCounts) {
  core::RunConfig config = core::paper_default_config();
  config.convergence = core::ConvergenceOptions::all_opts();
  config.workload.num_puts = 10;
  config.workload.value_size = 8 * 1024;
  config.workload.get_fraction = 0.5;

  const core::AggregateResult serial = core::run_many(config, 6, 42, 1);
  for (int jobs : {2, 8}) {
    const core::AggregateResult parallel = core::run_many(config, 6, 42, jobs);
    EXPECT_EQ(parallel.seeds, serial.seeds);
    expect_same_stats(parallel.msg_count, serial.msg_count);
    expect_same_stats(parallel.msg_bytes, serial.msg_bytes);
    expect_same_stats(parallel.wan_bytes, serial.wan_bytes);
    for (int t = 0; t < wire::kMessageTypeCount; ++t) {
      expect_same_stats(parallel.count_by_type[static_cast<size_t>(t)],
                        serial.count_by_type[static_cast<size_t>(t)]);
      expect_same_stats(parallel.bytes_by_type[static_cast<size_t>(t)],
                        serial.bytes_by_type[static_cast<size_t>(t)]);
    }
    expect_same_stats(parallel.puts_attempted, serial.puts_attempted);
    expect_same_stats(parallel.puts_acked, serial.puts_acked);
    expect_same_stats(parallel.amr, serial.amr);
    expect_same_stats(parallel.excess_amr, serial.excess_amr);
    expect_same_stats(parallel.durable_not_amr, serial.durable_not_amr);
    expect_same_stats(parallel.non_durable, serial.non_durable);
    expect_same_stats(parallel.end_time_s, serial.end_time_s);
    expect_same_stats(parallel.put_latency_mean_s, serial.put_latency_mean_s);
    EXPECT_EQ(parallel.put_latency_s.count(), serial.put_latency_s.count());
    EXPECT_EQ(parallel.get_latency_s.count(), serial.get_latency_s.count());
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
      EXPECT_EQ(parallel.put_latency_s.quantile(q),
                serial.put_latency_s.quantile(q))
          << "jobs=" << jobs << " q=" << q;
      EXPECT_EQ(parallel.get_latency_s.quantile(q),
                serial.get_latency_s.quantile(q))
          << "jobs=" << jobs << " q=" << q;
    }
  }
}

}  // namespace
}  // namespace pahoehoe
