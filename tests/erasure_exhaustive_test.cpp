// Exhaustive erasure-code checks, kept in their own binary because they are
// heavier than the unit tests: full GF(2^8) table verification against a
// reference implementation and every k-subset decode for the paper's
// default (k=4, n=12) code.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "erasure/gf256.h"
#include "erasure/reed_solomon.h"

namespace pahoehoe::erasure {
namespace {

/// Reference GF(2^8) multiply: Russian-peasant with explicit reduction by
/// x^8 + x^4 + x^3 + x^2 + 1 — independent of the table construction.
uint8_t reference_mul(uint8_t a, uint8_t b) {
  uint8_t product = 0;
  uint16_t aa = a;
  while (b != 0) {
    if (b & 1) product ^= static_cast<uint8_t>(aa);
    aa <<= 1;
    if (aa & 0x100) aa ^= 0x11d;
    b >>= 1;
  }
  return product;
}

TEST(Gf256ExhaustiveTest, FullMultiplicationTableMatchesReference) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(gf256::mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                reference_mul(static_cast<uint8_t>(a),
                              static_cast<uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

TEST(Gf256ExhaustiveTest, DivisionInvertsMultiplicationEverywhere) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      const uint8_t p =
          gf256::mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b));
      ASSERT_EQ(gf256::div(p, static_cast<uint8_t>(b)), a);
    }
  }
}

TEST(ReedSolomonExhaustiveTest, EveryKSubsetDecodesDefaultPolicy) {
  // All C(12,4) = 495 fragment subsets of the paper's default code.
  ReedSolomon rs(4, 12);
  Rng rng(20260707);
  Bytes value(1024);
  for (auto& byte : value) byte = static_cast<uint8_t>(rng.next_u64());
  const auto frags = rs.encode(value);

  int subsets = 0;
  for (int a = 0; a < 12; ++a) {
    for (int b = a + 1; b < 12; ++b) {
      for (int c = b + 1; c < 12; ++c) {
        for (int d = c + 1; d < 12; ++d) {
          std::vector<IndexedFragment> input{{a, &frags[static_cast<size_t>(a)]},
                                             {b, &frags[static_cast<size_t>(b)]},
                                             {c, &frags[static_cast<size_t>(c)]},
                                             {d, &frags[static_cast<size_t>(d)]}};
          ASSERT_EQ(rs.decode(input, value.size()), value)
              << a << "," << b << "," << c << "," << d;
          ++subsets;
        }
      }
    }
  }
  EXPECT_EQ(subsets, 495);
}

TEST(ReedSolomonExhaustiveTest, EverySingleFragmentRegenerableFromEveryKSubset) {
  // For each missing fragment, a sample of donor subsets regenerates it
  // bit-exactly (full cross-product is 12 × 495; sample the diagonal plus
  // random picks).
  ReedSolomon rs(4, 12);
  Rng rng(99);
  Bytes value(512);
  for (auto& byte : value) byte = static_cast<uint8_t>(rng.next_u64());
  const auto frags = rs.encode(value);

  for (int missing = 0; missing < 12; ++missing) {
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<int> donors(12);
      std::iota(donors.begin(), donors.end(), 0);
      donors.erase(donors.begin() + missing);
      std::shuffle(donors.begin(), donors.end(), rng.engine());
      donors.resize(4);
      std::vector<IndexedFragment> input;
      for (int d : donors) input.push_back({d, &frags[static_cast<size_t>(d)]});
      const auto regen = rs.regenerate(input, {missing}, value.size());
      ASSERT_EQ(regen[0], frags[static_cast<size_t>(missing)])
          << "missing " << missing << " trial " << trial;
    }
  }
}

TEST(ReedSolomonExhaustiveTest, CorruptedFragmentYieldsWrongDecodeNotCrash) {
  // The codec itself has no integrity checking (that is the fragment
  // store's SHA-256 layer); a silently corrupted fragment decodes to wrong
  // bytes without crashing — documenting why the digest layer must exist.
  ReedSolomon rs(4, 12);
  Bytes value(256, 0x11);
  auto frags = rs.encode(value);
  frags[2][10] ^= 0xff;
  std::vector<IndexedFragment> input{
      {0, &frags[0]}, {1, &frags[1]}, {2, &frags[2]}, {3, &frags[3]}};
  const Bytes out = rs.decode(input, value.size());
  EXPECT_NE(out, value);
  EXPECT_EQ(out.size(), value.size());
}

TEST(ReedSolomonExhaustiveTest, LargeObjectRoundTrip) {
  // A 4 MiB blob — the upper-middle of the paper's target object range.
  ReedSolomon rs(4, 12);
  Rng rng(5);
  Bytes value(4 * 1024 * 1024);
  for (auto& byte : value) byte = static_cast<uint8_t>(rng.next_u64());
  const auto frags = rs.encode(value);
  std::vector<IndexedFragment> input{
      {1, &frags[1]}, {5, &frags[5]}, {9, &frags[9]}, {11, &frags[11]}};
  EXPECT_EQ(rs.decode(input, value.size()), value);
}

}  // namespace
}  // namespace pahoehoe::erasure
