// Exhaustive erasure-code checks, kept in their own binary because they are
// heavier than the unit tests: full GF(2^8) table verification against a
// reference implementation, every k-subset decode for the paper's default
// (k=4, n=12) code, and the cross-kernel differential battery that pins
// every compiled SIMD mul_acc kernel byte-identical to the scalar oracle
// (the simulation's determinism contract, DESIGN.md §10).
#include <gtest/gtest.h>

#include <numeric>
#include <utility>

#include "common/rng.h"
#include "erasure/gf256.h"
#include "erasure/reed_solomon.h"

namespace pahoehoe::erasure {
namespace {

/// Restores the dispatcher's own kernel choice on scope exit, so a failing
/// assertion can't leak a forced kernel into later tests.
struct KernelGuard {
  ~KernelGuard() { gf256::reset_kernel(); }
};

/// Reference GF(2^8) multiply: Russian-peasant with explicit reduction by
/// x^8 + x^4 + x^3 + x^2 + 1 — independent of the table construction.
uint8_t reference_mul(uint8_t a, uint8_t b) {
  uint8_t product = 0;
  uint16_t aa = a;
  while (b != 0) {
    if (b & 1) product ^= static_cast<uint8_t>(aa);
    aa <<= 1;
    if (aa & 0x100) aa ^= 0x11d;
    b >>= 1;
  }
  return product;
}

TEST(Gf256ExhaustiveTest, FullMultiplicationTableMatchesReference) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(gf256::mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                reference_mul(static_cast<uint8_t>(a),
                              static_cast<uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

TEST(Gf256ExhaustiveTest, DivisionInvertsMultiplicationEverywhere) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      const uint8_t p =
          gf256::mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b));
      ASSERT_EQ(gf256::div(p, static_cast<uint8_t>(b)), a);
    }
  }
}

TEST(ReedSolomonExhaustiveTest, EveryKSubsetDecodesDefaultPolicyEveryKernel) {
  // All C(12,4) = 495 fragment subsets of the paper's default code, decoded
  // under every supported kernel; the fragments themselves must also be
  // kernel-independent.
  KernelGuard guard;
  ReedSolomon rs(4, 12);
  Rng rng(20260707);
  Bytes value(1024);
  for (auto& byte : value) byte = static_cast<uint8_t>(rng.next_u64());
  gf256::force_kernel(gf256::Kernel::kScalar);
  const auto frags = rs.encode(value);

  for (gf256::Kernel kernel : gf256::supported_kernels()) {
    gf256::force_kernel(kernel);
    ASSERT_EQ(rs.encode(value), frags) << gf256::to_string(kernel);
    int subsets = 0;
    for (int a = 0; a < 12; ++a) {
      for (int b = a + 1; b < 12; ++b) {
        for (int c = b + 1; c < 12; ++c) {
          for (int d = c + 1; d < 12; ++d) {
            std::vector<IndexedFragment> input{{a, &frags[static_cast<size_t>(a)]},
                                               {b, &frags[static_cast<size_t>(b)]},
                                               {c, &frags[static_cast<size_t>(c)]},
                                               {d, &frags[static_cast<size_t>(d)]}};
            ASSERT_EQ(rs.decode(input, value.size()), value)
                << gf256::to_string(kernel) << ": " << a << "," << b << ","
                << c << "," << d;
            ++subsets;
          }
        }
      }
    }
    EXPECT_EQ(subsets, 495);
  }
}

TEST(ReedSolomonExhaustiveTest, EverySingleFragmentRegenerableFromEveryKSubset) {
  // For each missing fragment, a sample of donor subsets regenerates it
  // bit-exactly (full cross-product is 12 × 495; sample the diagonal plus
  // random picks).
  ReedSolomon rs(4, 12);
  Rng rng(99);
  Bytes value(512);
  for (auto& byte : value) byte = static_cast<uint8_t>(rng.next_u64());
  const auto frags = rs.encode(value);

  for (int missing = 0; missing < 12; ++missing) {
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<int> donors(12);
      std::iota(donors.begin(), donors.end(), 0);
      donors.erase(donors.begin() + missing);
      std::shuffle(donors.begin(), donors.end(), rng.engine());
      donors.resize(4);
      std::vector<IndexedFragment> input;
      for (int d : donors) input.push_back({d, &frags[static_cast<size_t>(d)]});
      const auto regen = rs.regenerate(input, {missing}, value.size());
      ASSERT_EQ(regen[0], frags[static_cast<size_t>(missing)])
          << "missing " << missing << " trial " << trial;
    }
  }
}

TEST(ReedSolomonExhaustiveTest, CorruptedFragmentYieldsWrongDecodeNotCrash) {
  // The codec itself has no integrity checking (that is the fragment
  // store's SHA-256 layer); a silently corrupted fragment decodes to wrong
  // bytes without crashing — documenting why the digest layer must exist.
  ReedSolomon rs(4, 12);
  Bytes value(256, 0x11);
  auto frags = rs.encode(value);
  frags[2][10] ^= 0xff;
  std::vector<IndexedFragment> input{
      {0, &frags[0]}, {1, &frags[1]}, {2, &frags[2]}, {3, &frags[3]}};
  const Bytes out = rs.decode(input, value.size());
  EXPECT_NE(out, value);
  EXPECT_EQ(out.size(), value.size());
}

// --- cross-kernel differential battery -------------------------------------

// Every compiled-and-supported kernel must reproduce the scalar codec's
// fragments and recovered data byte for byte, across the full (k, n)
// encode / erase / decode sweep. The scalar pass runs first and is the
// oracle; nothing here assumes the host has any SIMD at all.
TEST(CrossKernelTest, EncodeEraseDecodeSweepMatchesScalarByteForByte) {
  KernelGuard guard;
  const std::vector<std::pair<int, int>> shapes{
      {1, 2}, {2, 3}, {3, 5}, {4, 12}, {8, 12}, {16, 20}};
  // Sizes straddling fragment-size boundaries: not divisible by k, shorter
  // than one vector register, and multi-KiB bodies with ragged tails.
  const std::vector<size_t> sizes{0, 1, 3, 16, 31, 257, 4096, 100 * 1024 + 7};

  for (const auto& [k, n] : shapes) {
    ReedSolomon rs(k, n);
    for (size_t size : sizes) {
      Rng rng(static_cast<uint64_t>(k * 1'000'003 + n * 1009) + size);
      Bytes value(size);
      for (auto& b : value) b = static_cast<uint8_t>(rng.next_u64());

      gf256::force_kernel(gf256::Kernel::kScalar);
      const auto oracle_frags = rs.encode(value);

      // A handful of erase patterns per shape: which k survivors decode.
      std::vector<std::vector<int>> survivor_sets;
      std::vector<int> all(static_cast<size_t>(n));
      std::iota(all.begin(), all.end(), 0);
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<int> pick = all;
        std::shuffle(pick.begin(), pick.end(), rng.engine());
        pick.resize(static_cast<size_t>(k));
        survivor_sets.push_back(std::move(pick));
      }

      std::vector<Bytes> oracle_decodes;
      for (const auto& survivors : survivor_sets) {
        std::vector<IndexedFragment> input;
        for (int i : survivors) {
          input.push_back({i, &oracle_frags[static_cast<size_t>(i)]});
        }
        oracle_decodes.push_back(rs.decode(input, size));
        ASSERT_EQ(oracle_decodes.back(), value);
      }

      for (gf256::Kernel kernel : gf256::supported_kernels()) {
        gf256::force_kernel(kernel);
        const auto frags = rs.encode(value);
        ASSERT_EQ(frags, oracle_frags)
            << "kernel " << gf256::to_string(kernel) << " k=" << k
            << " n=" << n << " size=" << size;
        for (size_t s = 0; s < survivor_sets.size(); ++s) {
          std::vector<IndexedFragment> input;
          for (int i : survivor_sets[s]) {
            input.push_back({i, &frags[static_cast<size_t>(i)]});
          }
          ASSERT_EQ(rs.decode(input, size), oracle_decodes[s])
              << "kernel " << gf256::to_string(kernel) << " k=" << k
              << " n=" << n << " size=" << size << " subset " << s;
        }
      }
    }
  }
}

// Regeneration (the §4.2 sibling-recovery path) under every kernel equals
// the scalar-encoded originals.
TEST(CrossKernelTest, RegenerateMatchesScalarFragments) {
  KernelGuard guard;
  ReedSolomon rs(4, 12);
  Rng rng(20260808);
  Bytes value(64 * 1024 + 13);
  for (auto& b : value) b = static_cast<uint8_t>(rng.next_u64());
  gf256::force_kernel(gf256::Kernel::kScalar);
  const auto oracle = rs.encode(value);

  for (gf256::Kernel kernel : gf256::supported_kernels()) {
    gf256::force_kernel(kernel);
    std::vector<IndexedFragment> donors{
        {2, &oracle[2]}, {5, &oracle[5]}, {8, &oracle[8]}, {11, &oracle[11]}};
    const auto regen =
        rs.regenerate(donors, {0, 1, 3, 4, 6, 7, 9, 10}, value.size());
    const std::vector<int> targets{0, 1, 3, 4, 6, 7, 9, 10};
    for (size_t i = 0; i < targets.size(); ++i) {
      ASSERT_EQ(regen[i], oracle[static_cast<size_t>(targets[i])])
          << "kernel " << gf256::to_string(kernel) << " target " << targets[i];
    }
  }
}

// Seeded property test hammering mul_acc's head/tail remainder paths: random
// buffers, deliberately misaligned offsets, and every length in 0..3×(AVX2
// vector width), checked against the scalar kernel on identical inputs. The
// canary bytes around the destination span catch out-of-bounds writes even
// without ASan (ASan CI additionally catches OOB reads).
TEST(CrossKernelTest, MulAccMisalignedHeadsAndTailsMatchScalarOracle) {
  KernelGuard guard;
  constexpr size_t kMaxLen = 3 * 32;  // three AVX2 registers
  constexpr size_t kPad = 64;
  Rng rng(77);

  const std::vector<gf256::Kernel> kernels = gf256::supported_kernels();
  for (size_t len = 0; len <= kMaxLen; ++len) {
    for (int trial = 0; trial < 8; ++trial) {
      const size_t src_off = static_cast<size_t>(rng.next_u64() % 48);
      const size_t dst_off = static_cast<size_t>(rng.next_u64() % 48);
      // Cycle coefficients through the fast paths (0, 1) and arbitrary ones.
      const uint8_t coef =
          trial == 0 ? 0
                     : (trial == 1 ? 1 : static_cast<uint8_t>(rng.next_u64()));

      Bytes src(kPad + kMaxLen + kPad);
      Bytes dst_init(kPad + kMaxLen + kPad);
      for (auto& b : src) b = static_cast<uint8_t>(rng.next_u64());
      for (auto& b : dst_init) b = static_cast<uint8_t>(rng.next_u64());

      Bytes expected = dst_init;
      gf256::force_kernel(gf256::Kernel::kScalar);
      gf256::mul_acc(std::span<uint8_t>(expected.data() + dst_off, len),
                     std::span<const uint8_t>(src.data() + src_off, len),
                     coef);

      for (gf256::Kernel kernel : kernels) {
        gf256::force_kernel(kernel);
        Bytes dst = dst_init;
        gf256::mul_acc(std::span<uint8_t>(dst.data() + dst_off, len),
                       std::span<const uint8_t>(src.data() + src_off, len),
                       coef);
        ASSERT_EQ(dst, expected)
            << "kernel " << gf256::to_string(kernel) << " len=" << len
            << " src_off=" << src_off << " dst_off=" << dst_off
            << " coef=" << static_cast<int>(coef);
      }
    }
  }
}

// The split-nibble tables the SIMD kernels index must agree with the full
// product table for every (coefficient, byte) pair.
TEST(CrossKernelTest, SplitNibbleTablesCoverFullProductTable) {
  const auto& t = gf256::detail::tables();
  for (int c = 0; c < 256; ++c) {
    for (int b = 0; b < 256; ++b) {
      const uint8_t split = static_cast<uint8_t>(
          t.nib[static_cast<size_t>(c)][static_cast<size_t>(b & 0xf)] ^
          t.nib[static_cast<size_t>(c)][static_cast<size_t>(16 + (b >> 4))]);
      ASSERT_EQ(split, t.mul[static_cast<size_t>(c)][static_cast<size_t>(b)])
          << c << " * " << b;
    }
  }
}

TEST(ReedSolomonExhaustiveTest, LargeObjectRoundTrip) {
  // A 4 MiB blob — the upper-middle of the paper's target object range.
  ReedSolomon rs(4, 12);
  Rng rng(5);
  Bytes value(4 * 1024 * 1024);
  for (auto& byte : value) byte = static_cast<uint8_t>(rng.next_u64());
  const auto frags = rs.encode(value);
  std::vector<IndexedFragment> input{
      {1, &frags[1]}, {5, &frags[5]}, {9, &frags[9]}, {11, &frags[11]}};
  EXPECT_EQ(rs.decode(input, value.size()), value);
}

}  // namespace
}  // namespace pahoehoe::erasure
