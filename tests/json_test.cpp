// Negative-path tests for the obs/json parser: adversarial inputs must be
// rejected (never crash, never silently accepted), and rejection must not
// cost the strictness that the writer's own output depends on. The positive
// round-trip tests live in telemetry_test.cpp; this file is the hardening
// counterpart: deep nesting, malformed escapes, truncated documents, and the
// number grammar.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "obs/json.h"

namespace pahoehoe {
namespace {

using obs::JsonValue;
using obs::JsonWriter;

bool parses(const std::string& text) {
  return obs::json_parse(text).has_value();
}

std::string nested_arrays(int depth) {
  std::string s(static_cast<size_t>(depth), '[');
  s.append(static_cast<size_t>(depth), ']');
  return s;
}

// --- nesting depth ----------------------------------------------------------

TEST(JsonHardeningTest, DeeplyNestedInputIsRejectedNotACrash) {
  // Parsing is recursive; without the depth bound this overflows the stack.
  EXPECT_FALSE(parses(nested_arrays(100'000)));
  EXPECT_FALSE(parses(std::string(100'000, '[')));  // unclosed, same depth
  std::string objects;
  for (int i = 0; i < 100'000; ++i) objects += "{\"a\":";
  EXPECT_FALSE(parses(objects));
}

TEST(JsonHardeningTest, NestingUpToTheBoundIsAccepted) {
  EXPECT_TRUE(parses(nested_arrays(64)));
  EXPECT_FALSE(parses(nested_arrays(65)));
  // Close-and-reopen at the same level never accumulates depth.
  std::string wide = "[";
  for (int i = 0; i < 1000; ++i) wide += "[],";
  wide += "[]]";
  EXPECT_TRUE(parses(wide));
}

// --- strings ----------------------------------------------------------------

TEST(JsonHardeningTest, MalformedEscapesAreRejected) {
  EXPECT_FALSE(parses("\"\\x\""));        // unknown escape
  EXPECT_FALSE(parses("\"\\u12\""));      // truncated \u
  EXPECT_FALSE(parses("\"\\u12g4\""));    // non-hex digit
  EXPECT_FALSE(parses("\"dangling\\"));   // backslash at end of input
  EXPECT_FALSE(parses("\"unterminated")); // no closing quote
  EXPECT_TRUE(parses("\"\\u0041\\n\\t\\\\\\\"\\/\""));
}

TEST(JsonHardeningTest, UnicodeEscapeDecodesToUtf8) {
  const std::optional<JsonValue> doc = obs::json_parse("\"\\u00e9\\u20ac\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string, "\xc3\xa9\xe2\x82\xac");  // é €
}

// --- truncated documents ----------------------------------------------------

TEST(JsonHardeningTest, TruncatedInputIsRejected) {
  for (const char* text :
       {"", "{", "[", "[1,", "{\"a\"", "{\"a\":", "{\"a\":1", "[1, 2",
        "tru", "fals", "nul", "\"", "{\"a\": \"b}", "[{\"a\": 1}"}) {
    EXPECT_FALSE(parses(text)) << "accepted truncated input: " << text;
  }
}

// --- number grammar ---------------------------------------------------------

TEST(JsonHardeningTest, NonJsonNumbersAreRejected) {
  // Bare strtod accepts all of these; RFC 8259 accepts none.
  for (const char* text :
       {"+1", "01", "007", "1.", ".5", "-", "-.5", "1e", "1e+", "Infinity",
        "-Infinity", "inf", "nan", "NaN", "0x10", "1_000", "--1"}) {
    EXPECT_FALSE(parses(text)) << "accepted non-JSON number: " << text;
  }
  // A valid prefix with digit garbage after it is trailing garbage, not a
  // longer number ("01" must not quietly parse as 1).
  EXPECT_FALSE(parses("[01]"));
}

TEST(JsonHardeningTest, ValidNumbersParseToTheirValues) {
  const auto number = [](const std::string& text) {
    const std::optional<JsonValue> doc = obs::json_parse(text);
    EXPECT_TRUE(doc.has_value()) << "rejected valid number: " << text;
    return doc.has_value() ? doc->number : -1e300;
  };
  EXPECT_DOUBLE_EQ(number("0"), 0.0);
  EXPECT_DOUBLE_EQ(number("-0"), 0.0);
  EXPECT_DOUBLE_EQ(number("10"), 10.0);
  EXPECT_DOUBLE_EQ(number("-0.5"), -0.5);
  EXPECT_DOUBLE_EQ(number("0.5e3"), 500.0);
  EXPECT_DOUBLE_EQ(number("1E-2"), 0.01);
  // The writer's %.10g emits exponent forms like these; the strict grammar
  // must keep accepting them or every bench JSON stops round-tripping.
  EXPECT_DOUBLE_EQ(number("1e+06"), 1e6);
  EXPECT_DOUBLE_EQ(number("1e-09"), 1e-9);
}

TEST(JsonHardeningTest, WriterExponentOutputRoundTrips) {
  JsonWriter w;
  w.begin_object();
  w.kv("big", 1e6);
  w.kv("small", 1e-9);
  w.kv("neg", -2.5e-4);
  w.end_object();
  const std::optional<JsonValue> doc = obs::json_parse(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->find("big")->number, 1e6);
  EXPECT_DOUBLE_EQ(doc->find("small")->number, 1e-9);
  EXPECT_DOUBLE_EQ(doc->find("neg")->number, -2.5e-4);
}

// --- structural garbage -----------------------------------------------------

TEST(JsonHardeningTest, StructuralGarbageIsRejected) {
  for (const char* text :
       {"{1: 2}",          // non-string key
        "{\"a\" 1}",       // missing colon
        "{\"a\": 1,}",     // trailing comma
        "[1 2]",           // missing comma
        "[,1]",            // leading comma
        "{\"a\": 1} {}",   // two top-level values
        "]", "}", ",",
        "truefalse"}) {
    EXPECT_FALSE(parses(text)) << "accepted garbage: " << text;
  }
  EXPECT_TRUE(parses(" null "));
  EXPECT_TRUE(parses("true"));
  EXPECT_TRUE(parses("\t[true, false, null]\n"));
}

}  // namespace
}  // namespace pahoehoe
