// Determinism lock-down for the GF(2^8) kernel dispatch: the whole
// simulation's output must not depend on which mul_acc kernel ran. A
// `run_many` sweep executed under the scalar kernel and under the best
// available SIMD kernel must produce byte-identical RunResult digests for
// any --jobs (reusing the jobs-identity machinery of parallel_sweep_test) —
// the only permitted difference is the erasure_kernel_runs_total metric
// label, which records which path a run took.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/harness.h"
#include "erasure/gf256.h"

namespace pahoehoe {
namespace {

struct KernelGuard {
  ~KernelGuard() { gf256::reset_kernel(); }
};

/// Registry text minus the one line that names the kernel.
std::string metrics_modulo_kernel(const obs::MetricRegistry& metrics) {
  std::istringstream in(metrics.to_text());
  std::string line;
  std::string out;
  while (std::getline(in, line)) {
    if (line.find("erasure_kernel_runs_total") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

void append_exact(std::ostringstream& os, const std::vector<double>& values) {
  os.precision(17);
  for (double v : values) os << v << ';';
  os << '\n';
}

/// Everything observable about one run, rendered byte-exactly.
std::string digest(const core::RunResult& r) {
  std::ostringstream os;
  os << r.stats.total_sent_count() << ' ' << r.stats.total_sent_bytes() << ' '
     << r.stats.wan_sent_bytes() << '\n';
  os << r.puts_attempted << ' ' << r.puts_acked << ' ' << r.puts_failed << ' '
     << r.gets_attempted << ' ' << r.gets_ok << ' ' << r.gets_mismatched
     << '\n';
  os << r.versions_total << ' ' << r.amr << ' ' << r.excess_amr << ' '
     << r.durable_not_amr << ' ' << r.non_durable << ' ' << r.given_up << '\n';
  os << r.end_time << ' ' << r.events << ' ' << r.quiescent << '\n';
  append_exact(os, r.put_latency_s);
  append_exact(os, r.get_latency_s);
  os << r.audit.to_string() << '\n';
  os << metrics_modulo_kernel(r.metrics);
  os << r.amr_confirmed << ' ' << r.amr_backlog_final << ' '
     << r.amr_backlog_peak << '\n';
  os.precision(17);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    os << r.time_to_amr_s.quantile(q) << ';';
  }
  return os.str();
}

/// Aggregate digest: every SampleStats value sequence plus merged metrics.
std::string digest(const core::AggregateResult& agg) {
  std::ostringstream os;
  os << agg.seeds << '\n';
  append_exact(os, agg.msg_count.values());
  append_exact(os, agg.msg_bytes.values());
  append_exact(os, agg.wan_bytes.values());
  append_exact(os, agg.puts_attempted.values());
  append_exact(os, agg.puts_acked.values());
  append_exact(os, agg.amr.values());
  append_exact(os, agg.excess_amr.values());
  append_exact(os, agg.durable_not_amr.values());
  append_exact(os, agg.non_durable.values());
  append_exact(os, agg.end_time_s.values());
  append_exact(os, agg.put_latency_mean_s.values());
  os.precision(17);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    os << agg.put_latency_s.quantile(q) << ';'
       << agg.get_latency_s.quantile(q) << ';'
       << agg.time_to_amr_s.quantile(q) << ';';
  }
  os << '\n';
  os << metrics_modulo_kernel(agg.metrics);
  return os.str();
}

core::RunConfig small_config() {
  core::RunConfig config = core::paper_default_config();
  config.convergence = core::ConvergenceOptions::all_opts();
  config.workload.num_puts = 8;
  config.workload.value_size = 8 * 1024;
  config.workload.get_fraction = 0.5;
  // A mid-run blackout so recovery (decode + regenerate) runs too.
  config.faults.push_back(core::FaultSpec::fs_blackout(
      0, 1, 30 * kMicrosPerSecond, 600 * kMicrosPerSecond));
  return config;
}

TEST(KernelDeterminism, RunResultDigestIdenticalScalarVsSimd) {
  KernelGuard guard;
  const gf256::Kernel best = gf256::best_kernel();
  if (best == gf256::Kernel::kScalar) {
    GTEST_SKIP() << "no SIMD kernel available on this host";
  }
  const core::RunConfig config = small_config();
  for (uint64_t seed : {1ull, 7ull}) {
    core::RunConfig c = config;
    c.seed = seed;
    gf256::force_kernel(gf256::Kernel::kScalar);
    const std::string scalar_digest = digest(core::run_experiment(c));
    gf256::force_kernel(best);
    const std::string simd_digest = digest(core::run_experiment(c));
    EXPECT_EQ(scalar_digest, simd_digest)
        << "seed " << seed << " diverged under " << gf256::to_string(best);
  }
}

TEST(KernelDeterminism, RunManyDigestIdenticalScalarVsSimdForAnyJobs) {
  KernelGuard guard;
  const gf256::Kernel best = gf256::best_kernel();
  if (best == gf256::Kernel::kScalar) {
    GTEST_SKIP() << "no SIMD kernel available on this host";
  }
  const core::RunConfig config = small_config();

  gf256::force_kernel(gf256::Kernel::kScalar);
  const core::AggregateResult serial = core::run_many(config, 4, 42, 1);
  const std::string scalar_digest = digest(serial);
  // The scalar sweep recorded its kernel.
  EXPECT_EQ(serial.metrics.counter_sum("erasure_kernel_runs_total"), 4u);

  for (int jobs : {1, 2}) {
    gf256::force_kernel(best);
    const core::AggregateResult simd = core::run_many(config, 4, 42, jobs);
    EXPECT_EQ(digest(simd), scalar_digest)
        << "jobs=" << jobs << " kernel=" << gf256::to_string(best);
    // ... and the SIMD sweep recorded *its* kernel: the label is the single
    // intended difference between the two registries.
    const std::string expected_line =
        std::string("counter erasure_kernel_runs_total{kernel=") +
        gf256::to_string(best) + "} 4\n";
    EXPECT_NE(simd.metrics.to_text().find(expected_line), std::string::npos)
        << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace pahoehoe
