#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "erasure/gf256.h"
#include "erasure/matrix.h"
#include "erasure/reed_solomon.h"

namespace pahoehoe::erasure {
namespace {

// --- GF(2^8) field axioms ------------------------------------------------------

TEST(Gf256Test, AdditionIsXor) {
  EXPECT_EQ(gf256::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(gf256::sub(0x53, 0xCA), 0x53 ^ 0xCA);
}

TEST(Gf256Test, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256::mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(gf256::mul(1, static_cast<uint8_t>(a)), a);
    EXPECT_EQ(gf256::mul(static_cast<uint8_t>(a), 0), 0);
  }
}

TEST(Gf256Test, KnownProduct) {
  // 0x53 * 0xCA = 0x01 under polynomial 0x11d? Verify via log/exp identity
  // instead: multiply-then-divide returns the original.
  const uint8_t p = gf256::mul(0x53, 0xCA);
  EXPECT_EQ(gf256::div(p, 0xCA), 0x53);
}

TEST(Gf256Test, MultiplicationCommutes) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<uint8_t>(rng.next_u64());
    const auto b = static_cast<uint8_t>(rng.next_u64());
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
  }
}

TEST(Gf256Test, MultiplicationAssociates) {
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<uint8_t>(rng.next_u64());
    const auto b = static_cast<uint8_t>(rng.next_u64());
    const auto c = static_cast<uint8_t>(rng.next_u64());
    EXPECT_EQ(gf256::mul(gf256::mul(a, b), c),
              gf256::mul(a, gf256::mul(b, c)));
  }
}

TEST(Gf256Test, DistributesOverAddition) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<uint8_t>(rng.next_u64());
    const auto b = static_cast<uint8_t>(rng.next_u64());
    const auto c = static_cast<uint8_t>(rng.next_u64());
    EXPECT_EQ(gf256::mul(a, gf256::add(b, c)),
              gf256::add(gf256::mul(a, b), gf256::mul(a, c)));
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const uint8_t inv = gf256::inverse(static_cast<uint8_t>(a));
    EXPECT_EQ(gf256::mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256Test, PowMatchesRepeatedMultiplication) {
  for (int a : {0, 1, 2, 3, 97, 255}) {
    uint8_t acc = 1;
    for (unsigned e = 0; e < 20; ++e) {
      EXPECT_EQ(gf256::pow(static_cast<uint8_t>(a), e), acc)
          << "a=" << a << " e=" << e;
      acc = gf256::mul(acc, static_cast<uint8_t>(a));
    }
  }
}

TEST(Gf256Test, PowHandlesLargeExponents) {
  // a^255 = 1 for nonzero a (multiplicative group order 255).
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(gf256::pow(static_cast<uint8_t>(a), 255), 1);
    EXPECT_EQ(gf256::pow(static_cast<uint8_t>(a), 510), 1);
  }
}

TEST(Gf256Test, MulAccAccumulates) {
  Bytes dst{1, 2, 3};
  Bytes src{4, 5, 6};
  gf256::mul_acc(dst, src, 1);  // XOR path
  EXPECT_EQ(dst, (Bytes{1 ^ 4, 2 ^ 5, 3 ^ 6}));
  Bytes dst2{0, 0, 0};
  gf256::mul_acc(dst2, src, 3);
  EXPECT_EQ(dst2[0], gf256::mul(3, 4));
  gf256::mul_acc(dst2, src, 0);  // no-op
  EXPECT_EQ(dst2[0], gf256::mul(3, 4));
}

// --- mul_acc kernel dispatch & fast paths ---------------------------------

/// Restores the dispatcher's own kernel choice on scope exit.
struct KernelGuard {
  ~KernelGuard() { gf256::reset_kernel(); }
};

TEST(Gf256KernelTest, KernelNamesRoundTrip) {
  for (gf256::Kernel k : {gf256::Kernel::kScalar, gf256::Kernel::kSsse3,
                          gf256::Kernel::kAvx2}) {
    EXPECT_EQ(gf256::parse_kernel(gf256::to_string(k)), k);
  }
  EXPECT_FALSE(gf256::parse_kernel("auto").has_value());
  EXPECT_FALSE(gf256::parse_kernel("").has_value());
  EXPECT_FALSE(gf256::parse_kernel("AVX2").has_value());
}

TEST(Gf256KernelTest, ScalarAlwaysSupportedAndForceable) {
  KernelGuard guard;
  EXPECT_TRUE(gf256::kernel_supported(gf256::Kernel::kScalar));
  const auto kernels = gf256::supported_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front(), gf256::Kernel::kScalar);
  gf256::force_kernel(gf256::Kernel::kScalar);
  EXPECT_EQ(gf256::active_kernel(), gf256::Kernel::kScalar);
  gf256::force_kernel(gf256::best_kernel());
  EXPECT_EQ(gf256::active_kernel(), gf256::best_kernel());
}

TEST(Gf256KernelTest, MulAccCoefZeroIsExactNoOpOnEveryKernel) {
  // A naive kernel would run the table loop for coef 0 and XOR zeros into
  // dst — harmless — but the contract is stronger: coefficient 0 must not
  // touch dst at all, so a systematic matrix's zero entries cost nothing.
  KernelGuard guard;
  Rng rng(31);
  for (gf256::Kernel k : gf256::supported_kernels()) {
    gf256::force_kernel(k);
    for (size_t len : {0u, 1u, 15u, 16u, 33u, 100u}) {
      Bytes src(len), dst(len);
      for (auto& b : src) b = static_cast<uint8_t>(rng.next_u64());
      for (auto& b : dst) b = static_cast<uint8_t>(rng.next_u64());
      const Bytes before = dst;
      gf256::mul_acc(dst, src, 0);
      EXPECT_EQ(dst, before) << gf256::to_string(k) << " len=" << len;
    }
  }
}

TEST(Gf256KernelTest, MulAccCoefOneIsPureXorOnEveryKernel) {
  KernelGuard guard;
  Rng rng(32);
  for (gf256::Kernel k : gf256::supported_kernels()) {
    gf256::force_kernel(k);
    // Lengths around the 16/32-byte vector widths hit the remainder paths.
    for (size_t len : {1u, 15u, 16u, 17u, 31u, 32u, 33u, 97u}) {
      Bytes src(len), dst(len);
      for (auto& b : src) b = static_cast<uint8_t>(rng.next_u64());
      for (auto& b : dst) b = static_cast<uint8_t>(rng.next_u64());
      Bytes expected(len);
      for (size_t i = 0; i < len; ++i) {
        expected[i] = static_cast<uint8_t>(dst[i] ^ src[i]);
      }
      gf256::mul_acc(dst, src, 1);
      EXPECT_EQ(dst, expected) << gf256::to_string(k) << " len=" << len;
    }
  }
}

TEST(Gf256KernelTest, MulAccEmptySpansAreSafeOnEveryKernel) {
  KernelGuard guard;
  for (gf256::Kernel k : gf256::supported_kernels()) {
    gf256::force_kernel(k);
    Bytes empty;
    gf256::mul_acc(empty, empty, 7);  // must not dereference data()
    EXPECT_TRUE(empty.empty());
  }
}

// --- Matrix ---------------------------------------------------------------------

TEST(MatrixTest, IdentityMultiplication) {
  Matrix m(3, 3);
  Rng rng(8);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      m.at(r, c) = static_cast<uint8_t>(rng.next_u64());
    }
  }
  EXPECT_EQ(m.multiply(Matrix::identity(3)), m);
  EXPECT_EQ(Matrix::identity(3).multiply(m), m);
}

TEST(MatrixTest, InverseRoundTrip) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    Matrix m(4, 4);
    do {
      for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
          m.at(r, c) = static_cast<uint8_t>(rng.next_u64());
        }
      }
    } while (!m.invertible());
    EXPECT_EQ(m.multiply(m.inverted()), Matrix::identity(4));
    EXPECT_EQ(m.inverted().multiply(m), Matrix::identity(4));
  }
}

TEST(MatrixTest, SingularDetected) {
  Matrix m(2, 2);  // all zeros
  EXPECT_FALSE(m.invertible());
  Matrix dup(2, 2);  // duplicate rows
  dup.at(0, 0) = 3;
  dup.at(0, 1) = 5;
  dup.at(1, 0) = 3;
  dup.at(1, 1) = 5;
  EXPECT_FALSE(dup.invertible());
}

TEST(MatrixTest, NonSquareNotInvertible) {
  EXPECT_FALSE(Matrix(2, 3).invertible());
}

TEST(MatrixTest, SelectRows) {
  Matrix m = Matrix::vandermonde(5, 3);
  Matrix sel = m.select_rows({4, 0});
  EXPECT_EQ(sel.rows(), 2);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(sel.at(0, c), m.at(4, c));
    EXPECT_EQ(sel.at(1, c), m.at(0, c));
  }
}

TEST(MatrixTest, VandermondeAnyRowSubsetInvertible) {
  // The defining property used by the RS construction.
  Matrix v = Matrix::vandermonde(12, 4);
  Rng rng(10);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> rows(12);
    std::iota(rows.begin(), rows.end(), 0);
    std::shuffle(rows.begin(), rows.end(), rng.engine());
    rows.resize(4);
    EXPECT_TRUE(v.select_rows(rows).invertible());
  }
}

// --- ReedSolomon -------------------------------------------------------------------

Bytes random_value(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes value(size);
  for (auto& b : value) b = static_cast<uint8_t>(rng.next_u64());
  return value;
}

TEST(ReedSolomonTest, SystematicPrefixIsTheValue) {
  ReedSolomon rs(4, 12);
  const Bytes value = random_value(4096, 1);
  const auto frags = rs.encode(value);
  ASSERT_EQ(frags.size(), 12u);
  // Data fragments striped in order.
  Bytes reassembled;
  for (int i = 0; i < 4; ++i) {
    reassembled.insert(reassembled.end(), frags[i].begin(), frags[i].end());
  }
  reassembled.resize(value.size());
  EXPECT_EQ(reassembled, value);
}

TEST(ReedSolomonTest, EncodeMatrixTopIsIdentity) {
  ReedSolomon rs(4, 12);
  const Matrix& m = rs.encode_matrix();
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(m.at(r, c), r == c ? 1 : 0);
    }
  }
}

TEST(ReedSolomonTest, DecodeFromDataFragments) {
  ReedSolomon rs(4, 12);
  const Bytes value = random_value(1000, 2);
  const auto frags = rs.encode(value);
  std::vector<IndexedFragment> input;
  for (int i = 0; i < 4; ++i) input.push_back({i, &frags[i]});
  EXPECT_EQ(rs.decode(input, value.size()), value);
}

TEST(ReedSolomonTest, DecodeFromParityOnly) {
  ReedSolomon rs(4, 12);
  const Bytes value = random_value(1000, 3);
  const auto frags = rs.encode(value);
  std::vector<IndexedFragment> input;
  for (int i = 8; i < 12; ++i) input.push_back({i, &frags[i]});
  EXPECT_EQ(rs.decode(input, value.size()), value);
}

TEST(ReedSolomonTest, ExhaustiveAllKSubsetsForSmallCode) {
  // (k=3, n=6): all C(6,3)=20 subsets must decode.
  ReedSolomon rs(3, 6);
  const Bytes value = random_value(301, 4);
  const auto frags = rs.encode(value);
  int subsets = 0;
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      for (int c = b + 1; c < 6; ++c) {
        std::vector<IndexedFragment> input{
            {a, &frags[a]}, {b, &frags[b]}, {c, &frags[c]}};
        EXPECT_EQ(rs.decode(input, value.size()), value)
            << a << "," << b << "," << c;
        ++subsets;
      }
    }
  }
  EXPECT_EQ(subsets, 20);
}

TEST(ReedSolomonTest, RandomKSubsetsForDefaultPolicy) {
  ReedSolomon rs(4, 12);
  const Bytes value = random_value(100 * 1024, 5);
  const auto frags = rs.encode(value);
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> indices(12);
    std::iota(indices.begin(), indices.end(), 0);
    std::shuffle(indices.begin(), indices.end(), rng.engine());
    indices.resize(4);
    std::vector<IndexedFragment> input;
    for (int i : indices) input.push_back({i, &frags[i]});
    EXPECT_EQ(rs.decode(input, value.size()), value);
  }
}

TEST(ReedSolomonTest, ExtraFragmentsAndDuplicatesIgnored) {
  ReedSolomon rs(4, 12);
  const Bytes value = random_value(512, 6);
  const auto frags = rs.encode(value);
  std::vector<IndexedFragment> input;
  input.push_back({7, &frags[7]});
  input.push_back({7, &frags[7]});  // duplicate index skipped
  for (int i = 0; i < 12; ++i) input.push_back({i, &frags[i]});
  EXPECT_EQ(rs.decode(input, value.size()), value);
}

TEST(ReedSolomonTest, ValueSizeNotMultipleOfK) {
  ReedSolomon rs(4, 12);
  for (size_t size : {1u, 2u, 3u, 5u, 127u, 1001u}) {
    const Bytes value = random_value(size, 100 + size);
    const auto frags = rs.encode(value);
    EXPECT_EQ(frags[0].size(), rs.fragment_size(size));
    std::vector<IndexedFragment> input;
    for (int i = 2; i < 6; ++i) input.push_back({i, &frags[i]});
    EXPECT_EQ(rs.decode(input, size), value) << "size=" << size;
  }
}

TEST(ReedSolomonTest, EmptyValue) {
  ReedSolomon rs(4, 12);
  const auto frags = rs.encode({});
  ASSERT_EQ(frags.size(), 12u);
  for (const auto& f : frags) EXPECT_TRUE(f.empty());
  std::vector<IndexedFragment> input;
  for (int i = 0; i < 4; ++i) input.push_back({i, &frags[i]});
  EXPECT_TRUE(rs.decode(input, 0).empty());
}

TEST(ReedSolomonTest, EmptyValueEncodesUnderEveryKernel) {
  // A zero-length blob put yields zero-length fragments; the SIMD kernels
  // must take their len==0 exit without touching any buffer.
  KernelGuard guard;
  ReedSolomon rs(4, 12);
  for (gf256::Kernel k : gf256::supported_kernels()) {
    gf256::force_kernel(k);
    const auto frags = rs.encode({});
    ASSERT_EQ(frags.size(), 12u) << gf256::to_string(k);
    for (const auto& f : frags) EXPECT_TRUE(f.empty());
    std::vector<IndexedFragment> input{
        {3, &frags[3]}, {6, &frags[6]}, {9, &frags[9]}, {11, &frags[11]}};
    EXPECT_TRUE(rs.decode(input, 0).empty()) << gf256::to_string(k);
    EXPECT_TRUE(rs.regenerate(input, {0, 5}, 0).size() == 2u);
  }
}

TEST(ReedSolomonTest, ValueSizeNotMultipleOfKUnderEveryKernel) {
  // Ragged sizes make fragment tails shorter than a vector register; every
  // kernel must produce the same zero-padded fragments as scalar and decode
  // back to the exact value.
  KernelGuard guard;
  ReedSolomon rs(4, 12);
  for (size_t size : {1u, 2u, 3u, 5u, 63u, 127u, 1001u, 4095u}) {
    const Bytes value = random_value(size, 7000 + size);
    EXPECT_EQ(rs.fragment_size(size), (size + 3) / 4);
    gf256::force_kernel(gf256::Kernel::kScalar);
    const auto oracle = rs.encode(value);
    for (gf256::Kernel k : gf256::supported_kernels()) {
      gf256::force_kernel(k);
      const auto frags = rs.encode(value);
      EXPECT_EQ(frags, oracle) << gf256::to_string(k) << " size=" << size;
      std::vector<IndexedFragment> input;
      for (int i = 5; i < 9; ++i) input.push_back({i, &frags[i]});
      EXPECT_EQ(rs.decode(input, size), value)
          << gf256::to_string(k) << " size=" << size;
    }
  }
}

TEST(ReedSolomonTest, RegenerateSingleFragment) {
  ReedSolomon rs(4, 12);
  const Bytes value = random_value(4096, 7);
  const auto frags = rs.encode(value);
  std::vector<IndexedFragment> available{
      {1, &frags[1]}, {4, &frags[4]}, {9, &frags[9]}, {11, &frags[11]}};
  const auto regen = rs.regenerate(available, {6}, value.size());
  ASSERT_EQ(regen.size(), 1u);
  EXPECT_EQ(regen[0], frags[6]);
}

TEST(ReedSolomonTest, RegenerateAllMissingSiblings) {
  // The §4.2 sibling-recovery shape: one k-fragment read regenerates every
  // missing fragment at once.
  ReedSolomon rs(4, 12);
  const Bytes value = random_value(8000, 8);
  const auto frags = rs.encode(value);
  std::vector<IndexedFragment> available{
      {0, &frags[0]}, {1, &frags[1]}, {2, &frags[2]}, {3, &frags[3]}};
  std::vector<int> targets{4, 5, 6, 7, 8, 9, 10, 11};
  const auto regen = rs.regenerate(available, targets, value.size());
  ASSERT_EQ(regen.size(), targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(regen[i], frags[static_cast<size_t>(targets[i])])
        << "target " << targets[i];
  }
}

TEST(ReedSolomonTest, RegenerateDataFromParity) {
  ReedSolomon rs(4, 12);
  const Bytes value = random_value(333, 9);
  const auto frags = rs.encode(value);
  std::vector<IndexedFragment> available{
      {8, &frags[8]}, {9, &frags[9]}, {10, &frags[10]}, {11, &frags[11]}};
  const auto regen = rs.regenerate(available, {0, 1, 2, 3}, value.size());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(regen[static_cast<size_t>(i)], frags[static_cast<size_t>(i)]);
  }
}

TEST(ReedSolomonTest, ReplicationDegenerateK1) {
  // k=1 is plain replication: every fragment equals the value.
  ReedSolomon rs(1, 3);
  const Bytes value = random_value(64, 10);
  const auto frags = rs.encode(value);
  for (const auto& f : frags) EXPECT_EQ(f, value);
}

TEST(ReedSolomonTest, NoParityDegenerateKEqualsN) {
  ReedSolomon rs(4, 4);
  const Bytes value = random_value(64, 11);
  const auto frags = rs.encode(value);
  std::vector<IndexedFragment> input;
  for (int i = 0; i < 4; ++i) input.push_back({i, &frags[i]});
  EXPECT_EQ(rs.decode(input, value.size()), value);
}

// Parameterized sweep over (k, n) shapes: roundtrip via a random k-subset.
class ReedSolomonParamTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ReedSolomonParamTest, RoundTripRandomSubset) {
  const auto [k, n] = GetParam();
  ReedSolomon rs(k, n);
  const Bytes value =
      random_value(1024 + static_cast<size_t>(k * 37 + n),
                   static_cast<uint64_t>(k * 1000 + n));
  const auto frags = rs.encode(value);
  ASSERT_EQ(frags.size(), static_cast<size_t>(n));

  Rng rng(static_cast<uint64_t>(n * 257 + k));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> indices(static_cast<size_t>(n));
    std::iota(indices.begin(), indices.end(), 0);
    std::shuffle(indices.begin(), indices.end(), rng.engine());
    indices.resize(static_cast<size_t>(k));
    std::vector<IndexedFragment> input;
    for (int i : indices) input.push_back({i, &frags[static_cast<size_t>(i)]});
    EXPECT_EQ(rs.decode(input, value.size()), value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CodeShapes, ReedSolomonParamTest,
    ::testing::Values(std::pair{1, 2}, std::pair{2, 3}, std::pair{2, 6},
                      std::pair{3, 5}, std::pair{4, 12}, std::pair{6, 9},
                      std::pair{8, 12}, std::pair{10, 14}, std::pair{16, 20},
                      std::pair{4, 36}, std::pair{32, 48}));

}  // namespace
}  // namespace pahoehoe::erasure
