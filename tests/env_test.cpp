// pahoehoe::env — the single sanctioned environment-access module (lint
// rule nondet-env). setenv/unsetenv here run before any reader thread
// exists, so the getenv-vs-setenv race concurrency-mt-unsafe worries about
// cannot occur in this process.
#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace pahoehoe {
namespace {

constexpr const char* kVar = "PAHOEHOE_ENV_TEST_VAR";

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv(kVar); }
  void set(const char* value) { ::setenv(kVar, value, /*overwrite=*/1); }
};

TEST_F(EnvTest, UnsetIsNullopt) {
  ::unsetenv(kVar);
  EXPECT_FALSE(env::get(kVar).has_value());
  EXPECT_FALSE(env::override_value(kVar).has_value());
}

TEST_F(EnvTest, GetReturnsExactValue) {
  set("scalar");
  ASSERT_TRUE(env::get(kVar).has_value());
  EXPECT_EQ(*env::get(kVar), "scalar");
  set("  spaced  ");
  EXPECT_EQ(*env::get(kVar), "  spaced  ");  // raw lookup does not trim
}

TEST_F(EnvTest, GetDistinguishesEmptyFromUnset) {
  set("");
  ASSERT_TRUE(env::get(kVar).has_value());
  EXPECT_EQ(*env::get(kVar), "");
}

TEST_F(EnvTest, OverrideTreatsEmptyAsNoOverride) {
  set("");
  EXPECT_FALSE(env::override_value(kVar).has_value());
  set("   \t ");
  EXPECT_FALSE(env::override_value(kVar).has_value());
}

TEST_F(EnvTest, OverrideTrimsWhitespace) {
  set(" avx2 ");
  ASSERT_TRUE(env::override_value(kVar).has_value());
  EXPECT_EQ(*env::override_value(kVar), "avx2");
  set("\tssse3\n");
  EXPECT_EQ(*env::override_value(kVar), "ssse3");
}

TEST_F(EnvTest, OverridePassesInteriorContentThrough) {
  set("not a kernel");  // parsing/validation is the caller's job
  EXPECT_EQ(*env::override_value(kVar), "not a kernel");
}

}  // namespace
}  // namespace pahoehoe
