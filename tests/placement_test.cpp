#include <gtest/gtest.h>

#include <map>

#include "core/placement.h"

namespace pahoehoe::core {
namespace {

std::vector<NodeId> three_fs() { return {NodeId{10}, NodeId{11}, NodeId{12}}; }

ObjectVersionId ov(const std::string& key) {
  return ObjectVersionId{Key{key}, Timestamp{100, 1}};
}

TEST(PlacementTest, DefaultPolicySlotRanges) {
  Policy p;
  auto [b0, e0] = dc_slot_range(p, 2, DataCenterId{0});
  auto [b1, e1] = dc_slot_range(p, 2, DataCenterId{1});
  EXPECT_EQ(b0, 0);
  EXPECT_EQ(e0, 6);
  EXPECT_EQ(b1, 6);
  EXPECT_EQ(e1, 12);
}

TEST(PlacementTest, DataFragmentsLandInOneDc) {
  // The default policy keeps all k data fragments inside DC 0's range.
  Policy p;
  auto [b0, e0] = dc_slot_range(p, 2, DataCenterId{0});
  EXPECT_LE(b0, 0);
  EXPECT_GE(e0, p.k);
}

TEST(PlacementTest, UnevenSplitGivesRemainderToLowerDcs) {
  Policy p;
  p.k = 3;
  p.n = 10;
  auto [b0, e0] = dc_slot_range(p, 3, DataCenterId{0});
  auto [b1, e1] = dc_slot_range(p, 3, DataCenterId{1});
  auto [b2, e2] = dc_slot_range(p, 3, DataCenterId{2});
  EXPECT_EQ(e0 - b0, 4);  // 10 = 4 + 3 + 3
  EXPECT_EQ(e1 - b1, 3);
  EXPECT_EQ(e2 - b2, 3);
  EXPECT_EQ(b1, e0);
  EXPECT_EQ(b2, e1);
  EXPECT_EQ(e2, 10);
}

TEST(PlacementTest, DcOfSlotInvertsRanges) {
  Policy p;
  for (int slot = 0; slot < p.n; ++slot) {
    const DataCenterId dc = dc_of_slot(p, 2, slot);
    auto [b, e] = dc_slot_range(p, 2, dc);
    EXPECT_GE(slot, b);
    EXPECT_LT(slot, e);
  }
}

TEST(PlacementTest, SuggestsOnlyOwnDcSlots) {
  const auto locs =
      suggest_locations(Policy{}, ov("k"), DataCenterId{1}, three_fs(), 2, 2);
  ASSERT_EQ(locs.size(), 12u);
  for (int slot = 0; slot < 6; ++slot) {
    EXPECT_FALSE(locs[static_cast<size_t>(slot)].has_value());
  }
  for (int slot = 6; slot < 12; ++slot) {
    EXPECT_TRUE(locs[static_cast<size_t>(slot)].has_value());
  }
}

TEST(PlacementTest, RespectsPerFsLimit) {
  const auto locs =
      suggest_locations(Policy{}, ov("k"), DataCenterId{0}, three_fs(), 2, 2);
  std::map<NodeId, int> per_fs;
  for (const auto& loc : locs) {
    if (loc.has_value()) per_fs[loc->fs] += 1;
  }
  EXPECT_EQ(per_fs.size(), 3u);  // all three FSs used
  for (const auto& [fs, count] : per_fs) {
    (void)fs;
    EXPECT_LE(count, 2);
  }
}

TEST(PlacementTest, DistinctDisksForSameFs) {
  const auto locs =
      suggest_locations(Policy{}, ov("k"), DataCenterId{0}, three_fs(), 2, 2);
  std::map<NodeId, std::set<uint8_t>> disks;
  for (const auto& loc : locs) {
    if (loc.has_value()) disks[loc->fs].insert(loc->disk);
  }
  for (const auto& [fs, set] : disks) {
    (void)fs;
    EXPECT_EQ(set.size(), 2u);  // two fragments on two distinct disks
  }
}

TEST(PlacementTest, DeterministicForSameObjectVersion) {
  const auto a =
      suggest_locations(Policy{}, ov("k"), DataCenterId{0}, three_fs(), 2, 2);
  const auto b =
      suggest_locations(Policy{}, ov("k"), DataCenterId{0}, three_fs(), 2, 2);
  EXPECT_EQ(a, b);
}

TEST(PlacementTest, RotationSpreadsLoadAcrossObjects) {
  // With a 3-slot demand on 3 FSs, different objects should not all start
  // at the same FS.
  Policy p;
  p.k = 1;
  p.n = 3;
  p.max_frags_per_fs = 1;
  p.max_frags_per_dc = 3;
  std::set<uint32_t> first_fs;
  for (int i = 0; i < 40; ++i) {
    const auto locs = suggest_locations(p, ov("obj" + std::to_string(i)),
                                        DataCenterId{0}, three_fs(), 2, 1);
    for (const auto& loc : locs) {
      if (loc.has_value()) {
        first_fs.insert(loc->fs.value);
        break;
      }
    }
  }
  EXPECT_GT(first_fs.size(), 1u);
}

TEST(PlacementTest, InsufficientCapacityLeavesSlotsUndecided) {
  // One FS with one usable disk cannot host 6 fragments.
  Policy p;  // wants 6 slots in DC 0
  const auto locs = suggest_locations(p, ov("k"), DataCenterId{0},
                                      {NodeId{10}}, /*disks_per_fs=*/1, 2);
  int decided = 0;
  for (const auto& loc : locs) {
    if (loc.has_value()) ++decided;
  }
  EXPECT_EQ(decided, 1);  // min(max_frags_per_fs=2, disks=1) * 1 FS
}

TEST(PlacementTest, SingleDcOwnsAllSlots) {
  Policy p;
  auto [b, e] = dc_slot_range(p, 1, DataCenterId{0});
  EXPECT_EQ(b, 0);
  EXPECT_EQ(e, 12);
}

}  // namespace
}  // namespace pahoehoe::core
