// Put and get protocol tests (paper Figures 2–3, §3.2–§3.3).
#include <gtest/gtest.h>

#include "test_util.h"

namespace pahoehoe {
namespace {

using core::ConvergenceOptions;
using core::VersionStatus;
using testing::SimCluster;
using testing::minutes;
using testing::seconds;

TEST(PutTest, FailureFreePutSucceeds) {
  SimCluster tc;
  const Bytes value = tc.make_value(100 * 1024);
  const auto result = tc.put(Key{"k"}, value);
  EXPECT_TRUE(result.success);
  EXPECT_GE(result.frag_acks, Policy{}.min_frags_for_success);
}

TEST(PutTest, FailureFreePutReachesAmrWithoutConvergence) {
  SimCluster tc(ConvergenceOptions::all_opts());
  const auto result = tc.put(Key{"k"}, tc.make_value(4096));
  tc.run_to_quiescence();
  EXPECT_EQ(tc.cluster.classify(result.ov), VersionStatus::kAmr);
  EXPECT_EQ(tc.cluster.total_pending_versions(), 0u);
  // Put AMR indications suppressed every convergence message.
  EXPECT_EQ(tc.net.stats().of(wire::MessageType::kKlsConvergeReq).sent_count,
            0u);
  EXPECT_EQ(tc.net.stats().of(wire::MessageType::kFsConvergeReq).sent_count,
            0u);
}

TEST(PutTest, FragmentsArePlacedPerPolicy) {
  SimCluster tc;
  const auto result = tc.put(Key{"k"}, tc.make_value(4096));
  tc.run_to_quiescence();
  // Union metadata from a KLS; check per-FS and per-DC limits.
  const Metadata* meta = tc.cluster.kls(0).meta_store().find(result.ov);
  ASSERT_NE(meta, nullptr);
  ASSERT_TRUE(meta->complete());
  std::map<uint32_t, int> per_fs;
  std::map<int, int> per_dc;
  for (const auto& loc : meta->locs) {
    per_fs[loc->fs.value] += 1;
    per_dc[tc.cluster.view()->dc_of(loc->fs).value] += 1;
  }
  for (const auto& [fs, count] : per_fs) {
    (void)fs;
    EXPECT_LE(count, 2);
  }
  EXPECT_EQ(per_dc[0], 6);
  EXPECT_EQ(per_dc[1], 6);
  // Data fragments (slots 0..3) all live in DC 0.
  for (int slot = 0; slot < 4; ++slot) {
    EXPECT_EQ(
        tc.cluster.view()->dc_of(meta->locs[static_cast<size_t>(slot)]->fs),
        DataCenterId{0});
  }
}

TEST(PutTest, EveryFragmentStoredIntactOnItsFs) {
  SimCluster tc;
  const auto result = tc.put(Key{"k"}, tc.make_value(64 * 1024));
  tc.run_to_quiescence();
  const Metadata* meta = tc.cluster.kls(0).meta_store().find(result.ov);
  ASSERT_TRUE(meta != nullptr && meta->complete());
  for (size_t slot = 0; slot < meta->locs.size(); ++slot) {
    const NodeId owner = meta->locs[slot]->fs;
    bool found = false;
    for (int i = 0; i < tc.cluster.num_fs(); ++i) {
      if (tc.cluster.fs(i).id() == owner) {
        EXPECT_NE(tc.cluster.fs(i).frag_store().fragment_if_intact(
                      result.ov, static_cast<int>(slot)),
                  nullptr)
            << "slot " << slot;
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(PutTest, TimestampsAreUniqueAndMonotonic) {
  SimCluster tc;
  const auto r1 = tc.put(Key{"k"}, tc.make_value(100));
  const auto r2 = tc.put(Key{"k"}, tc.make_value(100));
  const auto r3 = tc.put(Key{"k2"}, tc.make_value(100));
  EXPECT_LT(r1.ov.ts, r2.ov.ts);
  EXPECT_LT(r2.ov.ts, r3.ov.ts);
}

TEST(PutTest, ProxyClockSkewShiftsTimestamps) {
  core::ProxyOptions proxy;
  proxy.clock_skew = seconds(5);
  SimCluster tc({}, {}, 42, proxy);
  const auto r = tc.put(Key{"k"}, tc.make_value(10));
  EXPECT_GE(r.ov.ts.wall_micros, seconds(5));
}

TEST(PutTest, FailsWhenTooFewFragmentServersReachable) {
  SimCluster tc;
  // Black out 5 of 6 FSs for the whole test: at most 2 fragment acks, below
  // min_frags_for_success=8.
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 3; ++i) {
      if (dc == 0 && i == 0) continue;
      tc.blackout_fs(dc, i, 0, minutes(60));
    }
  }
  const auto result = tc.put(Key{"k"}, tc.make_value(4096));
  EXPECT_FALSE(result.success);
  EXPECT_LE(result.frag_acks, 2);
}

TEST(PutTest, SucceedsDespiteOneFsDown) {
  SimCluster tc;
  tc.blackout_fs(0, 0, 0, minutes(60));
  // 10 of 12 fragments can be stored; threshold is 8.
  const auto result = tc.put(Key{"k"}, tc.make_value(4096));
  EXPECT_TRUE(result.success);
}

TEST(PutTest, SucceedsDespiteOneKlsPerDcDown) {
  SimCluster tc;
  tc.blackout_kls(0, 0, 0, minutes(60));
  tc.blackout_kls(1, 0, 0, minutes(60));
  const auto result = tc.put(Key{"k"}, tc.make_value(4096));
  EXPECT_TRUE(result.success);
}

TEST(PutTest, WanPartitionStoresLocalFragmentsOnly) {
  SimCluster tc;
  // Isolate DC 1 entirely (proxy lives in DC 0).
  const std::vector<NodeId> dc1 =
      tc.cluster.view()->nodes_in_dc(DataCenterId{1});
  std::unordered_set<NodeId> group(dc1.begin(), dc1.end());
  tc.net.add_fault(
      std::make_shared<net::Partition>(group, 0, minutes(60)));
  const auto result = tc.put(Key{"k"}, tc.make_value(4096));
  // Only 6 fragments storable; below the 8-ack success threshold, so the
  // put times out and reports failure — but the version is durable (6 ≥ k).
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.frag_acks, 6);
  EXPECT_NE(tc.cluster.classify(result.ov), VersionStatus::kNonDurable);
}

TEST(GetTest, RoundTripsValue) {
  SimCluster tc;
  const Bytes value = tc.make_value(100 * 1024);
  tc.put(Key{"k"}, value);
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, value);
}

TEST(GetTest, EmptyishAndOddSizes) {
  SimCluster tc;
  for (size_t size : {size_t{1}, size_t{3}, size_t{4097}, size_t{100001}}) {
    const Key key{"k" + std::to_string(size)};
    const Bytes value = tc.make_value(size, static_cast<uint8_t>(size));
    tc.put(key, value);
    const auto got = tc.get(key);
    EXPECT_TRUE(got.success);
    EXPECT_EQ(got.value, value) << size;
  }
}

TEST(GetTest, MissingKeyFails) {
  SimCluster tc;
  tc.put(Key{"other"}, tc.make_value(100));
  const auto got = tc.get(Key{"nope"});
  EXPECT_FALSE(got.success);
}

TEST(GetTest, ReturnsLatestVersion) {
  SimCluster tc;
  const Bytes v1 = tc.make_value(1000, 1);
  const Bytes v2 = tc.make_value(1000, 2);
  tc.put(Key{"k"}, v1);
  const auto r2 = tc.put(Key{"k"}, v2);
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, v2);
  EXPECT_EQ(got.ts, r2.ov.ts);
}

TEST(GetTest, SucceedsWithUpToMFragmentServersSilent) {
  // Any k=4 fragments decode; with ≤2 fragments per FS, losing two whole
  // FSs (4 fragments) still leaves 8.
  SimCluster tc;
  const Bytes value = tc.make_value(50000);
  tc.put(Key{"k"}, value);
  tc.blackout_fs(0, 0, 0, minutes(60));
  tc.blackout_fs(1, 0, 0, minutes(60));
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, value);
}

TEST(GetTest, SucceedsWithOnlyDataDcAlive) {
  SimCluster tc;
  const Bytes value = tc.make_value(9999);
  tc.put(Key{"k"}, value);
  // Isolate DC 1; DC 0 holds the 4 data fragments + 2 parity.
  const std::vector<NodeId> dc1 =
      tc.cluster.view()->nodes_in_dc(DataCenterId{1});
  std::unordered_set<NodeId> group(dc1.begin(), dc1.end());
  tc.net.add_fault(std::make_shared<net::Partition>(group, 0, minutes(60)));
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, value);
}

TEST(GetTest, FallsBackToEarlierVersionWhenLatestUnrecoverable) {
  // Make the latest version non-AMR and unrecoverable (fragments lost),
  // then verify the get returns the previous AMR version.
  core::ConvergenceOptions conv;  // naive — no convergence interference:
  conv.min_age = 0;
  SimCluster tc(conv);
  const Bytes v1 = tc.make_value(5000, 1);
  tc.put(Key{"k"}, v1);

  // Second put while 5 of 6 FSs are down: fragments land only on fs(0,0),
  // i.e. at most 2 distinct fragments — non-durable forever.
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 3; ++i) {
      if (dc == 0 && i == 0) continue;
      tc.blackout_fs(dc, i, 0, seconds(30));
    }
  }
  const Bytes v2 = tc.make_value(5000, 2);
  const auto r2 = tc.put(Key{"k"}, v2);
  EXPECT_FALSE(r2.success);

  tc.run_for(seconds(40));  // heal
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, v1) << "must fall back to the earlier AMR version";
}

TEST(GetTest, NeverReturnsVersionOlderThanLatestAmr) {
  // Two AMR versions; the get must return the later one even under
  // substantial server unavailability.
  SimCluster tc(ConvergenceOptions::all_opts());
  const Bytes v1 = tc.make_value(2000, 1);
  const Bytes v2 = tc.make_value(2000, 2);
  tc.put(Key{"k"}, v1);
  const auto r2 = tc.put(Key{"k"}, v2);
  tc.run_to_quiescence();
  ASSERT_EQ(tc.cluster.classify(r2.ov), VersionStatus::kAmr);

  // Take down two FSs; the latest AMR version must still be returned.
  tc.blackout_fs(0, 1, 0, minutes(60));
  tc.blackout_fs(1, 2, 0, minutes(60));
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, v2);
}

TEST(GetTest, ConcurrentGetsDifferentKeys) {
  SimCluster tc;
  const Bytes va = tc.make_value(3000, 1);
  const Bytes vb = tc.make_value(3000, 2);
  tc.put(Key{"a"}, va);
  tc.put(Key{"b"}, vb);
  std::optional<core::GetResult> ra, rb;
  tc.cluster.proxy(0).get(Key{"a"}, [&](const core::GetResult& r) { ra = r; });
  tc.cluster.proxy(0).get(Key{"b"}, [&](const core::GetResult& r) { rb = r; });
  tc.run_to_quiescence();
  ASSERT_TRUE(ra.has_value() && rb.has_value());
  EXPECT_EQ(ra->value, va);
  EXPECT_EQ(rb->value, vb);
}

TEST(GetTest, AllKlssDownTimesOut) {
  SimCluster tc;
  tc.put(Key{"k"}, tc.make_value(100));
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 2; ++i) tc.blackout_kls(dc, i, 0, minutes(60));
  }
  const auto got = tc.get(Key{"k"});
  EXPECT_FALSE(got.success);
}

TEST(ProxyTest, CountersTrackOperations) {
  SimCluster tc;
  tc.put(Key{"a"}, tc.make_value(10));
  tc.put(Key{"b"}, tc.make_value(10));
  tc.get(Key{"a"});
  EXPECT_EQ(tc.cluster.proxy(0).puts_started(), 2u);
  EXPECT_EQ(tc.cluster.proxy(0).puts_succeeded(), 2u);
  EXPECT_EQ(tc.cluster.proxy(0).puts_failed(), 0u);
  EXPECT_EQ(tc.cluster.proxy(0).gets_started(), 1u);
}

TEST(ProxyTest, CrashDropsInflightOperations) {
  SimCluster tc;
  bool fired = false;
  tc.cluster.proxy(0).put(Key{"k"}, tc.make_value(100), Policy{},
                          [&](const core::PutResult&) { fired = true; });
  tc.cluster.proxy(0).crash();
  tc.run_to_quiescence();
  EXPECT_FALSE(fired);  // the client's own timeout handles this (§3.5)
  tc.cluster.proxy(0).recover();
  const auto result = tc.put(Key{"k2"}, tc.make_value(100));
  EXPECT_TRUE(result.success);
}

}  // namespace
}  // namespace pahoehoe
