// End-to-end tests with non-default durability policies and topologies:
// the library is not hard-wired to the paper's (k=4, n=12) / 2-DC setup.
#include <gtest/gtest.h>

#include "test_util.h"

namespace pahoehoe {
namespace {

using core::ClusterTopology;
using core::ConvergenceOptions;
using core::VersionStatus;
using testing::SimCluster;
using testing::minutes;

struct Scenario {
  std::string name;
  Policy policy;
  ClusterTopology topology;
};

class PolicyVariantsTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(PolicyVariantsTest, PutGetAmrRoundTrip) {
  const Scenario& s = GetParam();
  SimCluster tc(ConvergenceOptions::all_opts(), s.topology);
  const Bytes value = tc.make_value(30'000);
  const auto r = tc.put(Key{"k"}, value, s.policy);
  EXPECT_TRUE(r.success) << s.name;
  tc.run_to_quiescence();
  EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr) << s.name;
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success) << s.name;
  EXPECT_EQ(got.value, value) << s.name;
}

TEST_P(PolicyVariantsTest, SurvivesOneFsBlackoutDuringPut) {
  const Scenario& s = GetParam();
  SimCluster tc(ConvergenceOptions::all_opts(), s.topology);
  tc.blackout_fs(0, 0, 0, minutes(10));
  const Bytes value = tc.make_value(10'000);
  const auto r = tc.put(Key{"k"}, value, s.policy);
  tc.run_to_quiescence();
  // Whether or not the client saw success, the version must converge
  // (the surviving FSs hold ≥ k fragments in every scenario below).
  EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr) << s.name;
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success) << s.name;
  EXPECT_EQ(got.value, value) << s.name;
}

Policy make_policy(int k, int n, int per_fs, int per_dc, int min_success) {
  Policy p;
  p.k = static_cast<uint8_t>(k);
  p.n = static_cast<uint8_t>(n);
  p.max_frags_per_fs = static_cast<uint8_t>(per_fs);
  p.max_frags_per_dc = static_cast<uint8_t>(per_dc);
  p.min_frags_for_success = static_cast<uint8_t>(min_success);
  return p;
}

ClusterTopology make_topology(int dcs, int kls, int fs, int disks) {
  ClusterTopology t;
  t.num_dcs = dcs;
  t.kls_per_dc = kls;
  t.fs_per_dc = fs;
  t.disks_per_fs = disks;
  return t;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, PolicyVariantsTest,
    ::testing::Values(
        // The paper's default, for reference.
        Scenario{"paper_default", Policy{}, ClusterTopology{}},
        // Plain replication (k=1): Pahoehoe supports replication too (§6).
        Scenario{"replication_3x", make_policy(1, 6, 1, 3, 3),
                 make_topology(2, 2, 3, 2)},
        // Wider code on bigger FSs.
        Scenario{"wide_8_of_16", make_policy(8, 16, 2, 8, 12),
                 make_topology(2, 2, 4, 2)},
        // Three data centers, code striped across them.
        Scenario{"three_dcs", make_policy(4, 12, 2, 4, 8),
                 make_topology(3, 2, 2, 2)},
        // Single data center (no WAN at all).
        Scenario{"single_dc", make_policy(4, 12, 2, 12, 8),
                 make_topology(1, 2, 6, 2)},
        // Minimal parity.
        Scenario{"raid5_like", make_policy(4, 6, 1, 3, 5),
                 make_topology(2, 1, 3, 2)}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return info.param.name;
    });

TEST(MultiProxyTest, ConcurrentPutsToSameKeyOrderByTimestamp) {
  ClusterTopology topology;
  topology.num_proxies = 2;
  SimCluster tc(ConvergenceOptions::all_opts(), topology);
  // Proxy clocks are loosely synchronized; ours share the simulated clock,
  // with the proxy id breaking ties (§3.1).
  const Bytes v0 = tc.make_value(1000, 1);
  const Bytes v1 = tc.make_value(1000, 2);
  std::optional<core::PutResult> r0, r1;
  tc.cluster.proxy(0).put(Key{"k"}, v0, Policy{},
                          [&](const core::PutResult& r) { r0 = r; });
  tc.cluster.proxy(1).put(Key{"k"}, v1, Policy{},
                          [&](const core::PutResult& r) { r1 = r; });
  tc.run_to_quiescence();
  ASSERT_TRUE(r0.has_value() && r1.has_value());
  EXPECT_TRUE(r0->success && r1->success);
  EXPECT_NE(r0->ov.ts, r1->ov.ts) << "timestamps must be unique";

  // The get returns whichever version has the higher timestamp.
  const auto got = tc.get(Key{"k"});
  ASSERT_TRUE(got.success);
  const Timestamp latest = std::max(r0->ov.ts, r1->ov.ts);
  EXPECT_EQ(got.ts, latest);
  EXPECT_EQ(got.value, latest == r0->ov.ts ? v0 : v1);
}

TEST(MultiProxyTest, SkewedClocksStillYieldUniqueOrderedVersions) {
  ClusterTopology topology;
  topology.num_proxies = 2;
  core::ProxyOptions proxy;
  proxy.clock_skew = 2 * kMicrosPerSecond;  // both proxies equally skewed
  SimCluster tc(ConvergenceOptions::all_opts(), topology, 42, proxy);
  std::set<Timestamp> seen;
  for (int i = 0; i < 6; ++i) {
    const auto r =
        tc.put(Key{"k"}, tc.make_value(500, static_cast<uint8_t>(i)),
               Policy{}, i % 2);
    EXPECT_TRUE(seen.insert(r.ov.ts).second) << "duplicate timestamp";
  }
}

TEST(TopologyTest, LargeClusterConverges) {
  // 4 DCs × (2 KLS + 4 FS) = 8 KLSs, 16 FSs; wide policy.
  ClusterTopology topology = make_topology(4, 2, 4, 2);
  Policy policy = make_policy(8, 16, 2, 4, 12);
  SimCluster tc(ConvergenceOptions::all_opts(), topology);
  tc.blackout_fs(2, 1, 0, minutes(10));
  std::vector<core::PutResult> results;
  for (int i = 0; i < 5; ++i) {
    results.push_back(tc.put(Key{"k" + std::to_string(i)},
                             tc.make_value(8192, static_cast<uint8_t>(i)),
                             policy));
  }
  tc.run_to_quiescence();
  for (const auto& r : results) {
    EXPECT_EQ(tc.cluster.classify(r.ov), VersionStatus::kAmr);
  }
}

}  // namespace
}  // namespace pahoehoe
