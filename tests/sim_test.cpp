#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace pahoehoe::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(SimulatorTest, SameTimeFifoByScheduleOrder) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim(1);
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim(1);
  bool fired = false;
  TimerId id = sim.schedule_at(100, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFireIsHarmless) {
  Simulator sim(1);
  int count = 0;
  TimerId id = sim.schedule_at(10, [&] { ++count; });
  sim.run();
  sim.cancel(id);  // already fired
  sim.cancel(0);   // never valid
  sim.cancel(9999);
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(SimulatorTest, CancelFromInsideEarlierEvent) {
  Simulator sim(1);
  bool fired = false;
  TimerId later = sim.schedule_at(200, [&] { fired = true; });
  sim.schedule_at(100, [&] { sim.cancel(later); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilStopsAtLimit) {
  Simulator sim(1);
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, RunUntilIgnoresCancelledHead) {
  Simulator sim(1);
  // A cancelled event inside the window must not cause execution of an
  // event beyond the window.
  TimerId id = sim.schedule_at(10, [] {});
  bool fired_late = false;
  sim.schedule_at(100, [&] { fired_late = true; });
  sim.cancel(id);
  sim.run(50);
  EXPECT_FALSE(fired_late);
  sim.run();
  EXPECT_TRUE(fired_late);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim(1);
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim(1);
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, ExecutedCounter) {
  Simulator sim(1);
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(SimulatorTest, SchedulingInPastAborts) {
  Simulator sim(1);
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(50, [] {}), "past");
}

TEST(SimulatorTest, DeterministicRngStream) {
  Simulator a(77), b(77);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
  }
  Simulator c(78);
  bool differs = false;
  Simulator d(77);
  for (int i = 0; i < 50; ++i) {
    if (c.rng().next_u64() != d.rng().next_u64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SimulatorTest, LargeEventVolume) {
  Simulator sim(1);
  int fired = 0;
  for (int i = 0; i < 100000; ++i) {
    sim.schedule_at(sim.rng().uniform_int(0, 1'000'000),
                    [&fired] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, 100000);
}

}  // namespace
}  // namespace pahoehoe::sim
