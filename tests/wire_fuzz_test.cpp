// Property-based wire-format tests: randomly generated messages round-trip
// exactly, and random mutations of valid encodings never crash a decoder —
// they parse (possibly to different values) or throw WireError. Decoders
// run on bytes received from the network, so "no undefined behavior on any
// input" is a hard requirement.
#include <gtest/gtest.h>

#include "chaos/schedule.h"
#include "common/rng.h"
#include "wire/messages.h"

namespace pahoehoe::wire {
namespace {

class Gen {
 public:
  explicit Gen(uint64_t seed) : rng_(seed) {}

  uint8_t u8() { return static_cast<uint8_t>(rng_.next_u64()); }
  uint16_t u16() { return static_cast<uint16_t>(rng_.next_u64()); }
  uint32_t u32() { return static_cast<uint32_t>(rng_.next_u64()); }
  bool coin() { return rng_.chance(0.5); }
  size_t index(size_t bound) {
    return static_cast<size_t>(rng_.uniform_int(0, static_cast<int64_t>(bound) - 1));
  }

  Key key() {
    std::string s;
    const int len = static_cast<int>(rng_.uniform_int(0, 40));
    for (int i = 0; i < len; ++i) s.push_back(static_cast<char>(u8()));
    return Key{s};
  }

  Timestamp timestamp() {
    return Timestamp{rng_.uniform_int(0, 1'000'000'000'000LL), u32()};
  }

  ObjectVersionId ov() { return ObjectVersionId{key(), timestamp()}; }

  Policy policy() {
    Policy p;
    p.k = static_cast<uint8_t>(rng_.uniform_int(1, 20));
    p.n = static_cast<uint8_t>(rng_.uniform_int(p.k, 40));
    p.max_frags_per_fs = static_cast<uint8_t>(rng_.uniform_int(1, 4));
    p.max_frags_per_dc = static_cast<uint8_t>(rng_.uniform_int(1, 20));
    p.data_frags_one_dc = coin();
    p.min_frags_for_success = static_cast<uint8_t>(rng_.uniform_int(0, p.n));
    return p;
  }

  Metadata metadata() {
    Metadata meta{policy(), rng_.next_u64() % (1 << 20)};
    for (auto& loc : meta.locs) {
      if (coin()) loc = Location{NodeId{u32()}, u8()};
    }
    return meta;
  }

  Bytes bytes(size_t max = 200) {
    Bytes out(index(max + 1));
    for (auto& b : out) b = u8();
    return out;
  }

  Sha256::Digest digest() {
    Sha256::Digest d;
    for (auto& b : d) b = u8();
    return d;
  }

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

class WireFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzzTest, RandomMessagesRoundTripExactly) {
  Gen gen(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    {
      DecideLocsReq msg{gen.ov(), gen.policy(), gen.coin()};
      const auto back = DecideLocsReq::decode(msg.encode());
      EXPECT_EQ(back.ov, msg.ov);
      EXPECT_EQ(back.policy, msg.policy);
      EXPECT_EQ(back.from_fs, msg.from_fs);
    }
    {
      DecideLocsRep msg{gen.ov(), gen.metadata(), DataCenterId{gen.u8()}};
      const auto back = DecideLocsRep::decode(msg.encode());
      EXPECT_EQ(back.meta, msg.meta);
    }
    {
      StoreFragmentReq msg;
      msg.ov = gen.ov();
      msg.meta = gen.metadata();
      msg.frag_index = gen.u16();
      msg.fragment = gen.bytes(1000);
      msg.digest = gen.digest();
      const auto back = StoreFragmentReq::decode(msg.encode());
      EXPECT_EQ(back.fragment, msg.fragment);
      EXPECT_EQ(back.digest, msg.digest);
      EXPECT_EQ(back.frag_index, msg.frag_index);
    }
    {
      StoreMetadataRep msg{gen.ov(), gen.coin() ? Status::kSuccess
                                                : Status::kFailure,
                           gen.u16()};
      const auto back = StoreMetadataRep::decode(msg.encode());
      EXPECT_EQ(back.status, msg.status);
      EXPECT_EQ(back.decided_count, msg.decided_count);
    }
    {
      RetrieveTsRep msg;
      msg.key = gen.key();
      const int entries = static_cast<int>(gen.index(5));
      for (int e = 0; e < entries; ++e) {
        msg.entries.push_back({gen.timestamp(), gen.metadata()});
      }
      msg.more = gen.coin();
      const auto back = RetrieveTsRep::decode(msg.encode());
      EXPECT_EQ(back.entries, msg.entries);
      EXPECT_EQ(back.more, msg.more);
    }
    {
      FsConvergeRep msg;
      msg.ov = gen.ov();
      msg.verified = gen.coin();
      const int needs = static_cast<int>(gen.index(6));
      for (int e = 0; e < needs; ++e) msg.needed_fragments.push_back(gen.u16());
      msg.also_recovering = gen.coin();
      const auto back = FsConvergeRep::decode(msg.encode());
      EXPECT_EQ(back.needed_fragments, msg.needed_fragments);
      EXPECT_EQ(back.also_recovering, msg.also_recovering);
    }
  }
}

TEST_P(WireFuzzTest, MutatedEncodingsNeverCrashDecoders) {
  Gen gen(GetParam() ^ 0x5eed);
  // A pool of valid encodings of varying shapes.
  std::vector<Bytes> pool;
  for (int i = 0; i < 10; ++i) {
    StoreFragmentReq frag;
    frag.ov = gen.ov();
    frag.meta = gen.metadata();
    frag.fragment = gen.bytes(300);
    pool.push_back(frag.encode());
    pool.push_back(KlsConvergeReq{gen.ov(), gen.metadata()}.encode());
    RetrieveTsRep rep;
    rep.key = gen.key();
    rep.entries.push_back({gen.timestamp(), gen.metadata()});
    pool.push_back(rep.encode());
  }

  auto try_all_decoders = [](const Bytes& payload) {
    // Every decoder must either parse or throw WireError on ANY input.
    try { (void)StoreFragmentReq::decode(payload); } catch (const WireError&) {}
    try { (void)KlsConvergeReq::decode(payload); } catch (const WireError&) {}
    try { (void)RetrieveTsRep::decode(payload); } catch (const WireError&) {}
    try { (void)FsConvergeRep::decode(payload); } catch (const WireError&) {}
    try { (void)DecideLocsRep::decode(payload); } catch (const WireError&) {}
    try { (void)AmrIndication::decode(payload); } catch (const WireError&) {}
  };

  for (int iter = 0; iter < 400; ++iter) {
    Bytes mutated = pool[gen.index(pool.size())];
    const int mutations = 1 + static_cast<int>(gen.index(4));
    for (int m = 0; m < mutations && !mutated.empty(); ++m) {
      switch (gen.index(3)) {
        case 0:  // flip a byte
          mutated[gen.index(mutated.size())] ^= gen.u8();
          break;
        case 1:  // truncate
          mutated.resize(gen.index(mutated.size() + 1));
          break;
        case 2:  // append garbage
          for (size_t j = gen.index(8) + 1; j > 0; --j) {
            mutated.push_back(gen.u8());
          }
          break;
      }
    }
    try_all_decoders(mutated);
  }
}

// Fault schedules travel through the same wire machinery (the shrinker's
// repro files), so they get the same treatment: random schedules round-trip
// exactly, and mutated encodings parse or throw — never crash.
TEST_P(WireFuzzTest, FaultSchedulesRoundTripExactly) {
  const core::ClusterTopology topology;
  for (uint64_t s = 0; s < 20; ++s) {
    chaos::ScheduleOptions options;
    options.intensity = 0.5 + static_cast<double>(s % 5);
    const auto schedule =
        chaos::generate_schedule(GetParam() * 100 + s, topology, options);
    const auto back = chaos::decode_schedule(chaos::encode_schedule(schedule));
    EXPECT_EQ(back, schedule);
  }
}

TEST_P(WireFuzzTest, MutatedScheduleEncodingsNeverCrashDecoder) {
  Gen gen(GetParam() ^ 0xfa17);
  const core::ClusterTopology topology;
  std::vector<Bytes> pool;
  for (uint64_t s = 0; s < 8; ++s) {
    pool.push_back(chaos::encode_schedule(
        chaos::generate_schedule(GetParam() * 31 + s, topology, {})));
  }
  pool.push_back(chaos::encode_schedule({}));

  for (int iter = 0; iter < 400; ++iter) {
    Bytes mutated = pool[gen.index(pool.size())];
    const int mutations = 1 + static_cast<int>(gen.index(4));
    for (int m = 0; m < mutations && !mutated.empty(); ++m) {
      switch (gen.index(3)) {
        case 0:
          mutated[gen.index(mutated.size())] ^= gen.u8();
          break;
        case 1:
          mutated.resize(gen.index(mutated.size() + 1));
          break;
        case 2:
          for (size_t j = gen.index(8) + 1; j > 0; --j) {
            mutated.push_back(gen.u8());
          }
          break;
      }
    }
    try {
      (void)chaos::decode_schedule(mutated);
    } catch (const WireError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace pahoehoe::wire
