// Unit tests for the client workload driver.
#include <gtest/gtest.h>

#include "core/workload.h"
#include "test_util.h"

namespace pahoehoe::core {
namespace {

using testing::SimCluster;
using testing::minutes;
using testing::seconds;

WorkloadConfig small_config(int puts = 5) {
  WorkloadConfig config;
  config.num_puts = puts;
  config.value_size = 2048;
  return config;
}

TEST(WorkloadDriverTest, IssuesAllPutsOnSchedule) {
  SimCluster tc(ConvergenceOptions::all_opts());
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), small_config(), 1);
  driver.start();
  tc.run_to_quiescence();
  EXPECT_EQ(driver.attempts(), 5);
  EXPECT_EQ(driver.successes(), 5);
  EXPECT_EQ(driver.failures(), 0);
  EXPECT_EQ(driver.records().size(), 5u);
  for (const auto& record : driver.records()) {
    EXPECT_TRUE(record.acked);
    EXPECT_EQ(record.attempt, 1);
  }
}

TEST(WorkloadDriverTest, SpacingControlsIssueTimes) {
  SimCluster tc(ConvergenceOptions::all_opts());
  WorkloadConfig config = small_config(3);
  config.spacing = seconds(10);
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), config, 1);
  driver.start();
  tc.run_for(seconds(1));
  EXPECT_EQ(driver.records().size(), 1u);  // only the first put completed
  tc.run_for(seconds(10));
  EXPECT_EQ(driver.records().size(), 2u);
  tc.run_to_quiescence();
  EXPECT_EQ(driver.records().size(), 3u);
}

TEST(WorkloadDriverTest, ValuesAreDeterministicAndDistinct) {
  SimCluster tc;
  WorkloadDriver a(tc.sim, tc.cluster.proxy(0), small_config(), 7);
  EXPECT_EQ(a.value_for(0), a.value_for(0));
  EXPECT_NE(a.value_for(0), a.value_for(1));
  EXPECT_EQ(a.value_for(0).size(), 2048u);
  // Same seed elsewhere regenerates identical values (used by verifiers).
  WorkloadDriver b(tc.sim, tc.cluster.proxy(0), small_config(), 7);
  EXPECT_EQ(a.value_for(3), b.value_for(3));
  // Different seed, different data.
  WorkloadDriver c(tc.sim, tc.cluster.proxy(0), small_config(), 8);
  EXPECT_NE(a.value_for(0), c.value_for(0));
}

TEST(WorkloadDriverTest, KeysAreStableAndPrefixed) {
  SimCluster tc;
  WorkloadConfig config = small_config();
  config.key_prefix = "photos/";
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), config, 1);
  EXPECT_EQ(driver.key_for(0).value, "photos/0");
  EXPECT_EQ(driver.key_for(42).value, "photos/42");
}

TEST(WorkloadDriverTest, RetriesFailedPutsUntilSuccess) {
  SimCluster tc(ConvergenceOptions::all_opts());
  // Down long enough to fail the first attempt of every put, then heal.
  for (int i = 0; i < 3; ++i) tc.blackout_fs(0, i, 0, seconds(15));
  WorkloadConfig config = small_config(3);
  config.retry_failed = true;
  config.retry_delay = seconds(10);
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), config, 1);
  driver.start();
  tc.run_to_quiescence();
  EXPECT_EQ(driver.successes(), 3);
  EXPECT_GT(driver.attempts(), 3);  // at least one retry happened
  // Failed attempts are recorded with their (new) object versions.
  int failed_records = 0;
  for (const auto& record : driver.records()) {
    if (!record.acked) ++failed_records;
  }
  EXPECT_EQ(failed_records, driver.attempts() - 3);
}

TEST(WorkloadDriverTest, MaxAttemptsBoundsRetries) {
  SimCluster tc(ConvergenceOptions::all_opts());
  // Permanently unreachable fragment servers: every attempt fails.
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 3; ++i) tc.blackout_fs(dc, i, 0, minutes(600));
  }
  WorkloadConfig config = small_config(1);
  config.retry_failed = true;
  config.retry_delay = seconds(1);
  config.max_attempts = 4;
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), config, 1);
  driver.start();
  tc.run_for(minutes(5));
  EXPECT_EQ(driver.attempts(), 4);
  EXPECT_EQ(driver.successes(), 0);
  EXPECT_EQ(driver.failures(), 4);
}

TEST(WorkloadDriverTest, NoRetryByDefault) {
  SimCluster tc(ConvergenceOptions::all_opts());
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 3; ++i) tc.blackout_fs(dc, i, 0, minutes(60));
  }
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), small_config(2), 1);
  driver.start();
  tc.run_for(minutes(2));
  EXPECT_EQ(driver.attempts(), 2);
  EXPECT_EQ(driver.failures(), 2);
}

}  // namespace
}  // namespace pahoehoe::core
