// Unit tests for the client workload driver.
#include <gtest/gtest.h>

#include "core/workload.h"
#include "test_util.h"

namespace pahoehoe::core {
namespace {

using testing::SimCluster;
using testing::minutes;
using testing::seconds;

WorkloadConfig small_config(int puts = 5) {
  WorkloadConfig config;
  config.num_puts = puts;
  config.value_size = 2048;
  return config;
}

TEST(WorkloadDriverTest, IssuesAllPutsOnSchedule) {
  SimCluster tc(ConvergenceOptions::all_opts());
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), small_config(), 1);
  driver.start();
  tc.run_to_quiescence();
  EXPECT_EQ(driver.attempts(), 5);
  EXPECT_EQ(driver.successes(), 5);
  EXPECT_EQ(driver.failures(), 0);
  EXPECT_EQ(driver.records().size(), 5u);
  for (const auto& record : driver.records()) {
    EXPECT_TRUE(record.acked);
    EXPECT_EQ(record.attempt, 1);
  }
}

TEST(WorkloadDriverTest, SpacingControlsIssueTimes) {
  SimCluster tc(ConvergenceOptions::all_opts());
  WorkloadConfig config = small_config(3);
  config.spacing = seconds(10);
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), config, 1);
  driver.start();
  tc.run_for(seconds(1));
  EXPECT_EQ(driver.records().size(), 1u);  // only the first put completed
  tc.run_for(seconds(10));
  EXPECT_EQ(driver.records().size(), 2u);
  tc.run_to_quiescence();
  EXPECT_EQ(driver.records().size(), 3u);
}

TEST(WorkloadDriverTest, ValuesAreDeterministicAndDistinct) {
  SimCluster tc;
  WorkloadDriver a(tc.sim, tc.cluster.proxy(0), small_config(), 7);
  EXPECT_EQ(a.value_for(0), a.value_for(0));
  EXPECT_NE(a.value_for(0), a.value_for(1));
  EXPECT_EQ(a.value_for(0).size(), 2048u);
  // Same seed elsewhere regenerates identical values (used by verifiers).
  WorkloadDriver b(tc.sim, tc.cluster.proxy(0), small_config(), 7);
  EXPECT_EQ(a.value_for(3), b.value_for(3));
  // Different seed, different data.
  WorkloadDriver c(tc.sim, tc.cluster.proxy(0), small_config(), 8);
  EXPECT_NE(a.value_for(0), c.value_for(0));
}

TEST(WorkloadDriverTest, KeysAreStableAndPrefixed) {
  SimCluster tc;
  WorkloadConfig config = small_config();
  config.key_prefix = "photos/";
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), config, 1);
  EXPECT_EQ(driver.key_for(0).value, "photos/0");
  EXPECT_EQ(driver.key_for(42).value, "photos/42");
}

TEST(WorkloadDriverTest, RetriesFailedPutsUntilSuccess) {
  SimCluster tc(ConvergenceOptions::all_opts());
  // Down long enough to fail the first attempt of every put, then heal.
  for (int i = 0; i < 3; ++i) tc.blackout_fs(0, i, 0, seconds(15));
  WorkloadConfig config = small_config(3);
  config.retry_failed = true;
  config.retry_delay = seconds(10);
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), config, 1);
  driver.start();
  tc.run_to_quiescence();
  EXPECT_EQ(driver.successes(), 3);
  EXPECT_GT(driver.attempts(), 3);  // at least one retry happened
  // Failed attempts are recorded with their (new) object versions.
  int failed_records = 0;
  for (const auto& record : driver.records()) {
    if (!record.acked) ++failed_records;
  }
  EXPECT_EQ(failed_records, driver.attempts() - 3);
}

TEST(WorkloadDriverTest, MaxAttemptsBoundsRetries) {
  SimCluster tc(ConvergenceOptions::all_opts());
  // Permanently unreachable fragment servers: every attempt fails.
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 3; ++i) tc.blackout_fs(dc, i, 0, minutes(600));
  }
  WorkloadConfig config = small_config(1);
  config.retry_failed = true;
  config.retry_delay = seconds(1);
  config.max_attempts = 4;
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), config, 1);
  driver.start();
  tc.run_for(minutes(5));
  EXPECT_EQ(driver.attempts(), 4);
  EXPECT_EQ(driver.successes(), 0);
  EXPECT_EQ(driver.failures(), 4);
}

TEST(WorkloadDriverTest, OpenLoopFixedRateArrivals) {
  SimCluster tc(ConvergenceOptions::all_opts());
  WorkloadConfig config = small_config(10);
  config.arrivals = ArrivalProcess::kOpenFixed;
  config.arrival_rate_per_s = 2.0;  // one first attempt every 500 ms
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), config, 1);
  driver.start();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(driver.arrival_time(i), i * kMicrosPerSecond / 2);
  }
  tc.run_to_quiescence();
  EXPECT_EQ(driver.successes(), 10);
  ASSERT_EQ(driver.put_latencies().size(), 10u);
  for (const auto& op : driver.put_latencies()) {
    EXPECT_TRUE(op.ok);
    EXPECT_EQ(op.start, driver.arrival_time(op.object_index));
    EXPECT_GT(op.end, op.start);
  }
}

TEST(WorkloadDriverTest, OpenLoopPoissonArrivalsAreDeterministicInSeed) {
  SimCluster tc;
  WorkloadConfig config = small_config(20);
  config.arrivals = ArrivalProcess::kOpenPoisson;
  config.arrival_rate_per_s = 5.0;
  WorkloadDriver a(tc.sim, tc.cluster.proxy(0), config, 7);
  a.start();
  // Arrivals are strictly increasing and, being drawn from a dedicated
  // generator keyed on the value seed, replay identically.
  SimCluster tc2;
  WorkloadDriver b(tc2.sim, tc2.cluster.proxy(0), config, 7);
  b.start();
  SimTime prev = 0;
  for (int i = 0; i < 20; ++i) {
    EXPECT_GT(a.arrival_time(i), prev);
    prev = a.arrival_time(i);
    EXPECT_EQ(a.arrival_time(i), b.arrival_time(i));
  }
  // A different seed yields a different arrival pattern.
  SimCluster tc3;
  WorkloadDriver c(tc3.sim, tc3.cluster.proxy(0), config, 8);
  c.start();
  bool any_different = false;
  for (int i = 0; i < 20; ++i) {
    if (c.arrival_time(i) != a.arrival_time(i)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

// The closed-loop latency fix: with retry_failed set, a put's latency runs
// from its *first-attempt* arrival, not from the issue time of whichever
// retry finally succeeded.
TEST(WorkloadDriverTest, RetriedPutLatencyStartsAtFirstAttempt) {
  SimCluster tc(ConvergenceOptions::all_opts());
  // Down long enough to fail the first attempts, then heal.
  for (int i = 0; i < 3; ++i) tc.blackout_fs(0, i, 0, seconds(15));
  WorkloadConfig config = small_config(1);
  config.retry_failed = true;
  config.retry_delay = seconds(10);
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), config, 1);
  driver.start();
  tc.run_to_quiescence();
  ASSERT_EQ(driver.successes(), 1);
  EXPECT_GT(driver.attempts(), 1);
  ASSERT_EQ(driver.put_latencies().size(), 1u);
  const auto& op = driver.put_latencies()[0];
  EXPECT_TRUE(op.ok);
  EXPECT_EQ(op.start, driver.arrival_time(0));
  // The measured latency must cover the failed attempt plus the retry
  // delay — an attempt-scoped measurement would be under a second.
  EXPECT_GT(op.end - op.start, seconds(10));
}

TEST(WorkloadDriverTest, FailedPutsRecordUnackedLatency) {
  SimCluster tc(ConvergenceOptions::all_opts());
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 3; ++i) tc.blackout_fs(dc, i, 0, minutes(60));
  }
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), small_config(2), 1);
  driver.start();
  tc.run_for(minutes(2));
  ASSERT_EQ(driver.put_latencies().size(), 2u);
  for (const auto& op : driver.put_latencies()) EXPECT_FALSE(op.ok);
}

TEST(WorkloadDriverTest, GetLatenciesMeasureIssueToReply) {
  SimCluster tc(ConvergenceOptions::all_opts());
  WorkloadConfig config = small_config(4);
  config.get_fraction = 1.0;
  config.get_delay = seconds(1);
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), config, 1);
  driver.start();
  tc.run_to_quiescence();
  ASSERT_EQ(driver.get_latencies().size(), 4u);
  for (const auto& op : driver.get_latencies()) {
    EXPECT_TRUE(op.ok);
    EXPECT_GT(op.end, op.start);
    // A get is a couple of network round trips, well under a second.
    EXPECT_LT(op.end - op.start, seconds(1));
  }
}

TEST(WorkloadDriverTest, NoRetryByDefault) {
  SimCluster tc(ConvergenceOptions::all_opts());
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 3; ++i) tc.blackout_fs(dc, i, 0, minutes(60));
  }
  WorkloadDriver driver(tc.sim, tc.cluster.proxy(0), small_config(2), 1);
  driver.start();
  tc.run_for(minutes(2));
  EXPECT_EQ(driver.attempts(), 2);
  EXPECT_EQ(driver.failures(), 2);
}

}  // namespace
}  // namespace pahoehoe::core
