#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace pahoehoe::net {
namespace {

using wire::Envelope;
using wire::MessageType;

class Recorder : public MessageHandler {
 public:
  void handle(const Envelope& env) override {
    received.push_back(env);
    times.push_back(sim != nullptr ? sim->now() : 0);
  }
  std::vector<Envelope> received;
  std::vector<SimTime> times;
  const sim::Simulator* sim = nullptr;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(1), net_(sim_) {
    net_.register_node(a_, &ra_);
    net_.register_node(b_, &rb_);
  }

  void send_ab(int count = 1) {
    for (int i = 0; i < count; ++i) {
      net_.send(a_, b_, MessageType::kAmrIndication, Bytes(10, 0));
    }
  }

  sim::Simulator sim_;
  Network net_;
  NodeId a_{1}, b_{2};
  Recorder ra_, rb_;
};

TEST_F(NetworkTest, DeliversWithinLatencyBounds) {
  rb_.sim = &sim_;
  for (int i = 0; i < 100; ++i) {
    net_.send(a_, b_, MessageType::kAmrIndication, {});
  }
  sim_.run();
  ASSERT_EQ(rb_.received.size(), 100u);
  for (SimTime t : rb_.times) {
    EXPECT_GE(t, 10 * kMicrosPerMilli);
    EXPECT_LE(t, 30 * kMicrosPerMilli);
  }
}

TEST_F(NetworkTest, EnvelopeCarriesRoutingAndPayload) {
  net_.send(a_, b_, MessageType::kStoreFragmentReq, Bytes{1, 2, 3});
  sim_.run();
  ASSERT_EQ(rb_.received.size(), 1u);
  EXPECT_EQ(rb_.received[0].from, a_);
  EXPECT_EQ(rb_.received[0].to, b_);
  EXPECT_EQ(rb_.received[0].type, MessageType::kStoreFragmentReq);
  EXPECT_EQ(rb_.received[0].payload, (Bytes{1, 2, 3}));
}

TEST_F(NetworkTest, StatsCountSentAndBytes) {
  send_ab(5);
  sim_.run();
  const auto& s = net_.stats().of(MessageType::kAmrIndication);
  EXPECT_EQ(s.sent_count, 5u);
  EXPECT_EQ(s.sent_bytes, 5 * (Envelope::kHeaderBytes + 10));
  EXPECT_EQ(s.delivered_count, 5u);
  EXPECT_EQ(s.dropped_count, 0u);
  EXPECT_EQ(net_.stats().total_sent_count(), 5u);
}

TEST_F(NetworkTest, BlackoutDropsBothDirectionsDuringWindow) {
  net_.add_fault(std::make_shared<NodeBlackout>(b_, 0, 1000));
  send_ab();
  net_.send(b_, a_, MessageType::kAmrIndication, {});
  sim_.run();
  EXPECT_TRUE(rb_.received.empty());
  EXPECT_TRUE(ra_.received.empty());
  EXPECT_EQ(net_.stats().of(MessageType::kAmrIndication).dropped_count, 2u);
  // Dropped messages still count as sent (the paper's cost metric).
  EXPECT_EQ(net_.stats().of(MessageType::kAmrIndication).sent_count, 2u);
}

TEST_F(NetworkTest, BlackoutEndsAtWindowEnd) {
  net_.add_fault(std::make_shared<NodeBlackout>(b_, 0, 1000));
  sim_.schedule_at(1000, [&] { send_ab(); });
  sim_.run();
  EXPECT_EQ(rb_.received.size(), 1u);
}

TEST_F(NetworkTest, BlackoutDoesNotAffectOtherPairs) {
  Recorder rc;
  NodeId c{3};
  net_.register_node(c, &rc);
  net_.add_fault(std::make_shared<NodeBlackout>(b_, 0, 1000));
  net_.send(a_, c, MessageType::kAmrIndication, {});
  sim_.run();
  EXPECT_EQ(rc.received.size(), 1u);
}

TEST_F(NetworkTest, PartitionDropsCrossGroupOnly) {
  Recorder rc;
  NodeId c{3};
  net_.register_node(c, &rc);
  net_.add_fault(std::make_shared<Partition>(
      std::unordered_set<NodeId>{a_, c}, 0, 1000));
  net_.send(a_, c, MessageType::kAmrIndication, {});  // same side: ok
  send_ab();                                          // cross: dropped
  net_.send(b_, a_, MessageType::kAmrIndication, {});  // cross: dropped
  sim_.run();
  EXPECT_EQ(rc.received.size(), 1u);
  EXPECT_TRUE(rb_.received.empty());
  EXPECT_TRUE(ra_.received.empty());
}

TEST_F(NetworkTest, UniformLossDropsApproximateRate) {
  net_.add_fault(std::make_shared<UniformLoss>(0.2));
  const int total = 5000;
  send_ab(total);
  sim_.run();
  const auto& s = net_.stats().of(MessageType::kAmrIndication);
  EXPECT_EQ(s.sent_count, static_cast<uint64_t>(total));
  const double drop_rate =
      static_cast<double>(s.dropped_count) / static_cast<double>(total);
  EXPECT_NEAR(drop_rate, 0.2, 0.03);
  EXPECT_EQ(s.delivered_count + s.dropped_count,
            static_cast<uint64_t>(total));
}

TEST_F(NetworkTest, ZeroLossDropsNothing) {
  net_.add_fault(std::make_shared<UniformLoss>(0.0));
  send_ab(100);
  sim_.run();
  EXPECT_EQ(rb_.received.size(), 100u);
}

TEST_F(NetworkTest, FaultRulesCompose) {
  net_.add_fault(std::make_shared<UniformLoss>(0.0));
  net_.add_fault(std::make_shared<NodeBlackout>(b_, 0, 100));
  send_ab();
  sim_.run();
  EXPECT_TRUE(rb_.received.empty());  // any rule voting drop wins
}

TEST_F(NetworkTest, ClearFaultsRestoresDelivery) {
  net_.add_fault(std::make_shared<NodeBlackout>(
      b_, 0, std::numeric_limits<SimTime>::max()));
  send_ab();
  sim_.run();
  EXPECT_TRUE(rb_.received.empty());
  net_.clear_faults();
  send_ab();
  sim_.run();
  EXPECT_EQ(rb_.received.size(), 1u);
}

TEST_F(NetworkTest, DuplicationDeliversTwice) {
  sim::Simulator sim(2);
  NetworkConfig config;
  config.duplication_rate = 1.0;
  Network net(sim, config);
  Recorder recv;
  net.register_node(a_, &recv);
  net.register_node(b_, &recv);
  net.send(a_, b_, MessageType::kAmrIndication, Bytes{1});
  sim.run();
  EXPECT_EQ(recv.received.size(), 2u);
  // Duplication is a channel property; it is counted once as sent.
  EXPECT_EQ(net.stats().of(MessageType::kAmrIndication).sent_count, 1u);
}

TEST_F(NetworkTest, WanBytesTrackedWithResolver) {
  net_.set_dc_resolver([this](NodeId id) {
    return id == a_ ? DataCenterId{0} : DataCenterId{1};
  });
  send_ab(3);  // cross-DC
  net_.send(b_, b_, MessageType::kAmrIndication, {});  // same DC
  sim_.run();
  EXPECT_EQ(net_.stats().wan_sent_count(), 3u);
  EXPECT_EQ(net_.stats().wan_sent_bytes(),
            3 * (Envelope::kHeaderBytes + 10));
}

TEST_F(NetworkTest, SendToUnregisteredNodeAborts) {
  EXPECT_DEATH(net_.send(a_, NodeId{99}, MessageType::kAmrIndication, {}),
               "unregistered");
}

TEST_F(NetworkTest, DoubleRegistrationAborts) {
  EXPECT_DEATH(net_.register_node(a_, &ra_), "twice");
}

TEST_F(NetworkTest, StatsResetClearsEverything) {
  net_.set_dc_resolver([this](NodeId id) {
    return id == a_ ? DataCenterId{0} : DataCenterId{1};
  });
  send_ab(4);
  sim_.run();
  net_.stats().reset();
  EXPECT_EQ(net_.stats().total_sent_count(), 0u);
  EXPECT_EQ(net_.stats().total_sent_bytes(), 0u);
  EXPECT_EQ(net_.stats().wan_sent_bytes(), 0u);
}

TEST_F(NetworkTest, SentEqualsDeliveredPlusDroppedUnderLoss) {
  // Accounting invariant: every sent message is eventually classified as
  // delivered or dropped, per type.
  net_.add_fault(std::make_shared<UniformLoss>(0.35));
  send_ab(2000);
  net_.send(b_, a_, MessageType::kFsConvergeReq, Bytes(5, 0));
  sim_.run();
  for (int t = 0; t < wire::kMessageTypeCount; ++t) {
    const auto& s = net_.stats().of(static_cast<wire::MessageType>(t));
    EXPECT_EQ(s.sent_count, s.delivered_count + s.dropped_count)
        << wire::to_string(static_cast<wire::MessageType>(t));
  }
}

TEST_F(NetworkTest, TypedDropOnlyAffectsItsType) {
  net_.add_fault(
      std::make_shared<TypedDrop>(MessageType::kAmrIndication));
  send_ab(3);  // AMR indications: dropped
  net_.send(a_, b_, MessageType::kFsConvergeReq, {});
  sim_.run();
  EXPECT_EQ(net_.stats().of(MessageType::kAmrIndication).dropped_count, 3u);
  EXPECT_EQ(net_.stats().of(MessageType::kFsConvergeReq).delivered_count,
            1u);
}

TEST_F(NetworkTest, TableListsNonzeroTypesOnly) {
  send_ab(2);
  sim_.run();
  const std::string table = net_.stats().to_table();
  EXPECT_NE(table.find("AMRIndication"), std::string::npos);
  EXPECT_EQ(table.find("SiblingStoreReq"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace pahoehoe::net
