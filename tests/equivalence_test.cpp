// Cross-optimization equivalence: the §4 optimizations change who does the
// convergence work and how many messages it takes — but the *final archive
// state* must be identical. With deterministic placement, every
// configuration that drives the same workload to quiescence must end with
// byte-identical fragments on the same disks and identical metadata at the
// KLSs. The cluster state digest makes this a one-line assertion.
#include <gtest/gtest.h>

#include "test_util.h"

namespace pahoehoe {
namespace {

using core::ConvergenceOptions;
using testing::SimCluster;
using testing::minutes;

std::vector<std::pair<std::string, ConvergenceOptions>> all_presets() {
  return {
      {"naive", ConvergenceOptions::naive()},
      {"fsamr-s", ConvergenceOptions::fs_amr_sync()},
      {"fsamr-u", ConvergenceOptions::fs_amr_unsync()},
      {"putamr", ConvergenceOptions::put_amr()},
      {"sibling", ConvergenceOptions::sibling_only()},
      {"all", ConvergenceOptions::all_opts()},
  };
}

Sha256::Digest run_and_digest(const ConvergenceOptions& conv, int fs_down,
                              uint64_t seed) {
  SimCluster tc(conv, {}, seed);
  for (int f = 0; f < fs_down; ++f) {
    tc.blackout_fs(f % 2, f / 2, 0, minutes(10));
  }
  // Issue puts at fixed absolute times so the Pahoehoe-assigned version
  // timestamps — part of the archive state — are identical across presets
  // and seeds (different presets consume the RNG differently, so
  // "put-after-previous-completes" timing would diverge).
  for (int i = 0; i < 6; ++i) {
    tc.sim.schedule_at(i * 10 * kMicrosPerSecond, [&tc, i] {
      tc.cluster.proxy(0).put(Key{"eq-" + std::to_string(i)},
                              tc.make_value(3000, static_cast<uint8_t>(i + 1)),
                              Policy{}, [](const core::PutResult&) {});
    });
  }
  tc.run_to_quiescence();
  EXPECT_EQ(tc.cluster.total_pending_versions(), 0u);
  return tc.cluster.state_digest();
}

TEST(EquivalenceTest, AllOptimizationsYieldIdenticalArchiveFailureFree) {
  const auto presets = all_presets();
  const Sha256::Digest reference =
      run_and_digest(presets[0].second, 0, 11);
  for (size_t i = 1; i < presets.size(); ++i) {
    EXPECT_EQ(run_and_digest(presets[i].second, 0, 11), reference)
        << presets[i].first;
  }
}

TEST(EquivalenceTest, AllOptimizationsYieldIdenticalArchiveAfterRepair) {
  // Two FSs blacked out during the puts: each configuration repairs
  // differently (plain vs sibling recovery, different indication flows) but
  // must regenerate the exact same fragments in the same places.
  const auto presets = all_presets();
  const Sha256::Digest reference =
      run_and_digest(presets[0].second, 2, 12);
  for (size_t i = 1; i < presets.size(); ++i) {
    EXPECT_EQ(run_and_digest(presets[i].second, 2, 12), reference)
        << presets[i].first;
  }
}

TEST(EquivalenceTest, DigestIsSeedInvariantForConvergedState) {
  // Different latency samples, same archive: the digest depends only on
  // the stored state, not on the path that built it.
  EXPECT_EQ(run_and_digest(ConvergenceOptions::all_opts(), 1, 21),
            run_and_digest(ConvergenceOptions::all_opts(), 1, 22));
}

TEST(EquivalenceTest, DigestDetectsContentDifference) {
  SimCluster a(ConvergenceOptions::all_opts(), {}, 5);
  SimCluster b(ConvergenceOptions::all_opts(), {}, 5);
  a.put(Key{"k"}, a.make_value(1000, 1));
  b.put(Key{"k"}, b.make_value(1000, 2));  // different content
  a.run_to_quiescence();
  b.run_to_quiescence();
  EXPECT_NE(a.cluster.state_digest(), b.cluster.state_digest());
}

TEST(EquivalenceTest, DigestDetectsCorruption) {
  SimCluster tc(ConvergenceOptions::all_opts(), {}, 5);
  const auto r = tc.put(Key{"k"}, tc.make_value(1000));
  tc.run_to_quiescence();
  const auto before = tc.cluster.state_digest();
  ASSERT_TRUE(tc.cluster.fs(0).corrupt_fragment(r.ov, 0) ||
              tc.cluster.fs(1).corrupt_fragment(r.ov, 0) ||
              tc.cluster.fs(2).corrupt_fragment(r.ov, 0));
  EXPECT_NE(tc.cluster.state_digest(), before);
}

}  // namespace
}  // namespace pahoehoe
