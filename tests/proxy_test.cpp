// Unit tests for the Proxy's put/get state machines, exercising edge cases
// via targeted fault injection on specific message types.
#include <gtest/gtest.h>

#include "test_util.h"

namespace pahoehoe {
namespace {

using core::ConvergenceOptions;
using testing::SimCluster;
using testing::minutes;
using testing::seconds;
using wire::MessageType;

uint64_t sent(const SimCluster& tc, MessageType type) {
  return tc.net.stats().of(type).sent_count;
}

TEST(ProxyPutTest, FailureFreeMessagePattern) {
  // The exact Fig 2 message pattern with both latency optimizations:
  // 4 decide-locs (+4 replies), 2×4 metadata stores (+8 replies),
  // 6+12 fragment stores (+18 replies), 6 AMR indications.
  SimCluster tc(ConvergenceOptions::put_amr());
  tc.put(Key{"k"}, tc.make_value(4096));
  tc.run_to_quiescence();
  EXPECT_EQ(sent(tc, MessageType::kDecideLocsReq), 4u);
  EXPECT_EQ(sent(tc, MessageType::kDecideLocsRep), 4u);
  EXPECT_EQ(sent(tc, MessageType::kStoreMetadataReq), 8u);
  EXPECT_EQ(sent(tc, MessageType::kStoreMetadataRep), 8u);
  EXPECT_EQ(sent(tc, MessageType::kStoreFragmentReq), 18u);
  EXPECT_EQ(sent(tc, MessageType::kStoreFragmentRep), 18u);
  EXPECT_EQ(sent(tc, MessageType::kAmrIndication), 6u);
}

TEST(ProxyPutTest, SecondDecideLocsReplyPerDcIgnored) {
  // Both KLSs of each DC answer; only the first per DC triggers stores
  // (useful_locs, Fig 2 line 7): still exactly 2 store rounds.
  SimCluster tc(ConvergenceOptions::put_amr());
  tc.put(Key{"k"}, tc.make_value(1024));
  tc.run_to_quiescence();
  EXPECT_EQ(sent(tc, MessageType::kStoreMetadataReq), 8u);
}

TEST(ProxyPutTest, NoAmrIndicationWhenMetadataAckLost) {
  // Drop all metadata-store replies: the proxy cannot conclude AMR, so no
  // indications; the client still gets success from fragment acks, and
  // convergence finishes the job.
  SimCluster tc(ConvergenceOptions::all_opts());
  tc.net.add_fault(std::make_shared<net::TypedDrop>(
      MessageType::kStoreMetadataRep));
  const auto r = tc.put(Key{"k"}, tc.make_value(1024));
  EXPECT_TRUE(r.success);
  tc.run_to_quiescence();
  // The proxy stayed unsure and sent no indications (the FSs, which DID
  // converge, sent their own — count the proxy's separately).
  EXPECT_EQ(tc.cluster.proxy(0).amr_indications_sent(), 0u);
  EXPECT_GT(sent(tc, MessageType::kKlsConvergeReq), 0u);
  EXPECT_EQ(tc.cluster.classify(r.ov), core::VersionStatus::kAmr);
}

TEST(ProxyPutTest, NoAmrIndicationWhenFragmentAckLost) {
  SimCluster tc(ConvergenceOptions::all_opts());
  tc.net.add_fault(std::make_shared<net::TypedDrop>(
      MessageType::kStoreFragmentRep));
  const auto r = tc.put(Key{"k"}, tc.make_value(1024));
  EXPECT_FALSE(r.success);  // no fragment acks at all → below threshold
  tc.run_to_quiescence();
  // Fragments were stored (only the acks vanished); convergence repairs
  // the proxy's uncertainty.
  EXPECT_EQ(tc.cluster.classify(r.ov), core::VersionStatus::kAmr);
}

TEST(ProxyPutTest, TimesOutWhenAllKlssUnreachable) {
  SimCluster tc;
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 2; ++i) tc.blackout_kls(dc, i, 0, minutes(30));
  }
  const SimTime start = tc.sim.now();
  const auto r = tc.put(Key{"k"}, tc.make_value(1024));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.frag_acks, 0);
  // Failed via the put timeout, not instantly.
  EXPECT_GE(tc.sim.now() - start, core::ProxyOptions{}.put_timeout);
}

TEST(ProxyPutTest, LateRepliesAfterTimeoutAreIgnored) {
  // Delay beyond the put timeout by parking replies behind a blackout that
  // ends after the timeout: the op is gone; late replies must not crash or
  // double-fire the callback.
  SimCluster tc;
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 3; ++i) {
      tc.blackout_fs(dc, i, 0, 12 * kMicrosPerSecond);  // > 10 s put timeout
    }
  }
  int callbacks = 0;
  tc.cluster.proxy(0).put(Key{"k"}, tc.make_value(1024), Policy{},
                          [&](const core::PutResult&) { ++callbacks; });
  tc.run_for(minutes(2));
  EXPECT_EQ(callbacks, 1);
}

TEST(ProxyPutTest, PolicySuccessThresholdRespected) {
  // min_frags_for_success = 12 (all) with one FS down: must fail.
  Policy strict;
  strict.min_frags_for_success = 12;
  SimCluster tc;
  tc.blackout_fs(0, 0, 0, minutes(5));
  const auto r = tc.put(Key{"k"}, tc.make_value(1024), strict);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.frag_acks, 10);

  // min_frags_for_success = 4 with the same failure: must succeed.
  Policy lax;
  lax.min_frags_for_success = 4;
  const auto r2 = tc.put(Key{"k2"}, tc.make_value(1024), lax);
  EXPECT_TRUE(r2.success);
}

TEST(ProxyGetTest, DecodesFromFirstKFragments) {
  // Fragment replies race; the proxy decodes as soon as any k arrive.
  SimCluster tc;
  const Bytes value = tc.make_value(40960);
  tc.put(Key{"k"}, value);
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, value);
  // It asked every decided location (Fig 3 line 26).
  EXPECT_EQ(sent(tc, MessageType::kRetrieveFragReq), 12u);
}

TEST(ProxyGetTest, RetrieveTsFanoutAndEarlyStart) {
  SimCluster tc;
  tc.put(Key{"k"}, tc.make_value(1024));
  tc.get(Key{"k"});
  EXPECT_EQ(sent(tc, MessageType::kRetrieveTsReq), 4u);
}

TEST(ProxyGetTest, LostTsRepliesStillServeFromRemainingKlss) {
  SimCluster tc;
  const Bytes value = tc.make_value(2048);
  tc.put(Key{"k"}, value);
  // Three of four KLSs unreachable for the get.
  tc.blackout_kls(0, 0, 0, minutes(5));
  tc.blackout_kls(0, 1, 0, minutes(5));
  tc.blackout_kls(1, 0, 0, minutes(5));
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, value);
}

TEST(ProxyGetTest, AbortsWhenNoVersionRecoverableAndAllKlssReplied) {
  // A version that is registered at the KLSs but whose fragments are all
  // unreachable: the get must abort (failure), not hang.
  SimCluster tc;
  tc.put(Key{"k"}, tc.make_value(2048));
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 3; ++i) tc.blackout_fs(dc, i, 0, minutes(5));
  }
  const auto got = tc.get(Key{"k"});
  EXPECT_FALSE(got.success);
}

TEST(ProxyGetTest, SkipsNonDurableLatestAndReturnsOlderAmr) {
  // Covered end-to-end in put_get_test; here check the message economy:
  // the proxy must not retry the dead version's fragments more than once.
  core::ConvergenceOptions conv;
  SimCluster tc(conv);
  const Bytes v1 = tc.make_value(2048, 1);
  tc.put(Key{"k"}, v1);

  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 3; ++i) {
      if (dc == 0 && i == 0) continue;
      tc.blackout_fs(dc, i, 0, seconds(30));
    }
  }
  const auto r2 = tc.put(Key{"k"}, tc.make_value(2048, 2));
  EXPECT_FALSE(r2.success);
  tc.run_for(seconds(40));  // heal

  const uint64_t frag_reqs_before = sent(tc, MessageType::kRetrieveFragReq);
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, v1);
  const uint64_t frag_reqs = sent(tc, MessageType::kRetrieveFragReq) -
                             frag_reqs_before;
  EXPECT_LE(frag_reqs, 24u);  // one wave for v2 (12) + one wave for v1 (12)
}

TEST(ProxyGetTest, ConcurrentGetSameKeyRejected) {
  SimCluster tc;
  tc.put(Key{"k"}, tc.make_value(128));
  tc.cluster.proxy(0).get(Key{"k"}, [](const core::GetResult&) {});
  EXPECT_DEATH(tc.cluster.proxy(0).get(Key{"k"}, [](const core::GetResult&) {}),
               "one get at a time");
}

TEST(ProxyGetTest, GetUnderDuplicatingNetwork) {
  net::NetworkConfig config;
  config.duplication_rate = 0.3;  // bounded duplication (system model §3.1)
  SimCluster tc(ConvergenceOptions::all_opts(), {}, 42, {}, config);
  const Bytes value = tc.make_value(8192);
  const auto r = tc.put(Key{"k"}, value);
  EXPECT_TRUE(r.success);
  tc.run_to_quiescence();
  EXPECT_EQ(tc.cluster.classify(r.ov), core::VersionStatus::kAmr);
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, value);
}

TEST(ProxyGetTest, ValuesOfEveryVersionRetrievable) {
  // Multiple versions of one key: the latest is returned by get; earlier
  // versions remain stored (nothing is ever deleted, §3.6).
  SimCluster tc(ConvergenceOptions::all_opts());
  std::vector<core::PutResult> results;
  for (int i = 0; i < 4; ++i) {
    results.push_back(
        tc.put(Key{"k"}, tc.make_value(1024, static_cast<uint8_t>(i))));
  }
  tc.run_to_quiescence();
  for (const auto& r : results) {
    EXPECT_EQ(tc.cluster.classify(r.ov), core::VersionStatus::kAmr);
  }
}


TEST(ProxyGetPagingTest, PagedRetrievalFindsLatestVersion) {
  core::ProxyOptions proxy;
  proxy.get_page_size = 1;  // one version per page: worst-case paging
  SimCluster tc(ConvergenceOptions::all_opts(), {}, 42, proxy);
  Bytes latest;
  for (int i = 0; i < 5; ++i) {
    latest = tc.make_value(2048, static_cast<uint8_t>(i + 1));
    tc.put(Key{"k"}, latest);
  }
  tc.run_to_quiescence();
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, latest);
  // The latest version is on every KLS's first page; no continuation pages
  // were needed.
  EXPECT_EQ(sent(tc, MessageType::kRetrieveTsReq), 4u);
}

TEST(ProxyGetPagingTest, PagesDeeperWhenLatestVersionsUnrecoverable) {
  core::ProxyOptions proxy;
  proxy.get_page_size = 1;
  SimCluster tc(ConvergenceOptions::all_opts(), {}, 42, proxy);
  const Bytes good = tc.make_value(2048, 1);
  tc.put(Key{"k"}, good);
  tc.run_to_quiescence();

  // Two newer versions whose fragments are mostly lost (5 of 6 FSs down).
  for (int dc = 0; dc < 2; ++dc) {
    for (int i = 0; i < 3; ++i) {
      if (dc == 0 && i == 0) continue;
      tc.blackout_fs(dc, i, 0, testing::seconds(25));
    }
  }
  tc.put(Key{"k"}, tc.make_value(2048, 2));
  tc.put(Key{"k"}, tc.make_value(2048, 3));
  tc.run_for(testing::seconds(30));  // heal

  const uint64_t ts_reqs_before = sent(tc, MessageType::kRetrieveTsReq);
  const auto got = tc.get(Key{"k"});
  EXPECT_TRUE(got.success);
  EXPECT_EQ(got.value, good);
  // Reaching the third-newest version required continuation pages.
  EXPECT_GT(sent(tc, MessageType::kRetrieveTsReq) - ts_reqs_before, 4u);
}

TEST(ProxyGetPagingTest, MissingKeyAbortsAfterDrainingAllPages) {
  core::ProxyOptions proxy;
  proxy.get_page_size = 2;
  SimCluster tc(ConvergenceOptions::all_opts(), {}, 42, proxy);
  tc.put(Key{"other"}, tc.make_value(512));
  const auto got = tc.get(Key{"missing"});
  EXPECT_FALSE(got.success);
}

}  // namespace
}  // namespace pahoehoe
