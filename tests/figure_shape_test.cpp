// Figure-shape regression tests: scaled-down versions of the paper's
// evaluation sweeps with the qualitative claims of §5 asserted as
// inequalities. A protocol change that silently flips who-wins in any
// figure fails here long before anyone reruns the full benches.
#include <gtest/gtest.h>

#include "core/harness.h"

namespace pahoehoe::core {
namespace {

RunConfig mini_config(ConvergenceOptions conv, int puts = 20) {
  RunConfig config = paper_default_config();
  config.convergence = conv;
  config.workload.num_puts = puts;
  config.workload.value_size = 16 * 1024;
  return config;
}

double mean_msgs(RunConfig config, int seeds = 5) {
  return run_many(std::move(config), seeds, 3100).msg_count.mean();
}

double mean_bytes(RunConfig config, int seeds = 5) {
  return run_many(std::move(config), seeds, 3100).msg_bytes.mean();
}

std::vector<FaultSpec> fs_blackouts(int failures) {
  std::vector<FaultSpec> faults;
  const SimTime len = 10LL * 60 * kMicrosPerSecond;
  for (int f = 0; f < failures; ++f) {
    faults.push_back(FaultSpec::fs_blackout(f % 2, f / 2, 0, len));
  }
  return faults;
}

TEST(Figure5ShapeTest, OptimizationOrderingFailureFree) {
  const double naive = mean_msgs(mini_config(ConvergenceOptions::naive()));
  const double fsamr_s =
      mean_msgs(mini_config(ConvergenceOptions::fs_amr_sync()));
  const double fsamr_u =
      mean_msgs(mini_config(ConvergenceOptions::fs_amr_unsync()));
  const double putamr = mean_msgs(mini_config(ConvergenceOptions::put_amr()));

  // §5.2: synchronized FS AMR indications are counterproductive; the
  // unsynchronized variant roughly halves naive; PutAMR beats everything.
  EXPECT_GT(fsamr_s, naive);
  EXPECT_LT(fsamr_u, 0.65 * naive);
  EXPECT_LT(putamr, fsamr_u);
  // PutAMR is within 2x of the analytic idealized floor (36 msgs/put + 6
  // indications replaced by: 60 put msgs + 6 indications = 66 vs 36).
  EXPECT_LT(putamr, 2.0 * 36 * 20);
}

TEST(Figure6ShapeTest, MessageCountsFallAsMoreFsFail) {
  // §5.3: fewer live FSs produce less convergence traffic.
  auto with_failures = [&](int failures) {
    RunConfig config = mini_config(ConvergenceOptions::all_opts());
    config.faults = fs_blackouts(failures);
    return mean_msgs(std::move(config), 3);
  };
  const double one = with_failures(1);
  const double two = with_failures(2);
  const double four = with_failures(4);
  EXPECT_GT(one, two);
  EXPECT_GT(two, four);
}

TEST(Figure6ShapeTest, AllOptimizationsBeatAnySingleOne) {
  RunConfig base = mini_config(ConvergenceOptions::all_opts());
  base.faults = fs_blackouts(2);
  const double all = mean_msgs(base, 3);
  for (const auto& conv :
       {ConvergenceOptions::put_amr(), ConvergenceOptions::fs_amr_unsync(),
        ConvergenceOptions::sibling_only()}) {
    RunConfig config = mini_config(conv);
    config.faults = fs_blackouts(2);
    EXPECT_GT(mean_msgs(std::move(config), 3), all) << describe(conv);
  }
}

TEST(Figure7ShapeTest, SiblingRecoveryCutsRepairBytes) {
  // §5.3: the byte story — recovery without sibling amortization reads k
  // fragments per needy FS; with it, once per object.
  RunConfig without = mini_config(ConvergenceOptions::fs_amr_unsync());
  without.faults = fs_blackouts(2);
  RunConfig with = mini_config(ConvergenceOptions::all_opts());
  with.faults = fs_blackouts(2);
  const double bytes_without = mean_bytes(std::move(without), 3);
  const double bytes_with = mean_bytes(std::move(with), 3);
  EXPECT_LT(bytes_with, 0.85 * bytes_without);
}

TEST(Figure7ShapeTest, SingleFailureRepairCostsAboutOneThirdMore) {
  // §5.3: "approximately one third more network capacity compared to the
  // no-failure case" for sibling recovery with (k=4, n=12).
  const double clean = mean_bytes(mini_config(ConvergenceOptions::all_opts()), 3);
  RunConfig failed = mini_config(ConvergenceOptions::all_opts());
  failed.faults = fs_blackouts(1);
  const double repaired = mean_bytes(std::move(failed), 3);
  EXPECT_GT(repaired, 1.1 * clean);
  EXPECT_LT(repaired, 1.6 * clean);
}

TEST(Figure8ShapeTest, ConnectedKlsFailuresAreCheapPartitionIsNot) {
  // Larger objects so bytes are fragment-dominated, as in the real sweep.
  auto big = [](ConvergenceOptions conv) {
    RunConfig config = mini_config(conv, /*puts=*/15);
    config.workload.value_size = 64 * 1024;
    return config;
  };
  const SimTime len = 10LL * 60 * kMicrosPerSecond;
  const double clean = mean_bytes(big(ConvergenceOptions::all_opts()), 3);

  // 2C: one KLS per data center — fragment bytes unchanged, only some
  // metadata chatter added.
  RunConfig connected = big(ConvergenceOptions::all_opts());
  connected.faults = {FaultSpec::kls_blackout(0, 0, 0, len),
                      FaultSpec::kls_blackout(1, 0, 0, len)};
  EXPECT_LT(mean_bytes(std::move(connected), 3), 1.15 * clean);

  // 2P without sibling recovery: all three DC-1 FSs independently pull k
  // fragments — far more expensive than the failure-free put.
  RunConfig partitioned = big(ConvergenceOptions::put_amr());
  partitioned.faults = {FaultSpec::kls_blackout(1, 0, 0, len),
                        FaultSpec::kls_blackout(1, 1, 0, len)};
  const double bytes_2p_no_sibling = mean_bytes(std::move(partitioned), 3);
  EXPECT_GT(bytes_2p_no_sibling, 1.3 * clean);

  // With sibling recovery the rebuild is amortized; the paper's Fig 8
  // shows the 2P "Sibling"/"All" bars back near (even slightly below) the
  // no-failure bar, since the partition-era put ships only 6 fragments.
  RunConfig amortized = big(ConvergenceOptions::all_opts());
  amortized.faults = {FaultSpec::kls_blackout(1, 0, 0, len),
                      FaultSpec::kls_blackout(1, 1, 0, len)};
  EXPECT_LT(mean_bytes(std::move(amortized), 3), bytes_2p_no_sibling * 0.7);
}

TEST(Figure8ShapeTest, SiblingRecoverySavesWanBytesUnderPartition) {
  const SimTime len = 10LL * 60 * kMicrosPerSecond;
  auto wan_bytes = [&](ConvergenceOptions conv) {
    RunConfig config = mini_config(conv);
    config.faults = {FaultSpec::kls_blackout(1, 0, 0, len),
                     FaultSpec::kls_blackout(1, 1, 0, len)};
    return run_many(std::move(config), 3, 3100).wan_bytes.mean();
  };
  const double with = wan_bytes(ConvergenceOptions::all_opts());
  const double without = wan_bytes(ConvergenceOptions::put_amr());
  // One WAN read of k fragments per object instead of three.
  EXPECT_LT(with, 0.5 * without);
}

TEST(Figure9ShapeTest, AttemptsGrowAndEventualConsistencyHolds) {
  auto at_rate = [&](double rate) {
    RunConfig config = mini_config(ConvergenceOptions::all_opts());
    config.workload.retry_failed = true;
    if (rate > 0) config.faults = {FaultSpec::uniform_loss(rate)};
    return run_many(std::move(config), 4, 3100);
  };
  const auto clean = at_rate(0.0);
  const auto lossy = at_rate(0.15);
  EXPECT_DOUBLE_EQ(clean.puts_attempted.mean(), 20.0);
  EXPECT_GT(lossy.puts_attempted.mean(), clean.puts_attempted.mean());
  EXPECT_GT(lossy.excess_amr.mean(), 0.0);
  EXPECT_DOUBLE_EQ(clean.durable_not_amr.mean(), 0.0);
  EXPECT_DOUBLE_EQ(lossy.durable_not_amr.mean(), 0.0);
}

}  // namespace
}  // namespace pahoehoe::core
