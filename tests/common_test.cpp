#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/rng.h"
#include "common/sha256.h"
#include "common/stats.h"
#include "common/types.h"

namespace pahoehoe {
namespace {

// --- Timestamp --------------------------------------------------------------

TEST(TimestampTest, DefaultIsInvalid) {
  Timestamp ts;
  EXPECT_FALSE(ts.valid());
}

TEST(TimestampTest, OrderedByWallClockFirst) {
  Timestamp a{100, 9};
  Timestamp b{200, 1};
  EXPECT_LT(a, b);
}

TEST(TimestampTest, ProxyIdBreaksTies) {
  Timestamp a{100, 1};
  Timestamp b{100, 2};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(TimestampTest, EqualityRequiresBothFields) {
  EXPECT_EQ((Timestamp{5, 7}), (Timestamp{5, 7}));
  EXPECT_NE((Timestamp{5, 7}), (Timestamp{5, 8}));
}

TEST(TimestampTest, UsableAsSetAndMapKey) {
  std::set<Timestamp> set;
  set.insert(Timestamp{3, 1});
  set.insert(Timestamp{1, 1});
  set.insert(Timestamp{2, 1});
  EXPECT_EQ(set.rbegin()->wall_micros, 3);
  std::unordered_set<Timestamp> uset(set.begin(), set.end());
  EXPECT_EQ(uset.size(), 3u);
}

// --- ObjectVersionId ----------------------------------------------------------

TEST(ObjectVersionIdTest, OrderedByKeyThenTimestamp) {
  ObjectVersionId a{Key{"a"}, Timestamp{10, 1}};
  ObjectVersionId b{Key{"a"}, Timestamp{20, 1}};
  ObjectVersionId c{Key{"b"}, Timestamp{5, 1}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(ObjectVersionIdTest, HashDistinguishesVersions) {
  std::unordered_set<ObjectVersionId> set;
  set.insert({Key{"k"}, Timestamp{1, 1}});
  set.insert({Key{"k"}, Timestamp{1, 2}});
  set.insert({Key{"k2"}, Timestamp{1, 1}});
  EXPECT_EQ(set.size(), 3u);
}

// --- Policy -------------------------------------------------------------------

TEST(PolicyTest, DefaultMatchesPaper) {
  Policy p;
  EXPECT_EQ(p.k, 4);
  EXPECT_EQ(p.n, 12);
  EXPECT_EQ(p.m(), 8);
  EXPECT_EQ(p.max_frags_per_fs, 2);
  EXPECT_EQ(p.max_frags_per_dc, 6);
  EXPECT_TRUE(p.data_frags_one_dc);
  EXPECT_TRUE(p.valid());
}

TEST(PolicyTest, RejectsZeroK) {
  Policy p;
  p.k = 0;
  EXPECT_FALSE(p.valid());
}

TEST(PolicyTest, RejectsNSmallerThanK) {
  Policy p;
  p.k = 5;
  p.n = 4;
  EXPECT_FALSE(p.valid());
}

TEST(PolicyTest, RejectsSuccessThresholdAboveN) {
  Policy p;
  p.min_frags_for_success = 13;
  EXPECT_FALSE(p.valid());
}

// --- Metadata -------------------------------------------------------------------

TEST(MetadataTest, FreshMetadataHasUndecidedSlots) {
  Metadata meta{Policy{}};
  EXPECT_EQ(meta.locs.size(), 12u);
  EXPECT_EQ(meta.decided_count(), 0);
  EXPECT_FALSE(meta.complete());
}

TEST(MetadataTest, CompleteWhenAllSlotsDecided) {
  Metadata meta{Policy{}};
  for (size_t i = 0; i < meta.locs.size(); ++i) {
    meta.locs[i] = Location{NodeId{static_cast<uint32_t>(i)}, 0};
  }
  EXPECT_TRUE(meta.complete());
  EXPECT_EQ(meta.decided_count(), 12);
}

TEST(MetadataTest, FragmentsForReturnsAssignedSlots) {
  Metadata meta{Policy{}};
  meta.locs[2] = Location{NodeId{7}, 0};
  meta.locs[5] = Location{NodeId{7}, 1};
  meta.locs[6] = Location{NodeId{8}, 0};
  EXPECT_EQ(meta.fragments_for(NodeId{7}), (std::vector<int>{2, 5}));
  EXPECT_EQ(meta.fragments_for(NodeId{8}), (std::vector<int>{6}));
  EXPECT_TRUE(meta.fragments_for(NodeId{9}).empty());
}

TEST(MetadataTest, SiblingFsDeduplicatesInSlotOrder) {
  Metadata meta{Policy{}};
  meta.locs[0] = Location{NodeId{5}, 0};
  meta.locs[1] = Location{NodeId{6}, 0};
  meta.locs[2] = Location{NodeId{5}, 1};
  auto sibs = meta.sibling_fs();
  EXPECT_EQ(sibs, (std::vector<NodeId>{NodeId{5}, NodeId{6}}));
}

TEST(MetadataTest, MergeLocsUnionsAndExistingWins) {
  Metadata a{Policy{}};
  a.locs[0] = Location{NodeId{1}, 0};
  Metadata b{Policy{}};
  b.locs[0] = Location{NodeId{2}, 0};  // conflicts; a keeps its own
  b.locs[1] = Location{NodeId{3}, 0};
  EXPECT_TRUE(a.merge_locs(b));
  EXPECT_EQ(a.locs[0]->fs, NodeId{1});
  EXPECT_EQ(a.locs[1]->fs, NodeId{3});
}

TEST(MetadataTest, MergeLocsReportsNoChange) {
  Metadata a{Policy{}};
  a.locs[0] = Location{NodeId{1}, 0};
  Metadata b{Policy{}};
  EXPECT_FALSE(a.merge_locs(b));
}

// --- SHA-256 ----------------------------------------------------------------------

TEST(Sha256Test, EmptyInputVector) {
  // FIPS 180-4 test vector.
  EXPECT_EQ(Sha256::hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, AbcVector) {
  const std::string abc = "abc";
  Bytes data(abc.begin(), abc.end());
  EXPECT_EQ(Sha256::hex(Sha256::hash(data)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockVector) {
  const std::string msg =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  Bytes data(msg.begin(), msg.end());
  EXPECT_EQ(Sha256::hex(Sha256::hash(data)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAVector) {
  Bytes data(1'000'000, static_cast<uint8_t>('a'));
  EXPECT_EQ(Sha256::hex(Sha256::hash(data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<uint8_t>(i));
  Sha256 incremental;
  // Feed in awkward chunk sizes straddling block boundaries.
  size_t offset = 0;
  for (size_t chunk : {1u, 63u, 64u, 65u, 500u, 307u}) {
    const size_t take = std::min(chunk, data.size() - offset);
    incremental.update(std::span(data).subspan(offset, take));
    offset += take;
  }
  incremental.update(std::span(data).subspan(offset));
  EXPECT_EQ(incremental.finish(), Sha256::hash(data));
}

TEST(Sha256Test, SingleBitChangesDigest) {
  Bytes data(100, 0xab);
  auto d1 = Sha256::hash(data);
  data[50] ^= 1;
  auto d2 = Sha256::hash(data);
  EXPECT_NE(d1, d2);
}

// --- Rng ------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform_int(10, 30);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 30);
  }
}

TEST(RngTest, UniformIntCoversSingletonRange) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(99);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.15)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.15, 0.02);
}

// --- SampleStats -------------------------------------------------------------------

TEST(SampleStatsTest, MeanAndStddev) {
  SampleStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(SampleStatsTest, EmptyAndSingleton) {
  SampleStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(SampleStatsTest, Ci95ShrinksWithSamples) {
  SampleStats small, large;
  Rng rng(3);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(SampleStatsTest, MinMax) {
  SampleStats s;
  s.add(3);
  s.add(-1);
  s.add(10);
  EXPECT_DOUBLE_EQ(s.min(), -1);
  EXPECT_DOUBLE_EQ(s.max(), 10);
}

}  // namespace
}  // namespace pahoehoe
