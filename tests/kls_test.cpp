// Unit tests for the Key Lookup Server, driving it with hand-crafted
// messages through the network (no proxy/FS involved).
#include <gtest/gtest.h>

#include "test_util.h"

namespace pahoehoe {
namespace {

using testing::SimCluster;
using wire::MessageType;

// A scripted peer: records everything addressed to it.
class Probe : public net::MessageHandler {
 public:
  void handle(const wire::Envelope& env) override { received.push_back(env); }

  template <typename M>
  std::vector<M> decode_all(MessageType type) const {
    std::vector<M> out;
    for (const auto& env : received) {
      if (env.type == type) out.push_back(M::decode(env.payload));
    }
    return out;
  }

  std::vector<wire::Envelope> received;
};

class KlsTest : public ::testing::Test {
 protected:
  KlsTest() : tc(core::ConvergenceOptions::naive()) {
    probe_id = NodeId{9999};
    tc.net.register_node(probe_id, &probe);
    kls = &tc.cluster.kls(0, 0);
  }

  ObjectVersionId ov(const std::string& key, SimTime t = 100) {
    return ObjectVersionId{Key{key}, Timestamp{t, 1}};
  }

  void deliver_and_run(MessageType type, Bytes payload) {
    tc.net.send(probe_id, kls->id(), type, std::move(payload));
    // Bounded horizon: enough for request + reply + notifications, short of
    // any convergence round the side effects may have scheduled on FSs.
    tc.run_for(testing::seconds(5));
  }

  SimCluster tc;
  NodeId probe_id;
  Probe probe;
  core::KeyLookupServer* kls = nullptr;
};

TEST_F(KlsTest, ProxyDecideLocsSuggestsOwnDcOnly) {
  deliver_and_run(MessageType::kDecideLocsReq,
                  wire::DecideLocsReq{ov("k"), Policy{}, 0, false}.encode());
  auto reps = probe.decode_all<wire::DecideLocsRep>(MessageType::kDecideLocsRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].dc, DataCenterId{0});
  EXPECT_EQ(reps[0].meta.decided_count(), 6);
  for (int slot = 0; slot < 6; ++slot) {
    ASSERT_TRUE(reps[0].meta.locs[static_cast<size_t>(slot)].has_value());
    EXPECT_EQ(tc.cluster.view()->dc_of(
                  reps[0].meta.locs[static_cast<size_t>(slot)]->fs),
              DataCenterId{0});
  }
  // Proxy-originated requests are NOT persisted (§3.5).
  EXPECT_FALSE(kls->meta_store().contains(ov("k")));
  EXPECT_FALSE(kls->timestamp_store().contains(ov("k").key, ov("k").ts));
}

TEST_F(KlsTest, BothKlssOfADcSuggestIdentically) {
  auto& other = tc.cluster.kls(0, 1);
  tc.net.send(probe_id, kls->id(), MessageType::kDecideLocsReq,
              wire::DecideLocsReq{ov("k"), Policy{}, 0, false}.encode());
  tc.net.send(probe_id, other.id(), MessageType::kDecideLocsReq,
              wire::DecideLocsReq{ov("k"), Policy{}, 0, false}.encode());
  tc.run_to_quiescence();
  auto reps = probe.decode_all<wire::DecideLocsRep>(MessageType::kDecideLocsRep);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0].meta, reps[1].meta);
}

TEST_F(KlsTest, FsDecideLocsPersistsAndNotifiesSiblings) {
  deliver_and_run(MessageType::kFsDecideLocsReq,
                  wire::DecideLocsReq{ov("k"), Policy{}, 4096, true}.encode());
  // Persisted before replying (§3.5).
  EXPECT_TRUE(kls->meta_store().contains(ov("k")));
  EXPECT_TRUE(kls->timestamp_store().contains(ov("k").key, ov("k").ts));
  // Sibling FSs notified of the decision (all suggested FSs except the
  // requester — the probe is not an FS, so all of them).
  const size_t notified =
      tc.net.stats().of(MessageType::kKlsLocsNotify).sent_count;
  EXPECT_EQ(notified, 3u);  // 3 distinct FSs host the 6 DC-0 slots
}

TEST_F(KlsTest, StoreMetadataPersistsBoth) {
  Metadata meta{Policy{}, 4096};
  meta.locs[0] = Location{tc.cluster.fs(0).id(), 0};
  deliver_and_run(MessageType::kStoreMetadataReq,
                  wire::StoreMetadataReq{ov("k"), meta}.encode());
  auto reps =
      probe.decode_all<wire::StoreMetadataRep>(MessageType::kStoreMetadataRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].status, wire::Status::kSuccess);
  EXPECT_TRUE(kls->timestamp_store().contains(ov("k").key, ov("k").ts));
  const Metadata* stored = kls->meta_store().find(ov("k"));
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->value_size, 4096u);
}

TEST_F(KlsTest, StoreMetadataMergesAcrossRequests) {
  Metadata first{Policy{}};
  first.locs[0] = Location{tc.cluster.fs(0).id(), 0};
  Metadata second{Policy{}};
  second.locs[1] = Location{tc.cluster.fs(1).id(), 0};
  deliver_and_run(MessageType::kStoreMetadataReq,
                  wire::StoreMetadataReq{ov("k"), first}.encode());
  deliver_and_run(MessageType::kStoreMetadataReq,
                  wire::StoreMetadataReq{ov("k"), second}.encode());
  EXPECT_EQ(kls->meta_store().find(ov("k"))->decided_count(), 2);
}

TEST_F(KlsTest, RetrieveTsReturnsAllVersionsWithMetadata) {
  for (SimTime t : {100, 300, 200}) {
    deliver_and_run(
        MessageType::kStoreMetadataReq,
        wire::StoreMetadataReq{ov("k", t), Metadata{Policy{}}}.encode());
  }
  deliver_and_run(MessageType::kRetrieveTsReq,
                  wire::RetrieveTsReq{Key{"k"}, {}, 0}.encode());
  auto reps =
      probe.decode_all<wire::RetrieveTsRep>(MessageType::kRetrieveTsRep);
  ASSERT_EQ(reps.size(), 1u);
  ASSERT_EQ(reps[0].entries.size(), 3u);
  // Newest first (store order irrelevant), single unbounded page.
  EXPECT_EQ(reps[0].entries[0].ts.wall_micros, 300);
  EXPECT_EQ(reps[0].entries[2].ts.wall_micros, 100);
  EXPECT_FALSE(reps[0].more);
}

TEST_F(KlsTest, RetrieveTsPagesNewestFirst) {
  for (SimTime t : {100, 200, 300, 400, 500}) {
    deliver_and_run(
        MessageType::kStoreMetadataReq,
        wire::StoreMetadataReq{ov("k", t), Metadata{Policy{}}}.encode());
  }
  // Page 1: the two newest.
  deliver_and_run(MessageType::kRetrieveTsReq,
                  wire::RetrieveTsReq{Key{"k"}, Timestamp{}, 2}.encode());
  auto reps =
      probe.decode_all<wire::RetrieveTsRep>(MessageType::kRetrieveTsRep);
  ASSERT_EQ(reps.size(), 1u);
  ASSERT_EQ(reps[0].entries.size(), 2u);
  EXPECT_EQ(reps[0].entries[0].ts.wall_micros, 500);
  EXPECT_EQ(reps[0].entries[1].ts.wall_micros, 400);
  EXPECT_TRUE(reps[0].more);

  // Page 2: continue strictly below the floor of page 1.
  deliver_and_run(
      MessageType::kRetrieveTsReq,
      wire::RetrieveTsReq{Key{"k"}, reps[0].entries[1].ts, 2}.encode());
  reps = probe.decode_all<wire::RetrieveTsRep>(MessageType::kRetrieveTsRep);
  ASSERT_EQ(reps.size(), 2u);
  ASSERT_EQ(reps[1].entries.size(), 2u);
  EXPECT_EQ(reps[1].entries[0].ts.wall_micros, 300);
  EXPECT_EQ(reps[1].entries[1].ts.wall_micros, 200);
  EXPECT_TRUE(reps[1].more);

  // Final page.
  deliver_and_run(
      MessageType::kRetrieveTsReq,
      wire::RetrieveTsReq{Key{"k"}, reps[1].entries[1].ts, 2}.encode());
  reps = probe.decode_all<wire::RetrieveTsRep>(MessageType::kRetrieveTsRep);
  ASSERT_EQ(reps.size(), 3u);
  ASSERT_EQ(reps[2].entries.size(), 1u);
  EXPECT_EQ(reps[2].entries[0].ts.wall_micros, 100);
  EXPECT_FALSE(reps[2].more);
}

TEST_F(KlsTest, RetrieveTsUnknownKeyIsEmpty) {
  deliver_and_run(MessageType::kRetrieveTsReq,
                  wire::RetrieveTsReq{Key{"nope"}, {}, 0}.encode());
  auto reps =
      probe.decode_all<wire::RetrieveTsRep>(MessageType::kRetrieveTsRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_TRUE(reps[0].entries.empty());
}

TEST_F(KlsTest, ConvergeVerifiesCompleteness) {
  Metadata partial{Policy{}};
  partial.locs[0] = Location{tc.cluster.fs(0).id(), 0};
  deliver_and_run(MessageType::kKlsConvergeReq,
                  wire::KlsConvergeReq{ov("k"), partial}.encode());
  auto reps =
      probe.decode_all<wire::KlsConvergeRep>(MessageType::kKlsConvergeRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_FALSE(reps[0].verified);

  Metadata complete{Policy{}};
  for (size_t i = 0; i < complete.locs.size(); ++i) {
    complete.locs[i] = Location{tc.cluster.fs(static_cast<int>(i) % 6).id(),
                                static_cast<uint8_t>(i / 6)};
  }
  deliver_and_run(MessageType::kKlsConvergeReq,
                  wire::KlsConvergeReq{ov("k"), complete}.encode());
  reps = probe.decode_all<wire::KlsConvergeRep>(MessageType::kKlsConvergeRep);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_TRUE(reps[1].verified);
  // Convergence also registered the timestamp so gets can find it.
  EXPECT_TRUE(kls->timestamp_store().contains(ov("k").key, ov("k").ts));
}

TEST_F(KlsTest, ConvergeMergeIsMonotonic) {
  Metadata complete{Policy{}};
  for (size_t i = 0; i < complete.locs.size(); ++i) {
    complete.locs[i] = Location{tc.cluster.fs(static_cast<int>(i) % 6).id(),
                                static_cast<uint8_t>(i / 6)};
  }
  deliver_and_run(MessageType::kKlsConvergeReq,
                  wire::KlsConvergeReq{ov("k"), complete}.encode());
  // A later converge with *less* information cannot regress the store.
  deliver_and_run(MessageType::kKlsConvergeReq,
                  wire::KlsConvergeReq{ov("k"), Metadata{Policy{}}}.encode());
  EXPECT_TRUE(kls->meta_store().find(ov("k"))->complete());
  auto reps =
      probe.decode_all<wire::KlsConvergeRep>(MessageType::kKlsConvergeRep);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_TRUE(reps[1].verified);
}

TEST_F(KlsTest, CrashedKlsIsSilent) {
  kls->crash();
  deliver_and_run(MessageType::kRetrieveTsReq,
                  wire::RetrieveTsReq{Key{"k"}, {}, 0}.encode());
  EXPECT_TRUE(probe.received.empty());
  kls->recover();
  deliver_and_run(MessageType::kRetrieveTsReq,
                  wire::RetrieveTsReq{Key{"k"}, {}, 0}.encode());
  EXPECT_EQ(probe.received.size(), 1u);
}

TEST_F(KlsTest, StateSurvivesCrashRecover) {
  deliver_and_run(
      MessageType::kStoreMetadataReq,
      wire::StoreMetadataReq{ov("k"), Metadata{Policy{}, 99}}.encode());
  kls->crash();
  kls->recover();
  EXPECT_TRUE(kls->meta_store().contains(ov("k")));
  EXPECT_EQ(kls->meta_store().find(ov("k"))->value_size, 99u);
}

}  // namespace
}  // namespace pahoehoe
