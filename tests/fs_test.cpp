// Unit tests for the Fragment Server, driving it with hand-crafted messages
// through a probe node (no proxy involved).
#include <gtest/gtest.h>

#include "common/sha256.h"
#include "erasure/reed_solomon.h"
#include "test_util.h"

namespace pahoehoe {
namespace {

using testing::SimCluster;
using testing::minutes;
using testing::seconds;
using wire::MessageType;

class Probe : public net::MessageHandler {
 public:
  void handle(const wire::Envelope& env) override { received.push_back(env); }

  template <typename M>
  std::vector<M> decode_all(MessageType type) const {
    std::vector<M> out;
    for (const auto& env : received) {
      if (env.type == type) out.push_back(M::decode(env.payload));
    }
    return out;
  }

  std::vector<wire::Envelope> received;
};

class FsTest : public ::testing::Test {
 protected:
  explicit FsTest(core::ConvergenceOptions conv =
                      core::ConvergenceOptions::naive())
      : tc(conv) {
    probe_id = NodeId{9999};
    tc.net.register_node(probe_id, &probe);
    fs = &tc.cluster.fs(0, 0);
    codec = std::make_unique<erasure::ReedSolomon>(4, 12);
  }

  /// Complete metadata placing fragment i on cluster FS (i % 6), disks
  /// alternating — our test FS (0,0) owns fragments 0 and 6.
  Metadata complete_meta(uint64_t value_size) {
    Metadata meta{Policy{}, value_size};
    for (size_t i = 0; i < meta.locs.size(); ++i) {
      meta.locs[i] = Location{tc.cluster.fs(static_cast<int>(i % 6)).id(),
                              static_cast<uint8_t>(i / 6)};
    }
    return meta;
  }

  ObjectVersionId ov(const std::string& key, SimTime t = 100) {
    return ObjectVersionId{Key{key}, Timestamp{t, 1}};
  }

  void deliver(NodeId to, MessageType type, Bytes payload) {
    tc.net.send(probe_id, to, type, std::move(payload));
    tc.run_for(seconds(1));
  }

  wire::StoreFragmentReq store_req(const ObjectVersionId& version,
                                   const Metadata& meta, int index,
                                   const std::vector<Bytes>& frags) {
    wire::StoreFragmentReq req;
    req.ov = version;
    req.meta = meta;
    req.frag_index = static_cast<uint16_t>(index);
    req.fragment = frags[static_cast<size_t>(index)];
    req.digest = Sha256::hash(req.fragment);
    return req;
  }

  SimCluster tc;
  NodeId probe_id;
  Probe probe;
  core::FragmentServer* fs = nullptr;
  std::unique_ptr<erasure::ReedSolomon> codec;
};

TEST_F(FsTest, StoreFragmentPersistsAndAcks) {
  const Bytes value = tc.make_value(4096);
  const auto frags = codec->encode(value);
  const Metadata meta = complete_meta(value.size());
  deliver(fs->id(), MessageType::kStoreFragmentReq,
          store_req(ov("k"), meta, 0, frags).encode());
  auto reps =
      probe.decode_all<wire::StoreFragmentRep>(MessageType::kStoreFragmentRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].status, wire::Status::kSuccess);
  EXPECT_EQ(reps[0].frag_index, 0);
  EXPECT_NE(fs->frag_store().fragment_if_intact(ov("k"), 0), nullptr);
  // The version entered the convergence work-list (Fig 2 fs lines 3–5).
  EXPECT_TRUE(fs->meta_store().contains(ov("k")));
}

TEST_F(FsTest, StoreFragmentRejectsBadDigest) {
  const Bytes value = tc.make_value(4096);
  const auto frags = codec->encode(value);
  auto req = store_req(ov("k"), complete_meta(value.size()), 0, frags);
  req.digest[0] ^= 0xff;  // corrupted in transit
  deliver(fs->id(), MessageType::kStoreFragmentReq, req.encode());
  auto reps =
      probe.decode_all<wire::StoreFragmentRep>(MessageType::kStoreFragmentRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].status, wire::Status::kFailure);
  EXPECT_EQ(fs->frag_store().fragment_if_intact(ov("k"), 0), nullptr);
}

TEST_F(FsTest, RetrieveMissingFragmentRepliesBottom) {
  deliver(fs->id(), MessageType::kRetrieveFragReq,
          wire::RetrieveFragReq{ov("k"), 0}.encode());
  auto reps =
      probe.decode_all<wire::RetrieveFragRep>(MessageType::kRetrieveFragRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_FALSE(reps[0].found);
  EXPECT_TRUE(reps[0].fragment.empty());
}

TEST_F(FsTest, RetrieveStoredFragmentRoundTrips) {
  const Bytes value = tc.make_value(4096);
  const auto frags = codec->encode(value);
  deliver(fs->id(), MessageType::kStoreFragmentReq,
          store_req(ov("k"), complete_meta(value.size()), 0, frags).encode());
  deliver(fs->id(), MessageType::kRetrieveFragReq,
          wire::RetrieveFragReq{ov("k"), 0}.encode());
  auto reps =
      probe.decode_all<wire::RetrieveFragRep>(MessageType::kRetrieveFragRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_TRUE(reps[0].found);
  EXPECT_EQ(reps[0].fragment, frags[0]);
}

TEST_F(FsTest, CorruptFragmentReadsAsBottom) {
  const Bytes value = tc.make_value(4096);
  const auto frags = codec->encode(value);
  deliver(fs->id(), MessageType::kStoreFragmentReq,
          store_req(ov("k"), complete_meta(value.size()), 0, frags).encode());
  ASSERT_TRUE(fs->corrupt_fragment(ov("k"), 0));
  deliver(fs->id(), MessageType::kRetrieveFragReq,
          wire::RetrieveFragReq{ov("k"), 0}.encode());
  auto reps =
      probe.decode_all<wire::RetrieveFragRep>(MessageType::kRetrieveFragRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_FALSE(reps[0].found);
}

TEST_F(FsTest, ConvergeRequestForUnknownVersionCreatesWork) {
  // Fig 4 line 17: a converge request for a version the FS never saw
  // creates metadata + a ⊥ fragment entry, entering convergence.
  const Metadata meta = complete_meta(4096);
  deliver(fs->id(), MessageType::kFsConvergeReq,
          wire::FsConvergeReq{ov("k"), meta, false}.encode());
  EXPECT_TRUE(fs->meta_store().contains(ov("k")));
  EXPECT_TRUE(fs->frag_store().contains(ov("k")));
  auto reps =
      probe.decode_all<wire::FsConvergeRep>(MessageType::kFsConvergeRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_FALSE(reps[0].verified);  // fragments are ⊥
}

TEST_F(FsTest, ConvergeReplyVerifiedWhenLocalStateComplete) {
  const Bytes value = tc.make_value(4096);
  const auto frags = codec->encode(value);
  const Metadata meta = complete_meta(value.size());
  // Store both fragments this FS is responsible for (slots 0 and 6).
  for (int slot : meta.fragments_for(fs->id())) {
    deliver(fs->id(), MessageType::kStoreFragmentReq,
            store_req(ov("k"), meta, slot, frags).encode());
  }
  deliver(fs->id(), MessageType::kFsConvergeReq,
          wire::FsConvergeReq{ov("k"), meta, false}.encode());
  auto reps =
      probe.decode_all<wire::FsConvergeRep>(MessageType::kFsConvergeRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_TRUE(reps[0].verified);
}

TEST_F(FsTest, ConvergeWithRecoveryIntentReportsNeededFragments) {
  const Bytes value = tc.make_value(4096);
  const auto frags = codec->encode(value);
  const Metadata meta = complete_meta(value.size());
  // Only slot 0 stored; slot 6 (also ours) missing.
  deliver(fs->id(), MessageType::kStoreFragmentReq,
          store_req(ov("k"), meta, 0, frags).encode());
  deliver(fs->id(), MessageType::kFsConvergeReq,
          wire::FsConvergeReq{ov("k"), meta, /*intends_recovery=*/true}
              .encode());
  auto reps =
      probe.decode_all<wire::FsConvergeRep>(MessageType::kFsConvergeRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_FALSE(reps[0].verified);
  EXPECT_EQ(reps[0].needed_fragments, (std::vector<uint16_t>{6}));
}

TEST_F(FsTest, ConvergeWithoutRecoveryIntentOmitsNeeds) {
  const Metadata meta = complete_meta(4096);
  deliver(fs->id(), MessageType::kFsConvergeReq,
          wire::FsConvergeReq{ov("k"), meta, false}.encode());
  auto reps =
      probe.decode_all<wire::FsConvergeRep>(MessageType::kFsConvergeRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_TRUE(reps[0].needed_fragments.empty());
}

TEST_F(FsTest, AmrIndicationClearsWorkButKeepsFragments) {
  const Bytes value = tc.make_value(4096);
  const auto frags = codec->encode(value);
  const Metadata meta = complete_meta(value.size());
  deliver(fs->id(), MessageType::kStoreFragmentReq,
          store_req(ov("k"), meta, 0, frags).encode());
  ASSERT_EQ(fs->pending_versions(), 1u);
  deliver(fs->id(), MessageType::kAmrIndication,
          wire::AmrIndication{ov("k")}.encode());
  EXPECT_EQ(fs->pending_versions(), 0u);
  EXPECT_NE(fs->frag_store().fragment_if_intact(ov("k"), 0), nullptr);
}

TEST_F(FsTest, ConvergeAfterAmrDoesNotResurrect) {
  const Bytes value = tc.make_value(4096);
  const auto frags = codec->encode(value);
  const Metadata meta = complete_meta(value.size());
  deliver(fs->id(), MessageType::kStoreFragmentReq,
          store_req(ov("k"), meta, 0, frags).encode());
  deliver(fs->id(), MessageType::kAmrIndication,
          wire::AmrIndication{ov("k")}.encode());
  deliver(fs->id(), MessageType::kFsConvergeReq,
          wire::FsConvergeReq{ov("k"), meta, false}.encode());
  EXPECT_EQ(fs->pending_versions(), 0u);
  // It still answers the converge request truthfully.
  auto reps =
      probe.decode_all<wire::FsConvergeRep>(MessageType::kFsConvergeRep);
  ASSERT_EQ(reps.size(), 1u);
}

TEST_F(FsTest, AmrIndicationForUnknownVersionIsHarmless) {
  deliver(fs->id(), MessageType::kAmrIndication,
          wire::AmrIndication{ov("never-seen")}.encode());
  EXPECT_EQ(fs->pending_versions(), 0u);
}

TEST_F(FsTest, SiblingStorePersistsFragment) {
  const Bytes value = tc.make_value(4096);
  const auto frags = codec->encode(value);
  const Metadata meta = complete_meta(value.size());
  wire::SiblingStoreReq req;
  req.ov = ov("k");
  req.meta = meta;
  req.frag_index = 6;
  req.fragment = frags[6];
  req.digest = Sha256::hash(frags[6]);
  deliver(fs->id(), MessageType::kSiblingStoreReq, req.encode());
  auto reps =
      probe.decode_all<wire::SiblingStoreRep>(MessageType::kSiblingStoreRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].status, wire::Status::kSuccess);
  EXPECT_NE(fs->frag_store().fragment_if_intact(ov("k"), 6), nullptr);
}

TEST_F(FsTest, KlsLocsNotifyCreatesWork) {
  deliver(fs->id(), MessageType::kKlsLocsNotify,
          wire::KlsLocsNotify{ov("k"), complete_meta(4096)}.encode());
  EXPECT_TRUE(fs->meta_store().contains(ov("k")));
  EXPECT_EQ(fs->pending_versions(), 1u);
}

TEST_F(FsTest, CrashedFsDropsRequestsSilently) {
  fs->crash();
  deliver(fs->id(), MessageType::kRetrieveFragReq,
          wire::RetrieveFragReq{ov("k"), 0}.encode());
  EXPECT_TRUE(probe.received.empty());
}

TEST_F(FsTest, FragmentsSurviveCrashRecover) {
  const Bytes value = tc.make_value(4096);
  const auto frags = codec->encode(value);
  deliver(fs->id(), MessageType::kStoreFragmentReq,
          store_req(ov("k"), complete_meta(value.size()), 0, frags).encode());
  fs->crash();
  fs->recover();
  deliver(fs->id(), MessageType::kRetrieveFragReq,
          wire::RetrieveFragReq{ov("k"), 0}.encode());
  auto reps =
      probe.decode_all<wire::RetrieveFragRep>(MessageType::kRetrieveFragRep);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_TRUE(reps[0].found);
  // The convergence work-list is persistent too (§3.1).
  EXPECT_EQ(fs->pending_versions(), 1u);
}

// --- sibling-recovery backoff rule (§4.2), synchronized rounds -----------------

class FsBackoffTest : public FsTest {
 protected:
  FsBackoffTest() : FsTest([] {
      core::ConvergenceOptions conv;
      conv.sibling_recovery = true;
      conv.unsync_rounds = false;
      return conv;
    }()) {}
};

// Set up so the test FS is missing exactly one of its fragments while all
// sibling fragments exist; its synchronized round at t=60 s starts sibling
// recovery, and the recovery's reply-accumulation window (200 ms) gives a
// deterministic moment to deliver a competing recovery intent.
class FsBackoffScenario : public FsBackoffTest {
 protected:
  void prime() {
    const Bytes value = tc.make_value(4096);
    const auto frags = codec->encode(value);
    meta = complete_meta(value.size());
    for (size_t slot = 0; slot < meta.locs.size(); ++slot) {
      if (slot == 6) continue;  // the test FS's second fragment is missing
      tc.net.send(probe_id, meta.locs[slot]->fs,
                  MessageType::kStoreFragmentReq,
                  store_req(ov("k"), meta, static_cast<int>(slot), frags)
                      .encode());
    }
    // Run into the recovery's accumulation window after the 60 s round.
    tc.sim.run(60 * kMicrosPerSecond + 30 * kMicrosPerMilli);
  }

  Metadata meta;
};

TEST_F(FsBackoffScenario, LowerIdStandsDownOnRecoveryIntent) {
  prime();
  const uint64_t backoffs_before = fs->recovery_backoffs();
  const NodeId higher{fs->id().value + 1000};
  tc.net.register_node(higher, &probe);
  net::send_message(tc.net, higher, fs->id(),
                    wire::FsConvergeReq{ov("k"), meta, true});
  tc.run_for(seconds(2));
  EXPECT_GT(fs->recovery_backoffs(), backoffs_before)
      << "a competing intent from a higher id must cancel our recovery";
}

TEST_F(FsBackoffScenario, DoesNotStandDownForLowerId) {
  prime();
  const uint64_t backoffs_before = fs->recovery_backoffs();
  const uint64_t completed_before = fs->recoveries_completed();
  const NodeId lower{50};  // below the cluster's id range (starts at 101)
  ASSERT_LT(lower.value, fs->id().value);
  tc.net.register_node(lower, &probe);
  net::send_message(tc.net, lower, fs->id(),
                    wire::FsConvergeReq{ov("k"), meta, true});
  tc.run_for(seconds(30));
  EXPECT_EQ(fs->recovery_backoffs(), backoffs_before);
  EXPECT_GT(fs->recoveries_completed(), completed_before)
      << "our recovery must proceed despite the lower-id intent";
}

// --- periodic scrub -------------------------------------------------------------

TEST(FsScrubTest, PeriodicScrubRepairsCorruption) {
  core::ConvergenceOptions conv = core::ConvergenceOptions::all_opts();
  conv.scrub_interval = testing::minutes(5);
  SimCluster tc(conv);
  const Bytes value = tc.make_value(8192);
  const auto r = tc.put(Key{"k"}, value);
  tc.run_for(testing::minutes(2));
  ASSERT_EQ(tc.cluster.classify(r.ov), core::VersionStatus::kAmr);

  // Corrupt one fragment; no manual scrub — the periodic one must find it.
  const Metadata* meta = tc.cluster.kls(0).meta_store().find(r.ov);
  ASSERT_NE(meta, nullptr);
  core::FragmentServer* victim = nullptr;
  for (int i = 0; i < tc.cluster.num_fs(); ++i) {
    if (tc.cluster.fs(i).id() == meta->locs[0]->fs) victim = &tc.cluster.fs(i);
  }
  ASSERT_TRUE(victim->corrupt_fragment(r.ov, 0));
  ASSERT_EQ(tc.cluster.classify(r.ov), core::VersionStatus::kDurableNotAmr);

  tc.run_for(testing::minutes(30));
  EXPECT_EQ(tc.cluster.classify(r.ov), core::VersionStatus::kAmr);
  EXPECT_GT(victim->scrubs_run(), 0u);
}

TEST(FsScrubTest, ScrubWithNothingDamagedAddsNoWork) {
  core::ConvergenceOptions conv = core::ConvergenceOptions::all_opts();
  conv.scrub_interval = testing::minutes(5);
  SimCluster tc(conv);
  const auto r = tc.put(Key{"k"}, tc.make_value(1024));
  tc.run_for(testing::minutes(60));
  EXPECT_EQ(tc.cluster.classify(r.ov), core::VersionStatus::kAmr);
  EXPECT_EQ(tc.cluster.total_pending_versions(), 0u);
}

}  // namespace
}  // namespace pahoehoe
