// Tests for the causal span tracer (obs/span.h) and the critical-path
// decomposition (obs/critical_path.h): exactness of the put-ack → AMR
// attribution against the AmrTracker, presence of the lifecycle spans under
// a long FS blackout, byte-identical aggregation for every --jobs value,
// Perfetto export round-tripping through the JSON parser, the pure-observer
// guarantee, and the chaos sweep's forensics + exit-code contracts.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "chaos/sweep.h"
#include "core/harness.h"
#include "obs/json.h"
#include "test_util.h"

namespace pahoehoe {
namespace {

using obs::JsonValue;
using obs::JsonWriter;

core::RunConfig traced_config(int puts = 1) {
  core::RunConfig config = core::paper_default_config();
  config.convergence = core::ConvergenceOptions::all_opts();
  config.workload.num_puts = puts;
  config.workload.value_size = 16 * 1024;
  config.telemetry.spans = true;
  return config;
}

/// One put behind a 10-minute blackout of FS (0,0): the put still acks (10
/// of the 12 fragments land, ≥ min_frags_for_success = 8) but AMR has to
/// wait for convergence to push the last two fragments once the FS returns.
core::RunConfig blackout_config() {
  core::RunConfig config = traced_config(1);
  config.faults.push_back(
      core::FaultSpec::fs_blackout(0, 0, 0, testing::minutes(10)));
  return config;
}

TEST(SpanTest, CriticalPathComponentsSumExactlyToTimeToAmr) {
  const core::RunResult result = core::run_experiment(blackout_config());
  ASSERT_TRUE(result.audit.passed()) << result.audit.to_string();
  ASSERT_EQ(result.puts_acked, 1);
  ASSERT_EQ(result.critical_paths.size(), 1u);

  const obs::VersionCriticalPath& path = result.critical_paths[0];
  EXPECT_GT(path.confirm_time, path.ack_time);
  // The attribution clock banks every interval into exactly one component,
  // so the components telescope to the ack → confirm distance with no gap
  // and no overlap — integer microseconds, compared exactly.
  SimTime sum = 0;
  for (const SimTime c : path.components) {
    EXPECT_GE(c, 0);
    sum += c;
  }
  EXPECT_EQ(sum, path.confirm_time - path.ack_time);
  EXPECT_EQ(sum, path.total());

  // And the sum must agree with what the AmrTracker reported: one sample,
  // and QuantileSketch min/max are exact, so this is bitwise equality of
  // the same double computation.
  ASSERT_EQ(result.time_to_amr_s.count(), 1u);
  EXPECT_EQ(result.time_to_amr_s.quantile(1.0),
            static_cast<double>(sum) /
                static_cast<double>(kMicrosPerSecond));

  // Ten minutes of blackout dwarf everything else: the wait components
  // (round scheduling + recovery backoff) must dominate.
  const SimTime waits =
      path.components[static_cast<size_t>(
          obs::PathComponent::kRoundScheduling)] +
      path.components[static_cast<size_t>(
          obs::PathComponent::kRecoveryBackoff)];
  EXPECT_GT(waits, testing::minutes(5));
}

TEST(SpanTest, BlackoutLifecycleTreeHasConvergenceAndBackoffSpans) {
  core::RunResult result = core::run_experiment(blackout_config());
  ASSERT_TRUE(result.audit.passed()) << result.audit.to_string();
  const std::vector<ObjectVersionId> versions = result.spans.versions();
  ASSERT_EQ(versions.size(), 1u);
  const ObjectVersionId& ov = versions[0];
  EXPECT_TRUE(result.spans.has_version(ov));
  EXPECT_GT(result.spans.span_count(ov), 20u);
  EXPECT_EQ(result.spans.spans_dropped(), 0u);

  const std::string tree = result.spans.render_tree(ov);
  for (const char* needle :
       {"put", "erasure_encode", "msg ", "converge_round", "backoff_wait",
        "amr_confirmed", "time_to_amr", "critical_path:", "network_wait"}) {
    EXPECT_NE(tree.find(needle), std::string::npos)
        << "span tree missing \"" << needle << "\":\n" << tree;
  }
  // Renders are deterministic: same run, same bytes.
  core::RunResult again = core::run_experiment(blackout_config());
  EXPECT_EQ(tree, again.spans.render_tree(ov));
}

TEST(SpanTest, EnablingSpansDoesNotPerturbTheRun) {
  core::RunConfig off = blackout_config();
  off.telemetry.spans = false;
  const core::RunResult a = core::run_experiment(off);
  const core::RunResult b = core::run_experiment(blackout_config());
  // Pure observer: no events, no RNG draws, identical simulation.
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.stats.total_sent_count(), b.stats.total_sent_count());
  EXPECT_EQ(a.stats.total_sent_bytes(), b.stats.total_sent_bytes());
  EXPECT_EQ(a.metrics.to_text(), b.metrics.to_text());
  EXPECT_EQ(a.spans.versions().size(), 0u);  // off: nothing traced
}

TEST(SpanTest, AggregateCriticalPathByteIdenticalAcrossJobCounts) {
  core::RunConfig config = traced_config(3);
  constexpr int kSeeds = 5;
  std::optional<std::string> base;
  for (const int jobs : {1, 2, 8}) {
    core::AggregateResult agg = core::run_many(config, kSeeds, 7, jobs);
    EXPECT_EQ(agg.critical_path.versions(),
              static_cast<uint64_t>(kSeeds) * 3u);
    const std::string text = agg.critical_path.to_text();
    EXPECT_NE(text.find("network_wait"), std::string::npos);
    if (!base.has_value()) {
      base = text;
    } else {
      EXPECT_EQ(*base, text) << "jobs=" << jobs;
    }
  }
}

TEST(SpanTest, PerfettoExportRoundTripsThroughJsonParse) {
  core::RunResult result = core::run_experiment(blackout_config());
  JsonWriter w;
  result.spans.export_perfetto(w);
  const std::optional<JsonValue> doc = obs::json_parse(w.str());
  ASSERT_TRUE(doc.has_value()) << "export is not valid JSON";
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_GT(events->array.size(), 20u);

  size_t metadata = 0, complete = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    const JsonValue* pid = e.find("pid");
    ASSERT_NE(pid, nullptr);
    EXPECT_GE(pid->number, 0.0);  // pid is the node id value
    ASSERT_NE(e.find("tid"), nullptr);
    ASSERT_NE(e.find("name"), nullptr);
    if (ph->string == "M") {
      ++metadata;
      EXPECT_EQ(e.find("name")->string, "process_name");
    } else {
      ASSERT_EQ(ph->string, "X") << "unexpected event phase";
      ++complete;
      ASSERT_NE(e.find("ts"), nullptr);
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_GE(e.find("ts")->number, 0.0);
      EXPECT_GE(e.find("dur")->number, 0.0);
    }
  }
  EXPECT_GT(metadata, 0u);  // one process_name per node
  EXPECT_EQ(complete, result.spans.span_count(result.spans.versions()[0]));
}

TEST(SpanTest, SpanForensicsNameTheViolatingVersion) {
  // Give up before the blackout lifts (but after min_age, so convergence
  // rounds do run first): the acked version stays durable but never reaches
  // AMR, and the audit's kDurableNotAmr violation names it, so the harness
  // attaches its span tree as forensics.
  core::RunConfig config = blackout_config();
  config.convergence.giveup_age = testing::minutes(7);
  const core::RunResult result = core::run_experiment(config);
  ASSERT_FALSE(result.audit.passed());
  ASSERT_FALSE(result.span_forensics.empty());
  EXPECT_NE(result.span_forensics.find("version "), std::string::npos);
  EXPECT_NE(result.span_forensics.find("converge_round"), std::string::npos);
}

// --- chaos sweep integration ------------------------------------------------

TEST(ChaosSpanTest, DriftOnlyFailureMakesTheSweepExitNonZero) {
  // No faults at all: every audited protocol invariant holds, and the
  // injected phantom trace record makes kTelemetryDrift the run's ONLY
  // violation. The sweep must still fail and exit non-zero — this is the
  // regression test for chaos_cli's exit code.
  core::RunConfig config = traced_config(2);
  config.telemetry.trace_capacity = 512;
  config.telemetry.inject_trace_drift = true;

  chaos::SweepOptions options;
  options.seeds = 2;
  options.shrink_failures = false;  // drift is not a schedule property
  options.schedule.corruption = false;
  options.schedule.crashes = false;
  options.schedule.proxy_crashes = false;
  options.schedule.partitions = false;
  options.schedule.loss = false;
  options.schedule.blackouts = false;
  options.schedule.duplication = false;
  options.schedule.disk_destroys = false;

  const chaos::SweepResult result = chaos::run_sweep(config, options);
  EXPECT_EQ(result.failures, 2);
  EXPECT_FALSE(result.passed());
  EXPECT_NE(result.exit_code(), 0);
  for (const chaos::SeedOutcome& outcome : result.outcomes) {
    ASSERT_EQ(outcome.audit.violations.size(), 1u);
    EXPECT_EQ(outcome.audit.violations[0].kind,
              core::InvariantViolation::Kind::kTelemetryDrift);
  }
  // Sanity: without the injection the same sweep passes with exit code 0.
  config.telemetry.inject_trace_drift = false;
  const chaos::SweepResult clean = chaos::run_sweep(config, options);
  EXPECT_TRUE(clean.passed());
  EXPECT_EQ(clean.exit_code(), 0);
}

TEST(ChaosSpanTest, FailingSeedForensicsIncludeTheSpanTree) {
  core::RunConfig config = traced_config(1);
  config.faults.push_back(
      core::FaultSpec::fs_blackout(0, 0, 0, testing::minutes(10)));
  config.convergence.giveup_age = testing::minutes(7);
  config.telemetry.trace_capacity = 256;

  chaos::SweepOptions options;
  options.seeds = 1;
  options.shrink_failures = false;
  options.schedule.corruption = false;
  options.schedule.crashes = false;
  options.schedule.proxy_crashes = false;
  options.schedule.partitions = false;
  options.schedule.loss = false;
  options.schedule.blackouts = false;
  options.schedule.duplication = false;
  options.schedule.disk_destroys = false;

  const chaos::SweepResult result = chaos::run_sweep(config, options);
  ASSERT_EQ(result.failures, 1);
  const std::string& forensics = result.outcomes[0].forensics;
  EXPECT_NE(forensics.find("span tree of first violating version"),
            std::string::npos);
  EXPECT_NE(forensics.find("converge_round"), std::string::npos);
  // And turning spans off removes only the forensics detail, not the
  // verdict.
  options.spans = false;
  const chaos::SweepResult plain = chaos::run_sweep(config, options);
  ASSERT_EQ(plain.failures, 1);
  EXPECT_EQ(plain.outcomes[0].forensics.find("span tree"), std::string::npos);
}

TEST(ChaosSpanTest, FailingSeedForensicsIncludeTailAttribution) {
  // A blackout long enough to put recovery_backoff on the critical path,
  // with the audit failure coming from the drift injection rather than
  // give-up — versions still resolve, so the violating seed's forensics
  // must carry the cohort attribution naming which component carries the
  // tail, and the exemplar lines pointing at concrete versions.
  core::RunConfig config = traced_config(3);
  config.faults.push_back(
      core::FaultSpec::fs_blackout(0, 0, 0, testing::minutes(10)));
  config.telemetry.inject_trace_drift = true;

  chaos::SweepOptions options;
  options.seeds = 1;
  options.shrink_failures = false;
  options.schedule.corruption = false;
  options.schedule.crashes = false;
  options.schedule.proxy_crashes = false;
  options.schedule.partitions = false;
  options.schedule.loss = false;
  options.schedule.blackouts = false;
  options.schedule.duplication = false;
  options.schedule.disk_destroys = false;

  const chaos::SweepResult result = chaos::run_sweep(config, options);
  ASSERT_EQ(result.failures, 1);
  const std::string& forensics = result.outcomes[0].forensics;
  EXPECT_NE(forensics.find("tail attribution:"), std::string::npos);
  EXPECT_NE(forensics.find("of gap"), std::string::npos);
  EXPECT_NE(forensics.find("top exemplar key="), std::string::npos);
  // Exemplars ride the spans knob: off means no attribution forensics,
  // same verdict.
  options.spans = false;
  const chaos::SweepResult plain = chaos::run_sweep(config, options);
  ASSERT_EQ(plain.failures, 1);
  EXPECT_EQ(plain.outcomes[0].forensics.find("tail attribution"),
            std::string::npos);
}

}  // namespace
}  // namespace pahoehoe
