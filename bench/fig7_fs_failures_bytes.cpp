// Figure 7 — "FS failures and message bytes": the same sweep as Figure 6
// reported in bytes sent.
//
// Expected shape (paper §5.3): bytes are dominated by fragment transfer;
// sibling fragment recovery amortizes the mandatory k-fragment read over
// all missing fragments, so with (k=4, n=12) recovery costs only about one
// third more network capacity than the no-failure case.
#include <cstdio>

#include "common/flags.h"
#include "sweeps.h"

int main(int argc, char** argv) {
  using namespace pahoehoe;
  Flags flags(argc, argv);
  const int seeds =
      static_cast<int>(flags.get_int("seeds", 20, "seeds per configuration"));
  const int puts = static_cast<int>(flags.get_int("puts", 100, "puts"));
  const int object_kib =
      static_cast<int>(flags.get_int("object-kib", 100, "object size (KiB)"));
  const int max_failures = static_cast<int>(
      flags.get_int("max-failures", 4, "maximum simultaneous FS failures"));
  const int jobs = static_cast<int>(
      flags.get_int("jobs", 1, "worker threads for seed dispatch"));
  const std::string out =
      flags.get_string("out", "BENCH_fig7.json", "JSON output path");
  flags.finish();

  core::RunConfig config = core::paper_default_config();
  config.workload.num_puts = puts;
  config.workload.value_size = static_cast<size_t>(object_kib) * 1024;

  std::printf(
      "Figure 7 — FS failures and message bytes: %d puts of %d KiB, 10 min "
      "blackouts, %d seeds\n\n",
      puts, object_kib, seeds);
  const auto columns = bench::run_fs_failure_sweep(config, seeds, max_failures, jobs);
  bench::print_grouped(columns, bench::Metric::kBytes, 4);

  std::printf("Totals (MiB):\n");
  for (const auto& col : columns) {
    std::printf("  %-12s %8.2f  (+/- %.2f)\n", col.label.c_str(),
                col.agg.msg_bytes.mean() / (1024.0 * 1024.0),
                col.agg.msg_bytes.ci95_halfwidth() / (1024.0 * 1024.0));
  }

  bench::write_columns_json(out, "fig7_fs_failures_bytes", seeds, jobs,
                            columns);
  return 0;
}
