// The failure sweeps behind Figures 6–8, shared by the per-figure benches.
#pragma once

#include <string>
#include <vector>

#include "bench_util.h"

namespace pahoehoe::bench {

inline SimTime ten_minutes() { return 10LL * 60 * kMicrosPerSecond; }

struct OptPreset {
  const char* label;
  core::ConvergenceOptions conv;
};

/// The four optimization settings of §5.3's sweeps.
inline std::vector<OptPreset> sweep_presets() {
  return {
      {"PutAMR", core::ConvergenceOptions::put_amr()},
      {"FSAMR", core::ConvergenceOptions::fs_amr_unsync()},
      {"Sibling", core::ConvergenceOptions::sibling_only()},
      {"All", core::ConvergenceOptions::all_opts()},
  };
}

/// FSs to black out for a given failure count, "roughly balanced between
/// data centers" (§5.3): alternate DCs.
inline std::vector<core::FaultSpec> fs_blackouts(int failures) {
  std::vector<core::FaultSpec> faults;
  for (int f = 0; f < failures; ++f) {
    const int dc = f % 2;
    const int index = f / 2;
    faults.push_back(
        core::FaultSpec::fs_blackout(dc, index, 0, ten_minutes()));
  }
  return faults;
}

/// KLS failure cases of Figure 8: 0, 1, 2C (one per DC — network stays
/// connected), 2P (both KLSs of DC 1 — WAN-partition-like), 3.
struct KlsCase {
  const char* label;
  std::vector<core::FaultSpec> faults;
};

inline std::vector<KlsCase> kls_cases() {
  const SimTime len = ten_minutes();
  return {
      {"0", {}},
      {"1", {core::FaultSpec::kls_blackout(0, 0, 0, len)}},
      {"2C",
       {core::FaultSpec::kls_blackout(0, 0, 0, len),
        core::FaultSpec::kls_blackout(1, 0, 0, len)}},
      {"2P",
       {core::FaultSpec::kls_blackout(1, 0, 0, len),
        core::FaultSpec::kls_blackout(1, 1, 0, len)}},
      {"3",
       {core::FaultSpec::kls_blackout(0, 0, 0, len),
        core::FaultSpec::kls_blackout(1, 0, 0, len),
        core::FaultSpec::kls_blackout(1, 1, 0, len)}},
  };
}

/// Run the Figure 6/7 sweep: failures ∈ [0, max_failures] × presets.
/// Column labels follow the paper: "<failures>-<opts>". The 0-failure case
/// is run only with All (the paper's 0-All reference point).
inline std::vector<Column> run_fs_failure_sweep(core::RunConfig config,
                                                int seeds, int max_failures,
                                                int jobs = 1) {
  std::vector<Column> columns;
  config.faults = {};
  config.convergence = core::ConvergenceOptions::all_opts();
  columns.push_back(Column{"0-All", core::run_many(config, seeds, 500, jobs)});
  for (int failures = 1; failures <= max_failures; ++failures) {
    for (const auto& preset : sweep_presets()) {
      config.convergence = preset.conv;
      config.faults = fs_blackouts(failures);
      columns.push_back(
          Column{std::to_string(failures) + "-" + preset.label,
                 core::run_many(config, seeds, 500, jobs)});
    }
  }
  return columns;
}

inline std::vector<Column> run_kls_failure_sweep(core::RunConfig config,
                                                 int seeds, int jobs = 1) {
  std::vector<Column> columns;
  for (const auto& kls_case : kls_cases()) {
    if (std::string(kls_case.label) == "0") {
      config.convergence = core::ConvergenceOptions::all_opts();
      config.faults = kls_case.faults;
      columns.push_back(
          Column{"0-All", core::run_many(config, seeds, 700, jobs)});
      continue;
    }
    for (const auto& preset : sweep_presets()) {
      config.convergence = preset.conv;
      config.faults = kls_case.faults;
      columns.push_back(
          Column{std::string(kls_case.label) + "-" + preset.label,
                 core::run_many(config, seeds, 700, jobs)});
    }
  }
  return columns;
}

/// Chunk wide sweeps into printable groups of `group` columns.
inline void print_grouped(const std::vector<Column>& columns, Metric metric,
                          size_t group, bool wan_row = false) {
  for (size_t begin = 0; begin < columns.size(); begin += group) {
    const size_t end = std::min(columns.size(), begin + group);
    std::vector<Column> slice(columns.begin() + static_cast<long>(begin),
                              columns.begin() + static_cast<long>(end));
    print_breakdown(slice, metric);
    if (wan_row) print_wan_row(slice);
    std::printf("\n");
  }
}

}  // namespace pahoehoe::bench
