// Convergence telemetry bench (observability; not a paper figure): how long
// after the client ack object versions reach At Maximum Redundancy, and how
// the non-AMR backlog drains over simulated time, per convergence variant.
// This is the quantity the paper's §5 message-count figures are a proxy
// for — the optimizations trade messages against how quickly the system can
// *know* it is safe.
//
// Output: a human-readable table and BENCH_telemetry.json with, per
// variant, the pooled put-ack → AMR latency quantiles (p50/p95/p99), the
// span tracer's critical-path decomposition of that latency (per-component
// p50/p95 seconds and share of time-to-AMR), and the sampled
// backlog/pending/messages time-series (cross-seed means on the shared tick
// grid).
//
// Examples:
//   ./build/bench/convergence_telemetry
//   ./build/bench/convergence_telemetry --seeds=30 --jobs=8
//   ./build/bench/convergence_telemetry --puts=6 --seeds=2 --selfcheck
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "core/harness.h"

namespace pahoehoe {
namespace {

struct Variant {
  std::string name;
  core::AggregateResult agg;
  uint64_t acked_total = 0;  ///< exact, from the merged metric registry
};

/// Schema validation for the ctest smoke target: re-read the emitted file
/// and check the keys exist, the time axis is strictly increasing, and the
/// latency histogram accounts for every acked put. Prints the first
/// problem; returns false on any.
bool selfcheck(const std::string& path, size_t min_variants) {
  const auto fail = [&path](const char* what) {
    std::fprintf(stderr, "selfcheck %s: %s\n", path.c_str(), what);
    return false;
  };
  const std::optional<obs::JsonValue> doc = obs::json_parse_file(path);
  if (!doc.has_value()) return fail("unreadable or invalid JSON");
  for (const char* key :
       {"bench", "seeds", "puts", "object_kib", "sample_interval_s",
        "variants"}) {
    if (doc->find(key) == nullptr) return fail("missing top-level key");
  }
  std::string meta_error;
  if (!bench::check_meta(*doc, &meta_error)) return fail(meta_error.c_str());
  const obs::JsonValue* profile = doc->find("profile");
  if (profile == nullptr || !profile->is_array()) {
    return fail("profile array missing");
  }
  const obs::JsonValue* variants = doc->find("variants");
  if (!variants->is_array() || variants->array.size() < min_variants) {
    return fail("fewer variants than expected");
  }
  for (const obs::JsonValue& variant : variants->array) {
    for (const char* key :
         {"name", "time_to_amr_s", "amr_confirmed", "acked_total",
          "backlog_final", "timeline"}) {
      if (variant.find(key) == nullptr) return fail("missing variant key");
    }
    const obs::JsonValue* latency = variant.find("time_to_amr_s");
    for (const char* key : {"count", "p50", "p95", "p99", "max"}) {
      if (latency->find(key) == nullptr) return fail("missing quantile key");
    }
    // Failure-free runs drive every acked put to AMR, so the histogram must
    // account for exactly the acked ops (the "counts sum to ops" check).
    if (latency->find("count")->number !=
        variant.find("acked_total")->number) {
      return fail("latency count != acked puts");
    }
    // Critical-path decomposition: all four components present, versions
    // matching the latency sample count, shares inside [0, 1].
    const obs::JsonValue* path = variant.find("critical_path");
    if (path == nullptr) return fail("missing critical_path");
    if (path->find("versions") == nullptr ||
        path->find("versions")->number != latency->find("count")->number) {
      return fail("critical_path versions != time_to_amr count");
    }
    const obs::JsonValue* components = path->find("components");
    if (components == nullptr) return fail("missing critical_path components");
    for (const char* name : {"network_wait", "round_scheduling",
                             "recovery_backoff", "server_processing"}) {
      const obs::JsonValue* component = components->find(name);
      if (component == nullptr) return fail("missing path component");
      for (const char* key :
           {"total_s", "p50_s", "p95_s", "share_p50", "share_p95"}) {
        const obs::JsonValue* field = component->find(key);
        if (field == nullptr || field->number < 0) {
          return fail("missing or negative path component field");
        }
      }
      if (component->find("share_p95")->number > 1.0 + 1e-9) {
        return fail("path component share above 1");
      }
    }
    // Tail attribution: cohorts partition the resolved versions, gap
    // shares are proper fractions, and every retained exemplar's integer
    // component micros telescope exactly to its reported latency.
    const obs::JsonValue* attribution = variant.find("tail_attribution");
    if (attribution == nullptr) return fail("missing tail_attribution");
    const std::optional<obs::AttributionReport> report =
        obs::attribution_from_json(*attribution);
    if (!report.has_value()) return fail("tail_attribution fails to parse");
    if (static_cast<double>(report->versions) !=
        latency->find("count")->number) {
      return fail("tail_attribution versions != time_to_amr count");
    }
    if (report->tail.versions + report->body.versions != report->versions) {
      return fail("tail + body cohorts do not partition the versions");
    }
    if (report->ranked.size() != obs::kPathComponentCount) {
      return fail("tail_attribution missing ranked components");
    }
    for (const obs::ComponentGap& gap : report->ranked) {
      if (gap.gap_share < 0.0 || gap.gap_share > 1.0 + 1e-9) {
        return fail("tail_attribution gap share outside [0, 1]");
      }
    }
    for (const obs::Exemplar& exemplar : report->top) {
      SimTime sum = 0;
      for (SimTime micros : exemplar.components) sum += micros;
      if (sum != exemplar.latency_micros) {
        return fail("exemplar components do not telescope to its latency");
      }
    }
    const obs::JsonValue* timeline = variant.find("timeline");
    const obs::JsonValue* t = timeline->find("t_s");
    if (t == nullptr || !t->is_array() || t->array.empty()) {
      return fail("missing timeline.t_s");
    }
    for (size_t i = 1; i < t->array.size(); ++i) {
      if (!(t->array[i - 1].number < t->array[i].number)) {
        return fail("timeline t_s not strictly increasing");
      }
    }
    for (const char* column :
         {"amr_backlog", "pending_versions", "msgs_sent", "bytes_sent"}) {
      const obs::JsonValue* series = timeline->find(column);
      if (series == nullptr || !series->is_array() ||
          series->array.size() != t->array.size()) {
        return fail("timeline column missing or misaligned");
      }
    }
  }
  std::printf("selfcheck %s: ok\n", path.c_str());
  return true;
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  const int seeds =
      static_cast<int>(flags.get_int("seeds", 10, "seeds per variant"));
  const int puts = static_cast<int>(flags.get_int("puts", 100, "puts"));
  const int object_kib =
      static_cast<int>(flags.get_int("object-kib", 100, "object size (KiB)"));
  const int jobs = static_cast<int>(
      flags.get_int("jobs", 1, "worker threads for seed dispatch"));
  const double sample_interval_s = flags.get_double(
      "sample-interval-s", 10.0, "time-series sampling interval (sim s)");
  const double blackout_min = flags.get_double(
      "blackout-min", 10.0,
      "black out FS (0,0) for this many minutes spanning the puts (0 = "
      "failure-free; then AMR concludes on the put path and all variants "
      "collapse to milliseconds)");
  const std::string out =
      flags.get_string("out", "BENCH_telemetry.json", "JSON output path");
  const bool check = flags.get_bool(
      "selfcheck", false, "re-parse the emitted JSON and validate it");
  flags.finish();

  core::RunConfig config = core::paper_default_config();
  config.workload.num_puts = puts;
  config.workload.value_size = static_cast<size_t>(object_kib) * 1024;
  config.telemetry.sample_interval =
      static_cast<SimTime>(sample_interval_s * kMicrosPerSecond);
  // Span tracing feeds the per-variant critical-path decomposition, and
  // exemplars+attribution are carved out of it; both are pure observers, so
  // the measured runs are unchanged.
  config.telemetry.spans = true;
  config.telemetry.exemplars = true;
  if (blackout_min > 0) {
    config.faults.push_back(core::FaultSpec::fs_blackout(
        0, 0, 0,
        static_cast<SimTime>(blackout_min * 60 * kMicrosPerSecond)));
  }

  struct Preset {
    const char* label;
    core::ConvergenceOptions conv;
  };
  const std::vector<Preset> presets = {
      {"none", core::ConvergenceOptions::naive()},
      {"FSAMR-S", core::ConvergenceOptions::fs_amr_sync()},
      {"FSAMR-U", core::ConvergenceOptions::fs_amr_unsync()},
      {"All", core::ConvergenceOptions::all_opts()},
  };

  std::printf("convergence telemetry: %d puts of %d KiB, %d seeds, "
              "sampling every %gs, FS blackout %g min\n\n",
              puts, object_kib, seeds, sample_interval_s, blackout_min);
  std::printf("%-10s %10s %10s %10s %10s %10s %8s\n", "variant", "acked",
              "p50 (s)", "p95 (s)", "p99 (s)", "max (s)", "samples");

  // Profile the measured runs; the merged per-seed phase tables land in the
  // JSON's profile section. Pure side channel — the simulated results are
  // byte-identical with this off (DESIGN.md §11, prof_test).
  obs::prof::set_enabled(true);
  obs::ProfReport profile;
  std::vector<Variant> variants;
  for (const Preset& preset : presets) {
    config.convergence = preset.conv;
    Variant v;
    v.name = preset.label;
    v.agg = core::run_many(config, seeds, /*base_seed=*/5000, jobs);
    v.acked_total = v.agg.metrics.counter_sum("amr_acked_total");
    const QuantileSketch& lat = v.agg.time_to_amr_s;
    std::printf("%-10s %10llu %10.2f %10.2f %10.2f %10.2f %8zu\n",
                v.name.c_str(), static_cast<unsigned long long>(v.acked_total),
                lat.quantile(0.50), lat.quantile(0.95), lat.quantile(0.99),
                lat.max(), v.agg.timeline.rows().size());
    std::printf("%-10s   p50 share of time-to-AMR:", "");
    for (size_t c = 0; c < obs::kPathComponentCount; ++c) {
      const auto component = static_cast<obs::PathComponent>(c);
      std::printf(" %s %.2f", obs::to_string(component),
                  v.agg.critical_path.share(component).quantile(0.50));
    }
    std::printf("\n");
    std::fflush(stdout);
    profile.merge(v.agg.profile);
    variants.push_back(std::move(v));
  }
  obs::prof::set_enabled(false);

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "convergence_telemetry");
  bench::json_meta(w, jobs);
  w.kv("seeds", seeds);
  w.kv("puts", puts);
  w.kv("object_kib", object_kib);
  w.kv("sample_interval_s", sample_interval_s);
  w.key("variants");
  w.begin_array();
  for (const Variant& v : variants) {
    w.begin_object();
    w.kv("name", v.name);
    w.key("time_to_amr_s");
    bench::json_quantiles(w, v.agg.time_to_amr_s);
    w.kv("acked_total", v.acked_total);
    w.key("amr_confirmed");
    bench::json_stat(w, v.agg.amr_confirmed);
    w.key("backlog_final");
    bench::json_stat(w, v.agg.amr_backlog_final);
    w.key("critical_path");
    w.begin_object();
    w.kv("versions", v.agg.critical_path.versions());
    w.key("components");
    w.begin_object();
    for (size_t c = 0; c < obs::kPathComponentCount; ++c) {
      const auto component = static_cast<obs::PathComponent>(c);
      w.key(obs::to_string(component));
      w.begin_object();
      w.kv("total_s",
           static_cast<double>(v.agg.critical_path.total_micros(component)) /
               static_cast<double>(kMicrosPerSecond));
      const QuantileSketch& secs = v.agg.critical_path.seconds(component);
      w.kv("p50_s", secs.quantile(0.50));
      w.kv("p95_s", secs.quantile(0.95));
      const QuantileSketch& shr = v.agg.critical_path.share(component);
      w.kv("share_p50", shr.quantile(0.50));
      w.kv("share_p95", shr.quantile(0.95));
      w.end_object();
    }
    w.end_object();
    w.end_object();
    w.key("tail_attribution");
    obs::attribution_to_json(w, v.agg.attribution);
    w.key("timeline");
    w.begin_object();
    const obs::TimeSeries& series = v.agg.timeline;
    w.key("t_s");
    w.begin_array();
    for (const auto& row : series.rows()) {
      w.value(static_cast<double>(row.t) /
              static_cast<double>(kMicrosPerSecond));
    }
    w.end_array();
    for (size_t c = 0; c < series.columns().size(); ++c) {
      w.key(series.columns()[c]);
      w.begin_array();
      for (size_t r = 0; r < series.rows().size(); ++r) {
        w.value(series.value(r, c));
      }
      w.end_array();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  bench::json_profile(w, profile);
  w.end_object();
  if (!w.write_file(out)) return 1;
  std::printf("\nwrote %s\n", out.c_str());

  if (check && !selfcheck(out, /*min_variants=*/3)) return 1;
  return 0;
}

}  // namespace
}  // namespace pahoehoe

int main(int argc, char** argv) { return pahoehoe::run(argc, argv); }
