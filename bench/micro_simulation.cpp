// End-to-end simulation throughput: how fast the whole stack (proxy + KLS +
// FS + convergence + codec + wire + simulator) executes the paper's
// workloads. Useful for judging how long the figure sweeps take and for
// catching performance regressions in the protocol hot paths.
#include <benchmark/benchmark.h>

#include "core/harness.h"

namespace pahoehoe {
namespace {

core::RunConfig config_for(int puts, size_t value_size,
                           core::ConvergenceOptions conv) {
  core::RunConfig config = core::paper_default_config();
  config.workload.num_puts = puts;
  config.workload.value_size = value_size;
  config.convergence = conv;
  return config;
}

void BM_FailureFreePuts(benchmark::State& state) {
  const int puts = static_cast<int>(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    auto config =
        config_for(puts, 100 * 1024, core::ConvergenceOptions::all_opts());
    config.seed = seed++;
    const auto r = core::run_experiment(config);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * puts);
}
BENCHMARK(BM_FailureFreePuts)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_NaiveConvergenceRun(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    auto config =
        config_for(25, 100 * 1024, core::ConvergenceOptions::naive());
    config.seed = seed++;
    const auto r = core::run_experiment(config);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 25);
}
BENCHMARK(BM_NaiveConvergenceRun)->Unit(benchmark::kMillisecond);

void BM_FsFailureRepairRun(benchmark::State& state) {
  // The fig-6 inner loop: one FS blacked out 10 minutes, full repair.
  uint64_t seed = 1;
  for (auto _ : state) {
    auto config =
        config_for(25, 100 * 1024, core::ConvergenceOptions::all_opts());
    config.seed = seed++;
    config.faults.push_back(core::FaultSpec::fs_blackout(
        0, 0, 0, 10LL * 60 * kMicrosPerSecond));
    const auto r = core::run_experiment(config);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 25);
}
BENCHMARK(BM_FsFailureRepairRun)->Unit(benchmark::kMillisecond);

void BM_LossyRetryRun(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    auto config =
        config_for(25, 100 * 1024, core::ConvergenceOptions::all_opts());
    config.seed = seed++;
    config.workload.retry_failed = true;
    config.faults.push_back(core::FaultSpec::uniform_loss(0.10));
    const auto r = core::run_experiment(config);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 25);
}
BENCHMARK(BM_LossyRetryRun)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pahoehoe

BENCHMARK_MAIN();
