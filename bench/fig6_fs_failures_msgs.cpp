// Figure 6 — "FS failures and message count": total messages (per type) to
// bring 100 puts of 100 KiB to AMR while 0–4 Fragment Servers are blacked
// out for 10 minutes spanning the put phase, for optimization settings
// PutAMR, FSAMR, Sibling, and All.
//
// Expected shape (paper §5.3): failures dominate counts; FSAMR and Sibling
// each cut messages and their effects accumulate; the total drops as more
// FSs are unavailable because fewer live FSs generate convergence traffic.
#include <cstdio>

#include "common/flags.h"
#include "sweeps.h"

int main(int argc, char** argv) {
  using namespace pahoehoe;
  Flags flags(argc, argv);
  const int seeds =
      static_cast<int>(flags.get_int("seeds", 20, "seeds per configuration"));
  const int puts = static_cast<int>(flags.get_int("puts", 100, "puts"));
  const int object_kib =
      static_cast<int>(flags.get_int("object-kib", 100, "object size (KiB)"));
  const int max_failures = static_cast<int>(
      flags.get_int("max-failures", 4, "maximum simultaneous FS failures"));
  const int jobs = static_cast<int>(
      flags.get_int("jobs", 1, "worker threads for seed dispatch"));
  const std::string out =
      flags.get_string("out", "BENCH_fig6.json", "JSON output path");
  flags.finish();

  core::RunConfig config = core::paper_default_config();
  config.workload.num_puts = puts;
  config.workload.value_size = static_cast<size_t>(object_kib) * 1024;

  std::printf(
      "Figure 6 — FS failures and message count: %d puts of %d KiB, 10 min "
      "blackouts, %d seeds\n\n",
      puts, object_kib, seeds);
  const auto columns = bench::run_fs_failure_sweep(config, seeds, max_failures, jobs);
  bench::print_grouped(columns, bench::Metric::kCount, 4);

  std::printf("Totals (10^3 messages):\n");
  for (const auto& col : columns) {
    std::printf("  %-12s %8.2f  (+/- %.2f)\n", col.label.c_str(),
                col.agg.msg_count.mean() / 1e3,
                col.agg.msg_count.ci95_halfwidth() / 1e3);
  }

  bench::write_columns_json(out, "fig6_fs_failures_msgs", seeds, jobs,
                            columns);
  return 0;
}
