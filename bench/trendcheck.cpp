// Bench-trajectory regression gate: compares fresh BENCH_erasure.json /
// BENCH_telemetry.json documents against the committed per-host-class
// baselines under bench/baselines/ and exits non-zero when a gated series
// regressed beyond its relative tolerance.
//
// Gate design — why this catches a >= 20% encode regression without
// flaking on machine-to-machine variance:
//  * erasure, machine-normalized (tol 15%): the best-kernel speedup vs
//    scalar, and encode/decode throughput divided by the same kernel's raw
//    mul_acc throughput. A uniform encode-path regression moves the ratio
//    one-for-one while mul_acc is untouched; a SIMD-kernel regression
//    moves the speedup. Either way a 20% loss trips the 15% gate.
//  * erasure, absolute MB/s (tol 60%): a catastrophe net only — catches
//    "accidentally shipping the scalar path" class failures on same-class
//    hosts without gating on exact clock speeds.
//  * telemetry (band 10%, counts exact): simulated quantiles are
//    deterministic given the flags, so they move only when behavior does.
//
// Host class = the best GF(2^8) kernel the host supports (avx2 / ssse3 /
// scalar): baselines/erasure-<class>.json. Telemetry results are simulated
// and host-independent: baselines/telemetry.json.
//
// A missing baseline for this host class, or a baseline generated with
// different flags/kernels, is a SKIP with notice (exit 0) so CI on exotic
// runners degrades gracefully; --require turns skips into failures.
// --write-baseline installs the fresh documents as the new baselines.
// --selftest proves the gate engine itself on synthetic documents,
// including that an injected 20% encode-throughput regression fails.
//
// Examples:
//   ./build/bench/micro_erasure --selfcheck --target-ms=200
//   ./build/bench/convergence_telemetry --puts=6 --seeds=2 --jobs=2
//       --object-kib=8 --sample-interval-s=5 --selfcheck
//   ./build/bench/trendcheck                       # gate both documents
//   ./build/bench/trendcheck --write-baseline      # refresh baselines
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "erasure/gf256.h"
#include "obs/attribution.h"
#include "obs/json.h"

namespace pahoehoe {
namespace {

// Relative tolerances, per the gate design above.
constexpr double kTolNormalized = 0.15;  // speedups and per-kernel ratios
constexpr double kTolAbsolute = 0.60;    // raw MB/s catastrophe net
constexpr double kTolTelemetry = 0.10;   // simulated latency quantiles

enum class Dir {
  kMin,   // fresh must not fall below baseline * (1 - tol)
  kMax,   // fresh must not rise above baseline * (1 + tol)
  kBand,  // |fresh - baseline| must stay within tol * |baseline|
};

struct Outcome {
  bool comparable = false;   ///< false => structural mismatch, see skip_reason
  std::string skip_reason;
  int gates = 0;
  std::vector<std::string> failures;
  std::vector<std::string> notices;  ///< non-fatal coverage gaps
  /// Diagnostic lines printed alongside REGRESSION output: the regressed
  /// run's tail attribution (top exemplars, dominant component) and, when
  /// the baseline carries the section too, a fresh-vs-baseline diff.
  std::vector<std::string> context;
};

void gate(Outcome& out, const std::string& name, double fresh,
          double baseline, double rel_tol, Dir dir) {
  ++out.gates;
  char msg[256];
  switch (dir) {
    case Dir::kMin: {
      const double bound = baseline * (1.0 - rel_tol);
      if (fresh >= bound) return;
      std::snprintf(msg, sizeof(msg),
                    "REGRESSION %s: fresh=%.6g below allowed %.6g "
                    "(baseline %.6g, tol -%.0f%%)",
                    name.c_str(), fresh, bound, baseline, rel_tol * 100);
      break;
    }
    case Dir::kMax: {
      const double bound = baseline * (1.0 + rel_tol);
      if (fresh <= bound) return;
      std::snprintf(msg, sizeof(msg),
                    "REGRESSION %s: fresh=%.6g above allowed %.6g "
                    "(baseline %.6g, tol +%.0f%%)",
                    name.c_str(), fresh, bound, baseline, rel_tol * 100);
      break;
    }
    case Dir::kBand: {
      const double slack = rel_tol * std::fabs(baseline) + 1e-9;
      if (std::fabs(fresh - baseline) <= slack) return;
      std::snprintf(msg, sizeof(msg),
                    "REGRESSION %s: fresh=%.6g outside baseline %.6g "
                    "+/- %.0f%%",
                    name.c_str(), fresh, baseline, rel_tol * 100);
      break;
    }
  }
  out.failures.push_back(msg);
}

/// meta.git_sha of a parsed document, for provenance lines.
std::string doc_sha(const obs::JsonValue& doc) {
  const obs::JsonValue* meta = doc.find("meta");
  const obs::JsonValue* sha = meta != nullptr ? meta->find("git_sha") : nullptr;
  return sha != nullptr && sha->is_string() ? sha->string : "unknown";
}

double num_or(const obs::JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->number : fallback;
}

// --- erasure gates ----------------------------------------------------------

std::vector<std::string> kernel_names(const obs::JsonValue& doc) {
  std::vector<std::string> names;
  const obs::JsonValue* kernels = doc.find("kernels");
  if (kernels == nullptr || !kernels->is_array()) return names;
  for (const obs::JsonValue& k : kernels->array) names.push_back(k.string);
  return names;
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ",";
    out += n;
  }
  return out;
}

const obs::JsonValue* find_case(const obs::JsonValue& cases, double k,
                                double n, double fragment_size) {
  for (const obs::JsonValue& c : cases.array) {
    if (num_or(c.find("k"), -1) == k && num_or(c.find("n"), -1) == n &&
        num_or(c.find("fragment_size"), -1) == fragment_size) {
      return &c;
    }
  }
  return nullptr;
}

const obs::JsonValue* find_kernel_result(const obs::JsonValue& results,
                                         const std::string& kernel) {
  for (const obs::JsonValue& r : results.array) {
    const obs::JsonValue* name = r.find("kernel");
    if (name != nullptr && name->string == kernel) return &r;
  }
  return nullptr;
}

Outcome compare_erasure(const obs::JsonValue& fresh,
                        const obs::JsonValue& baseline) {
  Outcome out;
  const std::vector<std::string> fresh_kernels = kernel_names(fresh);
  const std::vector<std::string> base_kernels = kernel_names(baseline);
  if (fresh_kernels != base_kernels) {
    out.skip_reason = "kernel sets differ: fresh [" + join(fresh_kernels) +
                      "] vs baseline [" + join(base_kernels) + "]";
    return out;
  }
  const obs::JsonValue* fresh_cases = fresh.find("cases");
  const obs::JsonValue* base_cases = baseline.find("cases");
  if (fresh_cases == nullptr || !fresh_cases->is_array() ||
      base_cases == nullptr || !base_cases->is_array()) {
    out.skip_reason = "cases array missing";
    return out;
  }
  out.comparable = true;

  for (const obs::JsonValue& fc : fresh_cases->array) {
    const double k = num_or(fc.find("k"), -1);
    const double n = num_or(fc.find("n"), -1);
    const double frag = num_or(fc.find("fragment_size"), -1);
    char label[64];
    std::snprintf(label, sizeof(label), "k=%g n=%g frag=%gK", k, n,
                  frag / 1024);
    const obs::JsonValue* bc = find_case(*base_cases, k, n, frag);
    if (bc == nullptr) {
      out.notices.push_back(std::string("case ") + label +
                            " has no baseline (new case? refresh with "
                            "--write-baseline)");
      continue;
    }
    // Machine-normalized: best-kernel speedup over scalar.
    for (const char* op : {"encode", "decode"}) {
      const double f = num_or(fc.find("speedup")->find(op), 0);
      const double b = num_or(bc->find("speedup")->find(op), 0);
      gate(out, std::string(label) + " speedup." + op, f, b, kTolNormalized,
           Dir::kMin);
    }
    for (const obs::JsonValue& fr : fc.find("results")->array) {
      const std::string kernel = fr.find("kernel")->string;
      const obs::JsonValue* br = find_kernel_result(*bc->find("results"),
                                                    kernel);
      if (br == nullptr) {
        out.notices.push_back(std::string(label) + " kernel " + kernel +
                              " has no baseline result");
        continue;
      }
      const std::string prefix = std::string(label) + " " + kernel + " ";
      const double f_mul = num_or(fr.find("mul_acc_mb_s"), 0);
      const double b_mul = num_or(br->find("mul_acc_mb_s"), 0);
      for (const char* op : {"encode_mb_s", "decode_mb_s"}) {
        const double f = num_or(fr.find(op), 0);
        const double b = num_or(br->find(op), 0);
        // Machine-normalized: throughput per unit of this host's own raw
        // mul_acc throughput. A kernel-wide slowdown cancels out; an
        // encode/decode-path regression does not.
        if (f_mul > 0 && b_mul > 0) {
          gate(out, prefix + op + "/mul_acc", f / f_mul, b / b_mul,
               kTolNormalized, Dir::kMin);
        }
        gate(out, prefix + op, f, b, kTolAbsolute, Dir::kMin);
      }
    }
  }
  return out;
}

// --- telemetry gates --------------------------------------------------------

const obs::JsonValue* find_variant(const obs::JsonValue& variants,
                                   const std::string& name) {
  for (const obs::JsonValue& v : variants.array) {
    const obs::JsonValue* n = v.find("name");
    if (n != nullptr && n->string == name) return &v;
  }
  return nullptr;
}

/// On a quantile-band failure for `name`, pull the variant's
/// tail_attribution section so the REGRESSION line arrives with the
/// versions and component that produced it. Older documents without the
/// section degrade to a notice instead of a hard error.
void attach_attribution_context(Outcome& out, const std::string& name,
                                const obs::JsonValue& fv,
                                const obs::JsonValue& bv) {
  const obs::JsonValue* fa = fv.find("tail_attribution");
  if (fa == nullptr) {
    out.notices.push_back("variant " + name +
                          " regressed but the fresh document has no "
                          "tail_attribution section (older bench build?)");
    return;
  }
  const std::optional<obs::AttributionReport> fresh_report =
      obs::attribution_from_json(*fa);
  if (!fresh_report.has_value()) {
    out.notices.push_back("variant " + name +
                          ": tail_attribution section is malformed");
    return;
  }
  if (!fresh_report->ranked.empty()) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%s: %.1f%% of the tail-vs-body gap is %s", name.c_str(),
                  fresh_report->ranked.front().gap_share * 100.0,
                  obs::to_string(fresh_report->ranked.front().component));
    out.context.push_back(line);
  }
  size_t shown = 0;
  for (const obs::Exemplar& e : fresh_report->top) {
    if (shown++ >= 3) break;
    out.context.push_back(name + " top exemplar " + obs::exemplar_to_text(e));
  }
  const obs::JsonValue* ba = bv.find("tail_attribution");
  if (ba == nullptr) {
    out.notices.push_back("variant " + name +
                          ": baseline predates tail_attribution; "
                          "differential skipped (refresh with "
                          "--write-baseline)");
    return;
  }
  const std::optional<obs::AttributionReport> base_report =
      obs::attribution_from_json(*ba);
  if (base_report.has_value()) {
    out.context.push_back(
        obs::attribution_diff_text(*fresh_report, *base_report));
  }
}

Outcome compare_telemetry(const obs::JsonValue& fresh,
                          const obs::JsonValue& baseline) {
  Outcome out;
  // The quantiles are only comparable when the workload flags match.
  for (const char* key : {"seeds", "puts", "object_kib",
                          "sample_interval_s"}) {
    const double f = num_or(fresh.find(key), -1);
    const double b = num_or(baseline.find(key), -2);
    if (f != b) {
      char reason[128];
      std::snprintf(reason, sizeof(reason),
                    "flag mismatch: %s fresh=%g vs baseline=%g "
                    "(rerun with the baseline's flags)",
                    key, f, b);
      out.skip_reason = reason;
      return out;
    }
  }
  const obs::JsonValue* fresh_variants = fresh.find("variants");
  const obs::JsonValue* base_variants = baseline.find("variants");
  if (fresh_variants == nullptr || !fresh_variants->is_array() ||
      base_variants == nullptr || !base_variants->is_array()) {
    out.skip_reason = "variants array missing";
    return out;
  }
  out.comparable = true;

  for (const obs::JsonValue& fv : fresh_variants->array) {
    const std::string name = fv.find("name")->string;
    const obs::JsonValue* bv = find_variant(*base_variants, name);
    if (bv == nullptr) {
      out.notices.push_back("variant " + name +
                            " has no baseline (refresh with "
                            "--write-baseline)");
      continue;
    }
    // Deterministic simulation: the ack count must match exactly, and the
    // ack -> AMR quantiles may drift only inside the band (quantile
    // interpolation is the one legitimate source of tiny movement).
    gate(out, name + " acked_total", num_or(fv.find("acked_total"), -1),
         num_or(bv->find("acked_total"), -1), 0.0, Dir::kBand);
    const size_t failures_before = out.failures.size();
    for (const char* q : {"p50", "p95"}) {
      const double f = num_or(fv.find("time_to_amr_s")->find(q), -1);
      const double b = num_or(bv->find("time_to_amr_s")->find(q), -1);
      gate(out, name + " time_to_amr_s." + q, f, b, kTolTelemetry,
           Dir::kBand);
    }
    if (out.failures.size() > failures_before) {
      attach_attribution_context(out, name, fv, *bv);
    }
  }
  return out;
}

// --- document plumbing ------------------------------------------------------

struct LoadedDoc {
  obs::JsonValue doc;
  std::string path;
};

/// nullopt with a stderr note when unreadable or failing check_meta.
std::optional<LoadedDoc> load_checked(const std::string& path,
                                      const char* role) {
  std::optional<obs::JsonValue> doc = obs::json_parse_file(path);
  if (!doc.has_value()) {
    std::fprintf(stderr, "trendcheck: %s %s: unreadable or invalid JSON\n",
                 role, path.c_str());
    return std::nullopt;
  }
  std::string meta_error;
  if (!bench::check_meta(*doc, &meta_error)) {
    std::fprintf(stderr, "trendcheck: %s %s: %s\n", role, path.c_str(),
                 meta_error.c_str());
    return std::nullopt;
  }
  return LoadedDoc{std::move(*doc), path};
}

bool copy_file(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trendcheck: cannot read %s\n", from.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  if (!out || !(out << buf.str())) {
    std::fprintf(stderr, "trendcheck: cannot write %s\n", to.c_str());
    return false;
  }
  return true;
}

// --- selftest ---------------------------------------------------------------

/// A miniature but shape-complete erasure document (two kernels, one case).
std::string synth_erasure_text() {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "erasure");
  bench::json_meta(w, /*jobs=*/1);
  w.key("kernels");
  w.begin_array().value("scalar").value("simd").end_array();
  w.key("cases");
  w.begin_array();
  w.begin_object();
  w.kv("k", 4).kv("n", 12).kv("fragment_size", 65536);
  w.key("results");
  w.begin_array();
  w.begin_object()
      .kv("kernel", "scalar")
      .kv("encode_mb_s", 1000.0)
      .kv("decode_mb_s", 900.0)
      .kv("mul_acc_mb_s", 2000.0)
      .end_object();
  w.begin_object()
      .kv("kernel", "simd")
      .kv("encode_mb_s", 5000.0)
      .kv("decode_mb_s", 4500.0)
      .kv("mul_acc_mb_s", 11000.0)
      .end_object();
  w.end_array();
  w.key("speedup");
  w.begin_object().kv("encode", 5.0).kv("decode", 5.0).end_object();
  w.end_object();
  w.end_array();
  w.end_object();
  return w.str();
}

/// A real attribution report over synthetic critical paths: 8 versions,
/// one of which spends 600 s in recovery_backoff — so the ranked list
/// names recovery_backoff and the worst-K leads with obj-7.
obs::AttributionReport synth_attribution() {
  obs::ExemplarStore store(/*worst_k=*/4, /*reservoir=*/16);
  std::vector<obs::VersionCriticalPath> paths;
  for (int i = 0; i < 8; ++i) {
    obs::VersionCriticalPath path;
    path.ov = ObjectVersionId{Key{"obj-" + std::to_string(i)},
                              Timestamp{i * kMicrosPerSecond, 101}};
    path.components[static_cast<size_t>(obs::PathComponent::kNetworkWait)] =
        kMicrosPerSecond / 2;
    path.components[static_cast<size_t>(
        obs::PathComponent::kRecoveryBackoff)] =
        (i == 7 ? 600 : 1) * kMicrosPerSecond;
    path.confirm_time = path.ack_time + path.total();
    store.add(obs::Exemplar{path.ov, /*seed=*/5000, path.total(),
                            path.components});
    paths.push_back(path);
  }
  obs::AttributionBuilder builder(store);
  for (const obs::VersionCriticalPath& path : paths) builder.add(path);
  return builder.finish();
}

std::string synth_telemetry_text() {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "convergence_telemetry");
  bench::json_meta(w, /*jobs=*/2);
  w.kv("seeds", 2).kv("puts", 6).kv("object_kib", 8);
  w.kv("sample_interval_s", 5.0);
  w.key("variants");
  w.begin_array();
  w.begin_object();
  w.kv("name", "All");
  w.key("time_to_amr_s");
  w.begin_object()
      .kv("count", 12)
      .kv("p50", 100.0)
      .kv("p95", 220.0)
      .kv("p99", 230.0)
      .kv("max", 240.0)
      .end_object();
  w.kv("acked_total", 12);
  w.key("tail_attribution");
  obs::attribution_to_json(w, synth_attribution());
  w.end_object();
  w.end_array();
  w.end_object();
  return w.str();
}

int selftest_fail(const char* what) {
  std::fprintf(stderr, "trendcheck --selftest: FAIL: %s\n", what);
  return 1;
}

bool any_mentions(const std::vector<std::string>& lines,
                  const std::string& needle) {
  for (const std::string& line : lines) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool any_failure_mentions(const Outcome& out, const std::string& needle) {
  return any_mentions(out.failures, needle);
}

/// Prove the gate engine: identical documents pass; an injected 20%
/// encode-throughput regression (the acceptance scenario) and a 25%
/// latency-quantile drift both fail.
int run_selftest() {
  const std::string erasure_text = synth_erasure_text();
  obs::JsonValue base = *obs::json_parse(erasure_text);
  obs::JsonValue fresh = *obs::json_parse(erasure_text);

  Outcome same = compare_erasure(fresh, base);
  if (!same.comparable || same.gates == 0 || !same.failures.empty()) {
    return selftest_fail("identical erasure documents must pass");
  }

  // Uniform 20% encode regression across every kernel: the speedup is
  // unchanged (it is a ratio of two regressed numbers) and the absolute
  // gates are inside their catastrophe tolerance — only the
  // encode/mul_acc ratio gates can catch it, and they must.
  for (obs::JsonValue& c : fresh.object["cases"].array) {
    for (obs::JsonValue& r : c.object["results"].array) {
      r.object["encode_mb_s"].number *= 0.8;
    }
  }
  Outcome regressed = compare_erasure(fresh, base);
  if (regressed.failures.empty() ||
      !any_failure_mentions(regressed, "encode_mb_s/mul_acc")) {
    return selftest_fail(
        "injected 20% encode regression must trip the ratio gate");
  }

  const std::string telemetry_text = synth_telemetry_text();
  obs::JsonValue tbase = *obs::json_parse(telemetry_text);
  obs::JsonValue tfresh = *obs::json_parse(telemetry_text);
  Outcome tsame = compare_telemetry(tfresh, tbase);
  if (!tsame.comparable || tsame.gates == 0 || !tsame.failures.empty()) {
    return selftest_fail("identical telemetry documents must pass");
  }
  tfresh.object["variants"]
      .array[0]
      .object["time_to_amr_s"]
      .object["p50"]
      .number *= 1.25;
  Outcome tregressed = compare_telemetry(tfresh, tbase);
  if (tregressed.failures.empty() ||
      !any_failure_mentions(tregressed, "time_to_amr_s.p50")) {
    return selftest_fail("injected 25% p50 drift must trip the band gate");
  }
  // The REGRESSION must arrive with attribution context: the dominant
  // component, the top exemplars, and (both documents carry the section) a
  // fresh-vs-baseline differential.
  if (!any_mentions(tregressed.context, "recovery_backoff") ||
      !any_mentions(tregressed.context, "top exemplar key=obj-7") ||
      !any_mentions(tregressed.context, "attribution diff")) {
    return selftest_fail(
        "regressed telemetry must attach tail attribution context");
  }
  // A baseline that predates the section degrades to a notice, never an
  // error — the exemplar printing itself must survive.
  obs::JsonValue old_base = tbase;
  old_base.object["variants"].array[0].object.erase("tail_attribution");
  Outcome tolder = compare_telemetry(tfresh, old_base);
  if (tolder.failures.empty() ||
      !any_mentions(tolder.notices, "predates tail_attribution") ||
      !any_mentions(tolder.context, "top exemplar key=obj-7") ||
      any_mentions(tolder.context, "attribution diff")) {
    return selftest_fail(
        "baseline without tail_attribution must skip the diff with a "
        "notice but keep the exemplar context");
  }
  // And a flag mismatch must skip, not silently compare.
  tfresh.object["seeds"].number = 30;
  if (compare_telemetry(tfresh, tbase).comparable) {
    return selftest_fail("flag mismatch must be a skip, not a comparison");
  }

  std::printf("trendcheck --selftest: ok (pass/regress/skip paths all "
              "behave; %d+%d gates exercised)\n",
              same.gates, tsame.gates);
  return 0;
}

// --- main -------------------------------------------------------------------

/// Gate one (fresh, baseline) pair. Returns 0 pass/skip, 1 on regression
/// or on a skip under --require; accumulates the total gate count.
int gate_pair(const char* what, const std::string& fresh_path,
              const std::string& baseline_path, bool require,
              Outcome (*compare)(const obs::JsonValue&, const obs::JsonValue&),
              int* total_gates) {
  const auto skip = [&](const std::string& why) {
    std::printf("trendcheck: SKIP %s: %s\n", what, why.c_str());
    if (!require) return 0;
    std::fprintf(stderr, "trendcheck: --require: skip is a failure\n");
    return 1;
  };
  std::optional<obs::JsonValue> baseline = obs::json_parse_file(baseline_path);
  if (!baseline.has_value()) {
    return skip("no baseline " + baseline_path +
                " (generate one with --write-baseline)");
  }
  std::string meta_error;
  if (!bench::check_meta(*baseline, &meta_error)) {
    return skip("stale baseline " + baseline_path + ": " + meta_error);
  }
  // An unreadable *fresh* document is a hard error: the bench that was
  // supposed to produce it failed, and a skip would mask that in CI.
  const std::optional<LoadedDoc> fresh = load_checked(fresh_path, what);
  if (!fresh.has_value()) return 1;

  const Outcome out = compare(fresh->doc, *baseline);
  if (!out.comparable) return skip(out.skip_reason);
  for (const std::string& notice : out.notices) {
    std::printf("trendcheck: note (%s): %s\n", what, notice.c_str());
  }
  for (const std::string& failure : out.failures) {
    std::fprintf(stderr, "trendcheck: %s: %s\n", what, failure.c_str());
  }
  for (const std::string& line : out.context) {
    std::fprintf(stderr, "trendcheck: %s: %s\n", what, line.c_str());
  }
  std::printf("trendcheck: %s: %d gates vs %s (baseline build %s): %s\n",
              what, out.gates, baseline_path.c_str(),
              doc_sha(*baseline).c_str(),
              out.failures.empty() ? "pass" : "FAIL");
  *total_gates += out.gates;
  return out.failures.empty() ? 0 : 1;
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string baselines = flags.get_string(
      "baselines", "bench/baselines", "committed baseline directory");
  const std::string erasure_path = flags.get_string(
      "erasure", "BENCH_erasure.json",
      "fresh erasure bench JSON (empty to skip the erasure gates)");
  const std::string telemetry_path = flags.get_string(
      "telemetry", "BENCH_telemetry.json",
      "fresh telemetry bench JSON (empty to skip the telemetry gates)");
  const bool write_baseline = flags.get_bool(
      "write-baseline", false,
      "install the fresh documents as the new baselines and exit");
  const bool require = flags.get_bool(
      "require", false, "treat skipped comparisons as failures");
  const bool selftest = flags.get_bool(
      "selftest", false, "prove the gate engine on synthetic documents");
  flags.finish();

  if (selftest) return run_selftest();

  const std::string host_class = gf256::to_string(gf256::best_kernel());
  const std::string erasure_baseline =
      baselines + "/erasure-" + host_class + ".json";
  const std::string telemetry_baseline = baselines + "/telemetry.json";
  std::printf("trendcheck: host class %s\n", host_class.c_str());

  if (write_baseline) {
    for (const auto& [fresh, baseline] :
         {std::pair{erasure_path, erasure_baseline},
          std::pair{telemetry_path, telemetry_baseline}}) {
      if (fresh.empty()) continue;
      const std::optional<LoadedDoc> doc = load_checked(fresh, "fresh");
      if (!doc.has_value() || !copy_file(fresh, baseline)) return 1;
      std::printf("trendcheck: wrote %s (build %s)\n", baseline.c_str(),
                  doc_sha(doc->doc).c_str());
    }
    return 0;
  }

  int total_gates = 0;
  int rc = 0;
  if (!erasure_path.empty()) {
    rc |= gate_pair("erasure", erasure_path, erasure_baseline, require,
                    compare_erasure, &total_gates);
  }
  if (!telemetry_path.empty()) {
    rc |= gate_pair("telemetry", telemetry_path, telemetry_baseline, require,
                    compare_telemetry, &total_gates);
  }
  if (rc == 0) {
    std::printf("trendcheck: PASS (%d gates)\n", total_gates);
  } else {
    std::fprintf(stderr, "trendcheck: FAIL\n");
  }
  return rc;
}

}  // namespace
}  // namespace pahoehoe

int main(int argc, char** argv) { return pahoehoe::run(argc, argv); }
