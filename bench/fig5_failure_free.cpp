// Figure 5 — "Failure-free execution": message count per type to bring 100
// puts of 100 KiB to AMR, under Naive, FSAMR-S (synchronized rounds),
// FSAMR-U (unsynchronized), PutAMR, and an analytically computed Idealized
// implementation.
//
// Expected shape (paper §5.2): Naive ≈ 6× Idealized; FSAMR-S ≈ +13% over
// Naive; FSAMR-U ≈ −57%; PutAMR ≈ −68%, a little above Idealized because
// the proxy pushes locations per data center (two location rounds).
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/sha256.h"
#include "wire/messages.h"

namespace pahoehoe {
namespace {

using bench::Column;
using bench::Metric;

/// The paper's Idealized accounting (§5.2), priced with our wire sizes:
/// one locations request+reply per data center, the chosen locations to
/// each of the four KLSs (+replies), two store-fragment requests to each of
/// the six FSs with one reply each, and one AMR indication per FS.
core::AggregateResult idealized(const core::RunConfig& config) {
  const Policy policy = config.workload.policy;
  const int num_puts = config.workload.num_puts;
  const int dcs = config.topology.num_dcs;
  const int klss = config.topology.total_kls();
  const int fss = config.topology.total_fs();

  const ObjectVersionId ov{Key{config.workload.key_prefix + "00"},
                           Timestamp{0, 1}};
  Metadata complete(policy, config.workload.value_size);
  for (size_t i = 0; i < complete.locs.size(); ++i) {
    complete.locs[i] = Location{NodeId{100 + static_cast<uint32_t>(i) / 2},
                                static_cast<uint8_t>(i % 2)};
  }
  const size_t frag_size =
      (config.workload.value_size + policy.k - 1) / policy.k;

  auto size_of = [](const Bytes& payload) {
    return static_cast<double>(payload.size() + wire::Envelope::kHeaderBytes);
  };
  const double decide_req =
      size_of(wire::DecideLocsReq{ov, policy, config.workload.value_size, false}.encode());
  const double decide_rep =
      size_of(wire::DecideLocsRep{ov, complete, DataCenterId{0}}.encode());
  const double meta_req = size_of(wire::StoreMetadataReq{ov, complete}.encode());
  const double meta_rep =
      size_of(wire::StoreMetadataRep{ov, wire::Status::kSuccess}.encode());
  wire::StoreFragmentReq frag_req;
  frag_req.ov = ov;
  frag_req.meta = complete;
  frag_req.fragment = Bytes(frag_size, 0);
  const double frag_req_size = size_of(frag_req.encode());
  const double frag_rep = size_of(
      wire::StoreFragmentRep{ov, 0, wire::Status::kSuccess}.encode());
  const double amr = size_of(wire::AmrIndication{ov}.encode());

  struct Item {
    wire::MessageType type;
    int count;
    double bytes_each;
  };
  const std::vector<Item> items = {
      {wire::MessageType::kDecideLocsReq, dcs, decide_req},
      {wire::MessageType::kDecideLocsRep, dcs, decide_rep},
      {wire::MessageType::kStoreMetadataReq, klss, meta_req},
      {wire::MessageType::kStoreMetadataRep, klss, meta_rep},
      {wire::MessageType::kStoreFragmentReq, policy.n, frag_req_size},
      {wire::MessageType::kStoreFragmentRep, fss, frag_rep},
      {wire::MessageType::kAmrIndication, fss, amr},
  };

  core::AggregateResult agg;
  agg.seeds = 1;
  double total_count = 0;
  double total_bytes = 0;
  for (const Item& item : items) {
    const double count = static_cast<double>(item.count * num_puts);
    agg.count_by_type[static_cast<size_t>(item.type)].add(count);
    agg.bytes_by_type[static_cast<size_t>(item.type)].add(count *
                                                          item.bytes_each);
    total_count += count;
    total_bytes += count * item.bytes_each;
  }
  agg.msg_count.add(total_count);
  agg.msg_bytes.add(total_bytes);
  return agg;
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  const int seeds =
      static_cast<int>(flags.get_int("seeds", 20, "seeds per configuration"));
  const int puts = static_cast<int>(flags.get_int("puts", 100, "puts"));
  const int object_kib =
      static_cast<int>(flags.get_int("object-kib", 100, "object size (KiB)"));
  const bool ablate =
      flags.get_bool("ablate", false, "also report each optimization's "
                                      "marginal effect with the others on");
  const int jobs = static_cast<int>(
      flags.get_int("jobs", 1, "worker threads for seed dispatch"));
  const std::string out =
      flags.get_string("out", "BENCH_fig5.json", "JSON output path");
  flags.finish();

  core::RunConfig config = core::paper_default_config();
  config.workload.num_puts = puts;
  config.workload.value_size = static_cast<size_t>(object_kib) * 1024;

  struct Preset {
    const char* label;
    core::ConvergenceOptions conv;
  };
  const std::vector<Preset> presets = {
      {"Naive", core::ConvergenceOptions::naive()},
      {"FSAMR-S", core::ConvergenceOptions::fs_amr_sync()},
      {"FSAMR-U", core::ConvergenceOptions::fs_amr_unsync()},
      {"PutAMR", core::ConvergenceOptions::put_amr()},
  };

  std::printf(
      "Figure 5 — failure-free execution: %d puts of %d KiB, %d seeds\n\n",
      puts, object_kib, seeds);

  std::vector<Column> columns;
  for (const auto& preset : presets) {
    config.convergence = preset.conv;
    columns.push_back(
        Column{preset.label, core::run_many(config, seeds, 1000, jobs)});
  }
  columns.push_back(Column{"Idealized", idealized(config)});

  bench::print_breakdown(columns, Metric::kCount);
  std::printf("\n");
  bench::print_ratios(columns, Metric::kCount, 0);
  std::printf("\nMessage bytes (for reference; the paper's Figure 5 shows "
              "counts):\n");
  bench::print_breakdown(columns, Metric::kBytes);

  if (ablate) {
    std::printf("\nAblation — disabling one optimization at a time from "
                "All (failure-free):\n");
    std::vector<Column> ab;
    config.convergence = core::ConvergenceOptions::all_opts();
    ab.push_back(Column{"All", core::run_many(config, seeds, 2000, jobs)});
    auto drop = [&](const char* label, auto mutate) {
      core::ConvergenceOptions conv = core::ConvergenceOptions::all_opts();
      mutate(conv);
      config.convergence = conv;
      ab.push_back(Column{label, core::run_many(config, seeds, 2000, jobs)});
    };
    drop("-FSAMR",
         [](core::ConvergenceOptions& c) { c.fs_amr_indication = false; });
    drop("-PutAMR",
         [](core::ConvergenceOptions& c) { c.put_amr_indication = false; });
    drop("-Sibling",
         [](core::ConvergenceOptions& c) { c.sibling_recovery = false; });
    drop("-Unsync",
         [](core::ConvergenceOptions& c) { c.unsync_rounds = false; });
    bench::print_breakdown(ab, Metric::kCount);
    std::printf("\n");
    bench::print_ratios(ab, Metric::kCount, 0);
  }

  bench::write_columns_json(out, "fig5_failure_free", seeds, jobs, columns);
  return 0;
}

}  // namespace
}  // namespace pahoehoe

int main(int argc, char** argv) { return pahoehoe::run(argc, argv); }
