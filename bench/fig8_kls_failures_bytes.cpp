// Figure 8 — "KLS failures and message bytes": bytes sent with 0, 1, 2C
// (one KLS per data center: network stays connected), 2P (both KLSs of one
// data center: WAN-partition-like), and 3 KLSs blacked out for 10 minutes.
//
// Expected shape (paper §5.3): KLS failures add little while both data
// centers stay connected; 2P forces every fragment of data center 1 to be
// rebuilt, where sibling fragment recovery keeps one FS's k-fragment WAN
// read from being repeated by all three FSs (see the WAN-bytes row).
#include <cstdio>

#include "common/flags.h"
#include "sweeps.h"

int main(int argc, char** argv) {
  using namespace pahoehoe;
  Flags flags(argc, argv);
  const int seeds =
      static_cast<int>(flags.get_int("seeds", 20, "seeds per configuration"));
  const int puts = static_cast<int>(flags.get_int("puts", 100, "puts"));
  const int object_kib =
      static_cast<int>(flags.get_int("object-kib", 100, "object size (KiB)"));
  const int jobs = static_cast<int>(
      flags.get_int("jobs", 1, "worker threads for seed dispatch"));
  const std::string out =
      flags.get_string("out", "BENCH_fig8.json", "JSON output path");
  flags.finish();

  core::RunConfig config = core::paper_default_config();
  config.workload.num_puts = puts;
  config.workload.value_size = static_cast<size_t>(object_kib) * 1024;

  std::printf(
      "Figure 8 — KLS failures and message bytes: %d puts of %d KiB, 10 min "
      "blackouts, %d seeds\n"
      "(2C = one KLS per data center; 2P = both KLSs of data center 1, "
      "mimicking a WAN partition)\n\n",
      puts, object_kib, seeds);
  const auto columns = bench::run_kls_failure_sweep(config, seeds, jobs);
  bench::print_grouped(columns, bench::Metric::kBytes, 4, /*wan_row=*/true);

  std::printf("Totals (MiB, with WAN share):\n");
  for (const auto& col : columns) {
    std::printf("  %-12s %8.2f  (+/- %5.2f)   WAN %8.2f\n", col.label.c_str(),
                col.agg.msg_bytes.mean() / (1024.0 * 1024.0),
                col.agg.msg_bytes.ci95_halfwidth() / (1024.0 * 1024.0),
                col.agg.wan_bytes.mean() / (1024.0 * 1024.0));
  }

  bench::write_columns_json(out, "fig8_kls_failures_bytes", seeds, jobs,
                            columns);
  return 0;
}
