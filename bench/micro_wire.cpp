// Micro-benchmarks for message serialization and the simulator event loop —
// the substrate the figure benches stand on.
#include <benchmark/benchmark.h>

#include "sim/simulator.h"
#include "wire/messages.h"

namespace pahoehoe {
namespace {

wire::StoreFragmentReq sample_store(size_t frag_size) {
  wire::StoreFragmentReq req;
  req.ov = ObjectVersionId{Key{"obj-42"}, Timestamp{123456, 7}};
  req.meta = Metadata{Policy{}, frag_size * 4};
  for (size_t i = 0; i < req.meta.locs.size(); ++i) {
    req.meta.locs[i] =
        Location{NodeId{10 + static_cast<uint32_t>(i / 2)},
                 static_cast<uint8_t>(i % 2)};
  }
  req.frag_index = 3;
  req.fragment = Bytes(frag_size, 0xa5);
  req.digest = Sha256::hash(req.fragment);
  return req;
}

void BM_EncodeStoreFragment(benchmark::State& state) {
  const auto req = sample_store(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes payload = req.encode();
    benchmark::DoNotOptimize(payload);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EncodeStoreFragment)->Arg(25600)->Arg(256 * 1024);

void BM_DecodeStoreFragment(benchmark::State& state) {
  const Bytes payload =
      sample_store(static_cast<size_t>(state.range(0))).encode();
  for (auto _ : state) {
    auto req = wire::StoreFragmentReq::decode(payload);
    benchmark::DoNotOptimize(req);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DecodeStoreFragment)->Arg(25600);

void BM_EncodeConverge(benchmark::State& state) {
  wire::FsConvergeReq req;
  req.ov = ObjectVersionId{Key{"obj-42"}, Timestamp{123456, 7}};
  req.meta = sample_store(16).meta;
  for (auto _ : state) {
    Bytes payload = req.encode();
    benchmark::DoNotOptimize(payload);
  }
}
BENCHMARK(BM_EncodeConverge);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim(1);
    for (int i = 0; i < 10000; ++i) {
      sim.schedule_at(sim.rng().uniform_int(0, 1'000'000), [] {});
    }
    state.ResumeTiming();
    sim.run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_SimulatorTimerCancel(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim(1);
    std::vector<sim::TimerId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(sim.schedule_at(i, [] {}));
    }
    state.ResumeTiming();
    for (sim::TimerId id : ids) sim.cancel(id);
    sim.run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorTimerCancel);

}  // namespace
}  // namespace pahoehoe

BENCHMARK_MAIN();
