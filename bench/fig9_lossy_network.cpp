// Figure 9 — "Convergence and a lossy network": with all optimizations on
// and the network dropping messages iid at 0–15%, the client retries failed
// puts until 100 succeed. Reported per drop rate (mean with min–max range,
// like the paper's error bars):
//   * puts attempted to collect 100 success replies,
//   * excess AMR object versions (failed attempts that became AMR anyway),
//   * non-durable object versions (never stored k fragments; never AMR).
//
// Expected shape (paper §5.4): attempts grow with the drop rate; most
// failed attempts still converge (excess AMR tracks attempts − 100);
// non-durable versions stay near zero even at 15%.
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"

int main(int argc, char** argv) {
  using namespace pahoehoe;
  Flags flags(argc, argv);
  const int seeds =
      static_cast<int>(flags.get_int("seeds", 30, "seeds per drop rate"));
  const int puts = static_cast<int>(flags.get_int("puts", 100, "puts"));
  const int object_kib =
      static_cast<int>(flags.get_int("object-kib", 100, "object size (KiB)"));
  const double max_rate =
      flags.get_double("max-drop", 0.15, "highest drop rate");
  const double step = flags.get_double("step", 0.025, "drop-rate step");
  const int jobs = static_cast<int>(
      flags.get_int("jobs", 1, "worker threads for seed dispatch"));
  const std::string out =
      flags.get_string("out", "BENCH_fig9.json", "JSON output path");
  flags.finish();

  core::RunConfig config = core::paper_default_config();
  config.convergence = core::ConvergenceOptions::all_opts();
  config.workload.num_puts = puts;
  config.workload.value_size = static_cast<size_t>(object_kib) * 1024;
  config.workload.retry_failed = true;

  std::printf(
      "Figure 9 — convergence and a lossy network: %d puts of %d KiB, all "
      "optimizations, client retries, %d seeds per point\n\n",
      puts, object_kib, seeds);
  std::printf("%8s %26s %26s %26s %16s\n", "drop", "puts attempted",
              "excess AMR versions", "non-durable versions",
              "durable-not-AMR");
  std::printf("%8s %26s %26s %26s %16s\n", "", "mean   [min, max]",
              "mean   [min, max]", "mean   [min, max]", "mean");

  std::vector<bench::Column> columns;
  for (double rate = 0.0; rate <= max_rate + 1e-9; rate += step) {
    config.faults = {core::FaultSpec::uniform_loss(rate)};
    core::AggregateResult agg = core::run_many(config, seeds, 900, jobs);
    std::printf("%7.1f%% %10.1f [%5.0f,%5.0f] %10.1f [%5.0f,%5.0f] "
                "%10.2f [%5.0f,%5.0f] %16.2f\n",
                rate * 100, agg.puts_attempted.mean(),
                agg.puts_attempted.min(), agg.puts_attempted.max(),
                agg.excess_amr.mean(), agg.excess_amr.min(),
                agg.excess_amr.max(), agg.non_durable.mean(),
                agg.non_durable.min(), agg.non_durable.max(),
                agg.durable_not_amr.mean());
    char label[32];
    std::snprintf(label, sizeof(label), "drop=%.1f%%", rate * 100);
    columns.push_back(bench::Column{label, std::move(agg)});
  }
  std::printf(
      "\nNote: durable-not-AMR must be zero everywhere — every durable "
      "version eventually reaches AMR (the eventual-consistency "
      "guarantee).\n");

  bench::write_columns_json(out, "fig9_lossy_network", seeds, jobs, columns);
  return 0;
}
