// Micro-benchmarks for the erasure codec (cf. the paper's §2 claim, after
// Plank et al. FAST'09, that modern erasure-code implementations are fast
// enough for the put/get path).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/sha256.h"
#include "erasure/reed_solomon.h"

namespace pahoehoe {
namespace {

Bytes make_value(size_t size) {
  Rng rng(99);
  Bytes value(size);
  for (auto& b : value) b = static_cast<uint8_t>(rng.next_u64());
  return value;
}

void BM_Encode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const size_t size = static_cast<size_t>(state.range(2));
  erasure::ReedSolomon rs(k, n);
  const Bytes value = make_value(size);
  for (auto _ : state) {
    auto frags = rs.encode(value);
    benchmark::DoNotOptimize(frags);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_Encode)
    ->Args({4, 12, 100 * 1024})   // the paper's default policy and object
    ->Args({4, 12, 1024 * 1024})
    ->Args({8, 12, 100 * 1024})
    ->Args({16, 20, 100 * 1024});

void BM_DecodeFromParity(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  erasure::ReedSolomon rs(4, 12);
  const Bytes value = make_value(size);
  const auto frags = rs.encode(value);
  std::vector<erasure::IndexedFragment> input;
  for (int i = 8; i < 12; ++i) input.push_back({i, &frags[static_cast<size_t>(i)]});
  for (auto _ : state) {
    Bytes out = rs.decode(input, size);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_DecodeFromParity)->Arg(100 * 1024)->Arg(1024 * 1024);

void BM_DecodeSystematic(benchmark::State& state) {
  // Decoding from the k data fragments is a pure reassembly.
  const size_t size = static_cast<size_t>(state.range(0));
  erasure::ReedSolomon rs(4, 12);
  const Bytes value = make_value(size);
  const auto frags = rs.encode(value);
  std::vector<erasure::IndexedFragment> input;
  for (int i = 0; i < 4; ++i) input.push_back({i, &frags[static_cast<size_t>(i)]});
  for (auto _ : state) {
    Bytes out = rs.decode(input, size);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_DecodeSystematic)->Arg(100 * 1024);

void BM_RegenerateAllSiblings(benchmark::State& state) {
  // The §4.2 sibling-recovery hot path: one k-read regenerates 8 fragments.
  const size_t size = static_cast<size_t>(state.range(0));
  erasure::ReedSolomon rs(4, 12);
  const Bytes value = make_value(size);
  const auto frags = rs.encode(value);
  std::vector<erasure::IndexedFragment> input;
  for (int i = 0; i < 4; ++i) input.push_back({i, &frags[static_cast<size_t>(i)]});
  const std::vector<int> targets{4, 5, 6, 7, 8, 9, 10, 11};
  for (auto _ : state) {
    auto out = rs.regenerate(input, targets, size);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_RegenerateAllSiblings)->Arg(100 * 1024);

void BM_Sha256(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  const Bytes data = make_value(size);
  for (auto _ : state) {
    auto digest = Sha256::hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(25600)->Arg(100 * 1024);

}  // namespace
}  // namespace pahoehoe

BENCHMARK_MAIN();
