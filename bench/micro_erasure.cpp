// Micro-benchmarks for the erasure codec (cf. the paper's §2 claim, after
// Plank et al. FAST'09, that modern erasure-code implementations are fast
// enough for the put/get path).
//
// Two modes:
//  - google-benchmark (default, or any --benchmark_* flag): the historical
//    BM_* suite under whatever GF(2^8) kernel the dispatcher selected
//    (override with PAHOEHOE_GF256_KERNEL).
//  - JSON mode (any of --out / --selfcheck / --target-ms / --kernels):
//    measures encode / decode-from-parity / raw mul_acc throughput for
//    every supported kernel per (k, n, fragment_size) case, verifies the
//    kernels stay byte-identical to scalar while doing so, and emits
//    BENCH_erasure.json through the shared obs::JsonWriter path.
//    --selfcheck re-parses the emitted file and validates its schema
//    (the erasure_bench_smoke ctest runs this).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/sha256.h"
#include "erasure/gf256.h"
#include "erasure/reed_solomon.h"
#include "obs/json.h"
#include "obs/prof.h"

namespace pahoehoe {
namespace {

Bytes make_value(size_t size) {
  Rng rng(99);
  Bytes value(size);
  for (auto& b : value) b = static_cast<uint8_t>(rng.next_u64());
  return value;
}

void BM_Encode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const size_t size = static_cast<size_t>(state.range(2));
  erasure::ReedSolomon rs(k, n);
  const Bytes value = make_value(size);
  for (auto _ : state) {
    auto frags = rs.encode(value);
    benchmark::DoNotOptimize(frags);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
  state.SetLabel(gf256::to_string(gf256::active_kernel()));
}
BENCHMARK(BM_Encode)
    ->Args({4, 12, 100 * 1024})   // the paper's default policy and object
    ->Args({4, 12, 1024 * 1024})
    ->Args({8, 12, 100 * 1024})
    ->Args({16, 20, 100 * 1024});

void BM_DecodeFromParity(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  erasure::ReedSolomon rs(4, 12);
  const Bytes value = make_value(size);
  const auto frags = rs.encode(value);
  std::vector<erasure::IndexedFragment> input;
  for (int i = 8; i < 12; ++i) input.push_back({i, &frags[static_cast<size_t>(i)]});
  for (auto _ : state) {
    Bytes out = rs.decode(input, size);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
  state.SetLabel(gf256::to_string(gf256::active_kernel()));
}
BENCHMARK(BM_DecodeFromParity)->Arg(100 * 1024)->Arg(1024 * 1024);

void BM_DecodeSystematic(benchmark::State& state) {
  // Decoding from the k data fragments is a pure reassembly.
  const size_t size = static_cast<size_t>(state.range(0));
  erasure::ReedSolomon rs(4, 12);
  const Bytes value = make_value(size);
  const auto frags = rs.encode(value);
  std::vector<erasure::IndexedFragment> input;
  for (int i = 0; i < 4; ++i) input.push_back({i, &frags[static_cast<size_t>(i)]});
  for (auto _ : state) {
    Bytes out = rs.decode(input, size);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_DecodeSystematic)->Arg(100 * 1024);

void BM_RegenerateAllSiblings(benchmark::State& state) {
  // The §4.2 sibling-recovery hot path: one k-read regenerates 8 fragments.
  const size_t size = static_cast<size_t>(state.range(0));
  erasure::ReedSolomon rs(4, 12);
  const Bytes value = make_value(size);
  const auto frags = rs.encode(value);
  std::vector<erasure::IndexedFragment> input;
  for (int i = 0; i < 4; ++i) input.push_back({i, &frags[static_cast<size_t>(i)]});
  const std::vector<int> targets{4, 5, 6, 7, 8, 9, 10, 11};
  for (auto _ : state) {
    auto out = rs.regenerate(input, targets, size);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
  state.SetLabel(gf256::to_string(gf256::active_kernel()));
}
BENCHMARK(BM_RegenerateAllSiblings)->Arg(100 * 1024);

void BM_Sha256(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  const Bytes data = make_value(size);
  for (auto _ : state) {
    auto digest = Sha256::hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(25600)->Arg(100 * 1024);

// --- JSON mode --------------------------------------------------------------

struct Case {
  int k;
  int n;
  size_t fragment_size;
};

// The acceptance case (k=4, n=12, 64 KiB fragments) first, then a short-
// fragment case for the head/tail remainder paths and two wider codes.
constexpr Case kCases[] = {
    {4, 12, 64 * 1024},
    {4, 12, 4 * 1024},
    {8, 12, 64 * 1024},
    {16, 20, 64 * 1024},
};

/// Run `op` repeatedly until ~target_ms of wall clock elapsed; MB/s over
/// `bytes_per_iter` (decimal MB, matching google-benchmark's bytes/sec).
template <typename Op>
double measure_mb_s(int64_t target_ms, size_t bytes_per_iter, Op op) {
  // lint:wallclock-ok(bench harness measures host throughput, not sim state)
  using Clock = std::chrono::steady_clock;
  const auto budget = std::chrono::milliseconds(target_ms);
  // Warm once (also faults in tables and the destination pages).
  op();
  int64_t iters = 0;
  const auto start = Clock::now();
  auto now = start;
  do {
    op();
    ++iters;
    now = Clock::now();
  } while (now - start < budget);
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - start)
          .count();
  return static_cast<double>(iters) * static_cast<double>(bytes_per_iter) /
         seconds / 1e6;
}

struct KernelResult {
  gf256::Kernel kernel;
  double encode_mb_s = 0;
  double decode_mb_s = 0;
  double mul_acc_mb_s = 0;
};

struct CaseResult {
  Case c;
  std::vector<KernelResult> results;
  double speedup_encode = 1.0;  // best kernel vs scalar
  double speedup_decode = 1.0;
};

bool selfcheck_json(const std::string& path, size_t expected_kernels) {
  const auto fail = [&path](const char* what) {
    std::fprintf(stderr, "selfcheck %s: %s\n", path.c_str(), what);
    return false;
  };
  const auto doc = obs::json_parse_file(path);
  if (!doc.has_value()) return fail("unreadable or invalid JSON");
  const obs::JsonValue* bench = doc->find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string != "erasure") {
    return fail("missing bench == \"erasure\"");
  }
  std::string meta_error;
  if (!bench::check_meta(*doc, &meta_error)) return fail(meta_error.c_str());
  const obs::JsonValue* profile = doc->find("profile");
  if (profile == nullptr || !profile->is_array()) {
    return fail("profile array missing");
  }
  const obs::JsonValue* active = doc->find("active_default");
  if (active == nullptr || !active->is_string()) {
    return fail("missing active_default kernel name");
  }
  const obs::JsonValue* kernels = doc->find("kernels");
  if (kernels == nullptr || !kernels->is_array() ||
      kernels->array.size() != expected_kernels) {
    return fail("kernels array missing or wrong length");
  }
  if (kernels->array.empty() || !kernels->array[0].is_string() ||
      kernels->array[0].string != "scalar") {
    return fail("kernels[0] must be the scalar oracle");
  }
  const obs::JsonValue* cases = doc->find("cases");
  if (cases == nullptr || !cases->is_array() || cases->array.empty()) {
    return fail("cases array missing or empty");
  }
  for (const obs::JsonValue& c : cases->array) {
    for (const char* key : {"k", "n", "fragment_size", "value_size"}) {
      const obs::JsonValue* v = c.find(key);
      if (v == nullptr || !v->is_number() || v->number <= 0) {
        return fail("case missing positive numeric k/n/fragment_size");
      }
    }
    const obs::JsonValue* results = c.find("results");
    if (results == nullptr || !results->is_array() ||
        results->array.size() != expected_kernels) {
      return fail("case results missing or wrong length");
    }
    for (const obs::JsonValue& r : results->array) {
      const obs::JsonValue* name = r.find("kernel");
      if (name == nullptr || !name->is_string()) {
        return fail("result missing kernel name");
      }
      for (const char* key : {"encode_mb_s", "decode_mb_s", "mul_acc_mb_s"}) {
        const obs::JsonValue* v = r.find(key);
        if (v == nullptr || !v->is_number() || v->number <= 0) {
          return fail("result missing positive throughput");
        }
      }
    }
    const obs::JsonValue* speedup = c.find("speedup");
    if (speedup == nullptr || speedup->find("encode") == nullptr ||
        speedup->find("decode") == nullptr) {
      return fail("case missing speedup object");
    }
  }
  std::printf("selfcheck %s: ok\n", path.c_str());
  return true;
}

int run_json_mode(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string out = flags.get_string(
      "out", "BENCH_erasure.json", "output JSON path");
  const int64_t target_ms = flags.get_int(
      "target-ms", 300, "wall-clock budget per (case, kernel, op) sample");
  const bool check = flags.get_bool(
      "selfcheck", false, "re-parse the emitted JSON and validate it");
  const std::string kernels_flag = flags.get_string(
      "kernels", "", "comma list limiting measured kernels (default: all "
                     "supported; scalar is always included as the oracle)");
  flags.finish();

  std::vector<gf256::Kernel> kernels = gf256::supported_kernels();
  if (!kernels_flag.empty()) {
    std::vector<gf256::Kernel> picked{gf256::Kernel::kScalar};
    size_t pos = 0;
    while (pos <= kernels_flag.size()) {
      const size_t comma = kernels_flag.find(',', pos);
      const std::string name = kernels_flag.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      pos = comma == std::string::npos ? kernels_flag.size() + 1 : comma + 1;
      const auto k = gf256::parse_kernel(name);
      if (!k.has_value()) {
        std::fprintf(stderr, "unknown kernel \"%s\"\n", name.c_str());
        return 1;
      }
      if (!gf256::kernel_supported(*k)) {
        std::fprintf(stderr, "kernel %s not supported on this host\n",
                     name.c_str());
        return 1;
      }
      if (*k != gf256::Kernel::kScalar) picked.push_back(*k);
    }
    kernels = std::move(picked);
  }

  const gf256::Kernel default_kernel = gf256::active_kernel();
  // Profile the measurement run itself: the per-kernel rs_encode/rs_decode
  // phases land in the emitted profile section. Scope entry costs ~25 ns
  // against ops tens of microseconds long, so throughput is unaffected at
  // the tolerance scale trendcheck gates on.
  obs::prof::set_enabled(true);
  const obs::prof::Snapshot prof_begin = obs::prof::capture_begin();
  std::vector<CaseResult> cases;
  for (const Case& c : kCases) {
    CaseResult cr;
    cr.c = c;
    const size_t value_size = static_cast<size_t>(c.k) * c.fragment_size;
    erasure::ReedSolomon rs(c.k, c.n);
    const Bytes value = make_value(value_size);

    // Scalar fragments are the oracle every other kernel must reproduce.
    gf256::force_kernel(gf256::Kernel::kScalar);
    const auto oracle = rs.encode(value);
    // Decode from the last k fragments — maximally non-systematic.
    std::vector<erasure::IndexedFragment> parity_input;
    for (int i = c.n - c.k; i < c.n; ++i) {
      parity_input.push_back({i, &oracle[static_cast<size_t>(i)]});
    }
    Bytes mul_src = make_value(c.fragment_size);
    Bytes mul_dst(c.fragment_size, 0);

    for (gf256::Kernel k : kernels) {
      gf256::force_kernel(k);
      if (rs.encode(value) != oracle || rs.decode(parity_input, value_size) != value) {
        std::fprintf(stderr, "kernel %s is NOT bit-identical to scalar\n",
                     gf256::to_string(k));
        gf256::reset_kernel();
        return 1;
      }
      KernelResult r;
      r.kernel = k;
      r.encode_mb_s = measure_mb_s(target_ms, value_size,
                                   [&] { benchmark::DoNotOptimize(rs.encode(value)); });
      r.decode_mb_s = measure_mb_s(target_ms, value_size, [&] {
        benchmark::DoNotOptimize(rs.decode(parity_input, value_size));
      });
      r.mul_acc_mb_s = measure_mb_s(target_ms, c.fragment_size, [&] {
        gf256::mul_acc(mul_dst, mul_src, 0x57);
        benchmark::DoNotOptimize(mul_dst.data());
      });
      cr.results.push_back(r);
    }
    const KernelResult& scalar = cr.results.front();
    for (const KernelResult& r : cr.results) {
      cr.speedup_encode =
          std::max(cr.speedup_encode, r.encode_mb_s / scalar.encode_mb_s);
      cr.speedup_decode =
          std::max(cr.speedup_decode, r.decode_mb_s / scalar.decode_mb_s);
    }
    cases.push_back(std::move(cr));
  }
  // Back to the dispatcher's own choice (env override or auto).
  gf256::reset_kernel();
  const obs::ProfReport profile = obs::prof::capture_delta(prof_begin);
  obs::prof::set_enabled(false);

  std::printf("%-18s %-8s %12s %12s %12s\n", "case", "kernel", "encode MB/s",
              "decode MB/s", "mul_acc MB/s");
  for (const CaseResult& cr : cases) {
    char label[64];
    std::snprintf(label, sizeof(label), "k=%d n=%d frag=%zuK", cr.c.k, cr.c.n,
                  cr.c.fragment_size / 1024);
    for (const KernelResult& r : cr.results) {
      std::printf("%-18s %-8s %12.1f %12.1f %12.1f\n", label,
                  gf256::to_string(r.kernel), r.encode_mb_s, r.decode_mb_s,
                  r.mul_acc_mb_s);
    }
    std::printf("%-18s %-8s %9.2fx %11.2fx\n", label, "speedup",
                cr.speedup_encode, cr.speedup_decode);
  }

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "erasure");
  bench::json_meta(w, /*jobs=*/1);  // measurement is single-threaded
  w.kv("active_default", gf256::to_string(default_kernel));
  w.kv("target_ms", target_ms);
  w.key("kernels");
  w.begin_array();
  for (gf256::Kernel k : kernels) w.value(gf256::to_string(k));
  w.end_array();
  w.key("cases");
  w.begin_array();
  for (const CaseResult& cr : cases) {
    w.begin_object();
    w.kv("k", cr.c.k);
    w.kv("n", cr.c.n);
    w.kv("fragment_size", static_cast<uint64_t>(cr.c.fragment_size));
    w.kv("value_size",
         static_cast<uint64_t>(cr.c.fragment_size) * static_cast<uint64_t>(cr.c.k));
    w.key("results");
    w.begin_array();
    for (const KernelResult& r : cr.results) {
      w.begin_object();
      w.kv("kernel", gf256::to_string(r.kernel));
      w.kv("encode_mb_s", r.encode_mb_s);
      w.kv("decode_mb_s", r.decode_mb_s);
      w.kv("mul_acc_mb_s", r.mul_acc_mb_s);
      w.end_object();
    }
    w.end_array();
    w.key("speedup");
    w.begin_object();
    w.kv("encode", cr.speedup_encode);
    w.kv("decode", cr.speedup_decode);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  bench::json_profile(w, profile);
  w.end_object();
  if (!w.write_file(out)) return 1;
  std::printf("wrote %s\n", out.c_str());

  if (check && !selfcheck_json(out, kernels.size())) return 1;
  return 0;
}

bool wants_json_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    for (const char* prefix :
         {"--out", "--selfcheck", "--target-ms", "--kernels", "--help"}) {
      if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) return true;
    }
  }
  return false;
}

}  // namespace
}  // namespace pahoehoe

int main(int argc, char** argv) {
  if (pahoehoe::wants_json_mode(argc, argv)) {
    return pahoehoe::run_json_mode(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
