// Capacity-planning bench (not a paper figure; the ROADMAP's
// latency/throughput workload model): sweep open-loop put arrival rate ×
// value size on the paper topology and report per-op latency percentiles
// and achieved throughput. Open-loop arrivals keep the offered load
// independent of completions, so a saturating configuration shows up as a
// growing latency tail instead of silently throttling itself.
//
// Output: a human-readable table and BENCH_capacity.json (one object per
// (rate, size) point with p50/p95/p99 put and get latency in ms, achieved
// put throughput, and the offered load for reference).
//
// Examples:
//   ./build/bench/capacity_planning
//   ./build/bench/capacity_planning --rates=2,8,32,64 --sizes-kib=16,100
//       --duration-s=30 --seeds=10 --jobs=4
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "core/harness.h"

namespace pahoehoe {
namespace {

std::vector<double> parse_list(const std::string& csv) {
  std::vector<double> out;
  size_t begin = 0;
  while (begin <= csv.size()) {
    size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    const std::string item = csv.substr(begin, end - begin);
    if (!item.empty()) out.push_back(std::stod(item));
    begin = end + 1;
  }
  return out;
}

struct Point {
  double rate_per_s = 0;
  int value_kib = 0;
  core::AggregateResult agg;
};

double ms(double seconds) { return seconds * 1e3; }

void write_json(const std::string& path, const std::vector<Point>& points,
                int seeds, int jobs, double duration_s, bool poisson) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "capacity_planning");
  bench::json_meta(w, jobs);
  w.kv("arrivals", poisson ? "poisson" : "fixed");
  w.kv("seeds", seeds);
  w.kv("duration_s", duration_s);
  w.key("points");
  w.begin_array();
  for (const Point& p : points) {
    w.begin_object();
    w.kv("rate_per_s", p.rate_per_s);
    w.kv("value_kib", p.value_kib);
    w.kv("puts_attempted", p.agg.puts_attempted.mean());
    w.kv("puts_acked", p.agg.puts_acked.mean());
    w.kv("achieved_put_rate_per_s", p.agg.puts_acked.mean() / duration_s);
    w.key("put_latency_ms");
    bench::json_quantiles(w, p.agg.put_latency_s, 1e3);
    w.key("get_latency_ms");
    bench::json_quantiles(w, p.agg.get_latency_s, 1e3);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  if (w.write_file(path)) std::printf("\nwrote %s\n", path.c_str());
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::vector<double> rates = parse_list(flags.get_string(
      "rates", "2,8,32", "put arrival rates to sweep (puts/s)"));
  const std::vector<double> sizes = parse_list(flags.get_string(
      "sizes-kib", "16,100", "value sizes to sweep (KiB)"));
  const double duration_s =
      flags.get_double("duration-s", 20.0, "arrival window per run (s)");
  const int seeds =
      static_cast<int>(flags.get_int("seeds", 5, "seeds per point"));
  const int jobs = static_cast<int>(
      flags.get_int("jobs", 1, "worker threads for seed dispatch"));
  const bool poisson = flags.get_bool(
      "poisson", true, "Poisson arrivals (false: fixed-rate)");
  const double get_fraction = flags.get_double(
      "get-fraction", 0.5, "read back each object with this probability");
  const std::string out =
      flags.get_string("out", "BENCH_capacity.json", "JSON output path");
  flags.finish();

  core::RunConfig base = core::paper_default_config();
  base.convergence = core::ConvergenceOptions::all_opts();
  base.workload.arrivals = poisson ? core::ArrivalProcess::kOpenPoisson
                                   : core::ArrivalProcess::kOpenFixed;
  base.workload.get_fraction = get_fraction;

  std::printf("capacity planning: open-loop %s arrivals, %gs window, "
              "%d seeds/point, %d jobs\n\n",
              poisson ? "Poisson" : "fixed-rate", duration_s, seeds, jobs);
  std::printf("%8s %9s %10s %10s %10s %10s %10s %10s\n", "rate/s", "size",
              "achieved", "put p50", "put p95", "put p99", "get p50",
              "get p99");

  std::vector<Point> points;
  for (double size_kib : sizes) {
    for (double rate : rates) {
      Point point;
      point.rate_per_s = rate;
      point.value_kib = static_cast<int>(size_kib);

      core::RunConfig config = base;
      config.workload.arrival_rate_per_s = rate;
      config.workload.num_puts =
          std::max(1, static_cast<int>(rate * duration_s));
      config.workload.value_size =
          static_cast<size_t>(size_kib) * 1024;
      point.agg = core::run_many(config, seeds,
                                 /*base_seed=*/3000, jobs);

      const auto& put = point.agg.put_latency_s;
      const auto& get = point.agg.get_latency_s;
      std::printf(
          "%8g %7dKi %8.2f/s %8.2fms %8.2fms %8.2fms %8.2fms %8.2fms\n",
          rate, point.value_kib, point.agg.puts_acked.mean() / duration_s,
          ms(put.quantile(0.50)), ms(put.quantile(0.95)),
          ms(put.quantile(0.99)), ms(get.quantile(0.50)),
          ms(get.quantile(0.99)));
      std::fflush(stdout);
      points.push_back(std::move(point));
    }
  }

  write_json(out, points, seeds, jobs, duration_s, poisson);
  return 0;
}

}  // namespace
}  // namespace pahoehoe

int main(int argc, char** argv) { return pahoehoe::run(argc, argv); }
