// Shared output formatting for the figure-reproduction benches.
//
// Each bench prints the same series the paper's figure shows: a per-message-
// type breakdown (the paper's stacked bars) and totals with 95% CIs, one
// column per experiment configuration — plus the single JSON emission path
// (obs::JsonWriter) every BENCH_*.json file goes through.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/harness.h"
#include "erasure/gf256.h"
#include "obs/json.h"
#include "obs/prof.h"

// Stamped by the build (bench/CMakeLists.txt, `git rev-parse`); "unknown"
// outside a git checkout or when git is unavailable.
#ifndef PAHOEHOE_GIT_SHA
#define PAHOEHOE_GIT_SHA "unknown"
#endif

namespace pahoehoe::bench {

/// Version of the common BENCH_*.json shape (the `meta` block and the
/// sections bench/trendcheck gates on). Bump on breaking layout changes so
/// stale baselines fail loudly instead of comparing garbage.
inline constexpr int64_t kBenchSchemaVersion = 1;

struct Column {
  std::string label;
  core::AggregateResult agg;
};

enum class Metric { kCount, kBytes };

inline double metric_of(const core::AggregateResult& agg, int type,
                        Metric metric) {
  return metric == Metric::kCount
             ? agg.count_by_type[static_cast<size_t>(type)].mean()
             : agg.bytes_by_type[static_cast<size_t>(type)].mean();
}

/// Scale factors matching the paper's axes: message counts in 10^3,
/// bytes in 2^20 (MiB).
inline double scale_for(Metric metric) {
  return metric == Metric::kCount ? 1e3 : 1024.0 * 1024.0;
}

inline void print_breakdown(const std::vector<Column>& columns,
                            Metric metric) {
  const char* unit = metric == Metric::kCount ? "10^3 msgs" : "MiB";
  std::printf("%-20s", "type");
  for (const auto& col : columns) std::printf(" %12s", col.label.c_str());
  std::printf("   [%s]\n", unit);

  for (int t = 0; t < wire::kMessageTypeCount; ++t) {
    bool any = false;
    for (const auto& col : columns) {
      if (metric_of(col.agg, t, metric) > 0) any = true;
    }
    if (!any) continue;
    std::printf("%-20s", wire::to_string(static_cast<wire::MessageType>(t)));
    for (const auto& col : columns) {
      std::printf(" %12.2f", metric_of(col.agg, t, metric) / scale_for(metric));
    }
    std::printf("\n");
  }

  std::printf("%-20s", "TOTAL");
  for (const auto& col : columns) {
    const auto& total =
        metric == Metric::kCount ? col.agg.msg_count : col.agg.msg_bytes;
    std::printf(" %12.2f", total.mean() / scale_for(metric));
  }
  std::printf("\n%-20s", "  (95% CI +/-)");
  for (const auto& col : columns) {
    const auto& total =
        metric == Metric::kCount ? col.agg.msg_count : col.agg.msg_bytes;
    std::printf(" %12.2f", total.ci95_halfwidth() / scale_for(metric));
  }
  std::printf("\n");
}

inline void print_ratios(const std::vector<Column>& columns, Metric metric,
                         size_t baseline_index) {
  const auto& base = metric == Metric::kCount
                         ? columns[baseline_index].agg.msg_count
                         : columns[baseline_index].agg.msg_bytes;
  std::printf("Relative to %s:\n", columns[baseline_index].label.c_str());
  for (const auto& col : columns) {
    const auto& total =
        metric == Metric::kCount ? col.agg.msg_count : col.agg.msg_bytes;
    std::printf("  %-18s %+7.1f%%\n", col.label.c_str(),
                100.0 * (total.mean() - base.mean()) / base.mean());
  }
}

inline void print_wan_row(const std::vector<Column>& columns) {
  std::printf("%-20s", "WAN bytes (MiB)");
  for (const auto& col : columns) {
    std::printf(" %12.2f", col.agg.wan_bytes.mean() / (1024.0 * 1024.0));
  }
  std::printf("\n");
}

// --- shared JSON emission ---------------------------------------------------

/// {"mean": …, "ci95": …} of one per-seed statistic, values scaled.
inline void json_stat(obs::JsonWriter& w, const SampleStats& stat,
                      double scale = 1.0) {
  w.begin_object();
  w.kv("mean", stat.mean() * scale);
  w.kv("ci95", stat.ci95_halfwidth() * scale);
  w.end_object();
}

/// {"count": …, "p50": …, "p95": …, "p99": …, "max": …} of one pooled
/// distribution, quantiles scaled (e.g. 1e3 for seconds → ms).
inline void json_quantiles(obs::JsonWriter& w, const QuantileSketch& sketch,
                           double scale = 1.0) {
  w.begin_object();
  w.kv("count", sketch.count());
  w.kv("p50", sketch.quantile(0.50) * scale);
  w.kv("p95", sketch.quantile(0.95) * scale);
  w.kv("p99", sketch.quantile(0.99) * scale);
  w.kv("max", sketch.max() * scale);
  w.end_object();
}

/// One column's aggregate as a JSON object: totals with CIs, workload
/// outcome counts, and the non-zero per-message-type breakdown. The common
/// shape shared by every figure bench (fig5–9 and the baseline), so their
/// JSON differs only in what the columns sweep over.
inline void json_column(obs::JsonWriter& w, const Column& col) {
  w.begin_object();
  w.kv("label", col.label);
  w.key("msgs");
  json_stat(w, col.agg.msg_count);
  w.key("bytes");
  json_stat(w, col.agg.msg_bytes);
  w.key("wan_bytes");
  json_stat(w, col.agg.wan_bytes);
  w.key("puts_attempted");
  json_stat(w, col.agg.puts_attempted);
  w.key("puts_acked");
  json_stat(w, col.agg.puts_acked);
  w.key("excess_amr");
  json_stat(w, col.agg.excess_amr);
  w.key("non_durable");
  json_stat(w, col.agg.non_durable);
  w.key("by_type");
  w.begin_object();
  for (int t = 0; t < wire::kMessageTypeCount; ++t) {
    const auto& count = col.agg.count_by_type[static_cast<size_t>(t)];
    const auto& bytes = col.agg.bytes_by_type[static_cast<size_t>(t)];
    if (count.mean() <= 0) continue;
    w.key(wire::to_string(static_cast<wire::MessageType>(t)));
    w.begin_object();
    w.kv("msgs", count.mean());
    w.kv("bytes", bytes.mean());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

/// The common provenance block every BENCH_*.json carries (satellite of the
/// profiling PR): schema version, git sha of the build, the --jobs the tool
/// ran with, and the GF(2^8) kernel that was active. One helper so the
/// emitters can't drift apart; validated by each tool's --selfcheck via
/// check_meta().
inline void json_meta(obs::JsonWriter& w, int jobs) {
  w.key("meta");
  w.begin_object();
  w.kv("schema_version", kBenchSchemaVersion);
  w.kv("git_sha", PAHOEHOE_GIT_SHA);
  w.kv("jobs", static_cast<int64_t>(jobs));
  w.kv("kernel", gf256::to_string(gf256::active_kernel()));
  w.end_object();
}

/// Validate a parsed bench document's meta block: present, schema version
/// current, kernel a known name, jobs >= 1, git_sha non-empty. On failure
/// fills `error` (value-bearing) and returns false.
inline bool check_meta(const obs::JsonValue& doc, std::string* error) {
  const obs::JsonValue* meta = doc.find("meta");
  if (meta == nullptr || !meta->is_object()) {
    *error = "meta block missing";
    return false;
  }
  const obs::JsonValue* version = meta->find("schema_version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int64_t>(version->number) != kBenchSchemaVersion) {
    *error = "meta.schema_version must be " +
             std::to_string(kBenchSchemaVersion) + ", got " +
             (version != nullptr && version->is_number()
                  ? std::to_string(static_cast<int64_t>(version->number))
                  : std::string("(absent)"));
    return false;
  }
  const obs::JsonValue* sha = meta->find("git_sha");
  if (sha == nullptr || !sha->is_string() || sha->string.empty()) {
    *error = "meta.git_sha missing or empty";
    return false;
  }
  const obs::JsonValue* jobs = meta->find("jobs");
  if (jobs == nullptr || !jobs->is_number() || jobs->number < 1) {
    *error = "meta.jobs must be >= 1, got " +
             (jobs != nullptr && jobs->is_number()
                  ? std::to_string(jobs->number)
                  : std::string("(absent)"));
    return false;
  }
  const obs::JsonValue* kernel = meta->find("kernel");
  if (kernel == nullptr || !kernel->is_string() ||
      !gf256::parse_kernel(kernel->string).has_value()) {
    *error = "meta.kernel must name a GF(2^8) kernel, got " +
             (kernel != nullptr && kernel->is_string()
                  ? "'" + kernel->string + "'"
                  : std::string("(absent)"));
    return false;
  }
  return true;
}

/// The run's wall-clock phase table as a JSON array (empty when profiling
/// was off). Values are host-dependent by nature — downstream tooling may
/// chart them but must never diff them byte-for-byte (DESIGN.md §11).
inline void json_profile(obs::JsonWriter& w, const obs::ProfReport& report) {
  w.key("profile");
  w.begin_array();
  for (const obs::ProfPhase& p : report.phases) {
    w.begin_object();
    w.kv("name", p.name);
    if (!p.parent.empty()) w.kv("parent", p.parent);
    w.kv("calls", p.calls);
    w.kv("total_ms", static_cast<double>(p.total_nanos) / 1e6);
    w.kv("self_ms", static_cast<double>(p.self_nanos) / 1e6);
    w.end_object();
  }
  w.end_array();
}

/// The standard bench document:
/// {"bench", "meta", "seeds", "columns": […], "profile": […]}.
/// Returns false (after a stderr note) on I/O failure.
inline bool write_columns_json(const std::string& path,
                               const std::string& bench_name, int seeds,
                               int jobs,
                               const std::vector<Column>& columns,
                               const obs::ProfReport& profile = {}) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", bench_name);
  json_meta(w, jobs);
  w.kv("seeds", seeds);
  w.key("columns");
  w.begin_array();
  for (const Column& col : columns) json_column(w, col);
  w.end_array();
  json_profile(w, profile);
  w.end_object();
  if (!w.write_file(path)) return false;
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace pahoehoe::bench
