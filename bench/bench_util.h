// Shared output formatting for the figure-reproduction benches.
//
// Each bench prints the same series the paper's figure shows: a per-message-
// type breakdown (the paper's stacked bars) and totals with 95% CIs, one
// column per experiment configuration.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/harness.h"

namespace pahoehoe::bench {

struct Column {
  std::string label;
  core::AggregateResult agg;
};

enum class Metric { kCount, kBytes };

inline double metric_of(const core::AggregateResult& agg, int type,
                        Metric metric) {
  return metric == Metric::kCount
             ? agg.count_by_type[static_cast<size_t>(type)].mean()
             : agg.bytes_by_type[static_cast<size_t>(type)].mean();
}

/// Scale factors matching the paper's axes: message counts in 10^3,
/// bytes in 2^20 (MiB).
inline double scale_for(Metric metric) {
  return metric == Metric::kCount ? 1e3 : 1024.0 * 1024.0;
}

inline void print_breakdown(const std::vector<Column>& columns,
                            Metric metric) {
  const char* unit = metric == Metric::kCount ? "10^3 msgs" : "MiB";
  std::printf("%-20s", "type");
  for (const auto& col : columns) std::printf(" %12s", col.label.c_str());
  std::printf("   [%s]\n", unit);

  for (int t = 0; t < wire::kMessageTypeCount; ++t) {
    bool any = false;
    for (const auto& col : columns) {
      if (metric_of(col.agg, t, metric) > 0) any = true;
    }
    if (!any) continue;
    std::printf("%-20s", wire::to_string(static_cast<wire::MessageType>(t)));
    for (const auto& col : columns) {
      std::printf(" %12.2f", metric_of(col.agg, t, metric) / scale_for(metric));
    }
    std::printf("\n");
  }

  std::printf("%-20s", "TOTAL");
  for (const auto& col : columns) {
    const auto& total =
        metric == Metric::kCount ? col.agg.msg_count : col.agg.msg_bytes;
    std::printf(" %12.2f", total.mean() / scale_for(metric));
  }
  std::printf("\n%-20s", "  (95% CI +/-)");
  for (const auto& col : columns) {
    const auto& total =
        metric == Metric::kCount ? col.agg.msg_count : col.agg.msg_bytes;
    std::printf(" %12.2f", total.ci95_halfwidth() / scale_for(metric));
  }
  std::printf("\n");
}

inline void print_ratios(const std::vector<Column>& columns, Metric metric,
                         size_t baseline_index) {
  const auto& base = metric == Metric::kCount
                         ? columns[baseline_index].agg.msg_count
                         : columns[baseline_index].agg.msg_bytes;
  std::printf("Relative to %s:\n", columns[baseline_index].label.c_str());
  for (const auto& col : columns) {
    const auto& total =
        metric == Metric::kCount ? col.agg.msg_count : col.agg.msg_bytes;
    std::printf("  %-18s %+7.1f%%\n", col.label.c_str(),
                100.0 * (total.mean() - base.mean()) / base.mean());
  }
}

inline void print_wan_row(const std::vector<Column>& columns) {
  std::printf("%-20s", "WAN bytes (MiB)");
  for (const auto& col : columns) {
    std::printf(" %12.2f", col.agg.wan_bytes.mean() / (1024.0 * 1024.0));
  }
  std::printf("\n");
}

}  // namespace pahoehoe::bench
