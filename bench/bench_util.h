// Shared output formatting for the figure-reproduction benches.
//
// Each bench prints the same series the paper's figure shows: a per-message-
// type breakdown (the paper's stacked bars) and totals with 95% CIs, one
// column per experiment configuration — plus the single JSON emission path
// (obs::JsonWriter) every BENCH_*.json file goes through.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/harness.h"
#include "obs/json.h"

namespace pahoehoe::bench {

struct Column {
  std::string label;
  core::AggregateResult agg;
};

enum class Metric { kCount, kBytes };

inline double metric_of(const core::AggregateResult& agg, int type,
                        Metric metric) {
  return metric == Metric::kCount
             ? agg.count_by_type[static_cast<size_t>(type)].mean()
             : agg.bytes_by_type[static_cast<size_t>(type)].mean();
}

/// Scale factors matching the paper's axes: message counts in 10^3,
/// bytes in 2^20 (MiB).
inline double scale_for(Metric metric) {
  return metric == Metric::kCount ? 1e3 : 1024.0 * 1024.0;
}

inline void print_breakdown(const std::vector<Column>& columns,
                            Metric metric) {
  const char* unit = metric == Metric::kCount ? "10^3 msgs" : "MiB";
  std::printf("%-20s", "type");
  for (const auto& col : columns) std::printf(" %12s", col.label.c_str());
  std::printf("   [%s]\n", unit);

  for (int t = 0; t < wire::kMessageTypeCount; ++t) {
    bool any = false;
    for (const auto& col : columns) {
      if (metric_of(col.agg, t, metric) > 0) any = true;
    }
    if (!any) continue;
    std::printf("%-20s", wire::to_string(static_cast<wire::MessageType>(t)));
    for (const auto& col : columns) {
      std::printf(" %12.2f", metric_of(col.agg, t, metric) / scale_for(metric));
    }
    std::printf("\n");
  }

  std::printf("%-20s", "TOTAL");
  for (const auto& col : columns) {
    const auto& total =
        metric == Metric::kCount ? col.agg.msg_count : col.agg.msg_bytes;
    std::printf(" %12.2f", total.mean() / scale_for(metric));
  }
  std::printf("\n%-20s", "  (95% CI +/-)");
  for (const auto& col : columns) {
    const auto& total =
        metric == Metric::kCount ? col.agg.msg_count : col.agg.msg_bytes;
    std::printf(" %12.2f", total.ci95_halfwidth() / scale_for(metric));
  }
  std::printf("\n");
}

inline void print_ratios(const std::vector<Column>& columns, Metric metric,
                         size_t baseline_index) {
  const auto& base = metric == Metric::kCount
                         ? columns[baseline_index].agg.msg_count
                         : columns[baseline_index].agg.msg_bytes;
  std::printf("Relative to %s:\n", columns[baseline_index].label.c_str());
  for (const auto& col : columns) {
    const auto& total =
        metric == Metric::kCount ? col.agg.msg_count : col.agg.msg_bytes;
    std::printf("  %-18s %+7.1f%%\n", col.label.c_str(),
                100.0 * (total.mean() - base.mean()) / base.mean());
  }
}

inline void print_wan_row(const std::vector<Column>& columns) {
  std::printf("%-20s", "WAN bytes (MiB)");
  for (const auto& col : columns) {
    std::printf(" %12.2f", col.agg.wan_bytes.mean() / (1024.0 * 1024.0));
  }
  std::printf("\n");
}

// --- shared JSON emission ---------------------------------------------------

/// {"mean": …, "ci95": …} of one per-seed statistic, values scaled.
inline void json_stat(obs::JsonWriter& w, const SampleStats& stat,
                      double scale = 1.0) {
  w.begin_object();
  w.kv("mean", stat.mean() * scale);
  w.kv("ci95", stat.ci95_halfwidth() * scale);
  w.end_object();
}

/// {"count": …, "p50": …, "p95": …, "p99": …, "max": …} of one pooled
/// distribution, quantiles scaled (e.g. 1e3 for seconds → ms).
inline void json_quantiles(obs::JsonWriter& w, const QuantileSketch& sketch,
                           double scale = 1.0) {
  w.begin_object();
  w.kv("count", sketch.count());
  w.kv("p50", sketch.quantile(0.50) * scale);
  w.kv("p95", sketch.quantile(0.95) * scale);
  w.kv("p99", sketch.quantile(0.99) * scale);
  w.kv("max", sketch.max() * scale);
  w.end_object();
}

/// One column's aggregate as a JSON object: totals with CIs, workload
/// outcome counts, and the non-zero per-message-type breakdown. The common
/// shape shared by every figure bench (fig5–9 and the baseline), so their
/// JSON differs only in what the columns sweep over.
inline void json_column(obs::JsonWriter& w, const Column& col) {
  w.begin_object();
  w.kv("label", col.label);
  w.key("msgs");
  json_stat(w, col.agg.msg_count);
  w.key("bytes");
  json_stat(w, col.agg.msg_bytes);
  w.key("wan_bytes");
  json_stat(w, col.agg.wan_bytes);
  w.key("puts_attempted");
  json_stat(w, col.agg.puts_attempted);
  w.key("puts_acked");
  json_stat(w, col.agg.puts_acked);
  w.key("excess_amr");
  json_stat(w, col.agg.excess_amr);
  w.key("non_durable");
  json_stat(w, col.agg.non_durable);
  w.key("by_type");
  w.begin_object();
  for (int t = 0; t < wire::kMessageTypeCount; ++t) {
    const auto& count = col.agg.count_by_type[static_cast<size_t>(t)];
    const auto& bytes = col.agg.bytes_by_type[static_cast<size_t>(t)];
    if (count.mean() <= 0) continue;
    w.key(wire::to_string(static_cast<wire::MessageType>(t)));
    w.begin_object();
    w.kv("msgs", count.mean());
    w.kv("bytes", bytes.mean());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

/// The standard bench document: {"bench", "seeds", "columns": […]}.
/// Returns false (after a stderr note) on I/O failure.
inline bool write_columns_json(const std::string& path,
                               const std::string& bench_name, int seeds,
                               const std::vector<Column>& columns) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", bench_name);
  w.kv("seeds", seeds);
  w.key("columns");
  w.begin_array();
  for (const Column& col : columns) json_column(w, col);
  w.end_array();
  w.end_object();
  if (!w.write_file(path)) return false;
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace pahoehoe::bench
