// Baseline comparison: erasure coding (k=4, n=12) vs. 3-way replication
// (k=1, n=3) — the paper's framing (§1–§2): the default EC policy has "the
// same storage overhead as triple replication, but can tolerate many more
// failure scenarios", and EC "requires careful implementation to avoid
// using more network bandwidth to propagate data than a replica-based
// system".
//
// This bench quantifies that trade on our implementation, for the
// failure-free case and for a 10-minute FS blackout spanning the puts:
//   * put-path bytes (both ship ~3× the data),
//   * repair bytes (replication copies whole objects; EC with sibling
//     recovery reads k fragments once and fans out the regenerated ones),
//   * fault tolerance (fragments/replicas lost before data loss).
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"

int main(int argc, char** argv) {
  using namespace pahoehoe;
  Flags flags(argc, argv);
  const int seeds =
      static_cast<int>(flags.get_int("seeds", 10, "seeds per configuration"));
  const int puts = static_cast<int>(flags.get_int("puts", 50, "puts"));
  const int object_kib =
      static_cast<int>(flags.get_int("object-kib", 100, "object size (KiB)"));
  const int jobs = static_cast<int>(
      flags.get_int("jobs", 1, "worker threads for seed dispatch"));
  const std::string out =
      flags.get_string("out", "BENCH_baseline.json", "JSON output path");
  flags.finish();

  Policy ec;  // the paper's default (k=4, n=12)
  Policy replication;
  replication.k = 1;
  replication.n = 3;
  replication.max_frags_per_fs = 1;
  replication.max_frags_per_dc = 2;
  replication.min_frags_for_success = 2;

  struct Scheme {
    const char* name;
    Policy policy;
  };
  const Scheme schemes[] = {{"EC(4,12)", ec}, {"Replication 3x", replication}};

  std::printf("Baseline: erasure coding vs replication — %d puts of %d KiB, "
              "%d seeds\n",
              puts, object_kib, seeds);
  std::printf("(equal 3x storage overhead; EC tolerates any 8 lost "
              "fragments, replication any 2 lost replicas)\n\n");
  std::printf("%-16s %-12s %14s %14s %12s\n", "scheme", "scenario",
              "bytes (MiB)", "WAN (MiB)", "msgs (10^3)");

  std::vector<bench::Column> columns;
  for (const Scheme& scheme : schemes) {
    for (const bool with_failure : {false, true}) {
      core::RunConfig config = core::paper_default_config();
      config.convergence = core::ConvergenceOptions::all_opts();
      config.workload.num_puts = puts;
      config.workload.value_size = static_cast<size_t>(object_kib) * 1024;
      config.workload.policy = scheme.policy;
      if (with_failure) {
        config.faults.push_back(core::FaultSpec::fs_blackout(
            0, 0, 0, 10LL * 60 * kMicrosPerSecond));
      }
      auto agg = core::run_many(config, seeds, 4000, jobs);
      const char* scenario = with_failure ? "1 FS down" : "failure-free";
      std::printf("%-16s %-12s %14.2f %14.2f %12.2f\n", scheme.name,
                  scenario, agg.msg_bytes.mean() / 1048576.0,
                  agg.wan_bytes.mean() / 1048576.0,
                  agg.msg_count.mean() / 1e3);
      columns.push_back(bench::Column{
          std::string(scheme.name) + " / " + scenario, std::move(agg)});
    }
  }

  std::printf(
      "\nReading: with equal storage overhead, EC's put-path bytes match\n"
      "replication's (both ship ~3x the object), while repair after the\n"
      "blackout costs EC roughly k reads amortized over all missing\n"
      "fragments (the §4.2 sibling recovery) versus whole-object copies\n"
      "for replication. EC survives 8 simultaneous fragment losses;\n"
      "replication survives 2.\n");

  bench::write_columns_json(out, "baseline_replication", seeds, jobs,
                            columns);
  return 0;
}
