#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace pahoehoe::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table. Order is emission order within a line.

constexpr const char* kRuleRand = "nondet-rand";
constexpr const char* kRuleClock = "nondet-clock";
constexpr const char* kRuleEnv = "nondet-env";
constexpr const char* kRuleUnordered = "unordered-iter";
constexpr const char* kRuleProfLiteral = "prof-literal";
constexpr const char* kRulePtrKey = "ptr-key";
constexpr const char* kRuleFloat = "float-digest";
constexpr const char* kRuleStale = "stale-annotation";
constexpr const char* kRuleBadAnnotation = "bad-annotation";

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kRules = {
      {kRuleRand, "rand-ok",
       "ambient randomness (rand/random_device/...) is banned; draw from "
       "pahoehoe::Rng seeded by the run config"},
      {kRuleClock, "wallclock-ok",
       "wall-clock reads are confined to the obs/prof module; simulation "
       "code uses sim time"},
      {kRuleEnv, "env-ok",
       "process-environment reads go through pahoehoe::env (common/env.h), "
       "the single sanctioned getenv module"},
      {kRuleUnordered, "ordered-ok",
       "iterating a std::unordered_{map,set} leaks hash order into whatever "
       "is built from it; iterate a sorted view or prove order-insensitivity"},
      {kRuleProfLiteral, "prof-ok",
       "ProfScope/phase ids must be string literals: the thread-local "
       "accumulator keys by pointer identity"},
      {kRulePtrKey, "ptrkey-ok",
       "pointer-keyed std::map/std::set orders by address, which varies run "
       "to run; key by a stable id"},
      {kRuleFloat, "float-ok",
       "float accumulation in the sim plane must be order-deterministic "
       "(seed-order merge) before it may feed digests or JSON"},
      {kRuleStale, "",
       "a lint:*-ok annotation whose line no longer triggers the rule must "
       "be deleted (meta rule, not suppressible)"},
      {kRuleBadAnnotation, "",
       "a lint annotation must name a known rule and carry a non-empty "
       "reason (meta rule, not suppressible)"},
  };
  return kRules;
}

const RuleInfo* rule_for_annotation(const std::string& name) {
  for (const RuleInfo& r : rule_table()) {
    if (r.annotation[0] != '\0' && name == r.annotation) return &r;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Lexer: blank comments and string/char literals, keeping line structure and
// the literal's delimiting quotes (so "is the first ctor arg a string
// literal?" stays answerable on the blanked text). Comment text is kept per
// line for annotation parsing.

struct LexedFile {
  const SourceFile* src = nullptr;
  std::string code;                       // blanked, same length as content
  std::vector<std::string> comment_text;  // 1-based by line; [0] unused
  int line_count = 0;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

LexedFile lex(const SourceFile& src) {
  LexedFile out;
  out.src = &src;
  const std::string& s = src.content;
  out.code.assign(s.size(), ' ');
  out.line_count =
      1 + static_cast<int>(std::count(s.begin(), s.end(), '\n'));
  out.comment_text.assign(static_cast<size_t>(out.line_count) + 1, "");

  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  St st = St::kCode;
  int line = 1;
  std::string raw_delim;  // for raw strings: the ")delim\"" terminator
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      out.code[i] = '\n';
      if (st == St::kLineComment) st = St::kCode;
      continue;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          ++i;  // swallow the second slash (blank already)
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          ++i;
        } else if (c == '"') {
          // Raw string? The opener is R"delim( with R adjacent to the quote.
          if (i > 0 && s[i - 1] == 'R' &&
              (i < 2 || !ident_char(s[i - 2]))) {
            size_t p = i + 1;
            while (p < s.size() && s[p] != '(' && s[p] != '\n') ++p;
            if (p < s.size() && s[p] == '(') {
              raw_delim = ")" + s.substr(i + 1, p - i - 1) + "\"";
              out.code[i] = '"';
              st = St::kRaw;
              break;
            }
          }
          out.code[i] = '"';
          st = St::kString;
        } else if (c == '\'' && i > 0 && ident_char(s[i - 1])) {
          out.code[i] = '\'';  // digit separator? treat as literal quote:
          st = St::kChar;      // C++14 separators only appear in numbers,
          if (std::isdigit(static_cast<unsigned char>(s[i - 1])) &&
              ident_char(next)) {
            st = St::kCode;  // 1'000'000 — keep scanning as code
          }
        } else if (c == '\'') {
          out.code[i] = '\'';
          st = St::kChar;
        } else {
          out.code[i] = c;
        }
        break;
      case St::kLineComment:
        out.comment_text[static_cast<size_t>(line)] += c;
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          ++i;
          st = St::kCode;
        } else {
          out.comment_text[static_cast<size_t>(line)] += c;
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++i;
          if (next == '\n') ++line;
        } else if (c == '"') {
          out.code[i] = '"';
          st = St::kCode;
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out.code[i] = '\'';
          st = St::kCode;
        }
        break;
      case St::kRaw:
        if (c == ')' && s.compare(i, raw_delim.size(), raw_delim) == 0) {
          // Count the newlines the raw literal spans were already handled
          // character-by-character (the '\n' branch above runs first), so
          // just close it out.
          i += raw_delim.size() - 1;
          out.code[i] = '"';
          st = St::kCode;
        } else if (c == '\n') {
          ++line;  // unreachable (handled above), kept for clarity
        }
        break;
    }
  }
  return out;
}

int line_of(const LexedFile& f, size_t pos) {
  return 1 + static_cast<int>(
                 std::count(f.code.begin(), f.code.begin() + pos, '\n'));
}

// ---------------------------------------------------------------------------
// Token scanning helpers over blanked code.

/// Position of `token` as a whole identifier at/after `from`; npos if none.
size_t find_token(const std::string& code, const std::string& token,
                  size_t from) {
  size_t p = from;
  while ((p = code.find(token, p)) != std::string::npos) {
    const bool left_ok = p == 0 || !ident_char(code[p - 1]);
    const size_t end = p + token.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return p;
    p = end;
  }
  return std::string::npos;
}

size_t skip_ws(const std::string& code, size_t p) {
  while (p < code.size() &&
         std::isspace(static_cast<unsigned char>(code[p])) != 0) {
    ++p;
  }
  return p;
}

/// Matching close for the bracket pair opening at `open` ('(' or '<' or
/// '{'); npos when unbalanced.
size_t match_bracket(const std::string& code, size_t open, char oc, char cc) {
  int depth = 0;
  for (size_t p = open; p < code.size(); ++p) {
    if (code[p] == oc) {
      ++depth;
    } else if (code[p] == cc) {
      if (--depth == 0) return p;
    } else if (oc == '<' && code[p] == ';') {
      return std::string::npos;  // template args never span a statement
    }
  }
  return std::string::npos;
}

std::string prev_token(const std::string& code, size_t before) {
  size_t p = before;
  while (p > 0 &&
         std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
    --p;
  }
  size_t end = p;
  while (p > 0 && ident_char(code[p - 1])) --p;
  return code.substr(p, end - p);
}

std::string trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

/// Trailing identifier of an expression like `cluster.view()->dc_of_node`;
/// empty when the expression ends in something else (call, index, ...).
std::string terminal_identifier(const std::string& expr) {
  std::string t = trim(expr);
  if (t.empty() || !ident_char(t.back())) return "";
  size_t b = t.size();
  while (b > 0 && ident_char(t[b - 1])) --b;
  return t.substr(b);
}

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Annotations.

struct Annotation {
  int line = 0;
  std::string name;    // e.g. "ordered-ok"
  std::string reason;  // text inside (...)
  bool malformed = false;
  bool used = false;
};

std::vector<Annotation> parse_annotations(const LexedFile& f) {
  std::vector<Annotation> out;
  for (int line = 1; line <= f.line_count; ++line) {
    const std::string& text = f.comment_text[static_cast<size_t>(line)];
    size_t p = 0;
    while ((p = text.find("lint:", p)) != std::string::npos) {
      if (p > 0 && ident_char(text[p - 1])) {  // e.g. "pahoehoe_lint:"
        p += 5;
        continue;
      }
      Annotation a;
      a.line = line;
      size_t q = p + 5;
      while (q < text.size() &&
             (ident_char(text[q]) || text[q] == '-')) {
        a.name += text[q++];
      }
      if (q < text.size() && text[q] == '(') {
        const size_t close = text.find(')', q);
        if (close != std::string::npos) {
          a.reason = trim(text.substr(q + 1, close - q - 1));
          q = close + 1;
        } else {
          a.malformed = true;
        }
      } else {
        a.malformed = true;  // reason is mandatory: lint:<name>(<why>)
      }
      // Prose that merely mentions "lint:" (docs, tool output quoted in a
      // comment) is not an annotation *attempt*: only the suppression
      // shape — an `-ok` name or a parenthesized reason — is held to the
      // annotation grammar.
      const bool looks_like_attempt =
          (a.name.size() > 3 &&
           a.name.compare(a.name.size() - 3, 3, "-ok") == 0) ||
          !a.malformed;
      if (looks_like_attempt) out.push_back(a);
      p = q;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-file rule scans. Each emits (line, rule-id, message) triples.

struct RawDiag {
  int line = 0;
  const char* rule = nullptr;
  std::string message;
};

struct BannedToken {
  const char* token;
  const char* rule;
  bool call_only;  ///< require '(' after the token (function-like source)
  const char* hint;
};

const BannedToken kBannedTokens[] = {
    {"rand", kRuleRand, true, "use pahoehoe::Rng (common/rng.h)"},
    {"srand", kRuleRand, true, "use pahoehoe::Rng (common/rng.h)"},
    {"rand_r", kRuleRand, true, "use pahoehoe::Rng (common/rng.h)"},
    {"drand48", kRuleRand, true, "use pahoehoe::Rng (common/rng.h)"},
    {"lrand48", kRuleRand, true, "use pahoehoe::Rng (common/rng.h)"},
    {"random_device", kRuleRand, false,
     "seed pahoehoe::Rng from the run config instead"},
    {"system_clock", kRuleClock, false,
     "use sim time, or obs/prof for wall-clock measurement"},
    {"steady_clock", kRuleClock, false,
     "use sim time, or obs/prof for wall-clock measurement"},
    {"high_resolution_clock", kRuleClock, false,
     "use sim time, or obs/prof for wall-clock measurement"},
    {"time", kRuleClock, true,
     "use sim time, or obs/prof for wall-clock measurement"},
    {"clock", kRuleClock, true,
     "use sim time, or obs/prof for wall-clock measurement"},
    {"clock_gettime", kRuleClock, true,
     "use sim time, or obs/prof for wall-clock measurement"},
    {"gettimeofday", kRuleClock, true,
     "use sim time, or obs/prof for wall-clock measurement"},
    {"getenv", kRuleEnv, true, "call pahoehoe::env::* (common/env.h)"},
    {"secure_getenv", kRuleEnv, true,
     "call pahoehoe::env::* (common/env.h)"},
};

bool rule_whitelisted(const char* rule, const std::string& path) {
  if (rule == kRuleClock || rule == kRuleProfLiteral) {
    // The wall-clock module itself (and its declaration site).
    return path_contains(path, "src/obs/prof.");
  }
  if (rule == kRuleEnv) {
    // The single sanctioned environment-access module.
    return path_contains(path, "src/common/env.");
  }
  if (rule == kRuleFloat) {
    // The float rule guards the sim/digest plane; benches, examples and
    // tests reduce host-measured values that never feed a digest.
    return !path_contains(path, "src/");
  }
  return false;
}

void scan_banned_tokens(const LexedFile& f, std::vector<RawDiag>& out) {
  for (const BannedToken& b : kBannedTokens) {
    if (rule_whitelisted(b.rule, f.src->path)) continue;
    const std::string token = b.token;
    size_t p = 0;
    while ((p = find_token(f.code, token, p)) != std::string::npos) {
      const size_t after = skip_ws(f.code, p + token.size());
      bool hit = true;
      if (b.call_only) {
        hit = after < f.code.size() && f.code[after] == '(';
        // Member calls (`sim.time()`) are a different function entirely.
        if (hit && p > 0) {
          const char prev = f.code[p - 1];
          if (prev == '.' ||
              (prev == '>' && p > 1 && f.code[p - 2] == '-')) {
            hit = false;
          }
        }
      }
      if (hit) {
        out.push_back({line_of(f, p), b.rule,
                       "nondeterminism source `" + token +
                           "` in the sim plane; " + b.hint});
      }
      p += token.size();
    }
  }
}

/// Pass 1 helper: names declared as std::unordered_map/unordered_set
/// (variables, members, parameters), mapped to their declaration site.
void collect_unordered_decls(const LexedFile& f,
                             std::map<std::string, std::string>& decls) {
  for (const char* type : {"unordered_map", "unordered_set",
                           "unordered_multimap", "unordered_multiset"}) {
    size_t p = 0;
    while ((p = find_token(f.code, type, p)) != std::string::npos) {
      const size_t start = p;
      p += std::string(type).size();
      size_t q = skip_ws(f.code, p);
      if (q >= f.code.size() || f.code[q] != '<') continue;
      const size_t close = match_bracket(f.code, q, '<', '>');
      if (close == std::string::npos) continue;
      q = skip_ws(f.code, close + 1);
      // Skip references/pointers in parameter declarations.
      while (q < f.code.size() && (f.code[q] == '&' || f.code[q] == '*')) {
        q = skip_ws(f.code, q + 1);
      }
      if (q < f.code.size() && ident_char(f.code[q])) {
        size_t e = q;
        while (e < f.code.size() && ident_char(f.code[e])) ++e;
        const std::string name = f.code.substr(q, e - q);
        if (name != "const" && name != "operator" && name != "return" &&
            !decls.count(name)) {
          decls[name] =
              f.src->path + ":" + std::to_string(line_of(f, start));
        }
      }
      p = close;
    }
  }
}

void scan_range_for(const LexedFile& f,
                    const std::map<std::string, std::string>& unordered,
                    std::vector<RawDiag>& out) {
  size_t p = 0;
  while ((p = find_token(f.code, "for", p)) != std::string::npos) {
    const size_t for_pos = p;
    p += 3;
    const size_t open = skip_ws(f.code, p);
    if (open >= f.code.size() || f.code[open] != '(') continue;
    const size_t close = match_bracket(f.code, open, '(', ')');
    if (close == std::string::npos) continue;
    // Top-level ':' (not '::') with no ';' before it => range-for.
    size_t colon = std::string::npos;
    int depth = 0;
    bool classic = false;
    for (size_t q = open + 1; q < close; ++q) {
      const char c = f.code[q];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (depth != 0) continue;
      if (c == ';') {
        classic = true;
        break;
      }
      if (c == ':' && f.code[q + 1] != ':' &&
          (q == 0 || f.code[q - 1] != ':')) {
        colon = q;
        break;
      }
    }
    if (classic || colon == std::string::npos) continue;
    const std::string expr = f.code.substr(colon + 1, close - colon - 1);
    const std::string name = terminal_identifier(expr);
    if (name.empty()) continue;
    const auto it = unordered.find(name);
    if (it == unordered.end()) continue;
    out.push_back(
        {line_of(f, for_pos), kRuleUnordered,
         "range-for over `" + name + "` (declared std::unordered_* at " +
             it->second +
             "); hash order is nondeterministic — copy into a sorted view, "
             "or annotate if the loop body is order-insensitive"});
  }
}

void scan_prof_literal(const LexedFile& f, std::vector<RawDiag>& out) {
  if (rule_whitelisted(kRuleProfLiteral, f.src->path)) return;
  size_t p = 0;
  while ((p = find_token(f.code, "ProfScope", p)) != std::string::npos) {
    const size_t at = p;
    p += 9;
    if (at > 0 && f.code[at - 1] == '~') continue;  // destructor
    if (prev_token(f.code, at) == "class" ||
        prev_token(f.code, at) == "struct") {
      continue;
    }
    size_t q = skip_ws(f.code, p);
    // Optional variable name between the type and the ctor argument list.
    if (q < f.code.size() && ident_char(f.code[q])) {
      while (q < f.code.size() && ident_char(f.code[q])) ++q;
      q = skip_ws(f.code, q);
    }
    if (q >= f.code.size() || (f.code[q] != '(' && f.code[q] != '{')) {
      continue;
    }
    const char oc = f.code[q];
    const size_t close =
        match_bracket(f.code, q, oc, oc == '(' ? ')' : '}');
    if (close == std::string::npos || close == q + 1) continue;  // decl ()
    const std::string arg = trim(f.code.substr(q + 1, close - q - 1));
    if (arg.empty() || arg[0] == '"' || arg == "nullptr") continue;
    out.push_back(
        {line_of(f, at), kRuleProfLiteral,
         "ProfScope phase id `" + arg +
             "` is not a string literal; the accumulator keys by pointer — "
             "pass a literal, or annotate a static-storage source"});
  }
}

void scan_ptr_key(const LexedFile& f, std::vector<RawDiag>& out) {
  for (const char* type : {"map", "set", "multimap", "multiset"}) {
    size_t p = 0;
    while ((p = find_token(f.code, type, p)) != std::string::npos) {
      const size_t at = p;
      p += std::string(type).size();
      // Only the std:: spellings: a bare `map<` is someone else's type.
      if (at < 2 || f.code[at - 1] != ':' || f.code[at - 2] != ':') continue;
      size_t q = skip_ws(f.code, at + std::string(type).size());
      if (q >= f.code.size() || f.code[q] != '<') continue;
      const size_t close = match_bracket(f.code, q, '<', '>');
      if (close == std::string::npos) continue;
      // First template argument: up to the top-level comma (or the close).
      size_t end = close;
      int depth = 0;
      for (size_t r = q + 1; r < close; ++r) {
        const char c = f.code[r];
        if (c == '<' || c == '(') ++depth;
        if (c == '>' || c == ')') --depth;
        if (depth == 0 && c == ',') {
          end = r;
          break;
        }
      }
      const std::string key = trim(f.code.substr(q + 1, end - q - 1));
      if (!key.empty() && key.back() == '*') {
        out.push_back(
            {line_of(f, at), kRulePtrKey,
             "std::" + std::string(type) + " keyed by pointer (`" + key +
                 "`): iteration order is the allocator's, not the "
                 "program's — key by a stable id instead"});
      }
    }
  }
}

void scan_float_accumulation(const LexedFile& f, std::vector<RawDiag>& out) {
  if (rule_whitelisted(kRuleFloat, f.src->path)) return;
  // Identifiers declared double/float in this TU (locals and members that
  // are declared in the same file; cross-TU members are out of lexical
  // reach and covered by review + the digest-identity tests).
  std::set<std::string> float_names;
  for (const char* type : {"double", "float"}) {
    size_t p = 0;
    while ((p = find_token(f.code, type, p)) != std::string::npos) {
      p += std::string(type).size();
      size_t q = skip_ws(f.code, p);
      if (q < f.code.size() && ident_char(f.code[q]) &&
          !std::isdigit(static_cast<unsigned char>(f.code[q]))) {
        size_t e = q;
        while (e < f.code.size() && ident_char(f.code[e])) ++e;
        const size_t after = skip_ws(f.code, e);
        // `double mean() const` declares a function, not an accumulator.
        if (after < f.code.size() && f.code[after] != '(') {
          float_names.insert(f.code.substr(q, e - q));
        }
      }
    }
  }
  for (const std::string& name : float_names) {
    size_t p = 0;
    while ((p = find_token(f.code, name, p)) != std::string::npos) {
      const size_t at = p;
      p += name.size();
      const size_t q = skip_ws(f.code, at + name.size());
      if (q + 1 < f.code.size() && (f.code[q] == '+' || f.code[q] == '-') &&
          f.code[q + 1] == '=') {
        out.push_back(
            {line_of(f, at), kRuleFloat,
             "float accumulation into `" + name +
                 "` in the sim plane; FP addition is order-sensitive — "
                 "accumulate in a deterministic order and annotate, or use "
                 "integers"});
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() { return rule_table(); }

int Report::active_count() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) n += d.suppressed ? 0 : 1;
  return n;
}

int Report::suppressed_count() const {
  return static_cast<int>(diagnostics.size()) - active_count();
}

std::string Report::to_text(size_t files_scanned) const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics) {
    if (d.suppressed) continue;
    os << d.path << ":" << d.line << ": " << d.rule << ": " << d.message
       << "\n";
  }
  os << "pahoehoe_lint: " << files_scanned << " files, " << active_count()
     << (active_count() == 1 ? " diagnostic, " : " diagnostics, ")
     << suppressed_count() << " suppressed\n";
  return os.str();
}

Report analyze(const std::vector<SourceFile>& files) {
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& f : files) lexed.push_back(lex(f));

  // Cross-file pass: any identifier declared unordered anywhere taints
  // range-fors over that name in every TU (members declared in headers are
  // iterated from .cpp files the lexer cannot otherwise connect).
  std::map<std::string, std::string> unordered;
  for (const LexedFile& f : lexed) collect_unordered_decls(f, unordered);

  Report report;
  for (const LexedFile& f : lexed) {
    std::vector<RawDiag> raw;
    scan_banned_tokens(f, raw);
    scan_range_for(f, unordered, raw);
    scan_prof_literal(f, raw);
    scan_ptr_key(f, raw);
    scan_float_accumulation(f, raw);
    std::stable_sort(raw.begin(), raw.end(),
                     [](const RawDiag& a, const RawDiag& b) {
                       return a.line < b.line;
                     });

    std::vector<Annotation> annotations = parse_annotations(f);
    for (const RawDiag& d : raw) {
      const RuleInfo* info = nullptr;
      for (const RuleInfo& r : rule_table()) {
        if (r.id == d.rule) info = &r;
      }
      bool suppressed = false;
      for (Annotation& a : annotations) {
        // Malformed or reason-less annotations never suppress: the meta
        // diagnostic below keeps the original finding company instead.
        if (a.malformed || a.reason.empty() || info == nullptr) continue;
        if (a.name != info->annotation) continue;
        // Inline means the flagged line or the line directly above.
        if (a.line == d.line || a.line + 1 == d.line) {
          a.used = true;
          suppressed = true;
        }
      }
      report.diagnostics.push_back(
          {f.src->path, d.line, d.rule, d.message, suppressed});
    }
    for (const Annotation& a : annotations) {
      if (a.malformed) {
        report.diagnostics.push_back(
            {f.src->path, a.line, kRuleBadAnnotation,
             "malformed annotation `lint:" + a.name +
                 "`: write lint:<name>-ok(<non-empty reason>)",
             false});
        continue;
      }
      const RuleInfo* target = rule_for_annotation(a.name);
      if (target == nullptr) {
        report.diagnostics.push_back(
            {f.src->path, a.line, kRuleBadAnnotation,
             "unknown annotation `lint:" + a.name +
                 "`; see pahoehoe_lint --list-rules",
             false});
        continue;
      }
      if (a.reason.empty()) {
        report.diagnostics.push_back(
            {f.src->path, a.line, kRuleBadAnnotation,
             "annotation `lint:" + a.name + "` needs a reason: lint:" +
                 a.name + "(<why this is deterministic>)",
             false});
        continue;
      }
      if (!a.used) {
        report.diagnostics.push_back(
            {f.src->path, a.line, kRuleStale,
             "stale `lint:" + a.name +
                 "`: no " + std::string(target->id) +
                 " diagnostic on this or the next line — delete the "
                 "annotation",
             false});
      }
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Selftest: one bad and one good fixture per rule, plus the annotation
// machinery (suppression counted, stale and malformed flagged).

namespace {

struct Fixture {
  const char* name;
  const char* path;
  const char* content;
  const char* expect_rule;  // nullptr => expect clean
};

const Fixture kFixtures[] = {
    {"rand-bad", "src/core/x.cpp", "int f() { return rand() % 7; }\n",
     kRuleRand},
    {"rand-good", "src/core/x.cpp",
     "int f(Rng& rng) { return (int)rng.uniform_int(0, 6); }\n", nullptr},
    {"random-device-bad", "src/core/x.cpp",
     "std::mt19937 g{std::random_device{}()};\n", kRuleRand},
    {"clock-bad", "src/core/x.cpp",
     "auto t = std::chrono::steady_clock::now();\n", kRuleClock},
    {"clock-whitelisted", "src/obs/prof.cpp",
     "using Clock = std::chrono::steady_clock;\n", nullptr},
    {"clock-member-call-good", "src/core/x.cpp",
     "double t = sim.time();\n", nullptr},
    {"env-bad", "src/core/x.cpp",
     "const char* v = std::getenv(\"PAHOEHOE_X\");\n", kRuleEnv},
    {"env-whitelisted", "src/common/env.cpp",
     "const char* v = std::getenv(name);\n", nullptr},
    {"unordered-bad", "src/core/x.cpp",
     "std::unordered_map<int, int> table;\n"
     "void f() { for (const auto& [k, v] : table) emit(k, v); }\n",
     kRuleUnordered},
    {"unordered-good", "src/core/x.cpp",
     "std::map<int, int> table;\n"
     "void f() { for (const auto& [k, v] : table) emit(k, v); }\n",
     nullptr},
    {"prof-bad", "src/core/x.cpp",
     "void f(const char* phase) { obs::ProfScope prof(phase); }\n",
     kRuleProfLiteral},
    {"prof-good", "src/core/x.cpp",
     "void f() { obs::ProfScope prof(\"encode\"); }\n", nullptr},
    {"ptrkey-bad", "src/core/x.cpp",
     "std::map<const Node*, int> rank;\n", kRulePtrKey},
    {"ptrkey-good", "src/core/x.cpp", "std::map<NodeId, int> rank;\n",
     nullptr},
    {"float-bad", "src/core/x.cpp",
     "double total = 0;\nvoid f(double v) { total += v; }\n", kRuleFloat},
    {"float-good-integer", "src/core/x.cpp",
     "uint64_t total = 0;\nvoid f(uint64_t v) { total += v; }\n", nullptr},
    {"float-outside-sim-plane", "bench/x.cpp",
     "double total = 0;\nvoid f(double v) { total += v; }\n", nullptr},
    {"string-literal-masked", "src/core/x.cpp",
     "const char* s = \"rand() getenv( steady_clock\";\n", nullptr},
    {"comment-masked", "src/core/x.cpp",
     "// rand() getenv( steady_clock\nint x = 0;\n", nullptr},
};

bool expect(bool ok, const char* what, int& failures) {
  std::printf("  %s %s\n", ok ? "ok " : "FAIL", what);
  if (!ok) ++failures;
  return ok;
}

}  // namespace

int selftest() {
  int failures = 0;
  std::printf("pahoehoe_lint selftest\n");
  for (const Fixture& fx : kFixtures) {
    const Report r = analyze({{fx.path, fx.content}});
    if (fx.expect_rule == nullptr) {
      expect(r.active_count() == 0 && r.suppressed_count() == 0, fx.name,
             failures);
    } else {
      const bool fired =
          r.active_count() >= 1 &&
          std::all_of(r.diagnostics.begin(), r.diagnostics.end(),
                      [&](const Diagnostic& d) {
                        return d.rule == fx.expect_rule;
                      });
      expect(fired, fx.name, failures);
    }
  }
  {
    const Report r = analyze(
        {{"src/core/x.cpp",
          "std::unordered_map<int, int> table;\n"
          "void f() {\n"
          "  // lint:ordered-ok(sums are commutative)\n"
          "  for (const auto& [k, v] : table) total_ += v;\n"
          "}\n"}});
    expect(r.active_count() == 0 && r.suppressed_count() == 1,
           "annotation-suppresses", failures);
  }
  {
    const Report r = analyze(
        {{"src/core/x.cpp",
          "std::map<int, int> table;  // lint:ordered-ok(left behind)\n"}});
    expect(r.active_count() == 1 && r.diagnostics[0].rule == kRuleStale,
           "stale-annotation-flagged", failures);
  }
  {
    const Report r = analyze(
        {{"src/core/x.cpp",
          "std::unordered_map<int, int> t;\n"
          "void f() { for (const auto& [k, v] : t) g(k); }  "
          "// lint:ordered-ok()\n"}});
    expect(r.active_count() == 2, "empty-reason-rejected", failures);
  }
  {
    // Cross-file: member declared unordered in the header, iterated in the
    // .cpp — the whole point of the two-pass analysis.
    const Report r = analyze(
        {{"src/core/x.h", "struct S { std::unordered_set<int> live_; };\n"},
         {"src/core/x.cpp",
          "void S::f() { for (int id : live_) emit(id); }\n"}});
    expect(r.active_count() == 1 &&
               r.diagnostics[0].rule == kRuleUnordered &&
               r.diagnostics[0].path == "src/core/x.cpp",
           "cross-file-member", failures);
  }
  std::printf("pahoehoe_lint selftest: %s\n",
              failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace pahoehoe::lint
