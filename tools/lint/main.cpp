// pahoehoe_lint CLI: run the determinism-contract rules over the tree.
//
// Usage:
//   pahoehoe_lint --root=.            # lint src/ bench/ examples/ tests/ tools/
//   pahoehoe_lint --list-rules        # rule ids, annotations, contracts
//   pahoehoe_lint --selftest          # built-in fixture battery
//
// Exit status: 0 when the tree is clean (suppressed findings are counted in
// the summary but do not fail), 1 on any active diagnostic, 2 on usage /
// I/O errors. Mirrors the trendcheck CLI conventions (DESIGN.md §11):
// value-bearing messages, --selftest proving the engine itself.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "lint.h"

namespace fs = std::filesystem;

namespace {

// The analyzed surface: every C++ TU that can feed simulation results,
// benches, or their tests. tools/ is included so the linter lints itself.
constexpr const char* kScanDirs[] = {"src", "bench", "examples", "tests",
                                     "tools"};

bool has_cpp_extension(const fs::path& p) {
  return p.extension() == ".cpp" || p.extension() == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  pahoehoe::Flags flags(argc, argv);
  const std::string root =
      flags.get_string("root", ".", "repo root to scan (src/, bench/, ...)");
  const bool list_rules =
      flags.get_bool("list-rules", false, "print the rule table and exit");
  const bool run_selftest =
      flags.get_bool("selftest", false, "run the built-in fixture battery");
  flags.finish();

  if (list_rules) {
    std::printf("%-18s %-14s %s\n", "rule", "annotation", "contract");
    for (const pahoehoe::lint::RuleInfo& r : pahoehoe::lint::rules()) {
      std::printf("%-18s %-14s %s\n", r.id,
                  r.annotation[0] ? r.annotation : "-", r.summary);
    }
    return 0;
  }
  if (run_selftest) return pahoehoe::lint::selftest();

  std::vector<pahoehoe::lint::SourceFile> files;
  std::error_code ec;
  for (const char* dir : kScanDirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::is_directory(base, ec)) continue;
    std::vector<fs::path> paths;
    for (const fs::directory_entry& entry :
         fs::recursive_directory_iterator(base, ec)) {
      if (entry.is_regular_file() && has_cpp_extension(entry.path())) {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      std::ifstream in(p, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "pahoehoe_lint: cannot read %s\n",
                     p.string().c_str());
        return 2;
      }
      std::ostringstream content;
      content << in.rdbuf();
      files.push_back({fs::relative(p, root, ec).generic_string(),
                       content.str()});
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "pahoehoe_lint: no sources under --root=%s "
                 "(expected src/, bench/, examples/, tests/)\n",
                 root.c_str());
    return 2;
  }

  const pahoehoe::lint::Report report = pahoehoe::lint::analyze(files);
  std::fputs(report.to_text(files.size()).c_str(), stdout);
  return report.active_count() == 0 ? 0 : 1;
}
