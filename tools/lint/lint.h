// pahoehoe-lint: the determinism contract as machine-checkable rules.
//
// Everything the reproduction claims — figure parity, chaos-search
// reproducibility, cross-kernel bit-exactness (DESIGN.md §10), profiler
// side-channel purity (DESIGN.md §11) — rests on one invariant: simulation
// output is byte-identical for any --jobs, any SIMD kernel, any host. The
// digest-identity tests enforce that contract dynamically, after the fact;
// this analyzer rejects the known ways of breaking it at review time
// (DESIGN.md §12 enumerates the rules).
//
// It is deliberately not a compiler plugin: a small lexer strips comments
// and string/char literals per translation unit and structural rules run
// over the blanked text. That keeps the tool dependency-free (no libclang)
// and fast enough to run on every CI push, at the cost of being a lexical
// approximation — rules are tuned so that every miss is conservative
// (flag and let a human annotate) rather than silent.
//
// Suppressions are inline annotations only — `// lint:<name>-ok(<reason>)`
// on the flagged line or the line directly above; there is no global
// ignore file. A stale annotation (one that no longer suppresses anything)
// is itself a diagnostic, so the set of sanctioned exceptions can never
// silently grow or rot.
#pragma once

#include <string>
#include <vector>

namespace pahoehoe::lint {

/// One file to analyze. `path` should be repo-root-relative (it drives the
/// per-module whitelists, e.g. wall-clock reads inside src/obs/prof.*).
struct SourceFile {
  std::string path;
  std::string content;
};

/// One finding. `suppressed` findings were silenced by a matching
/// annotation; they are reported in the summary count but do not fail the
/// run.
struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;     ///< rule id, e.g. "unordered-iter"
  std::string message;  ///< what happened + how to fix it
  bool suppressed = false;
};

/// Static description of one rule, for --list-rules and the docs.
struct RuleInfo {
  const char* id;          ///< diagnostic id
  const char* annotation;  ///< suppression name: // lint:<annotation>(<why>)
  const char* summary;     ///< one-line contract statement
};

/// Every structural rule, in the order diagnostics are emitted. The two
/// meta rules (`stale-annotation`, `bad-annotation`) guard the suppression
/// mechanism itself and cannot be suppressed.
const std::vector<RuleInfo>& rules();

struct Report {
  std::vector<Diagnostic> diagnostics;  ///< active + suppressed, file order

  int active_count() const;
  int suppressed_count() const;

  /// `file:line: rule-id: message` per active diagnostic, then a summary
  /// line (`pahoehoe_lint: N files, D diagnostics, S suppressed`).
  std::string to_text(size_t files_scanned) const;
};

/// Run every rule over `files`. Cross-file state (identifiers declared as
/// std::unordered_map/set anywhere in the set) is collected first, so pass
/// the whole tree in one call for full coverage.
Report analyze(const std::vector<SourceFile>& files);

/// Built-in fixture battery: every rule must fire on its bad snippet and
/// stay quiet on the good one, annotations must suppress and go stale.
/// Prints one line per case; returns 0 iff all pass.
int selftest();

}  // namespace pahoehoe::lint
