// Minimal JSON support shared by the bench binaries.
//
// JsonWriter is the single emission path for every BENCH_*.json file: a
// stack-checked streaming writer with stable number formatting, so output
// is deterministic and valid by construction. The companion parser is a
// small recursive-descent reader used by self-checks (ctest smoke targets)
// to re-read an emitted file and validate its schema; it accepts exactly
// standard JSON and returns nullopt on any syntax error.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pahoehoe::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member name inside an object; must be followed by a value or
  /// container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double v);
  JsonWriter& value(int64_t v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(bool v);

  JsonWriter& kv(const std::string& k, const std::string& v) {
    return key(k).value(v);
  }
  JsonWriter& kv(const std::string& k, const char* v) {
    return key(k).value(v);
  }
  JsonWriter& kv(const std::string& k, double v) { return key(k).value(v); }
  JsonWriter& kv(const std::string& k, int64_t v) { return key(k).value(v); }
  JsonWriter& kv(const std::string& k, uint64_t v) { return key(k).value(v); }
  JsonWriter& kv(const std::string& k, int v) { return key(k).value(v); }
  JsonWriter& kv(const std::string& k, bool v) { return key(k).value(v); }

  /// The finished document; checks every container was closed.
  const std::string& str() const;

  /// Write the finished document (plus a trailing newline) to `path`.
  /// Returns false and prints to stderr on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  void before_value();
  void newline_indent();

  std::string out_;
  std::vector<char> stack_;       // '{' or '['
  bool first_in_container_ = true;
  bool after_key_ = false;
};

/// Parsed JSON value (tree form; numbers as double, objects as ordered
/// maps).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& k) const;
};

/// Parse one complete JSON document (trailing whitespace allowed).
std::optional<JsonValue> json_parse(const std::string& text);

/// Read and parse a whole file; nullopt if unreadable or invalid.
std::optional<JsonValue> json_parse_file(const std::string& path);

}  // namespace pahoehoe::obs
