// Deterministic metric registry for simulation-wide telemetry.
//
// Counters, gauges, and histograms keyed by (name, labels) with stable
// lexicographic iteration order. Every value is either a plain integer or a
// bucket-count sketch, so per-seed registries merge by exact addition —
// associative and commutative — and a parallel sweep folded in seed order
// is byte-identical to the serial run. All instrumentation is driven by
// simulated time, never a wall clock (see DESIGN.md), so the same seed
// always produces the same registry.
//
// Naming convention (documented in EXPERIMENTS.md): snake_case metric names
// with a `_total` suffix for counters and an `_s` suffix for histograms of
// seconds; per-node series carry a {node=nNNN} label, per-message-type
// series add {type=...}.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace pahoehoe::obs {

/// Label dimensions of one metric instance, e.g.
/// {{"node", "n101"}, {"type", "StoreFragmentReq"}}. Keys must be unique;
/// the registry normalizes ordering, so callers may list them in any order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Render as {k=v,k=v}; empty string for no labels.
std::string to_string(const Labels& labels);

/// Monotone event count. Hot paths should grab the reference once (it stays
/// valid for the registry's lifetime) instead of re-looking-up per event.
class Counter {
 public:
  void inc(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  friend class MetricRegistry;
  uint64_t value_ = 0;
};

/// Point-in-time level with a high-water mark.
class Gauge {
 public:
  void set(int64_t v) {
    value_ = v;
    peak_ = std::max(peak_, v);
  }
  void add(int64_t delta) { set(value_ + delta); }
  int64_t value() const { return value_; }
  int64_t peak() const { return peak_; }

 private:
  friend class MetricRegistry;
  int64_t value_ = 0;
  int64_t peak_ = 0;
};

/// Distribution of non-negative samples on top of QuantileSketch (bounded
/// relative error, bucket-wise mergeable).
class Histogram {
 public:
  explicit Histogram(double relative_error = 0.01)
      : sketch_(relative_error) {}

  void observe(double x) {
    sketch_.add(x);
    // lint:float-ok(observes arrive in sim-event order; merges in seed order)
    sum_ += x;
  }
  uint64_t count() const { return sketch_.count(); }
  double sum() const { return sum_; }
  double quantile(double q) const { return sketch_.quantile(q); }
  const QuantileSketch& sketch() const { return sketch_; }

 private:
  friend class MetricRegistry;
  QuantileSketch sketch_;
  double sum_ = 0.0;
};

class MetricRegistry {
 public:
  /// Find-or-create. Returned references remain valid for the registry's
  /// lifetime (node-based map storage).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       double relative_error = 0.01);

  /// Merge another registry in: counters add, gauges add values and peaks
  /// (a merged registry reports cross-seed totals; a "peak of the sum" is
  /// not reconstructible from partials, so the summed peak is an upper
  /// bound by design), histograms merge bucket-wise. Exact addition, so
  /// seed-order folds do not depend on how runs were scheduled.
  void merge(const MetricRegistry& other);

  /// Sum of one counter over every label set (0 if absent).
  uint64_t counter_sum(const std::string& name) const;

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Stable multi-line dump, one metric per line in (name, labels) order:
  ///   counter net_sent_count{node=n101,type=DecideLocsReq} 42
  ///   gauge amr_backlog 3 peak 17
  ///   histogram time_to_amr_s count 97 p50 61.234 p95 118.7 p99 140.2
  /// Used directly by the determinism tests: byte equality of to_text() is
  /// the definition of "identical telemetry".
  std::string to_text() const;

 private:
  using MetricKey = std::pair<std::string, Labels>;  // (name, sorted labels)
  static MetricKey make_key(const std::string& name, const Labels& labels);

  std::map<MetricKey, Counter> counters_;
  std::map<MetricKey, Gauge> gauges_;
  std::map<MetricKey, Histogram> histograms_;
};

}  // namespace pahoehoe::obs
