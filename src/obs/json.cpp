#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace pahoehoe::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void JsonWriter::newline_indent() {
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  PAHOEHOE_CHECK_MSG(stack_.empty() || stack_.back() == '[',
                     "object member written without a key");
  if (!stack_.empty()) {
    if (!first_in_container_) out_ += ',';
    newline_indent();
  } else {
    PAHOEHOE_CHECK_MSG(out_.empty(), "second top-level JSON value");
  }
  first_in_container_ = false;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  PAHOEHOE_CHECK_MSG(!stack_.empty() && stack_.back() == '{' && !after_key_,
                     "key() outside an object");
  if (!first_in_container_) out_ += ',';
  newline_indent();
  first_in_container_ = false;
  append_escaped(out_, name);
  out_ += ": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back('{');
  first_in_container_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PAHOEHOE_CHECK_MSG(!stack_.empty() && stack_.back() == '{' && !after_key_,
                     "end_object() without matching begin");
  const bool empty = first_in_container_;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ += '}';
  first_in_container_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back('[');
  first_in_container_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PAHOEHOE_CHECK_MSG(!stack_.empty() && stack_.back() == '[',
                     "end_array() without matching begin");
  const bool empty = first_in_container_;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ += ']';
  first_in_container_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  before_value();
  append_escaped(out_, s);
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) {
  return value(std::string(s));
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  char buf[40];
  // %.10g round-trips every value the benches emit and never produces
  // locale-dependent output; NaN/inf are not valid JSON, so refuse them.
  PAHOEHOE_CHECK_MSG(v == v && v <= 1e308 && v >= -1e308,
                     "non-finite number in JSON output");
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

const std::string& JsonWriter::str() const {
  PAHOEHOE_CHECK_MSG(stack_.empty() && !after_key_,
                     "unclosed JSON container");
  return out_;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::string& doc = str();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
  return ok;
}

// --- parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  /// Containers may nest at most this deep. Parsing is recursive, so without
  /// a bound a short adversarial input ("[[[[…") overflows the stack; no
  /// document this repo writes or reads nests anywhere near 64 levels.
  static constexpr int kMaxDepth = 64;

  explicit Parser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        if (depth_ >= kMaxDepth) return false;
        return parse_object(out);
      case '[':
        if (depth_ >= kMaxDepth) return false;
        return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string name;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !parse_string(name)) {
        return false;
      }
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue member;
      if (!parse_value(member)) return false;
      out.object.emplace(std::move(name), std::move(member));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char esc = s_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by our writer; decode them as-is if ever seen).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return false;
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    // Validate the RFC 8259 number grammar before handing the slice to
    // strtod: bare strtod also accepts "inf", "nan", hex floats, and a
    // leading '+', none of which are JSON. The writer's %.10g output
    // ("1e+06", "-0.5", "1e-09") all fits this grammar.
    const size_t begin = pos_;
    size_t p = pos_;
    const auto digit = [this](size_t i) {
      return i < s_.size() && s_[i] >= '0' && s_[i] <= '9';
    };
    if (p < s_.size() && s_[p] == '-') ++p;
    if (!digit(p)) return false;
    if (s_[p] == '0') {
      ++p;  // a leading zero cannot be followed by more digits
    } else {
      while (digit(p)) ++p;
    }
    if (p < s_.size() && s_[p] == '.') {
      ++p;
      if (!digit(p)) return false;
      while (digit(p)) ++p;
    }
    if (p < s_.size() && (s_[p] == 'e' || s_[p] == 'E')) {
      ++p;
      if (p < s_.size() && (s_[p] == '+' || s_[p] == '-')) ++p;
      if (!digit(p)) return false;
      while (digit(p)) ++p;
    }
    // Convert exactly the validated slice: strtod on the raw tail would
    // happily keep reading past it (e.g. "01" validates as "0" but strtod
    // eats both digits), and then the trailing-garbage check would be
    // bypassed.
    const std::string slice = s_.substr(begin, p - begin);
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(slice.c_str(), nullptr);
    pos_ = p;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
  int depth_ = 0;  // open containers; bounded by kMaxDepth
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& k) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(k);
  return it == object.end() ? nullptr : &it->second;
}

std::optional<JsonValue> json_parse(const std::string& text) {
  return Parser(text).parse();
}

std::optional<JsonValue> json_parse_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return json_parse(text);
}

}  // namespace pahoehoe::obs
