#include "obs/metrics.h"

#include <cstdio>

#include "common/check.h"

namespace pahoehoe::obs {

std::string to_string(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

MetricRegistry::MetricKey MetricRegistry::make_key(const std::string& name,
                                                   const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 1; i < sorted.size(); ++i) {
    PAHOEHOE_CHECK_MSG(sorted[i - 1].first != sorted[i].first,
                       "duplicate metric label key");
  }
  return {name, std::move(sorted)};
}

Counter& MetricRegistry::counter(const std::string& name,
                                 const Labels& labels) {
  return counters_[make_key(name, labels)];
}

Gauge& MetricRegistry::gauge(const std::string& name, const Labels& labels) {
  return gauges_[make_key(name, labels)];
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     const Labels& labels,
                                     double relative_error) {
  auto key = make_key(name, labels);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::move(key), Histogram(relative_error)).first;
  }
  return it->second;
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const auto& [key, counter] : other.counters_) {
    counters_[key].value_ += counter.value_;
  }
  for (const auto& [key, gauge] : other.gauges_) {
    Gauge& mine = gauges_[key];
    mine.value_ += gauge.value_;
    mine.peak_ += gauge.peak_;
  }
  for (const auto& [key, histogram] : other.histograms_) {
    auto it = histograms_.find(key);
    if (it == histograms_.end()) {
      histograms_.emplace(key, histogram);
    } else {
      it->second.sketch_.merge(histogram.sketch_);
      it->second.sum_ += histogram.sum_;
    }
  }
}

uint64_t MetricRegistry::counter_sum(const std::string& name) const {
  uint64_t total = 0;
  // Keys sort by name first, so every label set of `name` is contiguous.
  for (auto it = counters_.lower_bound({name, Labels{}});
       it != counters_.end() && it->first.first == name; ++it) {
    total += it->second.value_;
  }
  return total;
}

std::string MetricRegistry::to_text() const {
  std::string out;
  char buf[160];
  for (const auto& [key, counter] : counters_) {
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(counter.value_));
    out += "counter ";
    out += key.first;
    out += to_string(key.second);
    out += buf;
  }
  for (const auto& [key, gauge] : gauges_) {
    std::snprintf(buf, sizeof(buf), " %lld peak %lld\n",
                  static_cast<long long>(gauge.value_),
                  static_cast<long long>(gauge.peak_));
    out += "gauge ";
    out += key.first;
    out += to_string(key.second);
    out += buf;
  }
  for (const auto& [key, histogram] : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  " count %llu p50 %.6g p95 %.6g p99 %.6g max %.6g\n",
                  static_cast<unsigned long long>(histogram.count()),
                  histogram.quantile(0.50), histogram.quantile(0.95),
                  histogram.quantile(0.99), histogram.sketch().max());
    out += "histogram ";
    out += key.first;
    out += to_string(key.second);
    out += buf;
  }
  return out;
}

}  // namespace pahoehoe::obs
