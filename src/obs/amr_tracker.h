// Per-version time-to-AMR tracking (the §5 discussion's real quantity of
// interest: how long after the client ack a version takes to reach At
// Maximum Redundancy).
//
// The proxy reports the put ack; the first component to conclusively
// observe AMR for that version (an FS verifying is_amr, or the proxy seeing
// every ack on the put path) reports the confirmation. The tracker keeps
//  * a latency histogram (QuantileSketch, seconds) over versions that were
//    both acked and confirmed,
//  * the live non-AMR backlog: acked versions not yet confirmed, with its
//    high-water mark.
#pragma once

#include <cstdint>
#include <map>

#include "common/stats.h"
#include "common/types.h"

namespace pahoehoe::obs {

class AmrTracker {
 public:
  explicit AmrTracker(double relative_error = 0.01)
      : latency_s_(relative_error) {}

  /// The client was answered "success" for `ov` at sim time `when`.
  void on_put_acked(const ObjectVersionId& ov, SimTime when);

  /// Some component observed `ov` at maximum redundancy at `when`. Only the
  /// first confirmation per version counts; a confirmation may arrive
  /// before the ack (the proxy concludes AMR in the same message round that
  /// completes the ack threshold), in which case the latency is 0.
  void on_amr_confirmed(const ObjectVersionId& ov, SimTime when);

  /// Acked versions not yet confirmed AMR.
  size_t backlog() const { return pending_.size(); }
  size_t backlog_peak() const { return backlog_peak_; }

  uint64_t acked() const { return acked_; }
  /// Distinct versions confirmed AMR (acked or not — convergence also
  /// finishes versions whose put the client saw fail).
  uint64_t confirmed() const { return confirmed_count_; }
  /// Versions both acked and confirmed == latency_s().count().
  uint64_t resolved() const { return latency_s_.count(); }

  /// Ack → first-confirmation latency in seconds.
  const QuantileSketch& latency_s() const { return latency_s_; }

 private:
  std::map<ObjectVersionId, SimTime> pending_;    // acked, not yet confirmed
  std::map<ObjectVersionId, SimTime> confirmed_;  // first confirmation time
  uint64_t acked_ = 0;
  uint64_t confirmed_count_ = 0;
  size_t backlog_peak_ = 0;
  QuantileSketch latency_s_;
};

}  // namespace pahoehoe::obs
