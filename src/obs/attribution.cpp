#include "obs/attribution.h"

#include <algorithm>
#include <cstdio>

namespace pahoehoe::obs {

namespace {

double micros_to_s(uint64_t micros) {
  return static_cast<double>(micros) / static_cast<double>(kMicrosPerSecond);
}

std::string fmt(const char* f, double a) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, a);
  return buf;
}

std::optional<PathComponent> component_from_string(const std::string& name) {
  for (size_t i = 0; i < kPathComponentCount; ++i) {
    const auto c = static_cast<PathComponent>(i);
    if (name == to_string(c)) return c;
  }
  return std::nullopt;
}

std::string component_us_key(PathComponent c) {
  return std::string(to_string(c)) + "_us";
}

bool read_u64(const JsonValue& v, const std::string& k, uint64_t* out) {
  const JsonValue* m = v.find(k);
  if (m == nullptr || !m->is_number()) return false;
  *out = static_cast<uint64_t>(m->number);
  return true;
}

bool read_i64(const JsonValue& v, const std::string& k, int64_t* out) {
  const JsonValue* m = v.find(k);
  if (m == nullptr || !m->is_number()) return false;
  *out = static_cast<int64_t>(m->number);
  return true;
}

bool read_double(const JsonValue& v, const std::string& k, double* out) {
  const JsonValue* m = v.find(k);
  if (m == nullptr || !m->is_number()) return false;
  *out = m->number;
  return true;
}

void cohort_to_json(JsonWriter& w, const CohortTotals& c) {
  w.begin_object()
      .kv("versions", c.versions)
      .kv("latency_us", c.latency_micros);
  for (size_t i = 0; i < kPathComponentCount; ++i) {
    w.kv(component_us_key(static_cast<PathComponent>(i)),
         c.component_micros[i]);
  }
  w.end_object();
}

bool cohort_from_json(const JsonValue& v, CohortTotals* out) {
  if (!v.is_object()) return false;
  if (!read_u64(v, "versions", &out->versions)) return false;
  if (!read_u64(v, "latency_us", &out->latency_micros)) return false;
  for (size_t i = 0; i < kPathComponentCount; ++i) {
    if (!read_u64(v, component_us_key(static_cast<PathComponent>(i)),
                  &out->component_micros[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

double CohortTotals::mean_s() const {
  if (versions == 0) return 0.0;
  return micros_to_s(latency_micros) / static_cast<double>(versions);
}

double CohortTotals::component_mean_s(PathComponent c) const {
  if (versions == 0) return 0.0;
  return micros_to_s(component_micros[static_cast<size_t>(c)]) /
         static_cast<double>(versions);
}

AttributionBuilder::AttributionBuilder(const ExemplarStore& store) {
  const QuantileSketch& sketch = store.latency_s();
  report_.p50_s = sketch.quantile(0.5);
  report_.p95_s = sketch.quantile(0.95);
  report_.p99_s = sketch.quantile(0.99);
  report_.max_s = sketch.max();
  report_.tail_threshold_s = sketch.quantile(0.95);
  report_.top = store.worst();
}

void AttributionBuilder::add(const VersionCriticalPath& path) {
  const SimTime total = path.total();
  // Membership is tested in the same double space the sketch was fed, so
  // the max-latency version always lands in the tail even when p95 == max.
  const bool tail =
      static_cast<double>(total) / static_cast<double>(kMicrosPerSecond) >=
      report_.tail_threshold_s;
  CohortTotals& cohort = tail ? report_.tail : report_.body;
  ++cohort.versions;
  cohort.latency_micros += static_cast<uint64_t>(total);
  for (size_t i = 0; i < kPathComponentCount; ++i) {
    cohort.component_micros[i] += static_cast<uint64_t>(path.components[i]);
  }
}

AttributionReport AttributionBuilder::finish() const {
  AttributionReport report = report_;
  report.versions = report.tail.versions + report.body.versions;
  report.ranked.clear();
  double gap_sum = 0.0;
  for (size_t i = 0; i < kPathComponentCount; ++i) {
    const auto c = static_cast<PathComponent>(i);
    ComponentGap g;
    g.component = c;
    g.tail_mean_s = report.tail.component_mean_s(c);
    g.body_mean_s = report.body.component_mean_s(c);
    g.gap_s = g.tail_mean_s - g.body_mean_s;
    gap_sum += std::max(g.gap_s, 0.0);  // lint:float-ok(fixed 4-component order over seed-order-merged integer totals)
    report.ranked.push_back(g);
  }
  if (gap_sum > 0.0) {
    for (ComponentGap& g : report.ranked) {
      g.gap_share = std::max(g.gap_s, 0.0) / gap_sum;
    }
  }
  std::stable_sort(report.ranked.begin(), report.ranked.end(),
                   [](const ComponentGap& a, const ComponentGap& b) {
                     return a.gap_share > b.gap_share;
                   });
  return report;
}

std::string AttributionReport::to_text() const {
  if (empty()) return "tail attribution: no resolved versions\n";
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "tail attribution: versions %llu tail %llu body %llu "
                "(tail latency >= p95 %.6gs)\n",
                static_cast<unsigned long long>(versions),
                static_cast<unsigned long long>(tail.versions),
                static_cast<unsigned long long>(body.versions),
                tail_threshold_s);
  std::string out = buf;
  const std::string ratio =
      p50_s > 0.0 ? fmt("%.1f", p99_s / p50_s) + "x" : std::string("n/a");
  std::snprintf(buf, sizeof(buf),
                "  p50 %.6gs p95 %.6gs p99 %.6gs max %.6gs p99/p50 %s\n",
                p50_s, p95_s, p99_s, max_s, ratio.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  tail mean %.6gs body mean %.6gs gap %.6gs\n", tail.mean_s(),
                body.mean_s(), tail.mean_s() - body.mean_s());
  out += buf;
  for (const ComponentGap& g : ranked) {
    std::snprintf(buf, sizeof(buf),
                  "  %s %.1f%% of gap (tail mean %.6gs body mean %.6gs)\n",
                  to_string(g.component), g.gap_share * 100.0, g.tail_mean_s,
                  g.body_mean_s);
    out += buf;
  }
  size_t shown = 0;
  for (const Exemplar& e : top) {
    if (shown++ >= 3) break;
    out += "  top exemplar " + exemplar_to_text(e) + "\n";
  }
  return out;
}

std::string attribution_diff_text(const AttributionReport& fresh,
                                  const AttributionReport& baseline) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "attribution diff (fresh vs baseline): versions %llu vs %llu\n",
                static_cast<unsigned long long>(fresh.versions),
                static_cast<unsigned long long>(baseline.versions));
  std::string out = buf;
  const auto ratio = [](double a, double b) {
    return b > 0.0 ? fmt("%.2f", a / b) + "x" : std::string("n/a");
  };
  std::snprintf(buf, sizeof(buf),
                "  p95 %.6gs vs %.6gs (%s)  p99 %.6gs vs %.6gs (%s)\n",
                fresh.p95_s, baseline.p95_s,
                ratio(fresh.p95_s, baseline.p95_s).c_str(), fresh.p99_s,
                baseline.p99_s, ratio(fresh.p99_s, baseline.p99_s).c_str());
  out += buf;
  // Fixed enum order (not ranked order) so the two reports line up.
  for (size_t i = 0; i < kPathComponentCount; ++i) {
    const auto c = static_cast<PathComponent>(i);
    const auto share_of = [c](const AttributionReport& r) {
      for (const ComponentGap& g : r.ranked) {
        if (g.component == c) return g.gap_share;
      }
      return 0.0;
    };
    const double fs = share_of(fresh);
    const double bs = share_of(baseline);
    std::snprintf(buf, sizeof(buf),
                  "  %s gap share %.1f%% vs %.1f%% (delta %+.1f%%)\n",
                  to_string(c), fs * 100.0, bs * 100.0, (fs - bs) * 100.0);
    out += buf;
  }
  if (!fresh.top.empty()) {
    out += "  fresh top exemplar " + exemplar_to_text(fresh.top.front()) + "\n";
  }
  if (!baseline.top.empty()) {
    out += "  baseline top exemplar " + exemplar_to_text(baseline.top.front()) +
           "\n";
  }
  return out;
}

void attribution_to_json(JsonWriter& w, const AttributionReport& report) {
  w.begin_object()
      .kv("versions", report.versions)
      .kv("p50_s", report.p50_s)
      .kv("p95_s", report.p95_s)
      .kv("p99_s", report.p99_s)
      .kv("max_s", report.max_s)
      .kv("tail_threshold_s", report.tail_threshold_s);
  w.key("tail");
  cohort_to_json(w, report.tail);
  w.key("body");
  cohort_to_json(w, report.body);
  w.key("ranked").begin_array();
  for (const ComponentGap& g : report.ranked) {
    w.begin_object()
        .kv("component", to_string(g.component))
        .kv("tail_mean_s", g.tail_mean_s)
        .kv("body_mean_s", g.body_mean_s)
        .kv("gap_s", g.gap_s)
        .kv("gap_share", g.gap_share)
        .end_object();
  }
  w.end_array();
  w.key("top_exemplars").begin_array();
  for (const Exemplar& e : report.top) {
    w.begin_object()
        .kv("key", e.ov.key.value)
        .kv("ts_wall_us", static_cast<int64_t>(e.ov.ts.wall_micros))
        .kv("ts_proxy", static_cast<uint64_t>(e.ov.ts.proxy))
        .kv("seed", e.seed)
        .kv("latency_us", static_cast<int64_t>(e.latency_micros));
    for (size_t i = 0; i < kPathComponentCount; ++i) {
      w.kv(component_us_key(static_cast<PathComponent>(i)),
           static_cast<int64_t>(e.components[i]));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::optional<AttributionReport> attribution_from_json(const JsonValue& v) {
  if (!v.is_object()) return std::nullopt;
  AttributionReport report;
  if (!read_u64(v, "versions", &report.versions)) return std::nullopt;
  if (!read_double(v, "p50_s", &report.p50_s)) return std::nullopt;
  if (!read_double(v, "p95_s", &report.p95_s)) return std::nullopt;
  if (!read_double(v, "p99_s", &report.p99_s)) return std::nullopt;
  if (!read_double(v, "max_s", &report.max_s)) return std::nullopt;
  if (!read_double(v, "tail_threshold_s", &report.tail_threshold_s)) {
    return std::nullopt;
  }
  const JsonValue* tail = v.find("tail");
  const JsonValue* body = v.find("body");
  if (tail == nullptr || !cohort_from_json(*tail, &report.tail)) {
    return std::nullopt;
  }
  if (body == nullptr || !cohort_from_json(*body, &report.body)) {
    return std::nullopt;
  }
  const JsonValue* ranked = v.find("ranked");
  if (ranked == nullptr || !ranked->is_array()) return std::nullopt;
  for (const JsonValue& rv : ranked->array) {
    const JsonValue* name = rv.find("component");
    if (name == nullptr || !name->is_string()) return std::nullopt;
    const auto c = component_from_string(name->string);
    if (!c.has_value()) return std::nullopt;
    ComponentGap g;
    g.component = *c;
    if (!read_double(rv, "tail_mean_s", &g.tail_mean_s) ||
        !read_double(rv, "body_mean_s", &g.body_mean_s) ||
        !read_double(rv, "gap_s", &g.gap_s) ||
        !read_double(rv, "gap_share", &g.gap_share)) {
      return std::nullopt;
    }
    report.ranked.push_back(g);
  }
  const JsonValue* top = v.find("top_exemplars");
  if (top == nullptr || !top->is_array()) return std::nullopt;
  for (const JsonValue& ev : top->array) {
    const JsonValue* key = ev.find("key");
    if (key == nullptr || !key->is_string()) return std::nullopt;
    Exemplar e;
    e.ov.key.value = key->string;
    int64_t wall = 0;
    uint64_t proxy = 0;
    int64_t latency = 0;
    if (!read_i64(ev, "ts_wall_us", &wall) ||
        !read_u64(ev, "ts_proxy", &proxy) || !read_u64(ev, "seed", &e.seed) ||
        !read_i64(ev, "latency_us", &latency)) {
      return std::nullopt;
    }
    e.ov.ts.wall_micros = wall;
    e.ov.ts.proxy = static_cast<uint32_t>(proxy);
    e.latency_micros = latency;
    for (size_t i = 0; i < kPathComponentCount; ++i) {
      int64_t micros = 0;
      if (!read_i64(ev, component_us_key(static_cast<PathComponent>(i)),
                    &micros)) {
        return std::nullopt;
      }
      e.components[i] = micros;
    }
    report.top.push_back(e);
  }
  return report;
}

}  // namespace pahoehoe::obs
