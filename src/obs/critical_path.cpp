#include "obs/critical_path.h"

#include <cstdio>

namespace pahoehoe::obs {

const char* to_string(PathComponent c) {
  switch (c) {
    case PathComponent::kNetworkWait:
      return "network_wait";
    case PathComponent::kRoundScheduling:
      return "round_scheduling";
    case PathComponent::kRecoveryBackoff:
      return "recovery_backoff";
    case PathComponent::kServerProcessing:
      return "server_processing";
  }
  return "unknown";
}

void CriticalPathAggregate::add(const VersionCriticalPath& path) {
  ++versions_;
  const SimTime total = path.total();
  for (size_t i = 0; i < kPathComponentCount; ++i) {
    const SimTime micros = path.components[i];
    totals_[i] += static_cast<uint64_t>(micros);
    seconds_[i].add(static_cast<double>(micros) /
                    static_cast<double>(kMicrosPerSecond));
    if (total > 0) {
      share_[i].add(static_cast<double>(micros) / static_cast<double>(total));
    }
  }
}

void CriticalPathAggregate::merge(const CriticalPathAggregate& other) {
  versions_ += other.versions_;
  for (size_t i = 0; i < kPathComponentCount; ++i) {
    totals_[i] += other.totals_[i];
    seconds_[i].merge(other.seconds_[i]);
    share_[i].merge(other.share_[i]);
  }
}

std::string CriticalPathAggregate::to_text() const {
  std::string out = "critical_path versions " + std::to_string(versions_) + "\n";
  char buf[256];
  for (size_t i = 0; i < kPathComponentCount; ++i) {
    std::snprintf(buf, sizeof(buf),
                  "component %s total_s %.6f count %llu p50 %.10g p95 %.10g "
                  "share_count %llu share_p50 %.10g share_p95 %.10g\n",
                  to_string(static_cast<PathComponent>(i)),
                  static_cast<double>(totals_[i]) /
                      static_cast<double>(kMicrosPerSecond),
                  static_cast<unsigned long long>(seconds_[i].count()),
                  seconds_[i].quantile(0.5), seconds_[i].quantile(0.95),
                  static_cast<unsigned long long>(share_[i].count()),
                  share_[i].quantile(0.5), share_[i].quantile(0.95));
    out += buf;
  }
  return out;
}

}  // namespace pahoehoe::obs
