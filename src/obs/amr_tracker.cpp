#include "obs/amr_tracker.h"

#include <algorithm>

namespace pahoehoe::obs {

void AmrTracker::on_put_acked(const ObjectVersionId& ov, SimTime when) {
  ++acked_;
  if (confirmed_.count(ov) > 0) {
    // Already AMR by the time the client was answered: zero latency.
    latency_s_.add(0.0);
    return;
  }
  pending_.emplace(ov, when);
  backlog_peak_ = std::max(backlog_peak_, pending_.size());
}

void AmrTracker::on_amr_confirmed(const ObjectVersionId& ov, SimTime when) {
  if (!confirmed_.emplace(ov, when).second) return;  // already confirmed
  ++confirmed_count_;
  auto it = pending_.find(ov);
  if (it == pending_.end()) return;  // never acked (or ack still to come)
  const SimTime acked_at = it->second;
  pending_.erase(it);
  latency_s_.add(when <= acked_at
                     ? 0.0
                     : static_cast<double>(when - acked_at) /
                           static_cast<double>(kMicrosPerSecond));
}

}  // namespace pahoehoe::obs
