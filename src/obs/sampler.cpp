#include "obs/sampler.h"

#include "common/check.h"

namespace pahoehoe::obs {

void TimeSeries::append(SimTime t, std::vector<double> values) {
  PAHOEHOE_CHECK(values.size() == columns_.size());
  Row row;
  row.t = t;
  row.n = 1;
  row.sums = std::move(values);
  rows_.push_back(std::move(row));
}

void TimeSeries::merge_aligned(const TimeSeries& other) {
  if (other.rows_.empty() && other.columns_.empty()) return;
  if (columns_.empty() && rows_.empty()) columns_ = other.columns_;
  PAHOEHOE_CHECK_MSG(columns_ == other.columns_,
                     "merging time-series with different columns");
  for (size_t i = 0; i < other.rows_.size(); ++i) {
    if (i >= rows_.size()) {
      rows_.push_back(other.rows_[i]);
      continue;
    }
    Row& mine = rows_[i];
    const Row& theirs = other.rows_[i];
    PAHOEHOE_CHECK_MSG(mine.t == theirs.t,
                       "merging time-series with misaligned ticks");
    mine.n += theirs.n;
    for (size_t c = 0; c < mine.sums.size(); ++c) {
      mine.sums[c] += theirs.sums[c];
    }
  }
}

double TimeSeries::value(size_t row, size_t column) const {
  const Row& r = rows_[row];
  return r.n == 0 ? 0.0 : r.sums[column] / static_cast<double>(r.n);
}

Sampler::Sampler(sim::Simulator& sim, SimTime interval,
                 std::vector<std::string> columns, Probe probe,
                 size_t max_samples)
    : sim_(sim), interval_(interval), probe_(std::move(probe)),
      max_samples_(max_samples), series_(std::move(columns)) {
  PAHOEHOE_CHECK(interval_ > 0);
  PAHOEHOE_CHECK(probe_ != nullptr);
  take_sample();  // baseline row at construction time (t = 0 in a fresh run)
  arm();
}

Sampler::~Sampler() {
  if (timer_ != 0) sim_.cancel(timer_);
}

void Sampler::arm() {
  if (series_.rows().size() >= max_samples_) return;
  timer_ = sim_.schedule_after(interval_, [this] { tick(); });
}

void Sampler::tick() {
  timer_ = 0;
  take_sample();
  // Our own event already fired, so pending() counts only the rest of the
  // simulation: re-arm only while there is other work to observe.
  if (sim_.pending() > 0) arm();
}

void Sampler::take_sample() { series_.append(sim_.now(), probe_(sim_.now())); }

}  // namespace pahoehoe::obs
