// Deterministic causal span tracer: per-object-version lifecycle trees.
//
// Every object version gets a tree of spans — put start, erasure encode,
// each fragment/metadata message (send → deliver, with the cross-node edge
// carried explicitly in a span-context token on the wire envelope), every
// convergence round, backoff wait, recovery, AMR-indication skip, and the
// final AMR confirmation. The tracer is a pure observer of the simulation:
// it schedules no events, draws no randomness, and reads time only from the
// simulator clock, so enabling it never changes a run and the same seed
// always yields the same trees (byte-identical renders).
//
// Causality propagation works through two ambient mechanisms, so the
// instrumented code never threads span ids around:
//   * a scope stack: version_scope()/deliver_scope() push the span that is
//     currently executing; spans and messages created while a scope is
//     active become its children.
//   * a span-context token on wire::Envelope (`span`, simulation-plane
//     only — excluded from wire_size(), so the paper's byte accounting is
//     untouched). Network::send stamps it from the active scope;
//     Network::deliver opens a scope from it, so a handler's replies chain
//     to the message that triggered them even across nodes.
//
// The tracer also runs the critical-path attribution clock (see
// obs/critical_path.h): on every traced event it banks the elapsed interval
// since the previous event into exactly one component, so the components of
// an acked version telescope to exactly confirm_time - ack_time.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/critical_path.h"
#include "sim/simulator.h"

namespace pahoehoe::obs {

class JsonWriter;
struct ProfReport;

/// One node in a version's causal tree. Ids are 1-based and local to the
/// version; parent 0 marks the root.
struct Span {
  uint32_t id = 0;
  uint32_t parent = 0;
  std::string name;
  NodeId node;           ///< node the span executed on (sender, for messages)
  NodeId peer;           ///< message spans: destination node
  SimTime start = 0;
  SimTime end = -1;      ///< -1 while open; dropped messages close at send
  std::string note;      ///< free-form annotation ("attempt 3", "dropped")
};

class SpanTracer {
 public:
  /// RAII handle returned by version_scope()/deliver_scope(). Destruction
  /// pops the scope and closes its span (at the then-current simulated
  /// time) if still open. Move-only; a default-constructed Scope is inert.
  class Scope {
   public:
    Scope() = default;
    Scope(Scope&& o) noexcept : tracer_(o.tracer_) { o.tracer_ = nullptr; }
    Scope& operator=(Scope&& o) noexcept {
      if (this != &o) {
        release();
        tracer_ = o.tracer_;
        o.tracer_ = nullptr;
      }
      return *this;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { release(); }

   private:
    friend class SpanTracer;
    explicit Scope(SpanTracer* t) : tracer_(t) {}
    void release();
    SpanTracer* tracer_ = nullptr;
  };

  /// Turn tracing on. Off (default-constructed), every hook is a cheap
  /// no-op and tokens are 0. `max_spans_per_version` bounds memory: once a
  /// version's tree is full, further spans are counted in spans_dropped()
  /// but not stored; messages past the cap are untracked, so component
  /// attribution of their flight time falls to the residual components
  /// (totals still telescope exactly to confirm - ack).
  void enable(sim::Simulator* sim, size_t max_spans_per_version = 8192);
  bool enabled() const { return sim_ != nullptr; }

  // ---- instrumentation hooks (all no-ops when disabled) ----

  /// Open a span for `ov` and push it on the scope stack. Parent is the
  /// innermost active scope for the same version, else the version's root.
  /// The first span ever opened for a version becomes its root.
  [[nodiscard]] Scope version_scope(const ObjectVersionId& ov,
                                    const char* name, NodeId node,
                                    std::string note = {});

  /// Record a closed span [start, end] without touching the scope stack
  /// (instants use start == end). Same parenting rule as version_scope.
  void interval(const ObjectVersionId& ov, const char* name, NodeId node,
                SimTime start, SimTime end, std::string note = {});

  /// Network::send: open a message span under the active scope and return
  /// the token to stamp on the envelope (0 = untracked: tracer disabled, no
  /// active scope, or the version's tree is full).
  uint64_t on_send(NodeId from, NodeId to, const char* type);
  /// Network fault-drop: close the message span with a "dropped" note.
  void on_drop(uint64_t token);
  /// Network::deliver: close the message span (first delivery wins; a
  /// duplicated copy arriving later leaves the span closed at the earlier
  /// time) and push it as the active scope for the handler's duration.
  [[nodiscard]] Scope deliver_scope(uint64_t token);

  /// Mirror of AmrTracker::on_put_acked: starts the critical-path clock.
  void on_put_acked(const ObjectVersionId& ov, NodeId node);
  /// Mirror of AmrTracker::on_amr_confirmed: first confirmation closes the
  /// version's root span and seals its VersionCriticalPath record.
  void on_amr_confirmed(const ObjectVersionId& ov, NodeId node);

  /// FS work-list bookkeeping for attribution: `node` has convergence work
  /// for `ov` with the given next_attempt; `recovering` while a fragment
  /// recovery is in flight (also opens/closes a "recovery" span on the
  /// transition, annotated with `note`).
  void report_work(const ObjectVersionId& ov, NodeId node,
                   SimTime next_attempt, bool recovering,
                   const char* note = "");
  /// `node` no longer holds work for `ov` (AMR reached, AMR indication,
  /// give-up, crash).
  void report_work_done(const ObjectVersionId& ov, NodeId node);

  // ---- inspection ----

  bool has_version(const ObjectVersionId& ov) const;
  /// Traced versions in (key, ts) order.
  std::vector<ObjectVersionId> versions() const;
  size_t span_count(const ObjectVersionId& ov) const;
  uint64_t spans_dropped() const { return spans_dropped_; }

  /// Sealed critical-path records, in confirmation order.
  const std::vector<VersionCriticalPath>& critical_paths() const {
    return critical_paths_;
  }

  /// Annotated text tree of one version's lifecycle (deterministic; used by
  /// the version_inspector CLI and chaos forensics). Empty if untracked.
  std::string render_tree(const ObjectVersionId& ov) const;

  /// Deterministic walk over every stored span: versions in (key, ts)
  /// order, spans in id order within each version. This is the chaos
  /// coverage extractor's raw feed — iteration order is part of the
  /// signature-determinism contract (DESIGN.md §9), so it must never depend
  /// on container addresses or insertion races.
  void visit_spans(const std::function<void(const ObjectVersionId&,
                                            const Span&)>& visit) const;

  /// Chrome trace-event / Perfetto JSON: {"traceEvents": [...]} with "M"
  /// process_name metadata per node and one "X" complete event per span
  /// (ts/dur in simulated micros, pid = node id value, tid = per-version
  /// lane). `select` empty exports every traced version.
  /// `wall_profile`, when given, adds a synthetic "wall-clock profile"
  /// process (pid 0) next to the sim-time lanes: one "X" event per profiled
  /// phase, nested parent-inside-child flame-style, ts/dur in host
  /// *microseconds of wall time* rather than sim time (obs/prof.h).
  void export_perfetto(JsonWriter& w,
                       const std::vector<ObjectVersionId>& select = {},
                       const ProfReport* wall_profile = nullptr) const;

 private:
  struct NodeWork {
    SimTime next_attempt = 0;
    bool recovering = false;
    uint32_t recovery_span = 0;  // open "recovery" span id, 0 if none
  };

  struct VersionTrace {
    ObjectVersionId ov;
    std::vector<Span> spans;    // span id i lives at spans[i - 1]
    uint32_t root = 0;
    uint64_t dropped = 0;       // spans not stored due to the cap
    // Critical-path attribution state.
    bool acked = false;
    bool confirmed = false;
    SimTime ack_time = 0;
    SimTime last_t = 0;         // attribution clock high-water mark
    int64_t inflight = 0;       // tracked messages currently in flight
    std::map<NodeId, NodeWork> work;
    std::array<SimTime, kPathComponentCount> components{};
  };

  VersionTrace* find(const ObjectVersionId& ov);
  const VersionTrace* find(const ObjectVersionId& ov) const;
  VersionTrace& intern(const ObjectVersionId& ov);
  /// Append a span; returns its id, or 0 if the version's tree is full.
  /// The first stored span becomes the version's root; parent 0 falls back
  /// to the root.
  uint32_t add_span(VersionTrace& v, uint32_t parent, const char* name,
                    NodeId node, SimTime start, SimTime end, std::string note,
                    NodeId peer = {});
  /// Bank [v.last_t, now] into one component per the priority rule.
  void advance(VersionTrace& v, SimTime now);
  void pop_scope();
  uint32_t scope_parent(uint32_t vidx) const;

  sim::Simulator* sim_ = nullptr;
  size_t cap_ = 0;
  std::map<ObjectVersionId, uint32_t> index_;  // ov -> index into versions_
  std::deque<VersionTrace> versions_;          // deque: stable references
  std::vector<std::pair<uint32_t, uint32_t>> scope_stack_;  // (vidx, span id)
  std::vector<VersionCriticalPath> critical_paths_;
  uint64_t spans_dropped_ = 0;
};

}  // namespace pahoehoe::obs
