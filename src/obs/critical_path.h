// Critical-path decomposition of put-ack → AMR latency.
//
// The span tracer (obs/span.h) partitions each acked version's interval
// [put_ack, amr_confirm] into four mutually exclusive components, advancing
// the attribution clock at every traced event so the integer-microsecond
// components sum *exactly* to the AmrTracker-reported time-to-AMR:
//
//   network_wait      — at least one message for this version is in flight
//   server_processing — no message in flight, but some node is running a
//                       recovery (fragment regeneration) for the version
//   recovery_backoff  — the version sits on at least one FS work-list whose
//                       earliest next_attempt is still in the future
//                       (exponential-backoff wait, paper §4 convergence)
//   round_scheduling  — residual: the version is runnable (or on no work
//                       list at all) and is waiting for a convergence round
//                       to pick it up
//
// Components are prioritized in that order when several hold at once, so
// the partition is unambiguous and deterministic. Per-version records are
// folded into CriticalPathAggregate, whose sketches merge bucket-wise
// exactly (same discipline as MetricRegistry): a parallel sweep folded in
// seed order renders byte-identically to the serial run.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace pahoehoe::obs {

enum class PathComponent : uint8_t {
  kNetworkWait = 0,
  kRoundScheduling = 1,
  kRecoveryBackoff = 2,
  kServerProcessing = 3,
};

inline constexpr size_t kPathComponentCount = 4;

/// Stable snake_case name ("network_wait", ...), used in text renders,
/// bench JSON keys, and Perfetto args.
const char* to_string(PathComponent c);

/// One version's decomposition. Invariant (checked by span_test):
///   sum(components) == confirm_time - ack_time   (exact, simulated micros)
/// Versions that confirm before their ack (zero AmrTracker latency) carry
/// all-zero components.
struct VersionCriticalPath {
  ObjectVersionId ov;
  SimTime ack_time = 0;
  SimTime confirm_time = 0;
  std::array<SimTime, kPathComponentCount> components{};

  SimTime total() const {
    SimTime t = 0;
    for (SimTime c : components) t += c;
    return t;
  }
};

/// Mergeable per-component summary: exact integer totals plus quantile
/// sketches of per-version seconds and per-version share of time-to-AMR.
/// merge() is bucket-wise exact addition, so seed-order folds are
/// byte-identical regardless of --jobs (the determinism tests compare
/// to_text() renders).
class CriticalPathAggregate {
 public:
  void add(const VersionCriticalPath& path);
  void merge(const CriticalPathAggregate& other);

  /// Versions folded in (including zero-latency ones).
  uint64_t versions() const { return versions_; }
  /// Exact summed micros spent in `c` across all versions.
  uint64_t total_micros(PathComponent c) const {
    return totals_[static_cast<size_t>(c)];
  }
  /// Distribution of per-version seconds spent in `c`.
  const QuantileSketch& seconds(PathComponent c) const {
    return seconds_[static_cast<size_t>(c)];
  }
  /// Distribution of per-version share (0..1) of time-to-AMR spent in `c`.
  /// Zero-latency versions contribute no share sample (0/0 is undefined),
  /// so share counts can be lower than seconds counts.
  const QuantileSketch& share(PathComponent c) const {
    return share_[static_cast<size_t>(c)];
  }

  /// Stable multi-line dump, one component per line:
  ///   critical_path versions 12
  ///   component network_wait total_s 1.234567 count 12 p50 ... p95 ...
  ///     share_count 10 share_p50 ... share_p95 ...
  /// Byte equality of to_text() is the definition of "identical aggregate".
  std::string to_text() const;

 private:
  uint64_t versions_ = 0;
  std::array<uint64_t, kPathComponentCount> totals_{};
  std::array<QuantileSketch, kPathComponentCount> seconds_;
  std::array<QuantileSketch, kPathComponentCount> share_;
};

}  // namespace pahoehoe::obs
