// Simulator-driven periodic sampling: convergence state over simulated
// time, not wall time.
//
// A Sampler re-arms itself on the simulation's own event queue, so samples
// land at deterministic instants (k * interval) and two runs of the same
// seed produce identical time-series. It deliberately stops re-arming once
// the rest of the queue is empty — a self-perpetuating timer would keep an
// otherwise-quiescent simulation "alive" all the way to the horizon and
// distort end_time / event counts far more than the bounded perturbation a
// finite sample train already causes (see DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"

namespace pahoehoe::obs {

/// Column-oriented series of periodic snapshots. Rows store per-column
/// sums plus the number of merged runs, so cross-seed aggregation (see
/// merge_aligned) yields exact means without floating-point reordering.
class TimeSeries {
 public:
  struct Row {
    SimTime t = 0;
    uint32_t n = 0;                // runs contributing to this row
    std::vector<double> sums;      // per-column value sums over those runs
  };

  TimeSeries() = default;
  explicit TimeSeries(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void append(SimTime t, std::vector<double> values);

  /// Merge a series whose rows were sampled on the same tick grid (row i at
  /// the same sim time in both). Rows align by index; a shorter series just
  /// contributes to fewer rows. Addition in row order keeps the result
  /// independent of merge scheduling.
  void merge_aligned(const TimeSeries& other);

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  /// Mean of one column at one row across the merged runs.
  double value(size_t row, size_t column) const;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

/// Periodic probe of live simulation state. Construct after the workload is
/// scheduled; takes a baseline sample immediately, then one every
/// `interval` until the queue would otherwise be empty or `max_samples` is
/// reached.
class Sampler {
 public:
  using Probe = std::function<std::vector<double>(SimTime now)>;

  Sampler(sim::Simulator& sim, SimTime interval,
          std::vector<std::string> columns, Probe probe,
          size_t max_samples = 4096);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  const TimeSeries& series() const { return series_; }
  size_t samples() const { return series_.rows().size(); }

 private:
  void arm();
  void tick();
  void take_sample();

  sim::Simulator& sim_;
  SimTime interval_;
  Probe probe_;
  size_t max_samples_;
  sim::TimerId timer_ = 0;
  TimeSeries series_;
};

}  // namespace pahoehoe::obs
