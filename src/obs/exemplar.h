// Tail-latency exemplars: concrete {version, latency, critical-path
// components, seed} witnesses attached to a QuantileSketch, so an aggregate
// percentile ("p99 is high") can always be traced back to the specific
// object versions that produced it (Dapper-style histogram exemplars).
//
// An ExemplarStore wraps the latency sketch with two bounded, deterministic
// retention sets:
//   * worst-K — the K largest-latency exemplars, totally ordered by
//     (latency desc, version id asc, seed asc). The tie-break makes the set
//     independent of insertion order, so a parallel sweep folded in seed
//     order retains byte-identical exemplars for any --jobs (DESIGN.md §13).
//   * a stratified reservoir — a bottom-R sample by a fixed FNV-1a priority
//     hash of (version id, seed) (a KMV sketch: merge = union, trim to R).
//     Because the priority is a pure function of the exemplar's identity,
//     the retained set is also insertion-order independent. At report time
//     the reservoir is bucketed into deciles of the store's own latency
//     sketch, giving body-cohort witnesses across the whole distribution,
//     not just the tail.
//
// Pure observer: stores are fed from already-recorded telemetry
// (VersionCriticalPath records, per-op latencies) after the simulation has
// quiesced, so enabling exemplars never perturbs a run.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "obs/critical_path.h"

namespace pahoehoe::obs {

/// One retained witness. For put-ack → AMR exemplars the components
/// telescope exactly: sum(components) == latency_micros (the same integer
/// identity VersionCriticalPath guarantees). Per-op (put/get) exemplars
/// carry all-zero components — client-visible op latency has no
/// critical-path decomposition.
struct Exemplar {
  ObjectVersionId ov;
  uint64_t seed = 0;
  SimTime latency_micros = 0;
  std::array<SimTime, kPathComponentCount> components{};

  double seconds() const {
    return static_cast<double>(latency_micros) /
           static_cast<double>(kMicrosPerSecond);
  }

  friend bool operator==(const Exemplar&, const Exemplar&) = default;
};

/// Worst-first total order: latency desc, then version id asc, then seed
/// asc — the "value-then-version-id" tie-break that keeps worst-K stable
/// when latencies collide.
bool worse_than(const Exemplar& a, const Exemplar& b);

/// Deterministic reservoir priority: FNV-1a over the exemplar's identity
/// (key bytes, timestamp, seed). Smaller priority = retained first.
uint64_t exemplar_priority(const Exemplar& e);

/// One-line render, no trailing newline:
///   key=obj-3 ts=1234/7 seed=5007 latency_us=610200000 nw=.. rs=.. rb=.. sp=..
std::string exemplar_to_text(const Exemplar& e);

class ExemplarStore {
 public:
  static constexpr size_t kDefaultWorstK = 8;
  static constexpr size_t kDefaultReservoir = 64;

  explicit ExemplarStore(size_t worst_k = kDefaultWorstK,
                         size_t reservoir = kDefaultReservoir,
                         double relative_error = 0.01);

  void add(const Exemplar& e);
  /// Union of retention sets + bucket-wise sketch merge. Both stores must
  /// use identical caps and relative_error (value-bearing CHECK otherwise).
  /// Retention is insertion-order independent, so any merge order yields
  /// the same store; the harness still folds in seed order by convention.
  void merge(const ExemplarStore& other);

  uint64_t count() const { return latency_s_.count(); }
  const QuantileSketch& latency_s() const { return latency_s_; }

  /// Retained worst-K, worst first (latency desc, version id asc, seed asc).
  const std::vector<Exemplar>& worst() const { return worst_; }
  /// KMV reservoir in (priority, version id, seed) order.
  const std::vector<Exemplar>& reservoir() const { return reservoir_; }

  size_t worst_cap() const { return worst_cap_; }
  size_t reservoir_cap() const { return reservoir_cap_; }

  /// Reservoir bucketed by decile of this store's latency sketch: slot d
  /// holds exemplars with latency in [quantile(d/10), quantile((d+1)/10)),
  /// worst first, at most `per_decile` each. Body-cohort witnesses for the
  /// attribution report.
  std::vector<std::vector<Exemplar>> stratified(size_t per_decile) const;

  /// Stable multi-line render; byte equality of to_text() across --jobs
  /// values is the determinism contract the exemplar tests digest.
  std::string to_text() const;

 private:
  size_t worst_cap_;
  size_t reservoir_cap_;
  QuantileSketch latency_s_;
  std::vector<Exemplar> worst_;      // sorted worst-first, <= worst_cap_
  std::vector<Exemplar> reservoir_;  // sorted by priority, <= reservoir_cap_
};

}  // namespace pahoehoe::obs
