// Hierarchical scoped wall-clock profiler.
//
// `ProfScope` measures host wall-clock time (std::chrono::steady_clock)
// spent in a phase, attributing it to the innermost enclosing scope on the
// same thread (parent/child nesting). Accumulators are strictly
// thread-local; snapshots merge them in deterministic (parent, name) order.
//
// The profiler is a pure *side channel* (DESIGN.md §11): enabling it must
// never change simulation results. `run_experiment` captures a per-run
// delta into `RunResult::profile`, which is excluded from every
// determinism digest — the same contract as the
// `erasure_kernel_runs_total` counter. Phase ids must be string literals
// (static storage duration): scopes keep only the pointer.
//
// Cost when disabled: one relaxed atomic load per ProfScope. When enabled:
// two steady_clock reads plus one small hash-table update per scope, ~2%
// on the densest simulation workloads (enforced by tests/prof_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace pahoehoe::obs {

/// One (parent, name) phase row. `total_nanos` includes time spent in
/// nested child scopes; `self_nanos` excludes it.
struct ProfPhase {
  std::string parent;  // "" for root scopes
  std::string name;
  uint64_t calls = 0;
  uint64_t total_nanos = 0;
  uint64_t self_nanos = 0;
};

/// Deterministically ordered phase table: sorted by (parent, name).
/// Wall-clock *values* are host-dependent by nature; only the key order
/// and the call counts of sim-driven phases are reproducible.
struct ProfReport {
  std::vector<ProfPhase> phases;

  bool empty() const { return phases.empty(); }

  /// Sum `other` into this report, keyed by (parent, name); keeps order.
  void merge(const ProfReport& other);

  /// Row lookup; nullptr when absent.
  const ProfPhase* find(const std::string& parent,
                        const std::string& name) const;

  /// Sum of self_nanos over all rows == total wall time attributed.
  uint64_t attributed_nanos() const;

  /// Human-readable table of the hottest `top_k` phases by total time
  /// (0 = all), for `chaos_cli --profile` and friends.
  std::string to_text(size_t top_k = 0) const;
};

namespace prof {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Cheap check, safe from any thread.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Toggle profiling globally. Scopes already open keep their state; only
/// toggle while the process is quiescent for exact accounting.
void set_enabled(bool on);

/// Copy of the calling thread's accumulators, for delta accounting.
/// Opaque except to capture_delta.
struct Snapshot {
  std::map<std::pair<std::string, std::string>, ProfPhase> rows;
};

/// Snapshot the calling thread's accumulators (empty when disabled).
Snapshot capture_begin();

/// Phases accumulated on the calling thread since `begin` was taken.
ProfReport capture_delta(const Snapshot& begin);

/// Everything accumulated process-wide: phases from threads that have
/// exited (parallel_for workers flush on thread exit) plus the calling
/// thread's own live table. Does not read other live threads' tables, so
/// it is data-race-free; call it after worker threads have been joined
/// for complete results.
ProfReport global_report();

/// Drop all accumulated phases (retired + calling thread). Test helper.
void reset();

}  // namespace prof

/// RAII phase scope. `name` must be a string literal (or otherwise
/// immortal); nullptr or profiling-disabled makes the scope inert.
class ProfScope {
 public:
  explicit ProfScope(const char* name);
  ~ProfScope();
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  bool open_ = false;
};

}  // namespace pahoehoe::obs
