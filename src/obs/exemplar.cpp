#include "obs/exemplar.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace pahoehoe::obs {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t fnv1a_bytes(uint64_t h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t fnv1a_u64(uint64_t h, uint64_t v) {
  return fnv1a_bytes(h, &v, sizeof(v));
}

/// Reservoir retention order: priority asc, identity tie-break so equal
/// priorities (astronomically unlikely but possible) stay deterministic.
bool reservoir_before(const Exemplar& a, const Exemplar& b) {
  const uint64_t pa = exemplar_priority(a);
  const uint64_t pb = exemplar_priority(b);
  if (pa != pb) return pa < pb;
  if (a.ov != b.ov) return a.ov < b.ov;
  return a.seed < b.seed;
}

}  // namespace

std::string exemplar_to_text(const Exemplar& e) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "key=%s ts=%lld/%u seed=%llu latency_us=%lld"
                " nw=%lld rs=%lld rb=%lld sp=%lld",
                e.ov.key.value.c_str(),
                static_cast<long long>(e.ov.ts.wall_micros), e.ov.ts.proxy,
                static_cast<unsigned long long>(e.seed),
                static_cast<long long>(e.latency_micros),
                static_cast<long long>(e.components[0]),
                static_cast<long long>(e.components[1]),
                static_cast<long long>(e.components[2]),
                static_cast<long long>(e.components[3]));
  return buf;
}

bool worse_than(const Exemplar& a, const Exemplar& b) {
  if (a.latency_micros != b.latency_micros) {
    return a.latency_micros > b.latency_micros;
  }
  if (a.ov != b.ov) return a.ov < b.ov;
  return a.seed < b.seed;
}

uint64_t exemplar_priority(const Exemplar& e) {
  uint64_t h = kFnvOffset;
  h = fnv1a_bytes(h, e.ov.key.value.data(), e.ov.key.value.size());
  h = fnv1a_u64(h, static_cast<uint64_t>(e.ov.ts.wall_micros));
  h = fnv1a_u64(h, e.ov.ts.proxy);
  h = fnv1a_u64(h, e.seed);
  return h;
}

ExemplarStore::ExemplarStore(size_t worst_k, size_t reservoir,
                             double relative_error)
    : worst_cap_(worst_k),
      reservoir_cap_(reservoir),
      latency_s_(relative_error) {}

void ExemplarStore::add(const Exemplar& e) {
  latency_s_.add(e.seconds());
  if (worst_cap_ > 0) {
    auto it = std::lower_bound(worst_.begin(), worst_.end(), e, worse_than);
    if (it != worst_.end() || worst_.size() < worst_cap_) {
      worst_.insert(it, e);
      if (worst_.size() > worst_cap_) worst_.pop_back();
    }
  }
  if (reservoir_cap_ > 0) {
    auto it = std::lower_bound(reservoir_.begin(), reservoir_.end(), e,
                               reservoir_before);
    if (it != reservoir_.end() || reservoir_.size() < reservoir_cap_) {
      reservoir_.insert(it, e);
      if (reservoir_.size() > reservoir_cap_) reservoir_.pop_back();
    }
  }
}

void ExemplarStore::merge(const ExemplarStore& other) {
  if (worst_cap_ != other.worst_cap_ ||
      reservoir_cap_ != other.reservoir_cap_) {
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "ExemplarStore::merge cap mismatch: worst_k %zu vs %zu, "
                  "reservoir %zu vs %zu",
                  worst_cap_, other.worst_cap_, reservoir_cap_,
                  other.reservoir_cap_);
    PAHOEHOE_CHECK_MSG(false, msg);
  }
  latency_s_.merge(other.latency_s_);
  if (!other.worst_.empty()) {
    std::vector<Exemplar> merged;
    merged.reserve(worst_.size() + other.worst_.size());
    std::merge(worst_.begin(), worst_.end(), other.worst_.begin(),
               other.worst_.end(), std::back_inserter(merged), worse_than);
    if (merged.size() > worst_cap_) merged.resize(worst_cap_);
    worst_ = std::move(merged);
  }
  if (!other.reservoir_.empty()) {
    std::vector<Exemplar> merged;
    merged.reserve(reservoir_.size() + other.reservoir_.size());
    std::merge(reservoir_.begin(), reservoir_.end(), other.reservoir_.begin(),
               other.reservoir_.end(), std::back_inserter(merged),
               reservoir_before);
    if (merged.size() > reservoir_cap_) merged.resize(reservoir_cap_);
    reservoir_ = std::move(merged);
  }
}

std::vector<std::vector<Exemplar>> ExemplarStore::stratified(
    size_t per_decile) const {
  std::vector<std::vector<Exemplar>> strata(10);
  if (reservoir_.empty() || per_decile == 0) return strata;
  // Decile upper bounds from this store's own sketch; the last stratum is
  // unbounded above so quantile clamping can't drop the max.
  std::array<double, 9> bound;
  for (size_t d = 0; d < 9; ++d) {
    bound[d] = latency_s_.quantile(static_cast<double>(d + 1) / 10.0);
  }
  for (const Exemplar& e : reservoir_) {
    const double s = e.seconds();
    size_t d = 0;
    while (d < 9 && s >= bound[d]) ++d;
    strata[d].push_back(e);
  }
  for (auto& stratum : strata) {
    std::sort(stratum.begin(), stratum.end(), worse_than);
    if (stratum.size() > per_decile) stratum.resize(per_decile);
  }
  return strata;
}

std::string ExemplarStore::to_text() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "exemplars count %llu worst_k %zu reservoir %zu\n"
                "latency_s p50 %.10g p95 %.10g p99 %.10g max %.10g\n",
                static_cast<unsigned long long>(latency_s_.count()),
                worst_cap_, reservoir_cap_, latency_s_.quantile(0.5),
                latency_s_.quantile(0.95), latency_s_.quantile(0.99),
                latency_s_.max());
  std::string out = buf;
  for (const Exemplar& e : worst_) {
    out += "worst " + exemplar_to_text(e) + "\n";
  }
  for (const Exemplar& e : reservoir_) {
    out += "reservoir " + exemplar_to_text(e) + "\n";
  }
  return out;
}

}  // namespace pahoehoe::obs
