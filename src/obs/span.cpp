#include "obs/span.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>

#include "obs/json.h"
#include "obs/prof.h"

namespace pahoehoe::obs {

namespace {

// Span-context token layout: high 32 bits hold (version index + 1), low 32
// bits the span id within that version. 0 means "untracked".
uint64_t make_token(uint32_t vidx, uint32_t span_id) {
  return (static_cast<uint64_t>(vidx + 1) << 32) | span_id;
}

std::string format_seconds(SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f",
                static_cast<double>(t) / static_cast<double>(kMicrosPerSecond));
  return buf;
}

}  // namespace

void SpanTracer::Scope::release() {
  if (tracer_ != nullptr) {
    tracer_->pop_scope();
    tracer_ = nullptr;
  }
}

void SpanTracer::enable(sim::Simulator* sim, size_t max_spans_per_version) {
  sim_ = sim;
  cap_ = max_spans_per_version;
}

SpanTracer::VersionTrace* SpanTracer::find(const ObjectVersionId& ov) {
  auto it = index_.find(ov);
  return it == index_.end() ? nullptr : &versions_[it->second];
}

const SpanTracer::VersionTrace* SpanTracer::find(
    const ObjectVersionId& ov) const {
  auto it = index_.find(ov);
  return it == index_.end() ? nullptr : &versions_[it->second];
}

SpanTracer::VersionTrace& SpanTracer::intern(const ObjectVersionId& ov) {
  auto [it, inserted] =
      index_.try_emplace(ov, static_cast<uint32_t>(versions_.size()));
  if (inserted) {
    versions_.emplace_back();
    versions_.back().ov = ov;
  }
  return versions_[it->second];
}

uint32_t SpanTracer::add_span(VersionTrace& v, uint32_t parent,
                              const char* name, NodeId node, SimTime start,
                              SimTime end, std::string note, NodeId peer) {
  if (v.spans.size() >= cap_) {
    ++v.dropped;
    ++spans_dropped_;
    return 0;
  }
  Span s;
  s.id = static_cast<uint32_t>(v.spans.size() + 1);
  s.parent = v.root == 0 ? 0 : (parent != 0 ? parent : v.root);
  s.name = name;
  s.node = node;
  s.peer = peer;
  s.start = start;
  s.end = end;
  s.note = std::move(note);
  v.spans.push_back(std::move(s));
  if (v.root == 0) v.root = v.spans.back().id;
  return v.spans.back().id;
}

uint32_t SpanTracer::scope_parent(uint32_t vidx) const {
  for (auto it = scope_stack_.rbegin(); it != scope_stack_.rend(); ++it) {
    if (it->first == vidx) return it->second;  // may be 0 (capped span)
  }
  return 0;  // add_span falls back to the version's root
}

void SpanTracer::advance(VersionTrace& v, SimTime now) {
  if (!v.acked || v.confirmed || now <= v.last_t) return;
  auto bank = [&v](PathComponent c, SimTime d) {
    v.components[static_cast<size_t>(c)] += d;
  };
  SimTime t = v.last_t;
  if (v.inflight > 0) {
    bank(PathComponent::kNetworkWait, now - t);
  } else {
    bool recovering = false;
    for (const auto& [node, w] : v.work) recovering = recovering || w.recovering;
    if (recovering) {
      bank(PathComponent::kServerProcessing, now - t);
    } else if (v.work.empty()) {
      bank(PathComponent::kRoundScheduling, now - t);
    } else {
      SimTime next = v.work.begin()->second.next_attempt;
      for (const auto& [node, w] : v.work) {
        next = std::min(next, w.next_attempt);
      }
      if (next > t) {
        const SimTime d = std::min(next, now) - t;
        bank(PathComponent::kRecoveryBackoff, d);
        t += d;
      }
      if (now > t) bank(PathComponent::kRoundScheduling, now - t);
    }
  }
  v.last_t = now;
}

SpanTracer::Scope SpanTracer::version_scope(const ObjectVersionId& ov,
                                            const char* name, NodeId node,
                                            std::string note) {
  if (!enabled()) return Scope();
  VersionTrace& v = intern(ov);
  const uint32_t vidx = index_.find(ov)->second;
  const uint32_t id = add_span(v, scope_parent(vidx), name, node, sim_->now(),
                               -1, std::move(note));
  scope_stack_.emplace_back(vidx, id);
  return Scope(this);
}

void SpanTracer::interval(const ObjectVersionId& ov, const char* name,
                          NodeId node, SimTime start, SimTime end,
                          std::string note) {
  if (!enabled()) return;
  VersionTrace& v = intern(ov);
  const uint32_t vidx = index_.find(ov)->second;
  add_span(v, scope_parent(vidx), name, node, start, end, std::move(note));
}

uint64_t SpanTracer::on_send(NodeId from, NodeId to, const char* type) {
  if (!enabled() || scope_stack_.empty()) return 0;
  const auto [vidx, parent] = scope_stack_.back();
  VersionTrace& v = versions_[vidx];
  std::string name = std::string("msg ") + type;
  const uint32_t id =
      add_span(v, parent, name.c_str(), from, sim_->now(), -1, {}, to);
  if (id == 0) return 0;  // capped: no token, message not tracked at all
  advance(v, sim_->now());
  ++v.inflight;
  return make_token(vidx, id);
}

void SpanTracer::on_drop(uint64_t token) {
  if (!enabled() || token == 0) return;
  const uint32_t vidx = static_cast<uint32_t>(token >> 32) - 1;
  VersionTrace& v = versions_[vidx];
  Span& s = v.spans[static_cast<uint32_t>(token) - 1];
  if (s.end >= 0) return;
  advance(v, sim_->now());
  --v.inflight;
  s.end = sim_->now();
  s.note = "dropped";
}

SpanTracer::Scope SpanTracer::deliver_scope(uint64_t token) {
  if (!enabled() || token == 0) return Scope();
  const uint32_t vidx = static_cast<uint32_t>(token >> 32) - 1;
  const uint32_t id = static_cast<uint32_t>(token);
  VersionTrace& v = versions_[vidx];
  Span& s = v.spans[id - 1];
  if (s.end < 0) {  // first delivery wins; duplicates leave it closed
    advance(v, sim_->now());
    --v.inflight;
    s.end = sim_->now();
  }
  scope_stack_.emplace_back(vidx, id);
  return Scope(this);
}

void SpanTracer::pop_scope() {
  const auto [vidx, id] = scope_stack_.back();
  scope_stack_.pop_back();
  if (id == 0) return;
  VersionTrace& v = versions_[vidx];
  // The root span covers the version's whole lifetime: it stays open until
  // AMR confirmation (on_amr_confirmed closes it), not until scope exit.
  if (id == v.root) return;
  Span& s = v.spans[id - 1];
  if (s.end < 0) s.end = sim_->now();
}

void SpanTracer::on_put_acked(const ObjectVersionId& ov, NodeId node) {
  if (!enabled()) return;
  VersionTrace& v = intern(ov);
  const SimTime now = sim_->now();
  interval(ov, "put_acked", node, now, now);
  if (v.acked) return;
  v.acked = true;
  v.ack_time = now;
  v.last_t = now;
  if (v.confirmed) {
    // AMR preceded the client ack: zero latency, all components zero
    // (mirrors AmrTracker's zero-latency sample).
    critical_paths_.push_back({ov, now, now, {}});
  }
}

void SpanTracer::on_amr_confirmed(const ObjectVersionId& ov, NodeId node) {
  if (!enabled()) return;
  VersionTrace& v = intern(ov);
  if (v.confirmed) return;  // first confirmation wins
  const SimTime now = sim_->now();
  advance(v, now);
  v.confirmed = true;
  interval(ov, "amr_confirmed", node, now, now);
  if (v.root != 0 && v.spans[v.root - 1].end < 0) {
    v.spans[v.root - 1].end = now;
  }
  if (v.acked) {
    critical_paths_.push_back({ov, v.ack_time, now, v.components});
  }
}

void SpanTracer::report_work(const ObjectVersionId& ov, NodeId node,
                             SimTime next_attempt, bool recovering,
                             const char* note) {
  if (!enabled()) return;
  VersionTrace& v = intern(ov);
  const SimTime now = sim_->now();
  advance(v, now);
  NodeWork& w = v.work[node];
  if (recovering && !w.recovering) {
    const uint32_t vidx = index_.find(ov)->second;
    w.recovery_span =
        add_span(v, scope_parent(vidx), "recovery", node, now, -1, note);
  } else if (!recovering && w.recovering && w.recovery_span != 0) {
    Span& s = v.spans[w.recovery_span - 1];
    if (s.end < 0) s.end = now;
    w.recovery_span = 0;
  }
  w.next_attempt = next_attempt;
  w.recovering = recovering;
}

void SpanTracer::report_work_done(const ObjectVersionId& ov, NodeId node) {
  if (!enabled()) return;
  VersionTrace* v = find(ov);
  if (v == nullptr) return;
  auto it = v->work.find(node);
  if (it == v->work.end()) return;
  advance(*v, sim_->now());
  if (it->second.recovery_span != 0) {
    Span& s = v->spans[it->second.recovery_span - 1];
    if (s.end < 0) s.end = sim_->now();
  }
  v->work.erase(it);
}

bool SpanTracer::has_version(const ObjectVersionId& ov) const {
  return index_.count(ov) > 0;
}

std::vector<ObjectVersionId> SpanTracer::versions() const {
  std::vector<ObjectVersionId> out;
  out.reserve(index_.size());
  for (const auto& [ov, vidx] : index_) out.push_back(ov);
  return out;
}

size_t SpanTracer::span_count(const ObjectVersionId& ov) const {
  const VersionTrace* v = find(ov);
  return v == nullptr ? 0 : v->spans.size();
}

void SpanTracer::visit_spans(
    const std::function<void(const ObjectVersionId&, const Span&)>& visit)
    const {
  // index_ is an ordered map over (key, ts); span ids are allocated in
  // simulation order within a version — both orders are seed-deterministic.
  for (const auto& [ov, vidx] : index_) {
    const VersionTrace& v = versions_[vidx];
    for (const Span& span : v.spans) visit(ov, span);
  }
}

std::string SpanTracer::render_tree(const ObjectVersionId& ov) const {
  ProfScope prof("span_render");
  const VersionTrace* v = find(ov);
  if (v == nullptr) return {};
  std::string out = "version " + pahoehoe::to_string(ov) + " spans " +
                    std::to_string(v->spans.size()) + " dropped " +
                    std::to_string(v->dropped) + "\n";
  if (v->acked) {
    out += "  put_acked t=" + format_seconds(v->ack_time) + "s";
    if (v->confirmed) {
      const SimTime confirm = v->ack_time + [&] {
        SimTime t = 0;
        for (SimTime c : v->components) t += c;
        return t;
      }();
      out += "  amr_confirmed t=" + format_seconds(confirm) +
             "s  time_to_amr " + format_seconds(confirm - v->ack_time) + "s";
    } else {
      out += "  (AMR not reached)";
    }
    out += "\n  critical_path:";
    for (size_t i = 0; i < kPathComponentCount; ++i) {
      out += std::string(i == 0 ? " " : " | ") +
             to_string(static_cast<PathComponent>(i)) + " " +
             format_seconds(v->components[i]) + "s";
    }
    out += "\n";
  }
  // Children in id order (== creation order, deterministic).
  std::vector<std::vector<uint32_t>> kids(v->spans.size() + 1);
  std::vector<uint32_t> roots;
  for (const Span& s : v->spans) {
    if (s.parent == 0) {
      roots.push_back(s.id);
    } else {
      kids[s.parent].push_back(s.id);
    }
  }
  auto render = [&](auto&& self, uint32_t id, int depth) -> void {
    const Span& s = v->spans[id - 1];
    out += std::string(2 * static_cast<size_t>(depth) + 2, ' ');
    out += "[" + format_seconds(s.start) + "s ";
    out += s.end < 0 ? "open" : "+" + format_seconds(s.end - s.start) + "s";
    out += "] " + s.name + " " + pahoehoe::to_string(s.node);
    if (s.peer.valid()) out += " -> " + pahoehoe::to_string(s.peer);
    if (!s.note.empty()) out += " -- " + s.note;
    out += "\n";
    for (uint32_t kid : kids[id]) self(self, kid, depth + 1);
  };
  for (uint32_t root : roots) render(render, root, 0);
  return out;
}

namespace {

// One flame-style lane of host wall-clock phases in a synthetic process
// (pid 0 — cluster node ids start at 101). Offsets are packed
// deterministically: roots laid out end-to-end in report order, each
// phase's children inside its extent. ts/dur are host *microseconds of
// wall time*, so the track is a magnitude companion to the sim-time lanes,
// not a shared clock.
void export_wall_profile_track(JsonWriter& w, const ProfReport& profile) {
  w.begin_object();
  w.kv("name", "process_name").kv("ph", "M");
  w.kv("pid", 0).kv("tid", 0);
  w.key("args").begin_object();
  w.kv("name", "wall-clock profile (host time)");
  w.end_object();
  w.end_object();

  const std::vector<ProfPhase>& phases = profile.phases;
  const size_t n = phases.size();
  // A phase's parent field names another phase; attach it to the first row
  // carrying that name (names can recur under several parents), everything
  // else is a root.
  std::map<std::string, size_t> first_with_name;
  for (size_t i = 0; i < n; ++i) {
    first_with_name.emplace(phases[i].name, i);
  }
  std::vector<std::vector<size_t>> children(n);
  std::vector<size_t> roots;
  for (size_t i = 0; i < n; ++i) {
    auto it = phases[i].parent.empty()
                  ? first_with_name.end()
                  : first_with_name.find(phases[i].parent);
    if (it == first_with_name.end() || it->second == i) {
      roots.push_back(i);
    } else {
      children[it->second].push_back(i);
    }
  }
  std::vector<uint64_t> start_nanos(n, 0);
  std::vector<char> placed(n, 0);
  const std::function<void(size_t)> place_children = [&](size_t i) {
    uint64_t cursor = start_nanos[i];
    for (size_t c : children[i]) {
      if (placed[c]) continue;  // cycle guard; cannot happen in practice
      placed[c] = 1;
      start_nanos[c] = cursor;
      cursor += phases[c].total_nanos;
      place_children(c);
    }
  };
  uint64_t root_cursor = 0;
  for (size_t r : roots) {
    if (placed[r]) continue;
    placed[r] = 1;
    start_nanos[r] = root_cursor;
    root_cursor += phases[r].total_nanos;
    place_children(r);
  }

  for (size_t i = 0; i < n; ++i) {
    const ProfPhase& p = phases[i];
    w.begin_object();
    w.kv("name", p.name).kv("ph", "X");
    w.kv("ts", start_nanos[i] / 1000);
    w.kv("dur", p.total_nanos / 1000);
    w.kv("pid", 0).kv("tid", 1);
    w.key("args").begin_object();
    if (!p.parent.empty()) w.kv("parent", p.parent);
    w.kv("calls", p.calls);
    w.kv("total_ms", static_cast<double>(p.total_nanos) / 1e6);
    w.kv("self_ms", static_cast<double>(p.self_nanos) / 1e6);
    w.end_object();
    w.end_object();
  }
}

}  // namespace

void SpanTracer::export_perfetto(JsonWriter& w,
                                 const std::vector<ObjectVersionId>& select,
                                 const ProfReport* wall_profile) const {
  ProfScope prof("span_render");
  std::vector<const VersionTrace*> selected;
  if (select.empty()) {
    for (const auto& [ov, vidx] : index_) selected.push_back(&versions_[vidx]);
  } else {
    for (const ObjectVersionId& ov : select) {
      const VersionTrace* v = find(ov);
      if (v != nullptr) selected.push_back(v);
    }
  }
  std::set<NodeId> nodes;
  for (const VersionTrace* v : selected) {
    for (const Span& s : v->spans) {
      if (s.node.valid()) nodes.insert(s.node);
      if (s.peer.valid()) nodes.insert(s.peer);
    }
  }
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (NodeId n : nodes) {
    w.begin_object();
    w.kv("name", "process_name").kv("ph", "M");
    w.kv("pid", static_cast<uint64_t>(n.value)).kv("tid", 0);
    w.key("args").begin_object();
    w.kv("name", pahoehoe::to_string(n));
    w.end_object();
    w.end_object();
  }
  uint64_t tid = 0;
  for (const VersionTrace* v : selected) {
    ++tid;  // one lane per exported version
    for (const Span& s : v->spans) {
      w.begin_object();
      w.kv("name", s.name).kv("ph", "X");
      w.kv("ts", s.start);
      w.kv("dur", s.end < 0 ? static_cast<int64_t>(0) : s.end - s.start);
      w.kv("pid", static_cast<uint64_t>(s.node.value)).kv("tid", tid);
      w.key("args").begin_object();
      w.kv("version", pahoehoe::to_string(v->ov));
      w.kv("id", static_cast<uint64_t>(s.id));
      w.kv("parent", static_cast<uint64_t>(s.parent));
      if (s.peer.valid()) w.kv("peer", pahoehoe::to_string(s.peer));
      if (!s.note.empty()) w.kv("note", s.note);
      w.end_object();
      w.end_object();
    }
  }
  if (wall_profile != nullptr && !wall_profile->empty()) {
    export_wall_profile_track(w, *wall_profile);
  }
  w.end_array();
  w.end_object();
}

}  // namespace pahoehoe::obs
