// Per-simulation telemetry bundle.
//
// One instance per simulated run, owned by the Network (the single object
// every node and the harness already share), so instrumentation anywhere in
// the stack reaches it via net.telemetry() and cached metric handles can
// never outlive their registry.
#pragma once

#include "obs/amr_tracker.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace pahoehoe::obs {

struct Telemetry {
  MetricRegistry metrics;
  AmrTracker amr;
  SpanTracer spans;
};

}  // namespace pahoehoe::obs
