#include "obs/prof.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <unordered_map>

namespace pahoehoe::obs {
namespace {

using Clock = std::chrono::steady_clock;

inline uint64_t nanos_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

// Accumulators are keyed by the (parent, name) literal pointers — no string
// hashing on the hot path. Distinct literals with equal contents (possible
// across translation units) are merged when rows are stringified.
struct PhaseKey {
  const char* parent;
  const char* name;
  bool operator==(const PhaseKey& o) const {
    return parent == o.parent && name == o.name;
  }
};

struct PhaseKeyHash {
  size_t operator()(const PhaseKey& k) const {
    auto mix = [](size_t h, size_t v) {
      return (h ^ v) * 0x100000001b3ULL;  // FNV-style pointer mix
    };
    return mix(mix(0xcbf29ce484222325ULL,
                   reinterpret_cast<size_t>(k.parent)),
               reinterpret_cast<size_t>(k.name));
  }
};

struct Accum {
  uint64_t calls = 0;
  uint64_t total_nanos = 0;
  uint64_t self_nanos = 0;
};

struct Frame {
  const char* name;
  Clock::time_point start;
  uint64_t child_nanos = 0;
};

using StringRows = std::map<std::pair<std::string, std::string>, ProfPhase>;

// Phases from threads that have already exited. Leaked so that thread_local
// destructors running late in shutdown can always reach it.
struct Retired {
  std::mutex mu;
  StringRows rows;
};

Retired& retired() {
  static Retired* r = new Retired;
  return *r;
}

void add_row(StringRows& rows, const std::string& parent,
             const std::string& name, uint64_t calls, uint64_t total,
             uint64_t self) {
  ProfPhase& p = rows[{parent, name}];
  if (p.calls == 0 && p.total_nanos == 0 && p.self_nanos == 0) {
    p.parent = parent;
    p.name = name;
  }
  p.calls += calls;
  p.total_nanos += total;
  p.self_nanos += self;
}

struct ThreadTable {
  std::unordered_map<PhaseKey, Accum, PhaseKeyHash> accum;
  std::vector<Frame> stack;

  StringRows rows() const {
    StringRows out;
    // lint:ordered-ok(rows land in a string-keyed std::map and re-sort)
    for (const auto& [key, a] : accum) {
      add_row(out, key.parent, key.name, a.calls, a.total_nanos,
              a.self_nanos);
    }
    return out;
  }

  ~ThreadTable() {
    if (accum.empty()) return;
    Retired& r = retired();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& [key, rest] : rows()) {
      add_row(r.rows, key.first, key.second, rest.calls, rest.total_nanos,
              rest.self_nanos);
    }
  }
};

ThreadTable& table() {
  static thread_local ThreadTable t;
  return t;
}

ProfReport rows_to_report(const StringRows& rows) {
  ProfReport report;
  report.phases.reserve(rows.size());
  for (const auto& [key, phase] : rows) {
    (void)key;
    report.phases.push_back(phase);
  }
  return report;
}

}  // namespace

void ProfReport::merge(const ProfReport& other) {
  if (other.phases.empty()) return;
  StringRows rows;
  for (const ProfPhase& p : phases) {
    add_row(rows, p.parent, p.name, p.calls, p.total_nanos, p.self_nanos);
  }
  for (const ProfPhase& p : other.phases) {
    add_row(rows, p.parent, p.name, p.calls, p.total_nanos, p.self_nanos);
  }
  *this = rows_to_report(rows);
}

const ProfPhase* ProfReport::find(const std::string& parent,
                                  const std::string& name) const {
  for (const ProfPhase& p : phases) {
    if (p.parent == parent && p.name == name) return &p;
  }
  return nullptr;
}

uint64_t ProfReport::attributed_nanos() const {
  uint64_t total = 0;
  for (const ProfPhase& p : phases) total += p.self_nanos;
  return total;
}

std::string ProfReport::to_text(size_t top_k) const {
  std::vector<const ProfPhase*> by_total;
  by_total.reserve(phases.size());
  for (const ProfPhase& p : phases) by_total.push_back(&p);
  std::sort(by_total.begin(), by_total.end(),
            [](const ProfPhase* a, const ProfPhase* b) {
              if (a->total_nanos != b->total_nanos)
                return a->total_nanos > b->total_nanos;
              if (a->parent != b->parent) return a->parent < b->parent;
              return a->name < b->name;
            });
  if (top_k > 0 && by_total.size() > top_k) by_total.resize(top_k);

  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %-22s %10s %12s %12s\n", "phase",
                "parent", "calls", "total_ms", "self_ms");
  out += line;
  for (const ProfPhase* p : by_total) {
    std::snprintf(line, sizeof(line), "%-28s %-22s %10llu %12.3f %12.3f\n",
                  p->name.c_str(), p->parent.empty() ? "-" : p->parent.c_str(),
                  static_cast<unsigned long long>(p->calls),
                  static_cast<double>(p->total_nanos) / 1e6,
                  static_cast<double>(p->self_nanos) / 1e6);
    out += line;
  }
  return out;
}

namespace prof {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_seq_cst);
}

Snapshot capture_begin() {
  Snapshot snap;
  if (enabled()) snap.rows = table().rows();
  return snap;
}

ProfReport capture_delta(const Snapshot& begin) {
  if (!enabled()) return {};
  StringRows now = table().rows();
  for (const auto& [key, phase] : begin.rows) {
    auto it = now.find(key);
    if (it == now.end()) continue;
    it->second.calls -= phase.calls;
    it->second.total_nanos -= phase.total_nanos;
    it->second.self_nanos -= phase.self_nanos;
    if (it->second.calls == 0 && it->second.total_nanos == 0) {
      now.erase(it);
    }
  }
  return rows_to_report(now);
}

ProfReport global_report() {
  StringRows rows;
  {
    Retired& r = retired();
    std::lock_guard<std::mutex> lock(r.mu);
    rows = r.rows;
  }
  for (const auto& [key, phase] : table().rows()) {
    add_row(rows, key.first, key.second, phase.calls, phase.total_nanos,
            phase.self_nanos);
  }
  return rows_to_report(rows);
}

void reset() {
  {
    Retired& r = retired();
    std::lock_guard<std::mutex> lock(r.mu);
    r.rows.clear();
  }
  ThreadTable& t = table();
  t.accum.clear();
}

}  // namespace prof

ProfScope::ProfScope(const char* name) {
  if (name == nullptr || !prof::enabled()) return;
  ThreadTable& t = table();
  t.stack.push_back(Frame{name, Clock::now(), 0});
  open_ = true;
}

ProfScope::~ProfScope() {
  if (!open_) return;
  const Clock::time_point end = Clock::now();
  ThreadTable& t = table();
  const Frame frame = t.stack.back();
  t.stack.pop_back();
  const uint64_t nanos = nanos_between(frame.start, end);
  const char* parent = t.stack.empty() ? "" : t.stack.back().name;
  if (!t.stack.empty()) t.stack.back().child_nanos += nanos;
  Accum& a = t.accum[PhaseKey{parent, frame.name}];
  a.calls += 1;
  a.total_nanos += nanos;
  a.self_nanos += nanos - std::min(nanos, frame.child_nanos);
}

}  // namespace pahoehoe::obs
