// Cohort attribution: turn "p99 is high" into "these versions, this
// component".
//
// The engine splits every resolved version (its VersionCriticalPath) into
// two cohorts around the exemplar store's p95 latency — tail (latency ≥
// p95) vs. body — and compares the cohorts' critical-path component means.
// The per-component gap (tail mean − body mean) is ranked by its share of
// the total positive gap, which is exactly the "83% of the gap is
// recovery_backoff" sentence the report renders. A differential mode diffs
// two reports (fresh run vs. baseline) for trendcheck REGRESSION output.
//
// Determinism (DESIGN.md §13): the threshold comes from the *merged*
// latency sketch (bucket-wise exact, so identical for any --jobs); cohort
// accumulation is pure integer micros walked in seed order; floats appear
// only at report time as derived quantities of those integers.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/exemplar.h"
#include "obs/json.h"

namespace pahoehoe::obs {

/// Exact integer accumulation for one cohort. All micros; means are derived
/// at render time only.
struct CohortTotals {
  uint64_t versions = 0;
  uint64_t latency_micros = 0;
  std::array<uint64_t, kPathComponentCount> component_micros{};

  double mean_s() const;
  double component_mean_s(PathComponent c) const;
};

/// One component's contribution to the tail-vs-body gap.
struct ComponentGap {
  PathComponent component = PathComponent::kNetworkWait;
  double tail_mean_s = 0;
  double body_mean_s = 0;
  double gap_s = 0;      ///< tail_mean_s - body_mean_s (may be negative)
  double gap_share = 0;  ///< max(gap,0) / sum of positive gaps, in [0,1]
};

struct AttributionReport {
  uint64_t versions = 0;
  double p50_s = 0;
  double p95_s = 0;
  double p99_s = 0;
  double max_s = 0;
  double tail_threshold_s = 0;  ///< p95 of the merged latency sketch
  CohortTotals tail;
  CohortTotals body;
  /// All components, ranked by gap_share desc (ties: component enum order).
  std::vector<ComponentGap> ranked;
  /// Worst-K exemplars carried over from the store, worst first.
  std::vector<Exemplar> top;

  bool empty() const { return versions == 0; }

  /// Value-bearing multi-line render ("p99 is 7.9x p50; 83.2% of the gap is
  /// recovery_backoff; top exemplar ..."). Byte equality across --jobs is
  /// the determinism contract.
  std::string to_text() const;
};

/// Two-pass construction: the store (already merged across seeds) fixes the
/// p95 threshold, then every version's critical path is bucketed against
/// it. add() is pure integer accumulation; call in seed order.
class AttributionBuilder {
 public:
  explicit AttributionBuilder(const ExemplarStore& store);

  void add(const VersionCriticalPath& path);
  AttributionReport finish() const;

 private:
  AttributionReport report_;
};

/// Fresh-vs-baseline differential ("tail share moved recovery_backoff
/// 12.0% -> 83.2%"), for trendcheck REGRESSION context.
std::string attribution_diff_text(const AttributionReport& fresh,
                                  const AttributionReport& baseline);

/// Emit the report as one JSON object value (caller writes the key first).
void attribution_to_json(JsonWriter& w, const AttributionReport& report);

/// Reconstruct a report from attribution_to_json output; nullopt if the
/// value is missing required members. Doubles round-trip at the writer's
/// %.10g precision; integer micros round-trip exactly.
std::optional<AttributionReport> attribution_from_json(const JsonValue& v);

}  // namespace pahoehoe::obs
