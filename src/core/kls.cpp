#include "core/kls.h"

#include "core/placement.h"

namespace pahoehoe::core {

KeyLookupServer::KeyLookupServer(sim::Simulator& sim, net::Network& net,
                                 std::shared_ptr<const ClusterView> view,
                                 NodeId id, DataCenterId dc)
    : Server(sim, net, std::move(view), id, NodeKind::kKls, dc) {
  obs::MetricRegistry& metrics = telemetry().metrics;
  obs::Labels labels = node_label();
  labels.emplace_back("op", "decide_locs");
  m_decide_locs_ = &metrics.counter("kls_requests_total", labels);
  labels.back().second = "store_metadata";
  m_store_metadata_ = &metrics.counter("kls_requests_total", labels);
  labels.back().second = "retrieve_ts";
  m_retrieve_ts_ = &metrics.counter("kls_requests_total", labels);
  labels.back().second = "converge";
  m_converge_ = &metrics.counter("kls_requests_total", labels);
}

void KeyLookupServer::dispatch(const wire::Envelope& env) {
  using wire::MessageType;
  switch (env.type) {
    case MessageType::kDecideLocsReq:
    case MessageType::kFsDecideLocsReq:
      m_decide_locs_->inc();
      on_decide_locs(env.from, wire::DecideLocsReq::decode(env.payload));
      break;
    case MessageType::kStoreMetadataReq:
      m_store_metadata_->inc();
      on_store_metadata(env.from, wire::StoreMetadataReq::decode(env.payload));
      break;
    case MessageType::kRetrieveTsReq:
      m_retrieve_ts_->inc();
      on_retrieve_ts(env.from, wire::RetrieveTsReq::decode(env.payload));
      break;
    case MessageType::kKlsConvergeReq:
      m_converge_->inc();
      on_kls_converge(env.from, wire::KlsConvergeReq::decode(env.payload));
      break;
    default:
      // Messages for other roles (e.g., fragment traffic) are a protocol
      // error if addressed to a KLS.
      PAHOEHOE_CHECK_MSG(false, "unexpected message type at KLS");
  }
}

Metadata KeyLookupServer::suggest_for(const ObjectVersionId& ov,
                                      const Policy& policy,
                                      uint64_t value_size) const {
  Metadata meta(policy, value_size);
  if (const Metadata* known = store_meta_.find(ov); known != nullptr) {
    meta.merge_locs(*known);
    if (known->value_size != 0) meta.value_size = known->value_size;
  }
  Metadata suggestion(policy);
  suggestion.locs = suggest_locations(policy, ov, dc(), view_->fs_in_dc(dc()),
                                      view_->disks_per_fs, view_->num_dcs);
  meta.merge_locs(suggestion);
  return meta;
}

void KeyLookupServer::on_decide_locs(NodeId from,
                                     const wire::DecideLocsReq& req) {
  ++decide_locs_served_;
  Metadata meta = suggest_for(req.ov, req.policy, req.value_size);

  if (req.from_fs) {
    // §3.5: for an FS-originated request the KLS persists its decision
    // before replying, and notifies the sibling FSs of the decision so they
    // can begin (or skip) their own convergence work.
    store_ts_.add(req.ov.key, req.ov.ts);
    store_meta_.merge(req.ov, meta);
    const Metadata& merged = *store_meta_.find(req.ov);
    if (telemetry().spans.enabled()) {
      telemetry().spans.interval(
          req.ov, "kls_locs_decided", id(), sim_.now(), sim_.now(),
          "decided=" + std::to_string(merged.decided_count()));
    }
    for (NodeId fs : merged.sibling_fs()) {
      if (fs == from) continue;
      send(fs, wire::KlsLocsNotify{req.ov, merged});
    }
    send(from, wire::DecideLocsRep{req.ov, merged, dc()});
    return;
  }
  send(from, wire::DecideLocsRep{req.ov, meta, dc()});
}

void KeyLookupServer::on_store_metadata(NodeId from,
                                        const wire::StoreMetadataReq& req) {
  store_ts_.add(req.ov.key, req.ov.ts);
  store_meta_.merge(req.ov, req.meta);
  const Metadata* merged = store_meta_.find(req.ov);
  if (telemetry().spans.enabled()) {
    telemetry().spans.interval(
        req.ov, "kls_meta_write", id(), sim_.now(), sim_.now(),
        "decided=" + std::to_string(merged->decided_count()));
  }
  send(from, wire::StoreMetadataRep{
                 req.ov, wire::Status::kSuccess,
                 static_cast<uint16_t>(merged->decided_count())});
}

void KeyLookupServer::on_retrieve_ts(NodeId from,
                                     const wire::RetrieveTsReq& req) {
  wire::RetrieveTsRep rep;
  rep.key = req.key;
  // Newest first, honoring the paging window (§3.5: proxies may retrieve
  // timestamps iteratively rather than all versions at once).
  const std::vector<Timestamp> all = store_ts_.find(req.key);
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (req.before_ts.valid() && !(*it < req.before_ts)) continue;
    if (req.max_entries != 0 && rep.entries.size() >= req.max_entries) {
      rep.more = true;
      break;
    }
    const ObjectVersionId ov{req.key, *it};
    const Metadata* meta = store_meta_.find(ov);
    // A timestamp with no metadata cannot be acted on by the proxy; report
    // it with empty metadata (counts as incomplete, so gets may look past
    // it once it is safe to do so).
    rep.entries.push_back(
        wire::RetrieveTsRep::Entry{*it,
                                   meta != nullptr ? *meta : Metadata{}});
  }
  send(from, rep);
}

void KeyLookupServer::on_kls_converge(NodeId from,
                                      const wire::KlsConvergeReq& req) {
  // Fig 4 (kls): merge the FS's metadata, reply whether the result is
  // complete. We additionally record the timestamp so gets can find
  // versions this KLS only learned about through convergence.
  store_ts_.add(req.ov.key, req.ov.ts);
  store_meta_.merge(req.ov, req.meta);
  const Metadata* merged = store_meta_.find(req.ov);
  const bool verified = merged != nullptr && merged->complete();
  if (telemetry().spans.enabled()) {
    telemetry().spans.interval(req.ov, "kls_converge_verify", id(), sim_.now(),
                               sim_.now(), verified ? "verified" : "partial");
  }
  send(from, wire::KlsConvergeRep{req.ov, verified});
}

}  // namespace pahoehoe::core
