// Fragment placement: the KLS-side `which_locs` logic (paper Fig 2).
//
// Fragment slots are statically partitioned across data centers: DC 0 owns
// slots [0, share_0), DC 1 the next share, and so on, with the shares as
// equal as n allows (remainders go to lower-numbered DCs). With the default
// policy this puts all k data fragments in DC 0, satisfying the
// "all data fragments at the same data center" clause. Within a data center
// a KLS assigns slots round-robin across its FSs (then across disks),
// rotated by a hash of the object version so load spreads across objects.
// The assignment is a pure function of (policy, ov, dc, fs list), so every
// KLS in a data center suggests identical locations and repeated probes
// cannot create the paper's "too many locations" inefficiency.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/types.h"

namespace pahoehoe::core {

/// [begin, end) fragment-slot range owned by `dc`.
std::pair<int, int> dc_slot_range(const Policy& policy, int num_dcs,
                                  DataCenterId dc);

/// The data center owning fragment slot `slot`.
DataCenterId dc_of_slot(const Policy& policy, int num_dcs, int slot);

/// Suggest locations for `dc`'s slot range. Returns a slot-aligned vector of
/// length policy.n with only that range filled (other slots nullopt).
/// Suggests at most fs_in_dc.size() * min(policy.max_frags_per_fs,
/// disks_per_fs) locations; if the range is larger, trailing slots stay
/// undecided (the policy cannot be met by this data center).
std::vector<std::optional<Location>> suggest_locations(
    const Policy& policy, const ObjectVersionId& ov, DataCenterId dc,
    const std::vector<NodeId>& fs_in_dc, int disks_per_fs, int num_dcs);

}  // namespace pahoehoe::core
