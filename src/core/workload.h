// Client workload driver (paper §5.1): issues puts through a proxy,
// optionally retrying failures (the lossy-network experiment counts the
// attempts needed to collect the target number of success replies).
//
// Two arrival models:
//  * closed-loop (the paper's): first attempts at fixed `spacing`;
//  * open-loop: first attempts arrive at `arrival_rate_per_s` regardless
//    of completions (fixed-rate or Poisson), the model under which per-op
//    latency percentiles are honest — a slow system cannot slow down its
//    own offered load. Per-object think time between a put resolving and
//    its read-back is `get_delay`.
// Either way the driver records per-op latency: a put is measured from its
// *first-attempt* arrival to its final resolution (ack, retries exhausted,
// or local timeout), so retried puts are charged their full client-visible
// latency rather than just the last attempt's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/proxy.h"
#include "sim/simulator.h"

namespace pahoehoe::core {

/// How first attempts are scheduled over time.
enum class ArrivalProcess {
  kClosedLoop,   ///< start_time + i * spacing (the paper's workload)
  kOpenFixed,    ///< fixed rate: start_time + i / arrival_rate_per_s
  kOpenPoisson,  ///< Poisson: iid exponential inter-arrival gaps
};

struct WorkloadConfig {
  int num_puts = 100;               ///< distinct objects
  size_t value_size = 100 * 1024;   ///< 100 KiB, the paper's object size
  Policy policy;
  SimTime start_time = 0;
  SimTime spacing = 1 * kMicrosPerSecond;  ///< gap between first attempts
  ArrivalProcess arrivals = ArrivalProcess::kClosedLoop;
  /// Offered load for the open-loop models (first attempts per second).
  double arrival_rate_per_s = 10.0;
  /// Retry a failed put for the same key (new object version) until it
  /// succeeds or max_attempts is reached.
  bool retry_failed = false;
  SimTime retry_delay = 2 * kMicrosPerSecond;
  int max_attempts = 50;
  std::string key_prefix = "obj-";
  /// Client-side give-up timer per put attempt. A crashed proxy loses its
  /// in-flight operations without answering (§3.5: clients see their own
  /// timeouts), so without this a chaos run's proxy crash would strand the
  /// workload. 0 disables (trust the proxy's reply, the historic behavior).
  SimTime client_timeout = 0;
  /// After an object's puts resolve (acked or given up), read it back with
  /// this probability and check the returned bytes against what was put.
  double get_fraction = 0.0;
  SimTime get_delay = 30 * kMicrosPerSecond;  ///< resolve → get think time
};

/// One put attempt as observed by the client.
struct PutRecord {
  ObjectVersionId ov;  ///< invalid timestamp if the client timed out locally
  int object_index = 0;
  int attempt = 0;
  bool acked = false;  ///< proxy reported success to the client
};

/// One read-back as observed by the client. Only completed gets carry a
/// verdict; an aborted or timed-out get is legal under faults.
struct GetRecord {
  int object_index = 0;
  bool completed = false;  ///< proxy returned a value
  bool matched = false;    ///< value bytes == the deterministic put value
  Timestamp ts;            ///< version returned (valid only if completed)
};

/// Client-observed latency of one finished operation. For puts, `start` is
/// the object's first-attempt arrival time (not the last retry's), and
/// `end` its final resolution; for gets, issue → reply.
struct OpLatency {
  int object_index = 0;
  bool ok = false;  ///< put: finally acked; get: completed with a value
  SimTime start = 0;
  SimTime end = 0;
  /// Version the op resolved to (put: the final attempt's version; get: the
  /// version returned). Invalid timestamp when no version was assigned
  /// (client timeout, failed get) — exemplar retention skips those anyway
  /// because only ok ops are sampled.
  ObjectVersionId ov;

  double seconds() const {
    return static_cast<double>(end - start) /
           static_cast<double>(kMicrosPerSecond);
  }
};

class WorkloadDriver {
 public:
  WorkloadDriver(sim::Simulator& sim, Proxy& proxy, WorkloadConfig config,
                 uint64_t value_seed);

  /// Schedule the whole workload (non-blocking; runs inside the simulator).
  void start();

  int attempts() const { return attempts_; }
  int successes() const { return successes_; }
  int failures() const { return failures_; }
  const std::vector<PutRecord>& records() const { return records_; }
  const std::vector<GetRecord>& get_records() const { return get_records_; }
  /// One entry per object whose put fully resolved, in resolution order.
  const std::vector<OpLatency>& put_latencies() const {
    return put_latencies_;
  }
  /// One entry per completed-or-failed read-back, in completion order.
  const std::vector<OpLatency>& get_latencies() const {
    return get_latencies_;
  }
  /// When object `i`'s first attempt was (or will be) issued.
  SimTime arrival_time(int object_index) const {
    return arrivals_.at(static_cast<size_t>(object_index));
  }

  Key key_for(int object_index) const;
  /// The (deterministic, regenerable) value stored for an object.
  Bytes value_for(int object_index) const;

 private:
  void issue(int object_index, int attempt);
  void resolve(int object_index, int attempt, bool acked);
  void finish_put(int object_index, bool acked);
  void maybe_get(int object_index);

  sim::Simulator& sim_;
  Proxy& proxy_;
  WorkloadConfig config_;
  uint64_t value_seed_;
  int attempts_ = 0;
  int successes_ = 0;
  int failures_ = 0;
  std::vector<SimTime> arrivals_;  ///< per-object first-attempt issue time
  std::vector<PutRecord> records_;
  std::vector<GetRecord> get_records_;
  std::vector<OpLatency> put_latencies_;
  std::vector<OpLatency> get_latencies_;
};

}  // namespace pahoehoe::core
