// Client workload driver (paper §5.1): issues puts through a proxy,
// optionally retrying failures (the lossy-network experiment counts the
// attempts needed to collect the target number of success replies).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/proxy.h"
#include "sim/simulator.h"

namespace pahoehoe::core {

struct WorkloadConfig {
  int num_puts = 100;               ///< distinct objects
  size_t value_size = 100 * 1024;   ///< 100 KiB, the paper's object size
  Policy policy;
  SimTime start_time = 0;
  SimTime spacing = 1 * kMicrosPerSecond;  ///< gap between first attempts
  /// Retry a failed put for the same key (new object version) until it
  /// succeeds or max_attempts is reached.
  bool retry_failed = false;
  SimTime retry_delay = 2 * kMicrosPerSecond;
  int max_attempts = 50;
  std::string key_prefix = "obj-";
};

/// One put attempt as observed by the client.
struct PutRecord {
  ObjectVersionId ov;
  int object_index = 0;
  int attempt = 0;
  bool acked = false;  ///< proxy reported success to the client
};

class WorkloadDriver {
 public:
  WorkloadDriver(sim::Simulator& sim, Proxy& proxy, WorkloadConfig config,
                 uint64_t value_seed);

  /// Schedule the whole workload (non-blocking; runs inside the simulator).
  void start();

  int attempts() const { return attempts_; }
  int successes() const { return successes_; }
  int failures() const { return failures_; }
  const std::vector<PutRecord>& records() const { return records_; }

  Key key_for(int object_index) const;
  /// The (deterministic, regenerable) value stored for an object.
  Bytes value_for(int object_index) const;

 private:
  void issue(int object_index, int attempt);

  sim::Simulator& sim_;
  Proxy& proxy_;
  WorkloadConfig config_;
  uint64_t value_seed_;
  int attempts_ = 0;
  int successes_ = 0;
  int failures_ = 0;
  std::vector<PutRecord> records_;
};

}  // namespace pahoehoe::core
