// Experiment harness: one self-contained simulated run of the paper's
// workload under a fault schedule, plus multi-seed aggregation (the paper
// runs 50–150 seeds and reports means with 95% confidence checks, §5.1).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/cluster.h"
#include "obs/attribution.h"
#include "core/config.h"
#include "core/workload.h"
#include "net/network.h"
#include "obs/prof.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"

namespace pahoehoe::core {

/// Declarative fault to install before the run starts.
struct FaultSpec {
  enum class Kind {
    kFsBlackout,   ///< drop all traffic of FS (dc, index) in [start, end)
    kKlsBlackout,  ///< drop all traffic of KLS (dc, index) in [start, end)
    kDcPartition,  ///< isolate an entire data center in [start, end)
    kUniformLoss,  ///< drop every message iid with `rate`, whole run
    kFsCrash,      ///< crash FS (dc, index) at `start`, recover at `end`
                   ///< (volatile state lost; stable storage survives)
    kKlsCrash,     ///< same for a KLS
    kFragCorrupt,  ///< at `start`, flip a byte of one uniformly chosen
                   ///< stored fragment on FS (dc, index) — silent corruption
    kProxyCrash,   ///< crash proxy `index_in_dc` (global index) at `start`,
                   ///< recover at `end`; in-flight client ops are lost
    kDuplicationBurst,  ///< raise the network duplication rate to `rate`
                        ///< during [start, end)
    kDiskDestroy,  ///< at `start`, wipe every fragment on disk `disk` of
                   ///< FS (dc, index) — bulk data loss; scrub + convergence
                   ///< must rebuild from siblings
  };
  static constexpr int kKindCount = 10;

  Kind kind = Kind::kUniformLoss;
  int dc = 0;
  int index_in_dc = 0;
  int disk = 0;  ///< kDiskDestroy only
  SimTime start = 0;
  SimTime end = 0;
  double rate = 0.0;

  static FaultSpec fs_blackout(int dc, int index, SimTime start, SimTime end);
  static FaultSpec kls_blackout(int dc, int index, SimTime start,
                                SimTime end);
  static FaultSpec dc_partition(int dc, SimTime start, SimTime end);
  static FaultSpec uniform_loss(double rate);
  static FaultSpec fs_crash(int dc, int index, SimTime start, SimTime end);
  static FaultSpec kls_crash(int dc, int index, SimTime start, SimTime end);
  static FaultSpec frag_corrupt(int dc, int index, SimTime at);
  static FaultSpec proxy_crash(int index, SimTime start, SimTime end);
  static FaultSpec duplication_burst(double rate, SimTime start, SimTime end);
  static FaultSpec disk_destroy(int dc, int index, int disk, SimTime at);

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// One-line human-readable description, also valid C++ for pasting into a
/// RunConfig's fault list (the shrinker's repro output).
std::string to_repro_string(const FaultSpec& spec);

/// Observability knobs for one run. Everything defaults off: the figure
/// benches and chaos sweeps opt in to exactly what they need, and a run
/// with telemetry off is event-for-event identical to the pre-telemetry
/// harness.
struct TelemetryOptions {
  /// Periodic metric sampling interval (sim time); 0 disables the sampler.
  /// Samples are taken on the simulation's own event queue at k * interval
  /// and stop once the rest of the queue drains — note the sampler's
  /// events are counted by RunResult::events and can extend end_time by up
  /// to one interval (see DESIGN.md).
  SimTime sample_interval = 0;
  size_t max_samples = 4096;
  /// Enable net::Tracer with this ring capacity; 0 disables. When on, the
  /// run cross-checks NetworkStats against the tracer's cumulative tallies
  /// and reports any drift as a kTelemetryDrift audit violation, and a
  /// failed audit attaches the trailing trace window to the RunResult.
  size_t trace_capacity = 0;
  /// Trace lines kept in the forensics dump of a failed run.
  size_t trace_dump_lines = 40;
  /// Causal span tracing (obs/span.h): per-version lifecycle trees and
  /// put-ack → AMR critical-path attribution. The tracer is a pure
  /// observer (no events, no RNG draws), so enabling it never perturbs
  /// the run.
  bool spans = false;
  /// Spans stored per version before truncation (see SpanTracer::enable).
  size_t max_spans_per_version = 8192;
  /// Test hook: record one phantom trace event right before the stats/trace
  /// reconciliation so kTelemetryDrift fires as the run's only violation
  /// (locks down the sweep's non-zero exit code). Needs trace_capacity > 0.
  bool inject_trace_drift = false;
  /// Tail-latency exemplars + cohort attribution (obs/exemplar.h,
  /// obs/attribution.h). Implies span tracing (the exemplar source). Like
  /// spans, a pure observer: the stores are built from already-recorded
  /// telemetry after the run, so enabling this never perturbs a run
  /// (exemplar_test digests runs with it on vs. off).
  bool exemplars = false;
  size_t exemplar_worst_k = obs::ExemplarStore::kDefaultWorstK;
  size_t exemplar_reservoir = obs::ExemplarStore::kDefaultReservoir;
};

struct RunConfig {
  ClusterTopology topology;
  ConvergenceOptions convergence;
  ProxyOptions proxy;
  WorkloadConfig workload;
  net::NetworkConfig network;
  TelemetryOptions telemetry;
  std::vector<FaultSpec> faults;
  uint64_t seed = 1;
  /// Hard stop; generous enough for the two-month give-up horizon.
  SimTime max_sim_time = 200LL * 24 * 3600 * kMicrosPerSecond;
  /// Liveness budgets audited at the end of the run; 0 disables the check.
  /// A run that blows a budget fails the audit even if it converged —
  /// convergence must be cheap as well as eventual.
  uint64_t event_budget = 0;    ///< simulator events executed
  uint64_t message_budget = 0;  ///< network messages sent
};

/// One broken invariant, attributed to an object version where applicable.
struct InvariantViolation {
  enum class Kind {
    kAckedNonDurable,   ///< a client-acked put ended with < k intact frags
    kAckedNotAmr,       ///< a client-acked put was durable but never AMR
    kDurableNotAmr,     ///< a durable version (acked or not) stuck non-AMR
    kGetValueMismatch,  ///< a completed get returned bytes != what was put
    kNotQuiescent,      ///< convergence work still pending at the horizon
    kEventBudget,       ///< simulator executed more events than budgeted
    kMessageBudget,     ///< network sent more messages than budgeted
    kTelemetryDrift,    ///< NetworkStats disagreed with the tracer's tallies
  };

  Kind kind;
  ObjectVersionId ov;  ///< zero-initialized for run-global violations
  std::string detail;
};

const char* to_string(InvariantViolation::Kind kind);

/// Machine-checkable verdict of one run: empty == every audited invariant
/// held (the paper's convergence claim plus read-your-writes integrity).
struct AuditReport {
  std::vector<InvariantViolation> violations;

  bool passed() const { return violations.empty(); }
  /// Multi-line "kind ov: detail" listing ("all invariants held" if none).
  std::string to_string() const;
};

struct RunResult {
  net::NetworkStats stats;

  int puts_attempted = 0;
  int puts_acked = 0;    ///< success replies seen by the client
  int puts_failed = 0;

  int gets_attempted = 0;
  int gets_ok = 0;          ///< completed with a value
  int gets_mismatched = 0;  ///< completed with the WRONG value

  int versions_total = 0;
  int amr = 0;
  /// AMR versions whose put the client saw fail (paper Fig 9 "excess AMR").
  int excess_amr = 0;
  int durable_not_amr = 0;  ///< should be 0 at quiescence
  int non_durable = 0;
  int given_up = 0;         ///< work-list entries dropped at the give-up age

  /// When the last event executed — effectively the time the system went
  /// quiet (all convergence work done or given up).
  SimTime end_time = 0;
  uint64_t events = 0;
  bool quiescent = false;

  /// Client-observed per-op latencies in seconds, in resolution order: puts
  /// from first-attempt arrival to final resolution (acked ops only — a
  /// failed put's "latency" is a timeout artifact), gets issue → value.
  std::vector<double> put_latency_s;
  std::vector<double> get_latency_s;

  AuditReport audit;

  // --- telemetry (always populated; sampler/tracer fields only when the
  // corresponding TelemetryOptions knob was on) ----------------------------
  /// Final snapshot of every metric the run registered.
  obs::MetricRegistry metrics;
  /// Periodic samples (empty unless telemetry.sample_interval > 0).
  obs::TimeSeries timeline;
  /// Put-ack → AMR-confirmation latency distribution (seconds).
  QuantileSketch time_to_amr_s;
  uint64_t amr_confirmed = 0;     ///< versions some node confirmed AMR
  size_t amr_backlog_final = 0;   ///< acked-but-not-yet-AMR at run end
  size_t amr_backlog_peak = 0;
  /// Forensics: trailing trace window, captured only when the audit failed
  /// and telemetry.trace_capacity was > 0.
  std::string trace_tail;
  uint64_t trace_overflowed = 0;  ///< records evicted from the trace ring
  /// Per-version critical-path decompositions in confirmation order, and
  /// their mergeable aggregate (empty unless telemetry.spans was on).
  std::vector<obs::VersionCriticalPath> critical_paths;
  obs::CriticalPathAggregate critical_path;
  /// The run's span tracer, moved out of the Network at the end of the run
  /// so callers can render trees / export Perfetto traces.
  obs::SpanTracer spans;
  /// Forensics: span tree of the first audit violation that names a traced
  /// version (empty when the audit passed or spans were off).
  std::string span_forensics;
  /// Tail-latency exemplars (empty unless telemetry.exemplars): put-ack →
  /// AMR latency witnesses with exact critical-path components, plus
  /// client-visible per-op put/get witnesses (all-zero components).
  obs::ExemplarStore amr_exemplars;
  obs::ExemplarStore put_op_exemplars;
  obs::ExemplarStore get_op_exemplars;
  /// Tail (≥p95) vs. body cohort attribution over this run's critical
  /// paths (empty unless telemetry.exemplars).
  obs::AttributionReport attribution;
  /// Host wall-clock phase breakdown of this run (empty unless
  /// obs::prof profiling is enabled). Pure side channel — excluded from
  /// every determinism digest (DESIGN.md §11).
  obs::ProfReport profile;
};

/// Build a cluster, run the workload under the faults, drive the simulation
/// to quiescence, and classify every attempted version with the oracle.
RunResult run_experiment(const RunConfig& config);

/// Multi-seed aggregate of RunResults.
struct AggregateResult {
  int seeds = 0;
  SampleStats msg_count;
  SampleStats msg_bytes;
  SampleStats wan_bytes;
  std::array<SampleStats, wire::kMessageTypeCount> count_by_type;
  std::array<SampleStats, wire::kMessageTypeCount> bytes_by_type;
  SampleStats puts_attempted;
  SampleStats puts_acked;
  SampleStats amr;
  SampleStats excess_amr;
  SampleStats durable_not_amr;
  SampleStats non_durable;
  SampleStats end_time_s;
  /// Per-op latencies pooled across every seed (mergeable sketches, so
  /// per-seed partials combine deterministically), plus the per-seed mean
  /// put latency for CI reporting.
  QuantileSketch put_latency_s;
  QuantileSketch get_latency_s;
  SampleStats put_latency_mean_s;

  // --- telemetry ----------------------------------------------------------
  /// Per-seed registries merged in seed order (counters add, gauges add,
  /// histograms bucket-merge) — byte-identical for every jobs value.
  obs::MetricRegistry metrics;
  /// Pooled put-ack → AMR latency across all seeds (seconds).
  QuantileSketch time_to_amr_s;
  /// Row-aligned mean of per-seed timelines (empty unless sampling was on).
  obs::TimeSeries timeline;
  SampleStats amr_confirmed;
  SampleStats amr_backlog_final;
  /// Per-component critical-path aggregate merged in seed order —
  /// byte-identical to_text() for every jobs value.
  obs::CriticalPathAggregate critical_path;
  /// Exemplar stores merged in seed order (retention is additionally
  /// insertion-order independent, DESIGN.md §13) and the pooled tail
  /// attribution built from the merged sketch's p95 over every seed's
  /// critical paths. Empty unless telemetry.exemplars.
  obs::ExemplarStore amr_exemplars;
  obs::ExemplarStore put_op_exemplars;
  obs::ExemplarStore get_op_exemplars;
  obs::AttributionReport attribution;
  /// Per-seed wall-clock profiles merged in seed order (empty unless
  /// profiling was enabled). Side channel only — never digested.
  obs::ProfReport profile;
};

/// Run `config` under seeds base_seed, base_seed+1, … and aggregate.
/// Seeds are independent runs, dispatched across `jobs` worker threads;
/// aggregation happens in seed order afterwards, so the result is
/// byte-identical for every jobs value.
AggregateResult run_many(RunConfig config, int num_seeds, uint64_t base_seed,
                         int jobs = 1);

/// The paper's default experimental setup (§5.1): 2 DCs × (2 KLS + 3 FS),
/// 100 puts of 100 KiB, default policy. Convergence options filled by the
/// caller.
RunConfig paper_default_config();

}  // namespace pahoehoe::core
