// Key Lookup Server (paper §2, Figures 2–4).
//
// A KLS persists the timestamp store (key → object versions) and the
// metadata store (object version → (policy, locations)). It suggests
// fragment locations for its own data center, accepts metadata stores,
// serves timestamp retrievals for gets, and participates in convergence by
// merging metadata and verifying completeness.
#pragma once

#include <cstdint>

#include "core/config.h"
#include "core/server.h"
#include "storage/stores.h"
#include "wire/messages.h"

namespace pahoehoe::core {

class KeyLookupServer : public Server {
 public:
  KeyLookupServer(sim::Simulator& sim, net::Network& net,
                  std::shared_ptr<const ClusterView> view, NodeId id,
                  DataCenterId dc);

  // Persistent stores, exposed read-only for the experiment oracle & tests.
  const storage::TimestampStore& timestamp_store() const { return store_ts_; }
  const storage::MetaStore& meta_store() const { return store_meta_; }

  uint64_t decide_locs_served() const { return decide_locs_served_; }

 protected:
  void dispatch(const wire::Envelope& env) override;

 private:
  void on_decide_locs(NodeId from, const wire::DecideLocsReq& req);
  void on_store_metadata(NodeId from, const wire::StoreMetadataReq& req);
  void on_retrieve_ts(NodeId from, const wire::RetrieveTsReq& req);
  void on_kls_converge(NodeId from, const wire::KlsConvergeReq& req);

  /// which_locs (Fig 2): start from any persisted metadata for `ov` and fill
  /// this data center's undecided slots with the deterministic placement.
  /// `value_size` seeds the metadata when the store has no better answer.
  Metadata suggest_for(const ObjectVersionId& ov, const Policy& policy,
                       uint64_t value_size) const;

  storage::TimestampStore store_ts_;
  storage::MetaStore store_meta_;
  uint64_t decide_locs_served_ = 0;

  // Registry handles (labeled {node, op}); cached once in the constructor.
  obs::Counter* m_decide_locs_ = nullptr;
  obs::Counter* m_store_metadata_ = nullptr;
  obs::Counter* m_retrieve_ts_ = nullptr;
  obs::Counter* m_converge_ = nullptr;
};

}  // namespace pahoehoe::core
