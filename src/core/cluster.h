// Cluster builder: wires proxies, KLSs, and FSs onto a simulator + network,
// and provides the experiment oracle that classifies object versions by
// direct inspection of final server state.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/sha256.h"
#include "core/config.h"
#include "core/fs.h"
#include "core/kls.h"
#include "core/proxy.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pahoehoe::core {

/// Oracle classification of one object version at the end of a run.
enum class VersionStatus {
  kAmr,            ///< at maximum redundancy everywhere
  kDurableNotAmr,  ///< ≥ k fragments stored, but not (yet) AMR
  kNonDurable,     ///< fewer than k fragments stored; can never reach AMR
};

const char* to_string(VersionStatus status);

class Cluster {
 public:
  Cluster(sim::Simulator& sim, net::Network& net, ClusterTopology topology,
          ConvergenceOptions conv_options, ProxyOptions proxy_options);

  const ClusterTopology& topology() const { return topology_; }
  const std::shared_ptr<const ClusterView>& view() const { return view_; }

  Proxy& proxy(int index);
  /// Global indices enumerate data center 0's servers first.
  KeyLookupServer& kls(int global_index);
  KeyLookupServer& kls(int dc, int index_in_dc);
  FragmentServer& fs(int global_index);
  FragmentServer& fs(int dc, int index_in_dc);

  int num_kls() const { return static_cast<int>(klss_.size()); }
  int num_fs() const { return static_cast<int>(fss_.size()); }
  int num_proxies() const { return static_cast<int>(proxies_.size()); }

  // --- oracle ----------------------------------------------------------------

  /// Classify a version by direct state inspection (no messages).
  VersionStatus classify(const ObjectVersionId& ov) const;
  /// True iff no FS has convergence work outstanding.
  bool converged_quiescent() const;
  /// Total convergence work-list entries across all FSs.
  size_t total_pending_versions() const;
  /// SHA-256 over the entire persistent state of the cluster (every KLS's
  /// timestamp+metadata stores, every FS's fragments and their placement),
  /// in a canonical order. Two runs that converge to the same archive state
  /// produce the same digest — regardless of which convergence
  /// optimizations produced it.
  Sha256::Digest state_digest() const;

 private:
  sim::Simulator& sim_;
  net::Network& net_;
  ClusterTopology topology_;
  std::shared_ptr<const ClusterView> view_;
  std::vector<std::unique_ptr<Proxy>> proxies_;
  std::vector<std::unique_ptr<KeyLookupServer>> klss_;
  std::vector<std::unique_ptr<FragmentServer>> fss_;
};

}  // namespace pahoehoe::core
