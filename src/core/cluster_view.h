// Static membership knowledge shared by every node.
//
// The paper assumes "the set of all KLSs is known to every proxy and FS"
// (§3.2); this struct carries that knowledge plus the data-center map used
// for placement and for KLS probing order.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace pahoehoe::core {

struct ClusterView {
  int num_dcs = 0;
  int disks_per_fs = 1;
  std::vector<NodeId> all_kls;                        // global, stable order
  std::vector<std::vector<NodeId>> kls_by_dc;         // [dc] -> KLS ids
  std::vector<std::vector<NodeId>> fs_by_dc;          // [dc] -> FS ids
  std::unordered_map<NodeId, DataCenterId> dc_of_node;

  /// Data center of a node; invalid for nodes outside the cluster (test
  /// probes), which WAN accounting then ignores.
  DataCenterId dc_of(NodeId id) const {
    auto it = dc_of_node.find(id);
    return it == dc_of_node.end() ? DataCenterId{} : it->second;
  }

  const std::vector<NodeId>& fs_in_dc(DataCenterId dc) const {
    PAHOEHOE_CHECK(dc.valid() && dc.value < fs_by_dc.size());
    return fs_by_dc[dc.value];
  }

  const std::vector<NodeId>& kls_in_dc(DataCenterId dc) const {
    PAHOEHOE_CHECK(dc.valid() && dc.value < kls_by_dc.size());
    return kls_by_dc[dc.value];
  }

  /// Every node (proxy, KLS, FS) placed in data center `dc`, sorted by id.
  /// The one sanctioned walk of `dc_of_node`: callers that need "all of a
  /// DC" (partition faults, WAN scenarios) take this deterministic view
  /// instead of leaking hash order.
  std::vector<NodeId> nodes_in_dc(DataCenterId dc) const {
    std::vector<NodeId> out;
    // lint:ordered-ok(filtered into a sorted vector before exposure)
    for (const auto& [node, node_dc] : dc_of_node) {
      if (node_dc == dc) out.push_back(node);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

}  // namespace pahoehoe::core
