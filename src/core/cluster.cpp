#include "core/cluster.h"

#include <unordered_set>

namespace pahoehoe::core {

const char* to_string(VersionStatus status) {
  switch (status) {
    case VersionStatus::kAmr:
      return "AMR";
    case VersionStatus::kDurableNotAmr:
      return "durable-not-AMR";
    case VersionStatus::kNonDurable:
      return "non-durable";
  }
  return "?";
}

Cluster::Cluster(sim::Simulator& sim, net::Network& net,
                 ClusterTopology topology, ConvergenceOptions conv_options,
                 ProxyOptions proxy_options)
    : sim_(sim), net_(net), topology_(topology) {
  PAHOEHOE_CHECK_MSG(topology_.valid(), "invalid cluster topology");

  auto view = std::make_shared<ClusterView>();
  view->num_dcs = topology_.num_dcs;
  view->disks_per_fs = topology_.disks_per_fs;
  view->kls_by_dc.resize(static_cast<size_t>(topology_.num_dcs));
  view->fs_by_dc.resize(static_cast<size_t>(topology_.num_dcs));

  // Ids are assigned proxies → KLSs → FSs, data center 0 first; the FS id
  // order doubles as the §4.2 backoff tiebreak. Allocation starts at 101 so
  // tests can register out-of-cluster probe nodes with ids on either side.
  uint32_t next_id = 101;
  std::vector<std::pair<NodeId, DataCenterId>> proxy_ids, kls_ids, fs_ids;
  for (int p = 0; p < topology_.num_proxies; ++p) {
    const DataCenterId dc{static_cast<uint8_t>(p % topology_.num_dcs)};
    proxy_ids.emplace_back(NodeId{next_id++}, dc);
  }
  for (int d = 0; d < topology_.num_dcs; ++d) {
    const DataCenterId dc{static_cast<uint8_t>(d)};
    for (int i = 0; i < topology_.kls_per_dc; ++i) {
      const NodeId id{next_id++};
      kls_ids.emplace_back(id, dc);
      view->all_kls.push_back(id);
      view->kls_by_dc[static_cast<size_t>(d)].push_back(id);
    }
  }
  for (int d = 0; d < topology_.num_dcs; ++d) {
    const DataCenterId dc{static_cast<uint8_t>(d)};
    for (int i = 0; i < topology_.fs_per_dc; ++i) {
      const NodeId id{next_id++};
      fs_ids.emplace_back(id, dc);
      view->fs_by_dc[static_cast<size_t>(d)].push_back(id);
    }
  }
  for (const auto& [id, dc] : proxy_ids) view->dc_of_node[id] = dc;
  for (const auto& [id, dc] : kls_ids) view->dc_of_node[id] = dc;
  for (const auto& [id, dc] : fs_ids) view->dc_of_node[id] = dc;
  view_ = std::move(view);

  net_.set_dc_resolver(
      [v = view_](NodeId id) { return v->dc_of(id); });

  proxy_options.put_amr_indication = conv_options.put_amr_indication;
  for (const auto& [id, dc] : proxy_ids) {
    proxies_.push_back(
        std::make_unique<Proxy>(sim_, net_, view_, id, dc, proxy_options));
  }
  for (const auto& [id, dc] : kls_ids) {
    klss_.push_back(
        std::make_unique<KeyLookupServer>(sim_, net_, view_, id, dc));
  }
  for (const auto& [id, dc] : fs_ids) {
    fss_.push_back(std::make_unique<FragmentServer>(sim_, net_, view_, id, dc,
                                                    conv_options));
  }
}

Proxy& Cluster::proxy(int index) {
  PAHOEHOE_CHECK(index >= 0 && index < num_proxies());
  return *proxies_[static_cast<size_t>(index)];
}

KeyLookupServer& Cluster::kls(int global_index) {
  PAHOEHOE_CHECK(global_index >= 0 && global_index < num_kls());
  return *klss_[static_cast<size_t>(global_index)];
}

KeyLookupServer& Cluster::kls(int dc, int index_in_dc) {
  return kls(dc * topology_.kls_per_dc + index_in_dc);
}

FragmentServer& Cluster::fs(int global_index) {
  PAHOEHOE_CHECK(global_index >= 0 && global_index < num_fs());
  return *fss_[static_cast<size_t>(global_index)];
}

FragmentServer& Cluster::fs(int dc, int index_in_dc) {
  return fs(dc * topology_.fs_per_dc + index_in_dc);
}

VersionStatus Cluster::classify(const ObjectVersionId& ov) const {
  // Union every server's view of the metadata.
  Metadata merged;
  for (const auto& kls : klss_) {
    if (const Metadata* m = kls->meta_store().find(ov); m != nullptr) {
      if (merged.locs.empty()) merged = *m;
      else merged.merge_locs(*m);
    }
  }
  for (const auto& fs : fss_) {
    const storage::FragStore::Entry* entry = fs->frag_store().find(ov);
    if (entry != nullptr) {
      if (merged.locs.empty()) merged = entry->meta;
      else merged.merge_locs(entry->meta);
    }
  }

  // Durability: distinct fragment indices with an intact copy anywhere.
  std::unordered_set<int> stored;
  for (const auto& fs : fss_) {
    const storage::FragStore::Entry* entry = fs->frag_store().find(ov);
    if (entry == nullptr) continue;
    for (const auto& [index, frag] : entry->fragments) {
      if (frag.intact()) stored.insert(index);
    }
  }
  const int k = merged.policy.k;
  const bool durable =
      !merged.locs.empty() && static_cast<int>(stored.size()) >= k;
  if (!durable) return VersionStatus::kNonDurable;

  // AMR: every KLS stores the timestamp and complete metadata, and every
  // assigned FS holds its sibling fragment intact.
  if (!merged.complete()) return VersionStatus::kDurableNotAmr;
  for (const auto& kls : klss_) {
    if (!kls->timestamp_store().contains(ov.key, ov.ts)) {
      return VersionStatus::kDurableNotAmr;
    }
    const Metadata* m = kls->meta_store().find(ov);
    if (m == nullptr || !m->complete()) return VersionStatus::kDurableNotAmr;
  }
  for (size_t slot = 0; slot < merged.locs.size(); ++slot) {
    const Location& loc = *merged.locs[slot];
    const FragmentServer* owner = nullptr;
    for (const auto& fs : fss_) {
      if (fs->id() == loc.fs) {
        owner = fs.get();
        break;
      }
    }
    if (owner == nullptr) return VersionStatus::kDurableNotAmr;
    if (owner->frag_store().fragment_if_intact(ov, static_cast<int>(slot)) ==
        nullptr) {
      return VersionStatus::kDurableNotAmr;
    }
  }
  return VersionStatus::kAmr;
}

Sha256::Digest Cluster::state_digest() const {
  // Canonical serialization of every server's persistent state: servers in
  // id order, versions in (key, timestamp) order, fragment slots ascending.
  wire::Writer w;
  for (const auto& kls : klss_) {
    w.u32(kls->id().value);
    const auto& meta_store = kls->meta_store();
    const auto versions = meta_store.all_versions();
    w.u32(static_cast<uint32_t>(versions.size()));
    for (const ObjectVersionId& ov : versions) {
      wire::encode(w, ov);
      w.boolean(kls->timestamp_store().contains(ov.key, ov.ts));
      wire::encode(w, *meta_store.find(ov));
    }
  }
  for (const auto& fs : fss_) {
    w.u32(fs->id().value);
    const auto versions = fs->frag_store().all_versions();
    w.u32(static_cast<uint32_t>(versions.size()));
    for (const ObjectVersionId& ov : versions) {
      wire::encode(w, ov);
      const storage::FragStore::Entry* entry = fs->frag_store().find(ov);
      w.u32(static_cast<uint32_t>(entry->fragments.size()));
      for (const auto& [slot, frag] : entry->fragments) {
        w.u32(static_cast<uint32_t>(slot));
        w.u8(frag.disk);
        // Hash of the fragment content rather than the content itself
        // keeps the digest input small for large archives.
        for (uint8_t b : Sha256::hash(frag.data)) w.u8(b);
      }
    }
  }
  return Sha256::hash(w.data());
}

bool Cluster::converged_quiescent() const {
  return total_pending_versions() == 0;
}

size_t Cluster::total_pending_versions() const {
  size_t total = 0;
  for (const auto& fs : fss_) total += fs->pending_versions();
  return total;
}

}  // namespace pahoehoe::core
