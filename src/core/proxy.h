// Proxy server: executes put and get on behalf of clients
// (paper Figures 2 and 3, §3.2–§3.3).
//
// Put: two rounds — ask every KLS for locations, then push metadata to all
// KLSs and fragments to the chosen FSs. Includes both latency
// optimizations: partial locations are acted on as soon as any data
// center's locations are decided, and success is reported to the client as
// soon as the policy's fragment-store threshold is met. When every server
// acked, the proxy knows the version is AMR and (if enabled) sends Put AMR
// Indications (§4.1).
//
// Get: ask every KLS for timestamps+metadata, then retrieve fragments for
// versions from latest to earliest. Starts on the first KLS reply, and
// falls back to an earlier version only when it is safe (§3.3): some KLS
// lacked complete metadata for the current version or some FS returned ⊥.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "core/config.h"
#include "core/server.h"
#include "erasure/reed_solomon.h"
#include "wire/messages.h"

namespace pahoehoe::core {

struct PutResult {
  bool success = false;
  ObjectVersionId ov;
  /// Fragment-store acks received by the time the client was answered or
  /// the operation finished (diagnostics).
  int frag_acks = 0;
};
using PutCallback = std::function<void(const PutResult&)>;

struct GetResult {
  bool success = false;
  Bytes value;
  Timestamp ts;  ///< version returned (valid only on success)
};
using GetCallback = std::function<void(const GetResult&)>;

class Proxy : public Server {
 public:
  Proxy(sim::Simulator& sim, net::Network& net,
        std::shared_ptr<const ClusterView> view, NodeId id, DataCenterId dc,
        ProxyOptions options);
  ~Proxy() override;

  /// Begin a put; the callback fires exactly once (success, failure, or
  /// timeout — the paper's "unknown" maps to failure here).
  void put(const Key& key, Bytes value, const Policy& policy,
           PutCallback callback);

  /// Begin a get; the callback fires exactly once.
  void get(const Key& key, GetCallback callback);

  // Counters for tests and experiments.
  uint64_t puts_started() const { return puts_started_; }
  uint64_t puts_succeeded() const { return puts_succeeded_; }
  uint64_t puts_failed() const { return puts_failed_; }
  uint64_t gets_started() const { return gets_started_; }
  uint64_t amr_indications_sent() const { return amr_indications_sent_; }

 protected:
  void dispatch(const wire::Envelope& env) override;
  void on_crash() override;

 private:
  struct PutOp;
  struct GetOp;

  // Put plumbing.
  void on_decide_locs_rep(const wire::DecideLocsRep& rep);
  void on_store_metadata_rep(NodeId from, const wire::StoreMetadataRep& rep);
  void on_store_fragment_rep(NodeId from, const wire::StoreFragmentRep& rep);
  void put_check_amr(PutOp& op);
  void put_maybe_reply(PutOp& op);
  void finish_put(const ObjectVersionId& ov);

  // Get plumbing.
  void on_retrieve_ts_rep(NodeId from, const wire::RetrieveTsRep& rep);
  void on_retrieve_frag_rep(NodeId from, const wire::RetrieveFragRep& rep);
  void get_next_ts(GetOp& op);
  void finish_get(const Key& key, GetResult result);

  Timestamp next_timestamp();
  const erasure::ReedSolomon& codec(const Policy& policy);

  ProxyOptions options_;
  std::map<ObjectVersionId, std::unique_ptr<PutOp>> puts_;
  std::map<Key, std::unique_ptr<GetOp>> gets_;
  std::map<std::pair<int, int>, std::unique_ptr<erasure::ReedSolomon>>
      codecs_;
  Timestamp last_issued_;

  uint64_t puts_started_ = 0;
  uint64_t puts_succeeded_ = 0;
  uint64_t puts_failed_ = 0;
  uint64_t gets_started_ = 0;
  uint64_t amr_indications_sent_ = 0;

  // Registry handles (labeled {node}, plus {result} where it applies);
  // cached once in the constructor.
  obs::Counter* m_puts_acked_ = nullptr;
  obs::Counter* m_puts_failed_ = nullptr;
  obs::Counter* m_gets_ok_ = nullptr;
  obs::Counter* m_gets_failed_ = nullptr;
  obs::Counter* m_amr_concluded_ = nullptr;
  obs::Counter* m_amr_indications_ = nullptr;
};

}  // namespace pahoehoe::core
