#include "core/proxy.h"

#include <algorithm>

#include "common/sha256.h"
#include "core/placement.h"

namespace pahoehoe::core {

// Per-put volatile state (Fig 2, proxy side).
struct Proxy::PutOp {
  ObjectVersionId ov;
  Metadata meta;
  std::vector<Bytes> fragments;
  std::vector<Sha256::Digest> digests;
  std::set<uint8_t> dcs_decided;   // data centers whose locations are fixed
  std::set<int> acked_frags;       // fragment indices durably acked
  std::set<NodeId> acked_kls;      // KLSs that acked a metadata store
  bool replied = false;            // client already answered
  bool amr_sent = false;
  PutCallback callback;
  sim::TimerId timeout = 0;
};

// Per-get volatile state (Fig 3, proxy side).
struct Proxy::GetOp {
  Key key;
  std::set<Timestamp> pending_ts;                  // tss, not yet tried
  std::set<Timestamp> tried;                       // retrieved or retrieving
  std::map<Timestamp, Metadata> meta_by_ts;        // respskls merged
  std::map<Timestamp, std::set<NodeId>> complete_attest;  // KLSs attesting
  std::set<NodeId> kls_replied;    // sent at least one page
  std::set<NodeId> kls_drained;    // sent its final page (no more versions)
  std::set<NodeId> page_pending;   // a further page request is outstanding
  std::map<NodeId, Timestamp> page_floor;  // oldest version revealed so far
  Timestamp current;                               // ⊥ when wall_micros < 0
  std::map<int, Bytes> found_frags;                // for current version
  std::set<int> requested_slots;                   // current version's wave
  std::set<int> replied_slots;                     // found or ⊥
  bool bot_seen = false;                           // some FS returned ⊥
  GetCallback callback;
  sim::TimerId timeout = 0;

  bool has_current() const { return current.valid(); }

  /// True iff the KLS's pages received so far must have included `ts` had
  /// the KLS known it (pages are newest-first).
  bool covers(NodeId kls, const Timestamp& ts) const {
    if (kls_drained.count(kls) > 0) return true;
    auto it = page_floor.find(kls);
    return it != page_floor.end() && it->second.valid() &&
           !(ts < it->second);
  }

  /// Safe-to-try-earlier evidence (§3.3): a KLS whose pages cover the
  /// current version omitted it or carried incomplete metadata, or an FS
  /// returned ⊥. For the latest AMR version this is provably never true:
  /// every KLS's first page leads with it, complete.
  bool incomplete_evidence() const {
    if (bot_seen) return true;
    auto it = complete_attest.find(current);
    for (NodeId kls : kls_replied) {
      const bool attested =
          it != complete_attest.end() && it->second.count(kls) > 0;
      if (!attested && covers(kls, current)) return true;
    }
    return false;
  }
};

Proxy::Proxy(sim::Simulator& sim, net::Network& net,
             std::shared_ptr<const ClusterView> view, NodeId id,
             DataCenterId dc, ProxyOptions options)
    : Server(sim, net, std::move(view), id, NodeKind::kProxy, dc),
      options_(options) {
  obs::MetricRegistry& metrics = telemetry().metrics;
  obs::Labels labels = node_label();
  labels.emplace_back("result", "acked");
  m_puts_acked_ = &metrics.counter("proxy_puts_total", labels);
  labels.back().second = "failed";
  m_puts_failed_ = &metrics.counter("proxy_puts_total", labels);
  labels.back().second = "ok";
  m_gets_ok_ = &metrics.counter("proxy_gets_total", labels);
  labels.back().second = "failed";
  m_gets_failed_ = &metrics.counter("proxy_gets_total", labels);
  m_amr_concluded_ =
      &metrics.counter("proxy_amr_concluded_total", node_label());
  m_amr_indications_ =
      &metrics.counter("proxy_amr_indications_total", node_label());
}

Proxy::~Proxy() = default;

Timestamp Proxy::next_timestamp() {
  // Loosely synchronized clock (skew-adjusted sim time) concatenated with
  // the proxy id; strictly monotonic per proxy.
  SimTime wall = sim_.now() + options_.clock_skew;
  if (last_issued_.valid() && wall <= last_issued_.wall_micros) {
    wall = last_issued_.wall_micros + 1;
  }
  last_issued_ = Timestamp{wall, id().value};
  return last_issued_;
}

const erasure::ReedSolomon& Proxy::codec(const Policy& policy) {
  auto key = std::make_pair<int, int>(policy.k, policy.n);
  auto it = codecs_.find(key);
  if (it == codecs_.end()) {
    it = codecs_
             .emplace(key, std::make_unique<erasure::ReedSolomon>(policy.k,
                                                                  policy.n))
             .first;
  }
  return *it->second;
}

void Proxy::put(const Key& key, Bytes value, const Policy& policy,
                PutCallback callback) {
  PAHOEHOE_CHECK_MSG(policy.valid(), "invalid policy");
  PAHOEHOE_CHECK(callback != nullptr);
  if (crashed()) {
    // Client calls reach the proxy out-of-band (no network envelope), so
    // the crashed_ receive check does not cover them: fail fast instead of
    // letting a dead server run protocol code. Asynchronous so the caller
    // never re-enters itself.
    sim_.schedule_after(0, [callback = std::move(callback)] {
      callback(PutResult{});
    });
    return;
  }
  ++puts_started_;

  auto op = std::make_unique<PutOp>();
  op->ov = ObjectVersionId{key, next_timestamp()};
  op->meta = Metadata(policy, value.size());
  op->fragments = codec(policy).encode(value);
  op->digests.reserve(op->fragments.size());
  for (const Bytes& frag : op->fragments) {
    op->digests.push_back(Sha256::hash(frag));
  }
  op->callback = std::move(callback);

  const ObjectVersionId ov = op->ov;
  op->timeout = sim_.schedule_after(options_.put_timeout,
                                    [this, ov] { finish_put(ov); });

  // Root span of the version's causal tree; stays open until AMR. The
  // scope makes this round's messages its children.
  obs::SpanTracer& spans = telemetry().spans;
  obs::SpanTracer::Scope span_scope;
  if (spans.enabled()) {
    span_scope = spans.version_scope(
        ov, "put", id(),
        "value=" + std::to_string(op->meta.value_size) + "B k=" +
            std::to_string(policy.k) + " n=" + std::to_string(policy.n));
    spans.interval(ov, "erasure_encode", id(), sim_.now(), sim_.now(),
                   std::to_string(op->fragments.size()) + " fragments");
  }

  // Round 1: ask every KLS to suggest locations (broadcast; unlike FSs,
  // proxies do not probe in order, §3.5).
  for (NodeId kls : view_->all_kls) {
    send(kls, wire::DecideLocsReq{ov, policy, op->meta.value_size,
                                  /*from_fs=*/false});
  }
  puts_.emplace(ov, std::move(op));
}

void Proxy::on_decide_locs_rep(const wire::DecideLocsRep& rep) {
  auto it = puts_.find(rep.ov);
  if (it == puts_.end()) return;  // late reply for a finished put
  PutOp& op = *it->second;

  // useful_locs (Fig 2 line 7): only the first reply per data center is
  // used; both KLSs of a data center suggest identically anyway.
  if (!rep.dc.valid() || op.dcs_decided.count(rep.dc.value) > 0) return;
  op.dcs_decided.insert(rep.dc.value);
  op.meta.merge_locs(rep.meta);

  // Latency optimization 1 (§3.2): act as soon as any data center's
  // locations are decided. Per Fig 2 lines 9–10 the proxy (re)sends the
  // accumulated metadata to every KLS and a store to every decided
  // location — so FSs contacted in an earlier round receive the completed
  // metadata too (the "two sets of location messages and two location
  // updates" the paper's Idealized comparison charges to the real protocol).
  for (NodeId kls : view_->all_kls) {
    send(kls, wire::StoreMetadataReq{op.ov, op.meta});
  }
  for (size_t slot = 0; slot < op.meta.locs.size(); ++slot) {
    const auto& loc = op.meta.locs[slot];
    if (!loc.has_value()) continue;
    wire::StoreFragmentReq req;
    req.ov = op.ov;
    req.meta = op.meta;
    req.frag_index = static_cast<uint16_t>(slot);
    req.fragment = op.fragments[slot];
    req.digest = op.digests[slot];
    send(loc->fs, req);
  }
}

void Proxy::on_store_metadata_rep(NodeId from,
                                  const wire::StoreMetadataRep& rep) {
  auto it = puts_.find(rep.ov);
  if (it == puts_.end()) return;
  if (rep.status != wire::Status::kSuccess) return;
  PutOp& op = *it->second;
  // Only an ack attesting *complete* metadata counts toward the AMR
  // conclusion; a first-round (partial-locations) ack does not prove this
  // KLS will ever hold the full location list.
  if (rep.decided_count == op.meta.policy.n) {
    op.acked_kls.insert(from);
    put_check_amr(op);
  }
}

void Proxy::on_store_fragment_rep(NodeId /*from*/,
                                  const wire::StoreFragmentRep& rep) {
  auto it = puts_.find(rep.ov);
  if (it == puts_.end()) return;
  if (rep.status != wire::Status::kSuccess) return;
  PutOp& op = *it->second;
  op.acked_frags.insert(rep.frag_index);
  put_maybe_reply(op);
  put_check_amr(op);
}

void Proxy::put_maybe_reply(PutOp& op) {
  // can_reply (Fig 2 line 13): enough fragments durably stored per policy.
  if (op.replied) return;
  if (static_cast<int>(op.acked_frags.size()) <
      op.meta.policy.min_frags_for_success) {
    return;
  }
  op.replied = true;
  ++puts_succeeded_;
  m_puts_acked_->inc();
  telemetry().amr.on_put_acked(op.ov, sim_.now());
  telemetry().spans.on_put_acked(op.ov, id());
  op.callback(PutResult{true, op.ov, static_cast<int>(op.acked_frags.size())});
}

void Proxy::put_check_amr(PutOp& op) {
  // The proxy knows the version is AMR when metadata is complete, every
  // fragment store was acked, and every KLS acked the metadata (§4.1).
  if (op.amr_sent) return;
  if (!op.meta.complete()) return;
  if (op.acked_frags.size() != op.meta.locs.size()) return;
  if (op.acked_kls.size() != view_->all_kls.size()) return;
  op.amr_sent = true;
  m_amr_concluded_->inc();
  telemetry().amr.on_amr_confirmed(op.ov, sim_.now());
  telemetry().spans.on_amr_confirmed(op.ov, id());
  if (options_.put_amr_indication) {
    for (NodeId fs : op.meta.sibling_fs()) {
      send(fs, wire::AmrIndication{op.ov});
      ++amr_indications_sent_;
      m_amr_indications_->inc();
    }
  }
  finish_put(op.ov);
}

void Proxy::finish_put(const ObjectVersionId& ov) {
  auto it = puts_.find(ov);
  if (it == puts_.end()) return;
  PutOp& op = *it->second;
  sim_.cancel(op.timeout);
  if (!op.replied) {
    ++puts_failed_;
    m_puts_failed_->inc();
    telemetry().spans.interval(
        op.ov, "put_failed", id(), sim_.now(), sim_.now(),
        "acked_frags=" + std::to_string(op.acked_frags.size()));
    op.callback(
        PutResult{false, op.ov, static_cast<int>(op.acked_frags.size())});
  }
  puts_.erase(it);
}

void Proxy::get(const Key& key, GetCallback callback) {
  PAHOEHOE_CHECK(callback != nullptr);
  if (crashed()) {
    sim_.schedule_after(0, [callback = std::move(callback)] {
      callback(GetResult{});
    });
    return;
  }
  PAHOEHOE_CHECK_MSG(gets_.count(key) == 0,
                     "one get at a time per key per proxy");
  ++gets_started_;

  auto op = std::make_unique<GetOp>();
  op->key = key;
  op->callback = std::move(callback);
  op->timeout = sim_.schedule_after(options_.get_timeout, [this, key] {
    finish_get(key, GetResult{});
  });
  for (NodeId kls : view_->all_kls) {
    send(kls,
         wire::RetrieveTsReq{key, Timestamp{}, options_.get_page_size});
  }
  gets_.emplace(key, std::move(op));
}

void Proxy::on_retrieve_ts_rep(NodeId from, const wire::RetrieveTsRep& rep) {
  auto it = gets_.find(rep.key);
  if (it == gets_.end()) return;
  GetOp& op = *it->second;
  op.kls_replied.insert(from);
  op.page_pending.erase(from);
  if (!rep.more) op.kls_drained.insert(from);

  for (const auto& entry : rep.entries) {
    auto [mit, inserted] = op.meta_by_ts.try_emplace(entry.ts, entry.meta);
    if (!inserted) {
      mit->second.merge_locs(entry.meta);
      if (mit->second.value_size == 0) {
        mit->second.value_size = entry.meta.value_size;
      }
    }
    if (entry.meta.complete()) op.complete_attest[entry.ts].insert(from);
    // Track how deep this KLS's pages reach (entries are newest-first).
    auto [fit, fresh] = op.page_floor.try_emplace(from, entry.ts);
    if (!fresh && entry.ts < fit->second) fit->second = entry.ts;
    // Queue only versions not already tried or being retrieved.
    if (entry.ts != op.current && op.tried.count(entry.ts) == 0) {
      op.pending_ts.insert(entry.ts);
    }
  }

  // Latency optimization (§3.3): start retrieving on the first KLS reply;
  // also resume when a continuation page arrives while we were idle.
  if (!op.has_current()) {
    get_next_ts(op);
  }
}

void Proxy::get_next_ts(GetOp& op) {
  while (!op.pending_ts.empty()) {
    // Latest remaining version first.
    const Timestamp ts = *op.pending_ts.rbegin();
    op.pending_ts.erase(ts);
    op.tried.insert(ts);
    op.current = ts;
    op.found_frags.clear();
    op.requested_slots.clear();
    op.replied_slots.clear();
    op.bot_seen = false;

    const Metadata& meta = op.meta_by_ts.at(ts);
    const ObjectVersionId ov{op.key, ts};
    for (size_t slot = 0; slot < meta.locs.size(); ++slot) {
      if (!meta.locs[slot].has_value()) continue;
      send(meta.locs[slot]->fs,
           wire::RetrieveFragReq{ov, static_cast<uint16_t>(slot)});
      op.requested_slots.insert(static_cast<int>(slot));
    }
    if (static_cast<int>(op.requested_slots.size()) >= meta.policy.k) {
      return;  // enough outstanding to possibly decode
    }
    // Too few known locations to ever decode this version; it is clearly
    // not AMR (metadata incomplete), so trying an earlier one is safe.
  }

  op.current = Timestamp{};  // ⊥

  // Paged retrieval (§3.5): pull the next page from every KLS that has
  // older versions we have not seen yet.
  bool more_possible = false;
  for (NodeId kls : view_->all_kls) {
    if (op.kls_drained.count(kls) > 0) continue;
    if (op.kls_replied.count(kls) == 0) {
      more_possible = true;  // first page still in flight (or lost)
      continue;
    }
    more_possible = true;
    if (op.page_pending.count(kls) > 0) continue;
    auto floor = op.page_floor.find(kls);
    const Timestamp before =
        floor != op.page_floor.end() ? floor->second : Timestamp{};
    send(kls,
         wire::RetrieveTsReq{op.key, before, options_.get_page_size});
    op.page_pending.insert(kls);
  }
  if (!more_possible) {
    finish_get(op.key, GetResult{});  // Fig 3 line 28: abort
  }
  // Otherwise wait: an in-flight or freshly requested page may surface
  // more versions; the get timeout bounds the wait.
}

void Proxy::on_retrieve_frag_rep(NodeId /*from*/,
                                 const wire::RetrieveFragRep& rep) {
  auto it = gets_.find(rep.ov.key);
  if (it == gets_.end()) return;
  GetOp& op = *it->second;
  if (!op.has_current() || rep.ov.ts != op.current) return;  // stale version

  const Metadata& meta = op.meta_by_ts.at(op.current);
  op.replied_slots.insert(rep.frag_index);
  if (rep.found) {
    op.found_frags.emplace(rep.frag_index, rep.fragment);
  } else {
    op.bot_seen = true;
  }

  // can_decode (Fig 3 line 16).
  if (static_cast<int>(op.found_frags.size()) >= meta.policy.k) {
    std::vector<erasure::IndexedFragment> frags;
    frags.reserve(op.found_frags.size());
    for (const auto& [index, data] : op.found_frags) {
      frags.push_back(erasure::IndexedFragment{index, &data});
    }
    Bytes value = codec(meta.policy).decode(frags, meta.value_size);
    finish_get(op.key, GetResult{true, std::move(value), op.current});
    return;
  }
  // can_try_earlier (Fig 3 line 19): safe once the current version is
  // provably not AMR. We additionally wait while enough fragment requests
  // are still outstanding that this version could yet decode — a ⊥ racing
  // with in-flight fragment *stores* must not abort a winnable retrieval
  // (the paper's semantics permit the abort; we simply do better).
  const int outstanding = static_cast<int>(op.requested_slots.size()) -
                          static_cast<int>(op.replied_slots.size());
  const int still_possible =
      static_cast<int>(op.found_frags.size()) + outstanding;
  if (op.incomplete_evidence() && still_possible < meta.policy.k) {
    get_next_ts(op);
  }
}

void Proxy::finish_get(const Key& key, GetResult result) {
  auto it = gets_.find(key);
  if (it == gets_.end()) return;
  (result.success ? m_gets_ok_ : m_gets_failed_)->inc();
  sim_.cancel(it->second->timeout);
  GetCallback callback = std::move(it->second->callback);
  gets_.erase(it);
  callback(result);
}

void Proxy::on_crash() {
  // Proxies lose all in-flight operations; clients see timeouts (their own,
  // §3.5 — the proxy cannot answer after crashing).
  for (auto& [ov, op] : puts_) {
    (void)ov;
    sim_.cancel(op->timeout);
  }
  for (auto& [key, op] : gets_) {
    (void)key;
    sim_.cancel(op->timeout);
  }
  puts_.clear();
  gets_.clear();
}

void Proxy::dispatch(const wire::Envelope& env) {
  using wire::MessageType;
  switch (env.type) {
    case MessageType::kDecideLocsRep:
      on_decide_locs_rep(wire::DecideLocsRep::decode(env.payload));
      break;
    case MessageType::kStoreMetadataRep:
      on_store_metadata_rep(env.from,
                            wire::StoreMetadataRep::decode(env.payload));
      break;
    case MessageType::kStoreFragmentRep:
      on_store_fragment_rep(env.from,
                            wire::StoreFragmentRep::decode(env.payload));
      break;
    case MessageType::kRetrieveTsRep:
      on_retrieve_ts_rep(env.from, wire::RetrieveTsRep::decode(env.payload));
      break;
    case MessageType::kRetrieveFragRep:
      on_retrieve_frag_rep(env.from,
                           wire::RetrieveFragRep::decode(env.payload));
      break;
    default:
      PAHOEHOE_CHECK_MSG(false, "unexpected message type at proxy");
  }
}

}  // namespace pahoehoe::core
