// Fragment Server (paper §2, §3.4, §4).
//
// Persists the convergence work-list (storemeta) and the fragment store
// (storefrag). Runs convergence in periodic rounds; for each non-AMR object
// version a convergence step either (a) completes metadata via a KLS
// decide_locs probe, (b) recovers missing local fragments — plain recovery
// or §4.2 sibling fragment recovery — or (c) verifies AMR against every KLS
// and sibling FS. Once a version is verified AMR it is removed from the
// work-list (the fragment store keeps serving it forever; AMR is stable).
//
// Optimizations (ConvergenceOptions):
//  * FS AMR Indications — tell siblings when AMR is verified.
//  * Unsynchronized rounds — uniform-random round spacing in [30 s, 90 s].
//  * Put AMR Indications — honor proxy indications; defer convergence of
//    versions younger than min_age so puts can finish.
//  * Sibling fragment recovery — recover every sibling's missing fragments
//    from one k-fragment read and push them; duplicate recovery suppressed
//    by the lower-id backoff rule.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/config.h"
#include "core/server.h"
#include "erasure/reed_solomon.h"
#include "storage/stores.h"
#include "wire/messages.h"

namespace pahoehoe::core {

class FragmentServer : public Server {
 public:
  FragmentServer(sim::Simulator& sim, net::Network& net,
                 std::shared_ptr<const ClusterView> view, NodeId id,
                 DataCenterId dc, ConvergenceOptions options);
  ~FragmentServer() override;

  // Persistent stores, read-only, for the experiment oracle & tests.
  const storage::MetaStore& meta_store() const { return store_meta_; }
  const storage::FragStore& frag_store() const { return store_frag_; }

  /// Fault injection for tests: destroy a disk / corrupt a fragment. The
  /// damaged fragments read as ⊥ until convergence repairs them.
  size_t destroy_disk(uint8_t disk);
  bool corrupt_fragment(const ObjectVersionId& ov, int frag_index);
  /// Flip a byte of one uniformly chosen stored fragment (chaos schedules'
  /// silent-corruption fault). Returns false if nothing is stored yet.
  bool corrupt_random_fragment(Rng& rng);
  /// Re-add every version with damaged or missing local fragments to the
  /// convergence work-list (models the elided disk-rebuild scrub). Also
  /// runs periodically when ConvergenceOptions::scrub_interval is set.
  size_t scrub();

  // Counters for tests and experiments.
  uint64_t versions_converged() const { return versions_converged_; }
  uint64_t versions_given_up() const { return versions_given_up_; }
  /// Every version this FS dropped at the give-up horizon, in drop order
  /// (the per-durability-class regression tests check none of them was
  /// durable).
  const std::vector<ObjectVersionId>& given_up_versions() const {
    return given_up_versions_;
  }
  uint64_t recoveries_completed() const { return recoveries_completed_; }
  uint64_t recovery_backoffs() const { return recovery_backoffs_; }
  uint64_t rounds_run() const { return rounds_run_; }
  uint64_t scrubs_run() const { return scrubs_run_; }
  /// Convergence work outstanding (work-list size).
  size_t pending_versions() const { return store_meta_.size(); }

 protected:
  void dispatch(const wire::Envelope& env) override;
  void on_crash() override;
  void on_recover() override;

 private:
  /// Volatile per-version convergence state.
  struct Work {
    SimTime next_attempt = 0;
    int attempts = 0;
    // Verify-step state.
    std::set<NodeId> verify_acks;
    // Recovery-step state (both plain and sibling recovery).
    bool recovering = false;
    bool plain_recovery = false;
    std::map<NodeId, std::vector<int>> sibling_needs;
    std::map<int, Bytes> gathered;   // fragment index -> data
    std::set<int> requested_slots;   // retrieve_frag requests outstanding
    std::set<int> failed_slots;      // sources that answered ⊥ this attempt
    sim::TimerId recovery_timer = 0;   // §4.2 reply-accumulation window
    sim::TimerId recovery_deadline = 0;  // abandon a stalled recovery
    sim::TimerId recovery_retry = 0;   // retransmit outstanding fetches
    // Per-durability-class give-up evidence: distinct fragment slots this
    // FS has seen intact somewhere (its own, gathered during recovery, or
    // certified by a sibling's verified converge reply). Once >= k slots
    // are certified the version is treated as durable-class (sticky until
    // a recovery exhausts its sources, which is direct evidence the
    // cluster lost it).
    std::set<int> certified_slots;
    bool durable_evidence = false;
  };

  // Message handlers.
  void on_store_fragment(NodeId from, const wire::StoreFragmentReq& req);
  void on_sibling_store(NodeId from, const wire::SiblingStoreReq& req);
  void on_retrieve_frag(NodeId from, const wire::RetrieveFragReq& req);
  void on_fs_converge(NodeId from, const wire::FsConvergeReq& req);
  void on_fs_converge_rep(NodeId from, const wire::FsConvergeRep& rep);
  void on_kls_converge_rep(NodeId from, const wire::KlsConvergeRep& rep);
  void on_amr_indication(const wire::AmrIndication& msg);
  void on_decide_locs_rep(const wire::DecideLocsRep& rep);
  void on_kls_locs_notify(const wire::KlsLocsNotify& msg);
  void on_retrieve_frag_rep(NodeId from, const wire::RetrieveFragRep& rep);

  // Convergence machinery.
  void ensure_round_scheduled();
  void start_round();
  void converge_step(const ObjectVersionId& ov, Work& work);
  void begin_verify(const ObjectVersionId& ov, Work& work);
  void begin_plain_recovery(const ObjectVersionId& ov, Work& work);
  void begin_sibling_recovery(const ObjectVersionId& ov, Work& work);
  void recovery_gather(const ObjectVersionId& ov, Work& work);
  void recovery_maybe_finish(const ObjectVersionId& ov, Work& work);
  void arm_recovery_deadline(const ObjectVersionId& ov, Work& work);
  void arm_recovery_retry(const ObjectVersionId& ov, Work& work);
  void clear_recovery_state(Work& work);
  void cancel_recovery(const ObjectVersionId& ov, Work& work);
  void check_amr(const ObjectVersionId& ov, Work& work);
  void mark_amr(const ObjectVersionId& ov);

  /// Merge metadata into both persistent stores; wakes the work entry if the
  /// metadata changed. Creates the work entry if the version is new.
  void merge_meta(const ObjectVersionId& ov, const Metadata& meta,
                  bool create_work);
  /// Make the version eligible at the next round (progress was observed).
  void wake_work(const ObjectVersionId& ov);
  /// verify() from Fig 4: metadata complete and all locally assigned
  /// fragments present and intact.
  bool local_verify(const ObjectVersionId& ov) const;
  /// Locally assigned fragment indices that are missing or corrupt.
  std::vector<int> missing_local_fragments(const ObjectVersionId& ov) const;
  void store_fragment_local(const ObjectVersionId& ov, const Metadata& meta,
                            int frag_index, Bytes data,
                            const Sha256::Digest& digest);
  void bump_backoff(Work& work);
  SimTime version_age(const ObjectVersionId& ov) const;
  /// Per-durability-class give-up (see ConvergenceOptions): certify what we
  /// can from local state, then report whether the version has durable
  /// evidence. `work` may be null (the scrub path, where only AMR history
  /// applies).
  bool durable_class(const ObjectVersionId& ov, Work* work);
  /// Horizon that applies to this version: giveup_age when the per-class
  /// split is off or the version is non-durable-class, giveup_age_durable
  /// otherwise.
  SimTime giveup_horizon(const ObjectVersionId& ov, Work* work);
  /// Certify `slots` as seen-intact and flip durable_evidence at >= k.
  void certify_slots(const ObjectVersionId& ov, Work& work,
                     const std::vector<int>& slots);
  /// A recovery ran out of sources: the cluster demonstrably cannot supply
  /// k fragments right now, so durable evidence (including AMR history) is
  /// revoked and must be re-earned.
  void revoke_durable_evidence(const ObjectVersionId& ov, Work& work);
  const erasure::ReedSolomon& codec(const Policy& policy);
  Work& work_for(const ObjectVersionId& ov);

  ConvergenceOptions options_;
  storage::MetaStore store_meta_;   // persistent: convergence work-list
  storage::FragStore store_frag_;   // persistent: fragments + metadata

  void schedule_scrub();

  std::map<ObjectVersionId, Work> work_;  // volatile
  sim::TimerId round_timer_ = 0;
  SimTime round_timer_when_ = 0;
  sim::TimerId scrub_timer_ = 0;
  uint64_t scrubs_run_ = 0;
  std::map<std::pair<int, int>, std::unique_ptr<erasure::ReedSolomon>>
      codecs_;

  uint64_t versions_converged_ = 0;
  uint64_t versions_given_up_ = 0;
  uint64_t recoveries_completed_ = 0;
  uint64_t recovery_backoffs_ = 0;
  uint64_t rounds_run_ = 0;
  std::vector<ObjectVersionId> given_up_versions_;
  /// Versions this FS verified AMR (or was told reached AMR). Modeled as
  /// persisted alongside the fragment store — the one-bit marker lets scrub
  /// distinguish "damaged AMR version worth repairing forever" from
  /// "given-up version that must not be resurrected" (see DESIGN.md §9).
  std::set<ObjectVersionId> amr_history_;

  // Registry handles (labeled {node}); cached once in the constructor.
  obs::Counter* m_rounds_ = nullptr;
  obs::Counter* m_steps_ = nullptr;
  obs::Counter* m_amr_skips_ = nullptr;
  obs::Counter* m_converged_ = nullptr;
  obs::Counter* m_giveups_ = nullptr;
  obs::Counter* m_backoffs_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
  obs::Counter* m_scrub_repairs_ = nullptr;
  obs::Counter* m_collisions_ = nullptr;
  obs::Counter* m_sibling_recoveries_ = nullptr;
  obs::Histogram* m_converge_attempts_ = nullptr;
};

}  // namespace pahoehoe::core
