#include "core/fs.h"

#include <algorithm>

#include "common/sha256.h"
#include "obs/prof.h"

namespace pahoehoe::core {

FragmentServer::FragmentServer(sim::Simulator& sim, net::Network& net,
                               std::shared_ptr<const ClusterView> view,
                               NodeId id, DataCenterId dc,
                               ConvergenceOptions options)
    : Server(sim, net, std::move(view), id, NodeKind::kFs, dc),
      options_(options) {
  obs::MetricRegistry& metrics = telemetry().metrics;
  const obs::Labels labels = node_label();
  m_rounds_ = &metrics.counter("fs_rounds_total", labels);
  m_steps_ = &metrics.counter("fs_converge_steps_total", labels);
  m_amr_skips_ = &metrics.counter("fs_amr_skips_total", labels);
  m_converged_ = &metrics.counter("fs_converged_total", labels);
  m_giveups_ = &metrics.counter("fs_giveups_total", labels);
  m_backoffs_ = &metrics.counter("fs_recovery_backoffs_total", labels);
  m_recoveries_ = &metrics.counter("fs_recoveries_total", labels);
  m_scrub_repairs_ = &metrics.counter("fs_scrub_repairs_total", labels);
  // §4.2 lower-id stand-downs: two FSs collided on recovering the same
  // version. A dedicated counter (instead of folding into backoffs) gives
  // the chaos coverage signature its rarest protocol state.
  m_collisions_ = &metrics.counter("fs_recovery_collisions_total", labels);
  m_sibling_recoveries_ =
      &metrics.counter("fs_sibling_recoveries_total", labels);
  m_converge_attempts_ = &metrics.histogram("fs_converge_attempts", labels);
  schedule_scrub();
}

FragmentServer::~FragmentServer() = default;

const erasure::ReedSolomon& FragmentServer::codec(const Policy& policy) {
  auto key = std::make_pair<int, int>(policy.k, policy.n);
  auto it = codecs_.find(key);
  if (it == codecs_.end()) {
    it = codecs_
             .emplace(key, std::make_unique<erasure::ReedSolomon>(policy.k,
                                                                  policy.n))
             .first;
  }
  return *it->second;
}

FragmentServer::Work& FragmentServer::work_for(const ObjectVersionId& ov) {
  return work_[ov];
}

SimTime FragmentServer::version_age(const ObjectVersionId& ov) const {
  return std::max<SimTime>(0, sim_.now() - ov.ts.wall_micros);
}

void FragmentServer::certify_slots(const ObjectVersionId& ov, Work& work,
                                   const std::vector<int>& slots) {
  if (work.durable_evidence || options_.giveup_age_durable < 0) return;
  for (int slot : slots) work.certified_slots.insert(slot);
  const Metadata* meta = store_meta_.find(ov);
  if (meta != nullptr &&
      static_cast<int>(work.certified_slots.size()) >= meta->policy.k) {
    work.durable_evidence = true;
    work.certified_slots.clear();
  }
}

bool FragmentServer::durable_class(const ObjectVersionId& ov, Work* work) {
  if (amr_history_.count(ov) > 0) return true;
  if (work == nullptr) return false;
  if (work->durable_evidence) return true;
  // Certify what local state proves right now: our own intact fragments
  // plus anything a recovery attempt has gathered.
  const Metadata* meta = store_meta_.find(ov);
  if (meta == nullptr) return false;
  std::vector<int> intact;
  for (int slot : meta->fragments_for(id())) {
    if (store_frag_.fragment_if_intact(ov, slot) != nullptr) {
      intact.push_back(slot);
    }
  }
  for (const auto& [slot, data] : work->gathered) intact.push_back(slot);
  certify_slots(ov, *work, intact);
  return work->durable_evidence;
}

SimTime FragmentServer::giveup_horizon(const ObjectVersionId& ov,
                                       Work* work) {
  if (options_.giveup_age_durable < 0) return options_.giveup_age;
  return durable_class(ov, work) ? options_.giveup_age_durable
                                 : options_.giveup_age;
}

void FragmentServer::revoke_durable_evidence(const ObjectVersionId& ov,
                                             Work& work) {
  work.certified_slots.clear();
  work.durable_evidence = false;
  amr_history_.erase(ov);
}

void FragmentServer::bump_backoff(Work& work) {
  // Exponential backoff with jitter (§3.5): the longer a version fails to
  // converge, the less often we retry.
  double delay = static_cast<double>(options_.backoff_base);
  for (int i = 0; i < std::min(work.attempts, 40); ++i) {
    delay *= options_.backoff_factor;
    if (delay >= static_cast<double>(options_.backoff_max)) break;
  }
  delay = std::min(delay, static_cast<double>(options_.backoff_max));
  const double jitter = 0.5 + sim_.rng().uniform01();  // [0.5, 1.5)
  work.attempts += 1;
  work.next_attempt = sim_.now() + static_cast<SimTime>(delay * jitter);
}

bool FragmentServer::local_verify(const ObjectVersionId& ov) const {
  const Metadata* meta = store_meta_.find(ov);
  if (meta == nullptr) {
    const storage::FragStore::Entry* entry = store_frag_.find(ov);
    if (entry == nullptr) return false;
    meta = &entry->meta;
  }
  if (!meta->complete()) return false;
  for (int slot : meta->fragments_for(id())) {
    if (store_frag_.fragment_if_intact(ov, slot) == nullptr) return false;
  }
  return true;
}

std::vector<int> FragmentServer::missing_local_fragments(
    const ObjectVersionId& ov) const {
  std::vector<int> missing;
  const Metadata* meta = store_meta_.find(ov);
  if (meta == nullptr) {
    const storage::FragStore::Entry* entry = store_frag_.find(ov);
    if (entry == nullptr) return missing;
    meta = &entry->meta;
  }
  for (int slot : meta->fragments_for(id())) {
    if (store_frag_.fragment_if_intact(ov, slot) == nullptr) {
      missing.push_back(slot);
    }
  }
  return missing;
}

void FragmentServer::merge_meta(const ObjectVersionId& ov,
                                const Metadata& meta, bool create_work) {
  const bool in_meta = store_meta_.contains(ov);
  const bool in_frag = store_frag_.contains(ov);

  if (!in_meta && in_frag) {
    // Fig 4 line 17 requires ov to be absent from *both* stores before the
    // work-list entry is (re)created: a version already verified AMR keeps
    // serving fragments but is never resurrected into convergence.
    store_frag_.upsert(ov, meta);
    return;
  }

  if (!in_meta && !in_frag && !create_work) return;

  const bool changed = store_meta_.merge(ov, meta);
  store_frag_.upsert(ov, meta);
  auto [it, inserted] = work_.try_emplace(ov);
  if (inserted || !in_meta) {
    it->second.next_attempt = 0;  // new work: eligible at the next round
  } else if (changed) {
    // Genuinely new information (fresh locations) accelerates the next
    // attempt — post-heal catch-up. Unchanged metadata must NOT reset the
    // exponential backoff, or sibling converge traffic would keep every
    // FS retrying at full cadence forever.
    it->second.next_attempt = std::min(it->second.next_attempt, sim_.now());
  }
  telemetry().spans.report_work(ov, id(), it->second.next_attempt,
                                it->second.recovering);
  ensure_round_scheduled();
}

void FragmentServer::wake_work(const ObjectVersionId& ov) {
  auto it = work_.find(ov);
  if (it == work_.end()) return;
  it->second.next_attempt = std::min(it->second.next_attempt, sim_.now());
  telemetry().spans.report_work(ov, id(), it->second.next_attempt,
                                it->second.recovering);
  ensure_round_scheduled();
}

void FragmentServer::store_fragment_local(const ObjectVersionId& ov,
                                          const Metadata& meta,
                                          int frag_index, Bytes data,
                                          const Sha256::Digest& digest) {
  uint8_t disk = 0;
  const Metadata* best = store_meta_.find(ov);
  if (best == nullptr) best = &meta;
  if (frag_index < static_cast<int>(best->locs.size()) &&
      best->locs[static_cast<size_t>(frag_index)].has_value()) {
    disk = best->locs[static_cast<size_t>(frag_index)]->disk;
  }
  store_frag_.put_fragment(ov, meta, frag_index, std::move(data), digest,
                           disk);
}

// --- round machinery --------------------------------------------------------

void FragmentServer::ensure_round_scheduled() {
  if (crashed() || store_meta_.size() == 0) return;
  SimTime when;
  if (options_.unsync_rounds) {
    // §4.1: uniformly random spacing desynchronizes sibling FSs.
    when = sim_.now() +
           sim_.rng().uniform_int(options_.round_min, options_.round_max);
  } else {
    // Synchronized schedule: every FS rounds at multiples of the period.
    const SimTime period = options_.sync_round_period;
    when = (sim_.now() / period + 1) * period;
  }
  // If every pending version is waiting on backoff or min-age, skip the
  // no-op rounds and wake when the earliest version becomes eligible.
  SimTime earliest = std::numeric_limits<SimTime>::max();
  for (const ObjectVersionId& ov : store_meta_.all_versions()) {
    SimTime eligible = ov.ts.wall_micros + options_.effective_min_age();
    auto it = work_.find(ov);
    if (it != work_.end()) {
      if (it->second.recovering) continue;  // will re-arm when it resolves
      eligible = std::max(eligible, it->second.next_attempt);
    }
    earliest = std::min(earliest, eligible);
  }
  if (earliest == std::numeric_limits<SimTime>::max()) {
    // Everything is mid-recovery; those paths re-arm the timer themselves.
    return;
  }
  when = std::max(when, earliest);
  if (round_timer_ != 0) {
    // Keep the earlier of the existing and newly computed round times, so
    // fresh work pulls a far-skipped round back in without letting message
    // arrivals push a due round out.
    if (when >= round_timer_when_) return;
    sim_.cancel(round_timer_);
  }
  round_timer_when_ = when;
  round_timer_ = sim_.schedule_at(when, [this] { start_round(); });
}

void FragmentServer::start_round() {
  obs::ProfScope prof("fs_round");
  round_timer_ = 0;
  ++rounds_run_;
  m_rounds_->inc();
  // Fig 4: a convergence step for every object version not yet verified AMR.
  for (const ObjectVersionId& ov : store_meta_.all_versions()) {
    Work& work = work_for(ov);
    if (work.recovering) continue;  // a recovery for this version is active
    if (sim_.now() < work.next_attempt) continue;
    if (version_age(ov) < options_.effective_min_age()) continue;
    if (version_age(ov) > giveup_horizon(ov, &work)) {
      // §3.5: stop convergence work for hopeless versions after a long
      // horizon (fragments are kept; only the work-list entry goes). With
      // per-class horizons the durable class got the (longer) durable
      // horizon above, so anything dropped here is non-durable-class.
      const bool durable = durable_class(ov, &work);
      store_meta_.erase(ov);
      work_.erase(ov);
      ++versions_given_up_;
      m_giveups_->inc();
      given_up_versions_.push_back(ov);
      telemetry().spans.interval(ov, "give_up", id(), sim_.now(), sim_.now(),
                                 durable ? "class=durable"
                                         : "class=non-durable");
      telemetry().spans.report_work_done(ov, id());
      continue;
    }
    converge_step(ov, work);
  }
  ensure_round_scheduled();
}

void FragmentServer::converge_step(const ObjectVersionId& ov, Work& work) {
  const Metadata* meta = store_meta_.find(ov);
  PAHOEHOE_CHECK(meta != nullptr);
  m_steps_->inc();
  bump_backoff(work);

  // One span per convergence round; the messages this step sends become
  // its children. The backoff_wait interval records the wait this step
  // just scheduled for the *next* attempt; report_work feeds the
  // critical-path attribution clock.
  obs::SpanTracer& spans = telemetry().spans;
  obs::SpanTracer::Scope span_scope;
  if (spans.enabled()) {
    span_scope =
        spans.version_scope(ov, "converge_round", id(),
                            "attempt " + std::to_string(work.attempts));
    spans.interval(ov, "backoff_wait", id(), sim_.now(), work.next_attempt);
    spans.report_work(ov, id(), work.next_attempt, work.recovering);
  }

  if (!meta->complete()) {
    // Fig 4 line 5: incomplete metadata — act like a proxy doing a put, but
    // probe one KLS per data center in a fixed rotation (§3.5) instead of
    // broadcasting.
    for (int d = 0; d < view_->num_dcs; ++d) {
      const auto& klss = view_->kls_in_dc(DataCenterId{static_cast<uint8_t>(d)});
      if (klss.empty()) continue;
      const size_t probe =
          static_cast<size_t>(work.attempts - 1) % klss.size();
      send(klss[probe], wire::DecideLocsReq{ov, meta->policy,
                                            meta->value_size,
                                            /*from_fs=*/true});
    }
    return;
  }

  if (!missing_local_fragments(ov).empty()) {
    // Fig 4 line 8: recover missing local fragments.
    if (options_.sibling_recovery) {
      begin_sibling_recovery(ov, work);
    } else {
      begin_plain_recovery(ov, work);
    }
    return;
  }

  begin_verify(ov, work);
}

void FragmentServer::begin_verify(const ObjectVersionId& ov, Work& work) {
  // Fig 4 lines 10–11: ask every KLS and sibling FS to verify. Positive
  // acks accumulate across rounds — verification is monotone (locations
  // and fragments are never removed), and requiring a full ack set within
  // one round would make convergence needlessly fragile under heavy loss.
  const Metadata& meta = *store_meta_.find(ov);
  for (NodeId kls : view_->all_kls) {
    send(kls, wire::KlsConvergeReq{ov, meta});
  }
  for (NodeId fs : meta.sibling_fs()) {
    if (fs == id()) continue;  // an FS does not message itself (§4)
    send(fs, wire::FsConvergeReq{ov, meta, /*intends_recovery=*/false});
  }
  check_amr(ov, work);  // degenerate topologies may need no acks
}

void FragmentServer::begin_plain_recovery(const ObjectVersionId& ov,
                                          Work& work) {
  // recover_fragment (Fig 4 line 8): a get restricted to this object
  // version — request every other decided slot and decode from the first k.
  const Metadata& meta = *store_meta_.find(ov);
  work.recovering = true;
  work.plain_recovery = true;
  telemetry().spans.report_work(ov, id(), work.next_attempt, true, "plain");
  work.gathered.clear();
  work.requested_slots.clear();
  work.failed_slots.clear();
  work.sibling_needs.clear();
  arm_recovery_deadline(ov, work);
  arm_recovery_retry(ov, work);
  for (size_t slot = 0; slot < meta.locs.size(); ++slot) {
    if (!meta.locs[slot].has_value()) continue;
    if (meta.locs[slot]->fs == id()) {
      if (const storage::StoredFragment* frag =
              store_frag_.fragment_if_intact(ov, static_cast<int>(slot));
          frag != nullptr) {
        work.gathered.emplace(static_cast<int>(slot), frag->data);
      }
      continue;
    }
    send(meta.locs[slot]->fs,
         wire::RetrieveFragReq{ov, static_cast<uint16_t>(slot)});
    work.requested_slots.insert(static_cast<int>(slot));
  }
  recovery_maybe_finish(ov, work);  // local fragments may already suffice
}

void FragmentServer::begin_sibling_recovery(const ObjectVersionId& ov,
                                            Work& work) {
  // §4.2: announce recovery intent; siblings reply with the fragments they
  // need so one FS can regenerate everything from a single k-fragment read.
  const Metadata& meta = *store_meta_.find(ov);
  work.recovering = true;
  work.plain_recovery = false;
  m_sibling_recoveries_->inc();
  telemetry().spans.report_work(ov, id(), work.next_attempt, true, "sibling");
  work.gathered.clear();
  work.requested_slots.clear();
  work.failed_slots.clear();
  work.sibling_needs.clear();
  arm_recovery_deadline(ov, work);
  arm_recovery_retry(ov, work);
  for (size_t slot = 0; slot < meta.locs.size(); ++slot) {
    if (!meta.locs[slot].has_value() || meta.locs[slot]->fs != id()) continue;
    if (const storage::StoredFragment* frag =
            store_frag_.fragment_if_intact(ov, static_cast<int>(slot));
        frag != nullptr) {
      work.gathered.emplace(static_cast<int>(slot), frag->data);
    }
  }
  for (NodeId fs : meta.sibling_fs()) {
    if (fs == id()) continue;
    send(fs, wire::FsConvergeReq{ov, meta, /*intends_recovery=*/true});
  }
  work.recovery_timer = sim_.schedule_after(
      options_.recovery_wait, [this, ov] {
        auto it = work_.find(ov);
        if (it == work_.end() || !it->second.recovering) return;
        it->second.recovery_timer = 0;
        const obs::SpanTracer::Scope span_scope =
            telemetry().spans.version_scope(ov, "recovery_gather", id());
        recovery_gather(ov, it->second);
      });
}

void FragmentServer::recovery_gather(const ObjectVersionId& ov, Work& work) {
  // Fetch enough fragments to reach k distinct, counting requests already
  // outstanding (re-entry happens on every ⊥ reply; without the
  // accounting, requests would multiply). Local-data-center sources are
  // preferred to save WAN capacity.
  const Metadata* meta = store_meta_.find(ov);
  if (meta == nullptr) {  // converged or gave up meanwhile
    cancel_recovery(ov, work);
    return;
  }
  const int k = meta->policy.k;
  const int have = static_cast<int>(work.gathered.size());
  if (have >= k) {
    recovery_maybe_finish(ov, work);
    return;
  }
  const int outstanding = static_cast<int>(work.requested_slots.size());
  const int need = k - have - outstanding;
  if (need <= 0) return;  // enough fetches in flight; wait for replies

  // Fresh candidates: decided slots held by someone else, not yet gathered,
  // requested, failed, or reported missing by their owner.
  std::vector<int> candidates;
  for (size_t slot = 0; slot < meta->locs.size(); ++slot) {
    const int s = static_cast<int>(slot);
    if (!meta->locs[slot].has_value()) continue;
    if (meta->locs[slot]->fs == id()) continue;
    if (work.gathered.count(s) > 0) continue;
    if (work.requested_slots.count(s) > 0) continue;
    if (work.failed_slots.count(s) > 0) continue;
    bool reported_missing = false;
    for (const auto& [fs, needs] : work.sibling_needs) {
      (void)fs;
      if (std::find(needs.begin(), needs.end(), s) != needs.end()) {
        reported_missing = true;
        break;
      }
    }
    if (!reported_missing) candidates.push_back(s);
  }
  std::stable_sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    const bool a_local = view_->dc_of(meta->locs[static_cast<size_t>(a)]->fs) == dc();
    const bool b_local = view_->dc_of(meta->locs[static_cast<size_t>(b)]->fs) == dc();
    return a_local > b_local;
  });

  if (static_cast<int>(candidates.size()) < need) {
    if (outstanding == 0) {
      // Nothing in flight and not enough reachable sources; retry a later
      // round under backoff. Every responsive source answered ⊥ or reported
      // the slot missing, so this is direct evidence the cluster cannot
      // supply k fragments right now — durable evidence must be re-earned.
      revoke_durable_evidence(ov, work);
      cancel_recovery(ov, work);
    }
    // Otherwise wait: in-flight replies may still push us over k.
    return;
  }
  for (int i = 0; i < need; ++i) {
    const int slot = candidates[static_cast<size_t>(i)];
    send(meta->locs[static_cast<size_t>(slot)]->fs,
         wire::RetrieveFragReq{ov, static_cast<uint16_t>(slot)});
    work.requested_slots.insert(slot);
  }
}

void FragmentServer::recovery_maybe_finish(const ObjectVersionId& ov,
                                           Work& work) {
  const Metadata* meta = store_meta_.find(ov);
  if (meta == nullptr) {
    cancel_recovery(ov, work);
    return;
  }
  const int k = meta->policy.k;
  if (static_cast<int>(work.gathered.size()) < k) return;
  obs::ProfScope prof("fs_recovery");

  // Regenerate my missing fragments plus (sibling recovery) everything the
  // siblings reported missing.
  std::vector<int> targets = missing_local_fragments(ov);
  if (!work.plain_recovery) {
    for (const auto& [fs, needs] : work.sibling_needs) {
      (void)fs;
      for (int slot : needs) {
        if (std::find(targets.begin(), targets.end(), slot) ==
            targets.end()) {
          targets.push_back(slot);
        }
      }
    }
  }
  std::sort(targets.begin(), targets.end());

  std::vector<erasure::IndexedFragment> available;
  available.reserve(work.gathered.size());
  for (const auto& [slot, data] : work.gathered) {
    available.push_back(erasure::IndexedFragment{slot, &data});
  }
  // Size the regeneration by the gathered fragments themselves: a server
  // that learned of this version only through convergence may not know the
  // value size yet, and fragment repair does not need it.
  const size_t frag_size = work.gathered.begin()->second.size();
  const std::vector<Bytes> regenerated =
      codec(meta->policy).regenerate_sized(available, targets, frag_size);

  const Metadata meta_copy = *meta;  // stores below may invalidate pointers
  for (size_t i = 0; i < targets.size(); ++i) {
    const int slot = targets[i];
    const Sha256::Digest digest = Sha256::hash(regenerated[i]);
    const auto& loc = meta_copy.locs[static_cast<size_t>(slot)];
    PAHOEHOE_CHECK(loc.has_value());
    if (loc->fs == id()) {
      store_fragment_local(ov, meta_copy, slot, regenerated[i], digest);
    } else {
      // §4.2: push the recovered fragment to its sibling.
      wire::SiblingStoreReq req;
      req.ov = ov;
      req.meta = meta_copy;
      req.frag_index = static_cast<uint16_t>(slot);
      req.fragment = regenerated[i];
      req.digest = digest;
      send(loc->fs, req);
    }
  }
  ++recoveries_completed_;
  m_recoveries_->inc();
  clear_recovery_state(work);
  work.next_attempt = sim_.now();  // verify at the next round
  if (telemetry().spans.enabled()) {
    telemetry().spans.interval(
        ov, "recovery_complete", id(), sim_.now(), sim_.now(),
        "regenerated=" + std::to_string(targets.size()));
    telemetry().spans.report_work(ov, id(), work.next_attempt, false);
  }
  ensure_round_scheduled();
}

void FragmentServer::arm_recovery_retry(const ObjectVersionId& ov,
                                        Work& work) {
  // Periodically retransmit whatever fetches are still outstanding and top
  // up from fresh candidates; one lost message must not sink the attempt.
  work.recovery_retry = sim_.schedule_after(
      options_.recovery_retry_interval, [this, ov] {
        auto it = work_.find(ov);
        if (it == work_.end() || !it->second.recovering) return;
        Work& w = it->second;
        w.recovery_retry = 0;
        const obs::SpanTracer::Scope span_scope =
            telemetry().spans.version_scope(ov, "recovery_retry", id());
        const Metadata* meta = store_meta_.find(ov);
        if (meta != nullptr) {
          for (int slot : w.requested_slots) {
            const auto& loc = meta->locs[static_cast<size_t>(slot)];
            if (!loc.has_value()) continue;
            send(loc->fs,
                 wire::RetrieveFragReq{ov, static_cast<uint16_t>(slot)});
          }
        }
        if (!w.plain_recovery) recovery_gather(ov, w);
        if (w.recovering && w.recovery_retry == 0) arm_recovery_retry(ov, w);
      });
}

void FragmentServer::arm_recovery_deadline(const ObjectVersionId& ov,
                                           Work& work) {
  work.recovery_deadline = sim_.schedule_after(
      options_.recovery_wait + options_.recovery_timeout, [this, ov] {
        auto it = work_.find(ov);
        if (it == work_.end() || !it->second.recovering) return;
        it->second.recovery_deadline = 0;
        // Sources are unreachable or replies were lost; retry with backoff.
        cancel_recovery(ov, it->second);
      });
}

void FragmentServer::clear_recovery_state(Work& work) {
  work.recovering = false;
  work.plain_recovery = false;
  work.gathered.clear();
  work.requested_slots.clear();
  work.failed_slots.clear();
  work.sibling_needs.clear();
  if (work.recovery_timer != 0) {
    sim_.cancel(work.recovery_timer);
    work.recovery_timer = 0;
  }
  if (work.recovery_deadline != 0) {
    sim_.cancel(work.recovery_deadline);
    work.recovery_deadline = 0;
  }
  if (work.recovery_retry != 0) {
    sim_.cancel(work.recovery_retry);
    work.recovery_retry = 0;
  }
}

void FragmentServer::cancel_recovery(const ObjectVersionId& ov, Work& work) {
  if (!work.recovering) return;
  clear_recovery_state(work);
  ++recovery_backoffs_;
  m_backoffs_->inc();
  if (telemetry().spans.enabled()) {
    telemetry().spans.interval(ov, "recovery_canceled", id(), sim_.now(),
                               sim_.now());
    telemetry().spans.report_work(ov, id(), work.next_attempt, false);
  }
  ensure_round_scheduled();
}

void FragmentServer::check_amr(const ObjectVersionId& ov, Work& work) {
  // is_amr (Fig 4 line 25): this FS verifies locally and every KLS and
  // sibling FS replied "verified".
  if (!local_verify(ov)) return;
  const Metadata* meta = store_meta_.find(ov);
  if (meta == nullptr || !meta->complete()) return;
  for (NodeId kls : view_->all_kls) {
    if (work.verify_acks.count(kls) == 0) return;
  }
  for (NodeId fs : meta->sibling_fs()) {
    if (fs == id()) continue;
    if (work.verify_acks.count(fs) == 0) return;
  }
  mark_amr(ov);
}

void FragmentServer::mark_amr(const ObjectVersionId& ov) {
  const Metadata meta = *store_meta_.find(ov);
  auto wit = work_.find(ov);
  if (wit != work_.end()) {
    clear_recovery_state(wit->second);
    m_converge_attempts_->observe(wit->second.attempts);
  }
  work_.erase(ov);
  store_meta_.erase(ov);
  ++versions_converged_;
  m_converged_->inc();
  if (options_.giveup_age_durable >= 0) amr_history_.insert(ov);
  telemetry().amr.on_amr_confirmed(ov, sim_.now());
  telemetry().spans.on_amr_confirmed(ov, id());
  telemetry().spans.report_work_done(ov, id());
  if (options_.fs_amr_indication) {
    // §4.1: tell the siblings so they skip their own convergence steps.
    for (NodeId fs : meta.sibling_fs()) {
      if (fs == id()) continue;
      send(fs, wire::AmrIndication{ov});
    }
  }
}

// --- message handlers --------------------------------------------------------

void FragmentServer::on_store_fragment(NodeId from,
                                       const wire::StoreFragmentReq& req) {
  if (Sha256::hash(req.fragment) != req.digest) {
    send(from, wire::StoreFragmentRep{req.ov, req.frag_index,
                                      wire::Status::kFailure});
    return;
  }
  merge_meta(req.ov, req.meta, /*create_work=*/true);
  store_fragment_local(req.ov, req.meta, req.frag_index, req.fragment,
                       req.digest);
  wake_work(req.ov);  // a fragment arriving is progress worth acting on
  send(from,
       wire::StoreFragmentRep{req.ov, req.frag_index, wire::Status::kSuccess});
}

void FragmentServer::on_sibling_store(NodeId from,
                                      const wire::SiblingStoreReq& req) {
  if (Sha256::hash(req.fragment) != req.digest) {
    send(from, wire::SiblingStoreRep{req.ov, req.frag_index,
                                     wire::Status::kFailure});
    return;
  }
  merge_meta(req.ov, req.meta, /*create_work=*/true);
  store_fragment_local(req.ov, req.meta, req.frag_index, req.fragment,
                       req.digest);
  wake_work(req.ov);
  send(from,
       wire::SiblingStoreRep{req.ov, req.frag_index, wire::Status::kSuccess});
}

void FragmentServer::on_retrieve_frag(NodeId from,
                                      const wire::RetrieveFragReq& req) {
  // Fig 3 (fs): reply with the fragment or ⊥. Corrupt fragments read as ⊥
  // (hash verification on the read path).
  wire::RetrieveFragRep rep;
  rep.ov = req.ov;
  rep.frag_index = req.frag_index;
  if (const storage::StoredFragment* frag =
          store_frag_.fragment_if_intact(req.ov, req.frag_index);
      frag != nullptr) {
    rep.found = true;
    rep.fragment = frag->data;
  }
  send(from, rep);
}

void FragmentServer::on_fs_converge(NodeId from,
                                    const wire::FsConvergeReq& req) {
  // Fig 4 lines 16–22.
  merge_meta(req.ov, req.meta, /*create_work=*/true);

  // §4.2 lower-id backoff: if we are also attempting sibling recovery and
  // the requester has the higher unique server id, we stand down.
  auto wit = work_.find(req.ov);
  if (req.intends_recovery && wit != work_.end() &&
      wit->second.recovering && from.value > id().value) {
    m_collisions_->inc();
    cancel_recovery(req.ov, wit->second);
    bump_backoff(wit->second);
    telemetry().spans.report_work(req.ov, id(), wit->second.next_attempt,
                                  false);
  }

  wire::FsConvergeRep rep;
  rep.ov = req.ov;
  rep.verified = local_verify(req.ov);
  if (req.intends_recovery) {
    for (int slot : missing_local_fragments(req.ov)) {
      rep.needed_fragments.push_back(static_cast<uint16_t>(slot));
    }
  }
  wit = work_.find(req.ov);
  rep.also_recovering = wit != work_.end() && wit->second.recovering;
  send(from, rep);
}

void FragmentServer::on_fs_converge_rep(NodeId from,
                                        const wire::FsConvergeRep& rep) {
  auto it = work_.find(rep.ov);
  if (it == work_.end()) return;
  Work& work = it->second;

  if (work.recovering && !work.plain_recovery) {
    if (!rep.needed_fragments.empty()) {
      std::vector<int> needs(rep.needed_fragments.begin(),
                             rep.needed_fragments.end());
      work.sibling_needs[from] = std::move(needs);
    }
    // Reply-path backoff mirror of the §4.2 rule.
    if (rep.also_recovering && from.value > id().value) {
      m_collisions_->inc();
      cancel_recovery(rep.ov, work);
      bump_backoff(work);
      telemetry().spans.report_work(rep.ov, id(), work.next_attempt, false);
      return;
    }
  }
  if (rep.verified) {
    work.verify_acks.insert(from);
    // A verified sibling proves its assigned fragments are intact; that is
    // durable-class evidence this FS can certify without any extra traffic.
    if (const Metadata* meta = store_meta_.find(rep.ov); meta != nullptr) {
      certify_slots(rep.ov, work, meta->fragments_for(from));
    }
    check_amr(rep.ov, work);
  }
}

void FragmentServer::on_kls_converge_rep(NodeId from,
                                         const wire::KlsConvergeRep& rep) {
  auto it = work_.find(rep.ov);
  if (it == work_.end()) return;
  if (rep.verified) {
    it->second.verify_acks.insert(from);
    check_amr(rep.ov, it->second);
  }
}

void FragmentServer::on_amr_indication(const wire::AmrIndication& msg) {
  // §4.1: the version is AMR; drop it from the work-list (fragments stay).
  // Count as a skip only when the indication actually removed pending
  // convergence work — the rounds-saved quantity Fig 5 prices in.
  if (work_.count(msg.ov) > 0 || store_meta_.contains(msg.ov)) {
    m_amr_skips_->inc();
    // Chains under the AmrIndication message span: the skipped rounds the
    // §4.1 optimization buys are visible in the version's tree.
    telemetry().spans.interval(msg.ov, "amr_skip", id(), sim_.now(),
                               sim_.now());
  }
  auto wit = work_.find(msg.ov);
  if (wit != work_.end()) {
    clear_recovery_state(wit->second);
    work_.erase(wit);
  }
  store_meta_.erase(msg.ov);
  if (options_.giveup_age_durable >= 0) amr_history_.insert(msg.ov);
  telemetry().spans.report_work_done(msg.ov, id());
}

void FragmentServer::on_decide_locs_rep(const wire::DecideLocsRep& rep) {
  // Fig 4 lines 12–15: merge useful locations from our own probe.
  if (!store_meta_.contains(rep.ov)) return;
  merge_meta(rep.ov, rep.meta, /*create_work=*/false);
}

void FragmentServer::on_kls_locs_notify(const wire::KlsLocsNotify& msg) {
  // §3.5: a KLS decided locations on behalf of a sibling FS; treat like a
  // converge announcement (we may be hosting fragments we do not have yet).
  merge_meta(msg.ov, msg.meta, /*create_work=*/true);
}

void FragmentServer::on_retrieve_frag_rep(NodeId /*from*/,
                                          const wire::RetrieveFragRep& rep) {
  auto it = work_.find(rep.ov);
  if (it == work_.end() || !it->second.recovering) return;
  Work& work = it->second;
  if (work.requested_slots.count(rep.frag_index) == 0) return;
  work.requested_slots.erase(rep.frag_index);
  if (rep.found) {
    work.gathered.emplace(static_cast<int>(rep.frag_index), rep.fragment);
    recovery_maybe_finish(rep.ov, work);
  } else {
    work.failed_slots.insert(rep.frag_index);
    if (!work.plain_recovery) {
      // A source we counted on lacks its fragment; try further candidates.
      recovery_gather(rep.ov, work);
    }
  }
  // Plain recovery requested every decided slot already; if too many ⊥
  // replies come back the attempt starves and the next round retries it.
  // Detect exhaustion: no outstanding requests and still short of k.
  auto wit = work_.find(rep.ov);
  if (wit != work_.end() && wit->second.recovering &&
      wit->second.requested_slots.empty()) {
    const Metadata* meta = store_meta_.find(rep.ov);
    if (meta == nullptr ||
        static_cast<int>(wit->second.gathered.size()) < meta->policy.k) {
      // Every requested source replied and we are still short of k: the
      // reachable cluster demonstrably lacks the fragments (crashed sources
      // take the deadline path instead and keep the evidence).
      if (meta != nullptr) revoke_durable_evidence(rep.ov, wit->second);
      cancel_recovery(rep.ov, wit->second);
    }
  }
}

// --- fault injection & lifecycle ---------------------------------------------

size_t FragmentServer::destroy_disk(uint8_t disk) {
  return store_frag_.destroy_disk(disk);
}

bool FragmentServer::corrupt_fragment(const ObjectVersionId& ov,
                                      int frag_index) {
  return store_frag_.corrupt_fragment(ov, frag_index);
}

bool FragmentServer::corrupt_random_fragment(Rng& rng) {
  std::vector<std::pair<ObjectVersionId, int>> stored;
  for (const ObjectVersionId& ov : store_frag_.all_versions()) {
    const storage::FragStore::Entry* entry = store_frag_.find(ov);
    for (const auto& [index, frag] : entry->fragments) {
      if (!frag.data.empty()) stored.emplace_back(ov, index);
    }
  }
  if (stored.empty()) return false;
  const auto& [ov, index] = stored[static_cast<size_t>(
      rng.uniform_int(0, static_cast<int64_t>(stored.size()) - 1))];
  return store_frag_.corrupt_fragment(ov, index);
}

void FragmentServer::schedule_scrub() {
  if (options_.scrub_interval <= 0 || crashed()) return;
  // Jittered so sibling scrubs do not synchronize.
  const SimTime jitter =
      sim_.rng().uniform_int(0, options_.scrub_interval / 10 + 1);
  scrub_timer_ =
      sim_.schedule_after(options_.scrub_interval + jitter, [this] {
        scrub_timer_ = 0;
        scrub();
        ++scrubs_run_;
        schedule_scrub();
      });
}

size_t FragmentServer::scrub() {
  obs::ProfScope prof("fs_scrub");
  size_t readded = 0;
  for (const ObjectVersionId& ov : store_frag_.all_versions()) {
    if (store_meta_.contains(ov)) continue;
    // Honor the give-up horizon (§3.5): resurrecting a version convergence
    // already gave up on would livelock scrub against give-up. Past the
    // horizon, damaged versions are left to the (elided) disk rebuild.
    // With per-class horizons, versions in the AMR history get the durable
    // horizon, so scrub repairs arbitrarily old AMR-eligible versions.
    if (version_age(ov) > giveup_horizon(ov, nullptr)) continue;
    const storage::FragStore::Entry* entry = store_frag_.find(ov);
    bool damaged = false;
    for (int slot : entry->meta.fragments_for(id())) {
      if (store_frag_.fragment_if_intact(ov, slot) == nullptr) {
        damaged = true;
        break;
      }
    }
    if (!damaged) continue;
    store_meta_.merge(ov, entry->meta);
    work_.try_emplace(ov);
    telemetry().spans.report_work(ov, id(), 0, false);
    // The class note mirrors give_up's: coverage classifies a re-add as
    // "past the give-up window" against the class's own horizon, so a
    // durable-class repair of an arbitrarily old AMR version (the whole
    // point of giveup_age_durable) is not flagged as an anomaly.
    telemetry().spans.interval(ov, "scrub_readd", id(), sim_.now(),
                               sim_.now(),
                               durable_class(ov, nullptr)
                                   ? "class=durable"
                                   : "class=non-durable");
    ++readded;
  }
  if (readded > 0) {
    m_scrub_repairs_->inc(readded);
    ensure_round_scheduled();
  }
  return readded;
}

void FragmentServer::on_crash() {
  // Volatile state is lost; persistent stores survive (§3.1).
  if (round_timer_ != 0) {
    sim_.cancel(round_timer_);
    round_timer_ = 0;
  }
  if (scrub_timer_ != 0) {
    sim_.cancel(scrub_timer_);
    scrub_timer_ = 0;
  }
  for (auto& [ov, work] : work_) {
    clear_recovery_state(work);
    telemetry().spans.report_work_done(ov, id());
  }
  work_.clear();
}

void FragmentServer::on_recover() {
  // Rebuild the volatile work map from the persistent work-list.
  for (const ObjectVersionId& ov : store_meta_.all_versions()) {
    work_.try_emplace(ov);
    telemetry().spans.report_work(ov, id(), 0, false);
  }
  ensure_round_scheduled();
  schedule_scrub();
}

void FragmentServer::dispatch(const wire::Envelope& env) {
  using wire::MessageType;
  switch (env.type) {
    case MessageType::kStoreFragmentReq:
      on_store_fragment(env.from, wire::StoreFragmentReq::decode(env.payload));
      break;
    case MessageType::kSiblingStoreReq:
      on_sibling_store(env.from, wire::SiblingStoreReq::decode(env.payload));
      break;
    case MessageType::kRetrieveFragReq:
      on_retrieve_frag(env.from, wire::RetrieveFragReq::decode(env.payload));
      break;
    case MessageType::kFsConvergeReq:
      on_fs_converge(env.from, wire::FsConvergeReq::decode(env.payload));
      break;
    case MessageType::kFsConvergeRep:
      on_fs_converge_rep(env.from, wire::FsConvergeRep::decode(env.payload));
      break;
    case MessageType::kKlsConvergeRep:
      on_kls_converge_rep(env.from, wire::KlsConvergeRep::decode(env.payload));
      break;
    case MessageType::kAmrIndication:
      on_amr_indication(wire::AmrIndication::decode(env.payload));
      break;
    case MessageType::kDecideLocsRep:
      on_decide_locs_rep(wire::DecideLocsRep::decode(env.payload));
      break;
    case MessageType::kKlsLocsNotify:
      on_kls_locs_notify(wire::KlsLocsNotify::decode(env.payload));
      break;
    case MessageType::kRetrieveFragRep:
      on_retrieve_frag_rep(env.from,
                           wire::RetrieveFragRep::decode(env.payload));
      break;
    case MessageType::kSiblingStoreRep:
      break;  // recovered-fragment push acks carry no actionable state
    case MessageType::kStoreFragmentRep:
      break;  // possible if a proxy role ever shares an id; ignore
    default:
      PAHOEHOE_CHECK_MSG(false, "unexpected message type at FS");
  }
}

}  // namespace pahoehoe::core
