#include "core/config.h"

namespace pahoehoe::core {

ConvergenceOptions ConvergenceOptions::naive() { return {}; }

ConvergenceOptions ConvergenceOptions::fs_amr_sync() {
  ConvergenceOptions opts;
  opts.fs_amr_indication = true;
  opts.unsync_rounds = false;
  return opts;
}

ConvergenceOptions ConvergenceOptions::fs_amr_unsync() {
  ConvergenceOptions opts;
  opts.fs_amr_indication = true;
  opts.unsync_rounds = true;
  return opts;
}

ConvergenceOptions ConvergenceOptions::put_amr() {
  ConvergenceOptions opts;
  opts.put_amr_indication = true;
  opts.unsync_rounds = true;
  return opts;
}

ConvergenceOptions ConvergenceOptions::sibling_only() {
  ConvergenceOptions opts;
  opts.sibling_recovery = true;
  opts.unsync_rounds = true;
  return opts;
}

ConvergenceOptions ConvergenceOptions::all_opts() {
  ConvergenceOptions opts;
  opts.fs_amr_indication = true;
  opts.unsync_rounds = true;
  opts.put_amr_indication = true;
  opts.sibling_recovery = true;
  return opts;
}

std::string describe(const ConvergenceOptions& opts) {
  std::string out;
  auto append = [&out](bool enabled, const char* name) {
    if (!enabled) return;
    if (!out.empty()) out += "+";
    out += name;
  };
  append(opts.fs_amr_indication, "FSAMR");
  append(opts.put_amr_indication, "PutAMR");
  append(opts.sibling_recovery, "Sibling");
  append(opts.unsync_rounds, "Unsync");
  append(opts.giveup_age_durable >= 0, "ClassGiveup");
  if (out.empty()) out = "Naive";
  return out;
}

}  // namespace pahoehoe::core
