#include "core/placement.h"

#include <algorithm>
#include <functional>

#include "common/check.h"

namespace pahoehoe::core {

std::pair<int, int> dc_slot_range(const Policy& policy, int num_dcs,
                                  DataCenterId dc) {
  PAHOEHOE_CHECK(num_dcs >= 1 && dc.valid() && dc.value < num_dcs);
  const int n = policy.n;
  const int base = n / num_dcs;
  const int extra = n % num_dcs;
  int begin = 0;
  for (int d = 0; d < dc.value; ++d) {
    begin += base + (d < extra ? 1 : 0);
  }
  const int share = base + (dc.value < extra ? 1 : 0);
  return {begin, begin + share};
}

DataCenterId dc_of_slot(const Policy& policy, int num_dcs, int slot) {
  PAHOEHOE_CHECK(slot >= 0 && slot < policy.n);
  for (int d = 0; d < num_dcs; ++d) {
    auto [begin, end] = dc_slot_range(policy, num_dcs, DataCenterId{
                                                           static_cast<uint8_t>(d)});
    if (slot >= begin && slot < end) return DataCenterId{static_cast<uint8_t>(d)};
  }
  PAHOEHOE_CHECK_MSG(false, "slot outside all DC ranges");
  return DataCenterId{};
}

std::vector<std::optional<Location>> suggest_locations(
    const Policy& policy, const ObjectVersionId& ov, DataCenterId dc,
    const std::vector<NodeId>& fs_in_dc, int disks_per_fs, int num_dcs) {
  PAHOEHOE_CHECK(!fs_in_dc.empty() && disks_per_fs >= 1);
  std::vector<std::optional<Location>> out(policy.n, std::nullopt);
  const auto [begin, end] = dc_slot_range(policy, num_dcs, dc);

  // Deterministic per-object rotation spreads load across FSs for policies
  // that do not use every slot a data center could host.
  const size_t rotation =
      std::hash<ObjectVersionId>{}(ov) % fs_in_dc.size();
  const int per_fs_cap =
      std::min<int>(policy.max_frags_per_fs, disks_per_fs);
  const int capacity = static_cast<int>(fs_in_dc.size()) * per_fs_cap;

  const int want = end - begin;
  const int give = std::min(want, capacity);
  for (int j = 0; j < give; ++j) {
    const size_t fs_index = (rotation + static_cast<size_t>(j)) % fs_in_dc.size();
    const int disk = j / static_cast<int>(fs_in_dc.size());
    out[static_cast<size_t>(begin + j)] =
        Location{fs_in_dc[fs_index], static_cast<uint8_t>(disk)};
  }
  return out;
}

}  // namespace pahoehoe::core
