#include "core/harness.h"

#include <set>
#include <unordered_set>

namespace pahoehoe::core {

FaultSpec FaultSpec::fs_blackout(int dc, int index, SimTime start,
                                 SimTime end) {
  FaultSpec spec;
  spec.kind = Kind::kFsBlackout;
  spec.dc = dc;
  spec.index_in_dc = index;
  spec.start = start;
  spec.end = end;
  return spec;
}

FaultSpec FaultSpec::kls_blackout(int dc, int index, SimTime start,
                                  SimTime end) {
  FaultSpec spec;
  spec.kind = Kind::kKlsBlackout;
  spec.dc = dc;
  spec.index_in_dc = index;
  spec.start = start;
  spec.end = end;
  return spec;
}

FaultSpec FaultSpec::dc_partition(int dc, SimTime start, SimTime end) {
  FaultSpec spec;
  spec.kind = Kind::kDcPartition;
  spec.dc = dc;
  spec.start = start;
  spec.end = end;
  return spec;
}

FaultSpec FaultSpec::uniform_loss(double rate) {
  FaultSpec spec;
  spec.kind = Kind::kUniformLoss;
  spec.rate = rate;
  return spec;
}

FaultSpec FaultSpec::fs_crash(int dc, int index, SimTime start, SimTime end) {
  FaultSpec spec = fs_blackout(dc, index, start, end);
  spec.kind = Kind::kFsCrash;
  return spec;
}

FaultSpec FaultSpec::kls_crash(int dc, int index, SimTime start,
                               SimTime end) {
  FaultSpec spec = kls_blackout(dc, index, start, end);
  spec.kind = Kind::kKlsCrash;
  return spec;
}

namespace {

void install_crash(Server& server, sim::Simulator& sim, SimTime start,
                   SimTime end) {
  sim.schedule_at(start, [&server] { server.crash(); });
  sim.schedule_at(end, [&server] { server.recover(); });
}

void install_fault(const FaultSpec& spec, Cluster& cluster,
                   net::Network& net, sim::Simulator& sim) {
  switch (spec.kind) {
    case FaultSpec::Kind::kFsBlackout: {
      const NodeId id =
          cluster.view()->fs_by_dc[static_cast<size_t>(spec.dc)]
                                  [static_cast<size_t>(spec.index_in_dc)];
      net.add_fault(
          std::make_shared<net::NodeBlackout>(id, spec.start, spec.end));
      break;
    }
    case FaultSpec::Kind::kKlsBlackout: {
      const NodeId id =
          cluster.view()->kls_by_dc[static_cast<size_t>(spec.dc)]
                                   [static_cast<size_t>(spec.index_in_dc)];
      net.add_fault(
          std::make_shared<net::NodeBlackout>(id, spec.start, spec.end));
      break;
    }
    case FaultSpec::Kind::kDcPartition: {
      std::unordered_set<NodeId> group;
      for (const auto& [node, dc] : cluster.view()->dc_of_node) {
        if (dc.value == spec.dc) group.insert(node);
      }
      net.add_fault(std::make_shared<net::Partition>(std::move(group),
                                                     spec.start, spec.end));
      break;
    }
    case FaultSpec::Kind::kUniformLoss:
      net.add_fault(std::make_shared<net::UniformLoss>(spec.rate));
      break;
    case FaultSpec::Kind::kFsCrash:
      install_crash(
          cluster.fs(spec.dc * cluster.topology().fs_per_dc + spec.index_in_dc),
          sim, spec.start, spec.end);
      break;
    case FaultSpec::Kind::kKlsCrash:
      install_crash(cluster.kls(spec.dc, spec.index_in_dc), sim, spec.start,
                    spec.end);
      break;
  }
}

}  // namespace

RunResult run_experiment(const RunConfig& config) {
  sim::Simulator sim(config.seed);
  net::Network net(sim, config.network);
  Cluster cluster(sim, net, config.topology, config.convergence,
                  config.proxy);
  for (const FaultSpec& fault : config.faults) {
    install_fault(fault, cluster, net, sim);
  }

  WorkloadDriver driver(sim, cluster.proxy(0), config.workload,
                        /*value_seed=*/config.seed * 7919 + 17);
  driver.start();
  sim.run(config.max_sim_time);

  RunResult result;
  result.stats = net.stats();
  result.puts_attempted = driver.attempts();
  result.puts_acked = driver.successes();
  result.puts_failed = driver.failures();
  result.end_time = sim.last_event_time();
  result.events = sim.executed();
  result.quiescent = cluster.converged_quiescent();

  std::set<ObjectVersionId> seen;
  for (const PutRecord& record : driver.records()) {
    if (!seen.insert(record.ov).second) continue;
    ++result.versions_total;
    switch (cluster.classify(record.ov)) {
      case VersionStatus::kAmr:
        ++result.amr;
        if (!record.acked) ++result.excess_amr;
        break;
      case VersionStatus::kDurableNotAmr:
        ++result.durable_not_amr;
        break;
      case VersionStatus::kNonDurable:
        ++result.non_durable;
        break;
    }
  }
  for (int i = 0; i < cluster.num_fs(); ++i) {
    result.given_up += static_cast<int>(cluster.fs(i).versions_given_up());
  }
  return result;
}

AggregateResult run_many(RunConfig config, int num_seeds,
                         uint64_t base_seed) {
  AggregateResult agg;
  agg.seeds = num_seeds;
  for (int s = 0; s < num_seeds; ++s) {
    config.seed = base_seed + static_cast<uint64_t>(s);
    const RunResult r = run_experiment(config);
    agg.msg_count.add(static_cast<double>(r.stats.total_sent_count()));
    agg.msg_bytes.add(static_cast<double>(r.stats.total_sent_bytes()));
    agg.wan_bytes.add(static_cast<double>(r.stats.wan_sent_bytes()));
    for (int t = 0; t < wire::kMessageTypeCount; ++t) {
      const auto& ts = r.stats.of(static_cast<wire::MessageType>(t));
      agg.count_by_type[static_cast<size_t>(t)].add(
          static_cast<double>(ts.sent_count));
      agg.bytes_by_type[static_cast<size_t>(t)].add(
          static_cast<double>(ts.sent_bytes));
    }
    agg.puts_attempted.add(r.puts_attempted);
    agg.puts_acked.add(r.puts_acked);
    agg.amr.add(r.amr);
    agg.excess_amr.add(r.excess_amr);
    agg.durable_not_amr.add(r.durable_not_amr);
    agg.non_durable.add(r.non_durable);
    agg.end_time_s.add(static_cast<double>(r.end_time) /
                       static_cast<double>(kMicrosPerSecond));
  }
  return agg;
}

RunConfig paper_default_config() {
  RunConfig config;
  config.topology = ClusterTopology{};       // 2 DCs × (2 KLS + 3 FS)
  config.workload.num_puts = 100;            // §5.1
  config.workload.value_size = 100 * 1024;   // 100 × 2^10 B
  config.workload.policy = Policy{};         // (k=4, n=12)
  return config;
}

}  // namespace pahoehoe::core
