#include "core/harness.h"

#include <cstdio>
#include <optional>
#include <set>
#include <unordered_set>

#include "common/parallel.h"
#include "erasure/gf256.h"

namespace pahoehoe::core {

FaultSpec FaultSpec::fs_blackout(int dc, int index, SimTime start,
                                 SimTime end) {
  FaultSpec spec;
  spec.kind = Kind::kFsBlackout;
  spec.dc = dc;
  spec.index_in_dc = index;
  spec.start = start;
  spec.end = end;
  return spec;
}

FaultSpec FaultSpec::kls_blackout(int dc, int index, SimTime start,
                                  SimTime end) {
  FaultSpec spec;
  spec.kind = Kind::kKlsBlackout;
  spec.dc = dc;
  spec.index_in_dc = index;
  spec.start = start;
  spec.end = end;
  return spec;
}

FaultSpec FaultSpec::dc_partition(int dc, SimTime start, SimTime end) {
  FaultSpec spec;
  spec.kind = Kind::kDcPartition;
  spec.dc = dc;
  spec.start = start;
  spec.end = end;
  return spec;
}

FaultSpec FaultSpec::uniform_loss(double rate) {
  FaultSpec spec;
  spec.kind = Kind::kUniformLoss;
  spec.rate = rate;
  return spec;
}

FaultSpec FaultSpec::fs_crash(int dc, int index, SimTime start, SimTime end) {
  FaultSpec spec = fs_blackout(dc, index, start, end);
  spec.kind = Kind::kFsCrash;
  return spec;
}

FaultSpec FaultSpec::kls_crash(int dc, int index, SimTime start,
                               SimTime end) {
  FaultSpec spec = kls_blackout(dc, index, start, end);
  spec.kind = Kind::kKlsCrash;
  return spec;
}

FaultSpec FaultSpec::frag_corrupt(int dc, int index, SimTime at) {
  FaultSpec spec;
  spec.kind = Kind::kFragCorrupt;
  spec.dc = dc;
  spec.index_in_dc = index;
  spec.start = at;
  spec.end = at;
  return spec;
}

FaultSpec FaultSpec::proxy_crash(int index, SimTime start, SimTime end) {
  FaultSpec spec;
  spec.kind = Kind::kProxyCrash;
  spec.index_in_dc = index;
  spec.start = start;
  spec.end = end;
  return spec;
}

FaultSpec FaultSpec::duplication_burst(double rate, SimTime start,
                                       SimTime end) {
  FaultSpec spec;
  spec.kind = Kind::kDuplicationBurst;
  spec.rate = rate;
  spec.start = start;
  spec.end = end;
  return spec;
}

FaultSpec FaultSpec::disk_destroy(int dc, int index, int disk, SimTime at) {
  FaultSpec spec;
  spec.kind = Kind::kDiskDestroy;
  spec.dc = dc;
  spec.index_in_dc = index;
  spec.disk = disk;
  spec.start = at;
  spec.end = at;
  return spec;
}

std::string to_repro_string(const FaultSpec& spec) {
  char buf[160];
  const auto ll = [](SimTime t) { return static_cast<long long>(t); };
  switch (spec.kind) {
    case FaultSpec::Kind::kFsBlackout:
      std::snprintf(buf, sizeof(buf),
                    "core::FaultSpec::fs_blackout(%d, %d, %lld, %lld)",
                    spec.dc, spec.index_in_dc, ll(spec.start), ll(spec.end));
      break;
    case FaultSpec::Kind::kKlsBlackout:
      std::snprintf(buf, sizeof(buf),
                    "core::FaultSpec::kls_blackout(%d, %d, %lld, %lld)",
                    spec.dc, spec.index_in_dc, ll(spec.start), ll(spec.end));
      break;
    case FaultSpec::Kind::kDcPartition:
      std::snprintf(buf, sizeof(buf),
                    "core::FaultSpec::dc_partition(%d, %lld, %lld)", spec.dc,
                    ll(spec.start), ll(spec.end));
      break;
    case FaultSpec::Kind::kUniformLoss:
      std::snprintf(buf, sizeof(buf), "core::FaultSpec::uniform_loss(%.6f)",
                    spec.rate);
      break;
    case FaultSpec::Kind::kFsCrash:
      std::snprintf(buf, sizeof(buf),
                    "core::FaultSpec::fs_crash(%d, %d, %lld, %lld)", spec.dc,
                    spec.index_in_dc, ll(spec.start), ll(spec.end));
      break;
    case FaultSpec::Kind::kKlsCrash:
      std::snprintf(buf, sizeof(buf),
                    "core::FaultSpec::kls_crash(%d, %d, %lld, %lld)", spec.dc,
                    spec.index_in_dc, ll(spec.start), ll(spec.end));
      break;
    case FaultSpec::Kind::kFragCorrupt:
      std::snprintf(buf, sizeof(buf),
                    "core::FaultSpec::frag_corrupt(%d, %d, %lld)", spec.dc,
                    spec.index_in_dc, ll(spec.start));
      break;
    case FaultSpec::Kind::kProxyCrash:
      std::snprintf(buf, sizeof(buf),
                    "core::FaultSpec::proxy_crash(%d, %lld, %lld)",
                    spec.index_in_dc, ll(spec.start), ll(spec.end));
      break;
    case FaultSpec::Kind::kDuplicationBurst:
      std::snprintf(buf, sizeof(buf),
                    "core::FaultSpec::duplication_burst(%.6f, %lld, %lld)",
                    spec.rate, ll(spec.start), ll(spec.end));
      break;
    case FaultSpec::Kind::kDiskDestroy:
      std::snprintf(buf, sizeof(buf),
                    "core::FaultSpec::disk_destroy(%d, %d, %d, %lld)",
                    spec.dc, spec.index_in_dc, spec.disk, ll(spec.start));
      break;
  }
  return buf;
}

const char* to_string(InvariantViolation::Kind kind) {
  switch (kind) {
    case InvariantViolation::Kind::kAckedNonDurable:
      return "acked-non-durable";
    case InvariantViolation::Kind::kAckedNotAmr:
      return "acked-not-AMR";
    case InvariantViolation::Kind::kDurableNotAmr:
      return "durable-not-AMR";
    case InvariantViolation::Kind::kGetValueMismatch:
      return "get-value-mismatch";
    case InvariantViolation::Kind::kNotQuiescent:
      return "not-quiescent";
    case InvariantViolation::Kind::kEventBudget:
      return "event-budget";
    case InvariantViolation::Kind::kMessageBudget:
      return "message-budget";
    case InvariantViolation::Kind::kTelemetryDrift:
      return "telemetry-drift";
  }
  return "?";
}

std::string AuditReport::to_string() const {
  if (violations.empty()) return "all invariants held";
  std::string out;
  for (const InvariantViolation& v : violations) {
    out += pahoehoe::core::to_string(v.kind);
    if (v.ov.ts.valid()) {
      out += ' ';
      out += pahoehoe::to_string(v.ov);
    }
    if (!v.detail.empty()) {
      out += ": ";
      out += v.detail;
    }
    out += '\n';
  }
  return out;
}

namespace {

void install_crash(Server& server, sim::Simulator& sim, SimTime start,
                   SimTime end) {
  sim.schedule_at(start, [&server] { server.crash(); });
  sim.schedule_at(end, [&server] { server.recover(); });
}

void install_fault(const FaultSpec& spec, Cluster& cluster,
                   net::Network& net, sim::Simulator& sim) {
  switch (spec.kind) {
    case FaultSpec::Kind::kFsBlackout: {
      const NodeId id =
          cluster.view()->fs_by_dc[static_cast<size_t>(spec.dc)]
                                  [static_cast<size_t>(spec.index_in_dc)];
      net.add_fault(
          std::make_shared<net::NodeBlackout>(id, spec.start, spec.end));
      break;
    }
    case FaultSpec::Kind::kKlsBlackout: {
      const NodeId id =
          cluster.view()->kls_by_dc[static_cast<size_t>(spec.dc)]
                                   [static_cast<size_t>(spec.index_in_dc)];
      net.add_fault(
          std::make_shared<net::NodeBlackout>(id, spec.start, spec.end));
      break;
    }
    case FaultSpec::Kind::kDcPartition: {
      const std::vector<NodeId> nodes = cluster.view()->nodes_in_dc(
          DataCenterId{static_cast<uint8_t>(spec.dc)});
      net.add_fault(std::make_shared<net::Partition>(
          std::unordered_set<NodeId>(nodes.begin(), nodes.end()), spec.start,
          spec.end));
      break;
    }
    case FaultSpec::Kind::kUniformLoss:
      net.add_fault(std::make_shared<net::UniformLoss>(spec.rate));
      break;
    case FaultSpec::Kind::kFsCrash:
      install_crash(
          cluster.fs(spec.dc * cluster.topology().fs_per_dc + spec.index_in_dc),
          sim, spec.start, spec.end);
      break;
    case FaultSpec::Kind::kKlsCrash:
      install_crash(cluster.kls(spec.dc, spec.index_in_dc), sim, spec.start,
                    spec.end);
      break;
    case FaultSpec::Kind::kFragCorrupt: {
      FragmentServer& fs = cluster.fs(spec.dc, spec.index_in_dc);
      sim.schedule_at(spec.start, [&fs, &sim] {
        fs.corrupt_random_fragment(sim.rng());
      });
      break;
    }
    case FaultSpec::Kind::kProxyCrash:
      install_crash(cluster.proxy(spec.index_in_dc), sim, spec.start,
                    spec.end);
      break;
    case FaultSpec::Kind::kDuplicationBurst:
      sim.schedule_at(spec.start, [&net, rate = spec.rate] {
        net.set_duplication_rate(rate);
      });
      sim.schedule_at(spec.end, [&net] { net.reset_duplication_rate(); });
      break;
    case FaultSpec::Kind::kDiskDestroy: {
      FragmentServer& fs = cluster.fs(spec.dc, spec.index_in_dc);
      sim.schedule_at(spec.start, [&fs, disk = spec.disk] {
        fs.destroy_disk(static_cast<uint8_t>(disk));
      });
      break;
    }
  }
}

}  // namespace

static RunResult run_experiment_impl(const RunConfig& config) {
  obs::ProfScope prof_run("run_experiment");
  sim::Simulator sim(config.seed);
  net::Network net(sim, config.network);
  // Tracing must start before any traffic: the stats-vs-tracer
  // reconciliation below only holds when the tracer saw the whole run.
  if (config.telemetry.trace_capacity > 0) {
    net.tracer().enable(config.telemetry.trace_capacity);
  }
  // Exemplars are carved out of the span tracer's critical paths, so they
  // imply span tracing. Both are pure observers.
  if (config.telemetry.spans || config.telemetry.exemplars) {
    net.telemetry().spans.enable(&sim, config.telemetry.max_spans_per_version);
  }
  Cluster cluster(sim, net, config.topology, config.convergence,
                  config.proxy);
  for (const FaultSpec& fault : config.faults) {
    install_fault(fault, cluster, net, sim);
  }

  WorkloadDriver driver(sim, cluster.proxy(0), config.workload,
                        /*value_seed=*/config.seed * 7919 + 17);
  driver.start();

  std::optional<obs::Sampler> sampler;
  if (config.telemetry.sample_interval > 0) {
    sampler.emplace(
        sim, config.telemetry.sample_interval,
        std::vector<std::string>{"amr_backlog", "pending_versions",
                                 "msgs_sent", "bytes_sent"},
        [&net, &cluster](SimTime) -> std::vector<double> {
          return {static_cast<double>(net.telemetry().amr.backlog()),
                  static_cast<double>(cluster.total_pending_versions()),
                  static_cast<double>(net.stats().total_sent_count()),
                  static_cast<double>(net.stats().total_sent_bytes())};
        },
        config.telemetry.max_samples);
  }

  {
    obs::ProfScope prof_sim("sim_run");
    sim.run(config.max_sim_time);
  }

  RunResult result;
  result.stats = net.stats();
  result.puts_attempted = driver.attempts();
  result.puts_acked = driver.successes();
  result.puts_failed = driver.failures();
  result.end_time = sim.last_event_time();
  result.events = sim.executed();
  result.quiescent = cluster.converged_quiescent();

  for (const OpLatency& op : driver.put_latencies()) {
    if (op.ok) result.put_latency_s.push_back(op.seconds());
  }
  for (const OpLatency& op : driver.get_latencies()) {
    if (op.ok) result.get_latency_s.push_back(op.seconds());
  }

  std::set<ObjectVersionId> seen;
  for (const PutRecord& record : driver.records()) {
    // Client-timeout records carry no version id (the proxy never answered).
    if (!record.ov.ts.valid()) continue;
    if (!seen.insert(record.ov).second) continue;
    ++result.versions_total;
    const VersionStatus status = cluster.classify(record.ov);
    switch (status) {
      case VersionStatus::kAmr:
        ++result.amr;
        if (!record.acked) ++result.excess_amr;
        break;
      case VersionStatus::kDurableNotAmr:
        ++result.durable_not_amr;
        break;
      case VersionStatus::kNonDurable:
        ++result.non_durable;
        break;
    }
    // --- invariant auditor: per-version safety checks ---------------------
    if (record.acked && status == VersionStatus::kNonDurable) {
      result.audit.violations.push_back(
          {InvariantViolation::Kind::kAckedNonDurable, record.ov,
           "client-acked put has fewer than k intact fragments"});
    } else if (record.acked && status == VersionStatus::kDurableNotAmr) {
      result.audit.violations.push_back(
          {InvariantViolation::Kind::kAckedNotAmr, record.ov,
           "client-acked put never reached AMR"});
    } else if (status == VersionStatus::kDurableNotAmr) {
      result.audit.violations.push_back(
          {InvariantViolation::Kind::kDurableNotAmr, record.ov,
           "durable version stuck short of AMR at quiescence"});
    }
  }

  for (const GetRecord& record : driver.get_records()) {
    ++result.gets_attempted;
    if (!record.completed) continue;
    ++result.gets_ok;
    if (!record.matched) {
      ++result.gets_mismatched;
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "get of object %d returned bytes that differ from the put",
                    record.object_index);
      result.audit.violations.push_back(
          {InvariantViolation::Kind::kGetValueMismatch,
           ObjectVersionId{driver.key_for(record.object_index), record.ts},
           detail});
    }
  }

  // --- invariant auditor: run-global liveness checks ------------------------
  if (!result.quiescent) {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "%zu work-list entries still pending at the horizon",
                  cluster.total_pending_versions());
    result.audit.violations.push_back(
        {InvariantViolation::Kind::kNotQuiescent, ObjectVersionId{}, detail});
  }
  if (config.event_budget > 0 && result.events > config.event_budget) {
    char detail[96];
    std::snprintf(detail, sizeof(detail), "%llu events executed, budget %llu",
                  static_cast<unsigned long long>(result.events),
                  static_cast<unsigned long long>(config.event_budget));
    result.audit.violations.push_back(
        {InvariantViolation::Kind::kEventBudget, ObjectVersionId{}, detail});
  }
  if (config.message_budget > 0 &&
      result.stats.total_sent_count() > config.message_budget) {
    char detail[96];
    std::snprintf(detail, sizeof(detail), "%llu messages sent, budget %llu",
                  static_cast<unsigned long long>(
                      result.stats.total_sent_count()),
                  static_cast<unsigned long long>(config.message_budget));
    result.audit.violations.push_back(
        {InvariantViolation::Kind::kMessageBudget, ObjectVersionId{},
         detail});
  }

  for (int i = 0; i < cluster.num_fs(); ++i) {
    result.given_up += static_cast<int>(cluster.fs(i).versions_given_up());
  }

  // --- telemetry: reconcile, snapshot, and (on failure) capture forensics --
  if (config.telemetry.inject_trace_drift && net.tracer().enabled()) {
    // Phantom record: guaranteed stats-vs-tracer drift, so tests can lock
    // down the behavior of a run whose ONLY failure is kTelemetryDrift.
    net.tracer().record(sim.now(), net::TraceEvent::kSend, NodeId{}, NodeId{},
                        wire::MessageType::kDecideLocsReq, 0);
  }
  if (const std::string drift = net.trace_consistency_report();
      !drift.empty()) {
    result.audit.violations.push_back(
        {InvariantViolation::Kind::kTelemetryDrift, ObjectVersionId{}, drift});
  }

  obs::Telemetry& tel = net.telemetry();
  tel.metrics.gauge("amr_backlog").set(static_cast<double>(tel.amr.backlog()));
  tel.metrics.gauge("amr_backlog_peak")
      .set(static_cast<double>(tel.amr.backlog_peak()));
  tel.metrics.counter("amr_acked_total").inc(tel.amr.acked());
  tel.metrics.counter("amr_confirmed_total").inc(tel.amr.confirmed());
  // Which GF(2^8) kernel encoded this run's fragments. The label is the one
  // metric allowed to differ across kernels — every other byte of the run
  // is kernel-independent (DESIGN.md §10), which kernel_determinism_test
  // asserts by digesting runs modulo this line.
  tel.metrics
      .counter("erasure_kernel_runs_total",
               {{"kernel", gf256::to_string(gf256::active_kernel())}})
      .inc();
  result.metrics = tel.metrics;
  result.time_to_amr_s = tel.amr.latency_s();
  result.amr_confirmed = tel.amr.confirmed();
  result.amr_backlog_final = tel.amr.backlog();
  result.amr_backlog_peak = tel.amr.backlog_peak();
  if (sampler.has_value()) result.timeline = sampler->series();
  if (!result.audit.passed() && net.tracer().enabled()) {
    result.trace_tail = net.tracer().dump(config.telemetry.trace_dump_lines);
    result.trace_overflowed = net.tracer().overflowed();
  }
  for (const obs::VersionCriticalPath& path : tel.spans.critical_paths()) {
    result.critical_path.add(path);
  }
  result.critical_paths = tel.spans.critical_paths();
  if (!result.audit.passed() && tel.spans.enabled()) {
    // Span forensics: the causal tree of the first violation that names a
    // traced version explains *why* it missed AMR, not just that it did.
    for (const InvariantViolation& v : result.audit.violations) {
      if (v.ov.ts.valid() && tel.spans.has_version(v.ov)) {
        result.span_forensics = tel.spans.render_tree(v.ov);
        break;
      }
    }
  }
  if (config.telemetry.exemplars) {
    // Built from already-recorded telemetry after the simulation quiesced:
    // a pure side channel, so exemplars on vs. off cannot change the run.
    const TelemetryOptions& topt = config.telemetry;
    result.amr_exemplars =
        obs::ExemplarStore(topt.exemplar_worst_k, topt.exemplar_reservoir);
    result.put_op_exemplars =
        obs::ExemplarStore(topt.exemplar_worst_k, topt.exemplar_reservoir);
    result.get_op_exemplars =
        obs::ExemplarStore(topt.exemplar_worst_k, topt.exemplar_reservoir);
    for (const obs::VersionCriticalPath& path : result.critical_paths) {
      obs::Exemplar e;
      e.ov = path.ov;
      e.seed = config.seed;
      e.latency_micros = path.total();
      e.components = path.components;
      result.amr_exemplars.add(e);
    }
    for (const OpLatency& op : driver.put_latencies()) {
      if (!op.ok) continue;
      obs::Exemplar e;
      e.ov = op.ov;
      e.seed = config.seed;
      e.latency_micros = op.end - op.start;
      result.put_op_exemplars.add(e);
    }
    for (const OpLatency& op : driver.get_latencies()) {
      if (!op.ok) continue;
      obs::Exemplar e;
      e.ov = op.ov;
      e.seed = config.seed;
      e.latency_micros = op.end - op.start;
      result.get_op_exemplars.add(e);
    }
    obs::AttributionBuilder builder(result.amr_exemplars);
    for (const obs::VersionCriticalPath& path : result.critical_paths) {
      builder.add(path);
    }
    result.attribution = builder.finish();
  }
  result.spans = std::move(tel.spans);
  return result;
}

RunResult run_experiment(const RunConfig& config) {
  // Wall-clock profile of this run = the calling thread's phase delta
  // across the impl. Each seed executes entirely on one worker thread
  // (parallel_for), so thread-local accounting captures the whole run.
  // Side channel only: result.profile is excluded from every determinism
  // digest (DESIGN.md §11).
  const obs::prof::Snapshot prof_begin = obs::prof::capture_begin();
  RunResult result = run_experiment_impl(config);
  result.profile = obs::prof::capture_delta(prof_begin);
  return result;
}

AggregateResult run_many(RunConfig config, int num_seeds, uint64_t base_seed,
                         int jobs) {
  // Every seed is a self-contained simulation (its own Simulator, Network,
  // Cluster), so seeds run on worker threads; results land in per-seed
  // slots and are folded below in seed order, making the aggregate
  // byte-identical for any jobs value.
  std::vector<RunResult> results(static_cast<size_t>(num_seeds));
  parallel_for(num_seeds, jobs, [&](int s) {
    RunConfig seed_config = config;
    seed_config.seed = base_seed + static_cast<uint64_t>(s);
    results[static_cast<size_t>(s)] = run_experiment(seed_config);
  });

  AggregateResult agg;
  agg.seeds = num_seeds;
  if (config.telemetry.exemplars) {
    // Match per-run store caps so the seed-order merges below are legal.
    agg.amr_exemplars = obs::ExemplarStore(config.telemetry.exemplar_worst_k,
                                           config.telemetry.exemplar_reservoir);
    agg.put_op_exemplars = obs::ExemplarStore(
        config.telemetry.exemplar_worst_k, config.telemetry.exemplar_reservoir);
    agg.get_op_exemplars = obs::ExemplarStore(
        config.telemetry.exemplar_worst_k, config.telemetry.exemplar_reservoir);
  }
  for (const RunResult& r : results) {
    agg.msg_count.add(static_cast<double>(r.stats.total_sent_count()));
    agg.msg_bytes.add(static_cast<double>(r.stats.total_sent_bytes()));
    agg.wan_bytes.add(static_cast<double>(r.stats.wan_sent_bytes()));
    for (int t = 0; t < wire::kMessageTypeCount; ++t) {
      const auto& ts = r.stats.of(static_cast<wire::MessageType>(t));
      agg.count_by_type[static_cast<size_t>(t)].add(
          static_cast<double>(ts.sent_count));
      agg.bytes_by_type[static_cast<size_t>(t)].add(
          static_cast<double>(ts.sent_bytes));
    }
    agg.puts_attempted.add(r.puts_attempted);
    agg.puts_acked.add(r.puts_acked);
    agg.amr.add(r.amr);
    agg.excess_amr.add(r.excess_amr);
    agg.durable_not_amr.add(r.durable_not_amr);
    agg.non_durable.add(r.non_durable);
    agg.end_time_s.add(static_cast<double>(r.end_time) /
                       static_cast<double>(kMicrosPerSecond));
    SampleStats seed_put_latency;
    for (double latency : r.put_latency_s) {
      agg.put_latency_s.add(latency);
      seed_put_latency.add(latency);
    }
    if (seed_put_latency.count() > 0) {
      agg.put_latency_mean_s.add(seed_put_latency.mean());
    }
    for (double latency : r.get_latency_s) agg.get_latency_s.add(latency);
    agg.metrics.merge(r.metrics);
    agg.time_to_amr_s.merge(r.time_to_amr_s);
    agg.timeline.merge_aligned(r.timeline);
    agg.amr_confirmed.add(static_cast<double>(r.amr_confirmed));
    agg.amr_backlog_final.add(static_cast<double>(r.amr_backlog_final));
    agg.critical_path.merge(r.critical_path);
    agg.amr_exemplars.merge(r.amr_exemplars);
    agg.put_op_exemplars.merge(r.put_op_exemplars);
    agg.get_op_exemplars.merge(r.get_op_exemplars);
    agg.profile.merge(r.profile);
  }
  if (config.telemetry.exemplars) {
    // Pooled attribution is two-pass: the merged sketch above fixes the p95
    // threshold, then every seed's critical paths are bucketed against it,
    // walked in seed order (pure integer accumulation).
    obs::AttributionBuilder builder(agg.amr_exemplars);
    for (const RunResult& r : results) {
      for (const obs::VersionCriticalPath& path : r.critical_paths) {
        builder.add(path);
      }
    }
    agg.attribution = builder.finish();
  }
  return agg;
}

RunConfig paper_default_config() {
  RunConfig config;
  config.topology = ClusterTopology{};       // 2 DCs × (2 KLS + 3 FS)
  config.workload.num_puts = 100;            // §5.1
  config.workload.value_size = 100 * 1024;   // 100 × 2^10 B
  config.workload.policy = Policy{};         // (k=4, n=12)
  return config;
}

}  // namespace pahoehoe::core
