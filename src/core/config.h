// Configuration knobs for the Pahoehoe protocol stack.
#pragma once

#include <limits>
#include <string>

#include "common/types.h"

namespace pahoehoe::core {

/// Shape of the simulated deployment. The paper's evaluation (§5.1) uses
/// two data centers with two replicated KLSs and three FSs each, one proxy.
struct ClusterTopology {
  int num_dcs = 2;
  int kls_per_dc = 2;
  int fs_per_dc = 3;
  int disks_per_fs = 2;
  int num_proxies = 1;

  int total_kls() const { return num_dcs * kls_per_dc; }
  int total_fs() const { return num_dcs * fs_per_dc; }
  bool valid() const {
    return num_dcs >= 1 && kls_per_dc >= 1 && fs_per_dc >= 1 &&
           disks_per_fs >= 1 && num_proxies >= 1;
  }
};

/// Convergence behaviour (§3.4 naïve protocol plus the §4 optimizations).
struct ConvergenceOptions {
  // --- the four optimization switches the evaluation sweeps -----------------
  /// §4.1: an FS that verifies AMR sends indications to its siblings.
  bool fs_amr_indication = false;
  /// §4.1: rounds start uniformly at random in [round_min, round_max]
  /// instead of on a synchronized fixed-period schedule.
  bool unsync_rounds = false;
  /// §4.1: the proxy sends AMR indications after a fully successful put;
  /// FSs defer convergence of young versions (min_age) to let puts finish.
  bool put_amr_indication = false;
  /// §4.2: one FS recovers all missing sibling fragments and pushes them,
  /// with lower-id backoff to suppress duplicated recovery work.
  bool sibling_recovery = false;

  // --- timing ---------------------------------------------------------------
  SimTime round_min = 30 * kMicrosPerSecond;   ///< unsynchronized round jitter
  SimTime round_max = 90 * kMicrosPerSecond;
  SimTime sync_round_period = 60 * kMicrosPerSecond;  ///< synchronized rounds
  /// Minimum version age before an FS initiates convergence (paper: 300 s);
  /// applied only when put_amr_indication is on (naïve convergence "may
  /// start convergence even before the put operation completes", §4.1).
  SimTime min_age = 300 * kMicrosPerSecond;
  /// Stop attempting convergence for versions older than this (paper: two
  /// months, §3.5). With per-class horizons enabled (giveup_age_durable >=
  /// 0) this becomes the horizon of the *non-durable* class only.
  SimTime giveup_age = 60LL * 24 * 3600 * kMicrosPerSecond;
  /// Per-durability-class give-up: horizon applied to versions an FS has
  /// evidence are durable (>= k certified intact fragments cluster-wide, or
  /// verified AMR in the past). Negative (the default) disables the split
  /// and `giveup_age` governs every version — the paper's single-age
  /// behavior, kept for figure parity. Set to kNeverGiveUp so durable
  /// versions are never dropped from the work-lists and scrub can repair
  /// arbitrarily old AMR-eligible versions; non-durable versions (failed
  /// puts that can never converge) still leave at `giveup_age`, which is
  /// what keeps quiescence reachable.
  SimTime giveup_age_durable = -1;
  /// Effectively-infinite horizon for giveup_age_durable ("durable
  /// versions are never dropped").
  static constexpr SimTime kNeverGiveUp =
      std::numeric_limits<SimTime>::max();
  /// Exponential per-version backoff after a convergence step that did not
  /// reach AMR: base * factor^(attempts-1), jittered, capped.
  SimTime backoff_base = 60 * kMicrosPerSecond;
  double backoff_factor = 2.0;
  SimTime backoff_max = 7LL * 24 * 3600 * kMicrosPerSecond;
  /// How long a sibling-recovery initiator accumulates converge replies
  /// before fetching fragments (§4.2 "waits some time").
  SimTime recovery_wait = 200 * kMicrosPerMilli;
  /// Abandon a recovery attempt whose fragment fetches never complete
  /// (sources down or replies lost); the step retries with backoff.
  SimTime recovery_timeout = 5 * kMicrosPerSecond;
  /// Retransmit a recovery attempt's outstanding fragment fetches at this
  /// interval until the attempt's deadline. Without in-attempt retries, one
  /// lost fetch fails the whole attempt, and under heavy loss a version
  /// could exhaust its backoff schedule before ever completing a recovery.
  SimTime recovery_retry_interval = 1500 * kMicrosPerMilli;
  /// Periodic disk scrub (§3.1 "detect disk corruption using hashes"):
  /// every interval the FS re-checks its fragments and re-enters damaged
  /// versions into convergence. 0 disables (the default — the paper's
  /// evaluation does not scrub). Note: a nonzero interval keeps the event
  /// queue alive forever; drive such simulations with a finite horizon
  /// (Simulator::run(until)) rather than run-to-quiescence.
  SimTime scrub_interval = 0;

  SimTime effective_min_age() const {
    return put_amr_indication ? min_age : 0;
  }

  // --- presets matching the paper's Figure 5 configurations ------------------
  static ConvergenceOptions naive();
  /// FS AMR indications, synchronized round starts (FSAMR-S).
  static ConvergenceOptions fs_amr_sync();
  /// FS AMR indications, unsynchronized round starts (FSAMR-U).
  static ConvergenceOptions fs_amr_unsync();
  /// Put AMR indications only (with unsynchronized rounds), the "PutAMR"
  /// column of Figures 5–8.
  static ConvergenceOptions put_amr();
  /// "Unsynchronized sibling fragment recovery" only (§5.3), the "Sibling"
  /// column of Figures 6–8.
  static ConvergenceOptions sibling_only();
  /// Everything on ("All").
  static ConvergenceOptions all_opts();
};

/// Proxy behaviour.
struct ProxyOptions {
  SimTime put_timeout = 10 * kMicrosPerSecond;
  SimTime get_timeout = 10 * kMicrosPerSecond;
  /// Versions per RetrieveTs page (§3.5 iterative timestamp retrieval);
  /// 0 fetches every version in one reply.
  uint16_t get_page_size = 0;
  /// Mirrors ConvergenceOptions::put_amr_indication; set by the Cluster.
  bool put_amr_indication = false;
  /// Additive skew applied to this proxy's loosely synchronized clock.
  SimTime clock_skew = 0;
};

std::string describe(const ConvergenceOptions& opts);

}  // namespace pahoehoe::core
