#include "core/workload.h"

#include <memory>
#include <random>

namespace pahoehoe::core {

WorkloadDriver::WorkloadDriver(sim::Simulator& sim, Proxy& proxy,
                               WorkloadConfig config, uint64_t value_seed)
    : sim_(sim), proxy_(proxy), config_(config), value_seed_(value_seed) {
  PAHOEHOE_CHECK(config_.num_puts >= 0 && config_.policy.valid());
}

Key WorkloadDriver::key_for(int object_index) const {
  return Key{config_.key_prefix + std::to_string(object_index)};
}

Bytes WorkloadDriver::value_for(int object_index) const {
  // Deterministic content, regenerable for verification without retaining
  // every value in memory. Retries re-put the identical value.
  std::mt19937_64 gen(value_seed_ ^
                      (0x9e3779b97f4a7c15ULL * (object_index + 1)));
  Bytes value(config_.value_size);
  size_t i = 0;
  while (i + 8 <= value.size()) {
    const uint64_t word = gen();
    for (int b = 0; b < 8; ++b) {
      value[i++] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  for (uint64_t word = gen(); i < value.size(); word >>= 8) {
    value[i++] = static_cast<uint8_t>(word);
  }
  return value;
}

void WorkloadDriver::start() {
  for (int i = 0; i < config_.num_puts; ++i) {
    const SimTime when = config_.start_time + i * config_.spacing;
    sim_.schedule_at(when, [this, i] { issue(i, 1); });
  }
}

void WorkloadDriver::issue(int object_index, int attempt) {
  ++attempts_;
  // The proxy answers exactly once unless it crashes mid-operation, in
  // which case nobody answers; the shared flag lets whichever of reply and
  // client timeout fires first claim the attempt.
  auto answered = std::make_shared<bool>(false);
  if (config_.client_timeout > 0) {
    sim_.schedule_after(
        config_.client_timeout, [this, object_index, attempt, answered] {
          if (*answered) return;
          *answered = true;
          records_.push_back(
              PutRecord{ObjectVersionId{}, object_index, attempt, false});
          resolve(object_index, attempt, /*acked=*/false);
        });
  }
  proxy_.put(
      key_for(object_index), value_for(object_index), config_.policy,
      [this, object_index, attempt, answered](const PutResult& result) {
        if (*answered) return;  // the client already gave up on this attempt
        *answered = true;
        records_.push_back(
            PutRecord{result.ov, object_index, attempt, result.success});
        resolve(object_index, attempt, result.success);
      });
}

void WorkloadDriver::resolve(int object_index, int attempt, bool acked) {
  if (acked) {
    ++successes_;
    maybe_get(object_index);
    return;
  }
  ++failures_;
  if (config_.retry_failed && attempt < config_.max_attempts) {
    sim_.schedule_after(config_.retry_delay, [this, object_index, attempt] {
      issue(object_index, attempt + 1);
    });
    return;
  }
  maybe_get(object_index);  // read-your-writes check even for failed puts
}

void WorkloadDriver::maybe_get(int object_index) {
  // At most one get per object (the proxy allows one in-flight get per key),
  // issued only after the object's puts fully resolved.
  if (!sim_.rng().chance(config_.get_fraction)) return;
  sim_.schedule_after(config_.get_delay, [this, object_index] {
    proxy_.get(key_for(object_index),
               [this, object_index](const GetResult& result) {
                 GetRecord record;
                 record.object_index = object_index;
                 record.completed = result.success;
                 if (result.success) {
                   record.matched = result.value == value_for(object_index);
                   record.ts = result.ts;
                 }
                 get_records_.push_back(record);
               });
  });
}

}  // namespace pahoehoe::core
