#include "core/workload.h"

#include <random>

namespace pahoehoe::core {

WorkloadDriver::WorkloadDriver(sim::Simulator& sim, Proxy& proxy,
                               WorkloadConfig config, uint64_t value_seed)
    : sim_(sim), proxy_(proxy), config_(config), value_seed_(value_seed) {
  PAHOEHOE_CHECK(config_.num_puts >= 0 && config_.policy.valid());
}

Key WorkloadDriver::key_for(int object_index) const {
  return Key{config_.key_prefix + std::to_string(object_index)};
}

Bytes WorkloadDriver::value_for(int object_index) const {
  // Deterministic content, regenerable for verification without retaining
  // every value in memory. Retries re-put the identical value.
  std::mt19937_64 gen(value_seed_ ^
                      (0x9e3779b97f4a7c15ULL * (object_index + 1)));
  Bytes value(config_.value_size);
  size_t i = 0;
  while (i + 8 <= value.size()) {
    const uint64_t word = gen();
    for (int b = 0; b < 8; ++b) {
      value[i++] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  for (uint64_t word = gen(); i < value.size(); word >>= 8) {
    value[i++] = static_cast<uint8_t>(word);
  }
  return value;
}

void WorkloadDriver::start() {
  for (int i = 0; i < config_.num_puts; ++i) {
    const SimTime when = config_.start_time + i * config_.spacing;
    sim_.schedule_at(when, [this, i] { issue(i, 1); });
  }
}

void WorkloadDriver::issue(int object_index, int attempt) {
  ++attempts_;
  proxy_.put(
      key_for(object_index), value_for(object_index), config_.policy,
      [this, object_index, attempt](const PutResult& result) {
        records_.push_back(
            PutRecord{result.ov, object_index, attempt, result.success});
        if (result.success) {
          ++successes_;
          return;
        }
        ++failures_;
        if (config_.retry_failed && attempt < config_.max_attempts) {
          sim_.schedule_after(config_.retry_delay,
                              [this, object_index, attempt] {
                                issue(object_index, attempt + 1);
                              });
        }
      });
}

}  // namespace pahoehoe::core
