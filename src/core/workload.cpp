#include "core/workload.h"

#include <cmath>
#include <memory>
#include <random>

#include "common/rng.h"

namespace pahoehoe::core {

WorkloadDriver::WorkloadDriver(sim::Simulator& sim, Proxy& proxy,
                               WorkloadConfig config, uint64_t value_seed)
    : sim_(sim), proxy_(proxy), config_(config), value_seed_(value_seed) {
  PAHOEHOE_CHECK(config_.num_puts >= 0 && config_.policy.valid());
  if (config_.arrivals != ArrivalProcess::kClosedLoop) {
    PAHOEHOE_CHECK(config_.arrival_rate_per_s > 0.0);
  }
}

Key WorkloadDriver::key_for(int object_index) const {
  return Key{config_.key_prefix + std::to_string(object_index)};
}

Bytes WorkloadDriver::value_for(int object_index) const {
  // Deterministic content, regenerable for verification without retaining
  // every value in memory. Retries re-put the identical value.
  std::mt19937_64 gen(value_seed_ ^
                      (0x9e3779b97f4a7c15ULL * (object_index + 1)));
  Bytes value(config_.value_size);
  size_t i = 0;
  while (i + 8 <= value.size()) {
    const uint64_t word = gen();
    for (int b = 0; b < 8; ++b) {
      value[i++] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  for (uint64_t word = gen(); i < value.size(); word >>= 8) {
    value[i++] = static_cast<uint8_t>(word);
  }
  return value;
}

void WorkloadDriver::start() {
  // Arrival times are drawn from a dedicated generator (not the
  // simulator's) so switching arrival models does not perturb any other
  // randomness of the run with the same seed.
  Rng arrival_rng(value_seed_ ^ 0xa11a1a1a5eedULL);
  const double rate = config_.arrival_rate_per_s;
  arrivals_.assign(static_cast<size_t>(config_.num_puts), 0);
  SimTime poisson_clock = config_.start_time;
  for (int i = 0; i < config_.num_puts; ++i) {
    SimTime when = config_.start_time;
    switch (config_.arrivals) {
      case ArrivalProcess::kClosedLoop:
        when = config_.start_time + i * config_.spacing;
        break;
      case ArrivalProcess::kOpenFixed:
        when = config_.start_time +
               static_cast<SimTime>(std::llround(
                   static_cast<double>(i) * kMicrosPerSecond / rate));
        break;
      case ArrivalProcess::kOpenPoisson: {
        const double gap_s =
            -std::log(1.0 - arrival_rng.uniform01()) / rate;
        poisson_clock += std::max<SimTime>(
            1, static_cast<SimTime>(std::llround(gap_s * kMicrosPerSecond)));
        when = poisson_clock;
        break;
      }
    }
    arrivals_[static_cast<size_t>(i)] = when;
    sim_.schedule_at(when, [this, i] { issue(i, 1); });
  }
}

void WorkloadDriver::issue(int object_index, int attempt) {
  ++attempts_;
  // The proxy answers exactly once unless it crashes mid-operation, in
  // which case nobody answers; the shared flag lets whichever of reply and
  // client timeout fires first claim the attempt.
  auto answered = std::make_shared<bool>(false);
  if (config_.client_timeout > 0) {
    sim_.schedule_after(
        config_.client_timeout, [this, object_index, attempt, answered] {
          if (*answered) return;
          *answered = true;
          records_.push_back(
              PutRecord{ObjectVersionId{}, object_index, attempt, false});
          resolve(object_index, attempt, /*acked=*/false);
        });
  }
  proxy_.put(
      key_for(object_index), value_for(object_index), config_.policy,
      [this, object_index, attempt, answered](const PutResult& result) {
        if (*answered) return;  // the client already gave up on this attempt
        *answered = true;
        records_.push_back(
            PutRecord{result.ov, object_index, attempt, result.success});
        resolve(object_index, attempt, result.success);
      });
}

void WorkloadDriver::resolve(int object_index, int attempt, bool acked) {
  if (acked) {
    ++successes_;
    finish_put(object_index, /*acked=*/true);
    maybe_get(object_index);
    return;
  }
  ++failures_;
  if (config_.retry_failed && attempt < config_.max_attempts) {
    sim_.schedule_after(config_.retry_delay, [this, object_index, attempt] {
      issue(object_index, attempt + 1);
    });
    return;
  }
  finish_put(object_index, /*acked=*/false);
  maybe_get(object_index);  // read-your-writes check even for failed puts
}

void WorkloadDriver::finish_put(int object_index, bool acked) {
  // Latency runs from the object's first-attempt arrival, not the last
  // retry's issue time: with retry_failed set, the client-visible latency
  // of a put is everything since its original arrival.
  // finish_put runs synchronously inside resolve(), right after the final
  // attempt's PutRecord was pushed, so records_.back() is that attempt.
  put_latencies_.push_back(OpLatency{
      object_index, acked, arrivals_[static_cast<size_t>(object_index)],
      sim_.now(), records_.back().ov});
}

void WorkloadDriver::maybe_get(int object_index) {
  // At most one get per object (the proxy allows one in-flight get per key),
  // issued only after the object's puts fully resolved.
  if (!sim_.rng().chance(config_.get_fraction)) return;
  sim_.schedule_after(config_.get_delay, [this, object_index] {
    const SimTime issued = sim_.now();
    proxy_.get(key_for(object_index),
               [this, object_index, issued](const GetResult& result) {
                 GetRecord record;
                 record.object_index = object_index;
                 record.completed = result.success;
                 if (result.success) {
                   record.matched = result.value == value_for(object_index);
                   record.ts = result.ts;
                 }
                 get_records_.push_back(record);
                 get_latencies_.push_back(OpLatency{
                     object_index, result.success, issued, sim_.now(),
                     ObjectVersionId{key_for(object_index), record.ts}});
               });
  });
}

}  // namespace pahoehoe::core
