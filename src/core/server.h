// Common base for Pahoehoe nodes (proxies, KLSs, FSs).
//
// Handles registration with the network, the crash/recover lifecycle
// (crash-recovery failure model, §3.1: persistent stores survive, volatile
// state and timers do not), and typed message sending.
#pragma once

#include <memory>

#include "common/types.h"
#include "core/cluster_view.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pahoehoe::core {

class Server : public net::MessageHandler {
 public:
  Server(sim::Simulator& sim, net::Network& net,
         std::shared_ptr<const ClusterView> view, NodeId id, NodeKind kind,
         DataCenterId dc)
      : sim_(sim), net_(net), view_(std::move(view)), id_(id), kind_(kind),
        dc_(dc) {
    net_.register_node(id_, this);
  }

  NodeId id() const { return id_; }
  NodeKind kind() const { return kind_; }
  DataCenterId dc() const { return dc_; }
  bool crashed() const { return crashed_; }

  /// Crash: lose volatile state and stop processing messages. Persistent
  /// stores (overridden hooks) are retained.
  virtual void crash() {
    crashed_ = true;
    on_crash();
  }

  /// Recover with persistent state intact.
  virtual void recover() {
    crashed_ = false;
    on_recover();
  }

  void handle(const wire::Envelope& env) final {
    if (crashed_) return;  // a crashed node neither receives nor replies
    dispatch(env);
  }

 protected:
  virtual void dispatch(const wire::Envelope& env) = 0;
  /// Subclasses drop volatile state / cancel timers here.
  virtual void on_crash() {}
  virtual void on_recover() {}

  template <typename M>
  void send(NodeId to, const M& msg) {
    net::send_message(net_, id_, to, msg);
  }

  /// Run-wide telemetry (metric registry + AMR tracker), shared via the
  /// network. Servers register their counters in their constructors and
  /// cache the returned handles.
  obs::Telemetry& telemetry() { return net_.telemetry(); }
  /// The {node=...} label every per-server metric carries.
  obs::Labels node_label() const {
    return {{"node", pahoehoe::to_string(id_)}};
  }

  sim::Simulator& sim_;
  net::Network& net_;
  std::shared_ptr<const ClusterView> view_;

 private:
  NodeId id_;
  NodeKind kind_;
  DataCenterId dc_;
  bool crashed_ = false;
};

}  // namespace pahoehoe::core
