#include "net/network.h"

#include <cstdio>

#include "common/check.h"
#include "obs/prof.h"

namespace pahoehoe::net {

bool NodeBlackout::should_drop(NodeId from, NodeId to,
                               wire::MessageType /*type*/, SimTime now,
                               Rng& /*rng*/) {
  if (now < start_ || now >= end_) return false;
  return from == node_ || to == node_;
}

bool Partition::should_drop(NodeId from, NodeId to,
                            wire::MessageType /*type*/, SimTime now,
                            Rng& /*rng*/) {
  if (now < start_ || now >= end_) return false;
  const bool from_in = group_.count(from) > 0;
  const bool to_in = group_.count(to) > 0;
  return from_in != to_in;
}

bool UniformLoss::should_drop(NodeId /*from*/, NodeId /*to*/,
                              wire::MessageType /*type*/, SimTime /*now*/,
                              Rng& rng) {
  return rng.chance(rate_);
}

bool TypedDrop::should_drop(NodeId /*from*/, NodeId /*to*/,
                            wire::MessageType type, SimTime /*now*/,
                            Rng& /*rng*/) {
  return type == type_;
}

void NetworkStats::record_sent(wire::MessageType type, size_t bytes) {
  auto& s = by_type_[static_cast<size_t>(type)];
  s.sent_count += 1;
  s.sent_bytes += bytes;
}

void NetworkStats::record_dropped(wire::MessageType type) {
  by_type_[static_cast<size_t>(type)].dropped_count += 1;
}

void NetworkStats::record_delivered(wire::MessageType type) {
  by_type_[static_cast<size_t>(type)].delivered_count += 1;
}

const NetworkStats::TypeStats& NetworkStats::of(wire::MessageType type) const {
  return by_type_[static_cast<size_t>(type)];
}

uint64_t NetworkStats::total_sent_count() const {
  uint64_t total = 0;
  for (const auto& s : by_type_) total += s.sent_count;
  return total;
}

uint64_t NetworkStats::total_sent_bytes() const {
  uint64_t total = 0;
  for (const auto& s : by_type_) total += s.sent_bytes;
  return total;
}

uint64_t NetworkStats::total_dropped_count() const {
  uint64_t total = 0;
  for (const auto& s : by_type_) total += s.dropped_count;
  return total;
}

uint64_t NetworkStats::total_delivered_count() const {
  uint64_t total = 0;
  for (const auto& s : by_type_) total += s.delivered_count;
  return total;
}

void NetworkStats::record_wan(size_t bytes) {
  wan_sent_count_ += 1;
  wan_sent_bytes_ += bytes;
}

void NetworkStats::reset() {
  by_type_.fill(TypeStats{});
  wan_sent_bytes_ = 0;
  wan_sent_count_ = 0;
}

std::string NetworkStats::to_table() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-20s %10s %14s %9s %10s\n", "type",
                "sent", "bytes", "dropped", "delivered");
  out += line;
  for (int i = 0; i < wire::kMessageTypeCount; ++i) {
    const auto& s = by_type_[static_cast<size_t>(i)];
    if (s.sent_count == 0) continue;
    std::snprintf(line, sizeof(line), "%-20s %10llu %14llu %9llu %10llu\n",
                  wire::to_string(static_cast<wire::MessageType>(i)),
                  static_cast<unsigned long long>(s.sent_count),
                  static_cast<unsigned long long>(s.sent_bytes),
                  static_cast<unsigned long long>(s.dropped_count),
                  static_cast<unsigned long long>(s.delivered_count));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-20s %10llu %14llu\n", "TOTAL",
                static_cast<unsigned long long>(total_sent_count()),
                static_cast<unsigned long long>(total_sent_bytes()));
  out += line;
  return out;
}

Network::Network(sim::Simulator& sim, NetworkConfig config)
    : sim_(sim), config_(config),
      duplication_rate_(config.duplication_rate) {
  PAHOEHOE_CHECK(config_.min_latency >= 0 &&
                 config_.min_latency <= config_.max_latency);
}

void Network::register_node(NodeId id, MessageHandler* handler) {
  PAHOEHOE_CHECK(id.valid() && handler != nullptr);
  PAHOEHOE_CHECK_MSG(handlers_.emplace(id, handler).second,
                     "node id registered twice");
}

void Network::add_fault(std::shared_ptr<FaultRule> rule) {
  PAHOEHOE_CHECK(rule != nullptr);
  faults_.push_back(std::move(rule));
}

void Network::clear_faults() { faults_.clear(); }

SimTime Network::sample_latency() {
  return sim_.rng().uniform_int(config_.min_latency, config_.max_latency);
}

void Network::send(NodeId from, NodeId to, wire::MessageType type,
                   Bytes payload) {
  obs::ProfScope prof("net_send");
  PAHOEHOE_CHECK_MSG(handlers_.count(to) > 0, "send to unregistered node");
  wire::Envelope env{from, to, type, std::move(payload)};
  env.span = telemetry_.spans.on_send(from, to, wire::to_string(type));
  stats_.record_sent(type, env.wire_size());
  record_node_sent(from, type, env.wire_size());
  tracer_.record(sim_.now(), TraceEvent::kSend, from, to, type,
                 env.wire_size());
  if (dc_resolver_) {
    const DataCenterId from_dc = dc_resolver_(from);
    const DataCenterId to_dc = dc_resolver_(to);
    if (from_dc.valid() && to_dc.valid() && from_dc != to_dc) {
      stats_.record_wan(env.wire_size());
    }
  }

  for (const auto& rule : faults_) {
    if (rule->should_drop(from, to, type, sim_.now(), sim_.rng())) {
      stats_.record_dropped(type);
      tracer_.record(sim_.now(), TraceEvent::kDrop, from, to, type,
                     env.wire_size());
      telemetry_.spans.on_drop(env.span);
      return;
    }
  }

  const bool duplicate =
      duplication_rate_ > 0.0 && sim_.rng().chance(duplication_rate_);
  const int copies = duplicate ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    const SimTime latency = sample_latency();
    // The envelope is shared by reference count so a duplicated delivery
    // does not copy a fragment payload.
    auto shared = std::make_shared<wire::Envelope>(env);
    sim_.schedule_after(latency, [this, shared] { deliver(*shared); });
  }
}

void Network::record_node_sent(NodeId from, wire::MessageType type,
                               size_t bytes) {
  SentCounters& slot = sent_counters_[from][static_cast<size_t>(type)];
  if (slot.count == nullptr) {
    const obs::Labels labels = {{"node", pahoehoe::to_string(from)},
                                {"type", wire::to_string(type)}};
    slot.count = &telemetry_.metrics.counter("net_sent_count", labels);
    slot.bytes = &telemetry_.metrics.counter("net_sent_bytes", labels);
  }
  slot.count->inc();
  slot.bytes->inc(bytes);
}

std::string Network::trace_consistency_report() const {
  if (!tracer_.enabled()) return {};
  std::string out;
  char line[128];
  const auto check = [&](const char* what, uint64_t stats_total,
                         uint64_t trace_total) {
    if (stats_total == trace_total) return;
    std::snprintf(line, sizeof(line), "%s: stats=%llu trace=%llu\n", what,
                  static_cast<unsigned long long>(stats_total),
                  static_cast<unsigned long long>(trace_total));
    out += line;
  };
  check("sent count", stats_.total_sent_count(),
        tracer_.total_count(TraceEvent::kSend));
  check("sent bytes", stats_.total_sent_bytes(),
        tracer_.total_bytes(TraceEvent::kSend));
  check("dropped count", stats_.total_dropped_count(),
        tracer_.total_count(TraceEvent::kDrop));
  check("delivered count", stats_.total_delivered_count(),
        tracer_.total_count(TraceEvent::kDeliver));
  return out;
}

void Network::deliver(const wire::Envelope& env) {
  // Covers the receiving node's handler too — "delivery" wall time is the
  // cost of acting on the message, not just the queue pop.
  obs::ProfScope prof("net_deliver");
  auto it = handlers_.find(env.to);
  PAHOEHOE_CHECK(it != handlers_.end());
  stats_.record_delivered(env.type);
  tracer_.record(sim_.now(), TraceEvent::kDeliver, env.from, env.to,
                 env.type, env.wire_size());
  // Open the message's span as the ambient scope so everything the handler
  // sends chains to this delivery (cross-node causal edge).
  const obs::SpanTracer::Scope span_scope =
      telemetry_.spans.deliver_scope(env.span);
  it->second->handle(env);
}

}  // namespace pahoehoe::net
