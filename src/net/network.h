// Simulated point-to-point network (paper §5.1).
//
// Every message is delivered with latency drawn uniformly from
// [10 ms, 30 ms] unless a fault rule drops it. Fault rules compose: node
// blackouts (crash/partition emulation — "drop all messages in and out of
// that simulated node"), group partitions, and uniform iid loss. Channels
// may also duplicate messages with a configurable probability (the system
// model assumes fair losses and *bounded duplication*).
//
// Statistics record, per message type, the messages and bytes *sent* —
// dropped messages count as sent, matching the paper's cost metric.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "net/trace.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"
#include "wire/messages.h"

namespace pahoehoe::net {

/// Implemented by every node that can receive messages.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void handle(const wire::Envelope& env) = 0;
};

/// Decides whether a given message is dropped. Rules are consulted at send
/// time; any rule voting "drop" drops the message.
class FaultRule {
 public:
  virtual ~FaultRule() = default;
  virtual bool should_drop(NodeId from, NodeId to, wire::MessageType type,
                           SimTime now, Rng& rng) = 0;
};

/// Drops all traffic in and out of one node during [start, end).
class NodeBlackout : public FaultRule {
 public:
  NodeBlackout(NodeId node, SimTime start, SimTime end)
      : node_(node), start_(start), end_(end) {}
  bool should_drop(NodeId from, NodeId to, wire::MessageType type,
                   SimTime now, Rng& rng) override;

 private:
  NodeId node_;
  SimTime start_;
  SimTime end_;
};

/// Drops all traffic crossing the boundary of `group` during [start, end).
class Partition : public FaultRule {
 public:
  Partition(std::unordered_set<NodeId> group, SimTime start, SimTime end)
      : group_(std::move(group)), start_(start), end_(end) {}
  bool should_drop(NodeId from, NodeId to, wire::MessageType type,
                   SimTime now, Rng& rng) override;

 private:
  std::unordered_set<NodeId> group_;
  SimTime start_;
  SimTime end_;
};

/// Drops each message independently with probability `rate` (system-wide).
class UniformLoss : public FaultRule {
 public:
  explicit UniformLoss(double rate) : rate_(rate) {}
  bool should_drop(NodeId from, NodeId to, wire::MessageType type,
                   SimTime now, Rng& rng) override;

 private:
  double rate_;
};

/// Drops every message of one type (targeted fault injection in tests:
/// e.g. "every AMR indication is lost").
class TypedDrop : public FaultRule {
 public:
  explicit TypedDrop(wire::MessageType type) : type_(type) {}
  bool should_drop(NodeId from, NodeId to, wire::MessageType type,
                   SimTime now, Rng& rng) override;

 private:
  wire::MessageType type_;
};

/// Per-message-type counters. Indexed by wire::MessageType.
class NetworkStats {
 public:
  struct TypeStats {
    uint64_t sent_count = 0;
    uint64_t sent_bytes = 0;
    uint64_t dropped_count = 0;
    uint64_t delivered_count = 0;
  };

  void record_sent(wire::MessageType type, size_t bytes);
  void record_dropped(wire::MessageType type);
  void record_delivered(wire::MessageType type);
  void record_wan(size_t bytes);

  const TypeStats& of(wire::MessageType type) const;
  uint64_t total_sent_count() const;
  uint64_t total_sent_bytes() const;
  uint64_t total_dropped_count() const;
  uint64_t total_delivered_count() const;
  /// Bytes sent on messages crossing a data-center boundary (requires a
  /// dc resolver on the Network).
  uint64_t wan_sent_bytes() const { return wan_sent_bytes_; }
  uint64_t wan_sent_count() const { return wan_sent_count_; }
  void reset();

  /// Multi-line human-readable table of nonzero rows.
  std::string to_table() const;

 private:
  std::array<TypeStats, wire::kMessageTypeCount> by_type_{};
  uint64_t wan_sent_bytes_ = 0;
  uint64_t wan_sent_count_ = 0;
};

struct NetworkConfig {
  SimTime min_latency = 10 * kMicrosPerMilli;
  SimTime max_latency = 30 * kMicrosPerMilli;
  /// Probability that a delivered message is delivered twice (bounded
  /// duplication from the system model; defaults off).
  double duplication_rate = 0.0;
};

class Network {
 public:
  Network(sim::Simulator& sim, NetworkConfig config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register the handler for a node id. A node must be registered before
  /// anyone sends to it.
  void register_node(NodeId id, MessageHandler* handler);

  void add_fault(std::shared_ptr<FaultRule> rule);
  void clear_faults();

  /// Install a node → data-center resolver so stats can attribute WAN
  /// (cross-data-center) traffic. Typically set by the Cluster builder.
  void set_dc_resolver(std::function<DataCenterId(NodeId)> resolver) {
    dc_resolver_ = std::move(resolver);
  }

  /// Serialize-and-send: records stats, applies fault rules, samples
  /// latency, and schedules delivery.
  void send(NodeId from, NodeId to, wire::MessageType type, Bytes payload);

  /// Override the duplication rate at runtime (duplication-burst fault
  /// injection). `reset_duplication_rate` restores the configured base.
  void set_duplication_rate(double rate) { duplication_rate_ = rate; }
  void reset_duplication_rate() {
    duplication_rate_ = config_.duplication_rate;
  }
  double duplication_rate() const { return duplication_rate_; }

  NetworkStats& stats() { return stats_; }
  const NetworkStats& stats() const { return stats_; }
  /// Message tracing (off by default; see net/trace.h).
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  /// Run-wide telemetry bundle (metric registry + time-to-AMR tracker).
  /// Owned here so every server and the harness share one registry and
  /// cached metric handles can never dangle.
  obs::Telemetry& telemetry() { return telemetry_; }
  const obs::Telemetry& telemetry() const { return telemetry_; }
  sim::Simulator& simulator() { return sim_; }

  /// Reconcile NetworkStats against the tracer's cumulative tallies. Empty
  /// string when consistent (or tracing is off); otherwise one line per
  /// drifted total. Meaningful only when tracing covered the whole run.
  std::string trace_consistency_report() const;

 private:
  void deliver(const wire::Envelope& env);
  SimTime sample_latency();
  void record_node_sent(NodeId from, wire::MessageType type, size_t bytes);

  sim::Simulator& sim_;
  NetworkConfig config_;
  double duplication_rate_ = 0.0;
  std::unordered_map<NodeId, MessageHandler*> handlers_;
  std::vector<std::shared_ptr<FaultRule>> faults_;
  std::function<DataCenterId(NodeId)> dc_resolver_;
  NetworkStats stats_;
  Tracer tracer_;
  obs::Telemetry telemetry_;
  /// Cached registry handles for the per-(node, type) sent series, so the
  /// send hot path pays one hash lookup instead of a labeled map lookup.
  struct SentCounters {
    obs::Counter* count = nullptr;
    obs::Counter* bytes = nullptr;
  };
  std::unordered_map<NodeId,
                     std::array<SentCounters, wire::kMessageTypeCount>>
      sent_counters_;
};

/// Typed send helper for messages with a static kType.
template <typename M>
void send_message(Network& net, NodeId from, NodeId to, const M& msg) {
  net.send(from, to, M::kType, msg.encode());
}

/// DecideLocsReq's type depends on the sender role (proxy vs FS).
inline void send_message(Network& net, NodeId from, NodeId to,
                         const wire::DecideLocsReq& msg) {
  net.send(from, to, msg.type(), msg.encode());
}

}  // namespace pahoehoe::net
