#include "net/trace.h"

#include <cstdio>

namespace pahoehoe::net {

const char* to_string(TraceEvent event) {
  switch (event) {
    case TraceEvent::kSend:
      return "SEND";
    case TraceEvent::kDrop:
      return "DROP";
    case TraceEvent::kDeliver:
      return "DLVR";
  }
  return "?";
}

std::string TraceRecord::to_line() const {
  char line[128];
  std::snprintf(line, sizeof(line), "%12.6fs %s %-5s -> %-5s %-18s %6u B",
                static_cast<double>(time) / kMicrosPerSecond,
                to_string(event), pahoehoe::to_string(from).c_str(),
                pahoehoe::to_string(to).c_str(), wire::to_string(type),
                wire_bytes);
  return line;
}

void Tracer::enable(size_t capacity) {
  enabled_ = true;
  capacity_ = capacity == 0 ? 1 : capacity;
}

void Tracer::disable() { enabled_ = false; }

void Tracer::record(SimTime time, TraceEvent event, NodeId from, NodeId to,
                    wire::MessageType type, size_t wire_bytes) {
  if (!enabled_) return;
  total_count_[static_cast<size_t>(event)] += 1;
  total_bytes_[static_cast<size_t>(event)] += wire_bytes;
  if (records_.size() == capacity_) {
    records_.pop_front();
    ++overflowed_;
  }
  records_.push_back(TraceRecord{time, event, from, to, type,
                                 static_cast<uint32_t>(wire_bytes)});
}

void Tracer::clear() {
  records_.clear();
  overflowed_ = 0;
  total_count_.fill(0);
  total_bytes_.fill(0);
}

std::vector<TraceRecord> Tracer::filter(
    const std::function<bool(const TraceRecord&)>& predicate) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& record : records_) {
    if (predicate(record)) out.push_back(record);
  }
  return out;
}

std::vector<TraceRecord> Tracer::for_node(NodeId node) const {
  return filter([node](const TraceRecord& record) {
    return record.from == node || record.to == node;
  });
}

std::string Tracer::dump(size_t max_lines) const {
  std::string out;
  const size_t start =
      records_.size() > max_lines ? records_.size() - max_lines : 0;
  for (size_t i = start; i < records_.size(); ++i) {
    out += records_[i].to_line();
    out += '\n';
  }
  return out;
}

}  // namespace pahoehoe::net
