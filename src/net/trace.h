// Structured message tracing.
//
// When enabled, the Network records every send/drop/deliver into a bounded
// ring buffer. Used for debugging protocol issues ("what did this FS
// actually receive before it gave up?"), for trace-equality determinism
// tests, and by scenario_cli --trace.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "wire/messages.h"

namespace pahoehoe::net {

enum class TraceEvent : uint8_t {
  kSend = 0,
  kDrop = 1,     ///< a fault rule consumed the message at send time
  kDeliver = 2,
};

const char* to_string(TraceEvent event);

struct TraceRecord {
  SimTime time = 0;
  TraceEvent event = TraceEvent::kSend;
  NodeId from;
  NodeId to;
  wire::MessageType type{};
  uint32_t wire_bytes = 0;

  std::string to_line() const;
  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Bounded ring buffer of trace records. Disabled (and free) by default.
class Tracer {
 public:
  /// Start recording, keeping at most `capacity` most-recent records.
  void enable(size_t capacity = 65536);
  void disable();
  bool enabled() const { return enabled_; }

  void record(SimTime time, TraceEvent event, NodeId from, NodeId to,
              wire::MessageType type, size_t wire_bytes);

  const std::deque<TraceRecord>& records() const { return records_; }
  /// Records discarded because the ring was full.
  uint64_t overflowed() const { return overflowed_; }
  /// Cumulative tallies per event kind since enable()/clear(), unaffected
  /// by ring eviction. These are the reconciliation anchor against
  /// NetworkStats: when tracing covers the whole run, total_count(kSend)
  /// must equal the stats' total sent count (checked by the harness).
  uint64_t total_count(TraceEvent event) const {
    return total_count_[static_cast<size_t>(event)];
  }
  uint64_t total_bytes(TraceEvent event) const {
    return total_bytes_[static_cast<size_t>(event)];
  }
  void clear();

  /// Records matching a predicate (e.g., one node's conversation).
  std::vector<TraceRecord> filter(
      const std::function<bool(const TraceRecord&)>& predicate) const;
  /// All traffic seen by one node (as sender or receiver).
  std::vector<TraceRecord> for_node(NodeId node) const;

  /// The most recent `max_lines` records, one line each.
  std::string dump(size_t max_lines = 100) const;

 private:
  bool enabled_ = false;
  size_t capacity_ = 0;
  uint64_t overflowed_ = 0;
  std::array<uint64_t, 3> total_count_{};
  std::array<uint64_t, 3> total_bytes_{};
  std::deque<TraceRecord> records_;
};

}  // namespace pahoehoe::net
