#include "chaos/shrink.h"

#include <algorithm>

namespace pahoehoe::chaos {

namespace {

using core::FaultSpec;

/// One deterministic probe: does `schedule` still break an invariant?
struct Prober {
  core::RunConfig config;
  int runs = 0;
  int max_runs;
  core::AuditReport last_failing_audit;
  core::AuditReport last_audit;

  bool budget_left() const { return runs < max_runs; }

  bool fails(const std::vector<FaultSpec>& schedule) {
    ++runs;
    config.faults = schedule;
    core::RunResult result = core::run_experiment(config);
    last_audit = result.audit;
    if (!result.audit.passed()) {
      last_failing_audit = result.audit;
      return true;
    }
    return false;
  }
};

/// ddmin-style chunk removal: try dropping chunks of decreasing size until
/// no single fault can be removed.
std::vector<FaultSpec> minimize_faults(Prober& prober,
                                       std::vector<FaultSpec> schedule) {
  size_t chunk = schedule.size() / 2;
  if (chunk == 0) chunk = 1;
  while (chunk >= 1) {
    bool removed_any = false;
    for (size_t i = 0; i + 1 <= schedule.size() && schedule.size() > 1;) {
      if (!prober.budget_left()) return schedule;
      const size_t len = std::min(chunk, schedule.size() - i);
      std::vector<FaultSpec> candidate;
      candidate.reserve(schedule.size() - len);
      candidate.insert(candidate.end(), schedule.begin(),
                       schedule.begin() + static_cast<long>(i));
      candidate.insert(candidate.end(),
                       schedule.begin() + static_cast<long>(i + len),
                       schedule.end());
      if (!candidate.empty() && prober.fails(candidate)) {
        schedule = std::move(candidate);
        removed_any = true;
        // Same index now holds the next chunk; do not advance.
      } else {
        i += len;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;  // fixpoint at granularity 1
    } else {
      chunk /= 2;
    }
  }
  return schedule;
}

/// Parameter shrinking: halve windows (toward min_len) and rates (toward a
/// floor) as long as the smaller fault still reproduces the failure.
std::vector<FaultSpec> minimize_params(Prober& prober,
                                       std::vector<FaultSpec> schedule) {
  constexpr SimTime kMinWindow = 1 * kMicrosPerSecond;
  constexpr double kMinRate = 0.01;
  for (size_t i = 0; i < schedule.size(); ++i) {
    // Halve this fault's window repeatedly while the failure persists.
    for (int step = 0; step < 16; ++step) {
      if (!prober.budget_left()) return schedule;
      FaultSpec& spec = schedule[i];
      std::vector<FaultSpec> candidate = schedule;
      bool changed = false;
      const SimTime window = spec.end - spec.start;
      if (window > kMinWindow) {
        candidate[i].end = spec.start + std::max(kMinWindow, window / 2);
        changed = true;
      }
      if (spec.rate > kMinRate) {
        candidate[i].rate = std::max(kMinRate, spec.rate / 2);
        changed = true;
      }
      if (!changed) break;
      if (prober.fails(candidate)) {
        schedule = std::move(candidate);
      } else {
        break;
      }
    }
  }
  return schedule;
}

}  // namespace

ShrinkResult shrink_schedule(core::RunConfig config,
                             std::vector<core::FaultSpec> schedule,
                             const ShrinkOptions& options) {
  Prober prober{std::move(config), 0, options.max_runs, {}, {}};

  ShrinkResult result;
  if (!prober.fails(schedule)) {
    // Nothing to shrink: the full schedule passes.
    result.schedule = std::move(schedule);
    result.runs = prober.runs;
    result.audit = prober.last_audit;
    return result;
  }

  schedule = minimize_faults(prober, std::move(schedule));
  if (options.shrink_windows) {
    schedule = minimize_params(prober, std::move(schedule));
  }

  result.schedule = std::move(schedule);
  result.runs = prober.runs;
  result.audit = prober.last_failing_audit;
  return result;
}

}  // namespace pahoehoe::chaos
