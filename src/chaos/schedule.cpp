#include "chaos/schedule.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "wire/serde.h"

namespace pahoehoe::chaos {

namespace {

using core::FaultSpec;

void check(bool ok, const std::string& message) {
  if (!ok) {
    throw std::invalid_argument("ScheduleOptions: " + message);
  }
}

SimTime window_start(Rng& rng, const ScheduleOptions& options) {
  const SimTime latest =
      std::max<SimTime>(0, options.fault_horizon - options.min_window);
  return rng.uniform_int(0, latest);
}

SimTime window_len(Rng& rng, const ScheduleOptions& options) {
  return rng.uniform_int(options.min_window, options.max_window);
}

}  // namespace

void validate(const ScheduleOptions& options) {
  check(options.intensity >= 0.0,
        "intensity must be >= 0, got " + std::to_string(options.intensity));
  check(options.max_loss_rate >= 0.0 && options.max_loss_rate <= 1.0,
        "max_loss_rate must be in [0, 1], got " +
            std::to_string(options.max_loss_rate));
  check(options.max_duplication_rate >= 0.0 &&
            options.max_duplication_rate <= 1.0,
        "max_duplication_rate must be in [0, 1], got " +
            std::to_string(options.max_duplication_rate));
  check(options.min_window >= 0,
        "min_window must be >= 0, got " +
            std::to_string(options.min_window));
  check(options.min_window <= options.max_window,
        "min_window (" + std::to_string(options.min_window) +
            ") must be <= max_window (" +
            std::to_string(options.max_window) + ")");
  check(options.fault_horizon > 0,
        "fault_horizon must be > 0, got " +
            std::to_string(options.fault_horizon));
}

std::vector<FaultSpec> generate_schedule(uint64_t seed,
                                         const core::ClusterTopology& topology,
                                         const ScheduleOptions& options) {
  validate(options);
  // Derive an independent stream from the run seed so the schedule does not
  // correlate with in-run randomness (latency, jitter) for the same seed.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);

  // Weighted kind pool from the enabled families. Corruption appears twice:
  // it is the fault the storage integrity machinery exists for, so sweeps
  // should hit it often.
  std::vector<FaultSpec::Kind> pool;
  if (options.blackouts) {
    pool.push_back(FaultSpec::Kind::kFsBlackout);
    pool.push_back(FaultSpec::Kind::kKlsBlackout);
  }
  if (options.partitions) pool.push_back(FaultSpec::Kind::kDcPartition);
  if (options.loss) pool.push_back(FaultSpec::Kind::kUniformLoss);
  if (options.crashes) {
    pool.push_back(FaultSpec::Kind::kFsCrash);
    pool.push_back(FaultSpec::Kind::kKlsCrash);
  }
  if (options.corruption) {
    pool.push_back(FaultSpec::Kind::kFragCorrupt);
    pool.push_back(FaultSpec::Kind::kFragCorrupt);
  }
  if (options.proxy_crashes && topology.num_proxies > 0) {
    pool.push_back(FaultSpec::Kind::kProxyCrash);
  }
  if (options.duplication) {
    pool.push_back(FaultSpec::Kind::kDuplicationBurst);
  }
  if (options.disk_destroys) {
    pool.push_back(FaultSpec::Kind::kDiskDestroy);
  }

  std::vector<FaultSpec> schedule;
  if (pool.empty()) return schedule;

  const int num_faults = std::max(
      1, static_cast<int>(std::lround(options.intensity * 6.0)));
  bool loss_used = false;  // iid loss is whole-run; one per schedule
  for (int i = 0; i < num_faults; ++i) {
    const FaultSpec::Kind kind = pool[static_cast<size_t>(
        rng.uniform_int(0, static_cast<int64_t>(pool.size()) - 1))];
    const int dc = static_cast<int>(rng.uniform_int(0, topology.num_dcs - 1));
    switch (kind) {
      case FaultSpec::Kind::kFsBlackout: {
        const int index =
            static_cast<int>(rng.uniform_int(0, topology.fs_per_dc - 1));
        const SimTime start = window_start(rng, options);
        schedule.push_back(FaultSpec::fs_blackout(
            dc, index, start, start + window_len(rng, options)));
        break;
      }
      case FaultSpec::Kind::kKlsBlackout: {
        const int index =
            static_cast<int>(rng.uniform_int(0, topology.kls_per_dc - 1));
        const SimTime start = window_start(rng, options);
        schedule.push_back(FaultSpec::kls_blackout(
            dc, index, start, start + window_len(rng, options)));
        break;
      }
      case FaultSpec::Kind::kDcPartition: {
        const SimTime start = window_start(rng, options);
        schedule.push_back(FaultSpec::dc_partition(
            dc, start, start + window_len(rng, options)));
        break;
      }
      case FaultSpec::Kind::kUniformLoss: {
        if (loss_used) break;  // skip; composing loss rates multiplies drops
        loss_used = true;
        const double rate =
            0.01 + rng.uniform01() * (options.max_loss_rate - 0.01);
        schedule.push_back(FaultSpec::uniform_loss(rate));
        break;
      }
      case FaultSpec::Kind::kFsCrash: {
        const int index =
            static_cast<int>(rng.uniform_int(0, topology.fs_per_dc - 1));
        const SimTime start = window_start(rng, options);
        schedule.push_back(FaultSpec::fs_crash(
            dc, index, start, start + window_len(rng, options)));
        break;
      }
      case FaultSpec::Kind::kKlsCrash: {
        const int index =
            static_cast<int>(rng.uniform_int(0, topology.kls_per_dc - 1));
        const SimTime start = window_start(rng, options);
        schedule.push_back(FaultSpec::kls_crash(
            dc, index, start, start + window_len(rng, options)));
        break;
      }
      case FaultSpec::Kind::kFragCorrupt: {
        const int index =
            static_cast<int>(rng.uniform_int(0, topology.fs_per_dc - 1));
        // Not before 30 s: give the workload a chance to store something.
        const SimTime at =
            rng.uniform_int(30 * kMicrosPerSecond, options.fault_horizon);
        schedule.push_back(FaultSpec::frag_corrupt(dc, index, at));
        break;
      }
      case FaultSpec::Kind::kProxyCrash: {
        const int index =
            static_cast<int>(rng.uniform_int(0, topology.num_proxies - 1));
        const SimTime start = window_start(rng, options);
        schedule.push_back(FaultSpec::proxy_crash(
            index, start, start + window_len(rng, options)));
        break;
      }
      case FaultSpec::Kind::kDuplicationBurst: {
        const double rate =
            0.05 + rng.uniform01() * (options.max_duplication_rate - 0.05);
        const SimTime start = window_start(rng, options);
        schedule.push_back(FaultSpec::duplication_burst(
            rate, start, start + window_len(rng, options)));
        break;
      }
      case FaultSpec::Kind::kDiskDestroy: {
        const int index =
            static_cast<int>(rng.uniform_int(0, topology.fs_per_dc - 1));
        const int disk =
            static_cast<int>(rng.uniform_int(0, topology.disks_per_fs - 1));
        // Not before 30 s: give the workload a chance to store something.
        const SimTime at =
            rng.uniform_int(30 * kMicrosPerSecond, options.fault_horizon);
        schedule.push_back(FaultSpec::disk_destroy(dc, index, disk, at));
        break;
      }
    }
  }
  return schedule;
}

Bytes encode_schedule(const std::vector<FaultSpec>& schedule) {
  wire::Writer w;
  w.u32(static_cast<uint32_t>(schedule.size()));
  for (const FaultSpec& spec : schedule) {
    w.u8(static_cast<uint8_t>(spec.kind));
    w.i64(spec.dc);
    w.i64(spec.index_in_dc);
    w.i64(spec.disk);
    w.i64(spec.start);
    w.i64(spec.end);
    w.u64(std::bit_cast<uint64_t>(spec.rate));
  }
  return std::move(w).take();
}

std::vector<FaultSpec> decode_schedule(const Bytes& data) {
  wire::Reader r(data);
  const uint32_t count = r.u32();
  std::vector<FaultSpec> schedule;
  schedule.reserve(std::min<uint32_t>(count, 1024));
  for (uint32_t i = 0; i < count; ++i) {
    FaultSpec spec;
    const uint8_t kind = r.u8();
    if (kind >= FaultSpec::kKindCount) {
      throw wire::WireError("bad FaultSpec kind");
    }
    spec.kind = static_cast<FaultSpec::Kind>(kind);
    spec.dc = static_cast<int>(r.i64());
    spec.index_in_dc = static_cast<int>(r.i64());
    spec.disk = static_cast<int>(r.i64());
    spec.start = r.i64();
    spec.end = r.i64();
    spec.rate = std::bit_cast<double>(r.u64());
    schedule.push_back(spec);
  }
  r.expect_exhausted();
  return schedule;
}

std::string format_repro(const std::vector<FaultSpec>& schedule) {
  std::string out = "config.faults = {\n";
  for (const FaultSpec& spec : schedule) {
    out += "    ";
    out += core::to_repro_string(spec);
    out += ",\n";
  }
  out += "};\n";
  return out;
}

core::RunConfig chaos_default_config() {
  core::RunConfig config;
  config.topology = core::ClusterTopology{};  // 2 DCs x (2 KLS + 3 FS)

  // Small objects keep a 50-seed sweep fast; the invariants do not care
  // about fragment size.
  config.workload.num_puts = 25;
  config.workload.value_size = 16 * 1024;
  config.workload.policy = Policy{};
  config.workload.retry_failed = true;
  config.workload.max_attempts = 20;
  config.workload.retry_delay = 5 * kMicrosPerSecond;
  // Longer than the proxy's own put/get timeouts, so it only fires when the
  // proxy crashed and lost the operation.
  config.workload.client_timeout = 15 * kMicrosPerSecond;
  config.workload.get_fraction = 0.5;
  config.workload.get_delay = 30 * kMicrosPerSecond;

  config.convergence = core::ConvergenceOptions::all_opts();
  // Scrub-and-repair: silent corruption is only ever noticed by the
  // periodic hash scrub once a version has left the work-lists.
  config.convergence.scrub_interval = 5LL * 60 * kMicrosPerSecond;
  // Retry often enough that convergence finishes well inside the horizon.
  config.convergence.backoff_max = 10LL * 60 * kMicrosPerSecond;
  // Non-durable versions (failed puts) can never converge; give up on them
  // inside the horizon so quiescence is reachable. Durable-class versions
  // are never dropped — scrub can repair them no matter how old — which is
  // what makes late-corruption schedules (mutated past the fault horizon)
  // auditable instead of trading a repair for a give-up violation.
  config.convergence.giveup_age = 2LL * 3600 * kMicrosPerSecond;
  config.convergence.giveup_age_durable =
      core::ConvergenceOptions::kNeverGiveUp;

  config.max_sim_time = 12LL * 3600 * kMicrosPerSecond;
  config.event_budget = 20'000'000;
  config.message_budget = 2'000'000;
  return config;
}

}  // namespace pahoehoe::chaos
