// Randomized fault-schedule generation (the chaos sweep's front half).
//
// A schedule is an ordinary std::vector<core::FaultSpec>, so anything the
// generator produces can be pasted back into a RunConfig verbatim — the
// shrinker's minimal repros print as compilable FaultSpec factory calls.
// Schedules compose every fault kind the harness knows: blackouts,
// partitions, iid loss, crash-recover (FS/KLS/proxy), silent fragment
// corruption, and duplication bursts. Generation is a pure function of
// (seed, topology, options); the same inputs always yield the same
// schedule, which is what makes sweeps and shrinking reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/harness.h"

namespace pahoehoe::chaos {

/// Knobs for the random schedule generator. `intensity` scales the number
/// of faults injected; the family switches let a sweep target one failure
/// mode (e.g. corruption only) without changing the schedule shape of the
/// families that stay enabled.
struct ScheduleOptions {
  double intensity = 1.0;  ///< ~6 faults at 1.0, scaled linearly

  /// Every fault starts within [0, fault_horizon); windowed faults run at
  /// most max_window past their start. Keep the horizon well short of the
  /// run's max_sim_time so convergence has quiet time to finish.
  SimTime fault_horizon = 30LL * 60 * kMicrosPerSecond;
  SimTime min_window = 30LL * kMicrosPerSecond;
  SimTime max_window = 10LL * 60 * kMicrosPerSecond;
  double max_loss_rate = 0.20;         ///< whole-run iid loss cap
  double max_duplication_rate = 0.50;  ///< duplication-burst cap

  // Fault-family switches.
  bool blackouts = true;
  bool partitions = true;
  bool loss = true;
  bool crashes = true;       ///< FS and KLS crash-recover
  bool corruption = true;    ///< silent fragment corruption
  bool proxy_crashes = true;
  bool duplication = true;
  bool disk_destroys = true;  ///< wipe one disk of an FS (bulk data loss)
};

/// Reject degenerate generator knobs with a clear message: negative
/// intensity, loss/duplication caps outside [0, 1], min_window >
/// max_window, or a non-positive fault horizon. Throws
/// std::invalid_argument; called by generate_schedule.
void validate(const ScheduleOptions& options);

/// Compose a random fault schedule for `topology`. Deterministic in
/// (seed, topology, options). Throws std::invalid_argument on invalid
/// options (see validate()).
std::vector<core::FaultSpec> generate_schedule(
    uint64_t seed, const core::ClusterTopology& topology,
    const ScheduleOptions& options = {});

/// Binary serialization of a schedule (shrinker repro files, fuzz tests).
/// decode throws wire::WireError on truncated or malformed input.
Bytes encode_schedule(const std::vector<core::FaultSpec>& schedule);
std::vector<core::FaultSpec> decode_schedule(const Bytes& data);

/// Ready-to-paste C++ initializer for RunConfig::faults.
std::string format_repro(const std::vector<core::FaultSpec>& schedule);

/// RunConfig tuned for chaos sweeps: the paper topology with a small, fast
/// workload (25 puts of 16 KiB with retries, client-side timeouts, and
/// read-back verification), all convergence optimizations, periodic
/// scrubbing so corruption gets repaired, a give-up age of two hours so
/// hopeless versions leave the work-lists inside the 12-hour horizon, and
/// event/message budgets armed.
core::RunConfig chaos_default_config();

}  // namespace pahoehoe::chaos
