#include "chaos/search.h"

#include <algorithm>
#include <cstdio>

#include "common/parallel.h"
#include "common/rng.h"
#include "obs/prof.h"
#include "wire/serde.h"

namespace pahoehoe::chaos {

namespace {

/// Everything one candidate run produces, filled by a worker into its slot
/// and consumed by the sequential merge.
struct CandidateOutcome {
  uint64_t seed = 0;  ///< simulation seed the candidate ran under
  std::vector<core::FaultSpec> schedule;
  Coverage coverage;
  bool passed = true;
  core::AuditReport audit;
  std::vector<core::FaultSpec> shrunk;
  int shrink_runs = 0;
  std::string forensics;
};

/// Same digest the sweep attaches to failures (kept textually identical so
/// forensics read the same across both drivers).
std::string build_forensics(const core::RunResult& run,
                            size_t trace_dump_lines) {
  const auto sum = [&run](const char* name) {
    return static_cast<unsigned long long>(run.metrics.counter_sum(name));
  };
  char line[256];
  std::snprintf(
      line, sizeof(line),
      "metrics: rounds=%llu steps=%llu amr_skips=%llu converged=%llu "
      "giveups=%llu backoffs=%llu scrub_repairs=%llu amr_backlog=%zu\n",
      sum("fs_rounds_total"), sum("fs_converge_steps_total"),
      sum("fs_amr_skips_total"), sum("fs_converged_total"),
      sum("fs_giveups_total"), sum("fs_recovery_backoffs_total"),
      sum("fs_scrub_repairs_total"), run.amr_backlog_final);
  std::string out = line;
  if (!run.trace_tail.empty()) {
    std::snprintf(line, sizeof(line),
                  "trace tail (last %zu lines, %llu overflowed):\n",
                  trace_dump_lines,
                  static_cast<unsigned long long>(run.trace_overflowed));
    out += line;
    out += run.trace_tail;
  }
  if (!run.span_forensics.empty()) {
    out += "span tree of first violating version:\n";
    out += run.span_forensics;
  }
  return out;
}

/// Per-candidate sub-seed: decorrelates (round, index) pairs from each
/// other and from the base seed's own schedule stream.
uint64_t candidate_seed(uint64_t base, int round, int index) {
  uint64_t h = base;
  h ^= 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(round);
  h *= 0xff51afd7ed558ccdULL;
  h ^= static_cast<uint64_t>(index) + 0x2545f4914f6cdd1dULL;
  h *= 0xc4ceb9fe1a85ec53ULL;
  return h;
}

/// The search's persistent state between rounds, updated only in the
/// sequential merge.
struct CorpusState {
  std::vector<CorpusEntry> entries;
  Coverage global;
  /// feature hash -> number of corpus entries whose signature contains it
  /// (rarity denominator for parent selection).
  std::map<uint64_t, int> feature_counts;

  /// Rarity weight: an entry scores the sum of 1/count over its features,
  /// so holders of features nobody else has dominate parent selection.
  double weight(const CorpusEntry& entry) const {
    double w = 0.0;
    for (const auto& [hash, name] : entry.coverage.features) {
      const auto it = feature_counts.find(hash);
      if (it != feature_counts.end() && it->second > 0) {
        // lint:float-ok(features is an ordered map, so the sum order is fixed)
        w += 1.0 / static_cast<double>(it->second);
      }
    }
    return w;
  }

  const CorpusEntry& select_parent(Rng& rng) const {
    double total = 0.0;
    // lint:float-ok(entries is a vector in admission order; sum order fixed)
    for (const CorpusEntry& e : entries) total += weight(e);
    if (total <= 0.0) return entries[0];
    double draw = rng.uniform01() * total;
    for (const CorpusEntry& e : entries) {
      // lint:float-ok(same fixed admission order as the total above)
      draw -= weight(e);
      if (draw <= 0.0) return e;
    }
    return entries.back();
  }

  void admit(CorpusEntry entry) {
    for (const auto& [hash, name] : entry.coverage.features) {
      ++feature_counts[hash];
    }
    entries.push_back(std::move(entry));
  }
};

}  // namespace

std::string SearchResult::summary() const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "chaos search: %d runs (+%d shrinking), %zu features, "
                "%zu corpus entries, %zu failures\n",
                runs, shrink_runs, coverage.size(), corpus.size(),
                failures.size());
  std::string out = line;

  out += "coverage growth (runs -> features):\n";
  for (const SearchRound& point : growth) {
    std::snprintf(line, sizeof(line),
                  "  round %2d: %4d runs  %4zu features  %3zu corpus  "
                  "%d failures\n",
                  point.round, point.runs, point.features, point.corpus,
                  point.failures);
    out += line;
  }

  out += "rare features: ";
  bool any = false;
  for (const char* rare :
       {kFeatureCollision, kFeatureSiblingRecovery, kFeatureDurableScrubLate,
        kFeatureScrubPastGiveup}) {
    if (!coverage.contains(rare)) continue;
    if (any) out += ", ";
    out += rare;
    any = true;
  }
  if (!any) out += "(none reached)";
  out += "\n";

  for (const SearchFailure& failure : failures) {
    std::snprintf(line, sizeof(line),
                  "FAILURE (round %d, run seed %llu, %zu faults, "
                  "shrunk to %zu):\n",
                  failure.round,
                  static_cast<unsigned long long>(failure.seed),
                  failure.schedule.size(), failure.shrunk.size());
    out += line;
    out += failure.audit.to_string();
    if (!failure.new_features.empty()) {
      out += "newly reached features:\n";
      for (const std::string& name : failure.new_features) {
        out += "  " + name + "\n";
      }
    }
    out += failure.forensics;
    if (!failure.shrunk.empty()) {
      out += "minimal repro (run seed ";
      out += std::to_string(failure.seed);
      out += "):\n";
      out += format_repro(failure.shrunk);
    }
  }
  return out;
}

SearchResult run_search(core::RunConfig config, const SearchOptions& options) {
  const std::vector<core::FaultSpec> base_faults = config.faults;
  config.telemetry.trace_capacity = options.trace_capacity;
  config.telemetry.trace_dump_lines = options.trace_dump_lines;
  config.telemetry.spans = true;  // signatures need the span walk

  SearchResult result;
  CorpusState state;

  // One candidate run, worker-side: everything here is a pure function of
  // (schedule, run seed, config), so slots are independent of claim order.
  const auto run_candidate = [&](std::vector<core::FaultSpec> schedule,
                                 uint64_t run_seed) -> CandidateOutcome {
    CandidateOutcome outcome;
    outcome.seed = run_seed;
    core::RunConfig candidate_config = config;
    candidate_config.seed = run_seed;
    candidate_config.faults = base_faults;
    candidate_config.faults.insert(candidate_config.faults.end(),
                                   schedule.begin(), schedule.end());
    outcome.schedule = std::move(schedule);
    const core::RunResult run = core::run_experiment(candidate_config);
    outcome.coverage = extract_coverage(run, candidate_config);
    outcome.audit = run.audit;
    outcome.passed = run.audit.passed();
    if (!outcome.passed) {
      outcome.forensics =
          build_forensics(run, options.trace_dump_lines);
      if (options.shrink_failures) {
        ShrinkResult shrunk = shrink_schedule(
            candidate_config, candidate_config.faults, options.shrink);
        outcome.shrunk = std::move(shrunk.schedule);
        outcome.shrink_runs = shrunk.runs;
      }
    }
    return outcome;
  };

  // Sequential slot-order merge of one round's outcomes. This is the only
  // place corpus/coverage/failure state changes, so the search trajectory
  // is independent of worker scheduling.
  const auto merge_round = [&](int round,
                               std::vector<CandidateOutcome>& outcomes) {
    for (CandidateOutcome& outcome : outcomes) {
      ++result.runs;
      result.shrink_runs += outcome.shrink_runs;
      Coverage fresh;
      for (const auto& [hash, name] : outcome.coverage.features) {
        if (result.coverage.features.count(hash) == 0) {
          fresh.features.emplace(hash, name);
        }
      }
      result.coverage.merge(outcome.coverage);
      if (!outcome.passed) {
        SearchFailure failure;
        failure.round = round;
        failure.seed = outcome.seed;
        failure.schedule = outcome.schedule;
        failure.audit = std::move(outcome.audit);
        failure.shrunk = std::move(outcome.shrunk);
        failure.shrink_runs = outcome.shrink_runs;
        failure.new_features = fresh.names();
        failure.forensics = std::move(outcome.forensics);
        result.failures.push_back(std::move(failure));
      }
      if (!fresh.features.empty()) {
        CorpusEntry entry;
        entry.schedule = std::move(outcome.schedule);
        entry.coverage = std::move(outcome.coverage);
        entry.round = round;
        entry.new_features = fresh.features.size();
        state.admit(std::move(entry));
      }
    }
    SearchRound point;
    point.round = round;
    point.runs = result.runs;
    point.features = result.coverage.size();
    point.corpus = state.entries.size();
    point.failures = static_cast<int>(result.failures.size());
    result.growth.push_back(point);
    if (options.on_round) options.on_round(point);
  };

  // Round 0: the initial corpus (if any) plus uniformly generated seeds.
  std::vector<std::vector<core::FaultSpec>> candidates =
      options.initial_corpus;
  const int seed_corpus = std::max(1, options.seed_corpus);
  for (int i = 0; i < seed_corpus; ++i) {
    candidates.push_back(generate_schedule(
        options.base_seed + static_cast<uint64_t>(i), config.topology,
        options.schedule));
  }

  for (int round = 0; round <= options.rounds; ++round) {
    // One wall-clock phase per search round: breeding, the candidate runs
    // (inline when jobs <= 1; workers account to their own threads
    // otherwise), and the sequential merge.
    obs::ProfScope prof_round("chaos_search_round");
    if (round > 0) {
      // Breed this round's candidates from the corpus as it stood after
      // the previous round — fully determined before any worker runs.
      candidates.clear();
      std::vector<std::vector<core::FaultSpec>> donor_pool;
      donor_pool.reserve(state.entries.size());
      for (const CorpusEntry& e : state.entries) {
        donor_pool.push_back(e.schedule);
      }
      for (int i = 0; i < options.batch; ++i) {
        const uint64_t sub_seed =
            candidate_seed(options.base_seed, round, i);
        Rng select_rng(sub_seed);
        const CorpusEntry& parent = state.select_parent(select_rng);
        candidates.push_back(mutate_schedule(parent.schedule, donor_pool,
                                             sub_seed, config.topology,
                                             options.mutate));
      }
    }
    if (candidates.empty()) break;  // rounds > 0 with an unseedable corpus

    std::vector<CandidateOutcome> outcomes(candidates.size());
    parallel_for(static_cast<int>(candidates.size()), options.jobs,
                 [&](int i) {
                   outcomes[static_cast<size_t>(i)] = run_candidate(
                       candidates[static_cast<size_t>(i)],
                       candidate_seed(options.base_seed, round, i));
                 });
    merge_round(round, outcomes);
  }

  result.corpus = state.entries;
  return result;
}

Coverage uniform_coverage(core::RunConfig config, int runs,
                          uint64_t base_seed, const ScheduleOptions& schedule,
                          int jobs) {
  const std::vector<core::FaultSpec> base_faults = config.faults;
  config.telemetry.spans = true;
  std::vector<Coverage> slots(static_cast<size_t>(std::max(0, runs)));
  parallel_for(runs, jobs, [&](int i) {
    core::RunConfig seed_config = config;
    seed_config.seed = base_seed + static_cast<uint64_t>(i);
    seed_config.faults = base_faults;
    std::vector<core::FaultSpec> generated = generate_schedule(
        seed_config.seed, config.topology, schedule);
    seed_config.faults.insert(seed_config.faults.end(), generated.begin(),
                              generated.end());
    const core::RunResult run = core::run_experiment(seed_config);
    slots[static_cast<size_t>(i)] = extract_coverage(run, seed_config);
  });
  Coverage out;
  for (const Coverage& c : slots) out.merge(c);
  return out;
}

Bytes encode_corpus(const std::vector<std::vector<core::FaultSpec>>& corpus) {
  wire::Writer w;
  w.u32(static_cast<uint32_t>(corpus.size()));
  for (const std::vector<core::FaultSpec>& schedule : corpus) {
    w.bytes(encode_schedule(schedule));
  }
  return std::move(w).take();
}

std::vector<std::vector<core::FaultSpec>> decode_corpus(const Bytes& data) {
  wire::Reader r(data);
  const uint32_t count = r.u32();
  std::vector<std::vector<core::FaultSpec>> corpus;
  corpus.reserve(std::min<uint32_t>(count, 4096));
  for (uint32_t i = 0; i < count; ++i) {
    corpus.push_back(decode_schedule(r.bytes()));
  }
  r.expect_exhausted();
  return corpus;
}

}  // namespace pahoehoe::chaos
