#include "chaos/sweep.h"

#include <cstdio>

namespace pahoehoe::chaos {

std::string SweepResult::summary() const {
  char line[128];
  std::snprintf(line, sizeof(line),
                "chaos sweep: %zu seeds, %d failures, %d runs\n",
                outcomes.size(), failures, runs);
  std::string out = line;
  for (const SeedOutcome& outcome : outcomes) {
    if (outcome.passed) continue;
    std::snprintf(line, sizeof(line),
                  "seed %llu FAILED (%zu faults, shrunk to %zu):\n",
                  static_cast<unsigned long long>(outcome.seed),
                  outcome.schedule.size(), outcome.shrunk.size());
    out += line;
    out += outcome.audit.to_string();
    if (!outcome.shrunk.empty()) {
      out += "minimal repro (seed ";
      out += std::to_string(outcome.seed);
      out += "):\n";
      out += format_repro(outcome.shrunk);
    }
  }
  return out;
}

SweepResult run_sweep(core::RunConfig config, const SweepOptions& options) {
  const std::vector<core::FaultSpec> base_faults = config.faults;

  SweepResult result;
  for (int i = 0; i < options.seeds; ++i) {
    SeedOutcome outcome;
    outcome.seed = options.base_seed + static_cast<uint64_t>(i);

    outcome.schedule = base_faults;
    std::vector<core::FaultSpec> generated =
        generate_schedule(outcome.seed, config.topology, options.schedule);
    outcome.schedule.insert(outcome.schedule.end(), generated.begin(),
                            generated.end());

    config.seed = outcome.seed;
    config.faults = outcome.schedule;
    core::RunResult run = core::run_experiment(config);
    ++result.runs;
    outcome.audit = run.audit;
    outcome.passed = run.audit.passed();

    if (!outcome.passed) {
      ++result.failures;
      if (options.shrink_failures) {
        ShrinkResult shrunk =
            shrink_schedule(config, outcome.schedule, options.shrink);
        outcome.shrunk = std::move(shrunk.schedule);
        outcome.shrink_runs = shrunk.runs;
        result.runs += shrunk.runs;
      }
    }

    if (options.on_seed) options.on_seed(outcome);
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace pahoehoe::chaos
