#include "chaos/sweep.h"

#include <cstdio>
#include <mutex>

#include "common/parallel.h"

namespace pahoehoe::chaos {

namespace {

/// Compact digest of the convergence counters that matter when diagnosing a
/// violated invariant, followed by the trailing trace window.
std::string build_forensics(const core::RunResult& run,
                            size_t trace_dump_lines) {
  const auto sum = [&run](const char* name) {
    return static_cast<unsigned long long>(run.metrics.counter_sum(name));
  };
  char line[256];
  std::snprintf(
      line, sizeof(line),
      "metrics: rounds=%llu steps=%llu amr_skips=%llu converged=%llu "
      "giveups=%llu backoffs=%llu scrub_repairs=%llu amr_backlog=%zu\n",
      sum("fs_rounds_total"), sum("fs_converge_steps_total"),
      sum("fs_amr_skips_total"), sum("fs_converged_total"),
      sum("fs_giveups_total"), sum("fs_recovery_backoffs_total"),
      sum("fs_scrub_repairs_total"), run.amr_backlog_final);
  std::string out = line;
  if (!run.trace_tail.empty()) {
    std::snprintf(line, sizeof(line),
                  "trace tail (last %zu lines, %llu overflowed):\n",
                  trace_dump_lines,
                  static_cast<unsigned long long>(run.trace_overflowed));
    out += line;
    out += run.trace_tail;
  }
  if (!run.span_forensics.empty()) {
    out += "span tree of first violating version:\n";
    out += run.span_forensics;
  }
  if (!run.attribution.empty()) {
    // Names the component that inflated the tail of this failing run
    // ("83% of the gap is recovery_backoff") with concrete exemplar
    // versions to chase in version_inspector --worst.
    out += run.attribution.to_text();
  }
  return out;
}

}  // namespace

std::string SweepResult::summary() const {
  char line[128];
  std::snprintf(line, sizeof(line),
                "chaos sweep: %zu seeds, %d failures, %d runs\n",
                outcomes.size(), failures, runs);
  std::string out = line;
  for (const SeedOutcome& outcome : outcomes) {
    if (outcome.passed) continue;
    std::snprintf(line, sizeof(line),
                  "seed %llu FAILED (%zu faults, shrunk to %zu):\n",
                  static_cast<unsigned long long>(outcome.seed),
                  outcome.schedule.size(), outcome.shrunk.size());
    out += line;
    out += outcome.audit.to_string();
    out += outcome.forensics;
    if (!outcome.shrunk.empty()) {
      out += "minimal repro (seed ";
      out += std::to_string(outcome.seed);
      out += "):\n";
      out += format_repro(outcome.shrunk);
    }
  }
  return out;
}

SweepResult run_sweep(core::RunConfig config, const SweepOptions& options) {
  const std::vector<core::FaultSpec> base_faults = config.faults;

  SweepResult result;
  if (options.seeds <= 0) return result;
  result.outcomes.resize(static_cast<size_t>(options.seeds));

  // Each seed is fully determined by (config, options, seed index), so the
  // workers never read each other's state; the mutex only serializes the
  // shared counters and the progress hook. Outcomes land in their seed's
  // slot, making the result independent of completion order.
  std::mutex mutex;
  parallel_for(options.seeds, options.jobs, [&](int i) {
    SeedOutcome outcome;
    outcome.seed = options.base_seed + static_cast<uint64_t>(i);

    outcome.schedule = base_faults;
    std::vector<core::FaultSpec> generated =
        generate_schedule(outcome.seed, config.topology, options.schedule);
    outcome.schedule.insert(outcome.schedule.end(), generated.begin(),
                            generated.end());

    core::RunConfig seed_config = config;
    seed_config.seed = outcome.seed;
    seed_config.faults = outcome.schedule;
    seed_config.telemetry.trace_capacity = options.trace_capacity;
    seed_config.telemetry.trace_dump_lines = options.trace_dump_lines;
    seed_config.telemetry.spans = options.spans;
    // Exemplars ride the spans knob: when forensics are wanted, a failing
    // seed's outcome also attributes its tail to a critical-path component.
    seed_config.telemetry.exemplars = options.spans;
    core::RunResult run = core::run_experiment(seed_config);
    int runs = 1;
    outcome.audit = run.audit;
    outcome.passed = run.audit.passed();
    if (!outcome.passed) {
      outcome.forensics = build_forensics(run, options.trace_dump_lines);
    }

    if (!outcome.passed && options.shrink_failures) {
      ShrinkResult shrunk =
          shrink_schedule(seed_config, outcome.schedule, options.shrink);
      outcome.shrunk = std::move(shrunk.schedule);
      outcome.shrink_runs = shrunk.runs;
      runs += shrunk.runs;
    }

    {
      std::lock_guard<std::mutex> lock(mutex);
      result.runs += runs;
      if (!outcome.passed) ++result.failures;
      if (options.on_seed) options.on_seed(outcome);
    }
    result.outcomes[static_cast<size_t>(i)] = std::move(outcome);
  });
  return result;
}

}  // namespace pahoehoe::chaos
