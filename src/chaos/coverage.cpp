#include "chaos/coverage.h"

#include <bit>
#include <cstring>

#include "obs/prof.h"

namespace pahoehoe::chaos {

namespace {

/// Node-id → role, mirroring the Cluster's allocation order (proxies, then
/// KLSs, then FSs, starting at id 101).
const char* role_of(const core::ClusterTopology& topology, NodeId node) {
  const uint32_t base = 101;
  if (node.value < base) return "ext";
  const uint32_t offset = node.value - base;
  if (offset < static_cast<uint32_t>(topology.num_proxies)) return "proxy";
  if (offset < static_cast<uint32_t>(topology.num_proxies +
                                     topology.total_kls())) {
    return "kls";
  }
  if (offset < static_cast<uint32_t>(topology.num_proxies +
                                     topology.total_kls() +
                                     topology.total_fs())) {
    return "fs";
  }
  return "ext";
}

/// AFL-style occurrence bucket: 1 → 0, 2–3 → 1, 4–7 → 2, ... Collapses
/// "how often" into coarse magnitudes so counts that differ by noise do not
/// mint spurious features, while storms still differ from single events.
int log2_bucket(uint64_t count) {
  return std::bit_width(count) - 1;  // count >= 1
}

void add(Coverage& coverage, std::string name) {
  const uint64_t hash = feature_hash(name);
  coverage.features.emplace(hash, std::move(name));
}

void add_counted(Coverage& coverage, const std::string& stem,
                 uint64_t count) {
  if (count == 0) return;
  add(coverage, stem);
  add(coverage, stem + ":x" + std::to_string(log2_bucket(count)));
}

}  // namespace

uint64_t feature_hash(std::string_view name) {
  // FNV-1a 64: tiny, portable, and stable — feature ids live in corpus
  // files and must not depend on libstdc++'s std::hash.
  uint64_t h = 14695981039346656037ULL;
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

size_t Coverage::merge(const Coverage& other) {
  size_t added = 0;
  for (const auto& [hash, name] : other.features) {
    if (features.emplace(hash, name).second) ++added;
  }
  return added;
}

std::vector<std::string> Coverage::names() const {
  std::vector<std::string> out;
  out.reserve(features.size());
  for (const auto& [hash, name] : features) out.push_back(name);
  return out;
}

Coverage extract_coverage(const core::RunResult& run,
                          const core::RunConfig& config) {
  obs::ProfScope prof("chaos_coverage");
  Coverage coverage;

  // --- span features: which span kinds fired, per role, with buckets -------
  // Tally first (visit order is deterministic but we want one feature per
  // (role, kind), not per span). Recovery spans carry their mode ("plain" /
  // "sibling"), give-ups and scrub re-adds their durability class in the
  // note; those notes are part of the state, unlike free-form ones
  // ("attempt 3").
  std::map<std::string, uint64_t> span_counts;
  bool scrub_past_giveup = false;
  bool durable_scrub_late = false;
  run.spans.visit_spans([&](const ObjectVersionId& ov,
                            const obs::Span& span) {
    std::string kind = span.name;
    if (span.name == "recovery" || span.name == "give_up") {
      if (!span.note.empty()) kind += ":" + span.note;
    }
    ++span_counts["span:" + std::string(role_of(config.topology, span.node)) +
                  ":" + kind];
    if (span.name == "scrub_readd") {
      // Judge the re-add against *its class's* horizon (the span note
      // carries the class, mirroring give_up): a durable-class repair past
      // the base give-up age is the legal state giveup_age_durable exists
      // for, not a horizon violation.
      const bool durable = span.note == "class=durable";
      const SimTime age = span.start - ov.ts.wall_micros;
      const SimTime class_horizon =
          durable && config.convergence.giveup_age_durable >= 0
              ? config.convergence.giveup_age_durable
              : config.convergence.giveup_age;
      if (age > class_horizon) scrub_past_giveup = true;
      if (durable && age > config.convergence.giveup_age) {
        durable_scrub_late = true;
      }
    }
  });
  for (const auto& [stem, count] : span_counts) {
    add_counted(coverage, stem, count);
  }

  // --- critical-path features: decile-bucketed component mix ---------------
  if (run.critical_path.versions() > 0) {
    uint64_t total = 0;
    for (size_t c = 0; c < obs::kPathComponentCount; ++c) {
      total += run.critical_path.total_micros(
          static_cast<obs::PathComponent>(c));
    }
    for (size_t c = 0; c < obs::kPathComponentCount; ++c) {
      const auto component = static_cast<obs::PathComponent>(c);
      const uint64_t micros = run.critical_path.total_micros(component);
      const int decile =
          total == 0 ? 0 : static_cast<int>((micros * 10) / total);
      add(coverage, std::string("cp:") + obs::to_string(component) +
                        ":d" + std::to_string(std::min(decile, 9)));
    }
  }

  // --- metric edge features -------------------------------------------------
  static constexpr const char* kEdgeCounters[] = {
      "fs_giveups_total",          "fs_recovery_collisions_total",
      "fs_sibling_recoveries_total", "fs_scrub_repairs_total",
      "fs_recovery_backoffs_total", "fs_recoveries_total",
      "fs_amr_skips_total",
  };
  for (const char* name : kEdgeCounters) {
    add_counted(coverage, std::string("metric:") + name,
                static_cast<uint64_t>(run.metrics.counter_sum(name)));
  }

  // --- outcome features -----------------------------------------------------
  add(coverage, run.quiescent ? "outcome:quiescent" : "outcome:not_quiescent");
  if (run.puts_failed > 0) add(coverage, "outcome:puts_failed");
  if (run.gets_mismatched > 0) add(coverage, "outcome:gets_mismatched");
  if (run.given_up > 0) add(coverage, "outcome:given_up");
  if (run.excess_amr > 0) add(coverage, "outcome:excess_amr");
  if (run.durable_not_amr > 0) add(coverage, "outcome:durable_not_amr");
  for (const core::InvariantViolation& v : run.audit.violations) {
    add(coverage, std::string("violation:") + core::to_string(v.kind));
  }

  // --- rare composites the search hunts explicitly --------------------------
  if (run.metrics.counter_sum("fs_recovery_collisions_total") > 0) {
    add(coverage, kFeatureCollision);
  }
  if (run.metrics.counter_sum("fs_sibling_recoveries_total") > 0) {
    add(coverage, kFeatureSiblingRecovery);
  }
  if (scrub_past_giveup) add(coverage, kFeatureScrubPastGiveup);
  if (durable_scrub_late) add(coverage, kFeatureDurableScrubLate);

  return coverage;
}

}  // namespace pahoehoe::chaos
