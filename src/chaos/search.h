// Coverage-guided schedule search: an AFL-style corpus loop over fault
// schedules.
//
// The uniform chaos sweep (chaos/sweep.h) samples schedules independently,
// so after the easy convergence paths are covered, additional seeds mostly
// re-measure known states. The search closes the loop instead: run a
// candidate, extract its coverage signature (chaos/coverage.h), keep it in
// the corpus iff it reached a feature no earlier schedule did, and breed
// the next batch by mutating corpus parents (chaos/mutate.h) — parents
// holding rare features are picked more often. Any candidate that violates
// an audited invariant is fed straight into the ddmin shrinker and reported
// with the features it newly reached, tying the violation to the protocol
// state that triggered it.
//
// Determinism contract (DESIGN.md §9): one round's candidates are fully
// determined before the round starts (parent selection and mutation draw
// from per-candidate seeded RNGs over the *previous* round's corpus);
// candidates run on the worker pool into per-candidate slots; admission,
// rarity updates, the growth curve, and all reporting happen in a
// sequential slot-order merge. The SearchResult — and therefore the CLI's
// stdout — is byte-identical for every --jobs value.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/coverage.h"
#include "chaos/mutate.h"
#include "chaos/schedule.h"
#include "chaos/shrink.h"
#include "core/harness.h"

namespace pahoehoe::chaos {

struct SearchOptions {
  /// Mutation rounds after the seeding round.
  int rounds = 10;
  /// Candidates per mutation round.
  int batch = 16;
  /// Uniformly generated schedules seeding the corpus (round 0).
  int seed_corpus = 8;
  uint64_t base_seed = 1;
  /// Schedules to run ahead of the generated seed corpus (a corpus file
  /// from a previous search, --corpus-in). Each is run and admitted under
  /// the same new-feature rule as every other candidate.
  std::vector<std::vector<core::FaultSpec>> initial_corpus;
  /// Worker threads (<= 0: one per hardware thread). Results are merged in
  /// candidate order; every jobs value yields byte-identical output.
  int jobs = 1;
  ScheduleOptions schedule;  ///< generator knobs for the seeding round
  MutateOptions mutate;
  bool shrink_failures = true;
  ShrinkOptions shrink;
  /// Forensics knobs, as in SweepOptions.
  size_t trace_capacity = 512;
  size_t trace_dump_lines = 40;
  /// Progress hook, called sequentially after each round's merge (round 0
  /// is the seeding round). Deterministic call order and content.
  std::function<void(const struct SearchRound&)> on_round;
};

/// One admitted corpus entry.
struct CorpusEntry {
  std::vector<core::FaultSpec> schedule;
  Coverage coverage;        ///< full signature of the entry's run
  int round = 0;            ///< round it was admitted in (0 = seeding)
  size_t new_features = 0;  ///< features it added at admission time
};

/// One audited-invariant violation the search found.
struct SearchFailure {
  int round = 0;
  uint64_t seed = 0;  ///< simulation seed to replay the violation under
  std::vector<core::FaultSpec> schedule;
  core::AuditReport audit;
  std::vector<core::FaultSpec> shrunk;  ///< empty if shrinking was off
  int shrink_runs = 0;
  /// Features this schedule reached that no earlier run had (the protocol
  /// state that triggered the violation).
  std::vector<std::string> new_features;
  std::string forensics;
};

/// Per-round progress snapshot (also the growth-curve points).
struct SearchRound {
  int round = 0;        ///< 0 = seeding round
  int runs = 0;         ///< cumulative candidate runs (excludes shrinking)
  size_t features = 0;  ///< cumulative distinct coverage features
  size_t corpus = 0;    ///< cumulative corpus size
  int failures = 0;     ///< cumulative violations found
};

struct SearchResult {
  int runs = 0;         ///< candidate runs (excludes shrink re-runs)
  int shrink_runs = 0;
  Coverage coverage;    ///< union over every run
  std::vector<CorpusEntry> corpus;
  std::vector<SearchFailure> failures;
  std::vector<SearchRound> growth;  ///< one point per round, in order

  bool passed() const { return failures.empty(); }
  int exit_code() const { return passed() ? 0 : 1; }
  /// Deterministic human-readable report: the coverage-growth curve
  /// (features vs. runs, plateaus visible), rare-feature hits, and every
  /// failure with its newly reached features and minimal repro.
  std::string summary() const;
};

/// Run the search. `config` supplies everything but the seed and faults
/// (as in run_sweep); `config.faults` is carried into every candidate.
SearchResult run_search(core::RunConfig config, const SearchOptions& options);

/// Coverage reached by `runs` uniformly generated schedules on the same
/// worker pool — the unguided baseline the CI smoke compares the search
/// against (equal run budget, no feedback).
Coverage uniform_coverage(core::RunConfig config, int runs,
                          uint64_t base_seed, const ScheduleOptions& schedule,
                          int jobs);

/// On-disk corpus format (--corpus-in / --corpus-out): u32 schedule count,
/// then each schedule as a u32-length-prefixed encode_schedule() frame.
/// decode throws wire::WireError on malformed input.
Bytes encode_corpus(const std::vector<std::vector<core::FaultSpec>>& corpus);
std::vector<std::vector<core::FaultSpec>> decode_corpus(const Bytes& data);

}  // namespace pahoehoe::chaos
