// Structural mutation of fault schedules (the search's generation half).
//
// The uniform generator (chaos/schedule.h) samples every schedule from the
// same distribution: faults start inside a 30-minute horizon with bounded
// windows and capped rates. Mutation breaks out of that manifold — it can
// push a corruption past the give-up horizon, stretch a blackout across a
// whole recovery epoch, stack two crash windows on the same node, or splice
// the interesting half of one corpus schedule into another. Each operator
// is a pure function of (inputs, seed): the same parent, donor pool, and
// seed always produce the same child, which is what lets the search replay
// and shrink anything it finds.
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/schedule.h"
#include "core/harness.h"

namespace pahoehoe::chaos {

/// Bounds for mutated schedules. Wider than ScheduleOptions on purpose:
/// the generator's bounds keep uniform sweeps converging comfortably, the
/// mutator's bounds define how far guided search may push beyond them.
struct MutateOptions {
  /// Mutated faults may move anywhere in [0, horizon). Defaults to 4 h —
  /// past chaos_default_config's 2 h give-up age, so mutation (and only
  /// mutation) can reach the scrub-after-give-up-window states.
  SimTime horizon = 4LL * 3600 * kMicrosPerSecond;
  /// Widened windows are capped at this length.
  SimTime max_window = 60LL * 60 * kMicrosPerSecond;
  /// Whole-run iid loss stays below this under escalation (1.0 would
  /// blind the run entirely and teach the search nothing).
  double max_loss_rate = 0.5;
  double max_duplication_rate = 1.0;
  /// Schedules never grow beyond this many faults.
  int max_faults = 16;
  /// Mutation operators applied per child (1..max, rng-chosen).
  int max_ops = 3;
};

/// Produce one child schedule from `parent`. `corpus` supplies splice
/// donors (may be empty; may include the parent itself). Deterministic in
/// every argument; never returns an empty schedule for a non-empty parent.
std::vector<core::FaultSpec> mutate_schedule(
    const std::vector<core::FaultSpec>& parent,
    const std::vector<std::vector<core::FaultSpec>>& corpus, uint64_t seed,
    const core::ClusterTopology& topology, const MutateOptions& options = {});

}  // namespace pahoehoe::chaos
