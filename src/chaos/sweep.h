// Chaos sweep driver: run N seeds of randomized fault schedules through the
// invariant auditor, and shrink any failing schedule to a minimal repro.
#pragma once

#include <functional>

#include "chaos/schedule.h"
#include "chaos/shrink.h"
#include "core/harness.h"

namespace pahoehoe::chaos {

struct SweepOptions {
  int seeds = 50;
  uint64_t base_seed = 1;
  /// Worker threads to dispatch seeds across (each seed owns its whole
  /// simulation, so seeds parallelize perfectly). Results are collected in
  /// seed order: the SweepResult — outcomes, counters, summary() — is
  /// byte-identical for every jobs value. <= 0 means one per hardware
  /// thread.
  int jobs = 1;
  ScheduleOptions schedule;
  bool shrink_failures = true;
  ShrinkOptions shrink;
  /// Trace ring capacity installed into every seed's run (0 disables). A
  /// failing seed's outcome then carries the trailing trace window plus a
  /// metrics digest as forensics. Kept modest by default: the window is for
  /// "what happened right before the violation", not whole-run capture.
  size_t trace_capacity = 512;
  size_t trace_dump_lines = 40;
  /// Causal span tracing in every seed's run: a failing seed's forensics
  /// then include the span tree of the first violating version (why it
  /// missed AMR, not just that it did). Pure observer — turning it off
  /// changes no simulation behavior, only the forensics detail.
  bool spans = true;
  /// Progress hook, called after each seed completes (may be empty).
  /// Called under a lock, but in completion order, which for jobs > 1 is
  /// not seed order.
  std::function<void(const struct SeedOutcome&)> on_seed;
};

/// What happened under one seed.
struct SeedOutcome {
  uint64_t seed = 0;
  bool passed = false;
  std::vector<core::FaultSpec> schedule;  ///< as generated
  core::AuditReport audit;                ///< of the full schedule
  /// Filled only for failures when shrink_failures is set.
  std::vector<core::FaultSpec> shrunk;
  int shrink_runs = 0;
  /// Failures only: metrics digest + trailing trace window of the original
  /// (unshrunk) failing run, for debugging without a re-run.
  std::string forensics;
};

struct SweepResult {
  int runs = 0;
  int failures = 0;
  std::vector<SeedOutcome> outcomes;  ///< one per seed, in seed order

  bool passed() const { return failures == 0; }
  /// Process exit code for CLI drivers: 0 only when every audited invariant
  /// held in every seed. ANY violation — including a telemetry-drift-only
  /// failure — is non-zero, so CI cannot green-light a run whose
  /// observability layer disagrees with the network it watched.
  int exit_code() const { return passed() ? 0 : 1; }
  /// Short human-readable summary; failing seeds include the shrunk repro.
  std::string summary() const;
};

/// Run the sweep: for seed s in [base_seed, base_seed + seeds), generate a
/// schedule, append it to config.faults, run, audit. `config` supplies
/// everything but the seed and the generated faults; faults already present
/// in config.faults run in every seed and are shrunk together with the
/// generated ones when a seed fails.
SweepResult run_sweep(core::RunConfig config, const SweepOptions& options);

}  // namespace pahoehoe::chaos
