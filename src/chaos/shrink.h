// Greedy schedule shrinking (delta debugging over fault schedules).
//
// Given a RunConfig whose fault schedule fails the invariant audit, find a
// smaller schedule that still fails. Every probe is a full deterministic
// re-run of the simulation with the same seed, so a reduction is kept only
// if the violation actually reproduces without the dropped faults. The
// result prints as a ready-to-paste FaultSpec list (format_repro).
#pragma once

#include "chaos/schedule.h"
#include "core/harness.h"

namespace pahoehoe::chaos {

struct ShrinkOptions {
  /// Hard cap on simulation re-runs; shrinking stops (keeping the best
  /// schedule so far) when the budget is exhausted.
  int max_runs = 400;
  /// After fault removal converges, also try halving fault windows and
  /// loss/duplication rates toward minimal parameters.
  bool shrink_windows = true;
};

struct ShrinkResult {
  std::vector<core::FaultSpec> schedule;  ///< minimal failing schedule found
  int runs = 0;                           ///< simulation re-runs spent
  core::AuditReport audit;                ///< audit of the final schedule
};

/// Minimize `schedule` while `run_experiment` still fails its audit.
/// `config.faults` is ignored (overwritten per probe); everything else in
/// `config` — including the seed — is held fixed. If the full schedule does
/// not fail, returns it unchanged with a passing audit and runs == 1.
ShrinkResult shrink_schedule(core::RunConfig config,
                             std::vector<core::FaultSpec> schedule,
                             const ShrinkOptions& options = {});

}  // namespace pahoehoe::chaos
