// Coverage signatures: what protocol states one chaos run exercised.
//
// The coverage-guided search (chaos/search.h) needs a feedback signal that
// says "this schedule reached something no schedule before it did". A
// signature is a set of *features*, each a short human-readable name hashed
// to 64 bits:
//
//   * span features — which span kinds fired, per node role (proxy / kls /
//     fs), with log2-bucketed occurrence counts so "one give-up" and "a
//     storm of give-ups" are distinct states; recovery spans split by mode
//     (plain vs §4.2 sibling).
//   * critical-path features — the component mix of time-to-AMR, each
//     component's share bucketed to deciles (a run dominated by
//     recovery_backoff covers different ground than one dominated by
//     network_wait even if both converge).
//   * metric edge features — log2 buckets of the auditor-adjacent
//     convergence counters (give-ups, §4.2 recovery collisions, sibling
//     recoveries, scrub repairs, backoffs).
//   * outcome features — audit violation kinds, quiescence, failed puts.
//   * rare composite features the search is explicitly hunting
//     (kFeatureCollision, kFeatureSiblingRecovery, kFeatureDurableScrubLate,
//     kFeatureScrubPastGiveup).
//
// Extraction is a pure function of the RunResult (plus the config for the
// give-up horizon and node-role arithmetic): it walks spans in the tracer's
// deterministic order and reads only merged counters, so the same run
// always yields byte-identical signatures on any machine — the foundation
// of the search's any-`--jobs` reproducibility (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/harness.h"

namespace pahoehoe::chaos {

/// Stable 64-bit feature id: FNV-1a over the feature name. Pure and
/// platform-independent, so corpus files and growth curves are portable.
uint64_t feature_hash(std::string_view name);

/// A set of coverage features. The map is keyed by feature hash with the
/// human-readable name as value; iteration order (by hash) is part of the
/// deterministic-output contract.
struct Coverage {
  std::map<uint64_t, std::string> features;

  size_t size() const { return features.size(); }
  bool contains(std::string_view name) const {
    return features.count(feature_hash(name)) > 0;
  }
  /// Union with `other`; returns how many features were new.
  size_t merge(const Coverage& other);
  /// Feature names in hash order (deterministic).
  std::vector<std::string> names() const;
};

/// Rare protocol states the search hunts explicitly (asserted reached by
/// the CI smoke). Exact feature names, so callers can Coverage::contains().
inline constexpr const char* kFeatureCollision =
    "rare:recovery_backoff_collision";  ///< §4.2 lower-id stand-down fired
inline constexpr const char* kFeatureSiblingRecovery =
    "rare:sibling_recovery";  ///< a §4.2 sibling recovery attempt started
inline constexpr const char* kFeatureScrubPastGiveup =
    "rare:scrub_past_giveup_window";  ///< scrub re-added a version already
                                      ///< older than *its own class's*
                                      ///< give-up horizon (giveup_age_durable
                                      ///< for the durable class) — scrub
                                      ///< itself enforces that horizon, so
                                      ///< reaching this means the horizon
                                      ///< logic disagreed with itself
inline constexpr const char* kFeatureDurableScrubLate =
    "rare:durable_scrub_past_base_age";  ///< a durable-class scrub re-add
                                         ///< past the *base* (non-durable)
                                         ///< give-up age — the state the
                                         ///< per-class horizons exist to
                                         ///< make legal

/// Extract the signature of one finished run. `config` must be the config
/// the run executed under (topology for role mapping, convergence for the
/// give-up horizon). Requires telemetry.spans to have been on; with spans
/// off only metric/outcome features are produced.
Coverage extract_coverage(const core::RunResult& run,
                          const core::RunConfig& config);

}  // namespace pahoehoe::chaos
