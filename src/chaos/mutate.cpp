#include "chaos/mutate.h"

#include <algorithm>

#include "common/rng.h"

namespace pahoehoe::chaos {

namespace {

using core::FaultSpec;

bool instant(const FaultSpec& spec) {
  return spec.kind == FaultSpec::Kind::kFragCorrupt ||
         spec.kind == FaultSpec::Kind::kDiskDestroy;
}

bool windowed(const FaultSpec& spec) {
  return !instant(spec) && spec.kind != FaultSpec::Kind::kUniformLoss;
}

bool rated(const FaultSpec& spec) {
  return spec.kind == FaultSpec::Kind::kUniformLoss ||
         spec.kind == FaultSpec::Kind::kDuplicationBurst;
}

size_t pick(Rng& rng, size_t size) {
  return static_cast<size_t>(
      rng.uniform_int(0, static_cast<int64_t>(size) - 1));
}

void clamp_times(FaultSpec& spec, const MutateOptions& options) {
  spec.start = std::clamp<SimTime>(spec.start, 0, options.horizon - 1);
  if (instant(spec)) {
    spec.end = spec.start;
  } else if (windowed(spec)) {
    spec.end = std::clamp<SimTime>(spec.end, spec.start,
                                   spec.start + options.max_window);
  }
}

/// Move a fault in time, keeping its window length.
void op_shift(Rng& rng, FaultSpec& spec, const MutateOptions& options) {
  if (spec.kind == FaultSpec::Kind::kUniformLoss) return;
  const SimTime len = spec.end - spec.start;
  const SimTime range = options.horizon / 4;
  spec.start += rng.uniform_int(-range, range);
  spec.start = std::clamp<SimTime>(spec.start, 0, options.horizon - 1);
  spec.end = spec.start + len;
  clamp_times(spec, options);
}

/// Stretch a window (or re-place an instant fault anywhere in the horizon —
/// the only way a corruption escapes the generator's 30-minute box).
void op_widen(Rng& rng, FaultSpec& spec, const MutateOptions& options) {
  if (instant(spec)) {
    spec.start = rng.uniform_int(0, options.horizon - 1);
    spec.end = spec.start;
    return;
  }
  if (!windowed(spec)) return;
  spec.end += rng.uniform_int(30 * kMicrosPerSecond, options.max_window);
  clamp_times(spec, options);
}

/// Align one fault's window to overlap another's (concurrent faults are
/// where the §4.2 races live).
void op_overlap(Rng& rng, std::vector<FaultSpec>& schedule,
                const MutateOptions& options) {
  if (schedule.size() < 2) return;
  const size_t a = pick(rng, schedule.size());
  size_t b = pick(rng, schedule.size() - 1);
  if (b >= a) ++b;
  const FaultSpec& anchor = schedule[a];
  FaultSpec& moved = schedule[b];
  if (moved.kind == FaultSpec::Kind::kUniformLoss ||
      anchor.kind == FaultSpec::Kind::kUniformLoss) {
    return;
  }
  const SimTime len = moved.end - moved.start;
  moved.start = rng.uniform_int(anchor.start, std::max(anchor.start,
                                                       anchor.end));
  moved.end = moved.start + len;
  clamp_times(moved, options);
}

/// Point the fault at a different node / data center / disk.
void op_retarget(Rng& rng, FaultSpec& spec,
                 const core::ClusterTopology& topology) {
  spec.dc = static_cast<int>(rng.uniform_int(0, topology.num_dcs - 1));
  switch (spec.kind) {
    case FaultSpec::Kind::kFsBlackout:
    case FaultSpec::Kind::kFsCrash:
    case FaultSpec::Kind::kFragCorrupt:
      spec.index_in_dc =
          static_cast<int>(rng.uniform_int(0, topology.fs_per_dc - 1));
      break;
    case FaultSpec::Kind::kDiskDestroy:
      spec.index_in_dc =
          static_cast<int>(rng.uniform_int(0, topology.fs_per_dc - 1));
      spec.disk =
          static_cast<int>(rng.uniform_int(0, topology.disks_per_fs - 1));
      break;
    case FaultSpec::Kind::kKlsBlackout:
    case FaultSpec::Kind::kKlsCrash:
      spec.index_in_dc =
          static_cast<int>(rng.uniform_int(0, topology.kls_per_dc - 1));
      break;
    case FaultSpec::Kind::kProxyCrash:
      spec.index_in_dc =
          static_cast<int>(rng.uniform_int(0, topology.num_proxies - 1));
      break;
    case FaultSpec::Kind::kDcPartition:
    case FaultSpec::Kind::kUniformLoss:
    case FaultSpec::Kind::kDuplicationBurst:
      break;  // dc re-roll above is all there is to retarget
  }
}

/// Turn the intensity up: raise a rate toward its cap, or duplicate a
/// non-rated fault at a shifted time.
void op_escalate(Rng& rng, std::vector<FaultSpec>& schedule, size_t i,
                 const MutateOptions& options) {
  FaultSpec& spec = schedule[i];
  if (rated(spec)) {
    const double cap = spec.kind == FaultSpec::Kind::kUniformLoss
                           ? options.max_loss_rate
                           : options.max_duplication_rate;
    spec.rate = std::min(cap, spec.rate * (1.2 + rng.uniform01()));
    return;
  }
  if (static_cast<int>(schedule.size()) >= options.max_faults) return;
  FaultSpec copy = spec;
  op_shift(rng, copy, options);
  schedule.push_back(copy);
}

/// Copy one fault from a donor schedule (crossover).
void op_splice(Rng& rng, std::vector<FaultSpec>& schedule,
               const std::vector<std::vector<FaultSpec>>& corpus,
               const MutateOptions& options) {
  if (corpus.empty()) return;
  const std::vector<FaultSpec>& donor = corpus[pick(rng, corpus.size())];
  if (donor.empty()) return;
  const FaultSpec& gene = donor[pick(rng, donor.size())];
  if (static_cast<int>(schedule.size()) < options.max_faults) {
    schedule.push_back(gene);
  } else {
    schedule[pick(rng, schedule.size())] = gene;
  }
}

void op_drop(Rng& rng, std::vector<FaultSpec>& schedule) {
  if (schedule.size() < 2) return;
  schedule.erase(schedule.begin() +
                 static_cast<int64_t>(pick(rng, schedule.size())));
}

}  // namespace

std::vector<FaultSpec> mutate_schedule(
    const std::vector<FaultSpec>& parent,
    const std::vector<std::vector<FaultSpec>>& corpus, uint64_t seed,
    const core::ClusterTopology& topology, const MutateOptions& options) {
  // Same seed-whitening as generate_schedule so child streams do not
  // correlate with run seeds.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xa17eULL);
  std::vector<FaultSpec> child = parent;
  if (child.empty()) return child;

  const int ops =
      static_cast<int>(rng.uniform_int(1, std::max(1, options.max_ops)));
  for (int op = 0; op < ops; ++op) {
    const size_t i = pick(rng, child.size());
    switch (rng.uniform_int(0, 6)) {
      case 0: op_shift(rng, child[i], options); break;
      case 1: op_widen(rng, child[i], options); break;
      case 2: op_overlap(rng, child, options); break;
      case 3: op_retarget(rng, child[i], topology); break;
      case 4: op_escalate(rng, child, i, options); break;
      case 5: op_splice(rng, child, corpus, options); break;
      case 6: op_drop(rng, child); break;
    }
  }
  return child;
}

}  // namespace pahoehoe::chaos
