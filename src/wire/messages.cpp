#include "wire/messages.h"

namespace pahoehoe::wire {

namespace {

void encode_digest(Writer& w, const Sha256::Digest& digest) {
  for (uint8_t b : digest) w.u8(b);
}

Sha256::Digest decode_digest(Reader& r) {
  Sha256::Digest digest{};
  for (auto& b : digest) b = r.u8();
  return digest;
}

Status decode_status(Reader& r) {
  uint8_t v = r.u8();
  if (v > 1) throw WireError("invalid status byte");
  return static_cast<Status>(v);
}

}  // namespace

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kDecideLocsReq: return "DecideLocsReq";
    case MessageType::kDecideLocsRep: return "DecideLocsRep";
    case MessageType::kFsDecideLocsReq: return "FSDecideLocsReq";
    case MessageType::kStoreMetadataReq: return "StoreMetadataReq";
    case MessageType::kStoreMetadataRep: return "StoreMetadataRep";
    case MessageType::kStoreFragmentReq: return "StoreFragmentReq";
    case MessageType::kStoreFragmentRep: return "StoreFragmentRep";
    case MessageType::kAmrIndication: return "AMRIndication";
    case MessageType::kKlsConvergeReq: return "KLSConvergeReq";
    case MessageType::kKlsConvergeRep: return "KLSConvergeRep";
    case MessageType::kFsConvergeReq: return "FSConvergeReq";
    case MessageType::kFsConvergeRep: return "FSConvergeRep";
    case MessageType::kRetrieveTsReq: return "RetrieveTsReq";
    case MessageType::kRetrieveTsRep: return "RetrieveTsRep";
    case MessageType::kRetrieveFragReq: return "RetrieveFragReq";
    case MessageType::kRetrieveFragRep: return "RetrieveFragRep";
    case MessageType::kSiblingStoreReq: return "SiblingStoreReq";
    case MessageType::kSiblingStoreRep: return "SiblingStoreRep";
    case MessageType::kKlsLocsNotify: return "KLSLocsNotify";
  }
  return "?";
}

Bytes DecideLocsReq::encode() const {
  Writer w;
  wire::encode(w, ov);
  wire::encode(w, policy);
  w.u64(value_size);
  w.boolean(from_fs);
  return std::move(w).take();
}

DecideLocsReq DecideLocsReq::decode(const Bytes& payload) {
  Reader r(payload);
  DecideLocsReq msg;
  msg.ov = decode_ov(r);
  msg.policy = decode_policy(r);
  msg.value_size = r.u64();
  msg.from_fs = r.boolean();
  r.expect_exhausted();
  return msg;
}

Bytes DecideLocsRep::encode() const {
  Writer w;
  wire::encode(w, ov);
  wire::encode(w, meta);
  w.u8(dc.value);
  return std::move(w).take();
}

DecideLocsRep DecideLocsRep::decode(const Bytes& payload) {
  Reader r(payload);
  DecideLocsRep msg;
  msg.ov = decode_ov(r);
  msg.meta = decode_metadata(r);
  msg.dc.value = r.u8();
  r.expect_exhausted();
  return msg;
}

Bytes StoreMetadataReq::encode() const {
  Writer w;
  wire::encode(w, ov);
  wire::encode(w, meta);
  return std::move(w).take();
}

StoreMetadataReq StoreMetadataReq::decode(const Bytes& payload) {
  Reader r(payload);
  StoreMetadataReq msg;
  msg.ov = decode_ov(r);
  msg.meta = decode_metadata(r);
  r.expect_exhausted();
  return msg;
}

Bytes StoreMetadataRep::encode() const {
  Writer w;
  wire::encode(w, ov);
  w.u8(static_cast<uint8_t>(status));
  w.u16(decided_count);
  return std::move(w).take();
}

StoreMetadataRep StoreMetadataRep::decode(const Bytes& payload) {
  Reader r(payload);
  StoreMetadataRep msg;
  msg.ov = decode_ov(r);
  msg.status = decode_status(r);
  msg.decided_count = r.u16();
  r.expect_exhausted();
  return msg;
}

Bytes StoreFragmentReq::encode() const {
  Writer w;
  wire::encode(w, ov);
  wire::encode(w, meta);
  w.u16(frag_index);
  w.bytes(fragment);
  encode_digest(w, digest);
  return std::move(w).take();
}

StoreFragmentReq StoreFragmentReq::decode(const Bytes& payload) {
  Reader r(payload);
  StoreFragmentReq msg;
  msg.ov = decode_ov(r);
  msg.meta = decode_metadata(r);
  msg.frag_index = r.u16();
  msg.fragment = r.bytes();
  msg.digest = decode_digest(r);
  r.expect_exhausted();
  return msg;
}

Bytes StoreFragmentRep::encode() const {
  Writer w;
  wire::encode(w, ov);
  w.u16(frag_index);
  w.u8(static_cast<uint8_t>(status));
  return std::move(w).take();
}

StoreFragmentRep StoreFragmentRep::decode(const Bytes& payload) {
  Reader r(payload);
  StoreFragmentRep msg;
  msg.ov = decode_ov(r);
  msg.frag_index = r.u16();
  msg.status = decode_status(r);
  r.expect_exhausted();
  return msg;
}

Bytes AmrIndication::encode() const {
  Writer w;
  wire::encode(w, ov);
  return std::move(w).take();
}

AmrIndication AmrIndication::decode(const Bytes& payload) {
  Reader r(payload);
  AmrIndication msg;
  msg.ov = decode_ov(r);
  r.expect_exhausted();
  return msg;
}

Bytes RetrieveTsReq::encode() const {
  Writer w;
  wire::encode(w, key);
  wire::encode(w, before_ts);
  w.u16(max_entries);
  return std::move(w).take();
}

RetrieveTsReq RetrieveTsReq::decode(const Bytes& payload) {
  Reader r(payload);
  RetrieveTsReq msg;
  msg.key = decode_key(r);
  msg.before_ts = decode_timestamp(r);
  msg.max_entries = r.u16();
  r.expect_exhausted();
  return msg;
}

Bytes RetrieveTsRep::encode() const {
  Writer w;
  wire::encode(w, key);
  w.u32(static_cast<uint32_t>(entries.size()));
  for (const auto& entry : entries) {
    wire::encode(w, entry.ts);
    wire::encode(w, entry.meta);
  }
  w.boolean(more);
  return std::move(w).take();
}

RetrieveTsRep RetrieveTsRep::decode(const Bytes& payload) {
  Reader r(payload);
  RetrieveTsRep msg;
  msg.key = decode_key(r);
  const uint32_t count = r.u32();
  // Do NOT reserve from a wire-controlled u32 count: a corrupted count of
  // ~2^32 would allocate gigabytes before the truncation check runs. Growth
  // during the loop is bounded by the bytes actually present.
  for (uint32_t i = 0; i < count; ++i) {
    Entry entry;
    entry.ts = decode_timestamp(r);
    entry.meta = decode_metadata(r);
    msg.entries.push_back(std::move(entry));
  }
  msg.more = r.boolean();
  r.expect_exhausted();
  return msg;
}

Bytes RetrieveFragReq::encode() const {
  Writer w;
  wire::encode(w, ov);
  w.u16(frag_index);
  return std::move(w).take();
}

RetrieveFragReq RetrieveFragReq::decode(const Bytes& payload) {
  Reader r(payload);
  RetrieveFragReq msg;
  msg.ov = decode_ov(r);
  msg.frag_index = r.u16();
  r.expect_exhausted();
  return msg;
}

Bytes RetrieveFragRep::encode() const {
  Writer w;
  wire::encode(w, ov);
  w.u16(frag_index);
  w.boolean(found);
  w.bytes(fragment);
  return std::move(w).take();
}

RetrieveFragRep RetrieveFragRep::decode(const Bytes& payload) {
  Reader r(payload);
  RetrieveFragRep msg;
  msg.ov = decode_ov(r);
  msg.frag_index = r.u16();
  msg.found = r.boolean();
  msg.fragment = r.bytes();
  r.expect_exhausted();
  return msg;
}

Bytes KlsConvergeReq::encode() const {
  Writer w;
  wire::encode(w, ov);
  wire::encode(w, meta);
  return std::move(w).take();
}

KlsConvergeReq KlsConvergeReq::decode(const Bytes& payload) {
  Reader r(payload);
  KlsConvergeReq msg;
  msg.ov = decode_ov(r);
  msg.meta = decode_metadata(r);
  r.expect_exhausted();
  return msg;
}

Bytes KlsConvergeRep::encode() const {
  Writer w;
  wire::encode(w, ov);
  w.boolean(verified);
  return std::move(w).take();
}

KlsConvergeRep KlsConvergeRep::decode(const Bytes& payload) {
  Reader r(payload);
  KlsConvergeRep msg;
  msg.ov = decode_ov(r);
  msg.verified = r.boolean();
  r.expect_exhausted();
  return msg;
}

Bytes FsConvergeReq::encode() const {
  Writer w;
  wire::encode(w, ov);
  wire::encode(w, meta);
  w.boolean(intends_recovery);
  return std::move(w).take();
}

FsConvergeReq FsConvergeReq::decode(const Bytes& payload) {
  Reader r(payload);
  FsConvergeReq msg;
  msg.ov = decode_ov(r);
  msg.meta = decode_metadata(r);
  msg.intends_recovery = r.boolean();
  r.expect_exhausted();
  return msg;
}

Bytes FsConvergeRep::encode() const {
  Writer w;
  wire::encode(w, ov);
  w.boolean(verified);
  w.u16(static_cast<uint16_t>(needed_fragments.size()));
  for (uint16_t idx : needed_fragments) w.u16(idx);
  w.boolean(also_recovering);
  return std::move(w).take();
}

FsConvergeRep FsConvergeRep::decode(const Bytes& payload) {
  Reader r(payload);
  FsConvergeRep msg;
  msg.ov = decode_ov(r);
  msg.verified = r.boolean();
  uint16_t count = r.u16();
  msg.needed_fragments.reserve(count);
  for (uint16_t i = 0; i < count; ++i) msg.needed_fragments.push_back(r.u16());
  msg.also_recovering = r.boolean();
  r.expect_exhausted();
  return msg;
}

Bytes SiblingStoreReq::encode() const {
  Writer w;
  wire::encode(w, ov);
  wire::encode(w, meta);
  w.u16(frag_index);
  w.bytes(fragment);
  encode_digest(w, digest);
  return std::move(w).take();
}

SiblingStoreReq SiblingStoreReq::decode(const Bytes& payload) {
  Reader r(payload);
  SiblingStoreReq msg;
  msg.ov = decode_ov(r);
  msg.meta = decode_metadata(r);
  msg.frag_index = r.u16();
  msg.fragment = r.bytes();
  msg.digest = decode_digest(r);
  r.expect_exhausted();
  return msg;
}

Bytes SiblingStoreRep::encode() const {
  Writer w;
  wire::encode(w, ov);
  w.u16(frag_index);
  w.u8(static_cast<uint8_t>(status));
  return std::move(w).take();
}

SiblingStoreRep SiblingStoreRep::decode(const Bytes& payload) {
  Reader r(payload);
  SiblingStoreRep msg;
  msg.ov = decode_ov(r);
  msg.frag_index = r.u16();
  msg.status = decode_status(r);
  r.expect_exhausted();
  return msg;
}

Bytes KlsLocsNotify::encode() const {
  Writer w;
  wire::encode(w, ov);
  wire::encode(w, meta);
  return std::move(w).take();
}

KlsLocsNotify KlsLocsNotify::decode(const Bytes& payload) {
  Reader r(payload);
  KlsLocsNotify msg;
  msg.ov = decode_ov(r);
  msg.meta = decode_metadata(r);
  r.expect_exhausted();
  return msg;
}

}  // namespace pahoehoe::wire
