// Binary serialization primitives.
//
// All protocol messages are actually serialized to bytes before they enter
// the simulated network; the byte counts the evaluation reports are the
// sizes produced here. Encoding is little-endian with fixed-width integers
// and u32 length prefixes for variable-size fields.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/types.h"

namespace pahoehoe::wire {

/// Thrown by Reader on truncated or malformed input.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  void u8(uint8_t v);
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i64(int64_t v);
  void boolean(bool v);
  void bytes(const Bytes& v);        // u32 length prefix + raw bytes
  void str(const std::string& v);    // u32 length prefix + raw bytes

  const Bytes& data() const& { return out_; }
  Bytes take() && { return std::move(out_); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(&data) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  int64_t i64();
  bool boolean();
  Bytes bytes();
  std::string str();

  /// True iff every byte has been consumed.
  bool exhausted() const { return pos_ == data_->size(); }
  /// Throws WireError unless exhausted (call after decoding a message).
  void expect_exhausted() const;

 private:
  const uint8_t* take(size_t count);

  const Bytes* data_;
  size_t pos_ = 0;
};

// Domain-type codecs, shared by every message.
void encode(Writer& w, const Key& key);
void encode(Writer& w, const Timestamp& ts);
void encode(Writer& w, const ObjectVersionId& ov);
void encode(Writer& w, const Policy& policy);
void encode(Writer& w, const Location& loc);
void encode(Writer& w, const std::optional<Location>& loc);
void encode(Writer& w, const Metadata& meta);

Key decode_key(Reader& r);
Timestamp decode_timestamp(Reader& r);
ObjectVersionId decode_ov(Reader& r);
Policy decode_policy(Reader& r);
Location decode_location(Reader& r);
std::optional<Location> decode_opt_location(Reader& r);
Metadata decode_metadata(Reader& r);

}  // namespace pahoehoe::wire
