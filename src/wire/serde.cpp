#include "wire/serde.h"

#include <cstring>

namespace pahoehoe::wire {

namespace {
constexpr size_t kMaxLengthPrefix = 1u << 30;  // 1 GiB sanity bound
}

void Writer::u8(uint8_t v) { out_.push_back(v); }

void Writer::u16(uint16_t v) {
  out_.push_back(static_cast<uint8_t>(v));
  out_.push_back(static_cast<uint8_t>(v >> 8));
}

void Writer::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::bytes(const Bytes& v) {
  u32(static_cast<uint32_t>(v.size()));
  out_.insert(out_.end(), v.begin(), v.end());
}

void Writer::str(const std::string& v) {
  u32(static_cast<uint32_t>(v.size()));
  out_.insert(out_.end(), v.begin(), v.end());
}

const uint8_t* Reader::take(size_t count) {
  if (pos_ + count > data_->size()) {
    throw WireError("truncated message: need " + std::to_string(count) +
                    " bytes at offset " + std::to_string(pos_) + " of " +
                    std::to_string(data_->size()));
  }
  const uint8_t* p = data_->data() + pos_;
  pos_ += count;
  return p;
}

uint8_t Reader::u8() { return *take(1); }

uint16_t Reader::u16() {
  const uint8_t* p = take(2);
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t Reader::u32() {
  const uint8_t* p = take(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t Reader::u64() {
  const uint8_t* p = take(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

int64_t Reader::i64() { return static_cast<int64_t>(u64()); }

bool Reader::boolean() {
  uint8_t v = u8();
  if (v > 1) throw WireError("invalid boolean byte");
  return v == 1;
}

Bytes Reader::bytes() {
  uint32_t len = u32();
  if (len > kMaxLengthPrefix) throw WireError("length prefix too large");
  const uint8_t* p = take(len);
  return Bytes(p, p + len);
}

std::string Reader::str() {
  uint32_t len = u32();
  if (len > kMaxLengthPrefix) throw WireError("length prefix too large");
  const uint8_t* p = take(len);
  return std::string(reinterpret_cast<const char*>(p), len);
}

void Reader::expect_exhausted() const {
  if (!exhausted()) throw WireError("trailing bytes after message");
}

void encode(Writer& w, const Key& key) { w.str(key.value); }

void encode(Writer& w, const Timestamp& ts) {
  w.i64(ts.wall_micros);
  w.u32(ts.proxy);
}

void encode(Writer& w, const ObjectVersionId& ov) {
  encode(w, ov.key);
  encode(w, ov.ts);
}

void encode(Writer& w, const Policy& policy) {
  w.u8(policy.k);
  w.u8(policy.n);
  w.u8(policy.max_frags_per_fs);
  w.u8(policy.max_frags_per_dc);
  w.boolean(policy.data_frags_one_dc);
  w.u8(policy.min_frags_for_success);
}

void encode(Writer& w, const Location& loc) {
  w.u32(loc.fs.value);
  w.u8(loc.disk);
}

void encode(Writer& w, const std::optional<Location>& loc) {
  w.boolean(loc.has_value());
  if (loc.has_value()) encode(w, *loc);
}

void encode(Writer& w, const Metadata& meta) {
  encode(w, meta.policy);
  w.u64(meta.value_size);
  w.u16(static_cast<uint16_t>(meta.locs.size()));
  for (const auto& loc : meta.locs) encode(w, loc);
}

Key decode_key(Reader& r) { return Key{r.str()}; }

Timestamp decode_timestamp(Reader& r) {
  Timestamp ts;
  ts.wall_micros = r.i64();
  ts.proxy = r.u32();
  return ts;
}

ObjectVersionId decode_ov(Reader& r) {
  ObjectVersionId ov;
  ov.key = decode_key(r);
  ov.ts = decode_timestamp(r);
  return ov;
}

Policy decode_policy(Reader& r) {
  Policy p;
  p.k = r.u8();
  p.n = r.u8();
  p.max_frags_per_fs = r.u8();
  p.max_frags_per_dc = r.u8();
  p.data_frags_one_dc = r.boolean();
  p.min_frags_for_success = r.u8();
  if (!p.valid()) throw WireError("invalid policy");
  return p;
}

Location decode_location(Reader& r) {
  Location loc;
  loc.fs.value = r.u32();
  loc.disk = r.u8();
  return loc;
}

std::optional<Location> decode_opt_location(Reader& r) {
  if (!r.boolean()) return std::nullopt;
  return decode_location(r);
}

Metadata decode_metadata(Reader& r) {
  Metadata meta;
  meta.policy = decode_policy(r);
  meta.value_size = r.u64();
  const uint16_t count = r.u16();  // u16: bounded even if corrupted
  meta.locs.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    meta.locs.push_back(decode_opt_location(r));
  }
  return meta;
}

}  // namespace pahoehoe::wire
