// Protocol messages (paper Figures 2–4 plus the §4 optimization messages).
//
// Each message struct knows how to encode itself into a payload and decode
// from one; the Envelope carries the routing header. Message-type names
// follow the legends of the paper's Figures 5–8 so benchmark output can be
// compared line-for-line.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/sha256.h"
#include "common/types.h"
#include "wire/serde.h"

namespace pahoehoe::wire {

enum class MessageType : uint16_t {
  kDecideLocsReq = 1,    ///< proxy → KLS: suggest locations (Fig 2)
  kDecideLocsRep = 2,    ///< KLS → proxy/FS: suggested locations
  kFsDecideLocsReq = 3,  ///< FS → KLS: same request during convergence (§3.5)
  kStoreMetadataReq = 4, ///< proxy → KLS: store(ov, meta)
  kStoreMetadataRep = 5,
  kStoreFragmentReq = 6, ///< proxy → FS: store(ov, meta, frag)
  kStoreFragmentRep = 7,
  kAmrIndication = 8,    ///< proxy/FS → FS: object version is AMR (§4.1)
  kKlsConvergeReq = 9,   ///< FS → KLS: converge(ov, meta) (Fig 4)
  kKlsConvergeRep = 10,
  kFsConvergeReq = 11,   ///< FS → sibling FS: converge(ov, meta)
  kFsConvergeRep = 12,
  kRetrieveTsReq = 13,   ///< proxy → KLS: retrieve_ts(key) (Fig 3)
  kRetrieveTsRep = 14,
  kRetrieveFragReq = 15, ///< proxy/FS → FS: retrieve_frag(ov)
  kRetrieveFragRep = 16,
  kSiblingStoreReq = 17, ///< FS → sibling FS: recovered fragment push (§4.2)
  kSiblingStoreRep = 18,
  kKlsLocsNotify = 19,   ///< KLS → FS: locations decided for an FS request
};

/// Number of distinct message types (for stats arrays).
constexpr int kMessageTypeCount = 20;

const char* to_string(MessageType type);

/// Routing header + serialized payload; what the Network actually delivers.
/// Wire size is the fixed header (14 bytes: from, to, type, payload length)
/// plus the payload.
struct Envelope {
  static constexpr size_t kHeaderBytes = 14;

  NodeId from;
  NodeId to;
  MessageType type{};
  Bytes payload;
  /// Span-context token (obs/span.h) propagating causality across nodes.
  /// Simulation-plane only: never serialized and excluded from wire_size(),
  /// so the paper's byte accounting is unchanged.
  uint64_t span = 0;

  size_t wire_size() const { return kHeaderBytes + payload.size(); }
};

/// Fragment store/retrieve success indicator.
enum class Status : uint8_t { kSuccess = 0, kFailure = 1 };

// --- Put path -------------------------------------------------------------

struct DecideLocsReq {
  ObjectVersionId ov;
  Policy policy;
  /// Size of the object version's value, when the requester knows it
  /// (proxies always do; FSs learned it from their fragment stores). Lets a
  /// KLS that first hears of a version through convergence record the size,
  /// so its location notifications carry enough for recovery sizing.
  uint64_t value_size = 0;
  /// True when sent by an FS during convergence (§3.5): the KLS persists its
  /// suggestion before replying and notifies the sibling FSs.
  bool from_fs = false;

  MessageType type() const {
    return from_fs ? MessageType::kFsDecideLocsReq
                   : MessageType::kDecideLocsReq;
  }
  Bytes encode() const;
  static DecideLocsReq decode(const Bytes& payload);
};

struct DecideLocsRep {
  ObjectVersionId ov;
  /// Slot-aligned suggestions: locs[i] set only for fragment indices the
  /// responding KLS's data center is responsible for.
  Metadata meta;
  DataCenterId dc;

  static constexpr MessageType kType = MessageType::kDecideLocsRep;
  Bytes encode() const;
  static DecideLocsRep decode(const Bytes& payload);
};

struct StoreMetadataReq {
  ObjectVersionId ov;
  Metadata meta;

  static constexpr MessageType kType = MessageType::kStoreMetadataReq;
  Bytes encode() const;
  static StoreMetadataReq decode(const Bytes& payload);
};

struct StoreMetadataRep {
  ObjectVersionId ov;
  Status status = Status::kSuccess;
  /// Locations decided in the KLS's (merged) stored metadata at ack time.
  /// The proxy may conclude a version is AMR only from acks attesting
  /// complete metadata (decided_count == policy.n); counting a partial-
  /// metadata ack would let a lost second-round store leave a KLS
  /// permanently incomplete after the AMR indications killed convergence.
  uint16_t decided_count = 0;

  static constexpr MessageType kType = MessageType::kStoreMetadataRep;
  Bytes encode() const;
  static StoreMetadataRep decode(const Bytes& payload);
};

struct StoreFragmentReq {
  ObjectVersionId ov;
  Metadata meta;
  uint16_t frag_index = 0;
  Bytes fragment;
  Sha256::Digest digest{};

  static constexpr MessageType kType = MessageType::kStoreFragmentReq;
  Bytes encode() const;
  static StoreFragmentReq decode(const Bytes& payload);
};

struct StoreFragmentRep {
  ObjectVersionId ov;
  uint16_t frag_index = 0;
  Status status = Status::kSuccess;

  static constexpr MessageType kType = MessageType::kStoreFragmentRep;
  Bytes encode() const;
  static StoreFragmentRep decode(const Bytes& payload);
};

struct AmrIndication {
  ObjectVersionId ov;

  static constexpr MessageType kType = MessageType::kAmrIndication;
  Bytes encode() const;
  static AmrIndication decode(const Bytes& payload);
};

// --- Get path ---------------------------------------------------------------

struct RetrieveTsReq {
  Key key;
  /// Paging (§3.5: the proxy iteratively retrieves timestamps instead of
  /// all versions at once). Only versions strictly older than `before_ts`
  /// are returned (no bound when invalid), newest first, at most
  /// `max_entries` of them (0 = unlimited).
  Timestamp before_ts;
  uint16_t max_entries = 0;

  static constexpr MessageType kType = MessageType::kRetrieveTsReq;
  Bytes encode() const;
  static RetrieveTsReq decode(const Bytes& payload);
};

struct RetrieveTsRep {
  Key key;
  struct Entry {
    Timestamp ts;
    Metadata meta;
    friend bool operator==(const Entry&, const Entry&) = default;
  };
  /// Newest-first (descending timestamp).
  std::vector<Entry> entries;
  /// True iff older versions beyond this page exist.
  bool more = false;

  static constexpr MessageType kType = MessageType::kRetrieveTsRep;
  Bytes encode() const;
  static RetrieveTsRep decode(const Bytes& payload);
};

struct RetrieveFragReq {
  ObjectVersionId ov;
  uint16_t frag_index = 0;

  static constexpr MessageType kType = MessageType::kRetrieveFragReq;
  Bytes encode() const;
  static RetrieveFragReq decode(const Bytes& payload);
};

struct RetrieveFragRep {
  ObjectVersionId ov;
  uint16_t frag_index = 0;
  bool found = false;  ///< false ⇒ the paper's ⊥ fragment reply
  Bytes fragment;

  static constexpr MessageType kType = MessageType::kRetrieveFragRep;
  Bytes encode() const;
  static RetrieveFragRep decode(const Bytes& payload);
};

// --- Convergence ------------------------------------------------------------

struct KlsConvergeReq {
  ObjectVersionId ov;
  Metadata meta;

  static constexpr MessageType kType = MessageType::kKlsConvergeReq;
  Bytes encode() const;
  static KlsConvergeReq decode(const Bytes& payload);
};

struct KlsConvergeRep {
  ObjectVersionId ov;
  bool verified = false;

  static constexpr MessageType kType = MessageType::kKlsConvergeRep;
  Bytes encode() const;
  static KlsConvergeRep decode(const Bytes& payload);
};

struct FsConvergeReq {
  ObjectVersionId ov;
  Metadata meta;
  /// Sibling-fragment-recovery intent flag (§4.2).
  bool intends_recovery = false;

  static constexpr MessageType kType = MessageType::kFsConvergeReq;
  Bytes encode() const;
  static FsConvergeReq decode(const Bytes& payload);
};

struct FsConvergeRep {
  ObjectVersionId ov;
  bool verified = false;
  /// Fragment indices the replying FS needs recovered (§4.2); only filled
  /// when the request had intends_recovery set.
  std::vector<uint16_t> needed_fragments;
  /// Set when the replying FS is itself attempting sibling recovery, so the
  /// requester can apply the lower-id backoff rule.
  bool also_recovering = false;

  static constexpr MessageType kType = MessageType::kFsConvergeRep;
  Bytes encode() const;
  static FsConvergeRep decode(const Bytes& payload);
};

struct SiblingStoreReq {
  ObjectVersionId ov;
  Metadata meta;
  uint16_t frag_index = 0;
  Bytes fragment;
  Sha256::Digest digest{};

  static constexpr MessageType kType = MessageType::kSiblingStoreReq;
  Bytes encode() const;
  static SiblingStoreReq decode(const Bytes& payload);
};

struct SiblingStoreRep {
  ObjectVersionId ov;
  uint16_t frag_index = 0;
  Status status = Status::kSuccess;

  static constexpr MessageType kType = MessageType::kSiblingStoreRep;
  Bytes encode() const;
  static SiblingStoreRep decode(const Bytes& payload);
};

struct KlsLocsNotify {
  ObjectVersionId ov;
  Metadata meta;

  static constexpr MessageType kType = MessageType::kKlsLocsNotify;
  Bytes encode() const;
  static KlsLocsNotify decode(const Bytes& payload);
};

}  // namespace pahoehoe::wire
