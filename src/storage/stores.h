// Persistent server-side stores (paper §3.2).
//
// KLSs keep a timestamp store (key → object versions) and a metadata store
// (object version → (policy, locations)). FSs keep a metadata store — their
// convergence work-list — and a fragment store (object version →
// (metadata, sibling fragments)). All of these model *stable storage*: they
// survive the crash-and-recover process (§3.1), so server classes keep them
// separate from volatile per-operation state.
//
// Fragments are stored with a SHA-256 digest and a disk id, supporting the
// corruption-detection and disk-rebuild behaviours the paper mentions but
// elides.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/sha256.h"
#include "common/types.h"

namespace pahoehoe::storage {

/// KLS: key → set of version timestamps.
class TimestampStore {
 public:
  /// Record a version timestamp for a key (idempotent).
  void add(const Key& key, const Timestamp& ts);
  /// All timestamps known for the key (empty if none), ascending.
  std::vector<Timestamp> find(const Key& key) const;
  bool contains(const Key& key, const Timestamp& ts) const;
  size_t key_count() const { return by_key_.size(); }

 private:
  std::unordered_map<Key, std::set<Timestamp>> by_key_;
};

/// KLS and FS: object version → metadata, with union-merge semantics
/// (locations accumulate; they are never removed — AMR is stable, §3.6).
class MetaStore {
 public:
  /// Union `meta` into the stored entry (creating it if absent).
  /// Returns true if the stored entry changed.
  bool merge(const ObjectVersionId& ov, const Metadata& meta);
  const Metadata* find(const ObjectVersionId& ov) const;
  bool contains(const ObjectVersionId& ov) const;
  void erase(const ObjectVersionId& ov);
  size_t size() const { return by_ov_.size(); }

  /// Stable iteration order (by key then timestamp) so convergence rounds
  /// are deterministic.
  std::vector<ObjectVersionId> all_versions() const;

 private:
  std::map<ObjectVersionId, Metadata> by_ov_;
};

/// One fragment at rest: bytes + integrity digest + the disk that holds it.
struct StoredFragment {
  Bytes data;
  Sha256::Digest digest{};
  uint8_t disk = 0;

  /// True iff the data still matches the digest. The verification is
  /// cached (convergence consults it per message); fault injection that
  /// mutates the data invalidates the cache.
  bool intact() const;
  void invalidate_intact_cache() { intact_cache_.reset(); }

 private:
  mutable std::optional<bool> intact_cache_;
};

/// FS: object version → (metadata, fragment map). A fragment index missing
/// from `fragments` is the paper's ⊥ fragment.
class FragStore {
 public:
  struct Entry {
    Metadata meta;
    std::map<int, StoredFragment> fragments;
  };

  /// Fetch-or-create the entry for `ov`, initializing metadata from `meta`
  /// on creation and union-merging it otherwise.
  Entry& upsert(const ObjectVersionId& ov, const Metadata& meta);
  Entry* find(const ObjectVersionId& ov);
  const Entry* find(const ObjectVersionId& ov) const;
  bool contains(const ObjectVersionId& ov) const;
  size_t size() const { return by_ov_.size(); }

  /// Store one fragment (overwrites a prior copy of the same index).
  void put_fragment(const ObjectVersionId& ov, const Metadata& meta,
                    int frag_index, Bytes data, const Sha256::Digest& digest,
                    uint8_t disk);

  /// The fragment if present *and* intact, else nullptr (corrupted
  /// fragments read as ⊥, which triggers convergence repair).
  const StoredFragment* fragment_if_intact(const ObjectVersionId& ov,
                                           int frag_index) const;

  /// Destroy every fragment stored on `disk` (disk-failure injection).
  /// Returns the number of fragments lost.
  size_t destroy_disk(uint8_t disk);

  /// Flip a byte of a stored fragment (corruption injection for tests).
  /// Returns false if the fragment is absent or empty.
  bool corrupt_fragment(const ObjectVersionId& ov, int frag_index);

  /// Scrub: indices of stored-but-corrupt fragments for `ov`.
  std::vector<int> corrupt_fragments(const ObjectVersionId& ov) const;

  std::vector<ObjectVersionId> all_versions() const;

 private:
  std::map<ObjectVersionId, Entry> by_ov_;
};

}  // namespace pahoehoe::storage
