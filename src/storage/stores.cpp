#include "storage/stores.h"

#include <algorithm>

#include "common/check.h"

namespace pahoehoe::storage {

void TimestampStore::add(const Key& key, const Timestamp& ts) {
  PAHOEHOE_CHECK(ts.valid());
  by_key_[key].insert(ts);
}

std::vector<Timestamp> TimestampStore::find(const Key& key) const {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return {};
  return std::vector<Timestamp>(it->second.begin(), it->second.end());
}

bool TimestampStore::contains(const Key& key, const Timestamp& ts) const {
  auto it = by_key_.find(key);
  return it != by_key_.end() && it->second.count(ts) > 0;
}

bool MetaStore::merge(const ObjectVersionId& ov, const Metadata& meta) {
  auto [it, inserted] = by_ov_.try_emplace(ov, meta);
  if (inserted) return true;
  Metadata& stored = it->second;
  bool changed = stored.merge_locs(meta);
  if (stored.value_size == 0 && meta.value_size != 0) {
    stored.value_size = meta.value_size;
    changed = true;
  }
  return changed;
}

const Metadata* MetaStore::find(const ObjectVersionId& ov) const {
  auto it = by_ov_.find(ov);
  return it == by_ov_.end() ? nullptr : &it->second;
}

bool MetaStore::contains(const ObjectVersionId& ov) const {
  return by_ov_.count(ov) > 0;
}

void MetaStore::erase(const ObjectVersionId& ov) { by_ov_.erase(ov); }

std::vector<ObjectVersionId> MetaStore::all_versions() const {
  std::vector<ObjectVersionId> out;
  out.reserve(by_ov_.size());
  for (const auto& [ov, meta] : by_ov_) {
    (void)meta;
    out.push_back(ov);
  }
  return out;
}

bool StoredFragment::intact() const {
  if (!intact_cache_.has_value()) {
    intact_cache_ = Sha256::hash(data) == digest;
  }
  return *intact_cache_;
}

FragStore::Entry& FragStore::upsert(const ObjectVersionId& ov,
                                    const Metadata& meta) {
  auto [it, inserted] = by_ov_.try_emplace(ov);
  if (inserted) {
    it->second.meta = meta;
  } else {
    it->second.meta.merge_locs(meta);
    if (it->second.meta.value_size == 0) {
      it->second.meta.value_size = meta.value_size;
    }
  }
  return it->second;
}

FragStore::Entry* FragStore::find(const ObjectVersionId& ov) {
  auto it = by_ov_.find(ov);
  return it == by_ov_.end() ? nullptr : &it->second;
}

const FragStore::Entry* FragStore::find(const ObjectVersionId& ov) const {
  auto it = by_ov_.find(ov);
  return it == by_ov_.end() ? nullptr : &it->second;
}

bool FragStore::contains(const ObjectVersionId& ov) const {
  return by_ov_.count(ov) > 0;
}

void FragStore::put_fragment(const ObjectVersionId& ov, const Metadata& meta,
                             int frag_index, Bytes data,
                             const Sha256::Digest& digest, uint8_t disk) {
  Entry& entry = upsert(ov, meta);
  StoredFragment frag;
  frag.data = std::move(data);
  frag.digest = digest;
  frag.disk = disk;
  entry.fragments[frag_index] = std::move(frag);
}

const StoredFragment* FragStore::fragment_if_intact(const ObjectVersionId& ov,
                                                    int frag_index) const {
  const Entry* entry = find(ov);
  if (entry == nullptr) return nullptr;
  auto it = entry->fragments.find(frag_index);
  if (it == entry->fragments.end()) return nullptr;
  return it->second.intact() ? &it->second : nullptr;
}

size_t FragStore::destroy_disk(uint8_t disk) {
  size_t lost = 0;
  for (auto& [ov, entry] : by_ov_) {
    (void)ov;
    for (auto it = entry.fragments.begin(); it != entry.fragments.end();) {
      if (it->second.disk == disk) {
        it = entry.fragments.erase(it);
        ++lost;
      } else {
        ++it;
      }
    }
  }
  return lost;
}

bool FragStore::corrupt_fragment(const ObjectVersionId& ov, int frag_index) {
  Entry* entry = find(ov);
  if (entry == nullptr) return false;
  auto it = entry->fragments.find(frag_index);
  if (it == entry->fragments.end() || it->second.data.empty()) return false;
  it->second.data[it->second.data.size() / 2] ^= 0xff;
  it->second.invalidate_intact_cache();
  return true;
}

std::vector<int> FragStore::corrupt_fragments(const ObjectVersionId& ov) const {
  std::vector<int> out;
  const Entry* entry = find(ov);
  if (entry == nullptr) return out;
  for (const auto& [index, frag] : entry->fragments) {
    if (!frag.intact()) out.push_back(index);
  }
  return out;
}

std::vector<ObjectVersionId> FragStore::all_versions() const {
  std::vector<ObjectVersionId> out;
  out.reserve(by_ov_.size());
  for (const auto& [ov, entry] : by_ov_) {
    (void)entry;
    out.push_back(ov);
  }
  return out;
}

}  // namespace pahoehoe::storage
