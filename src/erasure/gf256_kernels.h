// Internal kernel interface between the GF(2^8) dispatcher and the
// per-ISA translation units (gf256_ssse3.cpp / gf256_avx2.cpp, each built
// with its own -m flag so the rest of the library stays portable).
//
// Every kernel computes the same contract as the scalar reference:
//   dst[i] ^= mul(coef, src[i])  for i in [0, len)
// where `nib32` points at the 32-byte split-nibble product table for `coef`
// (low-nibble products in bytes 0..15, high-nibble products in 16..31) and
// `row` at the full 256-byte product row — kernels may use either. Buffers
// carry no alignment guarantee; vector bodies use unaligned loads/stores
// and finish sub-vector tails through `row`.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pahoehoe::gf256::detail {

using MulAccFn = void (*)(uint8_t* dst, const uint8_t* src, size_t len,
                          const uint8_t* nib32, const uint8_t* row);

/// Portable reference kernel (the original table-lookup loop).
void mul_acc_scalar(uint8_t* dst, const uint8_t* src, size_t len,
                    const uint8_t* nib32, const uint8_t* row);

/// ISA kernels; nullptr when the toolchain could not compile them (non-x86
/// targets, or a compiler without the -m flag). Runtime CPU support is the
/// dispatcher's problem, not theirs.
MulAccFn ssse3_impl();
MulAccFn avx2_impl();

/// The currently installed kernel (initializes dispatch on first use).
MulAccFn active_mul_acc();

}  // namespace pahoehoe::gf256::detail
