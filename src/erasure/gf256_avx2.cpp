// AVX2 split-nibble mul_acc kernel (VPSHUFB, 32 bytes per step).
//
// Same formulation as the SSSE3 kernel with the 16-entry tables broadcast
// to both 128-bit lanes (VPSHUFB shuffles within lanes, which is exactly
// what the nibble lookup wants). Only this translation unit gets -mavx2.
#include "erasure/gf256_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace pahoehoe::gf256::detail {
namespace {

void mul_acc_avx2(uint8_t* dst, const uint8_t* src, size_t len,
                  const uint8_t* nib32, const uint8_t* row) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib32)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib32 + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    const __m256i prod_lo = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i prod_hi = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi16(s, 4), mask));
    d = _mm256_xor_si256(d, _mm256_xor_si256(prod_lo, prod_hi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

}  // namespace

MulAccFn avx2_impl() { return &mul_acc_avx2; }

}  // namespace pahoehoe::gf256::detail

#else  // !__AVX2__

namespace pahoehoe::gf256::detail {
MulAccFn avx2_impl() { return nullptr; }
}  // namespace pahoehoe::gf256::detail

#endif
