// SSSE3 split-nibble mul_acc kernel (PSHUFB over 16-entry product tables).
//
// This translation unit is the only one built with -mssse3; when the
// toolchain can't do that (non-x86), __SSSE3__ stays undefined and the
// impl collapses to a nullptr stub the dispatcher never installs.
#include "erasure/gf256_kernels.h"

#if defined(__SSSE3__)

#include <tmmintrin.h>

namespace pahoehoe::gf256::detail {
namespace {

void mul_acc_ssse3(uint8_t* dst, const uint8_t* src, size_t len,
                   const uint8_t* nib32, const uint8_t* row) {
  const __m128i lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib32));
  const __m128i hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib32 + 16));
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  // Unaligned loads/stores: fragment buffers carry no alignment guarantee.
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    const __m128i prod_lo = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    // srli_epi16 then mask isolates each byte's high nibble (the bits a
    // 16-bit shift drags across byte boundaries are masked off).
    const __m128i prod_hi =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi16(s, 4), mask));
    d = _mm_xor_si128(d, _mm_xor_si128(prod_lo, prod_hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

}  // namespace

MulAccFn ssse3_impl() { return &mul_acc_ssse3; }

}  // namespace pahoehoe::gf256::detail

#else  // !__SSSE3__

namespace pahoehoe::gf256::detail {
MulAccFn ssse3_impl() { return nullptr; }
}  // namespace pahoehoe::gf256::detail

#endif
