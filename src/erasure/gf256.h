// Arithmetic over GF(2^8) with the AES/Reed-Solomon-conventional reduction
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), generator 2.
//
// Single multiplies are a 64 KiB table lookup. The bulk multiply-accumulate
// (`mul_acc`, the inner loop of every encode/decode) dispatches at runtime
// to the widest available SIMD kernel — split low/high-nibble 16-entry
// product tables applied with PSHUFB (SSSE3) or VPSHUFB (AVX2), the
// ISA-L/Plank FAST'09 technique — with the scalar table loop kept as the
// portable fallback and bit-exactness oracle. Every kernel produces
// byte-identical output (see DESIGN.md §10), so simulation results never
// depend on the host CPU. `PAHOEHOE_GF256_KERNEL=scalar|ssse3|avx2|auto`
// overrides the choice for testing and benchmarking; `force_kernel` does
// the same in-process.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace pahoehoe::gf256 {

/// Addition and subtraction in GF(2^8) are both XOR.
constexpr uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }
constexpr uint8_t sub(uint8_t a, uint8_t b) { return a ^ b; }

namespace detail {
struct Tables {
  std::array<uint8_t, 256> log;            // log[0] unused
  std::array<uint8_t, 512> exp;            // doubled to skip the mod 255
  std::array<std::array<uint8_t, 256>, 256> mul;
  std::array<uint8_t, 256> inv;            // inv[0] unused
  // Split-nibble product tables for the SIMD kernels:
  // nib[c][i] = mul(c, i) and nib[c][16 + i] = mul(c, i << 4) for i < 16,
  // so mul(c, b) == nib[c][b & 0xf] ^ nib[c][16 + (b >> 4)].
  alignas(32) std::array<std::array<uint8_t, 32>, 256> nib;
};
const Tables& tables();
}  // namespace detail

/// Product of a and b.
inline uint8_t mul(uint8_t a, uint8_t b) {
  return detail::tables().mul[a][b];
}

/// Multiplicative inverse of a; a must be nonzero.
uint8_t inverse(uint8_t a);

/// Quotient a/b; b must be nonzero.
inline uint8_t div(uint8_t a, uint8_t b) { return mul(a, inverse(b)); }

/// a raised to the power e (e >= 0).
uint8_t pow(uint8_t a, unsigned e);

/// dst[i] ^= coef * src[i] for all i — the inner loop of encode/decode.
/// coef == 0 is a no-op and coef == 1 a plain XOR, both taken before the
/// kernel dispatch. All kernels are bit-exact; buffers need no alignment.
void mul_acc(std::span<uint8_t> dst, std::span<const uint8_t> src,
             uint8_t coef);

// --- mul_acc kernel selection ----------------------------------------------

enum class Kernel : uint8_t { kScalar = 0, kSsse3 = 1, kAvx2 = 2 };
inline constexpr int kKernelCount = 3;

/// "scalar", "ssse3", or "avx2".
const char* to_string(Kernel k);

/// Inverse of to_string; nullopt for anything else (including "auto" —
/// auto-selection is expressed by reset_kernel / the env default).
std::optional<Kernel> parse_kernel(std::string_view name);

/// Whether the kernel's code was compiled into this binary at all.
bool kernel_compiled(Kernel k);

/// Compiled AND supported by the CPU we are running on.
bool kernel_supported(Kernel k);

/// Every supported kernel, narrowest (scalar) first.
std::vector<Kernel> supported_kernels();

/// The widest supported kernel — what auto-selection picks.
Kernel best_kernel();

/// The kernel mul_acc currently dispatches to.
Kernel active_kernel();

/// Force dispatch to `k` (must be supported) until reset_kernel(). For
/// tests and benches; call it only while no other thread is encoding.
void force_kernel(Kernel k);

/// Back to the default choice: $PAHOEHOE_GF256_KERNEL if set, else best.
void reset_kernel();

}  // namespace pahoehoe::gf256
