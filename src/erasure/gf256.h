// Arithmetic over GF(2^8) with the AES/Reed-Solomon-conventional reduction
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), generator 2.
//
// Tables are built once at static-initialization time; multiplication is a
// single 64 KiB table lookup, which keeps encode/decode fast enough for the
// paper's workloads (100 KiB objects) without SIMD.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace pahoehoe::gf256 {

/// Addition and subtraction in GF(2^8) are both XOR.
constexpr uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }
constexpr uint8_t sub(uint8_t a, uint8_t b) { return a ^ b; }

namespace detail {
struct Tables {
  std::array<uint8_t, 256> log;            // log[0] unused
  std::array<uint8_t, 512> exp;            // doubled to skip the mod 255
  std::array<std::array<uint8_t, 256>, 256> mul;
  std::array<uint8_t, 256> inv;            // inv[0] unused
};
const Tables& tables();
}  // namespace detail

/// Product of a and b.
inline uint8_t mul(uint8_t a, uint8_t b) {
  return detail::tables().mul[a][b];
}

/// Multiplicative inverse of a; a must be nonzero.
uint8_t inverse(uint8_t a);

/// Quotient a/b; b must be nonzero.
inline uint8_t div(uint8_t a, uint8_t b) { return mul(a, inverse(b)); }

/// a raised to the power e (e >= 0).
uint8_t pow(uint8_t a, unsigned e);

/// dst[i] ^= coef * src[i] for all i — the inner loop of encode/decode.
void mul_acc(std::span<uint8_t> dst, std::span<const uint8_t> src,
             uint8_t coef);

}  // namespace pahoehoe::gf256
