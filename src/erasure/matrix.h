// Dense matrices over GF(2^8), sized for erasure-code work (n, k ≤ 255).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pahoehoe::erasure {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  uint8_t at(int r, int c) const { return data_[index(r, c)]; }
  uint8_t& at(int r, int c) { return data_[index(r, c)]; }

  /// Identity matrix of the given size.
  static Matrix identity(int size);
  /// Vandermonde matrix: at(r, c) = r^c. Any square submatrix formed from
  /// distinct rows of a Vandermonde matrix with ≤255 rows is invertible.
  static Matrix vandermonde(int rows, int cols);

  /// Matrix product this × rhs; cols() must equal rhs.rows().
  Matrix multiply(const Matrix& rhs) const;
  /// Matrix formed from the listed rows of this matrix, in order.
  Matrix select_rows(const std::vector<int>& row_indices) const;
  /// Inverse via Gauss-Jordan elimination; the matrix must be square and
  /// nonsingular (PAHOEHOE_CHECK enforced — callers guarantee this by
  /// construction for RS matrices).
  Matrix inverted() const;
  /// True iff square and invertible (non-destructive test).
  bool invertible() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  size_t index(int r, int c) const;
  /// Gauss-Jordan; returns false if singular. On success *out is the inverse.
  bool try_invert(Matrix* out) const;

  int rows_ = 0;
  int cols_ = 0;
  std::vector<uint8_t> data_;
};

}  // namespace pahoehoe::erasure
