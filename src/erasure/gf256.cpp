#include "erasure/gf256.h"

#include "common/check.h"
#include "erasure/gf256_kernels.h"

namespace pahoehoe::gf256 {
namespace detail {

namespace {

Tables build_tables() {
  Tables t{};
  // Generator 2 over the field reduced by 0x11d.
  uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<uint8_t>(x);
    t.log[static_cast<uint8_t>(x)] = static_cast<uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11d;
  }
  for (int i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
  t.log[0] = 0;  // never consulted; log(0) is undefined

  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      if (a == 0 || b == 0) {
        t.mul[a][b] = 0;
      } else {
        t.mul[a][b] = t.exp[t.log[a] + t.log[b]];
      }
    }
  }
  t.inv[0] = 0;  // never consulted
  for (int a = 1; a < 256; ++a) {
    t.inv[a] = t.exp[255 - t.log[a]];
  }
  for (int c = 0; c < 256; ++c) {
    for (int i = 0; i < 16; ++i) {
      t.nib[c][static_cast<size_t>(i)] = t.mul[c][i];
      t.nib[c][static_cast<size_t>(16 + i)] = t.mul[c][i << 4];
    }
  }
  return t;
}

}  // namespace

const Tables& tables() {
  static const Tables t = build_tables();
  return t;
}

void mul_acc_scalar(uint8_t* dst, const uint8_t* src, size_t len,
                    const uint8_t* /*nib32*/, const uint8_t* row) {
  for (size_t i = 0; i < len; ++i) dst[i] ^= row[src[i]];
}

}  // namespace detail

uint8_t inverse(uint8_t a) {
  PAHOEHOE_CHECK_MSG(a != 0, "GF(2^8) inverse of zero");
  return detail::tables().inv[a];
}

uint8_t pow(uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  const unsigned log_a = t.log[a];
  return t.exp[(log_a * (e % 255ull)) % 255];
}

void mul_acc(std::span<uint8_t> dst, std::span<const uint8_t> src,
             uint8_t coef) {
  PAHOEHOE_CHECK(dst.size() == src.size());
  if (coef == 0 || dst.empty()) return;
  if (coef == 1) {
    // Pure XOR; the compiler vectorizes this loop on its own.
    for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  const auto& t = detail::tables();
  detail::active_mul_acc()(dst.data(), src.data(), dst.size(),
                           t.nib[coef].data(), t.mul[coef].data());
}

}  // namespace pahoehoe::gf256
