// Runtime kernel selection for gf256::mul_acc.
//
// The choice is made once — $PAHOEHOE_GF256_KERNEL if set, otherwise the
// widest kernel both compiled in and supported by CPUID — and installed in
// an atomic function pointer that the hot path reads relaxed (any published
// value is a valid, bit-exact kernel, so no ordering is needed).
// force_kernel/reset_kernel reinstall it for tests and benches; they must
// not race with concurrent encoders, which is fine for their use (set once
// before a sweep / between measurement sections).
#include <atomic>
#include <cstdio>

#include "common/check.h"
#include "common/env.h"
#include "erasure/gf256.h"
#include "erasure/gf256_kernels.h"

namespace pahoehoe::gf256 {
namespace {

bool cpu_supports_ssse3() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("ssse3");
#else
  return false;
#endif
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

detail::MulAccFn fn_for(Kernel k) {
  switch (k) {
    case Kernel::kSsse3:
      return detail::ssse3_impl();
    case Kernel::kAvx2:
      return detail::avx2_impl();
    case Kernel::kScalar:
      break;
  }
  return &detail::mul_acc_scalar;
}

std::atomic<detail::MulAccFn> g_fn{nullptr};
std::atomic<int> g_active{static_cast<int>(Kernel::kScalar)};

void install(Kernel k) {
  // Order matters for active_kernel() readers racing a (test-only) install:
  // publish the name first, then the function pointer that gates first-use
  // initialization. Both values are always individually valid.
  g_active.store(static_cast<int>(k), std::memory_order_relaxed);
  g_fn.store(fn_for(k), std::memory_order_relaxed);
}

Kernel default_kernel() {
  const std::optional<std::string> override =
      env::override_value("PAHOEHOE_GF256_KERNEL");
  if (!override.has_value() || *override == "auto") {
    return best_kernel();
  }
  const std::optional<Kernel> requested = parse_kernel(*override);
  if (!requested.has_value()) {
    std::fprintf(stderr,
                 "pahoehoe: unknown PAHOEHOE_GF256_KERNEL=\"%s\" "
                 "(want scalar|ssse3|avx2|auto); using %s\n",
                 override->c_str(), to_string(best_kernel()));
    return best_kernel();
  }
  if (!kernel_supported(*requested)) {
    std::fprintf(stderr,
                 "pahoehoe: PAHOEHOE_GF256_KERNEL=%s is not %s on this host; "
                 "using %s\n",
                 override->c_str(),
                 kernel_compiled(*requested) ? "supported" : "compiled in",
                 to_string(best_kernel()));
    return best_kernel();
  }
  return *requested;
}

void init_dispatch() {
  // Function-local static: exactly one thread runs the initializer, any
  // racing threads block until the install is visible.
  static const bool initialized = [] {
    install(default_kernel());
    return true;
  }();
  (void)initialized;
}

}  // namespace

namespace detail {

MulAccFn active_mul_acc() {
  MulAccFn fn = g_fn.load(std::memory_order_relaxed);
  if (fn == nullptr) {
    init_dispatch();
    fn = g_fn.load(std::memory_order_relaxed);
  }
  return fn;
}

}  // namespace detail

const char* to_string(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kSsse3:
      return "ssse3";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "?";
}

std::optional<Kernel> parse_kernel(std::string_view name) {
  if (name == "scalar") return Kernel::kScalar;
  if (name == "ssse3") return Kernel::kSsse3;
  if (name == "avx2") return Kernel::kAvx2;
  return std::nullopt;
}

bool kernel_compiled(Kernel k) {
  return fn_for(k) != nullptr;
}

bool kernel_supported(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return true;
    case Kernel::kSsse3:
      return kernel_compiled(k) && cpu_supports_ssse3();
    case Kernel::kAvx2:
      return kernel_compiled(k) && cpu_supports_avx2();
  }
  return false;
}

std::vector<Kernel> supported_kernels() {
  std::vector<Kernel> out;
  for (Kernel k : {Kernel::kScalar, Kernel::kSsse3, Kernel::kAvx2}) {
    if (kernel_supported(k)) out.push_back(k);
  }
  return out;
}

Kernel best_kernel() {
  if (kernel_supported(Kernel::kAvx2)) return Kernel::kAvx2;
  if (kernel_supported(Kernel::kSsse3)) return Kernel::kSsse3;
  return Kernel::kScalar;
}

Kernel active_kernel() {
  init_dispatch();
  return static_cast<Kernel>(g_active.load(std::memory_order_relaxed));
}

void force_kernel(Kernel k) {
  PAHOEHOE_CHECK_MSG(kernel_supported(k),
                     "force_kernel: kernel not supported on this host");
  init_dispatch();
  install(k);
}

void reset_kernel() {
  init_dispatch();
  install(default_kernel());
}

}  // namespace pahoehoe::gf256
