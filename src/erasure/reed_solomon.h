// Systematic Reed-Solomon erasure codec (paper §2).
//
// A value is striped across the first k "data" fragments; the remaining
// m = n - k "parity" fragments are GF(2^8) linear combinations chosen so any
// k of the n fragments recover the value. The encode matrix is a Vandermonde
// matrix transformed to systematic form (top k×k = identity), which keeps
// every k-row submatrix invertible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "erasure/matrix.h"

namespace pahoehoe::erasure {

/// One recovered-or-supplied fragment for decode/regenerate.
struct IndexedFragment {
  int index = -1;     ///< fragment index in [0, n)
  const Bytes* data = nullptr;
};

class ReedSolomon {
 public:
  /// Requires 1 ≤ k ≤ n ≤ 255.
  ReedSolomon(int k, int n);

  int k() const { return k_; }
  int n() const { return n_; }

  /// Size of each fragment for a value of `value_size` bytes:
  /// ceil(value_size / k); the last data fragment is zero-padded.
  /// An empty value yields zero-length fragments.
  size_t fragment_size(size_t value_size) const;

  /// Encode a value into n fragments (indices 0..n-1).
  std::vector<Bytes> encode(const Bytes& value) const;

  /// Recover the original value from any k distinct fragments.
  /// `value_size` is the original length (carried in object metadata).
  Bytes decode(const std::vector<IndexedFragment>& fragments,
               size_t value_size) const;

  /// Regenerate the fragments at `target_indices` from any k distinct
  /// available fragments, without materializing the full value.
  std::vector<Bytes> regenerate(const std::vector<IndexedFragment>& available,
                                const std::vector<int>& target_indices,
                                size_t value_size) const;

  /// Same, sized by the fragment length directly. Fragment regeneration
  /// operates stripe-wise and never needs the original value length, so a
  /// repairing server that has fragments but no size metadata can still
  /// rebuild siblings bit-exactly.
  std::vector<Bytes> regenerate_sized(
      const std::vector<IndexedFragment>& available,
      const std::vector<int>& target_indices, size_t frag_size) const;

  /// The n×k systematic encode matrix (exposed for tests).
  const Matrix& encode_matrix() const { return encode_matrix_; }

 private:
  /// Data fragments (the first k rows) recovered from any k fragments.
  std::vector<Bytes> recover_data_fragments(
      const std::vector<IndexedFragment>& fragments, size_t frag_size) const;

  int k_;
  int n_;
  Matrix encode_matrix_;
};

}  // namespace pahoehoe::erasure
