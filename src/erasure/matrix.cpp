#include "erasure/matrix.h"

#include "common/check.h"
#include "erasure/gf256.h"

namespace pahoehoe::erasure {

Matrix::Matrix(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0) {
  PAHOEHOE_CHECK(rows >= 0 && cols >= 0);
}

size_t Matrix::index(int r, int c) const {
  PAHOEHOE_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return static_cast<size_t>(r) * static_cast<size_t>(cols_) +
         static_cast<size_t>(c);
}

Matrix Matrix::identity(int size) {
  Matrix m(size, size);
  for (int i = 0; i < size; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::vandermonde(int rows, int cols) {
  PAHOEHOE_CHECK_MSG(rows <= 256, "Vandermonde rows exceed field size");
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.at(r, c) = gf256::pow(static_cast<uint8_t>(r), static_cast<unsigned>(c));
    }
  }
  return m;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  PAHOEHOE_CHECK(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      const uint8_t a = at(r, k);
      if (a == 0) continue;
      for (int c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) =
            gf256::add(out.at(r, c), gf256::mul(a, rhs.at(k, c)));
      }
    }
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<int>& row_indices) const {
  Matrix out(static_cast<int>(row_indices.size()), cols_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    for (int c = 0; c < cols_; ++c) {
      out.at(static_cast<int>(i), c) = at(row_indices[i], c);
    }
  }
  return out;
}

bool Matrix::try_invert(Matrix* out) const {
  if (rows_ != cols_) return false;
  const int n = rows_;
  Matrix work = *this;
  Matrix inv = identity(n);
  for (int col = 0; col < n; ++col) {
    // Find a pivot row at or below `col`.
    int pivot = -1;
    for (int r = col; r < n; ++r) {
      if (work.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return false;
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(work.at(pivot, c), work.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    // Scale the pivot row so the pivot is 1.
    const uint8_t scale = gf256::inverse(work.at(col, col));
    for (int c = 0; c < n; ++c) {
      work.at(col, c) = gf256::mul(work.at(col, c), scale);
      inv.at(col, c) = gf256::mul(inv.at(col, c), scale);
    }
    // Eliminate the column everywhere else.
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (int c = 0; c < n; ++c) {
        work.at(r, c) =
            gf256::sub(work.at(r, c), gf256::mul(factor, work.at(col, c)));
        inv.at(r, c) =
            gf256::sub(inv.at(r, c), gf256::mul(factor, inv.at(col, c)));
      }
    }
  }
  *out = std::move(inv);
  return true;
}

Matrix Matrix::inverted() const {
  Matrix out;
  PAHOEHOE_CHECK_MSG(try_invert(&out), "matrix is singular");
  return out;
}

bool Matrix::invertible() const {
  Matrix scratch;
  return try_invert(&scratch);
}

}  // namespace pahoehoe::erasure
