#include "erasure/reed_solomon.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "erasure/gf256.h"
#include "obs/prof.h"

namespace pahoehoe::erasure {
namespace {

// Wall-clock phase ids carry the active kernel so a profile shows *which*
// mul_acc implementation burned the time. The names are string literals
// selected at scope entry (obs::ProfScope keeps only the pointer); lookup
// runs only when profiling is enabled.
struct KernelPhases {
  const char* by_kernel[gf256::kKernelCount];
};

constexpr KernelPhases kEncodePhase = {
    {"rs_encode[scalar]", "rs_encode[ssse3]", "rs_encode[avx2]"}};
constexpr KernelPhases kDecodePhase = {
    {"rs_decode[scalar]", "rs_decode[ssse3]", "rs_decode[avx2]"}};
constexpr KernelPhases kRegeneratePhase = {
    {"rs_regenerate[scalar]", "rs_regenerate[ssse3]", "rs_regenerate[avx2]"}};

const char* kernel_phase(const KernelPhases& phases) {
  if (!obs::prof::enabled()) return nullptr;
  return phases.by_kernel[static_cast<int>(gf256::active_kernel())];
}

// Vandermonde-to-systematic transform: V (n×k) times inverse(top k×k of V)
// leaves the top k rows as identity while preserving the property that any
// k rows form an invertible matrix (row operations on the right factor do
// not change row-subset independence).
Matrix build_systematic_matrix(int k, int n) {
  Matrix v = Matrix::vandermonde(n, k);
  std::vector<int> top(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) top[static_cast<size_t>(i)] = i;
  Matrix top_inv = v.select_rows(top).inverted();
  return v.multiply(top_inv);
}

// Row-major product of the selected matrix rows against whole fragments:
// out[r] = sum_j m(rows[r], j) * inputs[j]. Every encode/decode/regenerate
// funnels through this loop, so the gf256 kernel dispatch (scalar / SSSE3 /
// AVX2, bit-exact by contract) covers all of them. mul_acc itself takes the
// coefficient 0 (skip) and 1 (XOR) fast paths — with a systematic matrix the
// identity rows reduce to a single copy-by-XOR.
std::vector<Bytes> multiply_rows(const Matrix& m, const std::vector<int>& rows,
                                 const std::vector<const Bytes*>& inputs,
                                 size_t frag_size) {
  std::vector<Bytes> out;
  out.reserve(rows.size());
  for (int r : rows) {
    Bytes acc(frag_size, 0);
    for (size_t j = 0; j < inputs.size(); ++j) {
      gf256::mul_acc(acc, *inputs[j], m.at(r, static_cast<int>(j)));
    }
    out.push_back(std::move(acc));
  }
  return out;
}

}  // namespace

ReedSolomon::ReedSolomon(int k, int n)
    : k_(k), n_(n), encode_matrix_(build_systematic_matrix(k, n)) {
  PAHOEHOE_CHECK_MSG(k >= 1 && k <= n && n <= 255,
                     "ReedSolomon requires 1 <= k <= n <= 255");
}

size_t ReedSolomon::fragment_size(size_t value_size) const {
  return (value_size + static_cast<size_t>(k_) - 1) /
         static_cast<size_t>(k_);
}

std::vector<Bytes> ReedSolomon::encode(const Bytes& value) const {
  // lint:prof-ok(kernel_phase returns a pointer into a static name table)
  obs::ProfScope prof(kernel_phase(kEncodePhase));
  const size_t frag_size = fragment_size(value.size());
  std::vector<Bytes> fragments(static_cast<size_t>(n_));

  // Data fragments: stripe the value, zero-padding the tail. An empty value
  // yields n zero-length fragments (frag_size == 0).
  for (int i = 0; i < k_; ++i) {
    Bytes frag(frag_size, 0);
    const size_t offset = static_cast<size_t>(i) * frag_size;
    if (offset < value.size()) {
      const size_t take = std::min(frag_size, value.size() - offset);
      std::memcpy(frag.data(), value.data() + offset, take);
    }
    fragments[static_cast<size_t>(i)] = std::move(frag);
  }

  // Parity fragments: rows k..n-1 of the encode matrix over the data rows.
  std::vector<const Bytes*> data;
  data.reserve(static_cast<size_t>(k_));
  for (int j = 0; j < k_; ++j) data.push_back(&fragments[static_cast<size_t>(j)]);
  std::vector<int> parity_rows;
  parity_rows.reserve(static_cast<size_t>(n_ - k_));
  for (int i = k_; i < n_; ++i) parity_rows.push_back(i);
  std::vector<Bytes> parity =
      multiply_rows(encode_matrix_, parity_rows, data, frag_size);
  for (size_t i = 0; i < parity.size(); ++i) {
    fragments[static_cast<size_t>(k_) + i] = std::move(parity[i]);
  }
  return fragments;
}

std::vector<Bytes> ReedSolomon::recover_data_fragments(
    const std::vector<IndexedFragment>& fragments, size_t frag_size) const {
  PAHOEHOE_CHECK_MSG(fragments.size() >= static_cast<size_t>(k_),
                     "need at least k fragments to decode");

  // Use the first k distinct indices supplied.
  std::vector<int> indices;
  std::vector<const Bytes*> data;
  for (const auto& f : fragments) {
    if (std::find(indices.begin(), indices.end(), f.index) != indices.end()) {
      continue;
    }
    PAHOEHOE_CHECK(f.index >= 0 && f.index < n_ && f.data != nullptr);
    PAHOEHOE_CHECK_MSG(f.data->size() == frag_size,
                       "fragment size mismatch");
    indices.push_back(f.index);
    data.push_back(f.data);
    if (indices.size() == static_cast<size_t>(k_)) break;
  }
  PAHOEHOE_CHECK_MSG(indices.size() == static_cast<size_t>(k_),
                     "need k distinct fragment indices to decode");

  const Matrix decode = encode_matrix_.select_rows(indices).inverted();
  std::vector<int> rows(static_cast<size_t>(k_));
  for (int r = 0; r < k_; ++r) rows[static_cast<size_t>(r)] = r;
  return multiply_rows(decode, rows, data, frag_size);
}

Bytes ReedSolomon::decode(const std::vector<IndexedFragment>& fragments,
                          size_t value_size) const {
  // lint:prof-ok(kernel_phase returns a pointer into a static name table)
  obs::ProfScope prof(kernel_phase(kDecodePhase));
  const size_t frag_size = fragment_size(value_size);
  if (value_size == 0) return {};
  std::vector<Bytes> data_frags = recover_data_fragments(fragments, frag_size);

  Bytes value(value_size);
  for (int i = 0; i < k_; ++i) {
    const size_t offset = static_cast<size_t>(i) * frag_size;
    if (offset >= value_size) break;
    const size_t take = std::min(frag_size, value_size - offset);
    std::memcpy(value.data() + offset,
                data_frags[static_cast<size_t>(i)].data(), take);
  }
  return value;
}

std::vector<Bytes> ReedSolomon::regenerate(
    const std::vector<IndexedFragment>& available,
    const std::vector<int>& target_indices, size_t value_size) const {
  return regenerate_sized(available, target_indices,
                          fragment_size(value_size));
}

std::vector<Bytes> ReedSolomon::regenerate_sized(
    const std::vector<IndexedFragment>& available,
    const std::vector<int>& target_indices, size_t frag_size) const {
  // lint:prof-ok(kernel_phase returns a pointer into a static name table)
  obs::ProfScope prof(kernel_phase(kRegeneratePhase));
  if (frag_size == 0) {
    return std::vector<Bytes>(target_indices.size(), Bytes{});
  }
  std::vector<Bytes> data_frags = recover_data_fragments(available, frag_size);
  std::vector<const Bytes*> data;
  data.reserve(data_frags.size());
  for (const Bytes& f : data_frags) data.push_back(&f);
  for (int target : target_indices) {
    PAHOEHOE_CHECK(target >= 0 && target < n_);
  }
  return multiply_rows(encode_matrix_, target_indices, data, frag_size);
}

}  // namespace pahoehoe::erasure
