// Deterministic single-threaded discrete-event simulator.
//
// Events fire in (time, insertion-sequence) order, so two events scheduled
// for the same instant run in the order they were scheduled and every run
// with the same seed replays identically. The protocol code never reads a
// real clock; all time comes from Simulator::now().
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace pahoehoe::sim {

/// Handle for cancelling a scheduled event. 0 is never a valid id.
using TimerId = uint64_t;

class Simulator {
 public:
  using Callback = std::function<void()>;

  explicit Simulator(uint64_t seed) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedule `fn` to run at absolute simulated time `t` (≥ now).
  TimerId schedule_at(SimTime t, Callback fn);
  /// Schedule `fn` to run `delay` microseconds from now (≥ 0).
  TimerId schedule_after(SimTime delay, Callback fn);
  /// Cancel a scheduled event; harmless if it already fired or was cancelled.
  void cancel(TimerId id);

  /// Execute the next pending event; returns false if none remain.
  bool step();
  /// Run until the event queue drains or simulated time would pass `until`.
  /// Returns the number of events executed.
  size_t run(SimTime until = std::numeric_limits<SimTime>::max());

  /// Events scheduled and still live (not executed, not cancelled).
  size_t pending() const { return live_.size(); }
  /// Total events executed since construction.
  uint64_t executed() const { return executed_; }
  /// Time of the most recently executed event (0 if none ran yet). Unlike
  /// now(), this is not advanced by a finite run() horizon, so it measures
  /// when the system actually went quiet.
  SimTime last_event_time() const { return last_event_time_; }

 private:
  struct Event {
    SimTime time;
    TimerId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  SimTime now_ = 0;
  SimTime last_event_time_ = 0;
  TimerId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<TimerId> cancelled_;
  std::unordered_set<TimerId> live_;  // scheduled, not fired, not cancelled
  Rng rng_;
};

}  // namespace pahoehoe::sim
