#include "sim/simulator.h"

#include "common/check.h"

namespace pahoehoe::sim {

TimerId Simulator::schedule_at(SimTime t, Callback fn) {
  PAHOEHOE_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
  PAHOEHOE_CHECK(fn != nullptr);
  const TimerId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  live_.insert(id);
  return id;
}

TimerId Simulator::schedule_after(SimTime delay, Callback fn) {
  PAHOEHOE_CHECK_MSG(delay >= 0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(TimerId id) {
  if (live_.erase(id) == 0) return;  // already fired or cancelled
  cancelled_.insert(id);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; copy-out then pop. Callbacks are small.
    Event event = queue_.top();
    queue_.pop();
    auto cancelled = cancelled_.find(event.id);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    live_.erase(event.id);
    now_ = event.time;
    last_event_time_ = event.time;
    ++executed_;
    event.fn();
    return true;
  }
  return false;
}

size_t Simulator::run(SimTime until) {
  size_t count = 0;
  while (!queue_.empty()) {
    // Reap cancelled events first so the time-limit check below sees the
    // next event that would actually execute.
    while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().time > until) break;
    if (!step()) break;
    ++count;
  }
  // A finite horizon advances the clock to it even when no events fall in
  // the window, so "run for 40 s" behaves intuitively.
  if (until != std::numeric_limits<SimTime>::max() && until > now_) {
    now_ = until;
  }
  return count;
}

}  // namespace pahoehoe::sim
