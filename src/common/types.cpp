#include "common/types.h"

#include <algorithm>

#include "common/check.h"

namespace pahoehoe {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kClient:
      return "client";
    case NodeKind::kProxy:
      return "proxy";
    case NodeKind::kKls:
      return "kls";
    case NodeKind::kFs:
      return "fs";
  }
  return "?";
}

bool Policy::valid() const {
  if (k == 0 || n < k) return false;
  if (max_frags_per_fs == 0 || max_frags_per_dc == 0) return false;
  if (min_frags_for_success > n) return false;
  return true;
}

int Metadata::decided_count() const {
  return static_cast<int>(
      std::count_if(locs.begin(), locs.end(),
                    [](const auto& l) { return l.has_value(); }));
}

bool Metadata::complete() const {
  return !locs.empty() && decided_count() == static_cast<int>(locs.size());
}

std::vector<int> Metadata::fragments_for(NodeId fs) const {
  std::vector<int> out;
  for (size_t i = 0; i < locs.size(); ++i) {
    if (locs[i].has_value() && locs[i]->fs == fs) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<NodeId> Metadata::sibling_fs() const {
  std::vector<NodeId> out;
  for (const auto& loc : locs) {
    if (!loc.has_value()) continue;
    if (std::find(out.begin(), out.end(), loc->fs) == out.end()) {
      out.push_back(loc->fs);
    }
  }
  return out;
}

bool Metadata::merge_locs(const Metadata& other) {
  PAHOEHOE_CHECK_MSG(locs.size() == other.locs.size() || other.locs.empty() ||
                         locs.empty(),
                     "metadata merge across incompatible policies");
  if (locs.empty()) locs.resize(other.locs.size());
  bool changed = false;
  for (size_t i = 0; i < other.locs.size() && i < locs.size(); ++i) {
    if (!locs[i].has_value() && other.locs[i].has_value()) {
      locs[i] = other.locs[i];
      changed = true;
    }
  }
  return changed;
}

std::string to_string(NodeId id) {
  return id.valid() ? "n" + std::to_string(id.value) : "n?";
}

std::string to_string(const Timestamp& ts) {
  if (!ts.valid()) return "ts(⊥)";
  return "ts(" + std::to_string(ts.wall_micros) + "." +
         std::to_string(ts.proxy) + ")";
}

std::string to_string(const ObjectVersionId& ov) {
  return "ov(" + ov.key.value + "," + to_string(ov.ts) + ")";
}

std::string to_string(const Location& loc) {
  return to_string(loc.fs) + "/d" + std::to_string(loc.disk);
}

}  // namespace pahoehoe
