// Deterministic parallel dispatch for independent seed runs.
//
// The sweep and bench harnesses run many seeds, each of which owns its
// whole simulation stack (Simulator, Network, Cluster), so seeds can run
// on worker threads with no sharing. Callers collect per-index results
// into pre-sized slots and aggregate in index order afterwards, which
// makes a T-thread run byte-identical to the serial run.
#pragma once

#include <functional>

namespace pahoehoe {

/// Worker count to actually use: `requested` clamped to [1, n], with
/// requested <= 0 meaning "one per hardware thread".
int resolve_jobs(int requested, int n);

/// Run fn(0), fn(1), …, fn(n-1), distributed across `jobs` worker threads
/// (inline when jobs <= 1). Indices are claimed from a shared counter, so
/// every index runs exactly once; completion order is unspecified. `fn`
/// must be safe to call concurrently for distinct indices. If any call
/// throws, one of the exceptions is rethrown after all workers finish.
void parallel_for(int n, int jobs, const std::function<void(int)>& fn);

}  // namespace pahoehoe
