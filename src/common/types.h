// Core domain types shared by every Pahoehoe module.
//
// These model the vocabulary of the DSN'10 paper: nodes (proxies, Key Lookup
// Servers, Fragment Servers), keys, Pahoehoe-assigned timestamps, object
// versions, durability policies, fragment locations, and object-version
// metadata (policy + locations).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace pahoehoe {

/// Raw byte buffer used for values and fragments.
using Bytes = std::vector<uint8_t>;

/// Simulated time in microseconds since simulation start.
using SimTime = int64_t;

constexpr SimTime kMicrosPerMilli = 1'000;
constexpr SimTime kMicrosPerSecond = 1'000'000;

/// Role of a node in the system; part of a node's identity for diagnostics.
enum class NodeKind : uint8_t {
  kClient = 0,
  kProxy = 1,
  kKls = 2,  ///< Key Lookup Server (metadata)
  kFs = 3,   ///< Fragment Server (data)
};

const char* to_string(NodeKind kind);

/// Globally unique node identifier assigned by the Cluster builder.
/// The numeric value doubles as the paper's "unique server id" used to break
/// ties in sibling-fragment-recovery backoff (§4.2).
struct NodeId {
  static constexpr uint32_t kInvalid = 0xffff'ffff;

  uint32_t value = kInvalid;

  constexpr bool valid() const { return value != kInvalid; }
  friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

/// Identifier of a data center (the paper's experiments use two).
struct DataCenterId {
  static constexpr uint8_t kInvalid = 0xff;

  uint8_t value = kInvalid;

  constexpr bool valid() const { return value != kInvalid; }
  friend constexpr auto operator<=>(DataCenterId, DataCenterId) = default;
};

/// Application-provided object name.
struct Key {
  std::string value;

  friend auto operator<=>(const Key&, const Key&) = default;
};

/// Pahoehoe-assigned version timestamp: loosely synchronized wall time
/// concatenated with the proxy's unique id (paper §3.2, proxy line 3).
/// Total order: by wall time, ties broken by proxy id.
struct Timestamp {
  SimTime wall_micros = -1;
  uint32_t proxy = NodeId::kInvalid;

  constexpr bool valid() const { return wall_micros >= 0; }
  friend constexpr auto operator<=>(const Timestamp&,
                                    const Timestamp&) = default;
};

/// Unique identifier of one object version: (key, timestamp).
struct ObjectVersionId {
  Key key;
  Timestamp ts;

  friend auto operator<=>(const ObjectVersionId&,
                          const ObjectVersionId&) = default;
};

/// Durability policy attached to a put (paper §2). The default mirrors the
/// paper: (k=4, n=12) systematic Reed-Solomon, at most 2 fragments per FS,
/// 6 fragments per data center, all k data fragments in one data center.
struct Policy {
  uint8_t k = 4;   ///< data fragments; any k of n recover the value
  uint8_t n = 12;  ///< total fragments (k data + m parity)
  uint8_t max_frags_per_fs = 2;
  uint8_t max_frags_per_dc = 6;
  /// All k data fragments placed in the proxy's local data center.
  bool data_frags_one_dc = true;
  /// Successful FS fragment-store replies required before the proxy reports
  /// success to the client ("enough (specified by the policy)", §3.2).
  uint8_t min_frags_for_success = 8;

  constexpr uint8_t m() const { return static_cast<uint8_t>(n - k); }
  /// True iff internally consistent (k ≤ n, thresholds within range, ...).
  bool valid() const;

  friend constexpr auto operator<=>(const Policy&, const Policy&) = default;
};

/// Where one fragment lives: a Fragment Server and a disk on that server
/// (§3.5: a location identifies both an FS and a disk).
struct Location {
  NodeId fs;
  uint8_t disk = 0;

  constexpr bool valid() const { return fs.valid(); }
  friend constexpr auto operator<=>(const Location&,
                                    const Location&) = default;
};

/// Object-version metadata: (policy, locations) as stored by KLSs and FSs.
/// `locs[i]` is the location of fragment index i, or nullopt while the
/// location for that fragment's data center has not been decided.
struct Metadata {
  Policy policy;
  /// Size of the original value in bytes; fragments are ceil(value_size/k)
  /// bytes each, so siblings can regenerate without seeing the value.
  uint64_t value_size = 0;
  std::vector<std::optional<Location>> locs;

  Metadata() = default;
  explicit Metadata(const Policy& p, uint64_t size = 0)
      : policy(p), value_size(size), locs(p.n, std::nullopt) {}

  /// Number of decided fragment locations.
  int decided_count() const;
  /// Complete metadata: every fragment slot has a decided location
  /// ("sufficient locations to meet the durability requirements", §3.4).
  bool complete() const;
  /// Fragment indices assigned to `fs` (at most max_frags_per_fs of them).
  std::vector<int> fragments_for(NodeId fs) const;
  /// Distinct sibling Fragment Servers, in slot order.
  std::vector<NodeId> sibling_fs() const;
  /// Union locations from `other` into this metadata (slot-wise; existing
  /// decisions win). Returns true if anything changed.
  bool merge_locs(const Metadata& other);

  friend bool operator==(const Metadata&, const Metadata&) = default;
};

std::string to_string(NodeId id);
std::string to_string(const Timestamp& ts);
std::string to_string(const ObjectVersionId& ov);
std::string to_string(const Location& loc);

}  // namespace pahoehoe

// Hash support so ids can key unordered containers.
template <>
struct std::hash<pahoehoe::NodeId> {
  size_t operator()(pahoehoe::NodeId id) const noexcept {
    return std::hash<uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<pahoehoe::Key> {
  size_t operator()(const pahoehoe::Key& k) const noexcept {
    return std::hash<std::string>{}(k.value);
  }
};

template <>
struct std::hash<pahoehoe::Timestamp> {
  size_t operator()(const pahoehoe::Timestamp& ts) const noexcept {
    size_t h = std::hash<int64_t>{}(ts.wall_micros);
    return h ^ (std::hash<uint32_t>{}(ts.proxy) + 0x9e3779b97f4a7c15ULL +
                (h << 6) + (h >> 2));
  }
};

template <>
struct std::hash<pahoehoe::ObjectVersionId> {
  size_t operator()(const pahoehoe::ObjectVersionId& ov) const noexcept {
    size_t h = std::hash<pahoehoe::Key>{}(ov.key);
    return h ^ (std::hash<pahoehoe::Timestamp>{}(ov.ts) +
                0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  }
};
