// Tiny command-line flag parser for benches and examples.
//
// Supports --name=value and --name value for int64/double/string/bool flags
// (bools also accept bare --name). Unrecognized flags are an error so typos
// in experiment sweeps fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pahoehoe {

class Flags {
 public:
  /// Parse argv; exits with a usage message on error or --help.
  Flags(int argc, char** argv);

  /// Declare-and-read accessors; the default doubles as the declaration,
  /// so every accessor call registers the flag for --help and typo checks.
  int64_t get_int(const std::string& name, int64_t default_value,
                  const std::string& help = "");
  double get_double(const std::string& name, double default_value,
                    const std::string& help = "");
  std::string get_string(const std::string& name,
                         const std::string& default_value,
                         const std::string& help = "");
  bool get_bool(const std::string& name, bool default_value,
                const std::string& help = "");

  /// Call after all get_* declarations: reports unknown flags and exits, or
  /// prints help and exits if --help was given.
  void finish();

 private:
  std::string program_;
  std::map<std::string, std::string> raw_;   // flag name -> raw value
  std::map<std::string, std::string> seen_;  // declared name -> help text
  bool help_requested_ = false;
};

}  // namespace pahoehoe
