// Deterministic random-number generation.
//
// Every source of randomness in a simulation run (latency samples, message
// loss, convergence round jitter, backoff jitter, workload data) draws from
// one seeded generator so the same seed reproduces the same event trace.
#pragma once

#include <cstdint>
#include <random>

#include "common/check.h"

namespace pahoehoe {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    PAHOEHOE_CHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Raw 64-bit draw (for deriving sub-seeds and filling test data).
  uint64_t next_u64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pahoehoe
