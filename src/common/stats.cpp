#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace pahoehoe {

void SampleStats::add(double x) { values_.push_back(x); }

double SampleStats::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double SampleStats::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double SampleStats::ci95_halfwidth() const {
  if (values_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(values_.size()));
}

double SampleStats::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double SampleStats::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

}  // namespace pahoehoe
