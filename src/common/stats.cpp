#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace pahoehoe {

void SampleStats::add(double x) { values_.push_back(x); }

void SampleStats::merge(const SampleStats& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
}

double SampleStats::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  // lint:float-ok(values_ is insertion-ordered and merged in seed order)
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double SampleStats::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  // lint:float-ok(same fixed insertion/merge order as mean above)
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double SampleStats::ci95_halfwidth() const {
  if (values_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(values_.size()));
}

double SampleStats::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double SampleStats::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double SampleStats::percentile(double p) const {
  if (values_.empty()) return 0.0;
  PAHOEHOE_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

QuantileSketch::QuantileSketch(double relative_error)
    : alpha_(relative_error),
      gamma_((1.0 + relative_error) / (1.0 - relative_error)),
      inv_log_gamma_(1.0 / std::log(gamma_)) {
  PAHOEHOE_CHECK(relative_error > 0.0 && relative_error < 1.0);
}

void QuantileSketch::add(double x) {
  PAHOEHOE_CHECK(x >= 0.0 && std::isfinite(x));
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  if (x < kMinValue) {
    ++zero_count_;
    return;
  }
  const auto key =
      static_cast<int32_t>(std::ceil(std::log(x) * inv_log_gamma_));
  ++buckets_[key];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  // Buckets are only compatible when both sketches use the same bucket
  // ratio; merging across relative_error values would silently misplace
  // every count, so it is a hard, value-bearing error.
  if (alpha_ != other.alpha_) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "QuantileSketch::merge relative_error mismatch: "
                  "%.17g vs %.17g",
                  alpha_, other.alpha_);
    PAHOEHOE_CHECK_MSG(false, msg);
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  for (const auto& [key, n] : other.buckets_) buckets_[key] += n;
}

double QuantileSketch::quantile(double q) const {
  PAHOEHOE_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const auto rank =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  if (rank < zero_count_) return 0.0;
  uint64_t cumulative = zero_count_;
  for (const auto& [key, n] : buckets_) {
    cumulative += n;
    if (cumulative > rank) {
      // Midpoint estimate of the bucket (gamma^(key-1), gamma^key]: within
      // a factor (1 ± alpha) of every value the bucket holds.
      const double value =
          2.0 * std::pow(gamma_, static_cast<double>(key)) / (gamma_ + 1.0);
      return std::clamp(value, min_, max_);
    }
  }
  return max_;
}

double QuantileSketch::min() const { return count_ == 0 ? 0.0 : min_; }

double QuantileSketch::max() const { return count_ == 0 ? 0.0 : max_; }

}  // namespace pahoehoe
