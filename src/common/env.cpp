#include "common/env.h"

#include <cctype>
#include <cstdlib>

namespace pahoehoe::env {

std::optional<std::string> get(const char* name) {
  // The one sanctioned getenv in the tree; see the header for the
  // single-call-site rationale. No suppression annotation is needed (this
  // module IS the nondet-env whitelist), and concurrency-mt-unsafe is
  // argued above.
  const char* value = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

std::optional<std::string> override_value(const char* name) {
  std::optional<std::string> raw = get(name);
  if (!raw.has_value()) return std::nullopt;
  size_t b = 0;
  size_t e = raw->size();
  while (b < e && std::isspace(static_cast<unsigned char>((*raw)[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>((*raw)[e - 1]))) {
    --e;
  }
  if (b == e) return std::nullopt;
  return raw->substr(b, e - b);
}

}  // namespace pahoehoe::env
