// The single sanctioned process-environment access point.
//
// Environment variables are host state: two runs with different
// environments may legitimately behave differently (kernel override,
// future tuning knobs), but that influence must be auditable. The lint
// rule `nondet-env` (tools/lint, DESIGN.md §12) bans getenv everywhere
// except this module, so "what can the environment change?" is answered by
// grepping for pahoehoe::env callers rather than for libc calls.
//
// Note: clang-tidy's concurrency-mt-unsafe is right that getenv is unsafe
// against a concurrent setenv. We never call setenv outside single-threaded
// test setup, and overrides are read once at startup (e.g. the GF(2^8)
// kernel choice is latched by a function-local static); keeping the one
// call site here is what makes that argument checkable.
#pragma once

#include <optional>
#include <string>

namespace pahoehoe::env {

/// Raw lookup: nullopt when the variable is unset, the exact value
/// otherwise (including the empty string).
std::optional<std::string> get(const char* name);

/// Override-style lookup, for opt-in knobs like PAHOEHOE_GF256_KERNEL:
/// returns the value with surrounding whitespace trimmed, and treats
/// unset, empty, and whitespace-only all as "no override" (nullopt).
std::optional<std::string> override_value(const char* name);

}  // namespace pahoehoe::env
