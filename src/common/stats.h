// Small statistics helpers used by the experiment harness to aggregate
// per-seed results (the paper reports means and checks 95% confidence
// intervals, §5.1).
#pragma once

#include <cstddef>
#include <vector>

namespace pahoehoe {

/// Streaming accumulator for mean / stddev / 95% CI of a sample.
class SampleStats {
 public:
  void add(double x);

  size_t count() const { return values_.size(); }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
  double stddev() const;
  /// Half-width of the 95% confidence interval of the mean (normal approx;
  /// the harness uses ≥20 seeds so this is adequate).
  double ci95_halfwidth() const;
  double min() const;
  double max() const;

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace pahoehoe
