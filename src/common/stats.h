// Small statistics helpers used by the experiment harness to aggregate
// per-seed results (the paper reports means and checks 95% confidence
// intervals, §5.1) and by the latency workload to report percentiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace pahoehoe {

/// Streaming accumulator for mean / stddev / 95% CI of a sample.
class SampleStats {
 public:
  void add(double x);
  /// Append another sample's values (in their insertion order), so
  /// per-seed partials aggregate to the same state as one serial pass.
  void merge(const SampleStats& other);

  size_t count() const { return values_.size(); }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
  double stddev() const;
  /// Half-width of the 95% confidence interval of the mean (normal approx;
  /// the harness uses ≥20 seeds so this is adequate).
  double ci95_halfwidth() const;
  double min() const;
  double max() const;
  /// Exact percentile of the sample, p in [0, 100], with linear
  /// interpolation between order statistics; 0 for an empty sample.
  double percentile(double p) const;

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

/// Mergeable quantile sketch over non-negative values (latencies), with a
/// bounded *relative* error: quantile(q) is within a factor (1 ± alpha) of
/// an exact quantile of everything added. Log-spaced buckets with integer
/// counts (the DDSketch construction), so merging is bucket-wise addition —
/// exactly associative and commutative, which is what lets per-seed
/// partials from a parallel sweep combine into a deterministic result.
class QuantileSketch {
 public:
  explicit QuantileSketch(double relative_error = 0.01);

  void add(double x);  ///< x < kMinValue (incl. 0) lands in the zero bucket
  /// Bucket-wise addition; both sketches must use the same relative_error.
  void merge(const QuantileSketch& other);

  /// Estimated q-quantile, q in [0, 1]; 0 for an empty sketch. Clamped to
  /// the exact [min, max] seen, so quantile(0)/quantile(1) are exact.
  double quantile(double q) const;

  uint64_t count() const { return count_; }
  double relative_error() const { return alpha_; }
  double min() const;  ///< exact smallest value added (0 if empty)
  double max() const;  ///< exact largest value added (0 if empty)

  /// Values below this are counted as zero (they are indistinguishable
  /// from 0 at any latency scale the harness measures).
  static constexpr double kMinValue = 1e-9;

 private:
  double alpha_;
  double gamma_;          // bucket boundary ratio (1 + a) / (1 - a)
  double inv_log_gamma_;  // 1 / ln(gamma)
  uint64_t count_ = 0;
  uint64_t zero_count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::map<int32_t, uint64_t> buckets_;  // key -> count, keys ordered
};

}  // namespace pahoehoe
