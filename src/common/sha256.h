// Minimal SHA-256 (FIPS 180-4) used for fragment integrity.
//
// The paper (§3.1) notes Pahoehoe detects disk corruption using hashes but
// elides the mechanism; we store a digest beside every fragment and verify
// it on retrieval and during scrubs.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace pahoehoe {

class Sha256 {
 public:
  using Digest = std::array<uint8_t, 32>;

  Sha256();

  /// Absorb more input. May be called repeatedly.
  void update(std::span<const uint8_t> data);

  /// Finalize and return the digest. The object must not be reused after.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(std::span<const uint8_t> data);

  /// Lowercase hex rendering of a digest.
  static std::string hex(const Digest& digest);

 private:
  void process_block(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  size_t buffered_ = 0;
  uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace pahoehoe
