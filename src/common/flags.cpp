#include "common/flags.h"

#include <cstdio>
#include <cstdlib>

namespace pahoehoe {
namespace {

bool parse_bool(const std::string& raw, bool* out) {
  if (raw == "true" || raw == "1" || raw == "yes" || raw.empty()) {
    *out = true;
    return true;
  }
  if (raw == "false" || raw == "0" || raw == "no") {
    *out = false;
    return true;
  }
  return false;
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "flag error: %s\n", message.c_str());
  std::exit(2);
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      die("positional arguments are not supported: " + arg);
    }
    arg = arg.substr(2);
    if (arg == "help") {
      help_requested_ = true;
      continue;
    }
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      raw_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      raw_[arg] = argv[++i];
    } else {
      raw_[arg] = "";  // bare boolean flag
    }
  }
}

int64_t Flags::get_int(const std::string& name, int64_t default_value,
                       const std::string& help) {
  seen_[name] = help + " (int, default " + std::to_string(default_value) + ")";
  auto it = raw_.find(name);
  if (it == raw_.end()) return default_value;
  char* end = nullptr;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    die("--" + name + " expects an integer, got '" + it->second + "'");
  }
  return value;
}

double Flags::get_double(const std::string& name, double default_value,
                         const std::string& help) {
  seen_[name] =
      help + " (double, default " + std::to_string(default_value) + ")";
  auto it = raw_.find(name);
  if (it == raw_.end()) return default_value;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    die("--" + name + " expects a number, got '" + it->second + "'");
  }
  return value;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& default_value,
                              const std::string& help) {
  seen_[name] = help + " (string, default '" + default_value + "')";
  auto it = raw_.find(name);
  return it == raw_.end() ? default_value : it->second;
}

bool Flags::get_bool(const std::string& name, bool default_value,
                     const std::string& help) {
  seen_[name] =
      help + std::string(" (bool, default ") + (default_value ? "true" : "false") + ")";
  auto it = raw_.find(name);
  if (it == raw_.end()) return default_value;
  bool value = false;
  if (!parse_bool(it->second, &value)) {
    die("--" + name + " expects a boolean, got '" + it->second + "'");
  }
  return value;
}

void Flags::finish() {
  bool unknown = false;
  for (const auto& [name, value] : raw_) {
    if (seen_.find(name) == seen_.end()) {
      if (value.empty()) {
        std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      } else {
        std::fprintf(stderr, "unknown flag: --%s (value '%s')\n",
                     name.c_str(), value.c_str());
      }
      unknown = true;
    }
  }
  if (unknown || help_requested_) {
    std::fprintf(stderr, "usage: %s [flags]\n", program_.c_str());
    for (const auto& [name, help] : seen_) {
      std::fprintf(stderr, "  --%-24s %s\n", name.c_str(), help.c_str());
    }
    std::exit(help_requested_ && !unknown ? 0 : 2);
  }
}

}  // namespace pahoehoe
