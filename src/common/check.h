// Lightweight always-on invariant checking.
//
// PAHOEHOE_CHECK is used for internal invariants that must hold regardless of
// build type; violations indicate a programming error, so we terminate with a
// diagnostic rather than throwing (per CppCoreGuidelines E.12/I.6 a broken
// precondition is not a recoverable condition).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pahoehoe::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "PAHOEHOE_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace pahoehoe::detail

#define PAHOEHOE_CHECK(expr)                                            \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::pahoehoe::detail::check_failed(#expr, __FILE__, __LINE__, "");  \
    }                                                                   \
  } while (false)

#define PAHOEHOE_CHECK_MSG(expr, msg)                                    \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::pahoehoe::detail::check_failed(#expr, __FILE__, __LINE__, msg);  \
    }                                                                    \
  } while (false)
