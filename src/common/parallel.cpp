#include "common/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pahoehoe {

int resolve_jobs(int requested, int n) {
  if (n < 1) return 1;
  int jobs = requested;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  return jobs < n ? jobs : n;
}

void parallel_for(int n, int jobs, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  jobs = resolve_jobs(jobs, n);
  if (jobs <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(jobs));
  for (int t = 0; t < jobs; ++t) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace pahoehoe
