// Version inspector: run one seed with causal span tracing on and dump an
// object version's full lifecycle — put, erasure encode, every fragment and
// metadata message, each convergence round with its backoff waits and
// recoveries, and the final AMR confirmation — as an annotated span tree,
// with the put-ack → AMR critical path decomposed per component.
//
// Examples:
//   ./build/examples/version_inspector                        (object 0)
//   ./build/examples/version_inspector --blackout-s=600       (delayed AMR)
//   ./build/examples/version_inspector --object=-1 --variant=naive
//   ./build/examples/version_inspector --perfetto=trace.json  (then open the
//       file at https://ui.perfetto.dev)
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/harness.h"
#include "obs/json.h"
#include "obs/prof.h"

using namespace pahoehoe;

namespace {

core::ConvergenceOptions variant_options(const std::string& name) {
  if (name == "naive") return core::ConvergenceOptions::naive();
  if (name == "fs-amr-sync") return core::ConvergenceOptions::fs_amr_sync();
  if (name == "fs-amr-unsync") return core::ConvergenceOptions::fs_amr_unsync();
  if (name == "put-amr") return core::ConvergenceOptions::put_amr();
  if (name == "sibling") return core::ConvergenceOptions::sibling_only();
  if (name == "all") return core::ConvergenceOptions::all_opts();
  std::fprintf(stderr,
               "unknown --variant '%s' (naive, fs-amr-sync, fs-amr-unsync, "
               "put-amr, sibling, all)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  core::RunConfig config = core::paper_default_config();
  config.seed = static_cast<uint64_t>(flags.get_int("seed", 1, "run seed"));
  config.workload.num_puts = static_cast<int>(
      flags.get_int("puts", 3, "objects to store"));
  config.convergence = variant_options(flags.get_string(
      "variant", "all",
      "convergence preset: naive, fs-amr-sync, fs-amr-unsync, put-amr, "
      "sibling, all"));
  const int64_t object = flags.get_int(
      "object", 0, "workload object index to inspect (-1 = every version)");
  const int64_t worst = flags.get_int(
      "worst", 0,
      "instead of --object, inspect the N worst put-ack → AMR latency "
      "exemplars: prints the tail attribution report, then their span trees");
  const int64_t blackout_s = flags.get_int(
      "blackout-s", 0,
      "black out FS (0,0) for this many seconds from t=0 — the put still "
      "acks (10 of 12 fragments reachable) but AMR waits on convergence");
  const double loss = flags.get_double("loss", 0.0, "iid message loss rate");
  const std::string perfetto_path = flags.get_string(
      "perfetto", "",
      "also write the selected versions as a Chrome trace-event / Perfetto "
      "JSON file");
  config.telemetry.max_spans_per_version = static_cast<size_t>(flags.get_int(
      "max-spans", 8192, "spans kept per version before truncation"));
  const bool profile = flags.get_bool(
      "profile", false,
      "wall-clock phase profile: print the hottest phases and add a "
      "host-time track to --perfetto output (side channel; simulated "
      "results are unchanged)");
  flags.finish();

  obs::prof::set_enabled(profile);
  config.telemetry.spans = true;
  config.telemetry.exemplars = true;
  if (blackout_s > 0) {
    config.faults.push_back(core::FaultSpec::fs_blackout(
        0, 0, 0, blackout_s * kMicrosPerSecond));
  }
  if (loss > 0.0) {
    config.faults.push_back(core::FaultSpec::uniform_loss(loss));
  }

  core::RunResult result = core::run_experiment(config);

  std::vector<ObjectVersionId> selected;
  if (worst > 0) {
    // Exemplar-driven selection: the report's worst-K already names the
    // versions; jump straight to their span trees.
    const std::vector<obs::Exemplar>& top = result.amr_exemplars.worst();
    if (top.empty()) {
      std::fprintf(stderr,
                   "flag error: --worst=%lld but the run retained no "
                   "exemplars (0 resolved versions out of %d puts)\n",
                   static_cast<long long>(worst), result.puts_attempted);
      return 2;
    }
    for (const obs::Exemplar& e : top) {
      if (selected.size() >= static_cast<size_t>(worst)) break;
      selected.push_back(e.ov);
    }
  } else {
    // The workload names objects deterministically, so the inspector can
    // select by index without replaying the driver.
    const Key want{config.workload.key_prefix + std::to_string(object)};
    for (const ObjectVersionId& ov : result.spans.versions()) {
      if (object < 0 || ov.key == want) selected.push_back(ov);
    }
    if (selected.empty()) {
      std::fprintf(stderr,
                   "flag error: --object=%lld selected none of the %zu "
                   "traced versions (valid object indexes are 0..%d, -1 for "
                   "every version, or use --worst=N for the exemplar-ranked "
                   "tail)\n",
                   static_cast<long long>(object),
                   result.spans.versions().size(),
                   config.workload.num_puts - 1);
      return 2;
    }
  }

  std::printf("seed %llu: %d puts attempted, %d acked, %d versions AMR; "
              "audit: %s\n\n",
              static_cast<unsigned long long>(config.seed),
              result.puts_attempted, result.puts_acked, result.amr,
              result.audit.passed() ? "passed" : "FAILED");
  if (worst > 0) {
    std::printf("%s\n", result.attribution.to_text().c_str());
  }
  for (const ObjectVersionId& ov : selected) {
    std::fputs(result.spans.render_tree(ov).c_str(), stdout);
    std::fputs("\n", stdout);
  }
  std::printf("%s", result.critical_path.to_text().c_str());
  if (profile) {
    std::printf("\nwall-clock profile (host time; hottest phases):\n%s",
                result.profile.to_text(12).c_str());
  }

  if (!perfetto_path.empty()) {
    obs::JsonWriter w;
    result.spans.export_perfetto(w, selected,
                                 profile ? &result.profile : nullptr);
    w.write_file(perfetto_path);
    std::printf("\nwrote %zu-version Perfetto trace to %s "
                "(open at https://ui.perfetto.dev)\n",
                selected.size(), perfetto_path.c_str());
  }
  return result.audit.passed() ? 0 : 1;
}
