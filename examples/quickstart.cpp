// Quickstart: stand up a two-data-center Pahoehoe cluster in simulation,
// put an object, read it back, and watch it reach AMR.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/cluster.h"
#include "core/harness.h"
#include "net/network.h"
#include "sim/simulator.h"

using namespace pahoehoe;

int main() {
  // 1. A simulator (deterministic, seeded) and a network with the paper's
  //    latency model: each message takes U(10 ms, 30 ms).
  sim::Simulator sim(/*seed=*/42);
  net::Network net(sim);

  // 2. The paper's deployment: 2 data centers, each with 2 Key Lookup
  //    Servers and 3 Fragment Servers; one proxy. All convergence
  //    optimizations on.
  core::Cluster cluster(sim, net, core::ClusterTopology{},
                        core::ConvergenceOptions::all_opts(),
                        core::ProxyOptions{});

  // 3. Put a value under the default durability policy: a (k=4, n=12)
  //    systematic Reed-Solomon code, ≤2 fragments per FS, 6 per data
  //    center — triple-replication overhead, much better fault coverage.
  const Key key{"hello"};
  Bytes value;
  for (int i = 0; i < 64 * 1024; ++i) {
    value.push_back(static_cast<uint8_t>(i * 131 + 7));
  }

  bool put_done = false;
  cluster.proxy(0).put(key, value, Policy{},
                       [&](const core::PutResult& result) {
                         put_done = true;
                         std::printf("put %s: %s (%d fragment acks)\n",
                                     key.value.c_str(),
                                     result.success ? "OK" : "FAILED",
                                     result.frag_acks);
                       });
  sim.run();
  if (!put_done) {
    std::printf("put never completed\n");
    return 1;
  }

  // 4. Read it back.
  bool get_ok = false;
  cluster.proxy(0).get(key, [&](const core::GetResult& result) {
    get_ok = result.success && result.value == value;
    std::printf("get %s: %s (%zu bytes)\n", key.value.c_str(),
                result.success ? "OK" : "FAILED", result.value.size());
  });
  sim.run();
  if (!get_ok) {
    std::printf("get did not return the stored value\n");
    return 1;
  }

  // 5. The version is At Maximum Redundancy: complete metadata on all four
  //    KLSs, every sibling fragment on its FS. With the Put AMR Indication
  //    optimization no convergence work was ever needed.
  std::printf("pending convergence work: %zu versions\n",
              cluster.total_pending_versions());
  std::printf("network: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(net.stats().total_sent_count()),
              static_cast<unsigned long long>(net.stats().total_sent_bytes()));
  std::printf("%s", net.stats().to_table().c_str());
  return 0;
}
